// Package eval implements the paper's evaluation methodology (Section 6):
// recall and precision of dynamic-section extraction with the perfect /
// partially-correct distinction (a section is partially correct when more
// than 60% of its records are extracted), plus record-level recall and
// precision within correctly extracted sections.  It regenerates Tables
// 1-3 of the paper over the synthetic test bed.
package eval

import (
	"fmt"
	"strings"

	"mse/internal/core"
	"mse/internal/synth"
)

// PartialThreshold is the fraction of a section's records that must be
// extracted for the section to count as partially correct (§6: 60%).
const PartialThreshold = 0.6

// PageScore aggregates the judgment of one result page.
type PageScore struct {
	// Section-level counts (Tables 1 and 2).
	Actual    int
	Extracted int
	Perfect   int
	Partial   int
	// Record-level counts within perfectly and partially correctly
	// extracted sections (Table 3).
	RecActual    int
	RecExtracted int
	RecCorrect   int
}

// Add accumulates another score.
func (s *PageScore) Add(o PageScore) {
	s.Actual += o.Actual
	s.Extracted += o.Extracted
	s.Perfect += o.Perfect
	s.Partial += o.Partial
	s.RecActual += o.RecActual
	s.RecExtracted += o.RecExtracted
	s.RecCorrect += o.RecCorrect
}

// RecallPerfect is the fraction of actual sections extracted perfectly.
func (s PageScore) RecallPerfect() float64 { return ratio(s.Perfect, s.Actual) }

// RecallTotal also accepts partially correct sections.
func (s PageScore) RecallTotal() float64 { return ratio(s.Perfect+s.Partial, s.Actual) }

// PrecisionPerfect is the fraction of extracted sections that are perfect.
func (s PageScore) PrecisionPerfect() float64 { return ratio(s.Perfect, s.Extracted) }

// PrecisionTotal also accepts partially correct sections.
func (s PageScore) PrecisionTotal() float64 { return ratio(s.Perfect+s.Partial, s.Extracted) }

// RecordRecall is the fraction of actual records extracted correctly
// within correct sections.
func (s PageScore) RecordRecall() float64 { return ratio(s.RecCorrect, s.RecActual) }

// RecordPrecision is the fraction of extracted records that are correct
// within correct sections.
func (s PageScore) RecordPrecision() float64 { return ratio(s.RecCorrect, s.RecExtracted) }

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ScorePage judges the sections extracted from one page against its
// ground truth.
//
// Matching: each ground-truth section is paired with the extracted
// section that contains the largest number of its records (an extracted
// record "belongs" to the ground-truth record whose marker it contains).
// A pairing is perfect when the extracted section's records are exactly
// the ground-truth section's records (same lines, none missing, none
// extra); it is partially correct when more than PartialThreshold of the
// ground-truth records are present as exactly extracted records.
func ScorePage(gt synth.GroundTruth, secs []*core.Section) PageScore {
	score := PageScore{Actual: len(gt.Sections), Extracted: len(secs)}

	// Index ground truth records by marker.
	byMarker := map[string]gtRef{}
	for si, s := range gt.Sections {
		for ri := range s.Records {
			byMarker[s.Records[ri].Marker] = gtRef{sec: si, rec: ri}
		}
	}

	// For each extracted section: per GT section, how many of its records
	// are exactly reproduced, and how many extracted records are alien.
	type secMatch struct {
		exact map[int]map[int]bool // gt section -> set of exact gt records
		owner map[int]int          // gt section -> number of owned records
	}
	matches := make([]secMatch, len(secs))
	for ei, es := range secs {
		m := secMatch{exact: map[int]map[int]bool{}, owner: map[int]int{}}
		for _, rec := range es.Records {
			ref, ok := recordOwner(rec, byMarker)
			if !ok {
				continue
			}
			m.owner[ref.sec]++
			if recordExact(rec, gt.Sections[ref.sec].Records[ref.rec]) {
				if m.exact[ref.sec] == nil {
					m.exact[ref.sec] = map[int]bool{}
				}
				m.exact[ref.sec][ref.rec] = true
			}
		}
		matches[ei] = m
	}

	// Greedy pairing: each GT section takes the extracted section holding
	// most of its exact records; each extracted section is used once.
	usedExtracted := make([]bool, len(secs))
	for si, gts := range gt.Sections {
		best, bestN := -1, 0
		for ei := range secs {
			if usedExtracted[ei] {
				continue
			}
			if n := len(matches[ei].exact[si]); n > bestN {
				best, bestN = ei, n
			}
		}
		if best < 0 {
			continue
		}
		usedExtracted[best] = true
		m := matches[best]
		exactCount := len(m.exact[si])
		// Extra records: extracted records in this section that are not
		// exact records of this GT section.
		extra := len(secs[best].Records) - exactCount

		perfect := exactCount == len(gts.Records) && extra == 0
		partial := !perfect && float64(exactCount) > PartialThreshold*float64(len(gts.Records))
		if perfect {
			score.Perfect++
		}
		if partial {
			score.Partial++
		}
		if perfect || partial {
			score.RecActual += len(gts.Records)
			score.RecExtracted += len(secs[best].Records)
			score.RecCorrect += exactCount
		}
	}
	return score
}

// gtRef locates one record within a page's ground truth.
type gtRef struct{ sec, rec int }

// recordOwner determines which ground-truth record an extracted record
// covers; records containing markers of several ground-truth records have
// no single owner.
func recordOwner(rec core.Record, byMarker map[string]gtRef) (gtRef, bool) {
	var owner gtRef
	found := false
	joined := strings.Join(rec.Lines, "\n")
	for marker, ref := range byMarker {
		if strings.Contains(joined, marker) {
			if found && ref != owner {
				return owner, false // spans several records
			}
			owner = ref
			found = true
		}
	}
	return owner, found
}

// recordExact reports whether the extracted record's lines equal the
// ground-truth record's lines.
func recordExact(rec core.Record, gtr synth.GTRecord) bool {
	if len(rec.Lines) != len(gtr.Lines) {
		return false
	}
	for i := range rec.Lines {
		if rec.Lines[i] != gtr.Lines[i] {
			return false
		}
	}
	return true
}

// Row is one line of a results table, with the same columns as the
// paper's Tables 1 and 2.
type Row struct {
	Label string
	PageScore
}

// Format renders the row like the paper's tables.
func (r Row) Format() string {
	return fmt.Sprintf("%-6s %8d %10d %8d %9d %8.1f %7.1f %9.1f %7.1f",
		r.Label, r.Actual, r.Extracted, r.Perfect, r.Partial,
		100*r.RecallPerfect(), 100*r.RecallTotal(),
		100*r.PrecisionPerfect(), 100*r.PrecisionTotal())
}

// RecordFormat renders the row like Table 3.
func (r Row) RecordFormat() string {
	return fmt.Sprintf("%-6s %8d %10d %8d %8.1f %11.1f",
		r.Label, r.RecActual, r.RecExtracted, r.RecCorrect,
		100*r.RecordRecall(), 100*r.RecordPrecision())
}

// Header returns the section-table header.
func Header() string {
	return fmt.Sprintf("%-6s %8s %10s %8s %9s %8s %7s %9s %7s",
		"", "#Actual", "#Extracted", "#Perfect", "#Partial",
		"R-Perf%", "R-Tot%", "P-Perf%", "P-Tot%")
}

// RecordHeader returns the record-table (Table 3) header.
func RecordHeader() string {
	return fmt.Sprintf("%-6s %8s %10s %8s %8s %11s",
		"", "#Actual", "#Extracted", "#Correct", "Recall%", "Precision%")
}
