package eval

import (
	"runtime"
	"sync"

	"mse/internal/core"
	"mse/internal/synth"
)

// Extractor abstracts a section extraction system under evaluation (MSE,
// baselines, ablations).
type Extractor interface {
	// Name identifies the system in reports.
	Name() string
	// Train builds the system's wrapper from sample pages.  Systems that
	// need no training (per-page heuristics) return nil.
	Train(samples []*core.SamplePage) error
	// Extract returns the sections of one result page.
	Extract(html string, query []string) []*core.Section
}

// MSEExtractor adapts the core pipeline to the Extractor interface.
type MSEExtractor struct {
	Options core.Options
	wrapper *core.EngineWrapper
}

// NewMSE returns an MSE extractor with the given options.
func NewMSE(opt core.Options) *MSEExtractor {
	return &MSEExtractor{Options: opt}
}

// Name implements Extractor.
func (m *MSEExtractor) Name() string { return "MSE" }

// Train implements Extractor.
func (m *MSEExtractor) Train(samples []*core.SamplePage) error {
	ew, err := core.BuildWrapper(samples, m.Options)
	if err != nil {
		return err
	}
	m.wrapper = ew
	return nil
}

// Extract implements Extractor.
func (m *MSEExtractor) Extract(html string, query []string) []*core.Section {
	if m.wrapper == nil {
		return nil
	}
	return m.wrapper.Extract(html, query)
}

// Result holds the aggregate scores of one evaluation run, with the
// paper's sample-page / test-page split.
type Result struct {
	SamplePages PageScore
	TestPages   PageScore
}

// Total combines the sample-page and test-page scores.
func (r Result) Total() PageScore {
	t := r.SamplePages
	t.Add(r.TestPages)
	return t
}

// Rows renders the result as the three rows of Tables 1/2.
func (r Result) Rows() []Row {
	return []Row{
		{Label: "S pgs", PageScore: r.SamplePages},
		{Label: "T pgs", PageScore: r.TestPages},
		{Label: "Total", PageScore: r.Total()},
	}
}

// RunConfig controls an evaluation run.
type RunConfig struct {
	// SampleCount pages per engine are used for training; the rest are
	// test pages.
	SampleCount int
	// PageCount pages are generated per engine.
	PageCount int
	// MultiOnly restricts the run to multi-section engines (Table 2).
	MultiOnly bool
	// NewExtractor constructs a fresh extractor per engine.
	NewExtractor func() Extractor
	// Parallelism bounds worker goroutines (0 = GOMAXPROCS).
	Parallelism int
}

// Run trains and scores the extractor over the given engines.
func Run(engines []*synth.Engine, cfg RunConfig) Result {
	if cfg.SampleCount <= 0 {
		cfg.SampleCount = 5
	}
	if cfg.PageCount <= 0 {
		cfg.PageCount = 10
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var mu sync.Mutex
	var total Result
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for _, e := range engines {
		if cfg.MultiOnly && !e.MultiSection() {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(e *synth.Engine) {
			defer wg.Done()
			defer func() { <-sem }()
			r := runEngine(e, cfg)
			mu.Lock()
			total.SamplePages.Add(r.SamplePages)
			total.TestPages.Add(r.TestPages)
			mu.Unlock()
		}(e)
	}
	wg.Wait()
	return total
}

func runEngine(e *synth.Engine, cfg RunConfig) Result {
	pages := e.Pages(cfg.PageCount)
	var samples []*core.SamplePage
	for _, gp := range pages[:cfg.SampleCount] {
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ex := cfg.NewExtractor()
	var res Result
	if err := ex.Train(samples); err != nil {
		// A failed training counts every actual section as missed.
		for i, gp := range pages {
			s := PageScore{Actual: len(gp.Truth.Sections)}
			if i < cfg.SampleCount {
				res.SamplePages.Add(s)
			} else {
				res.TestPages.Add(s)
			}
		}
		return res
	}
	for i, gp := range pages {
		secs := ex.Extract(gp.HTML, gp.Query)
		s := ScorePage(gp.Truth, secs)
		if i < cfg.SampleCount {
			res.SamplePages.Add(s)
		} else {
			res.TestPages.Add(s)
		}
	}
	return res
}
