package eval

import (
	"testing"

	"mse/internal/core"
	"mse/internal/synth"
)

// TestSeedStability guards against overfitting to the default test bed:
// the pipeline must deliver comparable quality on test beds generated
// from unrelated seeds.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed evaluation")
	}
	for _, seed := range []int64{7, 1234, 987654} {
		engines := synth.GenerateTestbed(synth.Config{
			Seed: seed, Engines: 30, MultiSection: 10, Queries: 10,
		})
		res := Run(engines, RunConfig{
			SampleCount:  5,
			PageCount:    10,
			NewExtractor: func() Extractor { return NewMSE(core.DefaultOptions()) },
		})
		tt := res.Total()
		t.Logf("seed %d: R-Perf %.1f%%  R-Tot %.1f%%  P-Tot %.1f%%  RecRec %.1f%%",
			seed, 100*tt.RecallPerfect(), 100*tt.RecallTotal(),
			100*tt.PrecisionTotal(), 100*tt.RecordRecall())
		if tt.RecallTotal() < 0.72 {
			t.Errorf("seed %d: total recall %.3f collapsed", seed, tt.RecallTotal())
		}
		if tt.PrecisionTotal() < 0.72 {
			t.Errorf("seed %d: total precision %.3f collapsed", seed, tt.PrecisionTotal())
		}
		if tt.RecordRecall() < 0.95 {
			t.Errorf("seed %d: record recall %.3f collapsed", seed, tt.RecordRecall())
		}
	}
}
