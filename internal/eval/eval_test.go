package eval

import (
	"testing"

	"mse/internal/core"
	"mse/internal/synth"
)

func TestScorePagePerfect(t *testing.T) {
	gt := synth.GroundTruth{Sections: []synth.GTSection{{
		SchemaIndex: 0,
		Heading:     "News",
		Records: []synth.GTRecord{
			{Marker: "qjaa", Lines: []string{"Title qjaa", "snippet qjaa"}},
			{Marker: "qjbb", Lines: []string{"Title qjbb", "snippet qjbb"}},
		},
	}}}
	secs := []*core.Section{{
		Heading: "News",
		Records: []core.Record{
			{Lines: []string{"Title qjaa", "snippet qjaa"}},
			{Lines: []string{"Title qjbb", "snippet qjbb"}},
		},
	}}
	s := ScorePage(gt, secs)
	if s.Perfect != 1 || s.Partial != 0 {
		t.Fatalf("score = %+v, want perfect", s)
	}
	if s.RecCorrect != 2 || s.RecActual != 2 || s.RecExtracted != 2 {
		t.Fatalf("record counts wrong: %+v", s)
	}
}

func TestScorePagePartial(t *testing.T) {
	gt := synth.GroundTruth{Sections: []synth.GTSection{{
		Records: []synth.GTRecord{
			{Marker: "qjaa", Lines: []string{"Title qjaa"}},
			{Marker: "qjbb", Lines: []string{"Title qjbb"}},
			{Marker: "qjcc", Lines: []string{"Title qjcc"}},
			{Marker: "qjdd", Lines: []string{"Title qjdd"}},
		},
	}}}
	// Three of four records extracted (75% > 60% threshold).
	secs := []*core.Section{{
		Records: []core.Record{
			{Lines: []string{"Title qjaa"}},
			{Lines: []string{"Title qjbb"}},
			{Lines: []string{"Title qjcc"}},
		},
	}}
	s := ScorePage(gt, secs)
	if s.Perfect != 0 || s.Partial != 1 {
		t.Fatalf("score = %+v, want partial", s)
	}
	// Only 50%: below threshold.
	secs[0].Records = secs[0].Records[:2]
	s = ScorePage(gt, secs)
	if s.Perfect != 0 || s.Partial != 0 {
		t.Fatalf("score = %+v, want incorrect", s)
	}
}

func TestScorePageExtraRecordBreaksPerfect(t *testing.T) {
	gt := synth.GroundTruth{Sections: []synth.GTSection{{
		Records: []synth.GTRecord{
			{Marker: "qjaa", Lines: []string{"Title qjaa"}},
			{Marker: "qjbb", Lines: []string{"Title qjbb"}},
			{Marker: "qjcc", Lines: []string{"Title qjcc"}},
		},
	}}}
	secs := []*core.Section{{
		Records: []core.Record{
			{Lines: []string{"Title qjaa"}},
			{Lines: []string{"Title qjbb"}},
			{Lines: []string{"Title qjcc"}},
			{Lines: []string{"Some template junk"}},
		},
	}}
	s := ScorePage(gt, secs)
	if s.Perfect != 0 {
		t.Fatalf("extra record should break perfect: %+v", s)
	}
	if s.Partial != 1 {
		t.Fatalf("should still be partial: %+v", s)
	}
}

func TestScorePageSplitSectionNotPerfect(t *testing.T) {
	gt := synth.GroundTruth{Sections: []synth.GTSection{{
		Records: []synth.GTRecord{
			{Marker: "qjaa", Lines: []string{"Title qjaa"}},
			{Marker: "qjbb", Lines: []string{"Title qjbb"}},
		},
	}}}
	// Each record extracted into its own section: neither section alone
	// has all records, and precision suffers from the doubled count.
	secs := []*core.Section{
		{Records: []core.Record{{Lines: []string{"Title qjaa"}}}},
		{Records: []core.Record{{Lines: []string{"Title qjbb"}}}},
	}
	s := ScorePage(gt, secs)
	if s.Perfect != 0 {
		t.Fatalf("split section counted perfect: %+v", s)
	}
	if s.Extracted != 2 || s.Actual != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
}

func TestScorePageRecordWithWrongLines(t *testing.T) {
	gt := synth.GroundTruth{Sections: []synth.GTSection{{
		Records: []synth.GTRecord{
			{Marker: "qjaa", Lines: []string{"Title qjaa", "snippet qjaa"}},
		},
	}}}
	// Record found but missing its snippet line: not exact.
	secs := []*core.Section{{
		Records: []core.Record{{Lines: []string{"Title qjaa"}}},
	}}
	s := ScorePage(gt, secs)
	if s.Perfect != 0 || s.Partial != 0 {
		t.Fatalf("inexact record accepted: %+v", s)
	}
}

func TestScorePageEmpty(t *testing.T) {
	s := ScorePage(synth.GroundTruth{}, nil)
	if s.Actual != 0 || s.Extracted != 0 {
		t.Fatalf("empty score wrong: %+v", s)
	}
	if s.RecallPerfect() != 0 || s.RecordRecall() != 0 {
		t.Fatalf("empty ratios should be 0")
	}
}

func TestRunSmallTestbed(t *testing.T) {
	engines := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 20, MultiSection: 8, Queries: 10})
	res := Run(engines, RunConfig{
		SampleCount:  5,
		PageCount:    10,
		NewExtractor: func() Extractor { return NewMSE(core.DefaultOptions()) },
	})
	total := res.Total()
	t.Logf("\n%s", Header())
	for _, row := range res.Rows() {
		t.Logf("%s", row.Format())
	}
	t.Logf("\n%s", RecordHeader())
	for _, row := range res.Rows() {
		t.Logf("%s", row.RecordFormat())
	}
	if total.Actual == 0 {
		t.Fatalf("no sections evaluated")
	}
	if total.RecallTotal() < 0.70 {
		t.Fatalf("total recall %.3f unreasonably low", total.RecallTotal())
	}
	if total.RecordRecall() < 0.85 {
		t.Fatalf("record recall %.3f unreasonably low", total.RecordRecall())
	}
}
