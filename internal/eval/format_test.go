package eval

import (
	"strings"
	"testing"

	"mse/internal/core"
)

func TestRowFormatting(t *testing.T) {
	row := Row{Label: "Total", PageScore: PageScore{
		Actual: 100, Extracted: 90, Perfect: 70, Partial: 10,
		RecActual: 500, RecExtracted: 510, RecCorrect: 495,
	}}
	s := row.Format()
	for _, want := range []string{"Total", "100", "90", "70", "10", "70.0", "80.0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format() missing %q: %s", want, s)
		}
	}
	r := row.RecordFormat()
	for _, want := range []string{"500", "510", "495", "99.0", "97.1"} {
		if !strings.Contains(r, want) {
			t.Errorf("RecordFormat() missing %q: %s", want, r)
		}
	}
	if !strings.Contains(Header(), "#Actual") || !strings.Contains(RecordHeader(), "#Correct") {
		t.Errorf("headers incomplete")
	}
}

func TestResultRowsSplit(t *testing.T) {
	res := Result{
		SamplePages: PageScore{Actual: 10, Extracted: 9, Perfect: 8},
		TestPages:   PageScore{Actual: 20, Extracted: 18, Perfect: 15},
	}
	rows := res.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Label != "S pgs" || rows[1].Label != "T pgs" || rows[2].Label != "Total" {
		t.Fatalf("labels = %v %v %v", rows[0].Label, rows[1].Label, rows[2].Label)
	}
	if rows[2].Actual != 30 || rows[2].Perfect != 23 {
		t.Fatalf("total row not the sum: %+v", rows[2].PageScore)
	}
}

func TestRunConfigDefaults(t *testing.T) {
	// Zero SampleCount/PageCount fall back to the paper's 5/10.
	res := Run(nil, RunConfig{NewExtractor: func() Extractor { return NewMSE(core.DefaultOptions()) }})
	if res.Total().Actual != 0 {
		t.Fatalf("empty engine list should score zero")
	}
}
