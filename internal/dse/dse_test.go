package dse

import (
	"fmt"
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/mre"
	"mse/internal/synth"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

// enginePage fabricates a result page for query terms with one dynamic
// section whose records carry unique ids.
func enginePage(query [2]string, ids []string) *layout.Page {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<body><h1>TestSite</h1>
	<div><a href="/h">Home</a> | <a href="/a">About</a></div>
	<div>Your search returned %d matches for %s %s.</div>
	<hr>
	<h3>Results</h3><table>`, 100+len(ids), query[0], query[1])
	for _, id := range ids {
		fmt.Fprintf(&sb, `<tr><td><a href="/doc/%s">Title %s about %s</a><br>snippet %s here</td></tr>`,
			id, id, query[0], id)
	}
	sb.WriteString(`</table>
	<div><a href="/more">Click Here for More ...</a></div>
	<hr><div>Copyright 2006 All rights reserved.</div></body>`)
	return render(sb.String())
}

func inputsForPages(pages []*layout.Page, queries [][]string) []*PageInput {
	ins := make([]*PageInput, len(pages))
	for i, p := range pages {
		ins[i] = &PageInput{Page: p, Query: queries[i], MRs: mre.Extract(p, mre.DefaultOptions())}
	}
	return ins
}

func TestCleanLineRemovesDynamics(t *testing.T) {
	p := render(`<body><div>Your search returned 578 matches for knee injury.</div></body>`)
	got := CleanLine(&p.Lines[0], []string{"knee", "injury"})
	if strings.ContainsAny(got, "0123456789") {
		t.Fatalf("digits remain: %q", got)
	}
	if strings.Contains(got, "knee") || strings.Contains(got, "injury") {
		t.Fatalf("query terms remain: %q", got)
	}
	// The cleaned text of the same semi-dynamic line with other dynamics
	// must be identical.
	p2 := render(`<body><div>Your search returned 9 matches for jazz guitar.</div></body>`)
	got2 := CleanLine(&p2.Lines[0], []string{"jazz", "guitar"})
	if got != got2 {
		t.Fatalf("cleaned semi-dynamic lines differ: %q vs %q", got, got2)
	}
}

func TestCleanLineQueryTermWithPunctuation(t *testing.T) {
	p := render(`<body><div>Results for knee, sorted by date</div></body>`)
	got := CleanLine(&p.Lines[0], []string{"knee"})
	if strings.Contains(got, "knee") {
		t.Fatalf("punctuated query term not removed: %q", got)
	}
}

func TestCSBMsMarkTemplateNotRecords(t *testing.T) {
	pages := []*layout.Page{
		enginePage([2]string{"knee", "injury"}, []string{"aa", "bb", "cc", "dd"}),
		enginePage([2]string{"jazz", "guitar"}, []string{"ee", "ff", "gg"}),
	}
	queries := [][]string{{"knee", "injury"}, {"jazz", "guitar"}}
	ins := inputsForPages(pages, queries)
	marks := IdentifyCSBMs(ins, DefaultOptions())

	wantCSBM := []string{"TestSite", "Home", "Your search returned",
		"Results", "Click Here for More", "Copyright"}
	for pi, p := range pages {
		for _, want := range wantCSBM {
			found := false
			for i, l := range p.Lines {
				if strings.Contains(l.Text, want) && marks[pi][i] {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("page %d: template line %q not marked CSBM", pi, want)
			}
		}
		// Record lines must not be CSBMs.
		for i, l := range p.Lines {
			if strings.Contains(l.Text, "Title ") && marks[pi][i] {
				t.Errorf("page %d: record line %q wrongly marked CSBM", pi, l.Text)
			}
		}
	}
}

func TestIdentifyDSsCoversRecords(t *testing.T) {
	pages := []*layout.Page{
		enginePage([2]string{"knee", "injury"}, []string{"aa", "bb", "cc", "dd"}),
		enginePage([2]string{"jazz", "guitar"}, []string{"ee", "ff", "gg"}),
	}
	queries := [][]string{{"knee", "injury"}, {"jazz", "guitar"}}
	ins := inputsForPages(pages, queries)
	dss, _ := Run(ins, DefaultOptions())

	for pi, pageDSs := range dss {
		// Some DS must cover all record titles and have the section
		// heading as its LBM.
		found := false
		for _, ds := range pageDSs {
			txt := ds.Block().Text()
			if strings.Contains(txt, "Title ") && ds.LBMText() == "Results" &&
				strings.Contains(ds.RBMText(), "Click Here") {
				found = true
			}
		}
		if !found {
			for _, ds := range pageDSs {
				t.Logf("page %d DS %v lbm=%q rbm=%q", pi, ds, ds.LBMText(), ds.RBMText())
			}
			t.Fatalf("page %d: no DS bounded by Results/Click Here", pi)
		}
	}
}

func TestFalseSBMFiltered(t *testing.T) {
	// "In stock." recurs in every record; it must not become a CSBM when
	// the MR is known.
	mk := func(query [2]string, ids []string) *layout.Page {
		var sb strings.Builder
		sb.WriteString(`<body><h3>Products</h3><table>`)
		for _, id := range ids {
			fmt.Fprintf(&sb, `<tr><td><a href="/p/%s">Product %s %s</a><br>In stock.<br>snippet %s</td></tr>`,
				id, id, query[0], id)
		}
		sb.WriteString(`</table><div>Copyright 2006.</div></body>`)
		return render(sb.String())
	}
	pages := []*layout.Page{
		mk([2]string{"camera", "lens"}, []string{"aa", "bb", "cc", "dd"}),
		mk([2]string{"laptop", "bag"}, []string{"ee", "ff", "gg", "hh"}),
	}
	queries := [][]string{{"camera", "lens"}, {"laptop", "bag"}}
	ins := inputsForPages(pages, queries)
	marks := IdentifyCSBMs(ins, DefaultOptions())
	for pi, p := range pages {
		for i, l := range p.Lines {
			if l.Text == "In stock." && marks[pi][i] {
				t.Fatalf("page %d: false SBM %q not filtered", pi, l.Text)
			}
		}
	}
}

func TestHiddenSectionYieldsSeparateDSs(t *testing.T) {
	// Page 1 has sections A and B; page 2 has only A.  DSE must still
	// place boundaries around A's records on both pages.
	p1 := render(`<body><h3>Alpha</h3>
	<div><a href="/a1">A one xx</a></div>
	<div><a href="/a2">A two yy</a></div>
	<h3>Beta</h3>
	<div><a href="/b1">B one zz</a></div>
	<div>footer text here</div></body>`)
	p2 := render(`<body><h3>Alpha</h3>
	<div><a href="/a3">A three qq</a></div>
	<div><a href="/a4">A four ww</a></div>
	<div>footer text here</div></body>`)
	ins := []*PageInput{
		{Page: p1, Query: []string{"x"}},
		{Page: p2, Query: []string{"y"}},
	}
	dss, marks := Run(ins, DefaultOptions())
	// "Alpha" and "footer text here" are static; "Beta" appears only on
	// page 1 so it cannot be matched and stays inside a DS there.
	if !markedText(p1, marks[0], "Alpha") || !markedText(p2, marks[1], "Alpha") {
		t.Fatalf("shared heading not marked CSBM")
	}
	if markedText(p1, marks[0], "Beta") {
		t.Fatalf("unmatched heading wrongly marked CSBM")
	}
	if len(dss[0]) == 0 || len(dss[1]) == 0 {
		t.Fatalf("no DSs identified")
	}
}

func markedText(p *layout.Page, marks []bool, text string) bool {
	for i, l := range p.Lines {
		if l.Text == text && marks[i] {
			return true
		}
	}
	return false
}

func TestRunOnSyntheticPages(t *testing.T) {
	engines := synth.GenerateTestbed(synth.Config{Seed: 11, Engines: 8, MultiSection: 4, Queries: 3})
	for _, e := range engines {
		var ins []*PageInput
		var gps []*synth.GenPage
		for q := 0; q < 3; q++ {
			gp := e.Page(q)
			p := render(gp.HTML)
			ins = append(ins, &PageInput{Page: p, Query: gp.Query,
				MRs: mre.Extract(p, mre.DefaultOptions())})
			gps = append(gps, gp)
		}
		dss, marks := Run(ins, DefaultOptions())
		for pi, gp := range gps {
			// Every record marker must fall inside some DS (records are
			// dynamic and can never be CSBMs).
			p := ins[pi].Page
			for i, l := range p.Lines {
				if strings.Contains(l.Text, "qj") && marks[pi][i] &&
					!strings.Contains(l.Text, "Click Here") {
					t.Fatalf("engine %d page %d: record line %q marked CSBM",
						e.ID, pi, l.Text)
				}
			}
			covered := 0
			total := 0
			for _, s := range gp.Truth.Sections {
				for _, r := range s.Records {
					total++
					for _, ds := range dss[pi] {
						if strings.Contains(ds.Block().Text(), r.Marker) {
							covered++
							break
						}
					}
				}
			}
			if total > 0 && covered < total {
				t.Fatalf("engine %d page %d: only %d/%d records inside DSs",
					e.ID, pi, covered, total)
			}
		}
	}
}
