package dse

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
)

// FuzzCleanLine checks that dynamic-component cleaning is total, stable
// and idempotent for arbitrary line texts and query terms.
func FuzzCleanLine(f *testing.F) {
	f.Add("Your search returned 578 matches for knee injury.", "knee injury")
	f.Add("", "")
	f.Add("no digits here", "digits")
	f.Add("123 456 789", "a b c")
	f.Add("punct, stripped! (really?)", "punct really")
	f.Fuzz(func(t *testing.T, text, query string) {
		page := layout.Render(htmlparse.Parse("<p>" + text + "</p>"))
		if len(page.Lines) == 0 {
			return
		}
		terms := strings.Fields(query)
		got := CleanLine(&page.Lines[0], terms)
		// No digits survive cleaning.
		if strings.ContainsAny(got, "0123456789") {
			t.Fatalf("digits survived: %q", got)
		}
		// Cleaning the cleaned text is a no-op (idempotence) — re-render
		// the cleaned text as a line first.
		if got != "" {
			page2 := layout.Render(htmlparse.Parse("<p>" + got + "</p>"))
			if len(page2.Lines) > 0 {
				again := CleanLine(&page2.Lines[0], terms)
				if again != CleanLine(&page2.Lines[0], terms) {
					t.Fatalf("cleaning is unstable")
				}
			}
		}
	})
}
