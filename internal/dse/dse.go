// Package dse implements the DSE algorithm of Section 5.2 of the MSE
// paper (Figure 5): identification of candidate section boundary markers
// (CSBMs) by mutual-best matching of cleaned content lines across sample
// result pages, followed by identification of dynamic sections (DSs) as
// the maximal runs of non-CSBM lines.
//
// A content line is a CSBM candidate when — after removing its dynamic
// components (digits and query terms) — it has the same text and a
// compatible tag path on another result page of the same engine, with the
// two lines being each other's most compatible match (smallest tag path
// distance, Formula 1).  Tentative CSBMs whose text recurs in every record
// of an extracted MR ("Buy new: $…") are filtered out.
package dse

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"mse/internal/dom"
	"mse/internal/layout"
	"mse/internal/sect"
)

// Options control DSE.
type Options struct {
	// MinPairs is the number of page pairs in which a line must be
	// mutual-best matched before it is accepted as a CSBM (1 = union of
	// pairwise marks, the default).
	MinPairs int
}

// DefaultOptions returns the defaults.
func DefaultOptions() Options {
	return Options{MinPairs: 1}
}

// PageInput is one sample result page with the query that produced it and
// the MRs extracted from it by MRE (used for CSBM filtering).
type PageInput struct {
	Page  *layout.Page
	Query []string
	MRs   []*sect.Section
}

// CleanLine removes the dynamic components of a content line's text:
// digits are stripped from every token and query terms are dropped (lines
// 1-2 of Figure 5).  Rule lines are given a stable sentinel so static
// separators can match across pages.  Callers cleaning many lines against
// the same query should reuse a LineCleaner instead.
func CleanLine(l *layout.Line, query []string) string {
	var c LineCleaner
	c.Reset(query)
	return c.Clean(l)
}

// LineCleaner is a reusable CleanLine: the query-term set and the output
// buffer persist across Clean calls, so cleaning a line costs exactly one
// string allocation (the result).  The zero value is ready after Reset.
// A LineCleaner must not be shared between goroutines.
type LineCleaner struct {
	qset  map[string]bool
	out   []byte
	lower []byte
}

// Reset installs the query whose terms Clean drops from line texts.
func (c *LineCleaner) Reset(query []string) {
	if c.qset == nil {
		c.qset = make(map[string]bool, len(query))
	} else {
		clear(c.qset)
	}
	for _, q := range query {
		c.qset[strings.ToLower(q)] = true
	}
}

const trimCutset = ".,;:!?()"

func inCutset(b byte) bool { return b < 0x80 && strings.IndexByte(trimCutset, b) >= 0 }

// Clean returns the cleaned text of l, byte-identical to CleanLine with
// the query last given to Reset.
func (c *LineCleaner) Clean(l *layout.Line) string {
	if l.Type == layout.RuleLine {
		return "\x00hr"
	}
	out := c.out[:0]
	s := l.Text
	i := 0
	for i < len(s) {
		r, w := rune(s[i]), 1
		if r >= utf8.RuneSelf {
			r, w = utf8.DecodeRuneInString(s[i:])
		}
		if unicode.IsSpace(r) {
			i += w
			continue
		}
		start := i
		for i < len(s) {
			r, w = rune(s[i]), 1
			if r >= utf8.RuneSelf {
				r, w = utf8.DecodeRuneInString(s[i:])
			}
			if unicode.IsSpace(r) {
				break
			}
			i += w
		}
		f := s[start:i]
		if c.isQueryTerm(f) {
			continue
		}
		mark := len(out)
		if len(out) > 0 {
			out = append(out, ' ')
		}
		stripped := appendStripDigits(out, f)
		if len(stripped) == len(out) {
			out = out[:mark] // field was digits-only; drop the separator too
			continue
		}
		out = stripped
	}
	c.out = out
	return string(out)
}

// isQueryTerm reports whether the field, with the punctuation cutset
// trimmed from both ends and lowercased, is one of the query terms.  The
// lookup allocates nothing for ASCII fields (the common case).
func (c *LineCleaner) isQueryTerm(f string) bool {
	if len(c.qset) == 0 {
		return false
	}
	// strings.Trim with an ASCII cutset only ever removes single bytes.
	for len(f) > 0 && inCutset(f[0]) {
		f = f[1:]
	}
	for len(f) > 0 && inCutset(f[len(f)-1]) {
		f = f[:len(f)-1]
	}
	ascii, lower := true, true
	for j := 0; j < len(f); j++ {
		b := f[j]
		if b >= 0x80 {
			ascii = false
			break
		}
		if b >= 'A' && b <= 'Z' {
			lower = false
		}
	}
	if !ascii {
		return c.qset[strings.ToLower(f)]
	}
	if lower {
		return c.qset[f]
	}
	buf := append(c.lower[:0], f...)
	c.lower = buf[:0]
	for j, b := range buf {
		if b >= 'A' && b <= 'Z' {
			buf[j] = b + 'a' - 'A'
		}
	}
	return c.qset[string(buf)]
}

// appendStripDigits appends s to dst with ASCII digits removed, matching
// the rune-oriented stripDigits byte for byte (invalid UTF-8 sequences
// become U+FFFD, as strings.Builder.WriteRune produced).
func appendStripDigits(dst []byte, s string) []byte {
	ascii := true
	for j := 0; j < len(s); j++ {
		if s[j] >= 0x80 {
			ascii = false
			break
		}
	}
	if ascii {
		for j := 0; j < len(s); j++ {
			if s[j] < '0' || s[j] > '9' {
				dst = append(dst, s[j])
			}
		}
		return dst
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			dst = utf8.AppendRune(dst, r)
		}
	}
	return dst
}

// cleanedPage caches per-line cleaned texts for one page.
type cleanedPage struct {
	in    *PageInput
	clean []string
}

func newCleanedPage(in *PageInput) *cleanedPage {
	cp := &cleanedPage{in: in, clean: make([]string, len(in.Page.Lines))}
	var c LineCleaner
	c.Reset(in.Query)
	for i := range in.Page.Lines {
		cp.clean[i] = c.Clean(&in.Page.Lines[i])
	}
	return cp
}

// mostCompatible implements find_most_compatible_line(l, L): among the
// lines of other with the same cleaned text and a compatible compact tag
// path, return the one with the smallest path distance (-1 if none).
func mostCompatible(self *cleanedPage, i int, other *cleanedPage) int {
	text := self.clean[i]
	if text == "" {
		return -1 // blank/number-only lines cannot be boundary markers
	}
	cp := self.in.Page.Lines[i].CPath
	best := -1
	bestDist := 0.0
	for j, t := range other.clean {
		if t != text {
			continue
		}
		ocp := other.in.Page.Lines[j].CPath
		if !cp.Compatible(ocp) {
			continue
		}
		d := dom.PathDistance(cp, ocp)
		if best == -1 || d < bestDist {
			best, bestDist = j, d
		}
	}
	return best
}

// IdentifyCSBMs runs the CSBM phase of DSE over every pair of input pages
// and returns, per page, a boolean mark for each content line.  A line is
// marked when it is mutual-best matched in at least MinPairs page pairs
// and survives the MR-based filter.
func IdentifyCSBMs(inputs []*PageInput, opt Options) [][]bool {
	if opt.MinPairs < 1 {
		opt.MinPairs = 1
	}
	cleaned := make([]*cleanedPage, len(inputs))
	for i, in := range inputs {
		cleaned[i] = newCleanedPage(in)
	}
	votes := make([][]int, len(inputs))
	for i, in := range inputs {
		votes[i] = make([]int, len(in.Page.Lines))
	}
	for a := 0; a < len(inputs); a++ {
		for b := a + 1; b < len(inputs); b++ {
			matchPair(cleaned[a], cleaned[b], votes[a], votes[b])
		}
	}
	marks := make([][]bool, len(inputs))
	for i := range inputs {
		marks[i] = make([]bool, len(votes[i]))
		for j, v := range votes[i] {
			marks[i][j] = v >= opt.MinPairs
		}
	}
	// The boundary markers of an engine are engine-wide template content;
	// a text exposed as a false SBM by the MRs of any sample page is a
	// false SBM on every sample page (pages with too few records for MRE
	// cannot expose it themselves).
	falseTexts := map[string]bool{}
	for i := range inputs {
		collectFalseSBMs(cleaned[i], falseTexts)
	}
	if len(falseTexts) > 0 {
		for i := range inputs {
			for j := range marks[i] {
				if marks[i][j] && falseTexts[cleaned[i].clean[j]] {
					marks[i][j] = false
				}
			}
		}
	}
	return marks
}

// matchPair marks mutual-best line pairs between two pages (lines 3-9 of
// Figure 5).
func matchPair(p1, p2 *cleanedPage, votes1, votes2 []int) {
	mc1 := make([]int, len(p1.clean))
	for i := range p1.clean {
		mc1[i] = mostCompatible(p1, i, p2)
	}
	mc2 := make([]int, len(p2.clean))
	for j := range p2.clean {
		mc2[j] = mostCompatible(p2, j, p1)
	}
	for i, j := range mc1 {
		if j >= 0 && mc2[j] == i {
			votes1[i]++
			votes2[j]++
		}
	}
}

// collectFalseSBMs implements filter_CSBMs (lines 10-11 of Figure 5): a
// tentative CSBM whose cleaned text appears in (nearly) every record of
// some MR is a repeated record string, not a boundary marker.  The texts
// are accumulated into out so the verdict can be applied engine-wide.
func collectFalseSBMs(cp *cleanedPage, out map[string]bool) {
	for _, mr := range cp.in.MRs {
		if len(mr.Records) < 2 {
			continue
		}
		// Texts present in (nearly) every record of this MR.  Requiring
		// presence in at least 80% of records — rather than literally all
		// — keeps the filter effective when MRE mis-extracted a record
		// near the section boundary (the boundary problem of §5.1).
		counts := map[string]int{}
		for r := range mr.Records {
			for t := range recordTexts(cp, mr, r) {
				counts[t]++
			}
		}
		need := (len(mr.Records)*4 + 4) / 5 // ceil(0.8 n)
		if need < 2 {
			need = 2
		}
		for t, n := range counts {
			if n >= need && t != "" {
				out[t] = true
			}
		}
	}
}

func recordTexts(cp *cleanedPage, mr *sect.Section, r int) map[string]bool {
	out := map[string]bool{}
	rec := mr.Records[r]
	for i := rec.Start; i < rec.End && i < len(cp.clean); i++ {
		out[cp.clean[i]] = true
	}
	return out
}

// IdentifyDSs implements identify_DSs (lines 12-13 of Figure 5): the page
// is partitioned into maximal segments of consecutive CSBM / non-CSBM
// lines; the non-CSBM segments are the candidate dynamic sections, each
// taking the nearest surrounding CSBM lines as its LBM and RBM.
func IdentifyDSs(p *layout.Page, csbm []bool) []*sect.Section {
	var out []*sect.Section
	i := 0
	for i < len(p.Lines) {
		if csbm[i] {
			i++
			continue
		}
		start := i
		for i < len(p.Lines) && !csbm[i] {
			i++
		}
		ds := sect.New(p, start, i)
		if start > 0 {
			ds.LBM = start - 1
		}
		if i < len(p.Lines) {
			ds.RBM = i
		}
		out = append(out, ds)
	}
	return out
}

// Run executes DSE over the sample pages: CSBM identification followed by
// DS identification on every page.  It returns the per-page dynamic
// sections and the per-page CSBM marks.
func Run(inputs []*PageInput, opt Options) ([][]*sect.Section, [][]bool) {
	marks := IdentifyCSBMs(inputs, opt)
	dss := make([][]*sect.Section, len(inputs))
	for i, in := range inputs {
		dss[i] = IdentifyDSs(in.Page, marks[i])
	}
	return dss, marks
}
