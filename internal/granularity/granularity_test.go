package granularity

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

func TestResolveMergedRecordsSplit(t *testing.T) {
	// A section whose "records" each contain two true records (merged).
	p := render(`<body><table>
	<tr><td><a href="/1">Title One</a><br>snippet one words</td></tr>
	<tr><td><a href="/2">Title Two</a><br>snippet two words</td></tr>
	<tr><td><a href="/3">Title Three</a><br>snippet three words</td></tr>
	<tr><td><a href="/4">Title Four</a><br>snippet four words</td></tr>
	<tr><td><a href="/5">Title Five</a><br>snippet five words</td></tr>
	<tr><td><a href="/6">Title Six</a><br>snippet six words</td></tr>
	</table></body>`)
	s := sect.New(p, 0, 12)
	// Wrong partition: 3 oversized records of 4 lines (2 true records
	// each).
	for i := 0; i < 12; i += 4 {
		s.Records = append(s.Records, visual.Block{Page: p, Start: i, End: i + 4})
	}
	out := Resolve(p, []*sect.Section{s}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("sections = %d, want 1", len(out))
	}
	if got := len(out[0].Records); got != 6 {
		for _, r := range out[0].Records {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("records = %d, want 6", got)
	}
}

func TestResolveSplitRecordsMerged(t *testing.T) {
	// A section whose records were split in half (title and snippet
	// separated): cohesion must prefer the merged partition.
	p := render(`<body><table>
	<tr><td><a href="/1">Title One</a></td></tr>
	<tr><td>snippet one words here</td></tr>
	<tr><td><a href="/2">Title Two</a></td></tr>
	<tr><td>snippet two words here</td></tr>
	<tr><td><a href="/3">Title Three</a></td></tr>
	<tr><td>snippet three words here</td></tr>
	</table></body>`)
	s := sect.New(p, 0, 6)
	for i := 0; i < 6; i++ {
		s.Records = append(s.Records, visual.Block{Page: p, Start: i, End: i + 1})
	}
	out := Resolve(p, []*sect.Section{s}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("sections = %d, want 1", len(out))
	}
	if got := len(out[0].Records); got != 3 {
		for _, r := range out[0].Records {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("records = %d, want 3", got)
	}
	for _, r := range out[0].Records {
		if r.Len() != 2 {
			t.Fatalf("merged record should span 2 lines, got %d", r.Len())
		}
	}
}

func TestResolveKeepsCorrectPartition(t *testing.T) {
	p := render(`<body><table>
	<tr><td><a href="/1">Title One</a><br>snippet one words</td></tr>
	<tr><td><a href="/2">Title Two</a><br>snippet two words</td></tr>
	<tr><td><a href="/3">Title Three</a><br>snippet three words</td></tr>
	</table></body>`)
	s := sect.New(p, 0, 6)
	for i := 0; i < 6; i += 2 {
		s.Records = append(s.Records, visual.Block{Page: p, Start: i, End: i + 2})
	}
	out := Resolve(p, []*sect.Section{s}, DefaultOptions())
	if len(out) != 1 || len(out[0].Records) != 3 {
		t.Fatalf("correct partition was changed: %d sections, %d records",
			len(out), len(out[0].Records))
	}
	for _, r := range out[0].Records {
		if r.Len() != 2 {
			t.Fatalf("record length changed to %d", r.Len())
		}
	}
}

func TestResolveSingleRecordSectionsUntouched(t *testing.T) {
	p := render(`<body>
	<h3>A</h3><div><a href="/a">Single A</a></div>
	<h3>B</h3><div><a href="/b">Single B</a></div>
	</body>`)
	// Two single-record sections separated by headings (not adjacent):
	// they must NOT be merged.
	s1 := sect.New(p, 1, 2)
	s1.Records = []visual.Block{{Page: p, Start: 1, End: 2}}
	s2 := sect.New(p, 3, 4)
	s2.Records = []visual.Block{{Page: p, Start: 3, End: 4}}
	out := Resolve(p, []*sect.Section{s1, s2}, DefaultOptions())
	if len(out) != 2 {
		t.Fatalf("non-adjacent single-record sections merged: %d", len(out))
	}
}

func TestResolveMergesAdjacentSingleRecordSiblings(t *testing.T) {
	// Large records mistakenly extracted as sections: adjacent sibling
	// sections with one record each collapse into one section.
	p := render(`<body><div>
	<div><a href="/1">Big One</a><br>line a<br>line b</div>
	<div><a href="/2">Big Two</a><br>line c<br>line d</div>
	<div><a href="/3">Big Three</a><br>line e<br>line f</div>
	</div></body>`)
	var secs []*sect.Section
	for i := 0; i < 9; i += 3 {
		s := sect.New(p, i, i+3)
		s.Records = []visual.Block{{Page: p, Start: i, End: i + 3}}
		secs = append(secs, s)
	}
	out := Resolve(p, secs, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("sections = %d, want 1 (merged)", len(out))
	}
	if len(out[0].Records) != 3 {
		t.Fatalf("merged section records = %d, want 3", len(out[0].Records))
	}
}

func TestResolveOversizedSectionsAsRecords(t *testing.T) {
	// Two consecutive sections whose outer containers share a format but
	// whose internal records differ were mistaken for two records of one
	// MR; the boundary sub-records are alien, so Resolve must split the
	// MR into sections.
	p := render(`<body><div>
	<div class="sec">
	  <div><a href="/a1">A one title</a><br>snippet a one words</div>
	  <div><a href="/a2">A two title</a><br>snippet a two words</div>
	  <div><a href="/a3">A three title</a><br>snippet a three words</div>
	</div>
	<div class="sec" style="margin-left: 60px">
	  <div><b><a href="/b1">B one item</a></b><br><i>different style one</i></div>
	  <div><b><a href="/b2">B two item</a></b><br><i>different style two</i></div>
	  <div><b><a href="/b3">B three item</a></b><br><i>different style three</i></div>
	</div>
	</div></body>`)
	// Lines 0..5: section A records; lines 6..11: section B records.
	s := sect.New(p, 0, 12)
	s.Records = []visual.Block{
		{Page: p, Start: 0, End: 6},
		{Page: p, Start: 6, End: 12},
	}
	out := Resolve(p, []*sect.Section{s}, DefaultOptions())
	if len(out) < 2 {
		for _, o := range out {
			t.Logf("section %v:\n%s", o, o.Block().Text())
		}
		t.Fatalf("sections-as-records not split: %d sections", len(out))
	}
	for _, o := range out {
		txt := o.Block().Text()
		if strings.Contains(txt, "A one") && strings.Contains(txt, "B one") {
			t.Fatalf("split section still spans both true sections")
		}
	}
}

func TestResolveEmptyAndTiny(t *testing.T) {
	p := render(`<body><p>x</p></body>`)
	if out := Resolve(p, nil, DefaultOptions()); len(out) != 0 {
		t.Fatalf("empty input should stay empty")
	}
	s := sect.New(p, 0, 1)
	out := Resolve(p, []*sect.Section{s}, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("tiny section mishandled")
	}
}
