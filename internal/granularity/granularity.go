// Package granularity implements Section 5.5 of the MSE paper: resolving
// the section-record granularity problem after refinement.
//
// Two symmetric mistakes are repaired:
//
//   - the oversized-record problem — consecutive sections with the same
//     format were taken as records of one big MR, or several true records
//     were merged into one; detected by record-mining the largest records
//     and applying the W × Dinr dissimilarity test to the boundary
//     sub-records;
//   - the splitting-record problem — one true record was split into
//     smaller pieces, or large records were extracted as whole sections;
//     repaired by re-partitioning via section cohesion and by merging runs
//     of sibling single-record sections into one section.
package granularity

import (
	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/sect"
	"mse/internal/visual"
)

// Options control granularity resolution.
type Options struct {
	// W is the paper's dissimilarity multiplier (1.8).
	W float64
	// MinDinr floors Dinr when forming the W × Dinr threshold.
	MinDinr       float64
	LineWeights   visual.LineWeights
	RecordWeights visual.RecordWeights
	Mining        mining.Options
	// MaxMerge bounds the k of k-consecutive-record merge candidates when
	// looking for split records.
	MaxMerge int
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		W:             1.8,
		MinDinr:       0.08,
		LineWeights:   visual.DefaultLineWeights(),
		RecordWeights: visual.DefaultRecordWeights(),
		Mining:        mining.DefaultOptions(),
		MaxMerge:      8,
	}
}

// Resolve applies both granularity repairs to a page's refined sections
// and returns the corrected section list in document order.
func Resolve(page *layout.Page, sections []*sect.Section, opt Options) []*sect.Section {
	var out []*sect.Section
	for _, s := range sections {
		out = append(out, resolveOversized(page, s, opt)...)
	}
	for _, s := range out {
		resolveSplitWithinSection(s, opt)
	}
	return mergeSingleRecordSiblings(page, out, opt)
}

// resolveOversized checks a section for records that are really whole
// sections (or merged records).  Following §5.5: the largest record is
// record-mined; if it decomposes, the boundary sub-records decide — via
// the W × Dinr test — whether the original "records" were sections (split
// the MR) or merely merged records (adopt the finer partition).
func resolveOversized(page *layout.Page, s *sect.Section, opt Options) []*sect.Section {
	if len(s.Records) < 2 {
		return []*sect.Section{s}
	}
	// Find the largest record and try to mine sub-records from it.
	largest := 0
	for i, r := range s.Records {
		if r.Len() > s.Records[largest].Len() {
			largest = i
		}
	}
	lr := s.Records[largest]
	sub := mining.MineRecords(page, lr.Start, lr.End, opt.Mining)

	// When the largest record decomposes, decide section-vs-merged-record
	// by testing consecutive record pairs R1, R2: mine both; if the
	// boundary sub-records (last of R1, first of R2) are alien to the
	// other side's sub-records, R1 and R2 are sections.  (A largest record
	// that does not decompose rules the sections case out, but other
	// records may still be merged pairs — §5.5 keeps "checking other large
	// records" — so fall through to the full-partition comparison below.)
	if len(sub) > 1 && consecutivePairsAreSections(page, s, opt) {
		var out []*sect.Section
		for _, r := range s.Records {
			ns := sect.New(page, r.Start, r.End)
			ns.Records = mining.MineRecords(page, r.Start, r.End, opt.Mining)
			out = append(out, ns)
		}
		if len(out) > 0 {
			out[0].LBM = s.LBM
			out[len(out)-1].RBM = s.RBM
		}
		return out
	}

	// Merged records within a correct section: build the fully refined
	// partition (every decomposable record replaced by its sub-records)
	// and adopt it when its cohesion beats the original partition.
	// Comparing one replacement at a time would pit a mixed-granularity
	// partition against a uniform one and always lose.
	var refined []visual.Block
	decomposed := false
	for _, r := range s.Records {
		subR := mining.MineRecords(page, r.Start, r.End, opt.Mining)
		if len(subR) > 1 {
			decomposed = true
			refined = append(refined, subR...)
		} else {
			refined = append(refined, r)
		}
	}
	if decomposed {
		coOrig := mining.PartitionScore(page, s.Records, s.Start, s.End, opt.Mining)
		coAlt := mining.PartitionScore(page, refined, s.Start, s.End, opt.Mining)
		if coAlt > coOrig {
			s.Records = refined
		}
	}
	return []*sect.Section{s}
}

// consecutivePairsAreSections applies the §5.5 test to the section's
// consecutive record pairs: with R1 mined into ⟨r11..r1u⟩ and R2 into
// ⟨r21..r2v⟩, R1 and R2 are sections when Davgrs(r21, R1subs) > W×Dinr(R1subs)
// or Davgrs(r1u, R2subs) > W×Dinr(R2subs).
func consecutivePairsAreSections(page *layout.Page, s *sect.Section, opt Options) bool {
	votes, tests := 0, 0
	for i := 0; i+1 < len(s.Records); i++ {
		r1, r2 := s.Records[i], s.Records[i+1]
		sub1 := mining.MineRecords(page, r1.Start, r1.End, opt.Mining)
		sub2 := mining.MineRecords(page, r2.Start, r2.End, opt.Mining)
		if len(sub1) < 2 || len(sub2) < 2 {
			continue // a record that does not decompose is a plain record
		}
		tests++
		t1 := threshold(sub1, opt)
		t2 := threshold(sub2, opt)
		r21 := sub2[0]
		r1u := sub1[len(sub1)-1]
		if visual.AvgRecordDistance(r21, sub1, opt.RecordWeights) > t1 ||
			visual.AvgRecordDistance(r1u, sub2, opt.RecordWeights) > t2 {
			votes++
		}
	}
	return tests > 0 && votes*2 > tests // majority of testable pairs
}

// resolveSplitWithinSection repairs records that were split while the
// section itself is correct: every "merge k consecutive records" partition
// is scored by cohesion and the best partition is adopted (§5.5).
func resolveSplitWithinSection(s *sect.Section, opt Options) {
	n := len(s.Records)
	if n < 2 {
		return
	}
	best := s.Records
	bestScore := mining.PartitionScore(s.Page, best, s.Start, s.End, opt.Mining)
	maxK := opt.MaxMerge
	if maxK > n {
		maxK = n
	}
	for k := 2; k <= maxK; k++ {
		if n%k != 0 {
			continue
		}
		var merged []visual.Block
		ok := true
		for i := 0; i < n; i += k {
			first, last := s.Records[i], s.Records[i+k-1]
			if first.End > last.Start && i+k-1 != i {
				ok = false
				break
			}
			merged = append(merged, visual.Block{Page: s.Page, Start: first.Start, End: last.End})
		}
		if !ok {
			continue
		}
		if sc := mining.PartitionScore(s.Page, merged, s.Start, s.End, opt.Mining); sc > bestScore {
			best, bestScore = merged, sc
		}
	}
	s.Records = best
}

// mergeSingleRecordSiblings handles the other splitting sub-case: a run of
// consecutive sections that are siblings under one DOM subtree and hold a
// single record each is really one section whose records were extracted as
// sections.  The run is replaced by one section with each original section
// as a record.
func mergeSingleRecordSiblings(page *layout.Page, sections []*sect.Section, opt Options) []*sect.Section {
	var out []*sect.Section
	i := 0
	for i < len(sections) {
		j := i
		for j < len(sections) && len(sections[j].Records) == 1 &&
			(j == i || adjacentSiblings(page, sections[j-1], sections[j])) {
			j++
		}
		if j-i >= 2 {
			ns := sect.New(page, sections[i].Start, sections[j-1].End)
			for k := i; k < j; k++ {
				ns.Records = append(ns.Records, sections[k].Block())
			}
			ns.LBM = sections[i].LBM
			ns.RBM = sections[j-1].RBM
			out = append(out, ns)
			i = j
			continue
		}
		out = append(out, sections[i])
		i++
	}
	return out
}

// adjacentSiblings reports whether two sections are line-adjacent and
// their minimal subtrees share a parent in the DOM.
func adjacentSiblings(page *layout.Page, a, b *sect.Section) bool {
	if a.End != b.Start {
		return false
	}
	na := page.MinimalSubtree(a.Start, a.End)
	nb := page.MinimalSubtree(b.Start, b.End)
	if na == nil || nb == nil {
		return false
	}
	return na.Parent != nil && na.Parent == nb.Parent
}

func threshold(recs []visual.Block, opt Options) float64 {
	dinr := visual.InterRecordDistance(recs, opt.RecordWeights)
	if dinr < opt.MinDinr {
		dinr = opt.MinDinr
	}
	return opt.W * dinr
}
