package editdist

import (
	"math"
	"testing"
	"testing/quick"

	"mse/internal/dom"
	"mse/internal/htmlparse"
)

func TestStringDistanceClassic(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := StringDistance(c.a, c.b); got != c.want {
			t.Errorf("StringDistance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNormalizedStringDistanceRange(t *testing.T) {
	if got := NormalizedStringDistance("", ""); got != 0 {
		t.Errorf("empty strings: %g", got)
	}
	if got := NormalizedStringDistance("abc", "abc"); got != 0 {
		t.Errorf("equal strings: %g", got)
	}
	if got := NormalizedStringDistance("abc", "xyz"); got != 1 {
		t.Errorf("disjoint strings: %g, want 1", got)
	}
}

func TestQuickStringDistanceMetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := StringDistance(a, b)
		if d != StringDistance(b, a) {
			return false // symmetry
		}
		if (a == b) != (d == 0) {
			return false // identity
		}
		// Upper bound: max(len); lower bound: |len diff|.
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStringDistanceTriangle(t *testing.T) {
	f := func(a, b, c string) bool {
		for _, s := range []*string{&a, &b, &c} {
			if len(*s) > 20 {
				*s = (*s)[:20]
			}
		}
		ab := StringDistance(a, b)
		bc := StringDistance(b, c)
		ac := StringDistance(a, c)
		return ac <= ab+bc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func body(src string) *dom.Node {
	doc := htmlparse.Parse(src)
	bodies := doc.FindAll("body")
	return bodies[0]
}

func TestTreeEditDistanceIdentical(t *testing.T) {
	a := body(`<div><p>x</p><p>y</p></div>`)
	b := body(`<div><p>u</p><p>v</p></div>`)
	// Text nodes share one label, so these trees are structurally equal.
	if got := TreeEditDistance(a, b); got != 0 {
		t.Fatalf("distance = %d, want 0", got)
	}
}

func TestTreeEditDistanceSingleRelabel(t *testing.T) {
	a := body(`<div><p>x</p></div>`)
	b := body(`<div><span>x</span></div>`)
	if got := TreeEditDistance(a, b); got != 1 {
		t.Fatalf("distance = %d, want 1", got)
	}
}

func TestTreeEditDistanceInsertion(t *testing.T) {
	a := body(`<div><p>x</p></div>`)
	b := body(`<div><p>x</p><p>y</p></div>`)
	// Insert one <p> and one text node.
	if got := TreeEditDistance(a, b); got != 2 {
		t.Fatalf("distance = %d, want 2", got)
	}
}

func TestTreeEditDistanceNilHandling(t *testing.T) {
	a := body(`<p>x</p>`)
	if got := TreeEditDistance(nil, nil); got != 0 {
		t.Fatalf("nil,nil = %d", got)
	}
	if got := TreeEditDistance(a, nil); got != a.Size() {
		t.Fatalf("a,nil = %d, want %d", got, a.Size())
	}
	if got := TreeEditDistance(nil, a); got != a.Size() {
		t.Fatalf("nil,a = %d, want %d", got, a.Size())
	}
}

func TestTreeEditDistanceDeepVsFlat(t *testing.T) {
	deep := body(`<div><div><div><p>x</p></div></div></div>`)
	flat := body(`<div><p>x</p></div>`)
	got := TreeEditDistance(deep, flat)
	if got != 2 {
		t.Fatalf("distance = %d, want 2 (delete two divs)", got)
	}
}

func TestTreeDistNormalized(t *testing.T) {
	a := body(`<div><p>x</p></div>`)
	b := body(`<div><p>x</p></div>`)
	if got := TreeDist(a, b); got != 0 {
		t.Fatalf("equal trees: %g", got)
	}
	c := body(`<table><tr><td>q</td></tr></table>`)
	d := TreeDist(a, c)
	if d <= 0 || d > 1 {
		t.Fatalf("TreeDist out of range: %g", d)
	}
	if got := TreeDist(nil, a); got != 1 {
		t.Fatalf("nil vs tree: %g, want 1", got)
	}
}

func TestQuickTreeDistMetricProperties(t *testing.T) {
	trees := []*dom.Node{
		body(`<p>a</p>`),
		body(`<div><p>a</p></div>`),
		body(`<table><tr><td>a</td><td>b</td></tr></table>`),
		body(`<ul><li>x</li><li>y</li><li>z</li></ul>`),
		body(`<div><a href=x>l</a><br><span>s</span></div>`),
	}
	f := func(i, j uint8) bool {
		a := trees[int(i)%len(trees)]
		b := trees[int(j)%len(trees)]
		d1 := TreeEditDistance(a, b)
		d2 := TreeEditDistance(b, a)
		if d1 != d2 {
			return false
		}
		if a == b && d1 != 0 {
			return false
		}
		nd := TreeDist(a, b)
		return nd >= 0 && nd <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForestDist(t *testing.T) {
	f1 := body(`<div><p>a</p><p>b</p></div>`).Children()
	f2 := body(`<div><p>c</p><p>d</p></div>`).Children()
	if got := ForestDist(f1, f2); got != 0 {
		t.Fatalf("structurally equal forests: %g", got)
	}
	f3 := body(`<div><table><tr><td>z</td></tr></table></div>`).Children()
	d := ForestDist(f1, f3)
	if d <= 0 || d > 1 {
		t.Fatalf("ForestDist out of range: %g", d)
	}
	if got := ForestDist(nil, nil); got != 0 {
		t.Fatalf("empty forests: %g", got)
	}
	if got := ForestDist(f1, nil); got != 1 {
		t.Fatalf("forest vs empty: %g, want 1", got)
	}
}

func TestForestDistPartialOverlap(t *testing.T) {
	f1 := body(`<div><p>a</p><p>b</p><table><tr><td>x</td></tr></table></div>`).FindAll("div")[0].Children()
	f2 := body(`<div><p>a</p><p>b</p></div>`).FindAll("div")[0].Children()
	d := ForestDist(f1, f2)
	// One of three trees missing: distance 1/3.
	if math.Abs(d-1.0/3.0) > 1e-9 {
		t.Fatalf("ForestDist = %g, want 1/3", d)
	}
}

func TestStringsCustomCosts(t *testing.T) {
	// Sequences [1,2,3] and [1,9,3] with substitution cost |x-y|/10.
	a := []int{1, 2, 3}
	b := []int{1, 9, 3}
	d := Strings(len(a), len(b), Costs{
		Sub: func(i, j int) float64 {
			diff := a[i] - b[j]
			if diff < 0 {
				diff = -diff
			}
			return float64(diff) / 10
		},
		Del: func(int) float64 { return 1 },
		Ins: func(int) float64 { return 1 },
	})
	if math.Abs(d-0.7) > 1e-9 {
		t.Fatalf("custom-cost distance = %g, want 0.7", d)
	}
}
