package editdist

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
)

func BenchmarkTreeEditDistanceRecords(b *testing.B) {
	mk := func(snips int) string {
		return `<td><a href="/x"><b>Title</b></a>` +
			strings.Repeat("<br>snippet text", snips) + `</td>`
	}
	t1 := htmlparse.Parse(mk(2)).FindAll("td")[0]
	t2 := htmlparse.Parse(mk(3)).FindAll("td")[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TreeEditDistance(t1, t2)
	}
}

func BenchmarkForestDistRecords(b *testing.B) {
	mk := func(n int) string {
		var sb strings.Builder
		sb.WriteString("<div>")
		for i := 0; i < n; i++ {
			sb.WriteString(`<div><a href="/x">t</a><br>s</div>`)
		}
		sb.WriteString("</div>")
		return sb.String()
	}
	f1 := htmlparse.Parse(mk(5)).FindAll("div")[0].Children()
	f2 := htmlparse.Parse(mk(7)).FindAll("div")[0].Children()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForestDist(f1, f2)
	}
}

func BenchmarkStringDistance(b *testing.B) {
	s1 := strings.Repeat("the quick brown fox ", 5)
	s2 := strings.Repeat("the slow brown dog ", 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StringDistance(s1, s2)
	}
}
