package editdist

import (
	"math/rand"
	"sync"
	"testing"

	"mse/internal/dom"
)

// randTree builds a random element tree of at most depth levels using the
// given tag alphabet.  Structures repeat often, which is exactly the regime
// the cache is built for.
func randTree(r *rand.Rand, depth int) *dom.Node {
	tags := []string{"div", "span", "a", "td", "tr"}
	n := &dom.Node{Type: dom.ElementNode, Tag: tags[r.Intn(len(tags))]}
	if depth > 0 {
		for i := r.Intn(4); i > 0; i-- {
			n.AppendChild(randTree(r, depth-1))
		}
	}
	return n
}

// withCacheState runs fn and restores the cache's enabled state, capacity
// and contents afterwards, so tests can toggle the global cache freely.
func withCacheState(t *testing.T, fn func()) {
	t.Helper()
	was := CacheEnabled()
	defer func() {
		SetCacheEnabled(was)
		SetCacheCapacity(DefaultCacheCapacity)
		ResetCache()
	}()
	fn()
}

// TestTreeDistCachedMatchesUncached is the differential test at the
// distance level: for random tree pairs the memoized path must return
// exactly the value of the original dynamic program.
func TestTreeDistCachedMatchesUncached(t *testing.T) {
	withCacheState(t, func() {
		r := rand.New(rand.NewSource(42))
		trees := make([]*dom.Node, 40)
		for i := range trees {
			trees[i] = randTree(r, 3)
		}
		type pairResult struct{ cached, direct float64 }
		results := make([]pairResult, 0, len(trees)*len(trees))
		SetCacheEnabled(true)
		ResetCache()
		for _, a := range trees {
			for _, b := range trees {
				results = append(results, pairResult{cached: TreeDist(a, b)})
			}
		}
		// Query everything twice so resident-hit answers are covered too.
		k := 0
		for _, a := range trees {
			for _, b := range trees {
				if got := TreeDist(a, b); got != results[k].cached {
					t.Fatalf("second cached query differs: %v vs %v", got, results[k].cached)
				}
				k++
			}
		}
		SetCacheEnabled(false)
		k = 0
		for _, a := range trees {
			for _, b := range trees {
				results[k].direct = TreeDist(a, b)
				k++
			}
		}
		for i, pr := range results {
			if pr.cached != pr.direct {
				t.Fatalf("pair %d: cached %v != direct %v", i, pr.cached, pr.direct)
			}
		}
	})
}

func TestWithinTreeDistMatchesExact(t *testing.T) {
	withCacheState(t, func() {
		SetCacheEnabled(true)
		ResetCache()
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			a, b := randTree(r, 3), randTree(r, 3)
			eps := float64(r.Intn(11)) / 10
			SetCacheEnabled(false)
			want := TreeDist(a, b) <= eps
			SetCacheEnabled(true)
			if got := WithinTreeDist(a, b, eps); got != want {
				t.Fatalf("WithinTreeDist(%d, eps=%v) = %v, exact says %v", i, eps, got, want)
			}
		}
	})
}

func TestCacheSymmetric(t *testing.T) {
	withCacheState(t, func() {
		SetCacheEnabled(true)
		ResetCache()
		r := rand.New(rand.NewSource(3))
		a, b := randTree(r, 3), randTree(r, 3)
		d1 := TreeDist(a, b)
		s1 := Stats()
		d2 := TreeDist(b, a)
		s2 := Stats()
		if d1 != d2 {
			t.Fatalf("asymmetric: %v vs %v", d1, d2)
		}
		if a.Fingerprint() != b.Fingerprint() && s2.Misses != s1.Misses {
			t.Fatalf("reversed query missed the cache: %+v -> %+v", s1, s2)
		}
	})
}

func TestCacheEvictionBound(t *testing.T) {
	withCacheState(t, func() {
		SetCacheEnabled(true)
		SetCacheCapacity(cacheShardCount) // one entry per shard
		ResetCache()
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 200; i++ {
			TreeDist(randTree(r, 3), randTree(r, 3))
		}
		s := Stats()
		if s.Entries > cacheShardCount {
			t.Fatalf("cache grew past its bound: %d entries > %d", s.Entries, cacheShardCount)
		}
		if s.Misses > 0 && s.Entries == 0 {
			t.Fatal("cache retained nothing despite misses")
		}
	})
}

func TestCacheStatsAccounting(t *testing.T) {
	withCacheState(t, func() {
		SetCacheEnabled(true)
		ResetCache()
		a := randTree(rand.New(rand.NewSource(5)), 3)
		b := a.Clone()
		TreeDist(a, b) // identical fingerprints
		s := Stats()
		if s.Identical != 1 || s.Lookups != 1 {
			t.Fatalf("identical-pair stats wrong: %+v", s)
		}
		r := rand.New(rand.NewSource(6))
		var c *dom.Node
		for {
			c = randTree(r, 3)
			if c.Fingerprint() != a.Fingerprint() {
				break
			}
		}
		TreeDist(a, c)
		TreeDist(a, c)
		s = Stats()
		if s.Misses != 1 || s.Hits != 1 {
			t.Fatalf("miss/hit accounting wrong: %+v", s)
		}
	})
}

// TestCacheConcurrent hammers the cache from many goroutines; run under
// -race it verifies the locking discipline, and the equality check verifies
// that racing computes agree.
func TestCacheConcurrent(t *testing.T) {
	withCacheState(t, func() {
		SetCacheEnabled(true)
		SetCacheCapacity(256) // small: forces concurrent evictions too
		ResetCache()
		r := rand.New(rand.NewSource(13))
		trees := make([]*dom.Node, 24)
		for i := range trees {
			trees[i] = randTree(r, 3)
		}
		want := make(map[[2]int]float64)
		SetCacheEnabled(false)
		for i := range trees {
			for j := range trees {
				want[[2]int{i, j}] = TreeDist(trees[i], trees[j])
			}
		}
		SetCacheEnabled(true)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				lr := rand.New(rand.NewSource(seed))
				for k := 0; k < 500; k++ {
					i, j := lr.Intn(len(trees)), lr.Intn(len(trees))
					if got := TreeDist(trees[i], trees[j]); got != want[[2]int{i, j}] {
						select {
						case errs <- "concurrent TreeDist diverged from serial value":
						default:
						}
						return
					}
				}
			}(int64(w))
		}
		wg.Wait()
		close(errs)
		if msg, ok := <-errs; ok {
			t.Fatal(msg)
		}
	})
}
