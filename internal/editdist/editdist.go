// Package editdist implements the distance functions the MSE paper builds
// on: the Wagner-Fischer string edit distance (with pluggable element costs,
// used for block type codes, block shapes and block text attributes), the
// Zhang-Shasha ordered tree edit distance (used for record tag trees, [9]
// in the paper) and the tag-forest edit distance of Section 4.1 (a string
// edit distance over lists of tag trees whose substitution cost is the
// normalized tree edit distance).
package editdist

import (
	"sync"
	"sync/atomic"

	"mse/internal/cancel"
	"mse/internal/dom"
)

// treeCalls counts TreeEditDistance invocations process-wide.  Each call
// runs a full Zhang-Shasha dynamic program, so the count measures how much
// work a memoization cache could absorb; core exposes it per pipeline run
// as the "tree_dist_calls" counter.
var treeCalls atomic.Int64

// TreeCalls returns the cumulative number of tree edit distance
// computations since process start.  Callers interested in one pipeline
// run take the difference around it.
func TreeCalls() int64 { return treeCalls.Load() }

// Costs parameterizes a generic string edit distance over element indices.
// Sub returns the cost of substituting a[i] with b[j]; Del and Ins return
// deletion/insertion costs.  All costs must be non-negative.
type Costs struct {
	Sub func(i, j int) float64
	Del func(i int) float64
	Ins func(j int) float64
}

// UnitCosts returns the classic 0/1 Levenshtein cost model over elements
// compared with eq.
func UnitCosts(eq func(i, j int) bool) Costs {
	return Costs{
		Sub: func(i, j int) float64 {
			if eq(i, j) {
				return 0
			}
			return 1
		},
		Del: func(int) float64 { return 1 },
		Ins: func(int) float64 { return 1 },
	}
}

// stringsScratch pools the two DP rows of Strings.  The function sits on
// the hot path of every pairwise visual distance (type codes, shapes, text
// attributes), where per-call row allocations dominated the GC load.
var stringsScratch = sync.Pool{New: func() any { return new([]float64) }}

// Strings computes the edit distance between two abstract sequences of
// lengths n and m under the given cost model.
func Strings(n, m int, c Costs) float64 {
	sp := stringsScratch.Get().(*[]float64)
	buf := *sp
	if cap(buf) < 2*(m+1) {
		buf = make([]float64, 2*(m+1))
	}
	buf = buf[:2*(m+1)]
	prev, cur := buf[:m+1:m+1], buf[m+1:]
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = prev[j-1] + c.Ins(j-1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = prev[0] + c.Del(i-1)
		for j := 1; j <= m; j++ {
			best := prev[j-1] + c.Sub(i-1, j-1)
			if v := prev[j] + c.Del(i-1); v < best {
				best = v
			}
			if v := cur[j-1] + c.Ins(j-1); v < best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	d := prev[m]
	*sp = buf
	stringsScratch.Put(sp)
	return d
}

// StringDistance is the Levenshtein distance between two strings, counted
// in bytes.  It is used for comparing boundary-marker texts.
func StringDistance(a, b string) int {
	d := Strings(len(a), len(b), UnitCosts(func(i, j int) bool { return a[i] == b[j] }))
	return int(d)
}

// NormalizedStringDistance is StringDistance normalized by the longer
// length; it is 0 for equal strings and 1 for maximally different ones.
// Two empty strings have distance 0.
func NormalizedStringDistance(a, b string) float64 {
	maxLen := len(a)
	if len(b) > maxLen {
		maxLen = len(b)
	}
	if maxLen == 0 {
		return 0
	}
	return float64(StringDistance(a, b)) / float64(maxLen)
}

// --- Zhang-Shasha tree edit distance ------------------------------------

// zsTree is the post-order representation required by Zhang-Shasha.
type zsTree struct {
	labels []string // labels in post-order
	lmld   []int    // leftmost leaf descendant index for each node
	keys   []int    // key roots
}

func buildZS(root *dom.Node) *zsTree {
	t := &zsTree{}
	var post func(n *dom.Node) int // returns the node's post-order index
	post = func(n *dom.Node) int {
		firstLeaf := -1
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			idx := post(c)
			if firstLeaf == -1 {
				firstLeaf = t.lmld[idx]
			}
		}
		idx := len(t.labels)
		t.labels = append(t.labels, nodeLabel(n))
		if firstLeaf == -1 {
			firstLeaf = idx
		}
		t.lmld = append(t.lmld, firstLeaf)
		return idx
	}
	post(root)
	// Key roots: nodes with no left sibling on the path, i.e. the highest
	// node for each distinct leftmost-leaf value.
	highest := make(map[int]int)
	for i, l := range t.lmld {
		highest[l] = i
	}
	for _, i := range highest {
		t.keys = append(t.keys, i)
	}
	// Sort keys ascending (insertion sort; key sets are small).
	for i := 1; i < len(t.keys); i++ {
		for j := i; j > 0 && t.keys[j-1] > t.keys[j]; j-- {
			t.keys[j-1], t.keys[j] = t.keys[j], t.keys[j-1]
		}
	}
	return t
}

// nodeLabel mirrors dom.Node.Label but treats all text nodes as identical:
// tree edit distance measures tag structure, not content.
func nodeLabel(n *dom.Node) string {
	return n.Label()
}

// TreeEditDistance computes the Zhang-Shasha ordered edit distance between
// the subtrees rooted at t1 and t2 with unit costs on relabel/insert/
// delete.  Labels are tag names (all text nodes share one label).
func TreeEditDistance(t1, t2 *dom.Node) int {
	return TreeEditDistanceCancel(t1, t2, nil)
}

// TreeEditDistanceCancel is TreeEditDistance with a cooperative
// cancellation checkpoint in the dynamic program: the Zhang-Shasha outer
// (key-root pair) loop polls tok once per forest-distance block, so a
// canceled context aborts even a single pathological tree pair within one
// block's work rather than after the full O(n²m²) program.  A nil token
// compiles the checkpoints down to pointer comparisons.
func TreeEditDistanceCancel(t1, t2 *dom.Node, tok *cancel.Token) int {
	treeCalls.Add(1)
	if t1 == nil && t2 == nil {
		return 0
	}
	if t1 == nil {
		return t2.Size()
	}
	if t2 == nil {
		return t1.Size()
	}
	a := buildZS(t1)
	b := buildZS(t2)
	n, m := len(a.labels), len(b.labels)
	td := make([][]int, n)
	for i := range td {
		td[i] = make([]int, m)
	}
	// forest distance scratch, indexed from lmld..i+1 style offsets.
	fd := make([][]int, n+1)
	for i := range fd {
		fd[i] = make([]int, m+1)
	}
	for _, i := range a.keys {
		tok.Check()
		for _, j := range b.keys {
			li, lj := a.lmld[i], b.lmld[j]
			fd[li][lj] = 0
			for di := li; di <= i; di++ {
				fd[di+1][lj] = fd[di][lj] + 1
			}
			for dj := lj; dj <= j; dj++ {
				fd[li][dj+1] = fd[li][dj] + 1
			}
			for di := li; di <= i; di++ {
				tok.Check()
				for dj := lj; dj <= j; dj++ {
					if a.lmld[di] == li && b.lmld[dj] == lj {
						cost := 1
						if a.labels[di] == b.labels[dj] {
							cost = 0
						}
						best := fd[di][dj] + cost
						if v := fd[di][dj+1] + 1; v < best {
							best = v
						}
						if v := fd[di+1][dj] + 1; v < best {
							best = v
						}
						fd[di+1][dj+1] = best
						td[di][dj] = best
					} else {
						best := fd[a.lmld[di]][b.lmld[dj]] + td[di][dj]
						if v := fd[di][dj+1] + 1; v < best {
							best = v
						}
						if v := fd[di+1][dj] + 1; v < best {
							best = v
						}
						fd[di+1][dj+1] = best
					}
				}
			}
		}
	}
	return td[n-1][m-1]
}

// TreeDist is the tree edit distance normalized by the size of the larger
// tree, per Section 4.1 (Dtf over trees).  It lies in [0, 1] for unit
// costs.  Two nil trees have distance 0; one nil tree has distance 1.
//
// Distances are memoized process-wide by structural fingerprint pair (see
// cache.go): identical fingerprints return 0 immediately, leaf pairs are
// answered by label comparison, and every dynamic-program result is cached
// so structurally repeated subtrees are never re-measured.
func TreeDist(t1, t2 *dom.Node) float64 {
	return TreeDistCancel(t1, t2, nil)
}

// TreeDistCancel is TreeDist threading a cancellation token into the
// underlying dynamic program (see TreeEditDistanceCancel).  Cache lookups
// stay checkpoint-free — they are O(1) — so only cache misses poll.
func TreeDistCancel(t1, t2 *dom.Node, tok *cancel.Token) float64 {
	if t1 == nil && t2 == nil {
		return 0
	}
	if t1 == nil || t2 == nil {
		return 1
	}
	if !cacheEnabled.Load() {
		maxSize := t1.Size()
		if s := t2.Size(); s > maxSize {
			maxSize = s
		}
		if maxSize == 0 {
			return 0
		}
		return float64(TreeEditDistanceCancel(t1, t2, tok)) / float64(maxSize)
	}
	f1, f2 := t1.Fingerprint(), t2.Fingerprint()
	cache.lookups.Add(1)
	if f1 == f2 {
		cache.identical.Add(1)
		return 0
	}
	maxSize := f1.Size
	if f2.Size > maxSize {
		maxSize = f2.Size
	}
	if f1.Size == 1 && f2.Size == 1 {
		// Two single-node trees with different fingerprints: the labels
		// differ (equal labels hash equal), so the distance is one relabel.
		cache.earlyExits.Add(1)
		return 1
	}
	k := makeKey(f1, f2)
	if v, ok := cache.get(k); ok {
		cache.hits.Add(1)
		return v
	}
	cache.misses.Add(1)
	v := float64(TreeEditDistanceCancel(t1, t2, tok)) / float64(maxSize)
	cache.put(k, v)
	return v
}

// ForestDist is the tag-forest distance of Section 4.1: the string edit
// distance between two ordered lists of tag trees — substitution cost being
// the normalized tree edit distance — normalized by the length of the
// longer list.  It lies in [0, 1].
func ForestDist(f1, f2 []*dom.Node) float64 {
	return ForestDistCancel(f1, f2, nil)
}

// ForestDistCancel is ForestDist threading a cancellation token into every
// pairwise tree distance of the substitution cost model.
func ForestDistCancel(f1, f2 []*dom.Node, tok *cancel.Token) float64 {
	maxLen := len(f1)
	if len(f2) > maxLen {
		maxLen = len(f2)
	}
	if maxLen == 0 {
		return 0
	}
	d := Strings(len(f1), len(f2), Costs{
		Sub: func(i, j int) float64 { return TreeDistCancel(f1[i], f2[j], tok) },
		Del: func(int) float64 { return 1 },
		Ins: func(int) float64 { return 1 },
	})
	return d / float64(maxLen)
}
