package editdist

// Memoization of normalized tree edit distances.
//
// The MSE pipeline recomputes Zhang-Shasha distances over the same tag
// trees constantly: clustering compares every record forest against every
// other, refinement and granularity resolution re-measure the same records,
// and the MDR baseline scans sibling runs pairwise.  Because distances
// depend only on tree *structure*, a pair of structural fingerprints
// (dom.Fingerprint: bottom-up hash + size) fully determines the result, so
// a process-wide bounded cache keyed by symmetric fingerprint pairs absorbs
// all repeat work:
//
//   - identical fingerprints short-circuit to distance 0 without touching
//     the cache or the dynamic program;
//   - a size-ratio lower bound (the edit distance is at least the size
//     difference) lets thresholded queries (WithinTreeDist) skip the
//     dynamic program outright;
//   - everything else is answered from the cache or computed once.
//
// The cache is sharded (lock striping) and bounded: a full shard evicts an
// arbitrary resident entry per insert.  Eviction order is map-iteration
// arbitrary, which is safe because cached values are exact — any
// replacement policy yields identical results, only different hit rates.
//
// SetCacheEnabled(false) restores the exact pre-memoization code path
// (fresh dynamic program per call, sizes via Node.Size); the differential
// tests compare the two paths for byte-identical pipeline output.

import (
	"sync"
	"sync/atomic"

	"mse/internal/dom"
)

// cacheShardCount is the number of lock stripes.  32 keeps contention
// negligible at pipeline parallelism while staying cheap to flush.
const cacheShardCount = 32

// DefaultCacheCapacity is the default bound on resident distance entries
// across all shards.  At 24 bytes/entry this is ~3 MB resident worst case.
const DefaultCacheCapacity = 1 << 17

// pairKey identifies an unordered pair of subtree fingerprints.  Sizes are
// part of the key so a hash collision must also collide on size to corrupt
// a lookup.  The pair is stored with the smaller (hash, size) first, making
// the cache symmetric: dist(a, b) and dist(b, a) share one entry.
type pairKey struct {
	h1, h2 uint64
	s1, s2 int32
}

type cacheShard struct {
	mu sync.Mutex
	m  map[pairKey]float64
}

type distCache struct {
	shards   [cacheShardCount]cacheShard
	perShard atomic.Int64 // capacity per shard

	lookups    atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	identical  atomic.Int64
	earlyExits atomic.Int64
	evictions  atomic.Int64
}

var (
	cache        distCache
	cacheEnabled atomic.Bool
)

func init() {
	cacheEnabled.Store(true)
	cache.perShard.Store(int64(DefaultCacheCapacity / cacheShardCount))
	for i := range cache.shards {
		cache.shards[i].m = make(map[pairKey]float64)
	}
}

// CacheEnabled reports whether tree-distance memoization is on.
func CacheEnabled() bool { return cacheEnabled.Load() }

// SetCacheEnabled toggles tree-distance memoization process-wide.  Turning
// it off flushes resident entries and routes every TreeDist call through
// the original uncached dynamic program — the reference path used by the
// differential tests.  Counters are not reset; use ResetCache for that.
func SetCacheEnabled(on bool) {
	cacheEnabled.Store(on)
	if !on {
		flushCache()
	}
}

// SetCacheCapacity bounds the number of resident distance entries (divided
// evenly over the shards, minimum one per shard) and flushes the cache so
// the new bound takes effect immediately.
func SetCacheCapacity(entries int) {
	per := entries / cacheShardCount
	if per < 1 {
		per = 1
	}
	cache.perShard.Store(int64(per))
	flushCache()
}

// ResetCache flushes all resident entries and zeroes the cache statistics.
func ResetCache() {
	flushCache()
	cache.lookups.Store(0)
	cache.hits.Store(0)
	cache.misses.Store(0)
	cache.identical.Store(0)
	cache.earlyExits.Store(0)
	cache.evictions.Store(0)
}

func flushCache() {
	for i := range cache.shards {
		sh := &cache.shards[i]
		sh.mu.Lock()
		sh.m = make(map[pairKey]float64)
		sh.mu.Unlock()
	}
}

// CacheStats is a snapshot of the tree-distance cache counters.
//
//	Lookups    fingerprint-keyed TreeDist queries
//	Identical  answered 0 via fingerprint equality (no cache, no DP)
//	Hits       answered from a resident entry
//	Misses     full Zhang-Shasha dynamic programs run (and then cached)
//	EarlyExits dynamic programs skipped by the size-ratio lower bound or
//	           the leaf-pair shortcut
//	Evictions  resident entries displaced by inserts into full shards
//	Entries    resident entries right now
type CacheStats struct {
	Lookups    int64 `json:"lookups"`
	Identical  int64 `json:"identical"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	EarlyExits int64 `json:"early_exits"`
	Evictions  int64 `json:"evictions"`
	Entries    int64 `json:"entries"`
}

// Stats returns the current cache counters.
func Stats() CacheStats {
	s := CacheStats{
		Lookups:    cache.lookups.Load(),
		Identical:  cache.identical.Load(),
		Hits:       cache.hits.Load(),
		Misses:     cache.misses.Load(),
		EarlyExits: cache.earlyExits.Load(),
		Evictions:  cache.evictions.Load(),
	}
	for i := range cache.shards {
		sh := &cache.shards[i]
		sh.mu.Lock()
		s.Entries += int64(len(sh.m))
		sh.mu.Unlock()
	}
	return s
}

// Sub returns the counter deltas s - o (Entries is carried from s), used to
// attribute cache activity to one pipeline run.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{
		Lookups:    s.Lookups - o.Lookups,
		Identical:  s.Identical - o.Identical,
		Hits:       s.Hits - o.Hits,
		Misses:     s.Misses - o.Misses,
		EarlyExits: s.EarlyExits - o.EarlyExits,
		Evictions:  s.Evictions - o.Evictions,
		Entries:    s.Entries,
	}
}

// HitRate is the fraction of lookups that avoided the dynamic program
// (identical-fingerprint fast path plus resident hits); 0 when idle.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Identical+s.Hits) / float64(s.Lookups)
}

// makeKey orders the two fingerprints so the key is symmetric.
func makeKey(a, b dom.Fingerprint) pairKey {
	if a.Hash > b.Hash || (a.Hash == b.Hash && a.Size > b.Size) {
		a, b = b, a
	}
	return pairKey{h1: a.Hash, h2: b.Hash, s1: int32(a.Size), s2: int32(b.Size)}
}

func (c *distCache) shard(k pairKey) *cacheShard {
	return &c.shards[(k.h1^k.h2)%cacheShardCount]
}

func (c *distCache) get(k pairKey) (float64, bool) {
	sh := c.shard(k)
	sh.mu.Lock()
	v, ok := sh.m[k]
	sh.mu.Unlock()
	return v, ok
}

func (c *distCache) put(k pairKey, v float64) {
	per := int(c.perShard.Load())
	sh := c.shard(k)
	sh.mu.Lock()
	if _, exists := sh.m[k]; !exists && len(sh.m) >= per {
		for victim := range sh.m {
			delete(sh.m, victim)
			c.evictions.Add(1)
			break
		}
	}
	sh.m[k] = v
	sh.mu.Unlock()
}

// WithinTreeDist reports whether TreeDist(t1, t2) <= eps without always
// paying for the exact distance: identical fingerprints answer true and
// the size-ratio lower bound — an edit script must at least insert or
// delete the size difference, so Dt >= |s1-s2|/max(s1,s2) — answers false,
// both before running the dynamic program.  With memoization disabled it
// degenerates to the exact comparison.
func WithinTreeDist(t1, t2 *dom.Node, eps float64) bool {
	if t1 == nil && t2 == nil {
		return eps >= 0
	}
	if t1 == nil || t2 == nil {
		return eps >= 1
	}
	if cacheEnabled.Load() {
		f1, f2 := t1.Fingerprint(), t2.Fingerprint()
		if f1 == f2 {
			return eps >= 0
		}
		lo, hi := f1.Size, f2.Size
		if lo > hi {
			lo, hi = hi, lo
		}
		if hi > 0 && float64(hi-lo)/float64(hi) > eps {
			cache.earlyExits.Add(1)
			return false
		}
	}
	return TreeDist(t1, t2) <= eps
}
