// Package relearn closes the detect/adapt loop over drifting wrappers: it
// is the *adapt* half to internal/quality's *detect* half, after "Design of
// Automatically Adaptable Web Wrappers" (Ferrara & Baumgartner).  The
// quality tracker tells us a wrapper no longer matches the template its
// engine is serving; this package heals it without an operator in the loop:
//
//  1. A bounded per-engine reservoir samples recent raw request pages off
//     the serving path — byte-budgeted, content-address-deduped, retaining
//     the serving path's own body copy (never re-copying page bytes).
//  2. On a DRIFTED verdict the controller schedules a background relearn
//     job: the wrapper-induction pipeline (core.BuildWrapperCtx) re-runs
//     over the newest sampled pages under cooperative cancellation.
//  3. The candidate wrapper is canary-validated against a held-out slice of
//     the reservoir: its non-empty-page rate, section count and record
//     count must beat the incumbent wrapper on the same pages.
//  4. Only then is the candidate hot-swapped into the registry (atomically,
//     bumping the wrapper generation so cached results are orphaned and the
//     drift baseline is re-warmed against the new template).
//
// Failures back off exponentially with jitter, capped; after MaxFailures
// consecutive failures the engine's circuit opens — it is pinned DEGRADED
// and no more automatic jobs run (no retry storm against an engine that
// cannot be relearned) until an operator triggers a manual relearn, which
// resets the circuit.
//
// The controller never blocks the serving path: reservoir feeds are a hash
// plus a slice append behind a per-engine mutex, jobs run on their own
// goroutines (one per engine at most), and every hook the serving layer
// installs is called without controller locks held.
package relearn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mse/internal/core"
)

// Config tunes the self-healing lifecycle.  The zero value is not usable;
// start from DefaultConfig (zero fields are filled with defaults).
type Config struct {
	// SampleBytes is the per-engine reservoir byte budget.
	SampleBytes int64 `json:"sample_bytes"`
	// MaxPages caps the per-engine reservoir page count.
	MaxPages int `json:"max_pages"`
	// MinPages is the minimum reservoir size before a relearn attempt;
	// below it the attempt fails (and backs off, waiting for traffic).
	MinPages int `json:"min_pages"`
	// TrainPages is the maximum number of sampled pages fed to wrapper
	// induction per attempt (newest pages win).
	TrainPages int `json:"train_pages"`
	// HoldoutPages is the number of sampled pages held out of training for
	// canary validation.
	HoldoutPages int `json:"holdout_pages"`
	// Backoff is the delay after the first failed attempt; it doubles per
	// consecutive failure (with ±50% jitter) up to MaxBackoff.
	Backoff    time.Duration `json:"backoff"`
	MaxBackoff time.Duration `json:"max_backoff"`
	// MaxFailures is the circuit-breaker threshold: this many consecutive
	// failures pin the engine DEGRADED until a manual trigger.
	MaxFailures int `json:"max_failures"`
	// BuildParallelism bounds the pipeline worker count of background
	// builds so a relearn cannot saturate the CPUs the serving path needs
	// (0 means 1, the background-friendly default).
	BuildParallelism int `json:"build_parallelism"`
	// JitterSeed seeds the controller's private backoff-jitter generator.
	// 0 (the default) draws a process-random seed, which is what a fleet
	// wants — per-process jitter streams decorrelate retry storms.  Tests
	// and reproducible harnesses set it to make backoff delays a pure
	// function of the failure sequence.
	JitterSeed int64 `json:"jitter_seed,omitempty"`
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		SampleBytes:      8 << 20,
		MaxPages:         32,
		MinPages:         6,
		TrainPages:       8,
		HoldoutPages:     3,
		Backoff:          5 * time.Second,
		MaxBackoff:       5 * time.Minute,
		MaxFailures:      5,
		BuildParallelism: 1,
	}
}

// sanitized fills zero fields with defaults and enforces the structural
// minimums (wrapper induction needs two pages, the canary needs one).
func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.SampleBytes <= 0 {
		c.SampleBytes = d.SampleBytes
	}
	if c.MaxPages <= 0 {
		c.MaxPages = d.MaxPages
	}
	if c.MinPages <= 0 {
		c.MinPages = d.MinPages
	}
	if c.MinPages < 3 {
		c.MinPages = 3 // 2 to train + 1 to hold out
	}
	if c.TrainPages < 2 {
		c.TrainPages = d.TrainPages
	}
	if c.HoldoutPages <= 0 {
		c.HoldoutPages = d.HoldoutPages
	}
	if c.Backoff <= 0 {
		c.Backoff = d.Backoff
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = d.MaxBackoff
	}
	if c.MaxBackoff < c.Backoff {
		c.MaxBackoff = c.Backoff
	}
	if c.MaxFailures <= 0 {
		c.MaxFailures = d.MaxFailures
	}
	if c.BuildParallelism <= 0 {
		c.BuildParallelism = 1
	}
	if c.MaxPages < c.MinPages {
		c.MaxPages = c.MinPages
	}
	return c
}

// Hooks are the serving-layer operations the controller drives.  Build and
// Swap are required; Incumbent and Event are optional.  All hooks are
// called without controller locks held and may be called from job
// goroutines concurrently with the serving path.
type Hooks struct {
	// Build learns a candidate wrapper from sample pages.  It must honour
	// ctx (the controller's lifetime): a closed controller cancels it.
	Build func(ctx context.Context, samples []*core.SamplePage) (*core.EngineWrapper, error)
	// Incumbent returns the currently serving wrapper for canary
	// comparison (ok=false when the engine is not registered).
	Incumbent func(engine string) (*core.EngineWrapper, bool)
	// Swap atomically installs a canary-validated candidate (serialized as
	// wrapper JSON) as the engine's serving wrapper.
	Swap func(engine string, data []byte) error
	// Event, when non-nil, receives one Event per lifecycle step (job
	// start, failure, canary reject, swap, circuit open) for journaling,
	// metrics and logs.
	Event func(ev Event)
}

// Event kinds, as they appear in the wide-event journal's "kind" field.
const (
	EventJob          = "relearn_job"
	EventFailure      = "relearn_failure"
	EventCanaryReject = "relearn_canary_reject"
	EventSwap         = "relearn_swap"
	EventCircuitOpen  = "relearn_circuit_open"
)

// Event is one lifecycle notification.
type Event struct {
	Kind    string
	Engine  string
	Attempt int    // 1-based attempt number within the current episode
	Err     string // failure detail, empty on success kinds
	Canary  *CanaryResult
}

// State is the relearn lifecycle state of one engine.
type State int

const (
	// Idle: no job scheduled; the engine heals on the next DRIFTED verdict.
	Idle State = iota
	// Running: a relearn attempt (build + canary + swap) is in flight.
	Running
	// Backoff: the last attempt failed; the job sleeps before retrying.
	Backoff
	// Degraded: the circuit is open after MaxFailures consecutive
	// failures; only a manual Trigger restarts healing.
	Degraded
)

// String names the state as it appears on /relearnz and /statusz.
func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case Running:
		return "RUNNING"
	case Backoff:
		return "BACKOFF"
	case Degraded:
		return "DEGRADED"
	}
	return "UNKNOWN"
}

// MarshalJSON serializes the state as its string form.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Sentinel errors for the distinguishable failure modes of an attempt.
var (
	// ErrInsufficientPages: the reservoir has not sampled enough pages yet.
	ErrInsufficientPages = errors.New("relearn: not enough sampled pages")
	// ErrCanaryRejected: the candidate did not beat the incumbent on the
	// held-out pages.
	ErrCanaryRejected = errors.New("relearn: canary rejected candidate")
	// ErrClosed: the controller has been closed.
	ErrClosed = errors.New("relearn: controller closed")
)

// Controller owns the per-engine reservoirs and relearn jobs.  All methods
// are safe for concurrent use; ObservePage, Stats and Report are nil-safe
// so the serving path can call them unconditionally.
type Controller struct {
	cfg   Config
	hooks Hooks

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	engines map[string]*engineState
	closed  bool

	// rng is the controller's private jitter source.  Sharing the global
	// math/rand stream would make backoff delays depend on every other
	// rand consumer in the process — untestable and irreproducible; a
	// seeded per-controller generator keeps them a function of the
	// controller's own draw sequence.  Guarded by rngMu: backoffs fire
	// from per-engine job goroutines concurrently.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// engineState is one engine's reservoir plus job bookkeeping.  The
// reservoir has its own lock; everything else is guarded by Controller.mu.
type engineState struct {
	res *reservoir

	state    State
	busy     bool // a job goroutine (Running or Backoff) exists
	failures int  // consecutive, reset on success or manual trigger

	attempts      int64
	swaps         int64
	canaryRejects int64
	lastErr       string
	lastSwap      time.Time
	nextRetry     time.Time
	lastCanary    *CanaryResult
}

// NewController returns a controller with the given configuration (zero
// fields take defaults).  hooks.Build and hooks.Swap must be set.
func NewController(cfg Config, hooks Hooks) *Controller {
	ctx, cancel := context.WithCancel(context.Background())
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = rand.Int63() // per-process stream; see Config.JitterSeed
	}
	return &Controller{
		cfg:     cfg.sanitized(),
		hooks:   hooks,
		ctx:     ctx,
		cancel:  cancel,
		engines: map[string]*engineState{},
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Config returns the controller's effective configuration.
func (c *Controller) Config() Config { return c.cfg }

// engineLocked returns the engine's state, creating it on first use.
// Caller holds c.mu.
func (c *Controller) engineLocked(engine string) *engineState {
	es, ok := c.engines[engine]
	if !ok {
		es = &engineState{res: newReservoir(c.cfg.SampleBytes, c.cfg.MaxPages)}
		c.engines[engine] = es
	}
	return es
}

// ObservePage samples one served page into the engine's reservoir.  It is
// the serving path's feed: call it after the response has been written,
// handing over the request's own body copy (the string is retained, not
// copied).  Nil-safe and never blocks on job work.
func (c *Controller) ObservePage(engine, html string, query []string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	es := c.engineLocked(engine)
	c.mu.Unlock()
	es.res.add(html, query)
}

// NotifyDrift schedules a relearn job for the engine.  It is the quality
// tracker's verdict hook target: call it when an engine transitions to
// DRIFTED.  A no-op when a job is already running or backing off, when the
// circuit is open (DEGRADED), or after Close.  Nil-safe.
func (c *Controller) NotifyDrift(engine string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	es := c.engineLocked(engine)
	if es.busy || es.state == Degraded {
		return
	}
	c.startLocked(engine, es)
}

// Trigger schedules a manual relearn for the engine, resetting the failure
// count and closing... reopening a DEGRADED circuit.  When a job is already
// running or backing off it only resets the failure budget (the running
// job continues with a fresh circuit allowance).  Returns the engine's
// state after the call.
func (c *Controller) Trigger(engine string) (State, error) {
	if c == nil {
		return Idle, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return Idle, ErrClosed
	}
	es := c.engineLocked(engine)
	es.failures = 0
	if es.busy {
		return es.state, nil
	}
	if es.state == Degraded {
		es.state = Idle
	}
	c.startLocked(engine, es)
	return es.state, nil
}

// startLocked marks the engine busy and spawns its job goroutine.  Caller
// holds c.mu.
func (c *Controller) startLocked(engine string, es *engineState) {
	es.busy = true
	es.state = Running
	c.wg.Add(1)
	go c.run(engine, es)
}

// Close cancels every running job (cooperatively — a mid-build job aborts
// at the pipeline's next checkpoint) and waits for all job goroutines to
// exit.  Idempotent.
func (c *Controller) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	c.wg.Wait()
}

// event dispatches a lifecycle event to the Event hook, if installed.
func (c *Controller) event(ev Event) {
	if c.hooks.Event != nil {
		c.hooks.Event(ev)
	}
}

// run is one engine's relearn episode: attempt, back off on failure, stop
// on success, circuit-break after MaxFailures consecutive failures, abort
// on Close.  At most one run goroutine exists per engine (es.busy).
func (c *Controller) run(engine string, es *engineState) {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		es.state = Running
		es.attempts++
		attempt := es.failures + 1
		c.mu.Unlock()
		c.event(Event{Kind: EventJob, Engine: engine, Attempt: attempt})

		canary, err := c.attempt(engine, es)
		if err == nil {
			c.mu.Lock()
			es.failures = 0
			es.state = Idle
			es.busy = false
			es.lastErr = ""
			es.lastSwap = time.Now()
			es.swaps++
			c.mu.Unlock()
			c.event(Event{Kind: EventSwap, Engine: engine, Attempt: attempt, Canary: canary})
			return
		}
		if c.ctx.Err() != nil || errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) {
			// Controller closing: step aside without counting a failure.
			c.mu.Lock()
			es.state = Idle
			es.busy = false
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		es.failures++
		es.lastErr = err.Error()
		if errors.Is(err, ErrCanaryRejected) {
			es.canaryRejects++
		}
		fails := es.failures
		c.mu.Unlock()
		c.event(Event{Kind: EventFailure, Engine: engine, Attempt: fails, Err: err.Error(), Canary: canary})
		if errors.Is(err, ErrCanaryRejected) {
			c.event(Event{Kind: EventCanaryReject, Engine: engine, Attempt: fails, Err: err.Error(), Canary: canary})
		}
		if fails >= c.cfg.MaxFailures {
			c.mu.Lock()
			es.state = Degraded
			es.busy = false
			c.mu.Unlock()
			c.event(Event{Kind: EventCircuitOpen, Engine: engine, Attempt: fails,
				Err: fmt.Sprintf("%d consecutive relearn failures, last: %s", fails, err.Error())})
			return
		}
		d := c.backoff(fails)
		c.mu.Lock()
		es.state = Backoff
		es.nextRetry = time.Now().Add(d)
		c.mu.Unlock()
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-c.ctx.Done():
			t.Stop()
			c.mu.Lock()
			es.state = Idle
			es.busy = false
			c.mu.Unlock()
			return
		}
	}
}

// backoff returns the delay before retry number failures+1: Backoff
// doubled per consecutive failure, capped at MaxBackoff, with ±50% jitter
// so a fleet of drifted engines does not retry in lockstep.
func (c *Controller) backoff(failures int) time.Duration {
	d := c.cfg.Backoff
	for i := 1; i < failures && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * (0.5 + j))
}

// attempt runs one relearn: snapshot the reservoir, split train/holdout,
// build a candidate, canary-validate it against the incumbent, swap.  The
// returned CanaryResult is non-nil whenever validation ran (even when it
// rejected the candidate).
func (c *Controller) attempt(engine string, es *engineState) (*CanaryResult, error) {
	pages := es.res.newest(c.cfg.TrainPages + c.cfg.HoldoutPages)
	if len(pages) < c.cfg.MinPages {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrInsufficientPages, len(pages), c.cfg.MinPages)
	}
	train, holdout := splitPages(pages, c.cfg.TrainPages, c.cfg.HoldoutPages)
	samples := make([]*core.SamplePage, len(train))
	for i, p := range train {
		samples[i] = &core.SamplePage{HTML: p.html, Query: p.query}
	}
	cand, err := c.hooks.Build(c.ctx, samples)
	if err != nil {
		return nil, fmt.Errorf("build over %d pages: %w", len(train), err)
	}
	res := c.canary(engine, cand, holdout)
	c.mu.Lock()
	es.lastCanary = res
	c.mu.Unlock()
	if !res.Passed {
		return res, fmt.Errorf("%w: candidate %d/%d/%d vs incumbent %d/%d/%d (non-empty/sections/records over %d pages)",
			ErrCanaryRejected,
			res.Candidate.NonEmptyPages, res.Candidate.Sections, res.Candidate.Records,
			res.Incumbent.NonEmptyPages, res.Incumbent.Sections, res.Incumbent.Records,
			res.Pages)
	}
	data, err := json.Marshal(cand)
	if err != nil {
		return res, fmt.Errorf("serializing candidate: %w", err)
	}
	if err := c.hooks.Swap(engine, data); err != nil {
		return res, fmt.Errorf("swapping wrapper: %w", err)
	}
	return res, nil
}

// splitPages partitions a reservoir snapshot (oldest first) into train and
// holdout sets.  Holdout pages are taken at a stride through the snapshot —
// not from one end — so both sets sample the same template mix, then train
// is capped to the newest trainMax pages.  At least two pages always train
// (wrapper induction's minimum).
func splitPages(pages []pageSample, trainMax, holdoutMax int) (train, holdout []pageSample) {
	if len(pages) <= 2 {
		return pages, nil
	}
	if holdoutMax > len(pages)-2 {
		holdoutMax = len(pages) - 2
	}
	for i, p := range pages {
		if len(holdout) < holdoutMax && i%3 == 1 {
			holdout = append(holdout, p)
		} else {
			train = append(train, p)
		}
	}
	if len(train) > trainMax {
		train = train[len(train)-trainMax:]
	}
	return train, holdout
}

// CanaryScore is one wrapper's aggregate extraction outcome over the
// held-out pages.
type CanaryScore struct {
	// NonEmptyPages counts holdout pages yielding at least one section.
	NonEmptyPages int `json:"non_empty_pages"`
	Sections      int `json:"sections"`
	Records       int `json:"records"`
	// Errors counts holdout pages the wrapper failed on (scored as empty).
	Errors int `json:"errors"`
}

// CanaryResult compares the candidate against the incumbent on the same
// held-out pages.
type CanaryResult struct {
	Pages     int         `json:"pages"`
	Candidate CanaryScore `json:"candidate"`
	Incumbent CanaryScore `json:"incumbent"`
	Passed    bool        `json:"passed"`
}

// canary scores candidate and incumbent on the holdout and decides.  The
// candidate must extract something, must not lose to the incumbent on any
// signal, and must strictly beat it on at least one — a candidate that
// merely ties the incumbent is rejected (a swap would churn the cache and
// the drift baseline for nothing).
func (c *Controller) canary(engine string, cand *core.EngineWrapper, holdout []pageSample) *CanaryResult {
	res := &CanaryResult{Pages: len(holdout)}
	res.Candidate = c.score(cand, holdout)
	if c.hooks.Incumbent != nil {
		if inc, ok := c.hooks.Incumbent(engine); ok {
			res.Incumbent = c.score(inc, holdout)
		}
	}
	cs, is := res.Candidate, res.Incumbent
	res.Passed = cs.NonEmptyPages > 0 &&
		cs.NonEmptyPages >= is.NonEmptyPages &&
		cs.Sections >= is.Sections &&
		cs.Records >= is.Records &&
		(cs.NonEmptyPages > is.NonEmptyPages || cs.Sections > is.Sections || cs.Records > is.Records)
	return res
}

// score applies a wrapper to every holdout page, counting only — pooled
// memory is released inside CountsCtx, and nothing feeds the serving
// metrics or the drift tracker (a canary is an experiment, not traffic).
func (c *Controller) score(ew *core.EngineWrapper, holdout []pageSample) CanaryScore {
	var s CanaryScore
	for _, p := range holdout {
		secs, recs, err := ew.CountsCtx(c.ctx, p.html, p.query)
		if err != nil {
			s.Errors++
			continue
		}
		if secs > 0 {
			s.NonEmptyPages++
		}
		s.Sections += secs
		s.Records += recs
	}
	return s
}

// Stats is the aggregate /metrics view across all engines.
type Stats struct {
	Jobs           int64 `json:"jobs"`
	Failures       int64 `json:"failures"`
	CanaryRejects  int64 `json:"canary_rejects"`
	Swaps          int64 `json:"swaps"`
	ReservoirPages int64 `json:"reservoir_pages"`
	ReservoirBytes int64 `json:"reservoir_bytes"`
	Degraded       int64 `json:"degraded"`
	Active         int64 `json:"active"`
}

// Stats aggregates job and reservoir counters across engines.  Nil-safe.
func (c *Controller) Stats() Stats {
	var s Stats
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, es := range c.engines {
		s.Jobs += es.attempts
		s.Failures += int64(failTotal(es))
		s.CanaryRejects += es.canaryRejects
		s.Swaps += es.swaps
		pages, bytes := es.res.size()
		s.ReservoirPages += int64(pages)
		s.ReservoirBytes += bytes
		if es.state == Degraded {
			s.Degraded++
		}
		if es.busy {
			s.Active++
		}
	}
	return s
}

// failTotal derives an engine's lifetime failure count: attempts that did
// not end in a swap and are not the one currently in flight.
func failTotal(es *engineState) int {
	f := es.attempts - es.swaps
	if es.state == Running {
		f--
	}
	if f < 0 {
		f = 0
	}
	return int(f)
}

// EngineReport is one engine's /relearnz entry.
type EngineReport struct {
	Engine              string        `json:"engine"`
	State               State         `json:"state"`
	ConsecutiveFailures int           `json:"consecutive_failures"`
	Attempts            int64         `json:"attempts"`
	Swaps               int64         `json:"swaps"`
	CanaryRejects       int64         `json:"canary_rejects"`
	ReservoirPages      int           `json:"reservoir_pages"`
	ReservoirBytes      int64         `json:"reservoir_bytes"`
	LastError           string        `json:"last_error,omitempty"`
	LastSwap            string        `json:"last_swap,omitempty"`
	NextRetry           string        `json:"next_retry,omitempty"`
	LastCanary          *CanaryResult `json:"last_canary,omitempty"`
}

// Report is the /relearnz wire form.
type Report struct {
	Config  Config         `json:"config"`
	Engines []EngineReport `json:"engines"`
}

// Report snapshots every tracked engine, sorted by name.  Nil-safe.
func (c *Controller) Report() Report {
	if c == nil {
		return Report{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{Config: c.cfg, Engines: make([]EngineReport, 0, len(c.engines))}
	for name, es := range c.engines {
		pages, bytes := es.res.size()
		er := EngineReport{
			Engine:              name,
			State:               es.state,
			ConsecutiveFailures: es.failures,
			Attempts:            es.attempts,
			Swaps:               es.swaps,
			CanaryRejects:       es.canaryRejects,
			ReservoirPages:      pages,
			ReservoirBytes:      bytes,
			LastError:           es.lastErr,
			LastCanary:          es.lastCanary,
		}
		if !es.lastSwap.IsZero() {
			er.LastSwap = es.lastSwap.UTC().Format(time.RFC3339Nano)
		}
		if es.state == Backoff {
			er.NextRetry = es.nextRetry.UTC().Format(time.RFC3339Nano)
		}
		rep.Engines = append(rep.Engines, er)
	}
	sort.Slice(rep.Engines, func(i, j int) bool {
		return rep.Engines[i].Engine < rep.Engines[j].Engine
	})
	return rep
}

// EngineState returns the engine's lifecycle state (Idle for an engine
// never observed).  Nil-safe.
func (c *Controller) EngineState(engine string) State {
	if c == nil {
		return Idle
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if es, ok := c.engines[engine]; ok {
		return es.state
	}
	return Idle
}
