package relearn

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mse/internal/core"
	"mse/internal/synth"
)

// --- reservoir ---

func TestReservoirDedupesAndOrders(t *testing.T) {
	r := newReservoir(1<<20, 8)
	r.add("<html>a</html>", []string{"q"})
	r.add("<html>b</html>", []string{"q"})
	r.add("<html>a</html>", []string{"q"}) // byte-identical resubmission
	if n, _ := r.size(); n != 2 {
		t.Fatalf("size after dedupe = %d, want 2", n)
	}
	if r.deduped != 1 {
		t.Fatalf("deduped = %d, want 1", r.deduped)
	}
	// Same bytes under a different query is a different content address.
	r.add("<html>a</html>", []string{"other"})
	if n, _ := r.size(); n != 3 {
		t.Fatalf("size with distinct query = %d, want 3", n)
	}
	got := r.newest(2)
	if len(got) != 2 || got[0].html != "<html>b</html>" || got[1].query[0] != "other" {
		t.Fatalf("newest(2) wrong slice: %+v", got)
	}
}

func TestReservoirEvictsOldestUnderBudget(t *testing.T) {
	page := func(i int) string { return fmt.Sprintf("<p>%03d</p>%s", i, strings.Repeat("x", 90)) }
	r := newReservoir(500, 100) // each page is 100 bytes → 5 fit
	for i := 0; i < 8; i++ {
		r.add(page(i), nil)
	}
	n, bytes := r.size()
	if n != 5 || bytes > 500 {
		t.Fatalf("size = %d pages / %d bytes, want 5 pages within 500", n, bytes)
	}
	if r.evicted != 3 {
		t.Fatalf("evicted = %d, want 3", r.evicted)
	}
	all := r.newest(100)
	if all[0].html != page(3) || all[len(all)-1].html != page(7) {
		t.Fatalf("oldest-first eviction violated: first=%q last=%q", all[0].html[:10], all[len(all)-1].html[:10])
	}
	// An evicted page's hash is forgotten, so it can be re-sampled.
	r.add(page(0), nil)
	if all := r.newest(100); all[len(all)-1].html != page(0) {
		t.Fatal("evicted page could not re-enter the reservoir")
	}
}

func TestReservoirPageCapAndOversize(t *testing.T) {
	r := newReservoir(1<<20, 3)
	for i := 0; i < 6; i++ {
		r.add(fmt.Sprintf("<p>%d</p>", i), nil)
	}
	if n, _ := r.size(); n != 3 {
		t.Fatalf("page cap not enforced: %d pages", n)
	}
	big := newReservoir(10, 3)
	big.add(strings.Repeat("y", 11), nil) // alone over budget: skipped
	if n, _ := big.size(); n != 0 {
		t.Fatal("oversized page was admitted")
	}
}

func TestReservoirConcurrentAdd(t *testing.T) {
	r := newReservoir(1<<20, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.add(fmt.Sprintf("<p>%d-%d</p>", g, i), []string{"q"})
				r.newest(4)
				r.size()
			}
		}(g)
	}
	wg.Wait()
	if n, _ := r.size(); n != 64 {
		t.Fatalf("size = %d, want 64 (cap)", n)
	}
}

// --- split ---

func TestSplitPagesStrideAndCaps(t *testing.T) {
	pages := make([]pageSample, 10)
	for i := range pages {
		pages[i].html = fmt.Sprintf("%d", i)
	}
	train, holdout := splitPages(pages, 8, 3)
	if len(holdout) != 3 {
		t.Fatalf("holdout = %d, want 3", len(holdout))
	}
	if holdout[0].html != "1" || holdout[1].html != "4" || holdout[2].html != "7" {
		t.Fatalf("holdout stride wrong: %v", holdout)
	}
	if len(train) != 7 {
		t.Fatalf("train = %d, want 7", len(train))
	}
	// Tiny snapshots train everything (induction needs two pages).
	train, holdout = splitPages(pages[:2], 8, 3)
	if len(train) != 2 || len(holdout) != 0 {
		t.Fatalf("2-page split = %d/%d, want 2/0", len(train), len(holdout))
	}
	// trainMax keeps the newest training pages.
	train, _ = splitPages(pages, 3, 3)
	if len(train) != 3 || train[2].html != "9" {
		t.Fatalf("trainMax cap wrong: %v", train)
	}
}

// --- config ---

func TestConfigSanitized(t *testing.T) {
	c := Config{}.sanitized()
	d := DefaultConfig()
	if c != d.sanitized() || c.MinPages < 3 || c.BuildParallelism < 1 {
		t.Fatalf("zero config not defaulted: %+v", c)
	}
	c = Config{MinPages: 1, MaxPages: 2, Backoff: time.Second, MaxBackoff: time.Millisecond}.sanitized()
	if c.MinPages != 3 || c.MaxPages < c.MinPages || c.MaxBackoff < c.Backoff {
		t.Fatalf("structural minimums not enforced: %+v", c)
	}
}

func TestBackoffCappedWithJitter(t *testing.T) {
	c := NewController(Config{Backoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}, Hooks{})
	defer c.Close()
	for fails := 1; fails <= 10; fails++ {
		d := c.backoff(fails)
		if d < 50*time.Millisecond || d > 600*time.Millisecond {
			t.Fatalf("backoff(%d) = %v outside jittered cap", fails, d)
		}
	}
}

// TestBackoffJitterSeeded: with a JitterSeed, backoff delays are a pure
// function of the controller's draw sequence — two controllers with the
// same seed produce identical delays, and they do not depend on the
// global math/rand stream.
func TestBackoffJitterSeeded(t *testing.T) {
	cfg := Config{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second, JitterSeed: 99}
	a := NewController(cfg, Hooks{})
	defer a.Close()
	b := NewController(cfg, Hooks{})
	defer b.Close()
	var seqA, seqB []time.Duration
	for fails := 1; fails <= 8; fails++ {
		seqA = append(seqA, a.backoff(fails))
		// Perturb the global stream between the two controllers' draws: a
		// regression to the shared rand.Float64() breaks the equality.
		rand.Int63()
		seqB = append(seqB, b.backoff(fails))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d: %v != %v — jitter not seeded per controller", i, seqA[i], seqB[i])
		}
	}
	// Concurrent draws must not race (rng is mutex-guarded); exercised
	// under -race.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 50; i++ {
				a.backoff(i)
			}
		}()
	}
	wg.Wait()
}

// --- controller lifecycle over a real wrapper pipeline ---

// trainEnv builds a real incumbent wrapper for a synth engine and returns
// pages from the engine (or a drifted variant) to feed the reservoir.
func buildWrapper(t *testing.T, e *synth.Engine, n int) *core.EngineWrapper {
	t.Helper()
	pages := e.Pages(n)
	samples := make([]*core.SamplePage, len(pages))
	for i, p := range pages {
		samples[i] = &core.SamplePage{HTML: p.HTML, Query: p.Query}
	}
	ew, err := core.BuildWrapperCtx(context.Background(), samples, core.DefaultOptions())
	if err != nil {
		t.Fatalf("BuildWrapper: %v", err)
	}
	return ew
}

func feedPages(c *Controller, engine string, e *synth.Engine, from, to int) {
	for i := from; i < to; i++ {
		p := e.Page(i)
		c.ObservePage(engine, p.HTML, p.Query)
	}
}

// testHooks wires a controller to the real core pipeline with a swappable
// in-memory "registry" of one engine.
type testHooks struct {
	mu        sync.Mutex
	incumbent *core.EngineWrapper
	swapped   [][]byte
	events    []Event
	eventCh   chan Event
}

// errBox lets tests swap the injected build error atomically (atomic.Value
// cannot hold a bare nil error).
type errBox struct{ err error }

func (h *testHooks) hooks(buildErr *atomic.Value) Hooks {
	return Hooks{
		Build: func(ctx context.Context, samples []*core.SamplePage) (*core.EngineWrapper, error) {
			if buildErr != nil {
				if v := buildErr.Load(); v != nil {
					if err := v.(errBox).err; err != nil {
						return nil, err
					}
				}
			}
			opt := core.DefaultOptions()
			opt.Parallelism = 1
			return core.BuildWrapperCtx(ctx, samples, opt)
		},
		Incumbent: func(engine string) (*core.EngineWrapper, bool) {
			h.mu.Lock()
			defer h.mu.Unlock()
			return h.incumbent, h.incumbent != nil
		},
		Swap: func(engine string, data []byte) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.swapped = append(h.swapped, data)
			return nil
		},
		Event: func(ev Event) {
			h.mu.Lock()
			h.events = append(h.events, ev)
			h.mu.Unlock()
			if h.eventCh != nil {
				h.eventCh <- ev
			}
		},
	}
}

func (h *testHooks) waitEvent(t *testing.T, kind string, timeout time.Duration) Event {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-h.eventCh:
			if ev.Kind == kind {
				return ev
			}
			t.Logf("skipping event %+v", ev)
		case <-deadline:
			t.Fatalf("timed out waiting for %s event", kind)
		}
	}
}

func TestControllerHealsDriftedEngine(t *testing.T) {
	// Seed 21 / id 2 is a fixture whose template redesign fully breaks the
	// old wrapper: it extracts nothing from drifted pages, so the healed
	// candidate must strictly dominate in the canary.
	orig := synth.NewEngine(21, 2, true)
	drifted := orig.Drifted()
	h := &testHooks{incumbent: buildWrapper(t, orig, 5), eventCh: make(chan Event, 64)}
	c := NewController(Config{
		MinPages: 4, TrainPages: 5, HoldoutPages: 2,
		Backoff: 10 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
	}, h.hooks(nil))
	defer c.Close()

	// The reservoir has sampled only post-drift pages, as it would in
	// production (old-template pages age out as drift traffic arrives).
	feedPages(c, "e2", drifted, 0, 7)
	c.NotifyDrift("e2")
	ev := h.waitEvent(t, EventSwap, 30*time.Second)
	if ev.Canary == nil || !ev.Canary.Passed {
		t.Fatalf("swap event without passing canary: %+v", ev)
	}
	// The old-template incumbent extracts nothing from drifted pages, so
	// the candidate must strictly dominate.
	if ev.Canary.Candidate.NonEmptyPages == 0 || ev.Canary.Candidate.Records <= ev.Canary.Incumbent.Records {
		t.Fatalf("canary scores not dominating: %+v", ev.Canary)
	}
	h.mu.Lock()
	nswaps := len(h.swapped)
	h.mu.Unlock()
	if nswaps != 1 {
		t.Fatalf("swapped %d times, want 1", nswaps)
	}
	if st := c.EngineState("e2"); st != Idle {
		t.Fatalf("state after heal = %v, want IDLE", st)
	}
	s := c.Stats()
	if s.Swaps != 1 || s.Jobs < 1 || s.Active != 0 {
		t.Fatalf("stats after heal: %+v", s)
	}
	// Re-notifying with no new drift starts a fresh episode; a candidate
	// that merely ties the (already healthy) incumbent must be rejected —
	// swap churn on a healthy engine is a bug.  Install the swapped bytes
	// as incumbent first, exactly as the registry swap hook would: the
	// unchanged reservoir then reproduces the same candidate, a tie.
	h.mu.Lock()
	var healed core.EngineWrapper
	if err := json.Unmarshal(h.swapped[0], &healed); err != nil {
		h.mu.Unlock()
		t.Fatalf("unmarshal swapped wrapper: %v", err)
	}
	healed.SetOptions(core.DefaultOptions())
	h.incumbent = &healed
	h.mu.Unlock()
	c.NotifyDrift("e2")
	ev = h.waitEvent(t, EventCanaryReject, 30*time.Second)
	if ev.Canary.Passed {
		t.Fatalf("tie against healthy incumbent passed canary: %+v", ev.Canary)
	}
}

func TestControllerBackoffAndCircuitBreaker(t *testing.T) {
	// Same broken-by-drift fixture as the heal test: the incumbent scores
	// zero on the drifted reservoir, so once the injected build failure is
	// lifted the candidate passes the canary.
	orig := synth.NewEngine(21, 2, true)
	h := &testHooks{incumbent: buildWrapper(t, orig, 5), eventCh: make(chan Event, 64)}
	var buildErr atomic.Value
	buildErr.Store(errBox{errors.New("induction exploded")})
	c := NewController(Config{
		MinPages: 4, TrainPages: 5, HoldoutPages: 2,
		Backoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		MaxFailures: 3,
	}, h.hooks(&buildErr))
	defer c.Close()

	feedPages(c, "e7", orig.Drifted(), 0, 7)
	c.NotifyDrift("e7")
	ev := h.waitEvent(t, EventCircuitOpen, 10*time.Second)
	if ev.Attempt != 3 || !strings.Contains(ev.Err, "induction exploded") {
		t.Fatalf("circuit-open event wrong: %+v", ev)
	}
	if st := c.EngineState("e7"); st != Degraded {
		t.Fatalf("state after circuit open = %v, want DEGRADED", st)
	}
	// DEGRADED is pinned: more drift verdicts do not restart the storm.
	c.NotifyDrift("e7")
	time.Sleep(30 * time.Millisecond)
	if st := c.EngineState("e7"); st != Degraded {
		t.Fatalf("NotifyDrift restarted a degraded engine: %v", st)
	}
	if s := c.Stats(); s.Degraded != 1 || s.Failures < 3 {
		t.Fatalf("stats after circuit open: %+v", c.Stats())
	}
	// A manual trigger resets the circuit; with the build fixed it heals.
	buildErr.Store(errBox{})
	st, err := c.Trigger("e7")
	if err != nil || st != Running {
		t.Fatalf("Trigger = %v, %v", st, err)
	}
	h.waitEvent(t, EventSwap, 30*time.Second)
	if st := c.EngineState("e7"); st != Idle {
		t.Fatalf("state after manual heal = %v, want IDLE", st)
	}
	rep := c.Report()
	if len(rep.Engines) != 1 || rep.Engines[0].Swaps != 1 || rep.Engines[0].State != Idle {
		t.Fatalf("report after manual heal: %+v", rep.Engines)
	}
}

func TestControllerInsufficientPagesBacksOff(t *testing.T) {
	h := &testHooks{eventCh: make(chan Event, 64)}
	c := NewController(Config{
		MinPages: 5, Backoff: 5 * time.Millisecond, MaxBackoff: 10 * time.Millisecond,
		MaxFailures: 2,
	}, h.hooks(nil))
	defer c.Close()
	c.ObservePage("thin", "<html><p>only one</p></html>", nil)
	c.NotifyDrift("thin")
	ev := h.waitEvent(t, EventFailure, 5*time.Second)
	if !strings.Contains(ev.Err, "not enough sampled pages") {
		t.Fatalf("failure err = %q", ev.Err)
	}
	h.waitEvent(t, EventCircuitOpen, 5*time.Second)
}

func TestControllerCloseCancelsBackoffAndJobs(t *testing.T) {
	h := &testHooks{eventCh: make(chan Event, 64)}
	c := NewController(Config{
		MinPages: 5, Backoff: time.Hour, MaxBackoff: time.Hour, MaxFailures: 100,
	}, h.hooks(nil))
	c.ObservePage("x", "<p>1</p>", nil)
	c.NotifyDrift("x")
	h.waitEvent(t, EventFailure, 5*time.Second)
	done := make(chan struct{})
	go func() { c.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not cancel an hour-long backoff")
	}
	// Post-close calls are inert.
	c.ObservePage("x", "<p>2</p>", nil)
	c.NotifyDrift("x")
	if _, err := c.Trigger("x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Trigger after Close = %v, want ErrClosed", err)
	}
	c.Close() // idempotent
}

func TestControllerNilSafe(t *testing.T) {
	var c *Controller
	c.ObservePage("e", "<p>x</p>", nil)
	c.NotifyDrift("e")
	c.Close()
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil Stats = %+v", s)
	}
	if r := c.Report(); len(r.Engines) != 0 {
		t.Fatalf("nil Report = %+v", r)
	}
	if st := c.EngineState("e"); st != Idle {
		t.Fatalf("nil EngineState = %v", st)
	}
	if _, err := c.Trigger("e"); !errors.Is(err, ErrClosed) {
		t.Fatalf("nil Trigger err = %v", err)
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{Idle: "IDLE", Running: "RUNNING", Backoff: "BACKOFF", Degraded: "DEGRADED", State(99): "UNKNOWN"} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
	b, err := Running.MarshalJSON()
	if err != nil || string(b) != `"RUNNING"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
}
