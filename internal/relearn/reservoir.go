package relearn

import (
	"sync"

	"mse/internal/excache"
)

// pageSample is one sampled request page: the raw HTML (the serving path's
// single body copy, retained as-is — never re-copied), the query terms it
// was extracted under, and its content address.
type pageSample struct {
	html  string
	query []string
	hash  excache.Hash128
}

// reservoir is the bounded per-engine store of recent raw request pages the
// relearner trains and canary-validates on.  It keeps insertion order
// (oldest first) under two bounds — a byte budget and a page cap — and
// dedupes by the same 128-bit content address the extraction cache keys on,
// so byte-identical resubmissions (retries, cache hits, hot queries) cannot
// crowd out template diversity.  Eviction is oldest-first: after a template
// drift the newest pages are the new template, which is exactly what a
// relearn needs to see.
type reservoir struct {
	maxBytes int64
	maxPages int

	mu      sync.Mutex
	pages   []pageSample // oldest first
	bytes   int64
	seen    map[excache.Hash128]struct{}
	added   int64
	deduped int64
	evicted int64
}

func newReservoir(maxBytes int64, maxPages int) *reservoir {
	return &reservoir{
		maxBytes: maxBytes,
		maxPages: maxPages,
		seen:     map[excache.Hash128]struct{}{},
	}
}

// add samples one served page.  The html string is retained, not copied —
// the caller hands over its one per-request body copy after the response
// has been written.  A page alone larger than the byte budget is skipped
// (it would evict the whole reservoir for one page).
func (r *reservoir) add(html string, query []string) {
	if int64(len(html)) > r.maxBytes {
		return
	}
	h := excache.HashPage(html, query)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.seen[h]; ok {
		r.deduped++
		return
	}
	r.pages = append(r.pages, pageSample{html: html, query: query, hash: h})
	r.seen[h] = struct{}{}
	r.bytes += int64(len(html))
	r.added++
	for (r.bytes > r.maxBytes || len(r.pages) > r.maxPages) && len(r.pages) > 1 {
		old := r.pages[0]
		// Shift down rather than reslice so the evicted page's bytes are
		// unreachable immediately (a reslice would pin them in the backing
		// array until overwritten).
		copy(r.pages, r.pages[1:])
		r.pages[len(r.pages)-1] = pageSample{}
		r.pages = r.pages[:len(r.pages)-1]
		delete(r.seen, old.hash)
		r.bytes -= int64(len(old.html))
		r.evicted++
	}
}

// newest returns a copy of the most recent n samples (all of them when the
// reservoir holds fewer), oldest first.
func (r *reservoir) newest(n int) []pageSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.pages) {
		n = len(r.pages)
	}
	out := make([]pageSample, n)
	copy(out, r.pages[len(r.pages)-n:])
	return out
}

// size returns the current page count and byte total.
func (r *reservoir) size() (int, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.pages), r.bytes
}
