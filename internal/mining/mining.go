// Package mining implements Section 5.4 of the MSE paper: mining the
// records of a dynamic section whose record structure is unknown.  The
// section's content (a tag forest) is partitioned at candidate tag-forest
// separators; every candidate partition's section cohesion (Formula 7) is
// computed and the partition with the highest cohesion wins.  Because the
// single-record partition is always among the candidates, the algorithm
// can extract even a lone record from a DS — the capability the paper
// highlights against prior work that needs two or more records.
package mining

import (
	"strings"

	"mse/internal/dom"
	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

// Options control record mining.
type Options struct {
	LineWeights   visual.LineWeights
	RecordWeights visual.RecordWeights
	// MaxGroup bounds the "every k roots" family of candidate partitions.
	MaxGroup int
}

// DefaultOptions returns the defaults.
func DefaultOptions() Options {
	return Options{
		LineWeights:   visual.DefaultLineWeights(),
		RecordWeights: visual.DefaultRecordWeights(),
		MaxGroup:      6,
	}
}

// MineRecords partitions the lines [start, end) of a page into records and
// returns them in order.  The empty range yields nil.
func MineRecords(p *layout.Page, start, end int, opt Options) []visual.Block {
	if start >= end {
		return nil
	}
	parts := CandidatePartitions(p, start, end, opt)
	best := parts[0]
	bestScore := PartitionScore(p, best, start, end, opt)
	for _, part := range parts[1:] {
		if s := PartitionScore(p, part, start, end, opt); s > bestScore {
			best, bestScore = part, s
		}
	}
	return best
}

// PartitionScore is the section cohesion of a candidate partition
// (Formula 7), boosted when every record opens with the same content-line
// signature and that signature occurs nowhere else in the range — the
// record-first-line regularity ViNTs keys on.  The boost lets a two-record
// section with records of different lengths beat the single-record
// degenerate partition, whose cohesion is otherwise inflated by its zero
// inter-record distance.
func PartitionScore(p *layout.Page, part []visual.Block, start, end int, opt Options) float64 {
	score := visual.SectionCohesion(part, opt.LineWeights, opt.RecordWeights)
	if len(part) >= 2 && uniformRecordStarts(p, part, start, end) {
		score *= 1.6
		// Search result records overwhelmingly open with their title
		// link; a partition aligned to link lines gets the extra nudge
		// that lets mixed-length records (one record with a snippet, the
		// next without) beat the glued alternative.
		switch p.Lines[part[0].Start].Type {
		case layout.LinkLine, layout.LinkTextLine, layout.ImageTextLine:
			score *= 1.3
		}
	}
	return score
}

// uniformRecordStarts reports whether all records start with one (type, x)
// line signature that appears exactly len(part) times in [start, end).
func uniformRecordStarts(p *layout.Page, part []visual.Block, start, end int) bool {
	type sig struct {
		t layout.LineType
		x int
	}
	first := sig{p.Lines[part[0].Start].Type, p.Lines[part[0].Start].X}
	for _, b := range part[1:] {
		if (sig{p.Lines[b.Start].Type, p.Lines[b.Start].X}) != first {
			return false
		}
	}
	count := 0
	for i := start; i < end; i++ {
		if (sig{p.Lines[i].Type, p.Lines[i].X}) == first {
			count++
		}
	}
	return count == len(part)
}

// Mine fills in the Records of a record-less section.
func Mine(s *sect.Section, opt Options) {
	s.Records = MineRecords(s.Page, s.Start, s.End, opt)
}

// CandidatePartitions enumerates the candidate record partitions of the
// line range.  Candidates come from tag-forest separators in the spirit of
// [29]:
//
//   - the whole range as a single record (always candidate 0);
//   - one record per minimal-forest root;
//   - for each distinct root signature (tag plus shallow structure),
//     records start at the roots with that signature;
//   - groups of k consecutive roots for small k (uniform k-row records);
//   - for ranges without usable forest structure, partitions at repeated
//     line signatures.
//
// All candidates respect line boundaries and jointly cover [start, end).
func CandidatePartitions(p *layout.Page, start, end int, opt Options) [][]visual.Block {
	whole := []visual.Block{{Page: p, Start: start, End: end}}
	parts := [][]visual.Block{whole}

	roots := ExpandedForest(p, start, end)
	type rootAt struct {
		node  *dom.Node
		start int
	}
	var ras []rootAt
	for _, r := range roots {
		first, _, ok := p.Span(r)
		if !ok {
			continue
		}
		// Roots sharing a line collapse onto the first one.
		if len(ras) == 0 || first > ras[len(ras)-1].start {
			ras = append(ras, rootAt{node: r, start: first})
		}
	}
	rootStarts := make([]int, len(ras))
	for i, ra := range ras {
		rootStarts[i] = ra.start
	}
	if len(rootStarts) > 0 {
		rootStarts[0] = start // ensure coverage from the first line
	}
	if len(rootStarts) >= 2 {
		// One record per forest root.
		parts = append(parts, partitionAt(p, start, end, rootStarts))
		// Split at roots sharing a structural signature.
		bySig := map[string][]int{}
		var sigOrder []string
		for i, ra := range ras {
			sig := RootSignature(ra.node)
			if _, ok := bySig[sig]; !ok {
				sigOrder = append(sigOrder, sig)
			}
			bySig[sig] = append(bySig[sig], rootStarts[i])
		}
		for _, sig := range sigOrder {
			starts := bySig[sig]
			if len(starts) >= 2 && len(starts) < len(rootStarts) {
				parts = append(parts, partitionAt(p, start, end, starts))
			}
		}
		// Uniform groups of k consecutive roots.
		maxK := opt.MaxGroup
		if maxK > len(rootStarts) {
			maxK = len(rootStarts)
		}
		for k := 2; k <= maxK; k++ {
			if len(rootStarts)%k != 0 {
				continue
			}
			var starts []int
			for i := 0; i < len(rootStarts); i += k {
				starts = append(starts, rootStarts[i])
			}
			if len(starts) >= 2 {
				parts = append(parts, partitionAt(p, start, end, starts))
			}
		}
	}
	// One level deeper: when records are pairwise wrapped in stray
	// containers (the paper's non-sibling pathology), the record roots
	// only appear among the containers' children.  Offer signature-based
	// partitions at that level too and let cohesion arbitrate.
	if len(roots) >= 2 {
		var deeper []*dom.Node
		for _, r := range roots {
			for c := r.FirstChild; c != nil; c = c.NextSibling {
				if _, _, ok := p.Span(c); ok {
					deeper = append(deeper, c)
				}
			}
		}
		if len(deeper) > len(roots) {
			bySig := map[string][]int{}
			var sigOrder []string
			lastStart := -1
			for _, d := range deeper {
				first, _, ok := p.Span(d)
				if !ok || first <= lastStart {
					continue
				}
				lastStart = first
				sig := RootSignature(d)
				if _, seen := bySig[sig]; !seen {
					sigOrder = append(sigOrder, sig)
				}
				bySig[sig] = append(bySig[sig], first)
			}
			for _, sig := range sigOrder {
				starts := bySig[sig]
				if len(starts) >= 2 {
					parts = append(parts, partitionAt(p, start, end, starts))
				}
			}
		}
	}
	// Line-signature candidates: for every (type, x) signature repeated in
	// the range, split at its occurrences (helps when the DOM gives one
	// flat root; the record first line need not be the range's first
	// line — any prefix is folded into the first block).
	for _, sigStarts := range lineSignatureStartSets(p, start, end) {
		parts = append(parts, partitionAt(p, start, end, sigStarts))
	}
	return parts
}

// ExpandedForest returns the minimal covering forest of [start, end),
// descending through sole-root levels so that a range wrapped in a single
// container still exposes its repeating children as candidate separators.
func ExpandedForest(p *layout.Page, start, end int) []*dom.Node {
	roots := p.Forest(start, end)
	for iter := 0; iter < 16 && len(roots) == 1; iter++ {
		var kids []*dom.Node
		for c := roots[0].FirstChild; c != nil; c = c.NextSibling {
			if _, _, ok := p.Span(c); ok {
				kids = append(kids, c)
			}
		}
		if len(kids) == 0 {
			break
		}
		roots = kids
	}
	return roots
}

// partitionAt cuts [start, end) at the given sorted, increasing line
// starts (the first start is clamped to start).
func partitionAt(p *layout.Page, start, end int, starts []int) []visual.Block {
	var out []visual.Block
	for i, s := range starts {
		if s < start {
			s = start
		}
		e := end
		if i+1 < len(starts) {
			e = starts[i+1]
		}
		if e > end {
			e = end
		}
		if s >= e {
			continue
		}
		out = append(out, visual.Block{Page: p, Start: s, End: e})
	}
	if len(out) == 0 {
		out = []visual.Block{{Page: p, Start: start, End: end}}
	}
	// Clamp first block to range start.
	out[0].Start = start
	return out
}

// RootSignature summarizes a root's two-level structure: its own tag, its
// children's tags and each child's children.  Roots with equal signatures
// are treated as repeating record separators (and stored in section
// wrappers as the seps component).  Two levels are needed to tell a
// title row (tr > td > a) from a snippet row (tr > td > #text).
func RootSignature(n *dom.Node) string {
	var sb strings.Builder
	sb.WriteString(n.Label())
	sb.WriteByte('(')
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		sb.WriteString(c.Label())
		sb.WriteByte('[')
		for g := c.FirstChild; g != nil; g = g.NextSibling {
			sb.WriteString(g.Label())
			sb.WriteByte(',')
		}
		sb.WriteByte(']')
	}
	sb.WriteByte(')')
	return sb.String()
}

// AppendRootSignature appends n's root signature to dst and returns the
// extended slice.  The bytes are exactly RootSignature(n); the compiled
// wrapper path uses it with a reused buffer to classify blocks without
// building a string per root.
func AppendRootSignature(dst []byte, n *dom.Node) []byte {
	dst = append(dst, n.Label()...)
	dst = append(dst, '(')
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		dst = append(dst, c.Label()...)
		dst = append(dst, '[')
		for g := c.FirstChild; g != nil; g = g.NextSibling {
			dst = append(dst, g.Label()...)
			dst = append(dst, ',')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, ')')
	return dst
}

// lineSignatureStartSets returns, for every (type, x) signature repeated
// at least twice within [start, end), the lines at which it occurs.  The
// sets are returned in order of each signature's first occurrence.
func lineSignatureStartSets(p *layout.Page, start, end int) [][]int {
	type sig struct {
		t layout.LineType
		x int
	}
	occ := map[sig][]int{}
	var order []sig
	for i := start; i < end; i++ {
		s := sig{p.Lines[i].Type, p.Lines[i].X}
		if _, ok := occ[s]; !ok {
			order = append(order, s)
		}
		occ[s] = append(occ[s], i)
	}
	var out [][]int
	for _, s := range order {
		if len(occ[s]) >= 2 && len(occ[s]) < end-start {
			out = append(out, occ[s])
		}
	}
	return out
}
