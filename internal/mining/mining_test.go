package mining

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

func TestMineSingleRecord(t *testing.T) {
	// One record only: the whole DS must come back as a single record —
	// the paper's headline capability.
	p := render(`<body><div>
	<a href="/r">Only Result</a><br>
	a snippet describing the only result<br>
	www.site.example/only.html
	</div></body>`)
	recs := MineRecords(p, 0, len(p.Lines), DefaultOptions())
	if len(recs) != 1 {
		for _, r := range recs {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	if recs[0].Len() != len(p.Lines) {
		t.Fatalf("single record should span the DS")
	}
}

func TestMineTwoRecords(t *testing.T) {
	p := render(`<body>
	<div><a href="/a">First Title</a><br>first snippet words</div>
	<div><a href="/b">Second Title</a><br>second snippet words</div>
	</body>`)
	recs := MineRecords(p, 0, len(p.Lines), DefaultOptions())
	if len(recs) != 2 {
		for _, r := range recs {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("want 2 records, got %d", len(recs))
	}
	if !strings.Contains(recs[0].Text(), "First") || !strings.Contains(recs[1].Text(), "Second") {
		t.Fatalf("records mis-split: %q / %q", recs[0].Text(), recs[1].Text())
	}
}

func TestMineTableRecords(t *testing.T) {
	p := render(`<body><table>
	<tr><td><a href="/1">Alpha Title</a><br>alpha snippet here</td></tr>
	<tr><td><a href="/2">Beta Title</a><br>beta snippet here</td></tr>
	<tr><td><a href="/3">Gamma Title</a><br>gamma snippet here</td></tr>
	</table></body>`)
	recs := MineRecords(p, 0, len(p.Lines), DefaultOptions())
	if len(recs) != 3 {
		for _, r := range recs {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("want 3 records, got %d", len(recs))
	}
}

func TestMineMultiRowRecords(t *testing.T) {
	// Each record spans two table rows: the "group of k roots" candidates
	// must win.
	p := render(`<body><table>
	<tr><td><a href="/1">Alpha Title</a></td></tr>
	<tr><td>alpha snippet text here</td></tr>
	<tr><td><a href="/2">Beta Title</a></td></tr>
	<tr><td>beta snippet text here</td></tr>
	<tr><td><a href="/3">Gamma Title</a></td></tr>
	<tr><td>gamma snippet text here</td></tr>
	</table></body>`)
	recs := MineRecords(p, 0, len(p.Lines), DefaultOptions())
	if len(recs) != 3 {
		for _, r := range recs {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("want 3 records, got %d", len(recs))
	}
	for _, r := range recs {
		if r.Len() != 2 {
			t.Fatalf("each record should have 2 lines, got %d: %q", r.Len(), r.Text())
		}
	}
}

func TestMineEmptyRange(t *testing.T) {
	p := render(`<body><p>x</p></body>`)
	if got := MineRecords(p, 0, 0, DefaultOptions()); got != nil {
		t.Fatalf("empty range should yield nil, got %v", got)
	}
}

func TestMineSingleLine(t *testing.T) {
	p := render(`<body><p><a href="/x">lone line</a></p></body>`)
	recs := MineRecords(p, 0, 1, DefaultOptions())
	if len(recs) != 1 || recs[0].Len() != 1 {
		t.Fatalf("single line should be a single record")
	}
}

func TestCandidatePartitionsCoverage(t *testing.T) {
	p := render(`<body><table>
	<tr><td><a href="/1">A</a></td></tr>
	<tr><td>s1</td></tr>
	<tr><td><a href="/2">B</a></td></tr>
	<tr><td>s2</td></tr>
	</table></body>`)
	parts := CandidatePartitions(p, 0, len(p.Lines), DefaultOptions())
	if len(parts) < 2 {
		t.Fatalf("want several candidate partitions, got %d", len(parts))
	}
	for pi, part := range parts {
		// Every candidate must tile [0, len) exactly.
		at := 0
		for _, b := range part {
			if b.Start != at {
				t.Fatalf("partition %d has a gap at line %d", pi, at)
			}
			if b.End <= b.Start {
				t.Fatalf("partition %d has an empty block", pi)
			}
			at = b.End
		}
		if at != len(p.Lines) {
			t.Fatalf("partition %d ends at %d, want %d", pi, at, len(p.Lines))
		}
	}
}

func TestMineMixedRecordLengths(t *testing.T) {
	// Records with 1-3 snippet lines: mining should still split at titles.
	p := render(`<body>
	<div><a href="/a">Title One</a><br>snippet</div>
	<div><a href="/b">Title Two</a><br>snippet<br>extra line<br>third line</div>
	<div><a href="/c">Title Three</a><br>snippet<br>extra line</div>
	</body>`)
	recs := MineRecords(p, 0, len(p.Lines), DefaultOptions())
	if len(recs) != 3 {
		for _, r := range recs {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("want 3 records, got %d", len(recs))
	}
}
