// Package excache is the content-addressed extraction result cache behind
// the serving hot path.  The paper's wrappers make per-page extraction
// deterministic — a byte-identical page under the same wrapper always
// yields a byte-identical result — so heavy real traffic, where popular
// queries return the same page to millions of users, is almost free once
// repeats are recognized.  The cache maps
//
//	(engine name, wrapper generation, 128-bit content hash of page+query)
//
// to the fully serialized extraction result, so a hit skips parse, prune,
// render and wrapper application entirely.
//
// Design points:
//
//   - Sharded: a power-of-two number of independently locked shards keyed
//     by the low hash bits, so concurrent lookups contend only 1/64th of
//     the time.
//   - Bounded by bytes with segmented-LRU eviction per shard: new entries
//     start in a probation segment and are promoted to a protected segment
//     on their first repeat hit, so a burst of one-off pages cannot flush
//     the hot working set.  The byte bound is enforced before insertion —
//     the cache never holds more than its budget.
//   - Singleflight: concurrent misses on the same key collapse into one
//     extraction; the followers wait (honouring their own contexts) and
//     share the leader's entry.
//   - Generation-tagged invalidation: the wrapper generation is part of
//     the key, so a wrapper swap (drift relearn, operator reload) orphans
//     every stale entry atomically — no stop-the-world flush, no lock
//     across the swap.  Invalidate reclaims the orphans' bytes eagerly.
package excache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Key addresses one cached extraction result.
type Key struct {
	Engine string
	Gen    uint64
	Hash   Hash128
}

// Entry is one cached extraction result: the serialized response body plus
// the section/record counts the serving layer reports without reparsing it.
// Entries are immutable once inserted and may be shared by any number of
// concurrent readers.
type Entry struct {
	Body     []byte
	Sections int
	Records  int
}

// entryOverhead approximates the per-entry bookkeeping bytes (node, map
// slot, key) charged against the byte budget on top of the body.
const entryOverhead = 160

func (e *Entry) size(k Key) int64 {
	return int64(len(e.Body)) + int64(len(k.Engine)) + entryOverhead
}

// numShards is the power-of-two shard count.
const numShards = 64

// protectedFrac is the fraction of each shard's byte budget reserved for
// the protected segment; beyond it, protected LRU entries demote back to
// probation rather than pinning the whole budget.
const protectedFrac = 0.8

// node is one resident entry on a shard's intrusive segmented-LRU lists.
type node struct {
	key        Key
	ent        *Entry
	size       int64
	protected  bool
	prev, next *node
}

// list is an intrusive doubly-linked LRU ring with a sentinel; head.next is
// the most recently used node, head.prev the least.
type list struct{ head node }

func (l *list) init() {
	l.head.prev = &l.head
	l.head.next = &l.head
}

func (l *list) pushFront(n *node) {
	n.prev = &l.head
	n.next = l.head.next
	n.prev.next = n
	n.next.prev = n
}

func (l *list) remove(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	n.prev, n.next = nil, nil
}

func (l *list) back() *node {
	if l.head.prev == &l.head {
		return nil
	}
	return l.head.prev
}

// call is one in-flight singleflight computation.
type call struct {
	done chan struct{}
	ent  *Entry
	err  error
}

type shard struct {
	mu             sync.Mutex
	items          map[Key]*node
	flight         map[Key]*call
	probation      list
	protected      list
	budget         int64
	bytes          int64
	protectedBytes int64
}

// Cache is the sharded content-addressed result cache.  The zero value is
// not usable; a nil *Cache is a valid always-miss cache (every method is
// nil-safe), which is how serving runs with caching disabled.
type Cache struct {
	shards   [numShards]shard
	maxBytes int64
	perShard int64

	hits        atomic.Uint64
	misses      atomic.Uint64
	collapsed   atomic.Uint64
	evictions   atomic.Uint64
	invalidated atomic.Uint64
	bytes       atomic.Int64
	entries     atomic.Int64
}

// New returns a cache bounded to maxBytes across all shards.  maxBytes <= 0
// returns nil — the always-miss disabled cache.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{maxBytes: maxBytes, perShard: maxBytes / numShards}
	if c.perShard < 1 {
		c.perShard = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.items = map[Key]*node{}
		sh.flight = map[Key]*call{}
		sh.budget = c.perShard
		sh.probation.init()
		sh.protected.init()
	}
	return c
}

func (c *Cache) shard(k Key) *shard {
	return &c.shards[k.Hash.Lo&(numShards-1)]
}

// Get returns the cached entry for k, promoting it on a repeat hit.  It
// counts a hit but never a miss — Do owns miss accounting — so pre-pass
// lookups (batch dedupe) do not double-count.
func (c *Cache) Get(k Key) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	n := sh.items[k]
	if n == nil {
		sh.mu.Unlock()
		return nil, false
	}
	sh.touch(n)
	ent := n.ent
	sh.mu.Unlock()
	c.hits.Add(1)
	return ent, true
}

// touch marks n most-recently-used, promoting a probation entry to the
// protected segment and demoting protected-LRU entries when the protected
// budget overflows.  Caller holds sh.mu.
func (sh *shard) touch(n *node) {
	if n.protected {
		sh.protected.remove(n)
		sh.protected.pushFront(n)
		return
	}
	sh.probation.remove(n)
	n.protected = true
	sh.protected.pushFront(n)
	sh.protectedBytes += n.size
	limit := int64(protectedFrac * float64(sh.budget))
	for sh.protectedBytes > limit {
		lru := sh.protected.back()
		if lru == nil || lru == n {
			break
		}
		sh.protected.remove(lru)
		lru.protected = false
		sh.probation.pushFront(lru)
		sh.protectedBytes -= lru.size
	}
}

// insert adds a freshly computed entry, evicting probation-first until the
// entry fits.  Entries larger than the whole shard budget are not cached.
// Caller holds sh.mu.  Returns the bytes delta and evictions performed.
func (sh *shard) insert(k Key, ent *Entry) (delta int64, evicted []int64) {
	size := ent.size(k)
	if size > sh.budget {
		return 0, nil
	}
	if old := sh.items[k]; old != nil {
		// A concurrent leader already inserted (or a generation re-fill);
		// keep the resident entry and its LRU position.
		return 0, nil
	}
	for sh.bytes+size > sh.budget {
		victim := sh.probation.back()
		if victim == nil {
			victim = sh.protected.back()
			if victim == nil {
				break
			}
			sh.protected.remove(victim)
			sh.protectedBytes -= victim.size
		} else {
			sh.probation.remove(victim)
		}
		delete(sh.items, victim.key)
		sh.bytes -= victim.size
		evicted = append(evicted, victim.size)
	}
	n := &node{key: k, ent: ent, size: size}
	sh.items[k] = n
	sh.probation.pushFront(n)
	sh.bytes += size
	return size, evicted
}

// Do returns the entry for k, computing it with fill on a miss.  Concurrent
// calls for the same key collapse: one caller runs fill, the rest wait for
// its result (or their own ctx, whichever ends first) and report
// collapsed=true.  A failed fill is not cached and wakes the waiters to
// retry leadership, so one canceled client cannot poison the key.  A nil
// cache runs fill directly every time.
func (c *Cache) Do(ctx context.Context, k Key, fill func() (*Entry, error)) (ent *Entry, hit, collapsed bool, err error) {
	if c == nil {
		ent, err = fill()
		return ent, false, false, err
	}
	sh := c.shard(k)
	for {
		sh.mu.Lock()
		if n := sh.items[k]; n != nil {
			sh.touch(n)
			ent := n.ent
			sh.mu.Unlock()
			c.hits.Add(1)
			return ent, true, false, nil
		}
		if cl := sh.flight[k]; cl != nil {
			sh.mu.Unlock()
			select {
			case <-cl.done:
			case <-ctx.Done():
				return nil, false, false, ctx.Err()
			}
			if cl.err == nil {
				c.collapsed.Add(1)
				return cl.ent, true, true, nil
			}
			// The leader failed (canceled client, extraction error): loop
			// and contend for leadership with our own context.
			continue
		}
		cl := &call{done: make(chan struct{})}
		sh.flight[k] = cl
		sh.mu.Unlock()
		c.misses.Add(1)

		finished := false
		// A fill that panics (cooperative-cancellation unwind crossing this
		// frame) must not leave waiters blocked on a dead leader.
		defer func() {
			if !finished {
				sh.mu.Lock()
				delete(sh.flight, k)
				sh.mu.Unlock()
				cl.err = context.Canceled
				close(cl.done)
			}
		}()
		ent, err := fill()

		sh.mu.Lock()
		delete(sh.flight, k)
		if err == nil && ent != nil {
			delta, evicted := sh.insert(k, ent)
			sh.mu.Unlock()
			if delta != 0 {
				c.bytes.Add(delta)
				c.entries.Add(1)
			}
			for _, sz := range evicted {
				c.bytes.Add(-sz)
				c.entries.Add(-1)
				c.evictions.Add(1)
			}
		} else {
			sh.mu.Unlock()
		}
		cl.ent, cl.err = ent, err
		finished = true
		close(cl.done)
		return ent, false, false, err
	}
}

// Remove drops the entry for k, reporting whether it was resident.
func (c *Cache) Remove(k Key) bool {
	if c == nil {
		return false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	n := sh.items[k]
	if n == nil {
		sh.mu.Unlock()
		return false
	}
	sh.unlink(n)
	sh.mu.Unlock()
	c.bytes.Add(-n.size)
	c.entries.Add(-1)
	return true
}

// unlink removes n from its segment and the item map.  Caller holds sh.mu.
func (sh *shard) unlink(n *node) {
	if n.protected {
		sh.protected.remove(n)
		sh.protectedBytes -= n.size
	} else {
		sh.probation.remove(n)
	}
	delete(sh.items, n.key)
	sh.bytes -= n.size
}

// Invalidate eagerly reclaims entries of engine with generation < before.
// Key tagging already orphans them — they can never be looked up again
// after a swap publishes the new generation — so this only frees their
// bytes ahead of LRU pressure.  Returns the number of entries dropped.
func (c *Cache) Invalidate(engine string, before uint64) int {
	if c == nil {
		return 0
	}
	dropped := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, n := range sh.items {
			if k.Engine == engine && k.Gen < before {
				sh.unlink(n)
				c.bytes.Add(-n.size)
				c.entries.Add(-1)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	c.invalidated.Add(uint64(dropped))
	return dropped
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits        uint64 `json:"hits_total"`
	Misses      uint64 `json:"misses_total"`
	Collapsed   uint64 `json:"collapsed_total"`
	Evictions   uint64 `json:"evictions_total"`
	Invalidated uint64 `json:"invalidated_total"`
	Entries     int64  `json:"entries"`
	Bytes       int64  `json:"bytes_total"`
	MaxBytes    int64  `json:"max_bytes"`
}

// HitRate returns hits/(hits+misses) in [0,1]; 0 before any traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the counters; a nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Collapsed:   c.collapsed.Load(),
		Evictions:   c.evictions.Load(),
		Invalidated: c.invalidated.Load(),
		Entries:     c.entries.Load(),
		Bytes:       c.bytes.Load(),
		MaxBytes:    c.maxBytes,
	}
}

// Bytes returns the current resident byte total (0 for a nil cache).
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// MaxBytes returns the configured byte bound (0 for a nil cache).
func (c *Cache) MaxBytes() int64 {
	if c == nil {
		return 0
	}
	return c.maxBytes
}
