package excache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestXXH64Vectors pins the hash to the published xxHash64 reference
// vectors (seed 0), covering the short-input tails and the 32-byte block
// loop.  A drifting hash would silently re-address every cache entry.
func TestXXH64Vectors(t *testing.T) {
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"as", 0x1c330fb2d66be179},
		{"asd", 0x631c37ce72a97393},
		{"asdf", 0x415872f599cea71e},
		{"Call me Ishmael. Some years ago--never mind how long precisely-", 0x02a2e85470d6fd96},
	}
	for _, v := range vectors {
		if got := xxh64(v.in, 0); got != v.want {
			t.Errorf("xxh64(%q) = %#x, want %#x", v.in, got, v.want)
		}
	}
}

func TestHashPageQuerySensitivity(t *testing.T) {
	base := HashPage("<html>page</html>", nil)
	cases := []Hash128{
		HashPage("<html>page</html>", []string{"a"}),
		HashPage("<html>page</html>", []string{"a", "bc"}),
		HashPage("<html>page</html>", []string{"ab", "c"}),
		HashPage("<html>page</html>", []string{"bc", "a"}),
		HashPage("<html>page!</html>", nil),
	}
	seen := map[Hash128]bool{base: true}
	for i, h := range cases {
		if seen[h] {
			t.Fatalf("case %d: hash collides with an earlier variant: %+v", i, h)
		}
		seen[h] = true
	}
	if again := HashPage("<html>page</html>", []string{"a", "bc"}); again != cases[1] {
		t.Fatalf("hash not deterministic: %+v vs %+v", again, cases[1])
	}
}

func key(engine string, gen uint64, page string) Key {
	return Key{Engine: engine, Gen: gen, Hash: HashPage(page, nil)}
}

func entry(body string) *Entry {
	return &Entry{Body: []byte(body), Sections: 1, Records: 2}
}

func fillWith(e *Entry) func() (*Entry, error) {
	return func() (*Entry, error) { return e, nil }
}

func TestCacheHitMiss(t *testing.T) {
	c := New(1 << 20)
	k := key("demo", 1, "<p>x</p>")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	want := entry("body")
	got, hit, collapsed, err := c.Do(context.Background(), k, fillWith(want))
	if err != nil || hit || collapsed || got != want {
		t.Fatalf("first Do = (%v, hit=%v, collapsed=%v, %v)", got, hit, collapsed, err)
	}
	got, hit, _, err = c.Do(context.Background(), k, func() (*Entry, error) {
		t.Fatal("fill ran on resident key")
		return nil, nil
	})
	if err != nil || !hit || got != want {
		t.Fatalf("second Do = (%v, hit=%v, %v)", got, hit, err)
	}
	if got, ok := c.Get(k); !ok || got != want {
		t.Fatalf("Get = (%v, %v)", got, ok)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Bytes <= 0 || s.Bytes > s.MaxBytes {
		t.Fatalf("bytes = %d outside (0, %d]", s.Bytes, s.MaxBytes)
	}
}

// TestCacheByteBound floods one cache with distinct entries far beyond its
// budget: the resident byte count must never exceed the bound, evictions
// must be counted, and the most recently inserted entries must survive.
func TestCacheByteBound(t *testing.T) {
	const maxBytes = 64 << 10
	c := New(maxBytes)
	body := make([]byte, 512)
	for i := 0; i < 4096; i++ {
		k := key("demo", 1, fmt.Sprintf("page-%d", i))
		e := &Entry{Body: body}
		if _, _, _, err := c.Do(context.Background(), k, fillWith(e)); err != nil {
			t.Fatal(err)
		}
		if got := c.Bytes(); got > maxBytes {
			t.Fatalf("insert %d: resident bytes %d exceed bound %d", i, got, maxBytes)
		}
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatalf("no evictions after flooding: %+v", s)
	}
	if s.Entries <= 0 {
		t.Fatalf("cache emptied itself: %+v", s)
	}
}

// TestCacheSegmentedLRU checks scan resistance: an entry promoted to the
// protected segment by a repeat hit must survive a flood of one-off
// insertions that far exceeds the byte budget.
func TestCacheSegmentedLRU(t *testing.T) {
	c := New(64 << 10)
	hot := key("demo", 1, "hot-page")
	he := entry("hot")
	c.Do(context.Background(), hot, fillWith(he))
	if _, ok := c.Get(hot); !ok { // repeat hit promotes to protected
		t.Fatal("hot entry missing after insert")
	}
	body := make([]byte, 512)
	for i := 0; i < 4096; i++ {
		// Scan traffic: same shard as hot not guaranteed, so flood all.
		k := key("demo", 1, fmt.Sprintf("scan-%d", i))
		c.Do(context.Background(), k, fillWith(&Entry{Body: body}))
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("protected hot entry evicted by one-off scan traffic")
	}
}

// TestCacheGenerationInvalidation proves a wrapper swap orphans stale
// entries: the new generation misses, and Invalidate reclaims the old
// generation's bytes.
func TestCacheGenerationInvalidation(t *testing.T) {
	c := New(1 << 20)
	oldKey := key("demo", 1, "<p>x</p>")
	newKey := key("demo", 2, "<p>x</p>")
	c.Do(context.Background(), oldKey, fillWith(entry("old")))
	if _, ok := c.Get(newKey); ok {
		t.Fatal("new generation hit the old generation's entry")
	}
	fresh := entry("new")
	got, hit, _, err := c.Do(context.Background(), newKey, fillWith(fresh))
	if err != nil || hit || string(got.Body) != "new" {
		t.Fatalf("new-generation Do = (%s, hit=%v, %v)", got.Body, hit, err)
	}
	if n := c.Invalidate("demo", 2); n != 1 {
		t.Fatalf("Invalidate dropped %d entries, want 1", n)
	}
	if _, ok := c.Get(oldKey); ok {
		t.Fatal("old generation still resident after Invalidate")
	}
	if got, ok := c.Get(newKey); !ok || string(got.Body) != "new" {
		t.Fatal("current generation dropped by Invalidate")
	}
	if s := c.Stats(); s.Invalidated != 1 {
		t.Fatalf("invalidated counter = %d, want 1", s.Invalidated)
	}
}

func TestCacheRemove(t *testing.T) {
	c := New(1 << 20)
	k := key("demo", 1, "<p>x</p>")
	c.Do(context.Background(), k, fillWith(entry("body")))
	before := c.Bytes()
	if !c.Remove(k) {
		t.Fatal("Remove missed a resident entry")
	}
	if c.Remove(k) {
		t.Fatal("Remove hit a removed entry")
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("entry resident after Remove")
	}
	if c.Bytes() >= before {
		t.Fatalf("bytes not reclaimed: %d -> %d", before, c.Bytes())
	}
}

// TestCacheSingleflight launches many concurrent misses on one key: exactly
// one fill must run, everyone must get its entry, and the followers must be
// counted as collapsed.
func TestCacheSingleflight(t *testing.T) {
	c := New(1 << 20)
	k := key("demo", 1, "<p>x</p>")
	var fills atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, _, _, err := c.Do(context.Background(), k, func() (*Entry, error) {
				fills.Add(1)
				<-release
				return entry("shared"), nil
			})
			if err == nil && string(got.Body) != "shared" {
				err = errors.New("wrong body")
			}
			errs[i] = err
		}(i)
	}
	// Let the leader win and the followers queue before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	s := c.Stats()
	if s.Collapsed == 0 || s.Collapsed != uint64(waiters)-s.Misses-s.Hits {
		t.Fatalf("collapse accounting off: %+v (waiters=%d)", s, waiters)
	}
}

// TestCacheSingleflightLeaderFailure: a failing leader must not cache its
// error or poison the key — a follower retries and succeeds.
func TestCacheSingleflightLeaderFailure(t *testing.T) {
	c := New(1 << 20)
	k := key("demo", 1, "<p>x</p>")
	boom := errors.New("boom")
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), k, func() (*Entry, error) {
			close(leaderIn)
			<-release
			return nil, boom
		})
	}()
	<-leaderIn
	done := make(chan error, 1)
	go func() {
		got, _, _, err := c.Do(context.Background(), k, func() (*Entry, error) {
			return entry("recovered"), nil
		})
		if err == nil && string(got.Body) != "recovered" {
			err = errors.New("wrong body")
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("follower after failed leader: %v", err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("successful retry not cached")
	}
}

// TestCacheWaiterContext: a follower whose context dies while waiting on a
// slow leader returns the context error instead of blocking.
func TestCacheWaiterContext(t *testing.T) {
	c := New(1 << 20)
	k := key("demo", 1, "<p>x</p>")
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		c.Do(context.Background(), k, func() (*Entry, error) {
			close(leaderIn)
			<-release
			return entry("late"), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, _, err := c.Do(ctx, k, fillWith(entry("x")))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter error = %v, want DeadlineExceeded", err)
	}
}

// TestCacheFillPanicUnblocksWaiters: a fill that panics (the cooperative
// cancellation unwind) must wake waiting followers rather than strand them.
func TestCacheFillPanicUnblocksWaiters(t *testing.T) {
	c := New(1 << 20)
	k := key("demo", 1, "<p>x</p>")
	leaderIn := make(chan struct{})
	go func() {
		defer func() { recover() }()
		c.Do(context.Background(), k, func() (*Entry, error) {
			close(leaderIn)
			panic("unwind")
		})
	}()
	<-leaderIn
	done := make(chan error, 1)
	go func() {
		_, _, _, err := c.Do(context.Background(), k, fillWith(entry("after")))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("follower after panicked leader: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower stranded behind a panicked leader")
	}
}

// TestNilCache pins the disabled-cache contract: every method is nil-safe
// and Do degenerates to calling fill.
func TestNilCache(t *testing.T) {
	var c *Cache
	if c2 := New(0); c2 != nil {
		t.Fatal("New(0) should return the nil disabled cache")
	}
	if _, ok := c.Get(key("e", 1, "p")); ok {
		t.Fatal("nil cache hit")
	}
	got, hit, collapsed, err := c.Do(context.Background(), key("e", 1, "p"), fillWith(entry("x")))
	if err != nil || hit || collapsed || string(got.Body) != "x" {
		t.Fatal("nil cache Do did not run fill")
	}
	if c.Remove(key("e", 1, "p")) || c.Invalidate("e", 9) != 0 {
		t.Fatal("nil cache mutators did something")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", s)
	}
	if c.Bytes() != 0 || c.MaxBytes() != 0 {
		t.Fatal("nil cache size accessors nonzero")
	}
}

// TestCacheConcurrentMixed hammers a small cache with concurrent Do/Get/
// Invalidate across engines and generations; run under -race this is the
// memory-safety check, and the byte bound must hold at every sample.
func TestCacheConcurrentMixed(t *testing.T) {
	const maxBytes = 32 << 10
	c := New(maxBytes)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(fmt.Sprintf("eng-%d", i%3), uint64(1+i%2), fmt.Sprintf("page-%d", i%50))
				switch i % 7 {
				case 5:
					c.Get(k)
				case 6:
					c.Invalidate("eng-0", 2)
				default:
					c.Do(context.Background(), k, fillWith(&Entry{Body: make([]byte, 256)}))
				}
				if b := c.Bytes(); b > maxBytes {
					t.Errorf("bytes %d exceed bound %d", b, maxBytes)
					return
				}
			}
		}(g)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
