package excache

// A dependency-free xxHash64 implementation specialized for strings.  The
// cache keys pages by a 128-bit digest built from two independently seeded
// xxHash64 passes, which makes accidental collisions (two different pages
// mapping to one cache entry) astronomically unlikely while hashing at
// word-at-a-time speed — the hash is on the hit path, so a byte-at-a-time
// stdlib hash (fnv) would dominate the cost of a cache hit for large pages.

const (
	prime1 uint64 = 11400714785074694791
	prime2 uint64 = 14029467366897019727
	prime3 uint64 = 1609587929392839161
	prime4 uint64 = 9650029242287828579
	prime5 uint64 = 2870177450012600261
)

// Hash128 is a 128-bit content digest.
type Hash128 struct {
	Hi uint64
	Lo uint64
}

// HashPage digests one extraction input: the raw page bytes plus the query
// terms, in order.  The query participates because wrapper application is
// query-aware — the same page extracted under different query terms may
// yield different sections, so the terms are part of the content address.
func HashPage(html string, query []string) Hash128 {
	h := Hash128{
		Lo: xxh64(html, 0),
		Hi: xxh64(html, prime5),
	}
	for _, q := range query {
		// Fold each term in order with an avalanche step between terms, so
		// ["a","bc"] and ["ab","c"] (and reordered term lists) all address
		// distinct entries.
		h.Lo = avalanche(h.Lo ^ xxh64(q, prime1) ^ uint64(len(q))*prime2)
		h.Hi = avalanche(h.Hi ^ xxh64(q, prime3) ^ uint64(len(q))*prime4)
	}
	return h
}

// HashString digests a bare string (used by the consistent-hash ring and
// for shard selection on engine names).
func HashString(s string) uint64 { return xxh64(s, 0) }

func u64(s string, i int) uint64 {
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24 |
		uint64(s[i+4])<<32 | uint64(s[i+5])<<40 | uint64(s[i+6])<<48 | uint64(s[i+7])<<56
}

func u32(s string, i int) uint64 {
	return uint64(s[i]) | uint64(s[i+1])<<8 | uint64(s[i+2])<<16 | uint64(s[i+3])<<24
}

func rol(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func round(acc, input uint64) uint64 {
	acc += input * prime2
	acc = rol(acc, 31)
	acc *= prime1
	return acc
}

func mergeRound(acc, val uint64) uint64 {
	val = round(0, val)
	acc ^= val
	acc = acc*prime1 + prime4
	return acc
}

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// xxh64 is the reference xxHash64 algorithm over the bytes of s.
func xxh64(s string, seed uint64) uint64 {
	i, n := 0, len(s)
	var h uint64
	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for ; i+32 <= n; i += 32 {
			v1 = round(v1, u64(s, i))
			v2 = round(v2, u64(s, i+8))
			v3 = round(v3, u64(s, i+16))
			v4 = round(v4, u64(s, i+24))
		}
		h = rol(v1, 1) + rol(v2, 7) + rol(v3, 12) + rol(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += uint64(n)
	for ; i+8 <= n; i += 8 {
		h ^= round(0, u64(s, i))
		h = rol(h, 27)*prime1 + prime4
	}
	if i+4 <= n {
		h ^= u32(s, i) * prime1
		h = rol(h, 23)*prime2 + prime3
		i += 4
	}
	for ; i < n; i++ {
		h ^= uint64(s[i]) * prime5
		h = rol(h, 11) * prime1
	}
	return avalanche(h)
}
