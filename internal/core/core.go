// Package core implements the MSE pipeline of Section 3 of the paper: the
// nine steps that turn a handful of sample result pages from one search
// engine into a wrapper that extracts every dynamic section — and the
// records within each section — from any result page of that engine.
//
//	step 1  render pages into content lines            (internal/layout)
//	step 2  extract multi-record sections with MRE     (internal/mre)
//	step 3  identify dynamic sections with DSE         (internal/dse)
//	step 4  refine MRs and DSs against each other      (internal/refine)
//	step 5  mine records from record-less DSs          (internal/mining)
//	step 6  resolve section-record granularity         (internal/granularity)
//	step 7  group section instances across pages       (internal/cluster)
//	step 8  build a wrapper per section schema         (internal/wrapper)
//	step 9  combine wrappers into section families     (internal/wrapper)
package core

import (
	"errors"
	"sort"
	"sync/atomic"

	"mse/internal/cancel"
	"mse/internal/cluster"
	"mse/internal/dom"
	"mse/internal/dse"
	"mse/internal/editdist"
	"mse/internal/granularity"
	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/mre"
	"mse/internal/obs"
	"mse/internal/par"
	"mse/internal/prune"
	"mse/internal/refine"
	"mse/internal/sect"
	"mse/internal/wrapper"
)

// SamplePage is one training input: the HTML of a result page and the
// query terms that produced it.
type SamplePage struct {
	HTML  string
	Query []string
}

// Options bundle the per-stage parameters.  The zero value is not usable;
// start from DefaultOptions.
type Options struct {
	MRE         mre.Options
	DSE         dse.Options
	Refine      refine.Options
	Mining      mining.Options
	Granularity granularity.Options
	Cluster     cluster.Options
	Wrapper     wrapper.Options
	// DisableRefine skips step 4 (ablation).
	DisableRefine bool
	// DisableGranularity skips step 6 (ablation).
	DisableGranularity bool
	// DisableFamilies skips step 9 (ablation).
	DisableFamilies bool
	// Parallelism is the worker count for the data-parallel stages: the
	// per-page loops of steps 1-2 and 4-6, and (unless Cluster.Parallelism
	// overrides it) the pairwise score matrix of step 7.  0 means
	// GOMAXPROCS; 1 forces the serial path.  Results are written into
	// index-addressed slices, so output is identical at any setting.
	Parallelism int
	// Obs, when non-nil, receives one trace per BuildWrapper /
	// AnalyzePages / Extract call: a root span with one child span per
	// pipeline step plus stage counters (pages, sections, records,
	// tree_dist_calls).  When nil — the default — instrumentation
	// reduces to nil-receiver checks and costs nothing.
	Obs *obs.Tracer

	// cancel is the cooperative-cancellation token threaded through the
	// pipeline by the ctx-accepting entry points (BuildWrapperCtx,
	// ExtractCtx, ExtractLeasedCtx).  Always nil on the plain entry
	// points, so they keep their historical never-fails behaviour.
	cancel *cancel.Token
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		MRE:         mre.DefaultOptions(),
		DSE:         dse.DefaultOptions(),
		Refine:      refine.DefaultOptions(),
		Mining:      mining.DefaultOptions(),
		Granularity: granularity.DefaultOptions(),
		Cluster:     cluster.DefaultOptions(),
		Wrapper:     wrapper.DefaultOptions(),
	}
}

// EngineWrapper is the full extraction wrapper for one search engine: an
// ordered list of section wrappers plus the section families built from
// them.
type EngineWrapper struct {
	Wrappers []*wrapper.SectionWrapper `json:"wrappers"`
	Families []*wrapper.Family         `json:"families,omitempty"`

	opt Options

	// compiled caches the lowered form of Wrappers and Families plus the
	// prune specs derived from them (see Compile).  Built lazily on first
	// compiled extraction, eagerly by serve.Registry; never serialized.
	compiled atomic.Pointer[compiledEngine]
}

// compiledEngine is the compiled form of an EngineWrapper: specs[i] is the
// prune target of ws[i] for i < len(ws), and of fams[i-len(ws)] after.
type compiledEngine struct {
	ws    []*wrapper.CompiledWrapper
	fams  []*wrapper.CompiledFamily
	specs []prune.Spec
}

// Compile lowers the engine's wrappers and families into their compiled
// forms and derives the DOM-pruning specs (one per wrapper/family, index-
// aligned).  Idempotent; call after mutating Wrappers/Families (e.g. a
// registry wrapper swap) to refresh the cache.  Extraction compiles
// lazily, so calling this is an optimization, not a requirement.
func (ew *EngineWrapper) Compile() {
	ce := &compiledEngine{}
	for _, w := range ew.Wrappers {
		ce.ws = append(ce.ws, wrapper.Compile(w))
		ce.specs = append(ce.specs, prune.Spec{Path: w.Pref, Wildcard: -1})
	}
	for _, f := range ew.Families {
		ce.fams = append(ce.fams, wrapper.CompileFamily(f))
		switch f.Type {
		case wrapper.Type1:
			ce.specs = append(ce.specs, prune.Spec{Path: f.Pref, Wildcard: -1})
		case wrapper.Type2:
			pat := append(append(dom.CompactPath(nil), f.Pref...), f.SPref...)
			ce.specs = append(ce.specs, prune.Spec{Path: pat, Wildcard: len(f.Pref)})
		default:
			// Unknown family type (corrupt JSON): Family.Apply would return
			// nil, so give it a spec no document node can match to keep the
			// index alignment without producing candidates.
			ce.specs = append(ce.specs, prune.Spec{Path: dom.CompactPath{{Tag: "\x00none"}}, Wildcard: -1})
		}
	}
	ew.compiled.Store(ce)
}

// compiledEngine returns the cached compiled form, building it on first
// use.  Concurrent first calls may both compile; either result is valid.
func (ew *EngineWrapper) compiledEngine() *compiledEngine {
	if ce := ew.compiled.Load(); ce != nil {
		return ce
	}
	ew.Compile()
	return ew.compiled.Load()
}

// Section is an extracted section; see wrapper.ExtractedSection.
type Section = wrapper.ExtractedSection

// Record is an extracted record; see wrapper.ExtractedRecord.
type Record = wrapper.ExtractedRecord

// ErrNoSamplePages is returned by BuildWrapper when fewer than two sample
// pages are supplied; DSE needs at least a pair.
var ErrNoSamplePages = errors.New("core: need at least two sample pages")

// BuildWrapper runs the full MSE pipeline over the sample pages.
//
// When opt.Obs is set, one "build_wrapper" root span is recorded per call
// with exactly one child span per pipeline step (obs.PipelineSteps) —
// steps skipped by ablation options keep a zero-duration span — and the
// counters pages, sections, records and tree_dist_calls.
func BuildWrapper(samples []*SamplePage, opt Options) (*EngineWrapper, error) {
	if len(samples) < 2 {
		return nil, ErrNoSamplePages
	}
	root := opt.Obs.Start(obs.RootBuildWrapper)
	defer root.End()
	// Create the nine step spans up front so the trace always covers the
	// full pipeline, even when an ablation skips a step.
	for _, step := range obs.PipelineSteps {
		root.Child(step)
	}
	root.Count("pages", int64(len(samples)))
	edCalls := editdist.TreeCalls()
	cs0 := editdist.Stats()

	// Steps 1-6 per page (DSE works across pages).  The sample pages live
	// only for the duration of this call — the wrappers built from them
	// copy every string and path they keep — so their parse arenas and
	// render scratches are leased from the pools and released on return.
	pageSections, leases, err := analyzePages(samples, opt, root, true)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, l := range leases {
			l.Release()
		}
	}()
	// Step 7: group section instances into schema clusters.
	clOpt := opt.Cluster
	if clOpt.Parallelism == 0 {
		clOpt.Parallelism = opt.Parallelism
	}
	clusterSp := root.Child(obs.StepCluster)
	t0 := clusterSp.Begin()
	groups := cluster.GroupInstances(pageSections, clOpt)
	clusterSp.AddSince(t0)
	// Step 8: one wrapper per group, ordered by document position.
	wrapSp := root.Child(obs.StepWrapper)
	t0 = wrapSp.Begin()
	sort.SliceStable(groups, func(i, j int) bool {
		return avgStart(groups[i]) < avgStart(groups[j])
	})
	ws := make([]*wrapper.SectionWrapper, 0, len(groups))
	for order, g := range groups {
		ws = append(ws, wrapper.Build(g, pageSections, order, opt.Wrapper))
	}
	wrapSp.AddSince(t0)
	// Step 9: section families.
	var fams []*wrapper.Family
	if !opt.DisableFamilies {
		famSp := root.Child(obs.StepFamilies)
		t0 = famSp.Begin()
		ws, fams = wrapper.BuildFamilies(ws, opt.Wrapper)
		famSp.AddSince(t0)
	}
	root.Count("tree_dist_calls", editdist.TreeCalls()-edCalls)
	root.Count("parallel_workers", int64(par.Workers(opt.Parallelism)))
	if cs := editdist.Stats().Sub(cs0); editdist.CacheEnabled() {
		root.Count("tree_cache_lookups", cs.Lookups)
		root.Count("tree_cache_hits", cs.Hits)
		root.Count("tree_cache_identical", cs.Identical)
		root.Count("tree_cache_early_exits", cs.EarlyExits)
		root.Count("tree_cache_evictions", cs.Evictions)
	}
	return &EngineWrapper{Wrappers: ws, Families: fams, opt: opt}, nil
}

// AnalyzePages executes steps 1-6 and returns, per sample page, the final
// refined sections with records.  It is exported for evaluation harnesses
// that score the training-time analysis directly.  When opt.Obs is set it
// records an "analyze_pages" root span with one child per step 1-6.
func AnalyzePages(samples []*SamplePage, opt Options) ([]*cluster.PageSections, error) {
	root := opt.Obs.Start(obs.RootAnalyzePages)
	defer root.End()
	// The returned PageSections keep their pages alive indefinitely, so
	// this path stays on the unpooled allocator.
	out, _, err := analyzePages(samples, opt, root, false)
	return out, err
}

// analyzePages is AnalyzePages recording its step spans under parent
// (nil for none).  Step spans accumulate across the per-page loops, so
// each step yields exactly one span regardless of sample count; under
// parallelism the accumulated step durations sum worker time, not wall
// time.  The per-page stages (1-2 and 4-6) fan out over a worker pool —
// pages are independent there — while DSE (step 3) is inherently
// cross-page and stays serial.
func analyzePages(samples []*SamplePage, opt Options, parent *obs.Span, pooled bool) ([]*cluster.PageSections, []*PageLease, error) {
	workers := par.Workers(opt.Parallelism)
	renderSp := parent.Child(obs.StepRender)
	mreSp := parent.Child(obs.StepMRE)
	inputs := make([]*dse.PageInput, len(samples))
	var leases []*PageLease
	if pooled {
		leases = make([]*PageLease, len(samples))
		// A panic anywhere below (including a cancellation signal or a
		// worker panic re-raised by par.ForEachIndex after all workers have
		// stopped) must return every leased arena and page to the pools
		// before unwinding.  Release is idempotent, so the caller's own
		// deferred release of a successfully returned slice stays safe.
		defer func() {
			if r := recover(); r != nil {
				for _, l := range leases {
					l.Release()
				}
				panic(r)
			}
		}()
	}
	par.ForEachIndex(len(samples), workers, func(i int) {
		opt.cancel.Check()
		sp := samples[i]
		t0 := renderSp.Begin()
		var page *layout.Page
		if pooled {
			doc, arena := htmlparse.ParsePooled(sp.HTML) // step 1
			// The lease owns the arena from this point: if the render below
			// panics (cancellation or a bug), the deferred sweep above
			// recycles it.  RenderPooledCancel recycles its own scratch on
			// panic, so the page is only attached once fully built.
			leases[i] = &PageLease{arena: arena}
			page = layout.RenderPooledCancel(doc, opt.cancel)
			leases[i].page = page
		} else {
			page = layout.RenderCancel(htmlparse.Parse(sp.HTML), opt.cancel) // step 1
		}
		renderSp.AddSince(t0)
		t0 = mreSp.Begin()
		mrs := mre.Extract(page, opt.MRE) // step 2
		mreSp.AddSince(t0)
		inputs[i] = &dse.PageInput{Page: page, Query: sp.Query, MRs: mrs}
	})
	dseSp := parent.Child(obs.StepDSE)
	t0 := dseSp.Begin()
	dss, marks := dse.Run(inputs, opt.DSE) // step 3
	dseSp.AddSince(t0)

	refineSp := parent.Child(obs.StepRefine)
	miningSp := parent.Child(obs.StepMining)
	granSp := parent.Child(obs.StepGranularity)
	out := make([]*cluster.PageSections, len(samples))
	par.ForEachIndex(len(inputs), workers, func(i int) {
		opt.cancel.Check()
		in := inputs[i]
		var sections []*sect.Section
		if opt.DisableRefine {
			// Ablation: take DSs as sections and mine all of them.
			sections = dss[i]
		} else {
			t0 := refineSp.Begin()
			sections = refine.Refine(in.Page, in.MRs, dss[i], marks[i], opt.Refine) // step 4
			refineSp.AddSince(t0)
		}
		t0 := miningSp.Begin()
		for _, s := range sections { // step 5
			if len(s.Records) == 0 {
				mining.Mine(s, opt.Mining)
			}
		}
		miningSp.AddSince(t0)
		if !opt.DisableGranularity {
			t0 = granSp.Begin()
			sections = granularity.Resolve(in.Page, sections, opt.Granularity) // step 6
			granSp.AddSince(t0)
		}
		out[i] = &cluster.PageSections{Page: in.Page, Query: in.Query, Sections: sections}
	})
	// Counters sum after the fan-out, in page order, so the totals are
	// deterministic regardless of worker scheduling.
	sectionCount, recordCount := int64(0), int64(0)
	for i := range out {
		out[i].Sections = dropEmpty(out[i].Sections)
		sectionCount += int64(len(out[i].Sections))
		for _, s := range out[i].Sections {
			recordCount += int64(len(s.Records))
		}
	}
	parent.Count("sections", sectionCount)
	parent.Count("records", recordCount)
	return out, leases, nil
}

func dropEmpty(sections []*sect.Section) []*sect.Section {
	out := sections[:0]
	for _, s := range sections {
		if s.Len() > 0 && len(s.Records) > 0 {
			out = append(out, s)
		}
	}
	return out
}

func avgStart(g *cluster.Group) float64 {
	sum := 0
	for _, inst := range g.Instances {
		sum += inst.Section.Start
	}
	return float64(sum) / float64(len(g.Instances))
}

// Extract applies the engine wrapper to a new result page.  query may be
// nil when the retrieving query is unknown.  Sections are returned in page
// order; overlapping extractions are resolved in favour of regular
// wrappers over family matches.
//
// When the wrapper's Options.Obs is set, each call records an "extract"
// root span with render / wrapper_build / families children and sections
// and records counters.
func (ew *EngineWrapper) Extract(html string, query []string) []*Section {
	sections, lease := ew.ExtractLeased(html, query)
	lease.Release()
	return sections
}

// PageLease holds the pooled parse arena and render scratch behind one
// ExtractLeased call.  Releasing it returns both to their pools; callers
// must do so only once they no longer reference the page.  The extracted
// sections themselves are plain strings and ints and always outlive the
// lease.  A nil lease is valid and Release is idempotent — including under
// concurrent calls, so a deferred release racing a panic-path release can
// never return an arena to the pool twice.
type PageLease struct {
	page  *layout.Page
	arena *dom.Arena
	// released flips exactly once; the loser of the CAS does nothing.
	released atomic.Bool
}

// Page returns the rendered page backing the extraction.  It becomes
// invalid when the lease is released.
func (l *PageLease) Page() *layout.Page {
	if l == nil {
		return nil
	}
	return l.page
}

// Release returns the lease's arena and render scratch to their pools.
// Only the first call (across all goroutines) releases; the rest are
// no-ops.
func (l *PageLease) Release() {
	if l == nil || !l.released.CompareAndSwap(false, true) {
		return
	}
	if l.page != nil {
		l.page.Release()
		l.page = nil
	}
	if l.arena != nil {
		l.arena.Release()
		l.arena = nil
	}
}

// ExtractLeased is Extract on the pooled fast path: the DOM comes from a
// pooled parse arena and the page from a pooled render scratch.  The
// returned sections are ordinary heap values; the lease must be released
// (exactly once, after the response derived from the sections and page is
// complete) to recycle the per-request memory.
func (ew *EngineWrapper) ExtractLeased(html string, query []string) ([]*Section, *PageLease) {
	root := ew.opt.Obs.Start(obs.RootExtract)
	defer root.End()
	lease := &PageLease{}
	sections := ew.extractLeasedInto(lease, html, query, nil, root, ew.opt.Wrapper)
	return sections, lease
}

// extractLeasedInto parses, renders and extracts html into the caller's
// lease, choosing between the compiled fast path (prune + pruned render +
// compiled wrappers) and the interpreted legacy path.  The lease's fields
// are populated as resources are acquired, so a caller with a deferred
// lease.Release covers every partial state when the walk panics
// (cancellation); callers without recovery keep ExtractLeased's historical
// propagate-the-panic behaviour.
func (ew *EngineWrapper) extractLeasedInto(lease *PageLease, html string, query []string, tok *cancel.Token, root *obs.Span, wopt wrapper.Options) []*Section {
	if wrapper.CompiledEnabled() {
		return ew.extractCompiled(lease, html, query, tok, root, wopt)
	}
	renderSp := root.Child(obs.StepRender)
	t0 := renderSp.Begin()
	doc, arena := htmlparse.ParsePooled(html)
	lease.arena = arena
	lease.page = layout.RenderPooledCancel(doc, tok)
	renderSp.AddSince(t0)
	return ew.extractFromPage(lease.page, query, root, wopt)
}

// extractCompiled is the compiled extraction hot path: one pruning DFS
// locates every wrapper's candidate subtrees and marks them on the DOM,
// the render materializes full lines only where extraction can read them
// (skeletons elsewhere, early stop after the last candidate region), and
// the compiled wrappers consume the pre-located candidates instead of
// re-walking the tree.  Output is byte-identical to the interpreted path
// (differential-tested across the synthetic testbed).
func (ew *EngineWrapper) extractCompiled(lease *PageLease, html string, query []string, tok *cancel.Token, root *obs.Span, wopt wrapper.Options) []*Section {
	ce := ew.compiledEngine()
	renderSp := root.Child(obs.StepRender)
	t0 := renderSp.Begin()
	doc, arena := htmlparse.ParsePooled(html)
	lease.arena = arena
	renderSp.AddSince(t0)

	pruneSp := root.Child(obs.StepPrune)
	t0 = pruneSp.Begin()
	res := prune.Run(doc, ce.specs, tok)
	pruneSp.AddSince(t0)
	defer res.Release()

	t0 = renderSp.Begin()
	page, info := layout.RenderPooledPruned(doc, tok, res.Outer())
	lease.page = page
	renderSp.AddSince(t0)
	prune.AddRendered(info.FullLines, info.SkeletonLines)

	var all []*Section
	wrapSp := root.Child(obs.StepWrapper)
	t0 = wrapSp.Begin()
	for i, cw := range ce.ws {
		if s := cw.Apply(page, res.Cands(i), query, wopt); s != nil {
			all = append(all, s)
		}
	}
	wrapSp.AddSince(t0)
	famSp := root.Child(obs.StepFamilies)
	t0 = famSp.Begin()
	for i, cf := range ce.fams {
		all = append(all, cf.ApplyCands(page, res.Cands(len(ce.ws)+i), wopt)...)
	}
	famSp.AddSince(t0)
	return finishSections(all, root)
}

// ExtractFromPage is Extract for an already rendered page.
func (ew *EngineWrapper) ExtractFromPage(page *layout.Page, query []string) []*Section {
	root := ew.opt.Obs.Start(obs.RootExtract)
	defer root.End()
	return ew.extractFromPage(page, query, root, ew.opt.Wrapper)
}

// extractFromPage applies every wrapper and family to the page.  opt is
// passed explicitly (rather than read from ew) so the ctx entry points can
// install a per-call cancellation token without mutating the shared
// EngineWrapper.
func (ew *EngineWrapper) extractFromPage(page *layout.Page, query []string, span *obs.Span, opt wrapper.Options) []*Section {
	var all []*Section
	wrapSp := span.Child(obs.StepWrapper)
	t0 := wrapSp.Begin()
	for _, w := range ew.Wrappers {
		if s := w.Apply(page, query, opt); s != nil {
			all = append(all, s)
		}
	}
	wrapSp.AddSince(t0)
	famSp := span.Child(obs.StepFamilies)
	t0 = famSp.Begin()
	for _, f := range ew.Families {
		all = append(all, f.Apply(page, query, opt)...)
	}
	famSp.AddSince(t0)
	return finishSections(all, span)
}

// finishSections orders and deduplicates the raw per-wrapper extractions —
// the shared tail of the interpreted and compiled paths.
func finishSections(all []*Section, span *obs.Span) []*Section {
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		// Regular wrappers win ties against family matches.
		return !all[i].FromFamily && all[j].FromFamily
	})
	// Drop overlapping duplicates (family rediscovering a wrapped
	// section).
	var out []*Section
	for _, s := range all {
		dup := false
		for _, kept := range out {
			if overlapFrac(kept, s) > 0.5 {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	if span != nil {
		span.Count("sections", int64(len(out)))
		records := int64(0)
		for _, s := range out {
			records += int64(len(s.Records))
		}
		span.Count("records", records)
	}
	return out
}

// SetOptions replaces the wrapper-application options (used after loading
// a serialized wrapper).
func (ew *EngineWrapper) SetOptions(opt Options) { ew.opt = opt }

func overlapFrac(a, b *Section) float64 {
	lo := a.Start
	if b.Start > lo {
		lo = b.Start
	}
	hi := a.End
	if b.End < hi {
		hi = b.End
	}
	if hi <= lo {
		return 0
	}
	minLen := a.End - a.Start
	if l := b.End - b.Start; l < minLen {
		minLen = l
	}
	if minLen == 0 {
		return 0
	}
	return float64(hi-lo) / float64(minLen)
}
