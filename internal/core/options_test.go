package core

import (
	"testing"

	"mse/internal/synth"
)

// TestAblationFlags checks that the three Disable* options actually change
// pipeline behaviour (they exist for the ablation experiments).
func TestAblationFlags(t *testing.T) {
	e := synth.NewEngine(2006, 21, true) // multi-section, same-format engine
	var samples []*SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	build := func(mod func(*Options)) *EngineWrapper {
		opt := DefaultOptions()
		mod(&opt)
		ew, err := BuildWrapper(samples, opt)
		if err != nil {
			t.Fatal(err)
		}
		return ew
	}
	full := build(func(*Options) {})
	noFam := build(func(o *Options) { o.DisableFamilies = true })
	if len(noFam.Families) != 0 {
		t.Fatalf("DisableFamilies still produced families")
	}
	if len(full.Wrappers)+len(full.Families) == 0 {
		t.Fatalf("full pipeline produced nothing")
	}
	// DisableRefine must not crash and must still yield a usable wrapper.
	noRefine := build(func(o *Options) { o.DisableRefine = true })
	gp := e.Page(7)
	if secs := noRefine.Extract(gp.HTML, gp.Query); secs == nil {
		t.Logf("no-refine wrapper extracted nothing (acceptable, but noting)")
	}
	noGran := build(func(o *Options) { o.DisableGranularity = true })
	_ = noGran.Extract(gp.HTML, gp.Query)
}

// TestAnalyzePagesExported verifies the exported analysis entry point used
// by evaluation harnesses returns one entry per sample page with rendered
// pages attached.
func TestAnalyzePagesExported(t *testing.T) {
	e := synth.NewEngine(2006, 8, false)
	var samples []*SamplePage
	for q := 0; q < 3; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ps, err := AnalyzePages(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("pages = %d", len(ps))
	}
	for i, p := range ps {
		if p.Page == nil || len(p.Page.Lines) == 0 {
			t.Fatalf("page %d not rendered", i)
		}
		for _, s := range p.Sections {
			if s.Len() <= 0 || len(s.Records) == 0 {
				t.Fatalf("page %d has an empty refined section", i)
			}
		}
	}
}
