package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"mse/internal/dom"
	"mse/internal/layout"
	"mse/internal/synth"
)

// heavyEngine generates the pathological training set for the
// cancellation tests: pages with enough records and sections that the
// uncanceled pipeline runs for over a second, so an interrupt demonstrably
// cuts it short.
var heavyEngine = struct {
	once    sync.Once
	samples []*SamplePage
	build   time.Duration // uncanceled BuildWrapper wall time
}{}

func heavySamples(t *testing.T) ([]*SamplePage, time.Duration) {
	t.Helper()
	heavyEngine.once.Do(func() {
		// Crank every section up to hundreds of records per page: the
		// cluster stage's tree-edit distances over the resulting record
		// forests make the uncanceled build take on the order of seconds.
		e := synth.NewEngine(400, 6, true)
		for _, ss := range e.Schema.Sections {
			ss.MinRecords, ss.MaxRecords = 150, 180
		}
		for q := 0; q < 6; q++ {
			gp := e.Page(q)
			heavyEngine.samples = append(heavyEngine.samples,
				&SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		start := time.Now()
		if _, err := BuildWrapper(heavyEngine.samples, DefaultOptions()); err != nil {
			panic(err)
		}
		heavyEngine.build = time.Since(start)
	})
	return heavyEngine.samples, heavyEngine.build
}

// poolBalance captures the acquire/release deltas of every pooled resource
// on the extraction path.
type poolBalance struct {
	arenaAcq, arenaRel     uint64
	scratchAcq, scratchRel uint64
}

func poolCounters() poolBalance {
	a := dom.ArenaStatsSnapshot()
	s := layout.ScratchStatsSnapshot()
	return poolBalance{a.Acquires, a.Releases, s.Acquires, s.Releases}
}

// assertPoolsBalanced checks that everything acquired since before went
// back to the pools.
func assertPoolsBalanced(t *testing.T, before poolBalance) {
	t.Helper()
	after := poolCounters()
	if acq, rel := after.arenaAcq-before.arenaAcq, after.arenaRel-before.arenaRel; acq != rel {
		t.Fatalf("arena leak: %d acquired, %d released", acq, rel)
	}
	if acq, rel := after.scratchAcq-before.scratchAcq, after.scratchRel-before.scratchRel; acq != rel {
		t.Fatalf("render scratch leak: %d acquired, %d released", acq, rel)
	}
}

// assertGoroutinesSettle waits for the goroutine count to come back to
// (near) the baseline; worker-pool goroutines must not outlive a canceled
// pipeline.
func assertGoroutinesSettle(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// cancelLatencyBudget is the promptness bound on cooperative
// cancellation: 100ms of real time, scaled up under the race detector
// (whose instrumentation slows the pipeline by an order of magnitude
// without changing the checkpoint density being tested).
func cancelLatencyBudget() time.Duration {
	if raceEnabled {
		return 2 * time.Second
	}
	return 100 * time.Millisecond
}

// TestBuildWrapperCtxCancelMidRun cancels the context while the pipeline
// is deep in work and requires the abort to land within 100ms, with no
// leaked goroutines or pooled memory.
func TestBuildWrapperCtxCancelMidRun(t *testing.T) {
	samples, buildTime := heavySamples(t)
	if buildTime < 200*time.Millisecond {
		t.Skipf("uncanceled build only takes %v; too fast to interrupt meaningfully", buildTime)
	}
	baseline := runtime.NumGoroutine()
	pools := poolCounters()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		ew  *EngineWrapper
		err error
	}
	done := make(chan result, 1)
	go func() {
		ew, err := BuildWrapperCtx(ctx, samples, DefaultOptions())
		done <- result{ew, err}
	}()
	// Land the cancel mid-pipeline.
	time.Sleep(buildTime / 3)
	canceledAt := time.Now()
	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("BuildWrapperCtx did not return within 5s of cancellation")
	}
	latency := time.Since(canceledAt)

	if res.err == nil {
		t.Fatalf("build completed (in %v) before the cancel landed; err = nil", buildTime/3)
	}
	if !errors.Is(res.err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", res.err)
	}
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("err = %v, want to unwrap to context.Canceled", res.err)
	}
	if res.ew != nil {
		t.Fatalf("wrapper = %v, want nil on cancellation", res.ew)
	}
	if budget := cancelLatencyBudget(); latency > budget {
		t.Fatalf("cancellation latency = %v, want < %v", latency, budget)
	}
	assertGoroutinesSettle(t, baseline)
	assertPoolsBalanced(t, pools)
}

// TestBuildWrapperCtxPreCanceled: an already-dead context aborts at the
// first checkpoint, well inside the latency budget.
func TestBuildWrapperCtxPreCanceled(t *testing.T) {
	samples, _ := heavySamples(t)
	pools := poolCounters()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	ew, err := BuildWrapperCtx(ctx, samples, DefaultOptions())
	if !errors.Is(err, ErrCanceled) || ew != nil {
		t.Fatalf("got (%v, %v), want (nil, ErrCanceled)", ew, err)
	}
	if d, budget := time.Since(start), cancelLatencyBudget(); d > budget {
		t.Fatalf("pre-canceled build took %v, want < %v", d, budget)
	}
	assertPoolsBalanced(t, pools)
}

// TestExtractCtxCancelMidRun cancels during extraction of a pathological
// page and requires a prompt ErrCanceled with every pooled resource back.
func TestExtractCtxCancelMidRun(t *testing.T) {
	// A modest training set is enough; the pathological page is the input
	// being extracted.
	e := synth.NewEngine(60, 3, true)
	var samples []*SamplePage
	for q := 0; q < 4; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Pathological extraction target: a page of the SAME schema but with
	// two orders of magnitude more records, so the wrapper applies and the
	// extraction genuinely grinds.
	bigEngine := synth.NewEngine(60, 3, true)
	for _, ss := range bigEngine.Schema.Sections {
		ss.MinRecords, ss.MaxRecords = 2000, 2000
	}
	big := bigEngine.Page(9)

	uncanceled := time.Now()
	if _, err := ew.ExtractCtx(context.Background(), big.HTML, big.Query); err != nil {
		t.Fatal(err)
	}
	extractTime := time.Since(uncanceled)
	if extractTime < 20*time.Millisecond {
		t.Skipf("uncanceled extraction only takes %v; too fast to interrupt meaningfully", extractTime)
	}

	baseline := runtime.NumGoroutine()
	pools := poolCounters()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type result struct {
		sections []*Section
		err      error
	}
	done := make(chan result, 1)
	go func() {
		s, err := ew.ExtractCtx(ctx, big.HTML, big.Query)
		done <- result{s, err}
	}()
	time.Sleep(extractTime / 3)
	canceledAt := time.Now()
	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ExtractCtx did not return within 5s of cancellation")
	}
	latency := time.Since(canceledAt)

	if res.err == nil {
		// The extraction may legitimately have finished before the cancel
		// landed on a fast machine; that is success, not a failure of the
		// cancellation machinery.
		t.Logf("extraction finished before cancel landed (%v)", extractTime/3)
	} else {
		if !errors.Is(res.err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", res.err)
		}
		if res.sections != nil {
			t.Fatalf("sections = %v, want nil on cancellation", res.sections)
		}
		if budget := cancelLatencyBudget(); latency > budget {
			t.Fatalf("cancellation latency = %v, want < %v", latency, budget)
		}
	}
	assertGoroutinesSettle(t, baseline)
	assertPoolsBalanced(t, pools)
}

// TestExtractLeasedCtxPreCanceled: a dead context yields (nil, nil,
// ErrCanceled) and leaves the pools balanced — the lease is never handed
// out.
func TestExtractLeasedCtxPreCanceled(t *testing.T) {
	e := synth.NewEngine(30, 2, true)
	var samples []*SamplePage
	for q := 0; q < 3; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pools := poolCounters()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	gp := e.Page(7)
	sections, lease, err := ew.ExtractLeasedCtx(ctx, gp.HTML, gp.Query)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if sections != nil || lease != nil {
		t.Fatalf("got sections=%v lease=%v, want nil/nil", sections, lease)
	}
	assertPoolsBalanced(t, pools)
}

// TestExtractCtxBackgroundMatchesExtract: with a non-cancellable context
// the ctx variants are exactly the plain entry points.
func TestExtractCtxBackgroundMatchesExtract(t *testing.T) {
	e := synth.NewEngine(25, 2, true)
	var samples []*SamplePage
	for q := 0; q < 3; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapperCtx(context.Background(), samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gp := e.Page(5)
	got, err := ew.ExtractCtx(context.Background(), gp.HTML, gp.Query)
	if err != nil {
		t.Fatal(err)
	}
	want := ew.Extract(gp.HTML, gp.Query)
	if len(got) != len(want) {
		t.Fatalf("ctx extraction found %d sections, plain found %d", len(got), len(want))
	}
}
