package core

// End-to-end reproductions of the concrete situations the paper uses to
// motivate its mechanisms, beyond Figure 1:
//
//   - the Amazon example of §5.2: "Buy new: $XXX.XX" recurs in every
//     record and would be mistaken for a boundary marker without
//     filter_CSBMs;
//   - a clustering engine whose section headings are query-dependent
//     (category labels), the situation that motivates hidden-section
//     handling: headings never match across pages, so every boundary is
//     "hidden".

import (
	"fmt"
	"strings"
	"testing"
)

// amazonPage fabricates a shopping result page where every record carries
// the "Buy new:" decoration.
func amazonPage(query string, items []string) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><h1>Bookshop</h1>
	<div><a href="/h">Home</a> | <a href="/c">Cart</a></div>
	<div>Showing results for ` + query + `</div><hr>
	<h3>Books</h3><table>`)
	for i, item := range items {
		fmt.Fprintf(&sb, `<tr><td><a href="/dp/%d"><b>%s</b></a><br>by Some Author (Paperback)<br>Buy new: $%d.%02d</td></tr>`,
			i, item, 9+i, (i*37)%100)
	}
	sb.WriteString(`</table><hr><div>Conditions of Use</div></body></html>`)
	return sb.String()
}

func TestAmazonFalseSBMEndToEnd(t *testing.T) {
	samples := []*SamplePage{
		{HTML: amazonPage("go", []string{"The Go Programming Language", "Learning Go", "Go In Action", "Go Web Programming"}), Query: []string{"go"}},
		{HTML: amazonPage("history", []string{"A History Of The World", "Ancient Rome", "The Silk Roads"}), Query: []string{"history"}},
		{HTML: amazonPage("physics", []string{"Six Easy Pieces", "The Character Of Physical Law", "QED", "Relativity", "Thirty Years"}), Query: []string{"physics"}},
		{HTML: amazonPage("cooking", []string{"Salt Fat Acid Heat", "The Food Lab"}), Query: []string{"cooking"}},
		{HTML: amazonPage("poetry", []string{"Leaves Of Grass", "The Waste Land", "Selected Poems"}), Query: []string{"poetry"}},
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	page := amazonPage("novels", []string{"Middlemarch", "Bleak House", "Moby Dick", "Ulysses"})
	secs := ew.Extract(page, []string{"novels"})
	var books *Section
	for _, s := range secs {
		if s.Heading == "Books" {
			books = s
		}
	}
	if books == nil {
		t.Fatalf("Books section not extracted; got %d sections", len(secs))
	}
	if len(books.Records) != 4 {
		for _, r := range books.Records {
			t.Logf("record: %v", r.Lines)
		}
		t.Fatalf("records = %d, want 4 — the 'Buy new:' lines must not split records", len(books.Records))
	}
	for i, r := range books.Records {
		if len(r.Lines) != 3 {
			t.Fatalf("record %d has %d lines, want 3 (title/author/price)", i, len(r.Lines))
		}
		if !strings.Contains(r.Lines[2], "Buy new:") {
			t.Fatalf("record %d lost its price line: %v", i, r.Lines)
		}
	}
}

// clusterPage fabricates a clustering engine: section headings are the
// query-dependent cluster labels.
func clusterPage(query string, clusters map[string][]string, order []string) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><h1>ClusterFind</h1>
	<div>Results for ` + query + ` grouped by topic</div><hr><div class="results">`)
	for _, label := range order {
		docs := clusters[label]
		fmt.Fprintf(&sb, `<div><b><font size="4" color="#004488">%s</font></b></div>`, label)
		sb.WriteString(`<ul>`)
		for i, d := range docs {
			fmt.Fprintf(&sb, `<li><a href="/d/%d">%s</a><br>snippet about %s</li>`, i, d, d)
		}
		sb.WriteString(`</ul>`)
	}
	sb.WriteString(`</div><hr><div>About ClusterFind</div></body></html>`)
	return sb.String()
}

func TestClusteringEngineQueryDependentHeadings(t *testing.T) {
	samples := []*SamplePage{
		{HTML: clusterPage("jaguar", map[string][]string{
			"Cars":    {"Jaguar XK review", "Jaguar dealers", "Used Jaguar prices"},
			"Animals": {"Jaguar habitat", "Big cat conservation"},
		}, []string{"Cars", "Animals"}), Query: []string{"jaguar"}},
		{HTML: clusterPage("python", map[string][]string{
			"Programming": {"Python tutorial", "Python packages", "Async in Python"},
			"Reptiles":    {"Ball python care", "Python species"},
		}, []string{"Programming", "Reptiles"}), Query: []string{"python"}},
		{HTML: clusterPage("mercury", map[string][]string{
			"Astronomy": {"Planet Mercury facts", "Mercury transit"},
			"Chemistry": {"Mercury element", "Mercury toxicity", "Thermometers"},
			"Music":     {"Freddie Mercury biography"},
		}, []string{"Astronomy", "Chemistry", "Music"}), Query: []string{"mercury"}},
		{HTML: clusterPage("apollo", map[string][]string{
			"Space":     {"Apollo 11 landing", "Apollo program history"},
			"Mythology": {"Apollo the god", "Delphi oracle"},
		}, []string{"Space", "Mythology"}), Query: []string{"apollo"}},
		{HTML: clusterPage("delta", map[string][]string{
			"Airlines": {"Delta flight status", "Delta baggage rules"},
			"Rivers":   {"Nile delta ecology", "Mississippi delta"},
			"Math":     {"Delta in calculus"},
		}, []string{"Airlines", "Rivers", "Math"}), Query: []string{"delta"}},
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A new query with entirely new cluster labels: every section is
	// "hidden" in the paper's sense.
	page := clusterPage("amazon", map[string][]string{
		"Rainforest": {"Amazon basin facts", "Deforestation trends"},
		"Shopping":   {"Amazon store hours", "Online retail growth", "Package tracking"},
	}, []string{"Rainforest", "Shopping"})
	secs := ew.Extract(page, []string{"amazon"})

	found := map[string]int{}
	for _, s := range secs {
		for _, r := range s.Records {
			joined := strings.Join(r.Lines, " ")
			if strings.Contains(joined, "Amazon basin") || strings.Contains(joined, "Deforestation") {
				found["Rainforest"]++
			}
			if strings.Contains(joined, "store hours") || strings.Contains(joined, "retail growth") ||
				strings.Contains(joined, "Package tracking") {
				found["Shopping"]++
			}
		}
	}
	if found["Rainforest"] < 2 || found["Shopping"] < 3 {
		for _, s := range secs {
			t.Logf("section %q [%d,%d) recs=%d", s.Heading, s.Start, s.End, len(s.Records))
		}
		t.Fatalf("hidden-label clusters not recovered: %v", found)
	}
	// The two clusters must not be merged into one extracted section.
	for _, s := range secs {
		joined := ""
		for _, r := range s.Records {
			joined += strings.Join(r.Lines, " ") + " "
		}
		if strings.Contains(joined, "Amazon basin") && strings.Contains(joined, "store hours") {
			t.Fatalf("clusters merged into one section")
		}
	}
}
