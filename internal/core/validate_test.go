package core

import (
	"strings"
	"testing"

	"mse/internal/synth"
)

func buildFor(t *testing.T, e *synth.Engine) *EngineWrapper {
	t.Helper()
	var samples []*SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return ew
}

func TestValidateHealthyOnOwnEngine(t *testing.T) {
	e := synth.NewEngine(91, 1, false) // single, always-present section
	ew := buildFor(t, e)
	var fresh []*SamplePage
	for q := 5; q < 10; q++ {
		gp := e.Page(q)
		fresh = append(fresh, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	report := ew.Validate(fresh)
	if report.Pages != 5 {
		t.Fatalf("pages = %d", report.Pages)
	}
	if !report.Healthy(0.5) {
		t.Fatalf("wrapper unhealthy on its own engine:\n%s", report)
	}
	total := 0
	for _, w := range report.Wrappers {
		total += w.Records
	}
	if total == 0 && report.FamilySections == 0 {
		t.Fatalf("validation saw no records at all")
	}
}

func TestValidateDetectsTemplateDrift(t *testing.T) {
	e := synth.NewEngine(92, 2, false)
	ew := buildFor(t, e)
	// "The engine redesigned its site": completely different pages.
	drifted := []*SamplePage{
		{HTML: "<html><body><main><article>new world</article></main></body></html>", Query: []string{"q"}},
		{HTML: "<html><body><main><article>other content</article></main></body></html>", Query: []string{"r"}},
	}
	report := ew.Validate(drifted)
	if report.Healthy(0.5) {
		t.Fatalf("drifted template reported healthy:\n%s", report)
	}
}

func TestValidateStringOutput(t *testing.T) {
	e := synth.NewEngine(93, 3, true)
	ew := buildFor(t, e)
	gp := e.Page(6)
	report := ew.Validate([]*SamplePage{{HTML: gp.HTML, Query: gp.Query}})
	out := report.String()
	if !strings.Contains(out, "validated over 1 pages") {
		t.Fatalf("summary missing header: %q", out)
	}
	if len(report.Wrappers) > 0 && !strings.Contains(out, "wrapper ") {
		t.Fatalf("summary missing wrapper lines: %q", out)
	}
}

func TestValidateEmptyPageSet(t *testing.T) {
	e := synth.NewEngine(94, 4, false)
	ew := buildFor(t, e)
	report := ew.Validate(nil)
	if report.Pages != 0 {
		t.Fatalf("pages = %d", report.Pages)
	}
	// With zero pages every wrapper trivially fired 0 >= 0.5*0 times.
	if !report.Healthy(0.5) {
		t.Fatalf("empty validation should be vacuously healthy")
	}
}
