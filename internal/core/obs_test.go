package core

import (
	"testing"

	"mse/internal/obs"
	"mse/internal/synth"
)

func obsSamples(t testing.TB) []*SamplePage {
	t.Helper()
	e := synth.NewEngine(55, 3, true)
	var samples []*SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	return samples
}

// TestBuildWrapperSpans asserts the tentpole tracing contract: one
// build_wrapper root per call, exactly one child span per pipeline step,
// child durations summing to no more than the root, and the stage
// counters populated.
func TestBuildWrapperSpans(t *testing.T) {
	samples := obsSamples(t)
	opt := DefaultOptions()
	opt.Obs = obs.NewTracer()
	if _, err := BuildWrapper(samples, opt); err != nil {
		t.Fatal(err)
	}

	roots := opt.Obs.Snapshot()
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	root := roots[0]
	if root.Name != obs.RootBuildWrapper {
		t.Fatalf("root name = %q", root.Name)
	}
	seen := map[string]int{}
	var sum int64
	for _, c := range root.Children {
		seen[c.Name]++
		sum += int64(c.Duration)
	}
	for _, step := range obs.PipelineSteps {
		if seen[step] != 1 {
			t.Errorf("step %q has %d spans, want exactly 1", step, seen[step])
		}
	}
	if len(root.Children) != len(obs.PipelineSteps) {
		t.Errorf("children = %d, want %d", len(root.Children), len(obs.PipelineSteps))
	}
	if sum > int64(root.Duration) {
		t.Errorf("step durations sum %d > root duration %d", sum, int64(root.Duration))
	}
	if root.Duration <= 0 {
		t.Errorf("root duration = %v", root.Duration)
	}

	if got := root.Counters["pages"]; got != 5 {
		t.Errorf("pages counter = %d, want 5", got)
	}
	if root.Counters["sections"] <= 0 {
		t.Errorf("sections counter = %d, want > 0", root.Counters["sections"])
	}
	if root.Counters["records"] <= 0 {
		t.Errorf("records counter = %d, want > 0", root.Counters["records"])
	}
	if root.Counters["tree_dist_calls"] <= 0 {
		t.Errorf("tree_dist_calls counter = %d, want > 0", root.Counters["tree_dist_calls"])
	}
}

// TestBuildWrapperSpansWithAblations asserts skipped steps still emit a
// (zero-duration) span, keeping the tree shape stable for dashboards.
func TestBuildWrapperSpansWithAblations(t *testing.T) {
	samples := obsSamples(t)
	opt := DefaultOptions()
	opt.DisableRefine = true
	opt.DisableGranularity = true
	opt.DisableFamilies = true
	opt.Obs = obs.NewTracer()
	if _, err := BuildWrapper(samples, opt); err != nil {
		t.Fatal(err)
	}
	root := opt.Obs.Snapshot()[0]
	for _, step := range obs.PipelineSteps {
		if root.Find(step) == nil {
			t.Errorf("ablated run missing span %q", step)
		}
	}
	if d := root.Find(obs.StepRefine).Duration; d != 0 {
		t.Errorf("disabled refine accumulated %v", d)
	}
}

func TestAnalyzePagesSpans(t *testing.T) {
	samples := obsSamples(t)
	opt := DefaultOptions()
	opt.Obs = obs.NewTracer()
	if _, err := AnalyzePages(samples, opt); err != nil {
		t.Fatal(err)
	}
	root := opt.Obs.Snapshot()[0]
	if root.Name != obs.RootAnalyzePages {
		t.Fatalf("root name = %q", root.Name)
	}
	for _, step := range obs.PipelineSteps[:6] {
		if root.Find(step) == nil {
			t.Errorf("analyze_pages missing span %q", step)
		}
	}
}

func TestExtractSpans(t *testing.T) {
	samples := obsSamples(t)
	opt := DefaultOptions()
	ew, err := BuildWrapper(samples, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Obs = obs.NewTracer()
	ew.SetOptions(opt)
	e := synth.NewEngine(55, 3, true)
	gp := e.Page(7)
	sections := ew.Extract(gp.HTML, gp.Query)
	if len(sections) == 0 {
		t.Fatal("no sections extracted")
	}
	roots := opt.Obs.Snapshot()
	if len(roots) != 1 || roots[0].Name != obs.RootExtract {
		t.Fatalf("roots = %+v", roots)
	}
	root := roots[0]
	for _, step := range []string{obs.StepRender, obs.StepWrapper, obs.StepFamilies} {
		if root.Find(step) == nil {
			t.Errorf("extract missing span %q", step)
		}
	}
	if root.Counters["sections"] != int64(len(sections)) {
		t.Errorf("sections counter = %d, want %d", root.Counters["sections"], len(sections))
	}
	if root.Counters["records"] <= 0 {
		t.Errorf("records counter = %d, want > 0", root.Counters["records"])
	}
}

// TestNoTracerNoAllocs pins the zero-cost contract: with Obs unset the
// pipeline records nothing and touches no tracer state.
func TestNoTracerNoSpans(t *testing.T) {
	samples := obsSamples(t)
	opt := DefaultOptions()
	ew, err := BuildWrapper(samples, opt)
	if err != nil {
		t.Fatal(err)
	}
	e := synth.NewEngine(55, 3, true)
	gp := e.Page(7)
	if got := ew.Extract(gp.HTML, gp.Query); len(got) == 0 {
		t.Fatal("no sections extracted without tracer")
	}
}

// BenchmarkBuildWrapper measures wrapper construction without the obs
// hook; BenchmarkBuildWrapperTraced measures it with tracing enabled.
// Comparing the two bounds the instrumentation overhead.
func BenchmarkBuildWrapper(b *testing.B) {
	samples := obsSamples(b)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildWrapper(samples, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildWrapperTraced(b *testing.B) {
	samples := obsSamples(b)
	opt := DefaultOptions()
	opt.Obs = obs.NewTracer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt.Obs.Reset()
		if _, err := BuildWrapper(samples, opt); err != nil {
			b.Fatal(err)
		}
	}
}
