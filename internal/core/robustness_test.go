package core

// Failure-injection tests: the pipeline must degrade gracefully — never
// panic, never hang — on adversarial, truncated or degenerate inputs, and
// must stay deterministic.

import (
	"encoding/json"
	"strings"
	"testing"

	"mse/internal/synth"
)

// mustNotPanic runs the full pipeline over the given sample pages and
// extraction targets, failing the test on panic.
func mustNotPanic(t *testing.T, name string, samples []*SamplePage, extract []string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: pipeline panicked: %v", name, r)
		}
	}()
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		return // a clean error is acceptable
	}
	for _, html := range extract {
		ew.Extract(html, nil)
	}
}

func TestPipelineOnDegenerateInputs(t *testing.T) {
	cases := []struct {
		name string
		html string
	}{
		{"empty", ""},
		{"whitespace", "   \n\t  "},
		{"no body content", "<html><head><title>t</title></head><body></body></html>"},
		{"text only", "just some plain text without any markup"},
		{"unclosed everything", "<div><table><tr><td><a href=x>link"},
		{"only comments", "<!-- a --><!-- b -->"},
		{"binary-ish", "\x00\x01\x02<p>\xff\xfe</p>"},
		{"nested garbage", strings.Repeat("<div>", 300) + "x"},
		{"huge attribute", `<p class="` + strings.Repeat("x", 100000) + `">y</p>`},
		{"script soup", "<script>while(1){}</script><p>after</p>"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			samples := []*SamplePage{
				{HTML: c.html, Query: []string{"q"}},
				{HTML: c.html, Query: []string{"r"}},
			}
			mustNotPanic(t, c.name, samples, []string{c.html, "<p>other</p>"})
		})
	}
}

func TestPipelineMixedQualitySamples(t *testing.T) {
	// One good engine page plus one garbage page: training must survive.
	e := synth.NewEngine(77, 0, true)
	good := e.Page(0)
	samples := []*SamplePage{
		{HTML: good.HTML, Query: good.Query},
		{HTML: "<div>totally unrelated junk page</div>", Query: []string{"x"}},
		{HTML: e.Page(1).HTML, Query: e.Page(1).Query},
	}
	mustNotPanic(t, "mixed", samples, []string{e.Page(5).HTML})
}

func TestPipelineTruncatedPages(t *testing.T) {
	// Progressive truncations of a real page: tokenizer-level cuts,
	// element-level cuts, mid-attribute cuts.
	e := synth.NewEngine(78, 1, true)
	full := e.Page(0).HTML
	for _, frac := range []int{1, 5, 25, 50, 75, 95} {
		cut := len(full) * frac / 100
		truncated := full[:cut]
		samples := []*SamplePage{
			{HTML: truncated, Query: e.Page(0).Query},
			{HTML: e.Page(1).HTML, Query: e.Page(1).Query},
		}
		mustNotPanic(t, "truncated", samples, []string{truncated})
	}
}

func TestPipelineExtractOnForeignPage(t *testing.T) {
	// A wrapper trained on engine A applied to pages of engine B must not
	// panic and should extract little or nothing rather than garbage
	// sections covering the template.
	a := synth.NewEngine(79, 2, true)
	b := synth.NewEngine(80, 3, true)
	var samples []*SamplePage
	for q := 0; q < 5; q++ {
		gp := a.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	foreign := b.Page(0)
	secs := ew.Extract(foreign.HTML, foreign.Query)
	for _, s := range secs {
		txt := ""
		for _, r := range s.Records {
			txt += strings.Join(r.Lines, " ")
		}
		if strings.Contains(txt, "Copyright") {
			t.Fatalf("foreign extraction swallowed template content: %q", txt)
		}
	}
}

func TestPipelineDeterministic(t *testing.T) {
	e := synth.NewEngine(81, 4, true)
	var samples []*SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	build := func() string {
		ew, err := BuildWrapper(samples, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(ew)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	first := build()
	for i := 0; i < 3; i++ {
		if got := build(); got != first {
			t.Fatalf("wrapper construction is not deterministic (run %d)", i+2)
		}
	}
}

func TestPipelineIdenticalSamplePages(t *testing.T) {
	// All sample pages literally identical: every line matches mutually,
	// so everything is "static" and no wrapper can emerge — but nothing
	// may crash, and extraction must return nothing rather than noise.
	gp := synth.NewEngine(82, 5, false).Page(0)
	var samples []*SamplePage
	for i := 0; i < 5; i++ {
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		return
	}
	secs := ew.Extract(gp.HTML, gp.Query)
	for _, s := range secs {
		if s.Start == 0 {
			t.Fatalf("identical-page wrapper extracted from the page top")
		}
	}
}

func TestPipelineManySamplePages(t *testing.T) {
	// More samples than the paper's five must still work (and not blow up
	// combinatorially: DSE is pairwise).
	e := synth.NewEngine(83, 6, true)
	var samples []*SamplePage
	for q := 0; q < 9; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ew.Wrappers)+len(ew.Families) == 0 {
		t.Fatalf("no wrappers from nine samples")
	}
}
