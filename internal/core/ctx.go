package core

import (
	"context"
	"errors"
	"fmt"

	"mse/internal/cancel"
	"mse/internal/obs"
)

// ErrCanceled is returned (wrapped, carrying the context's own error) by
// the ctx-accepting entry points when the context is canceled or its
// deadline expires while the pipeline is running.  Test with
// errors.Is(err, core.ErrCanceled); the context cause is reachable through
// errors.Is(err, context.Canceled) / context.DeadlineExceeded as usual.
var ErrCanceled = errors.New("core: canceled")

// canceledErr wraps ErrCanceled with the context's cause.
func canceledErr(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, cause)
	}
	// The token fired but the context has no recorded cause (it raced a
	// cancel that has not propagated its err yet); report plain
	// cancellation.
	return fmt.Errorf("%w: %w", ErrCanceled, context.Canceled)
}

// withCancel returns a copy of opt with the token installed at every
// pipeline checkpoint site: the page renders of steps 1, the cluster score
// matrix of step 7 (which reaches the tree-edit-distance DP), and wrapper
// application.
func (o Options) withCancel(tok *cancel.Token) Options {
	o.cancel = tok
	o.Cluster.Cancel = tok
	o.Wrapper.Cancel = tok
	return o
}

// recoverCanceled converts a cancellation signal unwinding the stack into
// *err = canceledErr(ctx); any other panic value is re-raised.  It must be
// deferred by exactly the function that derived the token from ctx.
func recoverCanceled(ctx context.Context, err *error) {
	if r := recover(); r != nil {
		if cancel.IsSignal(r) {
			*err = canceledErr(ctx)
			return
		}
		panic(r)
	}
}

// BuildWrapperCtx is BuildWrapper honouring ctx: the pipeline polls the
// context at its long-loop checkpoints (render walk, tree-edit-distance
// DP, cluster score matrix) and aborts with an error satisfying
// errors.Is(err, ErrCanceled) once ctx is done.  All pooled memory leased
// during the aborted run is returned to the pools.  With a
// non-cancellable ctx this is exactly BuildWrapper.
func BuildWrapperCtx(ctx context.Context, samples []*SamplePage, opt Options) (ew *EngineWrapper, err error) {
	tok := cancel.FromContext(ctx)
	if tok == nil {
		return BuildWrapper(samples, opt)
	}
	defer recoverCanceled(ctx, &err)
	ew, err = BuildWrapper(samples, opt.withCancel(tok))
	if err != nil {
		return nil, err
	}
	// Strip the per-call token: the wrapper outlives this call and later
	// plain Extracts must not observe a dead context.
	ew.opt = opt
	return ew, nil
}

// ExtractCtx is Extract honouring ctx; see BuildWrapperCtx for the
// cancellation contract.
func (ew *EngineWrapper) ExtractCtx(ctx context.Context, html string, query []string) ([]*Section, error) {
	sections, lease, err := ew.ExtractLeasedCtx(ctx, html, query)
	lease.Release()
	return sections, err
}

// ExtractLeasedCtx is ExtractLeased honouring ctx.  On cancellation (or
// any panic) every pooled resource acquired for the call is released
// before the function returns, and the returned lease is nil.  On success
// the caller owns the lease exactly as with ExtractLeased.
func (ew *EngineWrapper) ExtractLeasedCtx(ctx context.Context, html string, query []string) ([]*Section, *PageLease, error) {
	if cancel.FromContext(ctx) == nil {
		s, l := ew.ExtractLeased(html, query)
		return s, l, nil
	}
	root := ew.opt.Obs.Start(obs.RootExtract)
	defer root.End()
	return ew.ExtractLeasedObs(ctx, html, query, root)
}

// CountsCtx extracts the page and reports only the section and record
// counts, releasing all pooled memory before returning.  It is the canary
// scorer of the relearn lifecycle: validation needs the shape of a
// wrapper's output on a held-out page, not the content, and must not hold
// leases across many pages.  The cancellation contract is ExtractCtx's.
func (ew *EngineWrapper) CountsCtx(ctx context.Context, html string, query []string) (sections, records int, err error) {
	secs, lease, err := ew.ExtractLeasedCtx(ctx, html, query)
	if err != nil {
		return 0, 0, err
	}
	for _, s := range secs {
		records += len(s.Records)
	}
	lease.Release()
	return len(secs), records, nil
}

// ExtractLeasedObs is ExtractLeasedCtx recording its per-stage spans —
// render, wrapper_build, families, plus the sections/records counters —
// under the caller-supplied root span instead of the wrapper's Tracer.
// Services use it with a fresh obs.NewSpan per request to obtain stage
// timings for that one extraction (a wide-event journal line) without the
// Tracer's accumulate-forever semantics.  root may be nil, which disables
// tracing; ctx may lack a cancel token, which disables cancellation.  The
// cancellation and lease contract is exactly ExtractLeasedCtx's.
func (ew *EngineWrapper) ExtractLeasedObs(ctx context.Context, html string, query []string, root *obs.Span) (sections []*Section, lease *PageLease, err error) {
	tok := cancel.FromContext(ctx)
	// The lease exists before any pooled acquisition so that the deferred
	// release below covers every partial state: arena acquired but render
	// panicked (page still nil — RenderPooledCancel recycles its own
	// scratch on the way out), or both acquired but Apply panicked.
	lease = &PageLease{}
	defer func() {
		if r := recover(); r != nil {
			lease.Release()
			lease = nil
			sections = nil
			if cancel.IsSignal(r) {
				err = canceledErr(ctx)
				return
			}
			panic(r)
		}
	}()
	wopt := ew.opt.Wrapper
	wopt.Cancel = tok
	sections = ew.extractLeasedInto(lease, html, query, tok, root, wopt)
	return sections, lease, nil
}
