package core

import (
	"sync"
	"testing"

	"mse/internal/dom"
	"mse/internal/htmlparse"
	"mse/internal/layout"
)

// TestPageLeaseReleaseIdempotent covers the sequential contract: releasing
// twice (or releasing nil) must be a no-op the second time.
func TestPageLeaseReleaseIdempotent(t *testing.T) {
	if !dom.ArenasEnabled() {
		t.Skip("arenas disabled")
	}
	doc, arena := htmlparse.ParsePooled("<html><body><p>x</p></body></html>")
	page := layout.RenderPooled(doc)
	l := &PageLease{page: page, arena: arena}

	before := dom.ArenaStatsSnapshot().Releases
	l.Release()
	l.Release()
	if got := dom.ArenaStatsSnapshot().Releases - before; got != 1 {
		t.Fatalf("arena releases after double Release = %d, want 1", got)
	}
	if l.Page() != nil {
		t.Fatalf("Page() after Release = %v, want nil", l.Page())
	}
	var nilLease *PageLease
	nilLease.Release() // must not panic
}

// TestPageLeaseConcurrentRelease is the regression test for the
// double-release race: two goroutines calling Release simultaneously could
// both observe non-nil fields and return the same arena to the pool twice,
// corrupting it for the two future requests that would each be handed the
// same slabs.  The fix gates Release behind an atomic CAS; exactly one
// caller may win.  Run with -race to catch the field races as well.
func TestPageLeaseConcurrentRelease(t *testing.T) {
	if !dom.ArenasEnabled() {
		t.Skip("arenas disabled")
	}
	const goroutines = 8
	for iter := 0; iter < 300; iter++ {
		doc, arena := htmlparse.ParsePooled("<html><body><table><tr><td>r</td></tr></table></body></html>")
		page := layout.RenderPooled(doc)
		l := &PageLease{page: page, arena: arena}

		arenaBefore := dom.ArenaStatsSnapshot().Releases
		scratchBefore := layout.ScratchStatsSnapshot().Releases

		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				l.Release()
			}()
		}
		close(start)
		wg.Wait()

		if got := dom.ArenaStatsSnapshot().Releases - arenaBefore; got != 1 {
			t.Fatalf("iter %d: arena released %d times, want exactly 1", iter, got)
		}
		if got := layout.ScratchStatsSnapshot().Releases - scratchBefore; got != 1 {
			t.Fatalf("iter %d: render scratch released %d times, want exactly 1", iter, got)
		}
	}
}
