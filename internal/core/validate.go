package core

import (
	"fmt"
	"strings"

	"mse/internal/layout"

	"mse/internal/htmlparse"
)

// WrapperHealth describes how one section wrapper behaved over a set of
// verification pages.
type WrapperHealth struct {
	// Order identifies the section wrapper (its schema position).
	Order int
	// Fired counts the pages on which the wrapper extracted a section.
	Fired int
	// Records is the total number of records it extracted.
	Records int
	// EmptySections counts extractions that produced no records — a
	// strong drift signal.
	EmptySections int
}

// ValidationReport is the outcome of EngineWrapper.Validate: a per-wrapper
// health summary over fresh result pages.  Search engines change their
// templates over time; the paper motivates wrappers for the "automatic
// construction and maintenance of metasearch engines", and this report is
// the maintenance half — it tells an operator when a wrapper needs to be
// retrained.
type ValidationReport struct {
	Pages    int
	Wrappers []WrapperHealth
	// FamilySections is the number of sections the families extracted in
	// total (families have no fixed per-page expectation).
	FamilySections int
}

// Healthy reports whether every section wrapper fired on at least the
// given fraction of pages (sections that are sometimes absent are normal;
// a wrapper that never fires is stale).
func (r *ValidationReport) Healthy(minFireRate float64) bool {
	for _, w := range r.Wrappers {
		if float64(w.Fired) < minFireRate*float64(r.Pages) {
			return false
		}
		if w.Fired > 0 && w.EmptySections == w.Fired {
			return false // fires but extracts nothing: template drifted
		}
	}
	return true
}

// String renders a human-readable summary.
func (r *ValidationReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "validated over %d pages; %d section wrappers, %d family sections\n",
		r.Pages, len(r.Wrappers), r.FamilySections)
	for _, w := range r.Wrappers {
		fmt.Fprintf(&sb, "  wrapper %d: fired %d/%d, %d records, %d empty\n",
			w.Order, w.Fired, r.Pages, w.Records, w.EmptySections)
	}
	return sb.String()
}

// Validate applies the wrapper to fresh result pages and reports each
// section wrapper's health.  It never modifies the wrapper.
func (ew *EngineWrapper) Validate(pages []*SamplePage) *ValidationReport {
	report := &ValidationReport{Pages: len(pages)}
	health := map[int]*WrapperHealth{}
	for _, w := range ew.Wrappers {
		health[w.Order] = &WrapperHealth{Order: w.Order}
	}
	for _, sp := range pages {
		page := layout.Render(htmlparse.Parse(sp.HTML))
		for _, s := range ew.ExtractFromPage(page, sp.Query) {
			if s.FromFamily {
				report.FamilySections++
				continue
			}
			h, ok := health[s.Order]
			if !ok {
				h = &WrapperHealth{Order: s.Order}
				health[s.Order] = h
			}
			h.Fired++
			h.Records += len(s.Records)
			if len(s.Records) == 0 {
				h.EmptySections++
			}
		}
	}
	for _, w := range ew.Wrappers {
		report.Wrappers = append(report.Wrappers, *health[w.Order])
	}
	return report
}
