//go:build race

package core

// raceEnabled reports whether the race detector is compiled in; timing
// assertions scale their budgets by its (roughly order-of-magnitude)
// slowdown.
const raceEnabled = true
