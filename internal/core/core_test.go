package core

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"mse/internal/synth"
)

var markerRe = regexp.MustCompile(`qj[a-mz]+`)

func samplesFor(e *synth.Engine, from, to int) ([]*SamplePage, []*synth.GenPage) {
	var samples []*SamplePage
	var gps []*synth.GenPage
	for q := from; q < to; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
		gps = append(gps, gp)
	}
	return samples, gps
}

func TestBuildWrapperNeedsTwoPages(t *testing.T) {
	if _, err := BuildWrapper(nil, DefaultOptions()); err != ErrNoSamplePages {
		t.Fatalf("err = %v, want ErrNoSamplePages", err)
	}
	e := synth.NewEngine(1, 0, false)
	gp := e.Page(0)
	_, err := BuildWrapper([]*SamplePage{{HTML: gp.HTML, Query: gp.Query}}, DefaultOptions())
	if err != ErrNoSamplePages {
		t.Fatalf("err = %v, want ErrNoSamplePages", err)
	}
}

func TestPipelineSingleSectionEngine(t *testing.T) {
	e := synth.NewEngine(2006, 50, false) // single-section engine
	samples, _ := samplesFor(e, 0, 5)
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(ew.Wrappers)+len(ew.Families) == 0 {
		t.Fatalf("no wrappers built")
	}
	// Apply to an unseen test page.
	gp := e.Page(7)
	secs := ew.Extract(gp.HTML, gp.Query)
	if len(secs) == 0 {
		t.Fatalf("no sections extracted from test page")
	}
	// Every ground-truth record should be found in some extracted record.
	found, total := 0, 0
	for _, gts := range gp.Truth.Sections {
		for _, gtr := range gts.Records {
			total++
			for _, s := range secs {
				for _, r := range s.Records {
					if strings.Contains(strings.Join(r.Lines, "\n"), gtr.Marker) {
						found++
						goto next
					}
				}
			}
		next:
		}
	}
	if total == 0 {
		t.Skip("test page had no records")
	}
	if found < total {
		for _, s := range secs {
			t.Logf("section %q [%d,%d) with %d records", s.Heading, s.Start, s.End, len(s.Records))
		}
		t.Fatalf("found %d/%d ground-truth records", found, total)
	}
}

func TestPipelineMultiSectionEngine(t *testing.T) {
	e := synth.NewEngine(2006, 3, true) // multi-section engine
	samples, _ := samplesFor(e, 0, 5)
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gp := e.Page(8)
	secs := ew.Extract(gp.HTML, gp.Query)
	if len(gp.Truth.Sections) > 1 && len(secs) < 2 {
		for _, s := range secs {
			t.Logf("section %q [%d,%d)", s.Heading, s.Start, s.End)
		}
		t.Fatalf("extracted %d sections, ground truth has %d",
			len(secs), len(gp.Truth.Sections))
	}
	// Section-record relationship: records from different GT sections must
	// not share an extracted section.
	for _, s := range secs {
		owners := map[int]bool{}
		for _, r := range s.Records {
			for _, m := range markerRe.FindAllString(strings.Join(r.Lines, " "), -1) {
				for gi, gts := range gp.Truth.Sections {
					for _, gtr := range gts.Records {
						if gtr.Marker == m {
							owners[gi] = true
						}
					}
				}
			}
		}
		if len(owners) > 1 {
			t.Fatalf("extracted section %q mixes records of %d ground-truth sections",
				s.Heading, len(owners))
		}
	}
}

func TestPipelineRecallOverTestbedSample(t *testing.T) {
	// Coarse end-to-end health check over a slice of the test bed: at
	// least 80% of ground-truth records on unseen pages must be recovered
	// inside extracted sections.
	engines := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 10, MultiSection: 4, Queries: 8})
	var found, total int
	for _, e := range engines {
		samples, _ := samplesFor(e, 0, 5)
		ew, err := BuildWrapper(samples, DefaultOptions())
		if err != nil {
			t.Fatalf("engine %d: %v", e.ID, err)
		}
		for q := 5; q < 8; q++ {
			gp := e.Page(q)
			secs := ew.Extract(gp.HTML, gp.Query)
			joined := ""
			for _, s := range secs {
				for _, r := range s.Records {
					joined += strings.Join(r.Lines, "\n") + "\n"
				}
			}
			for _, gts := range gp.Truth.Sections {
				for _, gtr := range gts.Records {
					total++
					if strings.Contains(joined, gtr.Marker) {
						found++
					}
				}
			}
		}
	}
	if total == 0 {
		t.Fatalf("no ground truth records")
	}
	recall := float64(found) / float64(total)
	t.Logf("record coverage on unseen pages: %d/%d = %.3f", found, total, recall)
	if recall < 0.80 {
		t.Fatalf("record coverage %.3f below 0.80", recall)
	}
}

func TestEngineWrapperJSONRoundTrip(t *testing.T) {
	e := synth.NewEngine(2006, 3, true)
	samples, _ := samplesFor(e, 0, 5)
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(ew)
	if err != nil {
		t.Fatal(err)
	}
	var restored EngineWrapper
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	restored.SetOptions(DefaultOptions())
	if len(restored.Wrappers) != len(ew.Wrappers) || len(restored.Families) != len(ew.Families) {
		t.Fatalf("round trip changed wrapper counts")
	}
	// Both must extract the same sections from the same page.
	gp := e.Page(6)
	a := ew.Extract(gp.HTML, gp.Query)
	b := restored.Extract(gp.HTML, gp.Query)
	if len(a) != len(b) {
		t.Fatalf("extraction differs after round trip: %d vs %d sections", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].End != b[i].End ||
			len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("section %d differs after round trip", i)
		}
	}
}
