package core

// Reproduction of Figure 1 of the paper: the healthcentral.com result page
// with four dynamic sections (Encyclopedia, Dr. Dean Edell, News, Peoples
// Pharmacy), a semi-dynamic match-count line, semi-dynamic "Click Here for
// More" markers, and records whose titles embed dates.  The test builds
// result pages for several queries of this fictional engine and verifies
// that MSE extracts all sections with the right records — including the
// single-record section, which the paper stresses prior work cannot
// handle.

import (
	"fmt"
	"strings"
	"testing"
)

// healthPage fabricates one result page of the Figure-1 engine.  sections
// maps section name -> record titles; order fixes the section order.
func healthPage(matches int, query string, order []string, sections map[string][]string) string {
	var sb strings.Builder
	sb.WriteString(`<html><head><title>HealthCentral search</title></head><body>`)
	fmt.Fprintf(&sb, `<div>Your search returned %d matches.</div>`, matches)
	for _, name := range order {
		titles, ok := sections[name]
		if !ok || len(titles) == 0 {
			continue
		}
		fmt.Fprintf(&sb, `<div><b><font size="4" color="#336699">%s</font></b></div>`, name)
		sb.WriteString(`<table>`)
		for i, title := range titles {
			fmt.Fprintf(&sb,
				`<tr><td>%d. <a href="/item/%s/%d">%s --%s-- (4/10/2002 1:07:00 PM)</a><br>%s</td></tr>`,
				i+1, name, i, title, name, title)
		}
		sb.WriteString(`</table>`)
		if len(titles) >= 5 {
			sb.WriteString(`<div><a href="/more">Click Here for More ...</a></div>`)
		}
	}
	sb.WriteString(`</body></html>`)
	return sb.String()
}

var figure1Order = []string{"Encyclopedia", "Dr. Dean Edell", "News", "Peoples Pharmacy"}

func TestFigure1Extraction(t *testing.T) {
	// Five sample pages for different queries; section presence and record
	// counts vary with the query, as on a real engine.
	samples := []*SamplePage{
		{HTML: healthPage(578, "knee", figure1Order, map[string][]string{
			"Encyclopedia":     {"Knee Injury", "Ultrasound in Obstetrics", "Lupus and Pregnancy", "Colic", "Lymphoma"},
			"Dr. Dean Edell":   {"We Are Still Too Fat, Again"},
			"News":             {"AMA Guides Doctors on Older Drivers", "Mental Illness Strikes Babies, Too", "Eating Pyramid Style", "Guided Lasers Help Treat Uterine Fibroids", "Panel: Cut Salt"},
			"Peoples Pharmacy": {"Antidepressant Can Raise Cholesterol", "Another Fish Oil Tale"},
		}), Query: []string{"knee"}},
		{HTML: healthPage(91, "colic", figure1Order, map[string][]string{
			"Encyclopedia":     {"Colic Basics", "Infant Care", "Sleep Patterns"},
			"News":             {"New Colic Study Published", "Pediatric Guidelines Updated"},
			"Peoples Pharmacy": {"Herbal Remedies Reviewed"},
		}), Query: []string{"colic"}},
		{HTML: healthPage(233, "lupus", figure1Order, map[string][]string{
			"Encyclopedia":   {"Lupus Overview", "Autoimmune Disorders", "Joint Pain", "Rashes"},
			"Dr. Dean Edell": {"Lupus Questions Answered", "More On Autoimmunity"},
			"News":           {"Lupus Drug Trial Results"},
		}), Query: []string{"lupus"}},
		{HTML: healthPage(47, "salt", figure1Order, map[string][]string{
			"Encyclopedia":     {"Sodium and Health", "Blood Pressure"},
			"News":             {"Cut Salt Says Panel", "Thirst As A Guide", "Hydration Myths", "Salt Substitutes Tested", "Kidney Function Basics"},
			"Peoples Pharmacy": {"Salt Tablets Reviewed", "Electrolyte Drinks Compared"},
		}), Query: []string{"salt"}},
		{HTML: healthPage(310, "fibroid", figure1Order, map[string][]string{
			"Encyclopedia":   {"Uterine Fibroids", "MRI Imaging", "Laser Treatment"},
			"Dr. Dean Edell": {"Fibroid Questions"},
			"News":           {"Guided Lasers In Practice", "Imaging Advances"},
		}), Query: []string{"fibroid"}},
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	// Extract from the Figure-1 page itself (the first sample) and from an
	// unseen page.
	t.Run("figure1 page", func(t *testing.T) {
		secs := ew.Extract(samples[0].HTML, samples[0].Query)
		want := map[string]int{
			"Encyclopedia": 5, "Dr. Dean Edell": 1, "News": 5, "Peoples Pharmacy": 2,
		}
		checkSections(t, secs, want)
	})

	t.Run("unseen page", func(t *testing.T) {
		unseen := healthPage(120, "ultrasound", figure1Order, map[string][]string{
			"Encyclopedia":     {"Ultrasound in Obstetrics", "Prenatal Imaging", "Doppler Basics", "Safety Guidelines"},
			"Dr. Dean Edell":   {"Ultrasound Questions"},
			"News":             {"Imaging Study Released", "New Guidelines Issued"},
			"Peoples Pharmacy": {"Gel Products Compared"},
		})
		secs := ew.Extract(unseen, []string{"ultrasound"})
		want := map[string]int{
			"Encyclopedia": 4, "Dr. Dean Edell": 1, "News": 2, "Peoples Pharmacy": 1,
		}
		checkSections(t, secs, want)
	})
}

func checkSections(t *testing.T, secs []*Section, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, s := range secs {
		got[s.Heading] = len(s.Records)
	}
	for name, n := range want {
		if got[name] != n {
			for _, s := range secs {
				t.Logf("extracted %q [%d,%d) records=%d", s.Heading, s.Start, s.End, len(s.Records))
			}
			t.Fatalf("section %q: %d records, want %d", name, got[name], n)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("extracted %d sections, want %d (%v)", len(got), len(want), got)
	}
}

func TestFigure1SectionRecordRelationship(t *testing.T) {
	// The records extracted under "News" must all be News records: the
	// paper's requirement that extracted SRRs stay grouped by section.
	samples := []*SamplePage{}
	queries := []string{"knee", "colic", "lupus", "salt", "fibroid"}
	for i, q := range queries {
		sections := map[string][]string{
			"Encyclopedia": {"E one " + q, "E two " + q, "E three " + q},
			"News":         {"N one " + q, "N two " + q},
		}
		if i%2 == 0 {
			sections["Peoples Pharmacy"] = []string{"P one " + q}
		}
		samples = append(samples, &SamplePage{
			HTML:  healthPage(100+i, q, figure1Order, sections),
			Query: []string{q},
		})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	secs := ew.Extract(samples[0].HTML, samples[0].Query)
	for _, s := range secs {
		var wantTag string
		switch s.Heading {
		case "Encyclopedia":
			wantTag = "E "
		case "News":
			wantTag = "N "
		case "Peoples Pharmacy":
			wantTag = "P "
		default:
			continue
		}
		for _, r := range s.Records {
			if len(r.Lines) == 0 || !strings.Contains(r.Lines[0], wantTag) {
				t.Fatalf("section %q contains foreign record %q", s.Heading, r.Lines)
			}
		}
	}
}
