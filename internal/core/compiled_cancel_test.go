package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"mse/internal/prune"
	"mse/internal/synth"
	"mse/internal/wrapper"
)

// TestExtractLeasedCtxPreCanceledBothPaths is the cancellation-equivalence
// check for the compiled fast path: an already-expired context must make
// ExtractLeasedCtx return ErrCanceled with no partial output on both the
// compiled and the interpreted path, and every pooled resource acquired
// before the abort — parse arena, render scratch, prune matcher — must be
// back in its pool afterwards.
func TestExtractLeasedCtxPreCanceledBothPaths(t *testing.T) {
	e := synth.NewEngine(30, 2, true)
	var samples []*SamplePage
	for q := 0; q < 3; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	was := wrapper.CompiledEnabled()
	defer wrapper.SetCompiledEnabled(was)

	gp := e.Page(7)
	for _, compiled := range []bool{true, false} {
		wrapper.SetCompiledEnabled(compiled)
		pools := poolCounters()
		prBefore := prune.StatsSnapshot()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		sections, lease, err := ew.ExtractLeasedCtx(ctx, gp.HTML, gp.Query)
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("compiled=%v: err = %v, want ErrCanceled", compiled, err)
		}
		if sections != nil || lease != nil {
			t.Fatalf("compiled=%v: got sections=%v lease=%v, want nil/nil", compiled, sections, lease)
		}
		assertPoolsBalanced(t, pools)
		prAfter := prune.StatsSnapshot()
		if acq, rel := prAfter.Acquires-prBefore.Acquires, prAfter.Releases-prBefore.Releases; acq != rel {
			t.Fatalf("compiled=%v: prune matcher leak: %d acquired, %d released", compiled, acq, rel)
		}
	}
}

// TestExtractCompiledMatchesInterpretedWithCancelToken runs a live (never
// canceled) token through both paths and compares the extractions: the
// cancellation plumbing must not perturb output.
func TestExtractCompiledMatchesInterpretedWithCancelToken(t *testing.T) {
	e := synth.NewEngine(30, 4, true)
	var samples []*SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := BuildWrapper(samples, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	was := wrapper.CompiledEnabled()
	defer wrapper.SetCompiledEnabled(was)

	gp := e.Page(8)
	run := func(compiled bool) []byte {
		wrapper.SetCompiledEnabled(compiled)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sections, lease, err := ew.ExtractLeasedCtx(ctx, gp.HTML, gp.Query)
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		defer lease.Release()
		// Sections are plain strings/ints and outlive the lease by
		// contract, but marshal before release anyway to mirror callers.
		sj, err := json.Marshal(sections)
		if err != nil {
			t.Fatalf("compiled=%v: marshal: %v", compiled, err)
		}
		return sj
	}
	ref := run(false)
	got := run(true)
	if !bytes.Equal(got, ref) {
		t.Fatalf("extractions differ under a live cancel token\nref: %s\ngot: %s", ref, got)
	}
}
