// Package visual implements the content-feature measures of Section 4 of
// the MSE paper: line distances (Formula 3), line-text-attribute distance
// (Formula 2), record distance (Formula 4), inter-record distance
// (Formula 5), record diversity (Formula 6) and section cohesion
// (Formula 7), together with the block-level distances (type, shape,
// position, text attribute, tag forest) the record distance combines.
package visual

import (
	"math"

	"mse/internal/dom"
	"mse/internal/editdist"
	"mse/internal/layout"
)

// PositionK is the scaling constant K of the position distance
// Dpl = K·log(1+|pc1−pc2|); the paper sets it to 0.127, which keeps Dpl in
// [0, 1] for typical page widths.
const PositionK = 0.127

// LineWeights are the u1, u2, u3 of Formula 3 (type, position, text
// attribute).  They must sum to 1.
type LineWeights struct {
	Type, Position, Attr float64
}

// DefaultLineWeights weights the three line features equally.
func DefaultLineWeights() LineWeights {
	return LineWeights{Type: 1.0 / 3, Position: 1.0 / 3, Attr: 1.0 / 3}
}

// RecordWeights are the v1..v5 of Formula 4 (tag forest, block type, block
// shape, block position, block text attribute).  They must sum to 1.
type RecordWeights struct {
	Forest, Type, Shape, Position, Attr float64
}

// DefaultRecordWeights weights the five record features equally.
func DefaultRecordWeights() RecordWeights {
	return RecordWeights{Forest: 0.2, Type: 0.2, Shape: 0.2, Position: 0.2, Attr: 0.2}
}

// TypeDistance (Dtl) is the distance between two content-line type codes,
// in [0, 1].  Identical types have distance 0; types within the same broad
// family (link vs link-text, image vs image-text) are closer than
// unrelated types.
func TypeDistance(a, b layout.LineType) float64 {
	if a == b {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == layout.LinkLine && b == layout.LinkTextLine:
		return 0.4
	case a == layout.ImageLine && b == layout.ImageTextLine:
		return 0.4
	case a == layout.TextLine && b == layout.LinkTextLine:
		return 0.6
	case a == layout.TextLine && b == layout.ImageTextLine:
		return 0.6
	}
	return 1
}

// PositionDistance (Dpl) is K·log(1+|pc1−pc2|), capped at 1.
func PositionDistance(x1, x2 int) float64 {
	d := x1 - x2
	if d < 0 {
		d = -d
	}
	v := PositionK * math.Log(1+float64(d))
	if v > 1 {
		return 1
	}
	return v
}

// LineAttrDistance implements Formula 2: the distance between the text
// attribute sets of two content lines, 1 − |la1 ∩ la2| / max(|la1|,|la2|).
// Two lines with no attributes at all (e.g. two rule lines) have distance
// 0.
func LineAttrDistance(la1, la2 []layout.TextAttr) float64 {
	maxLen := len(la1)
	if len(la2) > maxLen {
		maxLen = len(la2)
	}
	if maxLen == 0 {
		return 0
	}
	inter := 0
	for _, a := range la1 {
		for _, b := range la2 {
			if a == b {
				inter++
				break
			}
		}
	}
	return 1 - float64(inter)/float64(maxLen)
}

// LineDistance implements Formula 3: the weighted combination of type,
// position and text-attribute distances between two content lines.
func LineDistance(a, b *layout.Line, w LineWeights) float64 {
	return w.Type*TypeDistance(a.Type, b.Type) +
		w.Position*PositionDistance(a.X, b.X) +
		w.Attr*LineAttrDistance(a.Attrs, b.Attrs)
}

// Block is a consecutive run of content lines [Start, End) on a page.
// Records, candidate records and boundary regions are all blocks.
type Block struct {
	Page  *layout.Page
	Start int
	End   int
}

// Lines returns the content lines of the block.
func (b Block) Lines() []layout.Line {
	return b.Page.Lines[b.Start:b.End]
}

// Len returns the number of content lines in the block.
func (b Block) Len() int { return b.End - b.Start }

// Text concatenates the block's line texts with newlines.
func (b Block) Text() string {
	out := ""
	for i, l := range b.Lines() {
		if i > 0 {
			out += "\n"
		}
		out += l.Text
	}
	return out
}

// Forest returns the minimal tag forest underneath the block.
func (b Block) Forest() []*dom.Node {
	return b.Page.Forest(b.Start, b.End)
}

// MinX returns the block position: the left-most x coordinate among the
// block's lines (0 for an empty block).
func (b Block) MinX() int {
	min := math.MaxInt
	for _, l := range b.Lines() {
		if l.X < min {
			min = l.X
		}
	}
	if min == math.MaxInt {
		return 0
	}
	return min
}

// Shape returns the block shape: the left contour as the sequence of
// position codes of its lines, relative to the block's own left edge.
func (b Block) Shape() []int {
	minX := b.MinX()
	out := make([]int, 0, b.Len())
	for _, l := range b.Lines() {
		out = append(out, l.X-minX)
	}
	return out
}

// TypeCode returns the block type code: the sequence of line type codes.
func (b Block) TypeCode() []layout.LineType {
	out := make([]layout.LineType, 0, b.Len())
	for _, l := range b.Lines() {
		out = append(out, l.Type)
	}
	return out
}

// BlockTypeDistance (Dbt) is the normalized edit distance between the two
// blocks' type-code sequences with TypeDistance as substitution cost.
func BlockTypeDistance(a, b Block) float64 {
	return typeCodeDistance(a.TypeCode(), b.TypeCode())
}

// BlockShapeDistance (Dbs) is the normalized edit distance between the two
// blocks' shapes, with substitution cost PositionDistance of the relative
// offsets.
func BlockShapeDistance(a, b Block) float64 {
	return shapeDistance(a.Shape(), b.Shape())
}

// BlockPositionDistance (Dbp) is the position distance between the two
// blocks' left edges.
func BlockPositionDistance(a, b Block) float64 {
	return PositionDistance(a.MinX(), b.MinX())
}

// BlockAttrDistance (Dbta) is the string edit distance between the two
// blocks' per-line attribute sets, with LineAttrDistance as substitution
// cost, normalized by the longer block.
func BlockAttrDistance(a, b Block) float64 {
	return attrSeqDistance(a.Lines(), b.Lines())
}

// ForestDistance (Dtf) is the tag-forest distance between the blocks'
// minimal tag forests.
func ForestDistance(a, b Block) float64 {
	return editdist.ForestDist(a.Forest(), b.Forest())
}

// blockFeat is the per-block feature bundle the record distance consumes.
// The pairwise aggregates below (inter-record distance, average record
// distance) derive each block's features once instead of once per
// comparison — TypeCode, Shape and Forest all allocate, and the aggregates
// are quadratic in the number of records.
type blockFeat struct {
	typeCode []layout.LineType
	shape    []int
	minX     int
	lines    []layout.Line
	forest   []*dom.Node
}

func featuresOf(b Block) blockFeat {
	return blockFeat{
		typeCode: b.TypeCode(),
		shape:    b.Shape(),
		minX:     b.MinX(),
		lines:    b.Lines(),
		forest:   b.Forest(),
	}
}

// recordDistFeat is RecordDistance over precomputed features, combining
// the five components in the same order (identical float arithmetic).
func recordDistFeat(a, b *blockFeat, w RecordWeights) float64 {
	return w.Forest*editdist.ForestDist(a.forest, b.forest) +
		w.Type*typeCodeDistance(a.typeCode, b.typeCode) +
		w.Shape*shapeDistance(a.shape, b.shape) +
		w.Position*PositionDistance(a.minX, b.minX) +
		w.Attr*attrSeqDistance(a.lines, b.lines)
}

func typeCodeDistance(ta, tb []layout.LineType) float64 {
	maxLen := len(ta)
	if len(tb) > maxLen {
		maxLen = len(tb)
	}
	if maxLen == 0 {
		return 0
	}
	d := editdist.Strings(len(ta), len(tb), editdist.Costs{
		Sub: func(i, j int) float64 { return TypeDistance(ta[i], tb[j]) },
		Del: func(int) float64 { return 1 },
		Ins: func(int) float64 { return 1 },
	})
	return d / float64(maxLen)
}

func shapeDistance(sa, sb []int) float64 {
	maxLen := len(sa)
	if len(sb) > maxLen {
		maxLen = len(sb)
	}
	if maxLen == 0 {
		return 0
	}
	d := editdist.Strings(len(sa), len(sb), editdist.Costs{
		Sub: func(i, j int) float64 { return PositionDistance(sa[i], sb[j]) },
		Del: func(int) float64 { return 1 },
		Ins: func(int) float64 { return 1 },
	})
	return d / float64(maxLen)
}

func attrSeqDistance(la, lb []layout.Line) float64 {
	maxLen := len(la)
	if len(lb) > maxLen {
		maxLen = len(lb)
	}
	if maxLen == 0 {
		return 0
	}
	d := editdist.Strings(len(la), len(lb), editdist.Costs{
		Sub: func(i, j int) float64 { return LineAttrDistance(la[i].Attrs, lb[j].Attrs) },
		Del: func(int) float64 { return 1 },
		Ins: func(int) float64 { return 1 },
	})
	return d / float64(maxLen)
}

// RecordDistance implements Formula 4: the weighted combination of tag
// forest, block type, block shape, block position and block text-attribute
// distances between two records.
func RecordDistance(a, b Block, w RecordWeights) float64 {
	fa, fb := featuresOf(a), featuresOf(b)
	return recordDistFeat(&fa, &fb, w)
}

// VisualRecordDistance is RecordDistance without the tag-forest component,
// used by MRE when grouping candidate blocks purely by appearance (the
// forests are not yet trusted at that stage).  The remaining weights are
// renormalized.
func VisualRecordDistance(a, b Block, w RecordWeights) float64 {
	rest := w.Type + w.Shape + w.Position + w.Attr
	if rest == 0 {
		return 0
	}
	return (w.Type*BlockTypeDistance(a, b) +
		w.Shape*BlockShapeDistance(a, b) +
		w.Position*BlockPositionDistance(a, b) +
		w.Attr*BlockAttrDistance(a, b)) / rest
}

// InterRecordDistance implements Formula 5: the average pairwise record
// distance among the records of a section.  Sections with fewer than two
// records have inter-record distance 0.
func InterRecordDistance(records []Block, w RecordWeights) float64 {
	n := len(records)
	if n < 2 {
		return 0
	}
	feats := make([]blockFeat, n)
	for i, r := range records {
		feats[i] = featuresOf(r)
	}
	sum := 0.0
	pairs := 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			sum += recordDistFeat(&feats[i], &feats[j], w)
			pairs++
		}
	}
	return sum / float64(pairs)
}

// AvgRecordDistance is Davgrs of Section 5.3: the average record distance
// between block r and every record in records.
func AvgRecordDistance(r Block, records []Block, w RecordWeights) float64 {
	if len(records) == 0 {
		return 0
	}
	rf := featuresOf(r)
	sum := 0.0
	for _, o := range records {
		of := featuresOf(o)
		sum += recordDistFeat(&rf, &of, w)
	}
	return sum / float64(len(records))
}

// RecordDiversity implements Formula 6: the average pairwise line distance
// among the content lines of a record.  Single-line records have
// diversity 0.
func RecordDiversity(r Block, w LineWeights) float64 {
	lines := r.Lines()
	m := len(lines)
	if m < 2 {
		return 0
	}
	sum := 0.0
	pairs := 0
	for i := 0; i < m-1; i++ {
		for j := i + 1; j < m; j++ {
			sum += LineDistance(&lines[i], &lines[j], w)
			pairs++
		}
	}
	return sum / float64(pairs)
}

// SectionCohesion implements Formula 7: the average record diversity of a
// partition's records divided by (1 + inter-record distance).  Higher
// cohesion indicates a more plausible partition of a section's lines into
// records: lines within a record should differ, records should resemble
// each other.
func SectionCohesion(records []Block, lw LineWeights, rw RecordWeights) float64 {
	n := len(records)
	if n == 0 {
		return 0
	}
	sumDiv := 0.0
	for _, r := range records {
		sumDiv += RecordDiversity(r, lw)
	}
	return (sumDiv / float64(n)) / (1 + InterRecordDistance(records, rw))
}
