package visual

import (
	"math"
	"testing"
	"testing/quick"

	"mse/internal/htmlparse"
	"mse/internal/layout"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

// recordPage renders a three-record section where each record is
// "n." / link / snippet spread over two lines (number cell + link cell,
// then snippet).
func recordPage() *layout.Page {
	return render(`<body><table>
	<tr><td><a href="/r1">Title One</a></td></tr>
	<tr><td>snippet one text</td></tr>
	<tr><td><a href="/r2">Title Two</a></td></tr>
	<tr><td>snippet two text</td></tr>
	<tr><td><a href="/r3">Title Three</a></td></tr>
	<tr><td>snippet three text</td></tr>
	</table></body>`)
}

func TestTypeDistanceProperties(t *testing.T) {
	types := []layout.LineType{layout.TextLine, layout.LinkLine,
		layout.LinkTextLine, layout.ImageLine, layout.ImageTextLine,
		layout.FormLine, layout.RuleLine, layout.BlankLine}
	for _, a := range types {
		if TypeDistance(a, a) != 0 {
			t.Errorf("TypeDistance(%v,%v) != 0", a, a)
		}
		for _, b := range types {
			d1, d2 := TypeDistance(a, b), TypeDistance(b, a)
			if d1 != d2 {
				t.Errorf("asymmetric: %v,%v", a, b)
			}
			if d1 < 0 || d1 > 1 {
				t.Errorf("out of range: %v,%v = %g", a, b, d1)
			}
		}
	}
	if TypeDistance(layout.LinkLine, layout.LinkTextLine) >= TypeDistance(layout.LinkLine, layout.RuleLine) {
		t.Errorf("related types should be closer than unrelated")
	}
}

func TestPositionDistance(t *testing.T) {
	if PositionDistance(10, 10) != 0 {
		t.Fatalf("same position should be 0")
	}
	d1 := PositionDistance(0, 10)
	d2 := PositionDistance(0, 100)
	if !(0 < d1 && d1 < d2 && d2 <= 1) {
		t.Fatalf("monotonicity violated: %g %g", d1, d2)
	}
	// K=0.127 keeps distances within [0,1] for page-scale separations.
	if PositionDistance(0, 800) > 1 {
		t.Fatalf("page-width distance should cap at 1")
	}
}

func TestLineAttrDistanceFormula2(t *testing.T) {
	a1 := layout.TextAttr{Font: "times", Size: 16, Color: "#000000"}
	a2 := layout.TextAttr{Font: "times", Size: 16, Style: layout.Bold, Color: "#000000"}
	a3 := layout.TextAttr{Font: "arial", Size: 12, Color: "#ff0000"}

	if got := LineAttrDistance([]layout.TextAttr{a1}, []layout.TextAttr{a1}); got != 0 {
		t.Fatalf("identical sets: %g", got)
	}
	if got := LineAttrDistance([]layout.TextAttr{a1}, []layout.TextAttr{a3}); got != 1 {
		t.Fatalf("disjoint sets: %g", got)
	}
	// {a1,a2} vs {a1}: intersection 1, max 2 -> 0.5.
	if got := LineAttrDistance([]layout.TextAttr{a1, a2}, []layout.TextAttr{a1}); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("partial overlap: %g, want 0.5", got)
	}
	if got := LineAttrDistance(nil, nil); got != 0 {
		t.Fatalf("empty sets: %g", got)
	}
}

func TestLineDistanceWeights(t *testing.T) {
	p := render(`<body><p>plain</p><p><a href=u>link</a></p></body>`)
	a, b := &p.Lines[0], &p.Lines[1]
	onlyType := LineDistance(a, b, LineWeights{Type: 1})
	if onlyType != TypeDistance(a.Type, b.Type) {
		t.Fatalf("type-only weight mismatch")
	}
	full := LineDistance(a, b, DefaultLineWeights())
	if full <= 0 || full > 1 {
		t.Fatalf("distance out of range: %g", full)
	}
	if LineDistance(a, a, DefaultLineWeights()) != 0 {
		t.Fatalf("self distance nonzero")
	}
}

func TestBlockBasics(t *testing.T) {
	p := recordPage()
	if len(p.Lines) != 6 {
		t.Fatalf("expected 6 lines, got %d", len(p.Lines))
	}
	b := Block{Page: p, Start: 0, End: 2}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if b.Text() != "Title One\nsnippet one text" {
		t.Fatalf("Text = %q", b.Text())
	}
	if len(b.Shape()) != 2 || b.Shape()[0] != 0 {
		t.Fatalf("Shape = %v", b.Shape())
	}
	if b.MinX() != p.Lines[0].X {
		t.Fatalf("MinX = %d", b.MinX())
	}
	empty := Block{Page: p, Start: 3, End: 3}
	if empty.MinX() != 0 || empty.Len() != 0 {
		t.Fatalf("empty block misbehaves")
	}
}

func TestRecordDistanceSimilarVsDifferent(t *testing.T) {
	p := recordPage()
	r1 := Block{Page: p, Start: 0, End: 2}
	r2 := Block{Page: p, Start: 2, End: 4}
	r3 := Block{Page: p, Start: 4, End: 6}
	w := DefaultRecordWeights()
	d12 := RecordDistance(r1, r2, w)
	if d12 > 0.1 {
		t.Fatalf("similar records too far: %g", d12)
	}
	if got := RecordDistance(r1, r1, w); got != 0 {
		t.Fatalf("self distance = %g", got)
	}
	// A record vs a header-like single line should be far.
	p2 := render(`<body><h2>Header</h2><table>
	<tr><td><a href="/r1">Title One</a></td></tr>
	<tr><td>snippet one</td></tr></table></body>`)
	hdr := Block{Page: p2, Start: 0, End: 1}
	rec := Block{Page: p2, Start: 1, End: 3}
	dh := RecordDistance(hdr, rec, w)
	if dh <= d12 {
		t.Fatalf("header-record distance %g should exceed record-record %g", dh, d12)
	}
	_ = r3
}

func TestRecordDistanceSymmetry(t *testing.T) {
	p := recordPage()
	w := DefaultRecordWeights()
	blocks := []Block{
		{Page: p, Start: 0, End: 2},
		{Page: p, Start: 2, End: 4},
		{Page: p, Start: 4, End: 6},
		{Page: p, Start: 1, End: 5},
	}
	for _, a := range blocks {
		for _, b := range blocks {
			d1 := RecordDistance(a, b, w)
			d2 := RecordDistance(b, a, w)
			if math.Abs(d1-d2) > 1e-12 {
				t.Fatalf("asymmetric record distance: %g vs %g", d1, d2)
			}
			if d1 < 0 || d1 > 1+1e-9 {
				t.Fatalf("record distance out of range: %g", d1)
			}
		}
	}
}

func TestInterRecordDistance(t *testing.T) {
	p := recordPage()
	w := DefaultRecordWeights()
	recs := []Block{
		{Page: p, Start: 0, End: 2},
		{Page: p, Start: 2, End: 4},
		{Page: p, Start: 4, End: 6},
	}
	d := InterRecordDistance(recs, w)
	if d < 0 || d > 0.1 {
		t.Fatalf("Dinr of uniform section = %g", d)
	}
	if got := InterRecordDistance(recs[:1], w); got != 0 {
		t.Fatalf("single-record Dinr = %g", got)
	}
	if got := InterRecordDistance(nil, w); got != 0 {
		t.Fatalf("empty Dinr = %g", got)
	}
}

func TestAvgRecordDistance(t *testing.T) {
	p := recordPage()
	w := DefaultRecordWeights()
	recs := []Block{
		{Page: p, Start: 0, End: 2},
		{Page: p, Start: 2, End: 4},
	}
	r3 := Block{Page: p, Start: 4, End: 6}
	d := AvgRecordDistance(r3, recs, w)
	if d < 0 || d > 0.1 {
		t.Fatalf("Davgrs of matching record = %g", d)
	}
	if got := AvgRecordDistance(r3, nil, w); got != 0 {
		t.Fatalf("Davgrs against empty = %g", got)
	}
}

func TestRecordDiversity(t *testing.T) {
	p := recordPage()
	lw := DefaultLineWeights()
	// Link line + text line differ -> diversity > 0.
	r := Block{Page: p, Start: 0, End: 2}
	if got := RecordDiversity(r, lw); got <= 0 {
		t.Fatalf("two-line record diversity = %g", got)
	}
	single := Block{Page: p, Start: 0, End: 1}
	if got := RecordDiversity(single, lw); got != 0 {
		t.Fatalf("single-line diversity = %g", got)
	}
}

func TestSectionCohesionPrefersCorrectPartition(t *testing.T) {
	p := recordPage()
	lw, rw := DefaultLineWeights(), DefaultRecordWeights()

	correct := []Block{
		{Page: p, Start: 0, End: 2},
		{Page: p, Start: 2, End: 4},
		{Page: p, Start: 4, End: 6},
	}
	perLine := []Block{
		{Page: p, Start: 0, End: 1}, {Page: p, Start: 1, End: 2},
		{Page: p, Start: 2, End: 3}, {Page: p, Start: 3, End: 4},
		{Page: p, Start: 4, End: 5}, {Page: p, Start: 5, End: 6},
	}
	oversized := []Block{
		{Page: p, Start: 0, End: 4},
		{Page: p, Start: 4, End: 6},
	}
	whole := []Block{{Page: p, Start: 0, End: 6}}

	cCorrect := SectionCohesion(correct, lw, rw)
	cPerLine := SectionCohesion(perLine, lw, rw)
	cOversized := SectionCohesion(oversized, lw, rw)
	cWhole := SectionCohesion(whole, lw, rw)

	if cCorrect <= cPerLine {
		t.Fatalf("correct %g should beat per-line %g", cCorrect, cPerLine)
	}
	if cCorrect <= cOversized {
		t.Fatalf("correct %g should beat oversized %g", cCorrect, cOversized)
	}
	if cCorrect <= cWhole {
		t.Fatalf("correct %g should beat whole-as-one %g", cCorrect, cWhole)
	}
	if got := SectionCohesion(nil, lw, rw); got != 0 {
		t.Fatalf("empty cohesion = %g", got)
	}
}

func TestSectionCohesionSingleRecordDS(t *testing.T) {
	// A DS with one genuine record: taking the whole DS as a single record
	// should score at least as high as splitting it per line.
	p := render(`<body><div>
	<a href="/only">Only Result Title</a><br>
	a snippet line describing it<br>
	http://example.com/only
	</div></body>`)
	lw, rw := DefaultLineWeights(), DefaultRecordWeights()
	whole := []Block{{Page: p, Start: 0, End: len(p.Lines)}}
	var perLine []Block
	for i := range p.Lines {
		perLine = append(perLine, Block{Page: p, Start: i, End: i + 1})
	}
	if SectionCohesion(whole, lw, rw) <= SectionCohesion(perLine, lw, rw) {
		t.Fatalf("single-record DS should prefer the whole-record partition")
	}
}

func TestVisualRecordDistanceIgnoresForest(t *testing.T) {
	// Two blocks with identical appearance but different underlying tags.
	p := render(`<body>
	<div><a href="/a">Alpha</a></div>
	<p><a href="/b">Betaa</a></p>
	</body>`)
	a := Block{Page: p, Start: 0, End: 1}
	b := Block{Page: p, Start: 1, End: 2}
	w := DefaultRecordWeights()
	vis := VisualRecordDistance(a, b, w)
	full := RecordDistance(a, b, w)
	if vis >= full {
		t.Fatalf("visual-only distance %g should be below full %g (forest differs)", vis, full)
	}
	if vis > 1e-9 {
		t.Fatalf("visually identical blocks should have ~0 visual distance, got %g", vis)
	}
}

func TestQuickBlockDistancesInRange(t *testing.T) {
	p := recordPage()
	n := len(p.Lines)
	f := func(s1, e1, s2, e2 uint8) bool {
		a := Block{Page: p, Start: int(s1) % n, End: int(s1)%n + 1 + int(e1)%(n-int(s1)%n)}
		b := Block{Page: p, Start: int(s2) % n, End: int(s2)%n + 1 + int(e2)%(n-int(s2)%n)}
		for _, d := range []float64{
			BlockTypeDistance(a, b), BlockShapeDistance(a, b),
			BlockPositionDistance(a, b), BlockAttrDistance(a, b),
			ForestDistance(a, b),
		} {
			if d < -1e-9 || d > 1+1e-9 || math.IsNaN(d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
