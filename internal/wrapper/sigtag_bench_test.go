package wrapper

import (
	"fmt"
	"testing"
)

// The benchmarks below pin the win from the partitionBySep signature
// classification rework: the legacy code re-derived the root tag of every
// stored separator signature for every unknown root (with a hand-rolled
// byte scan), while the current code derives the tag lists at most once
// per call (tagsOf) and scans tags with strings.IndexByte.  The legacy
// implementation is preserved here, in test code only, as the comparison
// baseline.

// legacyIndexByte is the hand-rolled scan sigTag used before it switched
// to strings.IndexByte.
func legacyIndexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func legacySigTag(sig string) string {
	if i := legacyIndexByte(sig, '('); i >= 0 {
		return sig[:i]
	}
	return sig
}

// legacyContainsTag re-parses every stored signature per query, exactly as
// partitionBySep's unknown-signature fallback did before the rework.
func legacyContainsTag(sigs []string, tag string) bool {
	for _, s := range sigs {
		if legacySigTag(s) == tag {
			return true
		}
	}
	return false
}

// benchSeparator builds a separator with realistic signature shapes (tag +
// nested child signature text, as mining.RootSignature emits).
func benchSeparator() Separator {
	var start, interior []string
	for i := 0; i < 6; i++ {
		start = append(start, fmt.Sprintf("tr(td[a,b,],td[span,],td%d[,])", i))
		interior = append(interior, fmt.Sprintf("div(p[,],span%d[,])", i))
	}
	return Separator{StartSigs: start, InteriorSigs: interior}
}

// benchRootSigs are signatures of page roots none of which matches a
// stored signature exactly, forcing the tag-level fallback for each.
func benchRootSigs() []string {
	sigs := make([]string, 0, 48)
	for i := 0; i < 48; i++ {
		sigs = append(sigs, fmt.Sprintf("tr(td[a,],td[font,],x%d[,])", i))
	}
	return sigs
}

func BenchmarkWrapperSigClassifyLegacy(b *testing.B) {
	sep := benchSeparator()
	roots := benchRootSigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		starts := 0
		for _, sig := range roots {
			tag := legacySigTag(sig)
			if legacyContainsTag(sep.StartSigs, tag) && !legacyContainsTag(sep.InteriorSigs, tag) {
				starts++
			}
		}
		if starts != len(roots) {
			b.Fatalf("starts = %d, want %d", starts, len(roots))
		}
	}
}

func BenchmarkWrapperSigClassifyCurrent(b *testing.B) {
	sep := benchSeparator()
	roots := benchRootSigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		starts := 0
		var startTags, interiorTags []string
		for _, sig := range roots {
			if startTags == nil {
				startTags = tagsOf(sep.StartSigs)
				interiorTags = tagsOf(sep.InteriorSigs)
			}
			tag := sigTag(sig)
			if containsString(startTags, tag) && !containsString(interiorTags, tag) {
				starts++
			}
		}
		if starts != len(roots) {
			b.Fatalf("starts = %d, want %d", starts, len(roots))
		}
	}
}
