package wrapper

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"mse/internal/cluster"
	"mse/internal/dom"
	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

// sectionPage builds a page with one heading + n two-line records in a
// table, and returns the page plus the hand-made refined section.
func sectionPage(n int, tag string) (*layout.Page, *sect.Section) {
	var sb strings.Builder
	sb.WriteString(`<body><h1>Site</h1><h3>Results</h3><table>`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<tr><td><a href="/%s%d">Title %s %d</a><br>snippet %s %d</td></tr>`,
			tag, i, tag, i, tag, i)
	}
	sb.WriteString(`</table><div>Copyright notice.</div></body>`)
	p := render(sb.String())
	s := sect.New(p, 2, 2+2*n)
	s.LBM = 1
	for i := 0; i < n; i++ {
		s.Records = append(s.Records, visual.Block{Page: p, Start: 2 + 2*i, End: 4 + 2*i})
	}
	return p, s
}

func buildTestWrapper(t *testing.T) (*SectionWrapper, []*cluster.PageSections) {
	t.Helper()
	var pages []*cluster.PageSections
	grp := &cluster.Group{}
	for i, tag := range []string{"aa", "bb", "cc"} {
		p, s := sectionPage(3+i, tag)
		ps := &cluster.PageSections{Page: p, Query: []string{"q"}, Sections: []*sect.Section{s}}
		pages = append(pages, ps)
		grp.Instances = append(grp.Instances, cluster.NewInstance(i, ps, s))
	}
	return Build(grp, pages, 0, DefaultOptions()), pages
}

func TestBuildWrapperComponents(t *testing.T) {
	w, _ := buildTestWrapper(t)
	if len(w.Pref) == 0 {
		t.Fatalf("pref missing")
	}
	if len(w.Sep.StartSigs) == 0 {
		t.Fatalf("separator start signatures missing")
	}
	if len(w.LBMs) == 0 || w.LBMs[0] != "Results" {
		t.Fatalf("LBMs = %v, want [Results]", w.LBMs)
	}
	if len(w.LBMAttrs) == 0 {
		t.Fatalf("LBM attrs missing (needed for families)")
	}
}

func TestApplyToNewPage(t *testing.T) {
	w, _ := buildTestWrapper(t)
	p, _ := sectionPage(5, "zz") // unseen record count
	got := w.Apply(p, []string{"q"}, DefaultOptions())
	if got == nil {
		t.Fatalf("wrapper did not fire")
	}
	if got.Heading != "Results" {
		t.Fatalf("heading = %q", got.Heading)
	}
	if len(got.Records) != 5 {
		for _, r := range got.Records {
			t.Logf("rec: %v", r.Lines)
		}
		t.Fatalf("records = %d, want 5", len(got.Records))
	}
	for i, r := range got.Records {
		if len(r.Lines) != 2 {
			t.Fatalf("record %d has %d lines", i, len(r.Lines))
		}
		if len(r.Links) != 1 {
			t.Fatalf("record %d links = %v", i, r.Links)
		}
	}
}

func TestApplyRejectsPageWithoutSection(t *testing.T) {
	w, _ := buildTestWrapper(t)
	p := render(`<body><h1>Site</h1><div>No results found for your query.</div>
	<div>Copyright notice.</div></body>`)
	if got := w.Apply(p, []string{"q"}, DefaultOptions()); got != nil {
		t.Fatalf("wrapper fired on a no-results page: %+v", got)
	}
}

func TestWrapperJSONRoundTrip(t *testing.T) {
	w, _ := buildTestWrapper(t)
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var restored SectionWrapper
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Pref.String() != w.Pref.String() {
		t.Fatalf("pref changed: %s vs %s", restored.Pref, w.Pref)
	}
	if len(restored.Sep.StartSigs) != len(w.Sep.StartSigs) {
		t.Fatalf("separator changed")
	}
	if len(restored.LBMAttrs) != len(w.LBMAttrs) {
		t.Fatalf("attrs changed")
	}
	p, _ := sectionPage(4, "rr")
	a := w.Apply(p, []string{"q"}, DefaultOptions())
	b := restored.Apply(p, []string{"q"}, DefaultOptions())
	if (a == nil) != (b == nil) {
		t.Fatalf("restored wrapper behaves differently")
	}
	if a != nil && len(a.Records) != len(b.Records) {
		t.Fatalf("restored wrapper extracts differently")
	}
}

func TestFamilyJSONRoundTrip(t *testing.T) {
	pref, err := dom.ParseCompactPath("{#document}+0{html}+0{body}+1")
	if err != nil {
		t.Fatal(err)
	}
	spref, err := dom.ParseCompactPath("{table}+2{tbody}+0")
	if err != nil {
		t.Fatal(err)
	}
	f := &Family{
		Type:  Type2,
		Pref:  pref,
		SPref: spref,
		Sep: Separator{
			StartSigs: []string{"tr(td[a])"},
		},
		LBMAttrs:  []layout.TextAttr{{Font: "times", Size: 19, Style: layout.Bold, Color: "#000000"}},
		KnownLBMs: []string{"News", "Products"},
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var restored Family
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	if restored.Type != Type2 || restored.Pref.String() != f.Pref.String() ||
		restored.SPref.String() != f.SPref.String() {
		t.Fatalf("family round trip lost structure")
	}
	if len(restored.KnownLBMs) != 2 || len(restored.LBMAttrs) != 1 {
		t.Fatalf("family round trip lost metadata")
	}
}
