package wrapper

import (
	"strings"
	"sync"
	"sync/atomic"

	"mse/internal/dom"
	"mse/internal/dse"
	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/visual"
)

// applyScratch is the per-Apply working state — most importantly the
// reusable line cleaner, whose query-term set and output buffer would
// otherwise be rebuilt for every boundary-marker comparison.  Pooled
// across requests when arenas are enabled.
type applyScratch struct {
	cleaner dse.LineCleaner
	// sigBuf is the reused root-signature buffer of the compiled partition
	// path (see partitionBySepCompiled).
	sigBuf []byte
	used   bool
}

var applyScratchPool = sync.Pool{New: func() any { return new(applyScratch) }}

// ApplyScratchStats are cumulative apply-scratch pool counters.
type ApplyScratchStats struct {
	Acquires uint64 `json:"acquires"`
	Reuses   uint64 `json:"reuses"`
}

var applyScratchStats struct {
	acquires atomic.Uint64
	reuses   atomic.Uint64
}

// ApplyScratchStatsSnapshot returns the current apply-scratch counters.
func ApplyScratchStatsSnapshot() ApplyScratchStats {
	return ApplyScratchStats{
		Acquires: applyScratchStats.acquires.Load(),
		Reuses:   applyScratchStats.reuses.Load(),
	}
}

// ExtractedRecord is one search result record pulled from a page.
type ExtractedRecord struct {
	// Lines are the record's content-line texts, in order.
	Lines []string
	// Links are the href values of anchors in the record.
	Links []string
	// Start and End give the record's line range on the page.
	Start, End int
}

// ExtractedSection is one extracted dynamic section with its records, the
// section-record relationship the paper requires wrappers to maintain.
type ExtractedSection struct {
	// Heading is the text of the section's left boundary marker, if any.
	Heading string
	// Order is the originating wrapper's section-schema position (-1 for
	// family-discovered hidden sections).
	Order int
	// Start and End give the section's line range on the page.
	Start, End int
	// Records are the section's records in order.
	Records []ExtractedRecord
	// FromFamily marks sections found via a section family rather than a
	// regular wrapper.
	FromFamily bool
}

// Apply runs the wrapper against a rendered page.  It returns nil when the
// section is absent.  query lists the query terms used to retrieve the
// page (they are removed before boundary-marker texts are compared); it
// may be nil.
func (w *SectionWrapper) Apply(p *layout.Page, query []string, opt Options) *ExtractedSection {
	// Candidates are every subtree with a compatible compact path, nearest
	// sibling counts first.  Boundary markers — not raw path distance —
	// decide which candidate is the section: the paper's SBMs "precisely
	// bound sections" (§2), and on pages where other sections are hidden
	// the sibling offsets shift while the markers stay.
	var sc *applyScratch
	if dom.ArenasEnabled() {
		sc = applyScratchPool.Get().(*applyScratch)
		defer applyScratchPool.Put(sc)
		applyScratchStats.acquires.Add(1)
		if sc.used {
			applyScratchStats.reuses.Add(1)
		}
		sc.used = true
	} else {
		sc = new(applyScratch)
	}
	sc.cleaner.Reset(query)

	cands := dom.LocateCompactAll(p.Doc, w.Pref)
	const maxCandidates = 24
	if len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	for _, t := range cands {
		opt.Cancel.Check()
		if s := w.applyAt(p, t, &sc.cleaner, opt); s != nil {
			return s
		}
	}
	return nil
}

// applyAt attempts extraction with t as the section subtree; nil when the
// candidate fails boundary validation.
func (w *SectionWrapper) applyAt(p *layout.Page, t *dom.Node, cleaner *dse.LineCleaner, opt Options) *ExtractedSection {
	first, last, ok := p.Span(t)
	if !ok {
		return nil
	}
	start, end := first, last+1

	// Heading: the nearest preceding line matching a known LBM text.
	heading := ""
	if start > 0 {
		if txt := cleaner.Clean(&p.Lines[start-1]); matchesAny(txt, w.LBMs) {
			heading = p.Lines[start-1].Text
		}
	}
	// Flat layouts: the subtree contains the boundary lines themselves.
	// Clip the range to the lines between our LBM and the next boundary.
	if heading == "" {
		if lbm := findLineByText(p, start, end, w.LBMs, cleaner); lbm >= 0 {
			heading = p.Lines[lbm].Text
			start = lbm + 1
			for i := start; i < end; i++ {
				if attrsEqual(attrSetOf(p.Lines[i].Attrs), w.LBMAttrs) ||
					matchesAny(cleaner.Clean(&p.Lines[i]), w.RBMs) {
					end = i
					break
				}
			}
		}
	}
	if start >= end {
		return nil
	}
	// Boundary-marker validation: when the wrapper learned an LBM, the
	// candidate subtree must actually sit under that marker.
	if len(w.LBMs) > 0 && heading == "" {
		return nil
	}
	records := w.partition(p, start, end, opt)
	return &ExtractedSection{
		Heading: heading,
		Order:   w.Order,
		Start:   start,
		End:     end,
		Records: extractRecords(p, records),
	}
}

// partition splits [start, end) into records using the stored separator,
// falling back to cohesion-based mining when the separator does not match
// this page.
func (w *SectionWrapper) partition(p *layout.Page, start, end int, opt Options) []visual.Block {
	if blocks := partitionBySep(p, start, end, w.Sep); blocks != nil {
		return blocks
	}
	return mining.MineRecords(p, start, end, opt.Mining)
}

// partitionBySep applies a Separator to a line range; nil when the
// separator matches nothing there.  Records start at the forest roots
// whose structural signature equals the stored one.  When every root
// carries the signature (uniform rows without a distinctive first row)
// the roots-per-record count groups them instead.
func partitionBySep(p *layout.Page, start, end int, sep Separator) []visual.Block {
	roots := mining.ExpandedForest(p, start, end)
	if len(roots) == 0 {
		return nil
	}
	// The separator's signatures live at the record-root level; when the
	// section range spans container nodes (several sections merged into
	// one DS, or wrapper-level drift) the exact signatures may only match
	// one level deeper.  Descend while no root matches exactly.
	for depth := 0; depth < 3; depth++ {
		exact := 0
		for _, r := range roots {
			if sep.isStart(mining.RootSignature(r)) {
				exact++
			}
		}
		if exact > 0 {
			break
		}
		var kids []*dom.Node
		for _, r := range roots {
			for c := r.FirstChild; c != nil; c = c.NextSibling {
				if _, _, ok := p.Span(c); ok {
					kids = append(kids, c)
				}
			}
		}
		if len(kids) <= len(roots) {
			break
		}
		roots = kids
	}
	starts := 0
	var sigStarts []int
	// Tag lists of the unknown-signature fallback, derived at most once per
	// call instead of re-parsing every stored signature for every root.
	var startTags, interiorTags []string
	for _, r := range roots {
		sig := mining.RootSignature(r)
		isStart := sep.isStart(sig)
		if !isStart && !sep.isInterior(sig) {
			// Unknown signature (a record variant the samples never
			// showed, e.g. a record without its optional snippet).  Fall
			// back to the tag level: it starts a record when its tag is a
			// known start tag that never occurs inside records.
			if startTags == nil {
				startTags = tagsOf(sep.StartSigs)
				interiorTags = tagsOf(sep.InteriorSigs)
			}
			tag := sigTag(sig)
			isStart = containsString(startTags, tag) && !containsString(interiorTags, tag)
		}
		if isStart {
			starts++
			if s, _, ok := p.Span(r); ok {
				sigStarts = append(sigStarts, s)
			}
		}
	}
	switch {
	case starts == 0:
		return nil // separator does not match this page; mine instead
	case starts < len(roots) || sep.RootsPerRecord <= 1:
		// Start roots delimit records; interior/unknown roots attach to
		// the preceding record.
		return blocksFromStarts(p, start, end, sigStarts)
	default:
		// All roots look like starts but training saw multi-root records:
		// group uniformly.
		var groupStarts []int
		for i := 0; i < len(roots); i += sep.RootsPerRecord {
			if s, _, ok := p.Span(roots[i]); ok {
				groupStarts = append(groupStarts, s)
			}
		}
		return blocksFromStarts(p, start, end, groupStarts)
	}
}

// sigTag extracts the root tag from a structural signature.
func sigTag(sig string) string {
	if i := strings.IndexByte(sig, '('); i >= 0 {
		return sig[:i]
	}
	return sig
}

// tagsOf maps a signature list to its root tags.  The result is non-nil
// even for an empty list, so callers can use nil as a not-yet-computed
// sentinel.
func tagsOf(sigs []string) []string {
	out := make([]string, 0, len(sigs))
	for _, s := range sigs {
		out = append(out, sigTag(s))
	}
	return out
}

func blocksFromStarts(p *layout.Page, start, end int, starts []int) []visual.Block {
	if len(starts) == 0 {
		return nil
	}
	var out []visual.Block
	for i, s := range starts {
		if s < start {
			s = start
		}
		e := end
		if i+1 < len(starts) && starts[i+1] < e {
			e = starts[i+1]
		}
		if s < e {
			out = append(out, visual.Block{Page: p, Start: s, End: e})
		}
	}
	if len(out) > 0 {
		out[0].Start = start
	}
	return out
}

func extractRecords(p *layout.Page, blocks []visual.Block) []ExtractedRecord {
	out := make([]ExtractedRecord, 0, len(blocks))
	for _, b := range blocks {
		rec := ExtractedRecord{Start: b.Start, End: b.End}
		lines := b.Lines()
		if len(lines) > 0 {
			rec.Lines = make([]string, 0, len(lines))
		}
		nlinks := 0
		for i := range lines {
			nlinks += len(lines[i].Links)
		}
		if nlinks > 0 {
			rec.Links = make([]string, 0, nlinks)
		}
		for i := range lines {
			rec.Lines = append(rec.Lines, lines[i].Text)
			rec.Links = append(rec.Links, lines[i].Links...)
		}
		out = append(out, rec)
	}
	return out
}

// findLineByText returns the first line in [start, end) whose cleaned text
// matches one of the given texts, or -1.
func findLineByText(p *layout.Page, start, end int, texts []string, cleaner *dse.LineCleaner) int {
	if len(texts) == 0 {
		return -1
	}
	for i := start; i < end && i < len(p.Lines); i++ {
		if matchesAny(cleaner.Clean(&p.Lines[i]), texts) {
			return i
		}
	}
	return -1
}

func matchesAny(s string, list []string) bool {
	if s == "" {
		return false
	}
	for _, t := range list {
		if s == t {
			return true
		}
	}
	return false
}

// attrSetOf returns a sorted copy of a line's attribute set so it can be
// compared against stored wrapper attrs.
func attrSetOf(attrs []layout.TextAttr) []layout.TextAttr {
	out := append([]layout.TextAttr(nil), attrs...)
	sortAttrs(out)
	return out
}
