package wrapper

// Wrapper compilation (DESIGN.md §12).  A learned SectionWrapper or Family
// is an interpretable description: separator signatures are strings,
// boundary markers are string lists, and application re-derives per-page
// facts (root signatures, marker comparisons) from scratch on every page.
// Compile lowers a wrapper once into a specialized matcher:
//
//   - separator signatures are interned to dom.SigAtom integers, so
//     per-block classification is an append into a reused byte buffer, one
//     allocation-free map probe and a few integer compares — no per-page
//     string materialization;
//   - fallback tag lists (the tag-level classification of signatures the
//     samples never showed) are precomputed instead of being re-derived
//     from the signature strings per root;
//   - boundary-marker texts are wrapped in a markerSet with a length
//     bitmask prefilter, so the common miss costs one mask test;
//   - attribute-set comparisons run directly against the wrapper's stored
//     (sorted, duplicate-free) sets without the per-line sorted copy that
//     attrSetOf makes.
//
// Compiled application consumes candidate subtrees produced by the prune
// pass (internal/prune) instead of running its own LocateCompactAll DFS;
// the candidate lists are element-identical, so compiled extraction is
// byte-identical to the interpreted path (pinned by differential tests).

import (
	"strings"
	"sync/atomic"

	"mse/internal/dom"
	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/visual"
)

// compiledEnabled gates the compiled fast path process-wide, mirroring
// dom.SetArenasEnabled: flipping it off restores the interpreted legacy
// path (an operational escape hatch, and the lever the differential tests
// toggle).
var compiledEnabled atomic.Bool

func init() { compiledEnabled.Store(true) }

// SetCompiledEnabled toggles the compiled wrapper fast path.
func SetCompiledEnabled(v bool) { compiledEnabled.Store(v) }

// CompiledEnabled reports whether the compiled fast path is on.
func CompiledEnabled() bool { return compiledEnabled.Load() }

// CompiledStats are cumulative compiled-application counters; exposed on
// /metrics by the extraction service.
type CompiledStats struct {
	// Hits counts wrapper/family applications served by compiled forms.
	Hits uint64 `json:"hits"`
}

var compiledHits atomic.Uint64

// CompiledStatsSnapshot returns the current compiled-path counters.
func CompiledStatsSnapshot() CompiledStats {
	return CompiledStats{Hits: compiledHits.Load()}
}

// compiledSep is a Separator lowered to interned atoms plus the
// precomputed tag lists of the unknown-signature fallback.
type compiledSep struct {
	startAtoms     []dom.SigAtom
	interiorAtoms  []dom.SigAtom
	startTags      []string
	interiorTags   []string
	rootsPerRecord int
}

func compileSep(s Separator) compiledSep {
	cs := compiledSep{rootsPerRecord: s.RootsPerRecord}
	for _, sig := range s.StartSigs {
		cs.startAtoms = append(cs.startAtoms, dom.InternSig(sig))
		cs.startTags = append(cs.startTags, sigTag(sig))
	}
	for _, sig := range s.InteriorSigs {
		cs.interiorAtoms = append(cs.interiorAtoms, dom.InternSig(sig))
		cs.interiorTags = append(cs.interiorTags, sigTag(sig))
	}
	return cs
}

func atomIn(list []dom.SigAtom, a dom.SigAtom) bool {
	if a == 0 {
		return false
	}
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

// labelTag is sigTag(RootSignature(n)) without building the signature: the
// node label truncated at the first '(' (which, for sane tag names, is the
// whole label).
func labelTag(n *dom.Node) string {
	l := n.Label()
	if i := strings.IndexByte(l, '('); i >= 0 {
		return l[:i]
	}
	return l
}

// markerSet matches a line's cleaned text against boundary-marker texts.
// The length bitmask rejects most misses with one AND (bit 63 stands in
// for all lengths >= 63).
type markerSet struct {
	texts   []string
	lenMask uint64
}

func newMarkerSet(texts []string) markerSet {
	m := markerSet{texts: texts}
	for _, t := range texts {
		b := uint(len(t))
		if b > 63 {
			b = 63
		}
		m.lenMask |= 1 << b
	}
	return m
}

// match replicates matchesAny: the empty string never matches.
func (m *markerSet) match(s string) bool {
	if s == "" {
		return false
	}
	b := uint(len(s))
	if b > 63 {
		b = 63
	}
	if m.lenMask&(1<<b) == 0 {
		return false
	}
	for _, t := range m.texts {
		if s == t {
			return true
		}
	}
	return false
}

// attrSetEqual reports whether a line's attribute set equals a stored
// wrapper attribute set, without the sorted copy attrSetOf makes.  Both
// sides are duplicate-free (lines dedup at render, wrapper sets come from
// map keys), so equal length plus membership is set equality — which for
// duplicate-free sets coincides with the sorted-slice equality of
// attrsEqual(attrSetOf(lineAttrs), target).
func attrSetEqual(lineAttrs, target []layout.TextAttr) bool {
	if len(lineAttrs) != len(target) {
		return false
	}
	for _, a := range lineAttrs {
		found := false
		for _, b := range target {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// acquireApplyScratch returns a per-application scratch, pooled when
// arenas are enabled; the second result tells the caller to return it to
// applyScratchPool.
func acquireApplyScratch() (*applyScratch, bool) {
	if dom.ArenasEnabled() {
		sc := applyScratchPool.Get().(*applyScratch)
		applyScratchStats.acquires.Add(1)
		if sc.used {
			applyScratchStats.reuses.Add(1)
		}
		sc.used = true
		return sc, true
	}
	return new(applyScratch), false
}

// CompiledWrapper is the compiled form of a SectionWrapper.  It holds a
// reference to — never a mutated copy of — the source wrapper, so the
// wrapper's JSON form is unchanged by compilation.
type CompiledWrapper struct {
	w    *SectionWrapper
	sep  compiledSep
	lbms markerSet
	rbms markerSet
}

// Compile lowers a wrapper to its compiled form.  Interning touches the
// process-wide signature table; call it at wrapper-build/registry time,
// not per page.
func Compile(w *SectionWrapper) *CompiledWrapper {
	return &CompiledWrapper{
		w:    w,
		sep:  compileSep(w.Sep),
		lbms: newMarkerSet(w.LBMs),
		rbms: newMarkerSet(w.RBMs),
	}
}

// Source returns the wrapper this compiled form was lowered from.
func (cw *CompiledWrapper) Source() *SectionWrapper { return cw.w }

// Apply is SectionWrapper.Apply with the candidate subtrees supplied by
// the caller (the prune pass) instead of an internal LocateCompactAll
// walk.  cands must be ordered by increasing path distance with ties in
// document order — exactly LocateCompactAll's order — for the result to
// match the interpreted path.
func (cw *CompiledWrapper) Apply(p *layout.Page, cands []*dom.Node, query []string, opt Options) *ExtractedSection {
	compiledHits.Add(1)
	sc, pooled := acquireApplyScratch()
	if pooled {
		defer applyScratchPool.Put(sc)
	}
	sc.cleaner.Reset(query)

	const maxCandidates = 24
	if len(cands) > maxCandidates {
		cands = cands[:maxCandidates]
	}
	for _, t := range cands {
		opt.Cancel.Check()
		if s := cw.applyAt(p, t, sc, opt); s != nil {
			return s
		}
	}
	return nil
}

// applyAt mirrors SectionWrapper.applyAt over the compiled matchers.
func (cw *CompiledWrapper) applyAt(p *layout.Page, t *dom.Node, sc *applyScratch, opt Options) *ExtractedSection {
	w := cw.w
	first, last, ok := p.Span(t)
	if !ok {
		return nil
	}
	start, end := first, last+1

	heading := ""
	if start > 0 {
		if txt := sc.cleaner.Clean(&p.Lines[start-1]); cw.lbms.match(txt) {
			heading = p.Lines[start-1].Text
		}
	}
	if heading == "" && len(cw.lbms.texts) > 0 {
		lbm := -1
		for i := start; i < end && i < len(p.Lines); i++ {
			if cw.lbms.match(sc.cleaner.Clean(&p.Lines[i])) {
				lbm = i
				break
			}
		}
		if lbm >= 0 {
			heading = p.Lines[lbm].Text
			start = lbm + 1
			for i := start; i < end; i++ {
				if attrSetEqual(p.Lines[i].Attrs, w.LBMAttrs) ||
					cw.rbms.match(sc.cleaner.Clean(&p.Lines[i])) {
					end = i
					break
				}
			}
		}
	}
	if start >= end {
		return nil
	}
	if len(w.LBMs) > 0 && heading == "" {
		return nil
	}
	records := cw.partition(p, start, end, sc, opt)
	return &ExtractedSection{
		Heading: heading,
		Order:   w.Order,
		Start:   start,
		End:     end,
		Records: extractRecords(p, records),
	}
}

func (cw *CompiledWrapper) partition(p *layout.Page, start, end int, sc *applyScratch, opt Options) []visual.Block {
	if blocks := partitionBySepCompiled(p, start, end, &cw.sep, sc); blocks != nil {
		return blocks
	}
	return mining.MineRecords(p, start, end, opt.Mining)
}

// partitionBySepCompiled is partitionBySep over interned atoms: root
// signatures are appended into the scratch's reused buffer and resolved
// with one allocation-free table probe each.
func partitionBySepCompiled(p *layout.Page, start, end int, cs *compiledSep, sc *applyScratch) []visual.Block {
	roots := mining.ExpandedForest(p, start, end)
	if len(roots) == 0 {
		return nil
	}
	buf := sc.sigBuf
	for depth := 0; depth < 3; depth++ {
		exact := 0
		for _, r := range roots {
			buf = mining.AppendRootSignature(buf[:0], r)
			if atomIn(cs.startAtoms, dom.LookupSigBytes(buf)) {
				exact++
			}
		}
		if exact > 0 {
			break
		}
		var kids []*dom.Node
		for _, r := range roots {
			for c := r.FirstChild; c != nil; c = c.NextSibling {
				if _, _, ok := p.Span(c); ok {
					kids = append(kids, c)
				}
			}
		}
		if len(kids) <= len(roots) {
			break
		}
		roots = kids
	}
	starts := 0
	var sigStarts []int
	for _, r := range roots {
		buf = mining.AppendRootSignature(buf[:0], r)
		atom := dom.LookupSigBytes(buf)
		isStart := atomIn(cs.startAtoms, atom)
		if !isStart && !atomIn(cs.interiorAtoms, atom) {
			// Unknown signature: tag-level fallback, as in partitionBySep.
			tag := labelTag(r)
			isStart = containsString(cs.startTags, tag) && !containsString(cs.interiorTags, tag)
		}
		if isStart {
			starts++
			if s, _, ok := p.Span(r); ok {
				sigStarts = append(sigStarts, s)
			}
		}
	}
	sc.sigBuf = buf
	switch {
	case starts == 0:
		return nil
	case starts < len(roots) || cs.rootsPerRecord <= 1:
		return blocksFromStarts(p, start, end, sigStarts)
	default:
		var groupStarts []int
		for i := 0; i < len(roots); i += cs.rootsPerRecord {
			if s, _, ok := p.Span(roots[i]); ok {
				groupStarts = append(groupStarts, s)
			}
		}
		return blocksFromStarts(p, start, end, groupStarts)
	}
}

// CompiledFamily is the compiled form of a Family.
type CompiledFamily struct {
	f   *Family
	sep compiledSep
}

// CompileFamily lowers a family to its compiled form.
func CompileFamily(f *Family) *CompiledFamily {
	return &CompiledFamily{f: f, sep: compileSep(f.Sep)}
}

// Source returns the family this compiled form was lowered from.
func (cf *CompiledFamily) Source() *Family { return cf.f }

// ApplyCands is Family.Apply with candidate subtrees supplied by the
// caller: for Type 1 the LocateCompact result is cands[0] (best-distance
// first, so the lists agree); for Type 2 cands must be the pattern
// matches in document order, as Doc.Walk would produce them.
func (cf *CompiledFamily) ApplyCands(p *layout.Page, cands []*dom.Node, opt Options) []*ExtractedSection {
	compiledHits.Add(1)
	sc, pooled := acquireApplyScratch()
	if pooled {
		defer applyScratchPool.Put(sc)
	}
	switch cf.f.Type {
	case Type1:
		if len(cands) == 0 {
			return nil
		}
		return cf.applyType1(p, cands[0], sc, opt)
	case Type2:
		return cf.applyType2(p, cands, sc, opt)
	}
	return nil
}

func (cf *CompiledFamily) applyType1(p *layout.Page, t *dom.Node, sc *applyScratch, opt Options) []*ExtractedSection {
	f := cf.f
	first, last, ok := p.Span(t)
	if !ok {
		return nil
	}
	var out []*ExtractedSection
	heading := ""
	secStart := -1
	flush := func(end int) {
		if secStart < 0 || secStart >= end {
			return
		}
		recs := cf.partition(p, secStart, end, sc, opt)
		out = append(out, &ExtractedSection{
			Heading:    heading,
			Order:      -1,
			Start:      secStart,
			End:        end,
			Records:    extractRecords(p, recs),
			FromFamily: true,
		})
	}
	for i := first; i <= last; i++ {
		if attrSetEqual(p.Lines[i].Attrs, f.LBMAttrs) {
			opt.Cancel.Check()
			flush(i)
			heading = p.Lines[i].Text
			secStart = i + 1
		}
	}
	flush(last + 1)
	return out
}

func (cf *CompiledFamily) applyType2(p *layout.Page, matches []*dom.Node, sc *applyScratch, opt Options) []*ExtractedSection {
	f := cf.f
	var out []*ExtractedSection
	for _, t := range matches {
		opt.Cancel.Check()
		first, last, ok := p.Span(t)
		if !ok {
			continue
		}
		if first == 0 || !attrSetEqual(p.Lines[first-1].Attrs, f.LBMAttrs) {
			continue
		}
		heading := p.Lines[first-1].Text
		recs := cf.partition(p, first, last+1, sc, opt)
		out = append(out, &ExtractedSection{
			Heading:    heading,
			Order:      -1,
			Start:      first,
			End:        last + 1,
			Records:    extractRecords(p, recs),
			FromFamily: true,
		})
	}
	// Matches arrive in document order, so the spans are already sorted by
	// Start; kept for parity with applyType2's explicit sort.
	sortSectionsByStart(out)
	return out
}

func sortSectionsByStart(out []*ExtractedSection) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Start < out[j-1].Start; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
}

func (cf *CompiledFamily) partition(p *layout.Page, start, end int, sc *applyScratch, opt Options) []visual.Block {
	if blocks := partitionBySepCompiled(p, start, end, &cf.sep, sc); blocks != nil {
		return blocks
	}
	return mining.MineRecords(p, start, end, opt.Mining)
}
