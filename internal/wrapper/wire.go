package wrapper

import (
	"encoding/json"
	"fmt"

	"mse/internal/dom"
	"mse/internal/layout"
)

// wireAttr is the serialized form of a layout.TextAttr.
type wireAttr struct {
	Font  string `json:"font"`
	Size  int    `json:"size"`
	Style int    `json:"style"`
	Color string `json:"color"`
}

func toWireAttrs(attrs []layout.TextAttr) []wireAttr {
	out := make([]wireAttr, len(attrs))
	for i, a := range attrs {
		out[i] = wireAttr{Font: a.Font, Size: a.Size, Style: int(a.Style), Color: a.Color}
	}
	return out
}

func fromWireAttrs(attrs []wireAttr) []layout.TextAttr {
	out := make([]layout.TextAttr, len(attrs))
	for i, a := range attrs {
		out[i] = layout.TextAttr{Font: a.Font, Size: a.Size, Style: layout.StyleFlags(a.Style), Color: a.Color}
	}
	return out
}

// wireWrapper is the JSON form of a SectionWrapper.
type wireWrapper struct {
	Pref        string     `json:"pref"`
	SepStart    []string   `json:"sep_start,omitempty"`
	SepInterior []string   `json:"sep_interior,omitempty"`
	SepRoots    int        `json:"sep_roots,omitempty"`
	LBMs        []string   `json:"lbms,omitempty"`
	RBMs        []string   `json:"rbms,omitempty"`
	LBMAttrs    []wireAttr `json:"lbm_attrs,omitempty"`
	RecordAttrs []wireAttr `json:"record_attrs,omitempty"`
	LBMInside   bool       `json:"lbm_inside,omitempty"`
	Order       int        `json:"order"`
}

// MarshalJSON serializes the wrapper with compact paths in their textual
// notation.
func (w *SectionWrapper) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireWrapper{
		Pref:        w.Pref.String(),
		SepStart:    w.Sep.StartSigs,
		SepInterior: w.Sep.InteriorSigs,
		SepRoots:    w.Sep.RootsPerRecord,
		LBMs:        w.LBMs,
		RBMs:        w.RBMs,
		LBMAttrs:    toWireAttrs(w.LBMAttrs),
		RecordAttrs: toWireAttrs(w.RecordAttrs),
		LBMInside:   w.LBMInside,
		Order:       w.Order,
	})
}

// UnmarshalJSON restores a wrapper serialized by MarshalJSON.
func (w *SectionWrapper) UnmarshalJSON(data []byte) error {
	var ww wireWrapper
	if err := json.Unmarshal(data, &ww); err != nil {
		return err
	}
	pref, err := dom.ParseCompactPath(ww.Pref)
	if err != nil {
		return fmt.Errorf("wrapper: bad pref: %w", err)
	}
	w.Pref = pref
	w.Sep = Separator{StartSigs: ww.SepStart, InteriorSigs: ww.SepInterior, RootsPerRecord: ww.SepRoots}
	w.LBMs = ww.LBMs
	w.RBMs = ww.RBMs
	w.LBMAttrs = fromWireAttrs(ww.LBMAttrs)
	w.RecordAttrs = fromWireAttrs(ww.RecordAttrs)
	w.LBMInside = ww.LBMInside
	w.Order = ww.Order
	return nil
}

// wireFamily is the JSON form of a Family.
type wireFamily struct {
	Type        int        `json:"type"`
	Pref        string     `json:"pref"`
	SPref       string     `json:"spref,omitempty"`
	SepStart    []string   `json:"sep_start,omitempty"`
	SepInterior []string   `json:"sep_interior,omitempty"`
	SepRoots    int        `json:"sep_roots,omitempty"`
	LBMAttrs    []wireAttr `json:"lbm_attrs,omitempty"`
	KnownLBMs   []string   `json:"known_lbms,omitempty"`
}

// MarshalJSON serializes the family.
func (f *Family) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireFamily{
		Type:        int(f.Type),
		Pref:        f.Pref.String(),
		SPref:       f.SPref.String(),
		SepStart:    f.Sep.StartSigs,
		SepInterior: f.Sep.InteriorSigs,
		SepRoots:    f.Sep.RootsPerRecord,
		LBMAttrs:    toWireAttrs(f.LBMAttrs),
		KnownLBMs:   f.KnownLBMs,
	})
}

// UnmarshalJSON restores a family serialized by MarshalJSON.
func (f *Family) UnmarshalJSON(data []byte) error {
	var wf wireFamily
	if err := json.Unmarshal(data, &wf); err != nil {
		return err
	}
	pref, err := dom.ParseCompactPath(wf.Pref)
	if err != nil {
		return fmt.Errorf("wrapper: bad family pref: %w", err)
	}
	spref, err := dom.ParseCompactPath(wf.SPref)
	if err != nil {
		return fmt.Errorf("wrapper: bad family spref: %w", err)
	}
	f.Type = FamilyType(wf.Type)
	f.Pref = pref
	f.SPref = spref
	f.Sep = Separator{StartSigs: wf.SepStart, InteriorSigs: wf.SepInterior, RootsPerRecord: wf.SepRoots}
	f.LBMAttrs = fromWireAttrs(wf.LBMAttrs)
	f.KnownLBMs = wf.KnownLBMs
	return nil
}
