package wrapper

import (
	"fmt"
	"strings"
	"testing"

	"mse/internal/cluster"
	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

// multiSectionPage renders nSecs sibling sections (each: styled heading
// div + table of two-line records) and returns the page plus hand-made
// refined sections.
func multiSectionPage(nSecs int, recsPer []int, tag string) (*layout.Page, []*sect.Section) {
	var sb strings.Builder
	sb.WriteString(`<body><h1>Site</h1>`)
	for s := 0; s < nSecs; s++ {
		fmt.Fprintf(&sb, `<div style="font-size: 18px; font-weight: bold; color: #663300">Heading %c</div>`, 'A'+s)
		sb.WriteString("<table>")
		for i := 0; i < recsPer[s]; i++ {
			fmt.Fprintf(&sb, `<tr><td><a href="/%s/%d/%d">Title %s %d %d</a><br>snippet %s %d %d</td></tr>`,
				tag, s, i, tag, s, i, tag, s, i)
		}
		sb.WriteString("</table>")
	}
	sb.WriteString(`<div>Copyright notice.</div></body>`)
	p := render(sb.String())

	var sections []*sect.Section
	line := 1 // after the h1
	for s := 0; s < nSecs; s++ {
		start := line + 1 // after the heading
		end := start + 2*recsPer[s]
		sec := sect.New(p, start, end)
		sec.LBM = line
		for i := 0; i < recsPer[s]; i++ {
			sec.Records = append(sec.Records,
				visual.Block{Page: p, Start: start + 2*i, End: start + 2*i + 2})
		}
		sections = append(sections, sec)
		line = end
	}
	return p, sections
}

// buildFamilyWrappers trains wrappers for two same-format sections across
// three pages and combines them into families.
func buildFamilyWrappers(t *testing.T) ([]*SectionWrapper, []*Family) {
	t.Helper()
	var pages []*cluster.PageSections
	groups := []*cluster.Group{{}, {}}
	for i, tag := range []string{"aa", "bb", "cc"} {
		p, secs := multiSectionPage(2, []int{3 + i, 2 + i}, tag)
		ps := &cluster.PageSections{Page: p, Query: []string{"q"}, Sections: secs}
		pages = append(pages, ps)
		for gi, s := range secs {
			groups[gi].Instances = append(groups[gi].Instances, cluster.NewInstance(i, ps, s))
		}
	}
	var ws []*SectionWrapper
	for order, g := range groups {
		ws = append(ws, Build(g, pages, order, DefaultOptions()))
	}
	return BuildFamilies(ws, DefaultOptions())
}

func TestBuildFamiliesCombinesSameFormatSections(t *testing.T) {
	remaining, fams := buildFamilyWrappers(t)
	if len(fams) != 1 {
		t.Fatalf("families = %d, want 1 (same seps + same LBM attrs)", len(fams))
	}
	if len(remaining) != 0 {
		t.Fatalf("member wrappers should be deleted, %d remain", len(remaining))
	}
	if fams[0].Type != Type2 {
		t.Fatalf("family type = %d, want Type2 (sibling subtrees)", fams[0].Type)
	}
	if len(fams[0].KnownLBMs) < 2 {
		t.Fatalf("family should remember member LBMs: %v", fams[0].KnownLBMs)
	}
}

func TestFamilyExtractsHiddenThirdSection(t *testing.T) {
	_, fams := buildFamilyWrappers(t)
	if len(fams) != 1 {
		t.Fatalf("families = %d", len(fams))
	}
	// A page with a THIRD same-format section never seen in training.
	p, _ := multiSectionPage(3, []int{3, 2, 4}, "zz")
	secs := fams[0].Apply(p, []string{"q"}, DefaultOptions())
	if len(secs) != 3 {
		for _, s := range secs {
			t.Logf("family section %q [%d,%d)", s.Heading, s.Start, s.End)
		}
		t.Fatalf("family found %d sections, want 3 (one hidden)", len(secs))
	}
	if secs[2].Heading != "Heading C" {
		t.Fatalf("hidden section heading = %q", secs[2].Heading)
	}
	if len(secs[2].Records) != 4 {
		t.Fatalf("hidden section records = %d, want 4", len(secs[2].Records))
	}
	for _, s := range secs {
		if !s.FromFamily {
			t.Fatalf("family extractions must be marked FromFamily")
		}
	}
}

func TestFamilyIgnoresFurniture(t *testing.T) {
	_, fams := buildFamilyWrappers(t)
	// A page whose body also has plain divs (nav/footer) that share the
	// tag shape but lack the boundary-marker attribute above them.
	p := render(`<body><h1>Site</h1>
	<div><a href="/n1">Nav One</a> | <a href="/n2">Nav Two</a></div>
	<div style="font-size: 18px; font-weight: bold; color: #663300">Heading A</div>
	<table>
	<tr><td><a href="/a">Title a</a><br>snippet a</td></tr>
	<tr><td><a href="/b">Title b</a><br>snippet b</td></tr>
	</table>
	<div>Copyright notice.</div></body>`)
	secs := fams[0].Apply(p, []string{"q"}, DefaultOptions())
	for _, s := range secs {
		txt := ""
		for _, r := range s.Records {
			txt += strings.Join(r.Lines, " ") + " "
		}
		if strings.Contains(txt, "Nav One") || strings.Contains(txt, "Copyright") {
			t.Fatalf("family extracted page furniture: %q", txt)
		}
	}
}

func TestBuildFamiliesRejectsDifferentFormats(t *testing.T) {
	// Two wrappers with different separators must not form a family.
	var pages []*cluster.PageSections
	groups := []*cluster.Group{{}, {}}
	for i, tag := range []string{"aa", "bb"} {
		var sb strings.Builder
		sb.WriteString(`<body><h3>First</h3><table>`)
		for r := 0; r < 3+i; r++ {
			fmt.Fprintf(&sb, `<tr><td><a href="/%s%d">T %d</a><br>s %d</td></tr>`, tag, r, r, r)
		}
		sb.WriteString(`</table><h3>Second</h3><ul>`)
		for r := 0; r < 3; r++ {
			fmt.Fprintf(&sb, `<li>plain item %s %d</li>`, tag, r)
		}
		sb.WriteString(`</ul></body>`)
		p := render(sb.String())
		s1 := sect.New(p, 1, 1+2*(3+i))
		s1.LBM = 0
		for r := 0; r < 3+i; r++ {
			s1.Records = append(s1.Records, visual.Block{Page: p, Start: 1 + 2*r, End: 3 + 2*r})
		}
		start2 := 2 + 2*(3+i)
		s2 := sect.New(p, start2, start2+3)
		s2.LBM = start2 - 1
		for r := 0; r < 3; r++ {
			s2.Records = append(s2.Records, visual.Block{Page: p, Start: start2 + r, End: start2 + r + 1})
		}
		ps := &cluster.PageSections{Page: p, Query: []string{"q"}, Sections: []*sect.Section{s1, s2}}
		pages = append(pages, ps)
		groups[0].Instances = append(groups[0].Instances, cluster.NewInstance(i, ps, s1))
		groups[1].Instances = append(groups[1].Instances, cluster.NewInstance(i, ps, s2))
	}
	var ws []*SectionWrapper
	for order, g := range groups {
		ws = append(ws, Build(g, pages, order, DefaultOptions()))
	}
	remaining, fams := BuildFamilies(ws, DefaultOptions())
	if len(fams) != 0 {
		t.Fatalf("different-format wrappers formed a family")
	}
	if len(remaining) != 2 {
		t.Fatalf("wrappers lost: %d remain", len(remaining))
	}
}
