package wrapper

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"mse/internal/dom"
)

// TestApplyPooledEdgeCases runs Apply edge cases twice back to back: the
// second run reuses the pooled apply scratch populated by the first, so
// any state leaking across Apply calls (a stale query-term set, a dirty
// output buffer) shows up as a behavioural diff.
func TestApplyPooledEdgeCases(t *testing.T) {
	if !dom.ArenasEnabled() {
		t.Skip("pooled scratch path disabled")
	}
	w, _ := buildTestWrapper(t)

	// Warm the pool so every case below runs on a reused scratch at least
	// once.
	warm, _ := sectionPage(3, "warm")
	w.Apply(warm, []string{"q"}, DefaultOptions())

	t.Run("EmptyPage", func(t *testing.T) {
		p := render(`<body></body>`)
		for round := 0; round < 2; round++ {
			if got := w.Apply(p, []string{"q"}, DefaultOptions()); got != nil {
				t.Fatalf("round %d: wrapper fired on an empty page: %+v", round, got)
			}
		}
	})

	t.Run("AnchorLineAbsent", func(t *testing.T) {
		// The records are present but the learned LBM line ("Results") is
		// not; boundary validation must reject the candidate, both on a
		// fresh and a reused scratch.
		var sb strings.Builder
		sb.WriteString(`<body><h1>Site</h1><table>`)
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&sb, `<tr><td><a href="/x%d">Title x %d</a><br>snippet x %d</td></tr>`, i, i, i)
		}
		sb.WriteString(`</table><div>Copyright notice.</div></body>`)
		p := render(sb.String())
		for round := 0; round < 2; round++ {
			if got := w.Apply(p, []string{"q"}, DefaultOptions()); got != nil {
				t.Fatalf("round %d: wrapper fired without its anchor line: %+v", round, got)
			}
		}
	})

	t.Run("SectionAtPageTail", func(t *testing.T) {
		// The section is the last content on the page — no trailing
		// boundary after the records.
		var sb strings.Builder
		sb.WriteString(`<body><h1>Site</h1><h3>Results</h3><table>`)
		for i := 0; i < 4; i++ {
			fmt.Fprintf(&sb, `<tr><td><a href="/t%d">Title t %d</a><br>snippet t %d</td></tr>`, i, i, i)
		}
		sb.WriteString(`</table></body>`)
		p := render(sb.String())

		var first []byte
		for round := 0; round < 2; round++ {
			got := w.Apply(p, []string{"q"}, DefaultOptions())
			if got == nil {
				t.Fatalf("round %d: wrapper did not fire on tail section", round)
			}
			if len(got.Records) != 4 {
				t.Fatalf("round %d: records = %d, want 4", round, len(got.Records))
			}
			j, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = j
			} else if string(j) != string(first) {
				t.Fatalf("pooled rerun differs:\nfirst:  %s\nsecond: %s", first, j)
			}
		}
	})

	// The query-term set must not leak between Applies: a heading that was
	// masked by round one's query terms must match again in round two with
	// different terms.
	t.Run("QueryTermReset", func(t *testing.T) {
		p, _ := sectionPage(3, "qq")
		// "results" as a query term blanks the cleaned LBM text, so the
		// flat-layout fallback cannot anchor on it — but the heading is
		// still found positionally; what matters here is the second Apply
		// with a disjoint query reproduces the no-query result exactly.
		ref := w.Apply(p, []string{"q"}, DefaultOptions())
		refJSON, _ := json.Marshal(ref)
		w.Apply(p, []string{"results"}, DefaultOptions())
		got := w.Apply(p, []string{"q"}, DefaultOptions())
		gotJSON, _ := json.Marshal(got)
		if string(refJSON) != string(gotJSON) {
			t.Fatalf("query terms leaked across pooled Applies:\nref: %s\ngot: %s", refJSON, gotJSON)
		}
	})
}
