package wrapper

import (
	"sort"

	"mse/internal/dom"
	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/visual"
)

// FamilyType distinguishes the two section-family classes of Section 5.8.
type FamilyType int

const (
	// Type1 families share pref and seps; member sections are siblings
	// under one subtree, delimited by boundary lines with a distinctive
	// text attribute (Figure 10).
	Type1 FamilyType = 1
	// Type2 families share seps and have prefs with a common prefix and
	// common suffix; member sections are sibling subtrees under the node
	// located by the common prefix (Figure 11).
	Type2 FamilyType = 2
)

// Family is a section wrapper family: a class of section schemas sharing
// structure, able to extract hidden sections that occurred on no sample
// page.
type Family struct {
	Type FamilyType
	// Pref is the full pref (Type 1) or the common prefix ppref (Type 2).
	Pref dom.CompactPath
	// SPref is the common suffix spref (Type 2 only); its first step's
	// sibling count is the wildcard that distinguishes member sections.
	SPref dom.CompactPath
	// Sep partitions each member section into records.
	Sep Separator
	// LBMAttrs is the shared text-attribute set of the members' boundary
	// markers (aLBMs).
	LBMAttrs []layout.TextAttr
	// KnownLBMs are the member wrappers' boundary texts (for labeling).
	KnownLBMs []string
}

// BuildFamilies scans the section wrappers for Type 1 and Type 2 families
// (§5.8).  Wrappers combined into a family are removed from the returned
// wrapper list, as the paper prescribes.
func BuildFamilies(wrappers []*SectionWrapper, opt Options) ([]*SectionWrapper, []*Family) {
	var families []*Family
	remaining := append([]*SectionWrapper(nil), wrappers...)

	remaining, families = buildType1(remaining, families)
	remaining, families = buildType2(remaining, families)
	remaining = pruneInsideFamilies(remaining, families)
	return remaining, families
}

// pruneInsideFamilies removes regular wrappers whose pref descends into a
// Type 1 family's subtree: the family owns that whole region (it splits it
// at boundary-marker lines), and a leftover row-level wrapper would
// otherwise shadow the family's correct extraction with a fragment.
func pruneInsideFamilies(ws []*SectionWrapper, families []*Family) []*SectionWrapper {
	drop := map[*SectionWrapper]bool{}
	for _, f := range families {
		if f.Type != Type1 {
			continue
		}
		for _, w := range ws {
			if len(w.Pref) <= len(f.Pref) {
				continue
			}
			inside := true
			for i := range f.Pref {
				if w.Pref[i] != f.Pref[i] {
					inside = false
					break
				}
			}
			if inside {
				drop[w] = true
			}
		}
	}
	return without(ws, drop)
}

// familyEligible checks the shared §5.8 precondition: the wrapper has
// boundary-marker attributes that are distinct from every record-line
// attribute.
func familyEligible(w *SectionWrapper) bool {
	return len(w.LBMAttrs) > 0 && attrsDisjoint(w.LBMAttrs, w.RecordAttrs)
}

func buildType1(ws []*SectionWrapper, families []*Family) ([]*SectionWrapper, []*Family) {
	type key struct {
		pref  string
		attrs string
	}
	groups := map[key][]*SectionWrapper{}
	var order []key
	for _, w := range ws {
		if !familyEligible(w) || !w.LBMInside {
			continue
		}
		k := key{pref: w.Pref.String(), attrs: attrsKey(w.LBMAttrs)}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], w)
	}
	drop := map[*SectionWrapper]bool{}
	for _, k := range order {
		g := groups[k]
		if len(g) < 2 || !sepsCompatible(g) {
			continue
		}
		fam := &Family{
			Type:     Type1,
			Pref:     g[0].Pref,
			Sep:      mergeSeps(g),
			LBMAttrs: g[0].LBMAttrs,
		}
		for _, w := range g {
			fam.KnownLBMs = append(fam.KnownLBMs, w.LBMs...)
			drop[w] = true
		}
		families = append(families, fam)
	}
	return without(ws, drop), families
}

// sepsCompatible reports whether the group's separators describe one
// record grammar: the sets of record-start signatures must overlap (the
// paper's "same seps", allowing for estimation noise on sections whose
// sample instances were small).
func sepsCompatible(g []*SectionWrapper) bool {
	for _, w := range g[1:] {
		shared := false
		for _, sig := range w.Sep.StartSigs {
			if containsString(g[0].Sep.StartSigs, sig) {
				shared = true
				break
			}
		}
		if !shared {
			return false
		}
	}
	return true
}

// mergeSeps unions the group's separators.  A signature seen starting
// records anywhere counts as a start — sections with many records give
// better partition evidence than sections whose instances happened to be
// tiny.
func mergeSeps(g []*SectionWrapper) Separator {
	var out Separator
	for _, w := range g {
		for _, sig := range w.Sep.StartSigs {
			if !containsString(out.StartSigs, sig) {
				out.StartSigs = append(out.StartSigs, sig)
			}
		}
	}
	for _, w := range g {
		for _, sig := range w.Sep.InteriorSigs {
			if !containsString(out.StartSigs, sig) && !containsString(out.InteriorSigs, sig) {
				out.InteriorSigs = append(out.InteriorSigs, sig)
			}
		}
	}
	sort.Strings(out.StartSigs)
	sort.Strings(out.InteriorSigs)
	return out
}

func buildType2(ws []*SectionWrapper, families []*Family) ([]*SectionWrapper, []*Family) {
	type key struct {
		tags  string
		attrs string
	}
	groups := map[key][]*SectionWrapper{}
	var order []key
	for _, w := range ws {
		if !familyEligible(w) || len(w.Pref) == 0 || w.LBMInside {
			continue
		}
		k := key{tags: tagsKey(w.Pref), attrs: attrsKey(w.LBMAttrs)}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], w)
	}
	drop := map[*SectionWrapper]bool{}
	for _, k := range order {
		g := groups[k]
		if len(g) < 2 || !sepsCompatible(g) {
			continue
		}
		j, ok := singleDivergence(g)
		if !ok {
			continue
		}
		fam := &Family{
			Type:     Type2,
			Pref:     append(dom.CompactPath(nil), g[0].Pref[:j]...),
			SPref:    append(dom.CompactPath(nil), g[0].Pref[j:]...),
			Sep:      mergeSeps(g),
			LBMAttrs: g[0].LBMAttrs,
		}
		for _, w := range g {
			fam.KnownLBMs = append(fam.KnownLBMs, w.LBMs...)
			drop[w] = true
		}
		families = append(families, fam)
	}
	return without(ws, drop), families
}

// singleDivergence finds the unique compact-path step index at which the
// group's prefs differ in sibling count, confirming the common-prefix /
// common-suffix structure of a Type 2 family.  Identical paths use the
// final step as the wildcard (sibling subtrees whose sample offsets
// coincided); paths differing at several steps fail.
func singleDivergence(g []*SectionWrapper) (int, bool) {
	n := len(g[0].Pref)
	divergent := -1
	for i := 0; i < n; i++ {
		same := true
		for _, w := range g[1:] {
			if w.Pref[i].SBefore != g[0].Pref[i].SBefore {
				same = false
				break
			}
		}
		if !same {
			if divergent >= 0 {
				return 0, false
			}
			divergent = i
		}
	}
	if divergent < 0 {
		// Identical prefs: the member sections are sibling subtrees whose
		// sample offsets coincided (or collapsed under median merging);
		// the wildcard is the final sibling offset.
		return n - 1, true
	}
	return divergent, true
}

func without(ws []*SectionWrapper, drop map[*SectionWrapper]bool) []*SectionWrapper {
	out := make([]*SectionWrapper, 0, len(ws))
	for _, w := range ws {
		if !drop[w] {
			out = append(out, w)
		}
	}
	return out
}

func attrsKey(attrs []layout.TextAttr) string {
	k := ""
	for _, a := range attrs {
		k += a.Font + "|" + string(rune('0'+a.Size%10)) + string(rune('a'+a.Size/10)) +
			"|" + string(rune('0'+a.Style)) + "|" + a.Color + ";"
	}
	return k
}

// Apply runs a family against a page, returning every member section found
// — including hidden ones that no sample page exhibited.
func (f *Family) Apply(p *layout.Page, query []string, opt Options) []*ExtractedSection {
	switch f.Type {
	case Type1:
		return f.applyType1(p, opt)
	case Type2:
		return f.applyType2(p, opt)
	}
	return nil
}

// applyType1 locates the shared subtree and splits its lines at boundary
// lines carrying the family's LBM attributes.
func (f *Family) applyType1(p *layout.Page, opt Options) []*ExtractedSection {
	t := dom.LocateCompact(p.Doc, f.Pref)
	if t == nil {
		return nil
	}
	first, last, ok := p.Span(t)
	if !ok {
		return nil
	}
	var out []*ExtractedSection
	heading := ""
	secStart := -1
	flush := func(end int) {
		if secStart < 0 || secStart >= end {
			return
		}
		recs := f.partition(p, secStart, end, opt)
		out = append(out, &ExtractedSection{
			Heading:    heading,
			Order:      -1,
			Start:      secStart,
			End:        end,
			Records:    extractRecords(p, recs),
			FromFamily: true,
		})
	}
	for i := first; i <= last; i++ {
		if attrsEqual(attrSetOf(p.Lines[i].Attrs), f.LBMAttrs) {
			opt.Cancel.Check()
			flush(i)
			heading = p.Lines[i].Text
			secStart = i + 1
		}
	}
	flush(last + 1)
	return out
}

// applyType2 finds every subtree whose compact path matches ppref+spref
// with a free sibling count at the junction; each match is one member
// section.
func (f *Family) applyType2(p *layout.Page, opt Options) []*ExtractedSection {
	pattern := append(append(dom.CompactPath(nil), f.Pref...), f.SPref...)
	junction := len(f.Pref)
	var matches []*dom.Node
	p.Doc.Walk(func(n *dom.Node) bool {
		cp := dom.PathOf(n).Compact()
		if len(cp) != len(pattern) {
			return true
		}
		for i := range cp {
			if cp[i].Tag != pattern[i].Tag {
				return true
			}
			if i != junction && cp[i].SBefore != pattern[i].SBefore {
				return true
			}
		}
		matches = append(matches, n)
		return false // a matched subtree cannot contain another match
	})
	var out []*ExtractedSection
	for _, t := range matches {
		opt.Cancel.Check()
		first, last, ok := p.Span(t)
		if !ok {
			continue
		}
		// §5.8: member sections are recognized by their boundary markers'
		// distinctive text attributes.  A candidate subtree without an
		// aLBM-attributed line directly above it is page furniture that
		// merely shares the tag shape (navigation rows, footers, …).
		if first == 0 || !attrsEqual(attrSetOf(p.Lines[first-1].Attrs), f.LBMAttrs) {
			continue
		}
		heading := p.Lines[first-1].Text
		recs := f.partition(p, first, last+1, opt)
		out = append(out, &ExtractedSection{
			Heading:    heading,
			Order:      -1,
			Start:      first,
			End:        last + 1,
			Records:    extractRecords(p, recs),
			FromFamily: true,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// partition splits a member section's lines into records with the family
// separator, falling back to cohesion mining.
func (f *Family) partition(p *layout.Page, start, end int, opt Options) []visual.Block {
	if blocks := partitionBySep(p, start, end, f.Sep); blocks != nil {
		return blocks
	}
	return mining.MineRecords(p, start, end, opt.Mining)
}
