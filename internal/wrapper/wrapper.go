// Package wrapper implements Sections 5.7 and 5.8 of the MSE paper:
// constructing section wrappers from section instance groups, combining
// wrappers into section families to handle hidden sections, and applying
// wrappers/families to new result pages.
//
// A section wrapper is the paper's quaternion ⟨pref, seps, LBMs, RBMs⟩:
// pref is the (compact) tag path leading to the minimum subtree containing
// the section's records, seps are the separators that partition the
// subtree's forest into records, and LBMs/RBMs are the boundary-marker
// texts (majority-voted, with their text attributes retained for family
// construction).
package wrapper

import (
	"sort"

	"mse/internal/cancel"
	"mse/internal/dom"
	"mse/internal/dse"
	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/visual"

	"mse/internal/cluster"
)

// Separator is the seps component of a section wrapper: the structural
// signatures observed at record-starting forest roots (StartSigs) and at
// records' subsequent roots (InteriorSigs).  When the two sets cannot
// distinguish roots (uniform rows), RootsPerRecord groups consecutive
// roots instead.
type Separator struct {
	StartSigs      []string
	InteriorSigs   []string
	RootsPerRecord int
}

// isStart classifies a root signature: true when it has been seen starting
// records at least as often as inside them.
func (s Separator) isStart(sig string) bool {
	if !containsString(s.StartSigs, sig) {
		return false
	}
	return true
}

func (s Separator) isInterior(sig string) bool {
	return containsString(s.InteriorSigs, sig) && !containsString(s.StartSigs, sig)
}

func containsString(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// SectionWrapper extracts one section schema.
type SectionWrapper struct {
	// Pref locates the minimal subtree containing the records.
	Pref dom.CompactPath
	// Sep partitions the subtree's forest into records.
	Sep Separator
	// LBMs / RBMs are the cleaned boundary-marker texts seen across the
	// instance group, most frequent first.
	LBMs []string
	RBMs []string
	// LBMAttrs are the text attributes of the LBM line (majority
	// instance); used for section-family construction and application.
	LBMAttrs []layout.TextAttr
	// RecordAttrs is the set of text attributes seen on record lines;
	// family construction requires the LBM attrs to be distinct from
	// these.
	RecordAttrs []layout.TextAttr
	// LBMInside records whether the boundary-marker line lies inside the
	// pref subtree (Figure 10 flat layouts) or above it (separate heading
	// elements).  It selects between Type 1 and Type 2 family semantics.
	LBMInside bool
	// Order is the position of the section schema in the page schema.
	Order int
}

// Options control wrapper construction and application.
type Options struct {
	Mining        mining.Options
	LineWeights   visual.LineWeights
	RecordWeights visual.RecordWeights
	// Cancel, when non-nil, is polled by Apply before each candidate
	// subtree is validated and partitioned, so a canceled context aborts
	// extraction between candidates.  core's ctx-accepting entry points
	// install it; it is never serialized with a wrapper.
	Cancel *cancel.Token `json:"-"`
}

// DefaultOptions returns the defaults.
func DefaultOptions() Options {
	return Options{
		Mining:        mining.DefaultOptions(),
		LineWeights:   visual.DefaultLineWeights(),
		RecordWeights: visual.DefaultRecordWeights(),
	}
}

// Build constructs a section wrapper from one instance group (§5.7).
// pages[i] must be the PageSections the group's instances refer to.
func Build(group *cluster.Group, pages []*cluster.PageSections, order int, opt Options) *SectionWrapper {
	w := &SectionWrapper{Order: order}

	// --- pref: merge the instances' compact paths ---
	var prefs []dom.CompactPath
	for _, inst := range group.Instances {
		ps := pages[inst.PageIndex]
		if sub := ps.Page.SectionRoot(inst.Section.Start, inst.Section.End); sub != nil {
			prefs = append(prefs, dom.PathOf(sub).Compact())
		}
	}
	w.Pref = mergeCompactPaths(prefs)

	// --- seps: record-start and record-interior root signatures ---
	// Signatures are taken from the records' *unexpanded* minimal forests
	// so they live at the same tree level as the roots visible when the
	// stored separator is later applied to a whole section range.
	startCount := map[string]int{}
	interiorCount := map[string]int{}
	rootsPerRec := map[int]int{}
	for _, inst := range group.Instances {
		ps := pages[inst.PageIndex]
		for _, r := range inst.Section.Records {
			roots := ps.Page.Forest(r.Start, r.End)
			if len(roots) == 0 {
				continue
			}
			startCount[mining.RootSignature(roots[0])]++
			for _, root := range roots[1:] {
				interiorCount[mining.RootSignature(root)]++
			}
			rootsPerRec[len(roots)]++
		}
	}
	// A signature seen both at starts and inside records counts as a start
	// only when it starts records at least as often.
	for sig, n := range startCount {
		if interiorCount[sig] <= n {
			w.Sep.StartSigs = append(w.Sep.StartSigs, sig)
		}
	}
	sort.Strings(w.Sep.StartSigs)
	for sig := range interiorCount {
		if !containsString(w.Sep.StartSigs, sig) {
			w.Sep.InteriorSigs = append(w.Sep.InteriorSigs, sig)
		}
	}
	sort.Strings(w.Sep.InteriorSigs)
	if k, uniform := uniformKey(rootsPerRec); uniform && k > 1 {
		w.Sep.RootsPerRecord = k
	}

	// --- LBMs / RBMs: majority vote over cleaned texts ---
	lbmCount := map[string]int{}
	rbmCount := map[string]int{}
	for _, inst := range group.Instances {
		ps := pages[inst.PageIndex]
		if inst.Section.LBM >= 0 {
			lbmCount[dse.CleanLine(&ps.Page.Lines[inst.Section.LBM], ps.Query)]++
		}
		if inst.Section.RBM >= 0 {
			rbmCount[dse.CleanLine(&ps.Page.Lines[inst.Section.RBM], ps.Query)]++
		}
	}
	w.LBMs = keysByCount(lbmCount)
	w.RBMs = keysByCount(rbmCount)

	// --- attributes for family construction ---
	attrCount := map[layout.TextAttr]int{}
	for _, inst := range group.Instances {
		ps := pages[inst.PageIndex]
		if inst.Section.LBM >= 0 {
			for _, a := range ps.Page.Lines[inst.Section.LBM].Attrs {
				attrCount[a]++
			}
		}
	}
	w.LBMAttrs = attrsByCount(attrCount, len(group.Instances))
	inside := 0
	voters := 0
	for _, inst := range group.Instances {
		if inst.Section.LBM < 0 {
			continue
		}
		ps := pages[inst.PageIndex]
		sub := ps.Page.SectionRoot(inst.Section.Start, inst.Section.End)
		if sub == nil {
			continue
		}
		voters++
		if first, _, ok := ps.Page.Span(sub); ok && inst.Section.LBM >= first {
			inside++
		}
	}
	w.LBMInside = voters > 0 && inside*2 > voters
	recAttrs := map[layout.TextAttr]bool{}
	for _, inst := range group.Instances {
		ps := pages[inst.PageIndex]
		for _, r := range inst.Section.Records {
			for i := r.Start; i < r.End; i++ {
				for _, a := range ps.Page.Lines[i].Attrs {
					recAttrs[a] = true
				}
			}
		}
	}
	for a := range recAttrs {
		w.RecordAttrs = append(w.RecordAttrs, a)
	}
	sortAttrs(w.RecordAttrs)
	return w
}

// mergeCompactPaths merges instance paths: the most common compatible tag
// sequence wins and per-step sibling counts take the element-wise median.
func mergeCompactPaths(prefs []dom.CompactPath) dom.CompactPath {
	if len(prefs) == 0 {
		return nil
	}
	// Group by tag sequence.
	byTags := map[string][]dom.CompactPath{}
	var order []string
	for _, p := range prefs {
		k := tagsKey(p)
		if _, ok := byTags[k]; !ok {
			order = append(order, k)
		}
		byTags[k] = append(byTags[k], p)
	}
	bestKey := order[0]
	for _, k := range order[1:] {
		if len(byTags[k]) > len(byTags[bestKey]) {
			bestKey = k
		}
	}
	groupPaths := byTags[bestKey]
	merged := make(dom.CompactPath, len(groupPaths[0]))
	copy(merged, groupPaths[0])
	for i := range merged {
		counts := make([]int, 0, len(groupPaths))
		for _, p := range groupPaths {
			counts = append(counts, p[i].SBefore)
		}
		sort.Ints(counts)
		merged[i].SBefore = counts[len(counts)/2]
	}
	return merged
}

func tagsKey(p dom.CompactPath) string {
	k := ""
	for _, s := range p {
		k += "{" + s.Tag + "}"
	}
	return k
}

// uniformKey reports the dominant key of an int histogram and whether it
// accounts for at least 80% of the observations.
func uniformKey(m map[int]int) (int, bool) {
	total, best, bestN := 0, 0, -1
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		total += m[k]
		if m[k] > bestN {
			best, bestN = k, m[k]
		}
	}
	if total == 0 {
		return 0, false
	}
	return best, bestN*5 >= total*4
}

func keysByCount(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if m[keys[i]] != m[keys[j]] {
			return m[keys[i]] > m[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

func attrsByCount(m map[layout.TextAttr]int, total int) []layout.TextAttr {
	var out []layout.TextAttr
	for a, n := range m {
		if n*2 >= total { // present on at least half the instances
			out = append(out, a)
		}
	}
	sortAttrs(out)
	return out
}

func sortAttrs(attrs []layout.TextAttr) {
	sort.Slice(attrs, func(i, j int) bool {
		a, b := attrs[i], attrs[j]
		if a.Font != b.Font {
			return a.Font < b.Font
		}
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		if a.Style != b.Style {
			return a.Style < b.Style
		}
		return a.Color < b.Color
	})
}

// attrsEqual compares two attr sets for equality (both must be sorted).
func attrsEqual(a, b []layout.TextAttr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// attrsDisjoint reports whether no attribute of a appears in b.
func attrsDisjoint(a, b []layout.TextAttr) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return false
			}
		}
	}
	return true
}
