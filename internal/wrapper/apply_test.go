package wrapper

import (
	"testing"

	"mse/internal/layout"
	"mse/internal/mining"
)

func TestPartitionBySepExactSignatures(t *testing.T) {
	p := render(`<body><table>
	<tr><td><a href="/1">A</a><br>sa</td></tr>
	<tr><td><a href="/2">B</a><br>sb</td></tr>
	<tr><td><a href="/3">C</a><br>sc</td></tr>
	</table></body>`)
	roots := p.Forest(0, 2) // first record row
	if len(roots) != 1 {
		t.Fatalf("setup: record forest = %d roots", len(roots))
	}
	sep := Separator{StartSigs: []string{sigOf(t, p, 0, 2)}}
	blocks := partitionBySep(p, 0, 6, sep)
	if len(blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(blocks))
	}
	for i, b := range blocks {
		if b.Len() != 2 {
			t.Fatalf("block %d has %d lines", i, b.Len())
		}
	}
}

// sigOf extracts the root signature of the record covering [start, end).
func sigOf(t *testing.T, p *layout.Page, start, end int) string {
	t.Helper()
	roots := p.Forest(start, end)
	if len(roots) == 0 {
		t.Fatalf("no forest for [%d,%d)", start, end)
	}
	return mining.RootSignature(roots[0])
}

func TestPartitionBySepTagFallback(t *testing.T) {
	// Stored signature describes a 2-line li; the page has an unseen
	// 1-line li variant, recognized at the tag level.
	train := render(`<body><ul>
	<li><a href="/1">A</a><br>sa</li>
	<li><a href="/2">B</a><br>sb</li>
	</ul></body>`)
	sep := Separator{StartSigs: []string{sigOf(t, train, 0, 2)}}

	apply := render(`<body><ul>
	<li><a href="/1">A</a><br>sa</li>
	<li><a href="/2">B only title</a></li>
	<li><a href="/3">C</a><br>sc</li>
	</ul></body>`)
	blocks := partitionBySep(apply, 0, 5, sep)
	if len(blocks) != 3 {
		for _, b := range blocks {
			t.Logf("block [%d,%d)", b.Start, b.End)
		}
		t.Fatalf("blocks = %d, want 3 (unseen variant via tag fallback)", len(blocks))
	}
}

func TestPartitionBySepNoMatchReturnsNil(t *testing.T) {
	p := render(`<body><div>just a line</div><div>another line</div></body>`)
	sep := Separator{StartSigs: []string{"tr(td[a,])"}}
	if blocks := partitionBySep(p, 0, 2, sep); blocks != nil {
		t.Fatalf("mismatched separator should yield nil, got %d blocks", len(blocks))
	}
}

func TestPartitionBySepDeepens(t *testing.T) {
	// The range covers a container whose children carry the signatures.
	train := render(`<body><div class="r"><a href="/1">A</a><br>sa</div><p>footer</p></body>`)
	sep := Separator{StartSigs: []string{sigOf(t, train, 0, 2)}}

	apply := render(`<body><div><div class="wrap">
	<div class="r"><a href="/1">A</a><br>sa</div>
	<div class="r"><a href="/2">B</a><br>sb</div>
	</div></div></body>`)
	blocks := partitionBySep(apply, 0, 4, sep)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (one level deeper)", len(blocks))
	}
}

func TestBlocksFromStartsClamping(t *testing.T) {
	p := render(`<body><p>a</p><p>b</p><p>c</p><p>d</p></body>`)
	blocks := blocksFromStarts(p, 0, 4, []int{1, 3})
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if blocks[0].Start != 0 || blocks[0].End != 3 || blocks[1].End != 4 {
		t.Fatalf("clamping wrong: %v", blocks)
	}
	if got := blocksFromStarts(p, 0, 4, nil); got != nil {
		t.Fatalf("empty starts should yield nil")
	}
}

func TestSigTagAndTagsOf(t *testing.T) {
	if got := sigTag("tr(td[a,])"); got != "tr" {
		t.Fatalf("sigTag = %q", got)
	}
	if got := sigTag("plain"); got != "plain" {
		t.Fatalf("sigTag without children = %q", got)
	}
	tags := tagsOf([]string{"li(a[#text,])", "tr(td[])"})
	if !containsString(tags, "tr") || !containsString(tags, "li") {
		t.Fatalf("tagsOf = %v", tags)
	}
	if containsString(tagsOf([]string{"li(a[#text,])"}), "tr") {
		t.Fatalf("tagsOf false positive")
	}
	if tagsOf(nil) == nil {
		t.Fatalf("tagsOf(nil) must be non-nil (lazy-computation sentinel)")
	}
}
