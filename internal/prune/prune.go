// Package prune implements the query-aware DOM pruning pass of the
// compiled extraction path.  Before a leased page is rendered, one DFS
// over the raw DOM locates every subtree a compiled wrapper or family
// could match — the union of the engine's "touch sets" — and marks those
// candidate roots (dom.MarkCandidate) so the renderer can emit full
// content lines only where extraction can read them, skeleton lines
// (exact index / x / type, empty content) elsewhere, and stop rendering
// entirely once the last candidate region has closed.
//
// Soundness: the DFS reproduces dom.LocateCompactAll per target — the
// same incremental compact-path stack, the same candidate predicate, the
// same (distance, document order) ranking — so the per-target candidate
// lists handed to compiled wrappers are element-for-element the lists the
// interpreted path computes.  Subtrees are skipped only when no target's
// tag-path prefix still matches (a prefix mismatch can never recover at
// greater depth, and every candidate needs a full prefix match), so a
// skipped subtree provably contains no candidate of any target.  Marked
// regions are a superset of what extraction reads: marking extra
// candidates only makes the renderer emit more full lines, which are
// byte-identical to the unpruned ones.
package prune

import (
	"sync"
	"sync/atomic"

	"mse/internal/cancel"
	"mse/internal/dom"
)

// Spec describes one DOM target of a compiled engine wrapper.
type Spec struct {
	// Path is the compact tag path of the target: a wrapper or Type-1
	// family pref, or a Type-2 family pattern (pref + spref).
	Path dom.CompactPath
	// Wildcard selects the matching mode.  Negative: tolerant locate with
	// LocateCompactAll semantics — tags must match, sibling counts are
	// free, candidates ranked by (path distance, document order).
	// Non-negative: a Type-2 family pattern — compact paths must equal
	// Path step for step, tags everywhere and sibling counts at every
	// index except Wildcard (the family's free junction); candidates kept
	// in document order, exactly as Family.applyType2's preorder walk
	// produces them.
	Wildcard int
}

// Stats are cumulative pruning counters; exposed on /metrics by the
// extraction service.
type Stats struct {
	// Runs counts pruning passes (one per compiled extraction).
	Runs uint64 `json:"runs"`
	// NodesSkipped counts subtree roots the matching DFS did not descend
	// into — regions proven to contain no wrapper target.
	NodesSkipped uint64 `json:"nodes_skipped"`
	// LinesRendered counts content lines rendered in full.
	LinesRendered uint64 `json:"lines_rendered"`
	// LinesSkeleton counts skeleton lines (index/x/type only).
	LinesSkeleton uint64 `json:"lines_skeleton"`
	// Acquires / Reuses / Releases are matcher pool counters.
	Acquires uint64 `json:"acquires"`
	Reuses   uint64 `json:"reuses"`
	Releases uint64 `json:"releases"`
}

var stats struct {
	runs         atomic.Uint64
	nodesSkipped atomic.Uint64
	linesFull    atomic.Uint64
	linesSkel    atomic.Uint64
	acquires     atomic.Uint64
	reuses       atomic.Uint64
	releases     atomic.Uint64
}

// StatsSnapshot returns the current pruning counters.
func StatsSnapshot() Stats {
	return Stats{
		Runs:          stats.runs.Load(),
		NodesSkipped:  stats.nodesSkipped.Load(),
		LinesRendered: stats.linesFull.Load(),
		LinesSkeleton: stats.linesSkel.Load(),
		Acquires:      stats.acquires.Load(),
		Reuses:        stats.reuses.Load(),
		Releases:      stats.releases.Load(),
	}
}

// AddRendered feeds the renderer's per-page full/skeleton line counts into
// the cumulative counters (called by core after a pruned render).
func AddRendered(full, skeleton int) {
	stats.linesFull.Add(uint64(full))
	stats.linesSkel.Add(uint64(skeleton))
}

// Result is the outcome of one pruning pass: per-spec candidate lists plus
// the number of outermost marked regions (the renderer's early-stop
// budget).  Release returns the pooled matcher state; the candidate
// slices become invalid afterwards.
type Result struct {
	m *matcher
}

// Cands returns the candidate nodes of spec i: distance-ranked for
// tolerant specs, document order for pattern specs.
func (r *Result) Cands(i int) []*dom.Node { return r.m.cands[i] }

// Outer reports how many outermost marked regions the pass produced; the
// renderer stops once that many marked regions have closed.
func (r *Result) Outer() int { return r.m.outer }

// Release recycles the matcher.  Safe to call once; the Result must not
// be used afterwards.
func (r *Result) Release() {
	if r.m == nil {
		return
	}
	m := r.m
	r.m = nil
	m.release()
}

// specState is the per-spec incremental matching state.
type specState struct {
	// okDepth is the length of the longest stack prefix whose tags match
	// the spec's path, exactly as in dom.LocateCompactAll.
	okDepth int
}

// cand is a tolerant-spec candidate pending the final (distance, docN)
// insertion sort.
type cand struct {
	n    *dom.Node
	d    float64
	docN int
}

type cstep struct {
	tag     string
	sBefore int
}

// matcher is the pooled DFS state.
type matcher struct {
	specs  []Spec
	states []specState
	cands  [][]*dom.Node
	ranked [][]cand // scratch for tolerant specs, indexed like cands
	stack  []cstep

	docN      int
	outer     int
	candAbove int
	skipped   uint64

	tok   *cancel.Token
	steps int
}

var matcherPool = sync.Pool{New: func() any { return new(matcher) }}

// checkpointStride mirrors the renderer's cancellation poll cadence.
const checkpointStride = 256

// Run locates every spec's candidates in one DFS over doc, marks the
// candidate roots with dom.MarkCandidate and returns the per-spec lists.
// tok, when non-nil, is polled every few hundred nodes; cancellation
// unwinds with cancel.Signal after returning the pooled state, exactly
// like the render walk.  Marks stay on the tree until its arena is
// released (heap-backed trees are parsed fresh per extraction), so a
// pruned render must run on the same doc before the lease is released.
func Run(doc *dom.Node, specs []Spec, tok *cancel.Token) *Result {
	m := matcherPool.Get().(*matcher)
	stats.acquires.Add(1)
	if m.stack != nil {
		stats.reuses.Add(1)
	}
	defer func() {
		if r := recover(); r != nil {
			m.release()
			panic(r)
		}
	}()
	m.reset(specs, tok)
	tok.Check()
	m.visit(doc, 0)
	m.finish()
	stats.runs.Add(1)
	stats.nodesSkipped.Add(m.skipped)
	return &Result{m: m}
}

func (m *matcher) reset(specs []Spec, tok *cancel.Token) {
	m.specs = specs
	if cap(m.states) < len(specs) {
		m.states = make([]specState, len(specs))
		m.cands = make([][]*dom.Node, len(specs))
		m.ranked = make([][]cand, len(specs))
	}
	m.states = m.states[:len(specs)]
	m.cands = m.cands[:len(specs)]
	m.ranked = m.ranked[:len(specs)]
	for i := range specs {
		m.states[i] = specState{}
		m.cands[i] = m.cands[i][:0]
		m.ranked[i] = m.ranked[i][:0]
	}
	if m.stack == nil {
		m.stack = make([]cstep, 0, 32)
	}
	m.stack = m.stack[:0]
	m.docN = 0
	m.outer = 0
	m.candAbove = 0
	m.skipped = 0
	m.tok = tok
	m.steps = 0
}

func (m *matcher) release() {
	for i := range m.cands {
		clear(m.cands[i])
		m.cands[i] = m.cands[i][:0]
		clear(m.ranked[i])
		m.ranked[i] = m.ranked[i][:0]
	}
	m.specs = nil
	m.stack = m.stack[:0]
	m.tok = nil
	stats.releases.Add(1)
	matcherPool.Put(m)
}

func (m *matcher) checkpoint() {
	if m.tok == nil {
		return
	}
	if m.steps++; m.steps >= checkpointStride {
		m.steps = 0
		m.tok.Check()
	}
}

// distanceTo computes dom.PathDistance(current compact path, target)
// knowing the tag prefixes match — the same integer arithmetic as
// LocateCompactAll's distanceTo, over the shared stack plus the optional
// trailing synthetic {"", s} entry.
func (m *matcher) distanceTo(target dom.CompactPath, s int) float64 {
	sum, ta, tb := 0, 0, 0
	for i, st := range m.stack {
		d := st.sBefore - target[i].SBefore
		if d < 0 {
			d = -d
		}
		sum += d
		ta += st.sBefore
		tb += target[i].SBefore
	}
	if s > 0 {
		d := s - target[len(m.stack)].SBefore
		if d < 0 {
			d = -d
		}
		sum += d
		ta += s
		tb += target[len(m.stack)].SBefore
	}
	maxTotal := ta
	if tb > maxTotal {
		maxTotal = tb
	}
	if maxTotal == 0 {
		return 0
	}
	return float64(sum) / float64(maxTotal)
}

// patternMatches reports whether the current node (compact path = stack,
// plus {"", s} when s > 0) equals the pattern with a free sibling count at
// the wildcard index.  Lengths and tag equality have been checked by the
// caller via okDepth; only the sibling counts remain.
func (m *matcher) patternMatches(sp *Spec, s int) bool {
	for i := range m.stack {
		if i != sp.Wildcard && m.stack[i].sBefore != sp.Path[i].SBefore {
			return false
		}
	}
	if s > 0 {
		last := len(m.stack)
		if sp.Wildcard != last && sp.Path[last].SBefore != s {
			return false
		}
	}
	return true
}

// mark flags n as a candidate root and counts it as an outermost region
// when no ancestor on the DFS path is itself marked.
func (m *matcher) mark(n *dom.Node) {
	if n.Mark != 0 {
		return
	}
	n.Mark = dom.MarkCandidate
	if m.candAbove == 0 {
		m.outer++
	}
}

func (m *matcher) visit(n *dom.Node, s int) {
	m.docN++
	m.checkpoint()
	depth := len(m.stack)
	// Candidate predicate per spec, identical to LocateCompactAll: the
	// node's compact path is the stacked C steps plus, when S steps trail
	// the last C step, the synthetic {"", s} entry Compact emits.
	for i := range m.specs {
		sp := &m.specs[i]
		if m.states[i].okDepth != depth {
			continue
		}
		var matched bool
		if s == 0 {
			matched = len(sp.Path) == depth
		} else {
			matched = len(sp.Path) == depth+1 && sp.Path[depth].Tag == ""
		}
		if !matched {
			continue
		}
		if sp.Wildcard >= 0 {
			if m.patternMatches(sp, s) {
				m.cands[i] = append(m.cands[i], n)
				m.mark(n)
			}
		} else {
			m.ranked[i] = append(m.ranked[i], cand{n: n, d: m.distanceTo(sp.Path, s), docN: m.docN})
			m.mark(n)
		}
	}
	if n.FirstChild == nil {
		return
	}
	// Push n's C step and advance each spec whose prefix still matches.
	tag := n.Label()
	m.stack = append(m.stack, cstep{tag: tag, sBefore: s})
	descend := false
	for i := range m.specs {
		st := &m.states[i]
		if st.okDepth == depth && st.okDepth < len(m.specs[i].Path) && m.specs[i].Path[st.okDepth].Tag == tag {
			st.okDepth++
		}
		// A candidate below needs a full tag-prefix match and a target at
		// least as long as the stack (the stack only ever grows downward).
		if st.okDepth == depth+1 && len(m.specs[i].Path) >= depth+1 {
			descend = true
		}
	}
	if descend {
		cs := 0
		marked := n.Mark != 0
		if marked {
			m.candAbove++
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			m.visit(c, cs)
			cs++
		}
		if marked {
			m.candAbove--
		}
	} else {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			m.skipped++
		}
	}
	m.stack = m.stack[:len(m.stack)-1]
	for i := range m.states {
		if m.states[i].okDepth > depth {
			m.states[i].okDepth = depth
		}
	}
}

// finish ranks each tolerant spec's candidates by (distance, document
// order) with the same insertion sort as LocateCompactAll.  Skipped
// subtrees never contain candidates, so relative document order among
// candidates — and therefore the sorted lists — matches the full walk.
func (m *matcher) finish() {
	for i := range m.specs {
		if m.specs[i].Wildcard >= 0 {
			continue
		}
		cs := m.ranked[i]
		for j := 1; j < len(cs); j++ {
			c := cs[j]
			k := j - 1
			for k >= 0 && (cs[k].d > c.d || (cs[k].d == c.d && cs[k].docN > c.docN)) {
				cs[k+1] = cs[k]
				k--
			}
			cs[k+1] = c
		}
		out := m.cands[i][:0]
		for _, c := range cs {
			out = append(out, c.n)
		}
		m.cands[i] = out
	}
}
