package scenario

import (
	"encoding/json"
	"math"
	"testing"

	"mse/internal/synth"
)

// bodyFromTruth serializes a ground truth as the /extract wire form — a
// perfect extraction of the page.
func bodyFromTruth(t *testing.T, gt synth.GroundTruth) []byte {
	t.Helper()
	eb := extractedBody{Engine: "e"}
	for _, s := range gt.Sections {
		es := extractedSection{Heading: s.Heading}
		for _, r := range s.Records {
			es.Records = append(es.Records, extractedRecord{Lines: r.Lines})
		}
		eb.Sections = append(eb.Sections, es)
	}
	data, err := json.Marshal(eb)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestScorePerfectExtraction: a body reproducing the ground truth exactly
// scores recall 1, precision 1, empty rate 0.
func TestScorePerfectExtraction(t *testing.T) {
	e := synth.NewEngine(21, 2, true)
	gp := e.Page(3)
	res, err := scorePage(gp.Truth, bodyFromTruth(t, gp.Truth))
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Fatal("perfect extraction flagged empty")
	}
	if !approx(res.Score.RecallTotal(), 1) || !approx(res.Score.PrecisionTotal(), 1) {
		t.Fatalf("section recall/precision = %v/%v, want 1/1",
			res.Score.RecallTotal(), res.Score.PrecisionTotal())
	}
	if !approx(res.Score.RecordRecall(), 1) || !approx(res.Score.RecordPrecision(), 1) {
		t.Fatalf("record recall/precision = %v/%v, want 1/1",
			res.Score.RecordRecall(), res.Score.RecordPrecision())
	}
}

// TestScoreDriftedZeroRecall: after a template cutover the stale wrapper
// extracts nothing — the score must be a zero-recall empty page, the
// signature the drift phase of a scenario looks for.
func TestScoreDriftedZeroRecall(t *testing.T) {
	e := synth.NewEngine(21, 2, true)
	gp := e.Drifted().Page(40)
	res, err := scorePage(gp.Truth, []byte(`{"engine":"e","sections":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty {
		t.Fatal("empty extraction with non-empty truth not flagged empty")
	}
	if !approx(res.Score.RecallTotal(), 0) || !approx(res.Score.RecordRecall(), 0) {
		t.Fatalf("recall = %v/%v, want 0/0", res.Score.RecallTotal(), res.Score.RecordRecall())
	}
}

// TestScorePostRelearnRecovery: the windowed aggregate over a drift-then-
// heal sequence shows exact recall, empty-rate and recovery numbers.
func TestScorePostRelearnRecovery(t *testing.T) {
	e := synth.NewEngine(21, 2, true)
	drifted := e.Drifted()
	var agg EngineScore
	// 3 drifted pages extracted by the stale wrapper: nothing comes out.
	for q := 40; q < 43; q++ {
		gp := drifted.Page(q)
		res, err := scorePage(gp.Truth, []byte(`{"engine":"e","sections":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		agg.add(res)
	}
	// 3 post-relearn pages: the healed wrapper extracts perfectly.
	for q := 43; q < 46; q++ {
		gp := drifted.Page(q)
		res, err := scorePage(gp.Truth, bodyFromTruth(t, gp.Truth))
		if err != nil {
			t.Fatal(err)
		}
		agg.add(res)
	}
	if agg.Pages != 6 || agg.Empty != 3 {
		t.Fatalf("pages/empty = %d/%d, want 6/3", agg.Pages, agg.Empty)
	}
	if !approx(agg.EmptyRate, 0.5) {
		t.Fatalf("empty rate = %v, want 0.5", agg.EmptyRate)
	}
	// Section recall is (recovered sections)/(all truth sections): compute
	// the exact expectation from the truth counts.
	truthSecs, truthRecs := 0, 0
	recSecs, recRecs := 0, 0
	for q := 40; q < 46; q++ {
		gt := drifted.Page(q).Truth
		truthSecs += len(gt.Sections)
		truthRecs += gt.TotalRecords()
		if q >= 43 {
			recSecs += len(gt.Sections)
			recRecs += gt.TotalRecords()
		}
	}
	wantSR := float64(recSecs) / float64(truthSecs)
	if !approx(agg.SectionRecall, wantSR) {
		t.Fatalf("section recall = %v, want %v", agg.SectionRecall, wantSR)
	}
	wantRR := float64(recRecs) / float64(truthRecs)
	if !approx(agg.RecordRecall, wantRR) {
		t.Fatalf("record recall = %v, want %v", agg.RecordRecall, wantRR)
	}
	// Precision only judges what was extracted — everything extracted in
	// the recovery half was correct.
	if !approx(agg.RecordPrecision, 1) || !approx(agg.SectionPrecision, 1) {
		t.Fatalf("precision = %v/%v, want 1/1", agg.SectionPrecision, agg.RecordPrecision)
	}
}

// TestScorePartialSection: dropping one whole section from the extraction
// moves recall by exactly that section's share.
func TestScorePartialSection(t *testing.T) {
	e := synth.NewEngine(3, 4, true)
	var gp *synth.GenPage
	for q := 0; q < 20; q++ {
		p := e.Page(q)
		if len(p.Truth.Sections) >= 2 {
			gp = p
			break
		}
	}
	if gp == nil {
		t.Skip("engine never produced a 2-section page")
	}
	full := gp.Truth
	cut := synth.GroundTruth{Sections: full.Sections[:len(full.Sections)-1]}
	res, err := scorePage(full, bodyFromTruth(t, cut))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(len(cut.Sections)) / float64(len(full.Sections))
	if !approx(res.Score.RecallTotal(), want) {
		t.Fatalf("section recall = %v, want %v", res.Score.RecallTotal(), want)
	}
	if !approx(res.Score.PrecisionTotal(), 1) {
		t.Fatalf("precision = %v, want 1", res.Score.PrecisionTotal())
	}
	if res.Empty {
		t.Fatal("non-empty extraction flagged empty")
	}
}

func TestParseSectionsRejectsBadBody(t *testing.T) {
	if _, err := parseSections([]byte(`not json`)); err == nil {
		t.Fatal("malformed body accepted")
	}
}
