package scenario

import (
	"encoding/json"
	"fmt"

	"mse/internal/core"
	"mse/internal/eval"
	"mse/internal/synth"
)

// extractedRecord / extractedSection / extractedBody mirror the serve
// wire form (the subset scoring needs).  The runner is a plain HTTP
// client: it decodes the public JSON contract rather than importing the
// server's internal types.
type extractedRecord struct {
	Lines []string `json:"lines"`
	Links []string `json:"links"`
}

type extractedSection struct {
	Heading string            `json:"heading"`
	Records []extractedRecord `json:"records"`
}

type extractedBody struct {
	Engine   string             `json:"engine"`
	Sections []extractedSection `json:"sections"`
}

// parseSections decodes an /extract response body into the pipeline's
// section shape so eval's marker-based scorer can judge it.
func parseSections(body []byte) ([]*core.Section, error) {
	var eb extractedBody
	if err := json.Unmarshal(body, &eb); err != nil {
		return nil, fmt.Errorf("scenario: decoding extract response: %w", err)
	}
	secs := make([]*core.Section, 0, len(eb.Sections))
	for _, s := range eb.Sections {
		cs := &core.Section{Heading: s.Heading}
		for _, r := range s.Records {
			cs.Records = append(cs.Records, core.Record{Lines: r.Lines, Links: r.Links})
		}
		secs = append(secs, cs)
	}
	return secs, nil
}

// PageResult is one scored extraction.
type PageResult struct {
	Sections int
	Records  int
	// TruthSections and TruthRecords are the ground-truth population the
	// page carried.
	TruthSections int
	TruthRecords  int
	Score         eval.PageScore
	// Empty marks a page where the truth had sections but extraction
	// produced none — the silent-failure signature of template drift.
	Empty bool
}

// scorePage judges one served page against its ground truth.
func scorePage(gt synth.GroundTruth, body []byte) (PageResult, error) {
	secs, err := parseSections(body)
	if err != nil {
		return PageResult{}, err
	}
	records := 0
	for _, s := range secs {
		records += len(s.Records)
	}
	return PageResult{
		Sections:      len(secs),
		Records:       records,
		TruthSections: len(gt.Sections),
		TruthRecords:  gt.TotalRecords(),
		Score:         eval.ScorePage(gt, secs),
		Empty:         len(secs) == 0 && len(gt.Sections) > 0,
	}, nil
}

// EngineScore aggregates scored pages for one engine over some span (a
// window, a phase, or the whole run).
type EngineScore struct {
	Engine string `json:"engine"`
	Pages  int    `json:"pages"`
	Empty  int    `json:"empty"`
	// Section-level totals (eval's Tables 1–2 semantics: partially
	// correct sections count).
	SectionRecall    float64 `json:"section_recall"`
	SectionPrecision float64 `json:"section_precision"`
	// Record-level totals against the FULL ground truth — unlike eval's
	// Table 3 numbers, which judge records only inside correctly
	// extracted sections, these drop to zero when extraction misses
	// whole pages, which is exactly the drift signature a scenario
	// watches for.
	RecordRecall    float64 `json:"record_recall"`
	RecordPrecision float64 `json:"record_precision"`
	EmptyRate       float64 `json:"empty_rate"`

	sum eval.PageScore
	// truthRecords / extractedRecords are the full-population record
	// denominators.
	truthRecords     int
	extractedRecords int
}

// add accumulates one page.
func (s *EngineScore) add(r PageResult) {
	s.Pages++
	if r.Empty {
		s.Empty++
	}
	s.sum.Add(r.Score)
	s.truthRecords += r.TruthRecords
	s.extractedRecords += r.Records
	s.refresh()
}

// refresh recomputes the derived ratios from the accumulated counts.
func (s *EngineScore) refresh() {
	s.SectionRecall = s.sum.RecallTotal()
	s.SectionPrecision = s.sum.PrecisionTotal()
	s.RecordRecall = ratio(s.sum.RecCorrect, s.truthRecords)
	s.RecordPrecision = ratio(s.sum.RecCorrect, s.extractedRecords)
	if s.Pages > 0 {
		s.EmptyRate = float64(s.Empty) / float64(s.Pages)
	}
}

// ratio returns a/b, and 0 when b is 0 (no denominator, no credit).
func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
