package scenario

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"mse/internal/synth"
)

// RunOpts are the operational knobs of a replay — everything about *how*
// the scenario's traffic reaches the server, none of it part of the
// scenario's identity (the digest covers what was sent and what came
// back, not how fast).
type RunOpts struct {
	// Target is the mse-serve base URL, e.g. "http://localhost:8080".
	Target string
	// Rate caps requests per second; 0 means unthrottled.
	Rate float64
	// Concurrency is the number of in-flight requests per wave (default
	// 1).  The schedule digest is deterministic at any concurrency, but
	// server-side drift-verdict timing — and therefore until_drifted
	// phase lengths — is only guaranteed reproducible at concurrency 1.
	Concurrency int
	// MaxDuration truncates the run; a truncated run fails its report.
	// 0 means no cap.
	MaxDuration time.Duration
	// Window is the score time-series window in pages per engine
	// (default 20).
	Window int
	// Events, when non-nil, receives the canonical event lines the
	// digest is computed over — diff two runs' event files to localize a
	// determinism break.
	Events io.Writer
	// Client overrides the HTTP client (tests inject a Transport bound
	// to an in-process handler).
	Client *http.Client
	// PollInterval is the await_swap /relearnz polling cadence (default
	// 25ms).
	PollInterval time.Duration
}

func (o *RunOpts) defaults() error {
	if o.Target == "" {
		return fmt.Errorf("scenario: missing target URL")
	}
	if _, err := url.Parse(o.Target); err != nil {
		return fmt.Errorf("scenario: bad target URL: %w", err)
	}
	if o.Rate < 0 {
		return fmt.Errorf("scenario: negative rate")
	}
	if o.Concurrency == 0 {
		o.Concurrency = 1
	}
	if o.Concurrency < 1 {
		return fmt.Errorf("scenario: concurrency %d < 1", o.Concurrency)
	}
	if o.Window == 0 {
		o.Window = 20
	}
	if o.Window < 1 {
		return fmt.Errorf("scenario: window %d < 1", o.Window)
	}
	if o.MaxDuration < 0 {
		return fmt.Errorf("scenario: negative max duration")
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	return nil
}

// runner is the mutable state of one replay.
type runner struct {
	cfg   *Config
	pop   *Population
	opts  RunOpts
	rng   *rand.Rand
	ctx   context.Context
	start time.Time

	digest hash.Hash
	report *Report

	// windows accumulates the current time-series window per engine.
	windows map[string]*window
	// phaseScores accumulates per-engine scores for the current phase.
	phaseScores map[string]*EngineScore
	// swapBase is each engine's relearn swap count at run start.
	swapBase map[string]int64

	reqCount int
	deadline time.Time
}

type window struct {
	from  int
	score EngineScore
}

// Run replays the scenario against a live server and returns the scored
// report.  The error is non-nil only for operational failures (server
// unreachable, malformed responses, truncation); threshold breaches are
// reported via Report.Breaches with a nil error so the caller can print
// the report before deciding the exit code.
func Run(ctx context.Context, cfg *Config, opts RunOpts) (*Report, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	pop, err := Materialize(cfg)
	if err != nil {
		return nil, err
	}
	r := &runner{
		cfg:  cfg,
		pop:  pop,
		opts: opts,
		// The traffic stream is its own seeded generator, decoupled from
		// the page-content seeds, so the mix is reproducible per scenario.
		rng:         rand.New(rand.NewSource(cfg.Seed ^ 0x6c6f616467656e)), // "loadgen"
		ctx:         ctx,
		start:       time.Now(),
		digest:      sha256.New(),
		report:      &Report{Scenario: cfg.Name, Seed: cfg.Seed},
		windows:     map[string]*window{},
		phaseScores: map[string]*EngineScore{},
		swapBase:    map[string]int64{},
	}
	if opts.MaxDuration > 0 {
		r.deadline = r.start.Add(opts.MaxDuration)
	}
	if err := r.captureSwapBaseline(); err != nil {
		return nil, err
	}
	runErr := r.runPhases()
	r.finish()
	if runErr != nil {
		return r.report, runErr
	}
	return r.report, nil
}

// event appends one canonical line to the digest (and the event log).
func (r *runner) event(format string, args ...any) {
	line := fmt.Sprintf(format+"\n", args...)
	r.digest.Write([]byte(line))
	if r.opts.Events != nil {
		io.WriteString(r.opts.Events, line)
	}
}

func (r *runner) captureSwapBaseline() error {
	rz, err := r.getRelearnz()
	if err != nil {
		return fmt.Errorf("scenario: reading /relearnz baseline: %w", err)
	}
	for _, e := range r.pop.Engines {
		r.swapBase[e.Name] = rz[e.Name]
	}
	return nil
}

func (r *runner) runPhases() error {
	for i := range r.cfg.Phases {
		p := &r.cfg.Phases[i]
		pr := PhaseReport{Name: p.Name}
		var err error
		switch {
		case p.Pages > 0:
			pr.Kind = "pages"
			err = r.runPages(p, &pr)
		case p.UntilDrifted != nil:
			pr.Kind = "until_drifted"
			err = r.runUntilDrifted(p, &pr)
		case p.AwaitSwap != nil:
			pr.Kind = "await_swap"
			err = r.runAwaitSwap(p, &pr)
		}
		r.flushPhase(p.Name, &pr)
		r.report.Phases = append(r.report.Phases, pr)
		if err != nil {
			return err
		}
	}
	return nil
}

// flushPhase closes every open series window and folds the phase scores
// into the report.
func (r *runner) flushPhase(phase string, pr *PhaseReport) {
	for _, e := range r.pop.Engines {
		r.flushWindow(phase, e.Name)
	}
	pr.Engines = sortedScores(r.phaseScores)
	r.phaseScores = map[string]*EngineScore{}
	r.event("phase %s kind=%s requests=%d pages=%d", phase, pr.Kind, pr.Requests, pr.PagesServed)
}

func (r *runner) flushWindow(phase, engine string) {
	w := r.windows[engine]
	if w == nil || w.score.Pages == 0 {
		return
	}
	e := r.pop.byName(engine)
	w.score.Engine = engine
	r.report.Series = append(r.report.Series, TimePoint{
		Phase:       phase,
		Engine:      engine,
		FromPage:    w.from,
		ToPage:      e.next,
		EngineScore: w.score,
	})
	delete(r.windows, engine)
}

// throttle blocks until the rate limiter admits the next request; it
// returns false when the run deadline has passed.
func (r *runner) throttle() bool {
	if !r.deadline.IsZero() && time.Now().After(r.deadline) {
		return false
	}
	if r.opts.Rate > 0 {
		next := r.start.Add(time.Duration(float64(r.reqCount) / r.opts.Rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-r.ctx.Done():
				return false
			}
		}
	}
	return r.ctx.Err() == nil
}

// assignment is one pre-drawn page send.
type assignment struct {
	engine *PopEngine
	page   int
	gp     *synth.GenPage
	batch  bool
	// outcome, filled by the HTTP wave.
	status int
	body   []byte
	err    error
}

// drawWave pre-draws up to n assignments — the deterministic half of a
// wave, separated from the HTTP half so concurrency cannot perturb the
// traffic stream.
func (r *runner) drawWave(n int) []*assignment {
	var wave []*assignment
	for len(wave) < n {
		if r.cfg.Traffic.BatchRatio > 0 && r.rng.Float64() < r.cfg.Traffic.BatchRatio {
			// Batch items draw distinct engines: at most one page per
			// engine per batch, so the server's per-engine quality
			// observations stay ordered even though batch items extract
			// in parallel server-side.
			k := r.cfg.Traffic.BatchSize
			if k > len(r.pop.Engines) {
				k = len(r.pop.Engines)
			}
			picked := map[string]bool{}
			var items []*assignment
			for tries := 0; len(items) < k && tries < 64; tries++ {
				e := r.pop.pick(r.rng.Float64())
				if picked[e.Name] {
					continue
				}
				picked[e.Name] = true
				page, gp := e.nextPage()
				items = append(items, &assignment{engine: e, page: page, gp: gp, batch: true})
			}
			wave = append(wave, items...)
		} else {
			e := r.pop.pick(r.rng.Float64())
			page, gp := e.nextPage()
			wave = append(wave, &assignment{engine: e, page: page, gp: gp})
		}
	}
	return wave
}

// sendWave performs the HTTP half: batch-marked assignments drawn
// together coalesce into batch requests, everything else goes to
// /extract.  Requests within the wave run concurrently up to the
// configured concurrency; results land on the assignments, which are
// scored afterwards in draw order.
func (r *runner) sendWave(wave []*assignment, pr *PhaseReport) error {
	// Group consecutive batch assignments into one batch request each.
	type call struct {
		items []*assignment
	}
	var calls []call
	for i := 0; i < len(wave); {
		if wave[i].batch {
			j := i
			for j < len(wave) && wave[j].batch {
				j++
			}
			calls = append(calls, call{items: wave[i:j]})
			i = j
		} else {
			calls = append(calls, call{items: wave[i : i+1]})
			i++
		}
	}
	sem := make(chan struct{}, r.opts.Concurrency)
	done := make(chan struct{})
	for i := range calls {
		c := calls[i]
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; done <- struct{}{} }()
			if len(c.items) == 1 && !c.items[0].batch {
				r.sendSingle(c.items[0])
			} else {
				r.sendBatch(c.items)
			}
		}()
	}
	for range calls {
		<-done
	}
	pr.Requests += len(calls)
	r.reqCount += len(calls)
	// Score in draw order: the digest must not depend on completion order.
	for _, a := range wave {
		if err := r.scoreAssignment(a, pr); err != nil {
			return err
		}
	}
	return nil
}

func (r *runner) sendSingle(a *assignment) {
	u := fmt.Sprintf("%s/extract?engine=%s&q=%s",
		r.opts.Target, url.QueryEscape(a.engine.Name), url.QueryEscape(strings.Join(a.gp.Query, " ")))
	req, err := http.NewRequestWithContext(r.ctx, http.MethodPost, u, strings.NewReader(a.gp.HTML))
	if err != nil {
		a.err = err
		return
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		a.err = err
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		a.err = err
		return
	}
	a.status, a.body = resp.StatusCode, body
}

// batchWireItem / batchWireResult mirror the batch endpoint's public
// JSON contract.
type batchWireItem struct {
	Engine string `json:"engine"`
	Query  string `json:"q,omitempty"`
	HTML   string `json:"html"`
}

type batchWireResult struct {
	Status int             `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (r *runner) sendBatch(items []*assignment) {
	wire := struct {
		Items []batchWireItem `json:"items"`
	}{}
	for _, a := range items {
		wire.Items = append(wire.Items, batchWireItem{
			Engine: a.engine.Name,
			Query:  strings.Join(a.gp.Query, " "),
			HTML:   a.gp.HTML,
		})
	}
	body, err := json.Marshal(wire)
	if err != nil {
		for _, a := range items {
			a.err = err
		}
		return
	}
	req, err := http.NewRequestWithContext(r.ctx, http.MethodPost,
		r.opts.Target+"/extract/batch", bytes.NewReader(body))
	if err == nil {
		var resp *http.Response
		resp, err = r.opts.Client.Do(req)
		if err == nil {
			defer resp.Body.Close()
			var rb []byte
			rb, err = io.ReadAll(resp.Body)
			if err == nil {
				if resp.StatusCode != http.StatusOK {
					for _, a := range items {
						a.status = resp.StatusCode
					}
					return
				}
				var out struct {
					Results []batchWireResult `json:"results"`
				}
				if err = json.Unmarshal(rb, &out); err == nil {
					if len(out.Results) != len(items) {
						err = fmt.Errorf("batch returned %d results for %d items",
							len(out.Results), len(items))
					} else {
						for i, a := range items {
							a.status = out.Results[i].Status
							a.body = out.Results[i].Result
						}
						return
					}
				}
			}
		}
	}
	for _, a := range items {
		a.err = err
	}
}

// scoreAssignment scores one completed send, updates windows and phase
// scores, and emits the canonical event line.
func (r *runner) scoreAssignment(a *assignment, pr *PhaseReport) error {
	kind := "s"
	if a.batch {
		kind = "b"
	}
	if a.err != nil {
		return fmt.Errorf("scenario: engine %s page %d: %w", a.engine.Name, a.page, a.err)
	}
	if a.status < 200 || a.status > 299 {
		r.report.Non2xx++
		r.event("p %s %s page=%d kind=%s status=%d", pr.Name, a.engine.Name, a.page, kind, a.status)
		return nil
	}
	res, err := scorePage(a.gp.Truth, a.body)
	if err != nil {
		return fmt.Errorf("scenario: engine %s page %d: %w", a.engine.Name, a.page, err)
	}
	pr.PagesServed++
	r.report.TotalPages++
	w := r.windows[a.engine.Name]
	if w == nil {
		w = &window{from: a.page}
		r.windows[a.engine.Name] = w
	}
	w.score.add(res)
	ps := r.phaseScores[a.engine.Name]
	if ps == nil {
		ps = &EngineScore{}
		r.phaseScores[a.engine.Name] = ps
	}
	ps.add(res)
	r.event("p %s %s page=%d kind=%s status=%d sec=%d rec=%d sr=%.4f rr=%.4f empty=%t",
		pr.Name, a.engine.Name, a.page, kind, a.status,
		res.Sections, res.Records, res.Score.RecallTotal(),
		ratio(res.Score.RecCorrect, res.TruthRecords), res.Empty)
	if w.score.Pages >= r.opts.Window {
		r.flushWindow(pr.Name, a.engine.Name)
	}
	return nil
}

func (r *runner) runPages(p *PhaseConfig, pr *PhaseReport) error {
	served := 0
	for served < p.Pages {
		if !r.throttle() {
			return fmt.Errorf("scenario: phase %q truncated (deadline or cancellation)", p.Name)
		}
		n := r.opts.Concurrency
		if rem := p.Pages - served; n > rem {
			n = rem
		}
		wave := r.drawWave(n)
		if err := r.sendWave(wave, pr); err != nil {
			return err
		}
		served += len(wave)
	}
	pr.Outcome = "completed"
	return nil
}

// runUntilDrifted serves weighted traffic in strict lockstep (one
// request at a time regardless of configured concurrency — the phase's
// whole point is observing the server's verdict transition at a
// deterministic page) until the target engine is DRIFTED, or until a
// relearn swap proves the drift was already detected and healed.
func (r *runner) runUntilDrifted(p *PhaseConfig, pr *PhaseReport) error {
	target := p.UntilDrifted.Engine
	for served := 0; served < p.UntilDrifted.MaxPages; served++ {
		if !r.throttle() {
			return fmt.Errorf("scenario: phase %q truncated (deadline or cancellation)", p.Name)
		}
		wave := r.drawWave(1)
		if err := r.sendWave(wave, pr); err != nil {
			return err
		}
		verdict, err := r.getVerdict(target)
		if err != nil {
			return err
		}
		if verdict == "DRIFTED" {
			pr.Outcome = "drift detected"
			return nil
		}
		// A very fast heal can reset the verdict before the poll sees it;
		// a swap past the baseline is equally conclusive.  Report the same
		// outcome either way: which of the two signals the poll happens to
		// observe first is a wall-clock race, not a property of the run.
		rz, err := r.getRelearnz()
		if err != nil {
			return err
		}
		if rz[target] > r.swapBase[target] {
			pr.Outcome = "drift detected"
			return nil
		}
	}
	pr.Outcome = "max_pages exhausted"
	return fmt.Errorf("scenario: phase %q: engine %s not DRIFTED after %d pages",
		p.Name, target, p.UntilDrifted.MaxPages)
}

// runAwaitSwap sends no traffic: it polls /relearnz until the engine's
// swap count rises past its run-start baseline.  This is the barrier
// that absorbs background-relearn wall-clock nondeterminism — traffic
// resumes only once the hot swap has happened, so the next phase always
// runs against the healed wrapper.
func (r *runner) runAwaitSwap(p *PhaseConfig, pr *PhaseReport) error {
	target := p.AwaitSwap.Engine
	deadline := time.Now().Add(p.AwaitSwap.Timeout())
	for {
		rz, err := r.getRelearnz()
		if err != nil {
			return err
		}
		if rz[target] > r.swapBase[target] {
			pr.Outcome = "swap observed"
			return nil
		}
		if time.Now().After(deadline) {
			pr.Outcome = "timeout"
			return fmt.Errorf("scenario: phase %q: no wrapper swap for %s within %s",
				p.Name, target, p.AwaitSwap.Timeout())
		}
		select {
		case <-time.After(r.opts.PollInterval):
		case <-r.ctx.Done():
			return r.ctx.Err()
		}
	}
}

// getVerdict reads the engine's drift verdict off /driftz.
func (r *runner) getVerdict(engine string) (string, error) {
	var out struct {
		Engines []struct {
			Engine  string `json:"engine"`
			Verdict string `json:"verdict"`
		} `json:"engines"`
	}
	if err := r.getJSON("/driftz", &out); err != nil {
		return "", err
	}
	for _, e := range out.Engines {
		if e.Engine == engine {
			return e.Verdict, nil
		}
	}
	return "", nil
}

// getRelearnz reads per-engine swap counts off /relearnz.
func (r *runner) getRelearnz() (map[string]int64, error) {
	var out struct {
		Engines []struct {
			Engine string `json:"engine"`
			Swaps  int64  `json:"swaps"`
		} `json:"engines"`
	}
	if err := r.getJSON("/relearnz", &out); err != nil {
		return nil, err
	}
	m := make(map[string]int64, len(out.Engines))
	for _, e := range out.Engines {
		m[e.Engine] = e.Swaps
	}
	return m, nil
}

func (r *runner) getJSON(path string, v any) error {
	req, err := http.NewRequestWithContext(r.ctx, http.MethodGet, r.opts.Target+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("scenario: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("scenario: GET %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scenario: GET %s: status %d", path, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// finish seals the report: digest, totals, final-phase scores,
// thresholds, timing.
func (r *runner) finish() {
	r.report.Digest = hex.EncodeToString(r.digest.Sum(nil))
	r.report.TotalRequests = r.reqCount
	for i := len(r.report.Phases) - 1; i >= 0; i-- {
		if r.report.Phases[i].PagesServed > 0 {
			r.report.Final = r.report.Phases[i].Engines
			break
		}
	}
	r.report.applyThresholds(r.cfg.Thresholds)
	elapsed := time.Since(r.start)
	r.report.Timing = Timing{
		StartedAt: r.start.UTC().Format(time.RFC3339),
		DurationS: elapsed.Seconds(),
	}
	if elapsed > 0 {
		r.report.Timing.RequestsPS = float64(r.reqCount) / elapsed.Seconds()
	}
}
