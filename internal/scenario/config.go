// Package scenario turns declarative JSON workload descriptions into
// reproducible load-generation runs against a live mse-serve: an engine
// population (schema seeds plus difficulty features), a traffic mix
// (engine weights, batch ratio), and a drift schedule over virtual time
// (per-engine template cutovers — redesigns and hidden-section reveals).
// The runner replays the scenario's traffic, continuously scores every
// extraction against synthetic ground truth, and emits a final report
// with per-engine recall/precision/empty-rate time series.
//
// Determinism is the core contract: a scenario is a pure function of its
// seed.  At concurrency 1 (the default) two runs against identically
// configured servers produce identical event sequences, schedule digests
// and scores; only wall-clock timing differs.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"mse/internal/synth"
)

// Version is the config schema version this package reads.
const Version = 1

// Config is the parsed form of a scenario file.
type Config struct {
	// Version must equal Version; unknown versions are rejected so a
	// future schema change cannot be silently misread.
	Version int `json:"version"`
	// Name labels the scenario in reports and event logs.
	Name string `json:"name"`
	// Seed is the master seed: it derives every engine schema and the
	// traffic-mix random stream.
	Seed int64 `json:"seed"`
	// Engines is the population; at least one is required.
	Engines []EngineConfig `json:"engines"`
	// Traffic tunes the request mix.  Zero-value fields take defaults.
	Traffic TrafficConfig `json:"traffic"`
	// Phases is the workload timeline, executed in order.
	Phases []PhaseConfig `json:"phases"`
	// Thresholds gate the run outcome; a breach makes the run fail.
	Thresholds Thresholds `json:"thresholds"`
}

// EngineConfig describes one synthetic engine in the population.
type EngineConfig struct {
	// Name is the engine's registry name (must be unique in the scenario).
	Name string `json:"name"`
	// ID is the synth engine ordinal: (seed, id, multi_section) determine
	// the schema exactly as synth.NewEngine does.
	ID int `json:"id"`
	// MultiSection requests the multi-section testbed shape.
	MultiSection bool `json:"multi_section"`
	// Weight is the engine's share of the traffic mix (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Features are the deterministic difficulty knobs applied on top of
	// the drawn schema (deep nesting, missing headings, CJK text, ...).
	Features synth.Features `json:"features,omitempty"`
	// Drift is the engine's template-cutover schedule over its own
	// virtual time (page index), in ascending order.
	Drift []DriftStep `json:"drift,omitempty"`
}

// Drift kinds.
const (
	// DriftRedesign rotates the template markup (synth Drifted).
	DriftRedesign = "redesign"
	// DriftReveal makes every hidden section permanent (synth Revealed).
	DriftReveal = "reveal"
)

// DriftStep is one template cutover in an engine's schedule.
type DriftStep struct {
	// Kind is DriftRedesign or DriftReveal.
	Kind string `json:"kind"`
	// AtPage is the first page index served with the mutated template.
	// Steps must be strictly increasing and past the training pages.
	AtPage int `json:"at_page"`
}

// TrafficConfig tunes the request mix.
type TrafficConfig struct {
	// TrainPages is the number of leading pages per engine used to train
	// its wrapper offline (default 5); replay starts at this page index so
	// served pages never repeat training pages.
	TrainPages int `json:"train_pages,omitempty"`
	// BatchRatio is the fraction of requests sent to /extract/batch
	// instead of /extract (default 0, all single).
	BatchRatio float64 `json:"batch_ratio,omitempty"`
	// BatchSize is the number of items per batch request (default 4).
	BatchSize int `json:"batch_size,omitempty"`
}

// PhaseConfig is one step of the workload timeline.  Exactly one of the
// kind fields must be set.
type PhaseConfig struct {
	// Name labels the phase in events and the report.
	Name string `json:"name"`
	// Pages serves this many weighted-traffic requests.
	Pages int `json:"pages,omitempty"`
	// UntilDrifted serves weighted traffic until the server's drift
	// detector reports the named engine DRIFTED (or a relearn swap has
	// already healed it), bounded by MaxPages.
	UntilDrifted *UntilDrifted `json:"until_drifted,omitempty"`
	// AwaitSwap sends no traffic: it polls /relearnz until the named
	// engine's swap count exceeds its value at run start.  This is the
	// determinism barrier that absorbs background-relearn timing.
	AwaitSwap *AwaitSwap `json:"await_swap,omitempty"`
}

// UntilDrifted configures a drift-detection phase.
type UntilDrifted struct {
	// Engine is the engine whose verdict ends the phase.
	Engine string `json:"engine"`
	// MaxPages bounds the phase; reaching it without a DRIFTED verdict is
	// a run failure.
	MaxPages int `json:"max_pages"`
}

// AwaitSwap configures a zero-traffic heal barrier.
type AwaitSwap struct {
	// Engine is the engine whose wrapper swap ends the phase.
	Engine string `json:"engine"`
	// TimeoutS bounds the wait in seconds (default 60).
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// Timeout returns the phase's wait bound.
func (a *AwaitSwap) Timeout() time.Duration {
	if a.TimeoutS <= 0 {
		return 60 * time.Second
	}
	return time.Duration(a.TimeoutS * float64(time.Second))
}

// Thresholds gate the final report.  Zero values disable a gate except
// MaxNon2xx, which is always enforced (0 means no failures tolerated).
type Thresholds struct {
	// MinFinalRecordRecall is the floor on every engine's record recall
	// over the last phase that served traffic.
	MinFinalRecordRecall float64 `json:"min_final_record_recall,omitempty"`
	// MaxFinalEmptyRate caps every engine's empty-extraction rate over
	// the last traffic phase.  Negative disables; 0 means none allowed.
	MaxFinalEmptyRate float64 `json:"max_final_empty_rate,omitempty"`
	// MaxNon2xx caps non-2xx responses across the whole run.
	MaxNon2xx int `json:"max_non_2xx,omitempty"`
}

// Parse strictly decodes a scenario config: unknown fields and unsupported
// versions are errors, and the result is validated.
func Parse(data []byte) (*Config, error) {
	// Peek at the version first so a future-versioned file fails with
	// "unsupported version", not a confusing unknown-field error.
	var v struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if v.Version != Version {
		return nil, fmt.Errorf("scenario: unsupported version %d (want %d)", v.Version, Version)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	cfg := &Config{}
	if err := dec.Decode(cfg); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// A second document in the same file is almost certainly a mistake.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, fmt.Errorf("scenario: trailing data after config document")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data)
}

// Validate checks cross-field invariants and fills defaults in place.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if len(c.Engines) == 0 {
		return fmt.Errorf("scenario %q: no engines", c.Name)
	}
	if c.Traffic.TrainPages == 0 {
		c.Traffic.TrainPages = 5
	}
	if c.Traffic.TrainPages < 2 {
		return fmt.Errorf("scenario %q: train_pages %d < 2 (wrapper induction needs multiple samples)",
			c.Name, c.Traffic.TrainPages)
	}
	if c.Traffic.BatchRatio < 0 || c.Traffic.BatchRatio > 1 {
		return fmt.Errorf("scenario %q: batch_ratio %v outside [0,1]", c.Name, c.Traffic.BatchRatio)
	}
	if c.Traffic.BatchSize == 0 {
		c.Traffic.BatchSize = 4
	}
	if c.Traffic.BatchSize < 1 {
		return fmt.Errorf("scenario %q: batch_size %d < 1", c.Name, c.Traffic.BatchSize)
	}
	seen := map[string]bool{}
	for i := range c.Engines {
		e := &c.Engines[i]
		if e.Name == "" {
			return fmt.Errorf("scenario %q: engine %d missing name", c.Name, i)
		}
		if seen[e.Name] {
			return fmt.Errorf("scenario %q: duplicate engine %q", c.Name, e.Name)
		}
		seen[e.Name] = true
		if e.ID < 0 {
			return fmt.Errorf("scenario %q: engine %q: negative id", c.Name, e.Name)
		}
		if e.Weight < 0 {
			return fmt.Errorf("scenario %q: engine %q: negative weight", c.Name, e.Name)
		}
		if e.Weight == 0 {
			e.Weight = 1
		}
		if e.Features.DeepNesting < 0 {
			return fmt.Errorf("scenario %q: engine %q: negative deep_nesting", c.Name, e.Name)
		}
		prev := 0
		for j, d := range e.Drift {
			if d.Kind != DriftRedesign && d.Kind != DriftReveal {
				return fmt.Errorf("scenario %q: engine %q: drift %d: unknown kind %q",
					c.Name, e.Name, j, d.Kind)
			}
			if d.AtPage < c.Traffic.TrainPages {
				return fmt.Errorf("scenario %q: engine %q: drift %d: at_page %d inside training pages [0,%d)",
					c.Name, e.Name, j, d.AtPage, c.Traffic.TrainPages)
			}
			if d.AtPage <= prev && j > 0 {
				return fmt.Errorf("scenario %q: engine %q: drift steps not strictly increasing at %d",
					c.Name, e.Name, d.AtPage)
			}
			prev = d.AtPage
		}
	}
	if len(c.Phases) == 0 {
		return fmt.Errorf("scenario %q: no phases", c.Name)
	}
	for i := range c.Phases {
		p := &c.Phases[i]
		if p.Name == "" {
			p.Name = fmt.Sprintf("phase-%d", i)
		}
		kinds := 0
		if p.Pages > 0 {
			kinds++
		}
		if p.Pages < 0 {
			return fmt.Errorf("scenario %q: phase %q: negative pages", c.Name, p.Name)
		}
		if p.UntilDrifted != nil {
			kinds++
			if !seen[p.UntilDrifted.Engine] {
				return fmt.Errorf("scenario %q: phase %q: until_drifted references unknown engine %q",
					c.Name, p.Name, p.UntilDrifted.Engine)
			}
			if p.UntilDrifted.MaxPages < 1 {
				return fmt.Errorf("scenario %q: phase %q: until_drifted needs max_pages >= 1", c.Name, p.Name)
			}
		}
		if p.AwaitSwap != nil {
			kinds++
			if !seen[p.AwaitSwap.Engine] {
				return fmt.Errorf("scenario %q: phase %q: await_swap references unknown engine %q",
					c.Name, p.Name, p.AwaitSwap.Engine)
			}
		}
		if kinds != 1 {
			return fmt.Errorf("scenario %q: phase %q: exactly one of pages/until_drifted/await_swap required",
				c.Name, p.Name)
		}
	}
	if c.Thresholds.MinFinalRecordRecall < 0 || c.Thresholds.MinFinalRecordRecall > 1 {
		return fmt.Errorf("scenario %q: min_final_record_recall %v outside [0,1]",
			c.Name, c.Thresholds.MinFinalRecordRecall)
	}
	if c.Thresholds.MaxNon2xx < 0 {
		return fmt.Errorf("scenario %q: negative max_non_2xx", c.Name)
	}
	return nil
}
