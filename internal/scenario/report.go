package scenario

import (
	"fmt"
	"sort"
)

// TimePoint is one window of an engine's score time series.
type TimePoint struct {
	Phase  string `json:"phase"`
	Engine string `json:"engine"`
	// FromPage and ToPage are the engine's virtual-time page span
	// [FromPage, ToPage) covered by this window.
	FromPage int `json:"from_page"`
	ToPage   int `json:"to_page"`
	EngineScore
}

// PhaseReport summarizes one executed phase.
type PhaseReport struct {
	Name string `json:"name"`
	// Kind is "pages", "until_drifted" or "await_swap".
	Kind string `json:"kind"`
	// Requests is the number of HTTP requests the phase issued (for
	// await_swap, only polls — which are excluded from this count).
	Requests int `json:"requests"`
	// PagesServed counts scored pages across engines.
	PagesServed int `json:"pages_served"`
	// Engines holds per-engine scores over the phase, sorted by name.
	Engines []EngineScore `json:"engines,omitempty"`
	// Outcome notes how the phase ended ("completed", "drift detected",
	// "swap observed", ...).
	Outcome string `json:"outcome,omitempty"`
}

// Timing is the wall-clock half of the report.  It is excluded from any
// determinism comparison: two runs of the same scenario agree on
// everything in Report except this field.
type Timing struct {
	StartedAt  string  `json:"started_at,omitempty"`
	DurationS  float64 `json:"duration_s"`
	RequestsPS float64 `json:"requests_per_s"`
}

// Report is the final output of a scenario run.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	// Digest is the sha256 over the run's canonical event lines — the
	// determinism fingerprint: same scenario, same seed, same server
	// config → same digest.
	Digest        string `json:"digest"`
	TotalRequests int    `json:"total_requests"`
	TotalPages    int    `json:"total_pages"`
	Non2xx        int    `json:"non_2xx"`
	Phases        []PhaseReport `json:"phases"`
	// Series is the per-engine windowed score time series in emission
	// order — the recall drop at a cutover and the recovery after a heal
	// are read directly off it.
	Series []TimePoint `json:"series"`
	// Final holds per-engine scores over the last traffic-serving phase,
	// the ones thresholds judge.
	Final []EngineScore `json:"final"`
	// Breaches lists every threshold violation; empty means the run
	// passed.
	Breaches []string `json:"breaches,omitempty"`
	Timing   Timing   `json:"timing"`
}

// Passed reports whether no threshold was breached.
func (r *Report) Passed() bool { return len(r.Breaches) == 0 }

// applyThresholds fills Breaches from the final-phase scores.
func (r *Report) applyThresholds(t Thresholds) {
	if t.MaxNon2xx >= 0 && r.Non2xx > t.MaxNon2xx {
		r.Breaches = append(r.Breaches,
			fmt.Sprintf("non-2xx responses %d exceed limit %d", r.Non2xx, t.MaxNon2xx))
	}
	for _, es := range r.Final {
		if t.MinFinalRecordRecall > 0 && es.RecordRecall < t.MinFinalRecordRecall {
			r.Breaches = append(r.Breaches,
				fmt.Sprintf("engine %s final record recall %.4f below floor %.4f",
					es.Engine, es.RecordRecall, t.MinFinalRecordRecall))
		}
		if t.MaxFinalEmptyRate >= 0 && es.EmptyRate > t.MaxFinalEmptyRate {
			r.Breaches = append(r.Breaches,
				fmt.Sprintf("engine %s final empty rate %.4f above ceiling %.4f",
					es.Engine, es.EmptyRate, t.MaxFinalEmptyRate))
		}
	}
}

// sortedScores returns the map's scores sorted by engine name (maps are
// iteration-order hostile; reports must be byte-stable).
func sortedScores(m map[string]*EngineScore) []EngineScore {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]EngineScore, 0, len(names))
	for _, n := range names {
		s := m[n]
		s.Engine = n
		out = append(out, *s)
	}
	return out
}
