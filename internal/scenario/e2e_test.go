package scenario_test

// End-to-end acceptance for the scenario engine: replay the committed
// drift-heal example against an in-process mse-serve registry with
// self-healing enabled, twice, and require the two runs to agree on every
// deterministic byte of the outcome — event digest, scores, series —
// while demonstrating the full story: recall collapses at the scheduled
// template cutover, the server detects drift, relearns and hot-swaps, and
// recall recovers above threshold with zero failed requests.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"mse/internal/core"
	"mse/internal/quality"
	"mse/internal/relearn"
	"mse/internal/scenario"
	"mse/internal/serve"
)

const examplePath = "../../examples/scenarios/drift-heal.json"

// startServer brings up a fresh in-process registry configured like
// `mse-serve -relearn` with fast test tunings, loaded with the given
// wrappers.
func startServer(t *testing.T, wrappers map[string][]byte) (*httptest.Server, func()) {
	t.Helper()
	reg := serve.NewRegistry(core.DefaultOptions())
	reg.SetQualityConfig(quality.Config{WarmupPages: 12, Window: 8})
	ctrl := reg.EnableRelearn(relearn.Config{
		SampleBytes:  4 << 20,
		MaxPages:     24,
		MinPages:     4,
		TrainPages:   5,
		HoldoutPages: 2,
		Backoff:      20 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		MaxFailures:  10,
		JitterSeed:   1,
	})
	for name, data := range wrappers {
		if err := reg.Add(name, data); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(reg.Handler())
	return srv, func() {
		srv.Close()
		ctrl.Close()
	}
}

func runOnce(t *testing.T, cfg *scenario.Config, wrappers map[string][]byte) *scenario.Report {
	t.Helper()
	srv, stop := startServer(t, wrappers)
	defer stop()
	rep, err := scenario.Run(context.Background(), cfg, scenario.RunOpts{
		Target: srv.URL,
		Client: srv.Client(),
		Window: 10,
	})
	if err != nil {
		if rep != nil {
			dump, _ := json.MarshalIndent(rep, "", "  ")
			t.Logf("report of failed run:\n%s", dump)
		}
		t.Fatalf("run: %v", err)
	}
	return rep
}

func TestScenarioDriftHealDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full drift/heal replay")
	}
	cfg, err := scenario.Load(examplePath)
	if err != nil {
		t.Fatalf("loading committed example: %v", err)
	}
	// Train once; both runs load byte-identical wrappers, exactly like two
	// mse-serve processes loading the same wrapper directory.
	wrappers, err := scenario.TrainWrappers(cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	rep1 := runOnce(t, cfg, wrappers)
	rep2 := runOnce(t, cfg, wrappers)

	// Determinism: identical digests, and identical reports once the
	// wall-clock-only Timing field is masked.
	if rep1.Digest != rep2.Digest {
		t.Errorf("digests differ across identical runs:\n  %s\n  %s", rep1.Digest, rep2.Digest)
	}
	rep1.Timing, rep2.Timing = scenario.Timing{}, scenario.Timing{}
	d1, _ := json.Marshal(rep1)
	d2, _ := json.Marshal(rep2)
	if string(d1) != string(d2) {
		t.Errorf("reports differ across identical runs:\n%s\nvs\n%s", d1, d2)
	}

	// The run passed its thresholds with zero failed requests.
	if rep1.Non2xx != 0 {
		t.Errorf("non-2xx responses = %d, want 0", rep1.Non2xx)
	}
	if !rep1.Passed() {
		t.Errorf("threshold breaches: %v", rep1.Breaches)
	}

	// Phase story: warm completed, drift was detected, the swap was
	// observed, recovery completed.
	if len(rep1.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(rep1.Phases))
	}
	if rep1.Phases[0].Outcome != "completed" {
		t.Errorf("warm outcome = %q", rep1.Phases[0].Outcome)
	}
	if o := rep1.Phases[1].Outcome; o != "drift detected" {
		t.Errorf("drift outcome = %q", o)
	}
	if rep1.Phases[2].Outcome != "swap observed" {
		t.Errorf("heal outcome = %q", rep1.Phases[2].Outcome)
	}

	// Recall story: perfect during warm, collapsed during the drift
	// phase, recovered above the threshold afterwards.
	warm := phaseScore(t, rep1, "warm", "beta")
	if warm.RecordRecall < 0.99 {
		t.Errorf("warm record recall = %v, want ~1", warm.RecordRecall)
	}
	drift := phaseScore(t, rep1, "drift", "beta")
	if drift.RecordRecall > 0.5 {
		t.Errorf("drift record recall = %v, want a collapse below 0.5", drift.RecordRecall)
	}
	if drift.Empty == 0 {
		t.Errorf("drift phase produced no empty extractions (stale wrapper should extract nothing)")
	}
	rec := phaseScore(t, rep1, "recovered", "beta")
	if rec.RecordRecall < cfg.Thresholds.MinFinalRecordRecall {
		t.Errorf("recovered record recall = %v, want >= %v",
			rec.RecordRecall, cfg.Thresholds.MinFinalRecordRecall)
	}
	if rec.EmptyRate != 0 {
		t.Errorf("recovered empty rate = %v, want 0", rec.EmptyRate)
	}

	// The time series carries the drop-and-recover curve.
	sawDrop, sawRecover := false, false
	for _, tp := range rep1.Series {
		if tp.Phase == "drift" && tp.RecordRecall < 0.5 {
			sawDrop = true
		}
		if tp.Phase == "recovered" && tp.RecordRecall >= cfg.Thresholds.MinFinalRecordRecall {
			sawRecover = true
		}
	}
	if !sawDrop || !sawRecover {
		t.Errorf("series missing drop (%v) or recovery (%v)", sawDrop, sawRecover)
	}
}

func phaseScore(t *testing.T, rep *scenario.Report, phase, engine string) scenario.EngineScore {
	t.Helper()
	for _, pr := range rep.Phases {
		if pr.Name != phase {
			continue
		}
		for _, es := range pr.Engines {
			if es.Engine == engine {
				return es
			}
		}
	}
	t.Fatalf("no score for engine %q in phase %q", engine, phase)
	return scenario.EngineScore{}
}

// TestScenarioThresholdBreach: a scenario whose drift never heals (no
// await_swap, no recovery traffic against a healed wrapper) must fail its
// recall threshold — the loadgen's exit-nonzero contract.
func TestScenarioThresholdBreach(t *testing.T) {
	if testing.Short() {
		t.Skip("replay")
	}
	cfg, err := scenario.Parse([]byte(`{
	  "version": 1, "name": "breach", "seed": 21,
	  "engines": [{"name": "beta", "id": 2, "multi_section": true,
	    "drift": [{"kind": "redesign", "at_page": 10}]}],
	  "phases": [{"name": "all", "pages": 20}],
	  "thresholds": {"min_final_record_recall": 0.9}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	wrappers, err := scenario.TrainWrappers(cfg, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// No relearn controller: the server serves the stale wrapper forever.
	reg := serve.NewRegistry(core.DefaultOptions())
	for name, data := range wrappers {
		if err := reg.Add(name, data); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	rep, err := scenario.Run(context.Background(), cfg, scenario.RunOpts{
		Target: srv.URL,
		Client: srv.Client(),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Passed() {
		t.Fatalf("run with unhealed drift passed thresholds: %+v", rep.Final)
	}
}
