package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// validJSON is a minimal well-formed scenario document.
const validJSON = `{
  "version": 1,
  "name": "t",
  "seed": 7,
  "engines": [
    {"name": "e0", "id": 0, "multi_section": true, "weight": 2,
     "features": {"cjk": true, "deep_nesting": 2},
     "drift": [{"kind": "redesign", "at_page": 30}, {"kind": "reveal", "at_page": 60}]},
    {"name": "e1", "id": 1, "multi_section": false}
  ],
  "traffic": {"train_pages": 5, "batch_ratio": 0.25, "batch_size": 2},
  "phases": [
    {"name": "warm", "pages": 20},
    {"name": "drift", "until_drifted": {"engine": "e0", "max_pages": 50}},
    {"name": "heal", "await_swap": {"engine": "e0", "timeout_s": 30}},
    {"name": "recovered", "pages": 10}
  ],
  "thresholds": {"min_final_record_recall": 0.9, "max_non_2xx": 0}
}`

func TestParseRoundTrip(t *testing.T) {
	cfg, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "t" || cfg.Seed != 7 || len(cfg.Engines) != 2 || len(cfg.Phases) != 4 {
		t.Fatalf("parsed config mangled: %+v", cfg)
	}
	if !cfg.Engines[0].Features.CJK || cfg.Engines[0].Features.DeepNesting != 2 {
		t.Fatalf("features not decoded: %+v", cfg.Engines[0].Features)
	}
	if cfg.Engines[0].Drift[1].Kind != DriftReveal || cfg.Engines[0].Drift[1].AtPage != 60 {
		t.Fatalf("drift schedule not decoded: %+v", cfg.Engines[0].Drift)
	}
	// Marshal and re-parse: the round trip must survive strict decoding
	// (every emitted field is a known field) and preserve the config.
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := Parse(data)
	if err != nil {
		t.Fatalf("round trip rejected: %v", err)
	}
	d1, _ := json.Marshal(cfg)
	d2, _ := json.Marshal(cfg2)
	if string(d1) != string(d2) {
		t.Fatalf("round trip changed the config:\n%s\nvs\n%s", d1, d2)
	}
}

func TestParseFillsDefaults(t *testing.T) {
	cfg, err := Parse([]byte(`{
	  "version": 1, "name": "d", "seed": 1,
	  "engines": [{"name": "e", "id": 0, "multi_section": true}],
	  "phases": [{"pages": 5}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engines[0].Weight != 1 {
		t.Fatalf("default weight = %v, want 1", cfg.Engines[0].Weight)
	}
	if cfg.Traffic.TrainPages != 5 || cfg.Traffic.BatchSize != 4 {
		t.Fatalf("traffic defaults not filled: %+v", cfg.Traffic)
	}
	if cfg.Phases[0].Name != "phase-0" {
		t.Fatalf("default phase name = %q", cfg.Phases[0].Name)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"unknown top-level field", `{"version":1,"name":"x","bogus":1,
		  "engines":[{"name":"e","id":0}],"phases":[{"pages":1}]}`, "bogus"},
		{"unknown nested field", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0,"colour":"red"}],"phases":[{"pages":1}]}`, "colour"},
		{"unsupported version", `{"version":2,"name":"x",
		  "engines":[{"name":"e","id":0}],"phases":[{"pages":1}]}`, "unsupported version 2"},
		{"missing version", `{"name":"x",
		  "engines":[{"name":"e","id":0}],"phases":[{"pages":1}]}`, "unsupported version 0"},
		{"trailing document", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0}],"phases":[{"pages":1}]}{}`, "after top-level value"},
		{"no engines", `{"version":1,"name":"x","engines":[],"phases":[{"pages":1}]}`, "no engines"},
		{"duplicate engine", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0},{"name":"e","id":1}],"phases":[{"pages":1}]}`, "duplicate"},
		{"bad drift kind", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0,"drift":[{"kind":"melt","at_page":9}]}],
		  "phases":[{"pages":1}]}`, "unknown kind"},
		{"drift inside training", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0,"drift":[{"kind":"redesign","at_page":2}]}],
		  "phases":[{"pages":1}]}`, "training pages"},
		{"drift out of order", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0,"drift":[
		    {"kind":"redesign","at_page":20},{"kind":"reveal","at_page":10}]}],
		  "phases":[{"pages":1}]}`, "strictly increasing"},
		{"no phases", `{"version":1,"name":"x","engines":[{"name":"e","id":0}],"phases":[]}`, "no phases"},
		{"phase with two kinds", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0}],
		  "phases":[{"pages":3,"await_swap":{"engine":"e"}}]}`, "exactly one"},
		{"phase with no kind", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0}],"phases":[{"name":"idle"}]}`, "exactly one"},
		{"until_drifted unknown engine", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0}],
		  "phases":[{"until_drifted":{"engine":"ghost","max_pages":5}}]}`, "unknown engine"},
		{"batch_ratio out of range", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0}],"traffic":{"batch_ratio":1.5},
		  "phases":[{"pages":1}]}`, "batch_ratio"},
		{"negative weight", `{"version":1,"name":"x",
		  "engines":[{"name":"e","id":0,"weight":-1}],"phases":[{"pages":1}]}`, "negative weight"},
		{"not json", `pages: 5`, "invalid character"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	cfg, err := Parse([]byte(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Materialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Engines {
		for _, q := range []int{5, 29, 30, 59, 60, 80} {
			if a.Engines[i].Sched.Page(q).HTML != b.Engines[i].Sched.Page(q).HTML {
				t.Fatalf("engine %s page %d differs across materializations", a.Engines[i].Name, q)
			}
		}
	}
	// The drift schedule actually switches templates at the cutover.
	e0 := a.Engines[0]
	if e0.Sched.Page(29).HTML == e0.Sched.Page(30).HTML {
		// Different pages always differ; compare against the base template
		// rendering the same page instead.
		t.Fatal("unexpected: distinct pages identical")
	}
	if e0.Sched.Page(30).HTML == e0.Base.Page(30).HTML {
		t.Fatal("page 30 still served by base template despite cutover at 30")
	}
	if _, phase := e0.Sched.EngineAt(60); phase != 2 {
		t.Fatalf("page 60 in phase %d, want 2", phase)
	}
}
