package scenario

import (
	"encoding/json"
	"fmt"

	"mse/internal/core"
	"mse/internal/synth"
)

// Population is the materialized engine fleet of a scenario: each entry
// owns the scheduled (cutover-aware) page source and its ground truth.
type Population struct {
	Engines []*PopEngine
	// weights[i] is the cumulative traffic weight through engine i; the
	// runner draws a uniform variate against it to pick an engine.
	weights []float64
	total   float64
}

// PopEngine is one materialized engine.
type PopEngine struct {
	Name string
	// Base is the phase-0 template the wrapper is trained against.
	Base *synth.Engine
	// Sched serves pages across every scheduled cutover.
	Sched *synth.ScheduledEngine
	// next is the engine's virtual-time page counter during replay.
	next int
}

// Materialize builds the engine population from the validated config.
// It is a pure function of the config: the same scenario always yields
// the same fleet serving the same pages.
func Materialize(cfg *Config) (*Population, error) {
	pop := &Population{}
	for i := range cfg.Engines {
		ec := &cfg.Engines[i]
		base := synth.NewEngineFeatured(cfg.Seed, ec.ID, ec.MultiSection, ec.Features)
		base.Name = ec.Name
		sched := synth.NewScheduledEngine(base)
		cur := base
		for j, d := range ec.Drift {
			switch d.Kind {
			case DriftRedesign:
				cur = cur.Drifted()
			case DriftReveal:
				cur = cur.Revealed()
			default:
				return nil, fmt.Errorf("scenario: engine %q: drift %d: unknown kind %q", ec.Name, j, d.Kind)
			}
			if err := sched.Cutover(d.AtPage, cur); err != nil {
				return nil, fmt.Errorf("scenario: engine %q: %w", ec.Name, err)
			}
		}
		pop.Engines = append(pop.Engines, &PopEngine{
			Name:  ec.Name,
			Base:  base,
			Sched: sched,
			next:  cfg.Traffic.TrainPages,
		})
		pop.total += cfg.Engines[i].Weight
		pop.weights = append(pop.weights, pop.total)
	}
	return pop, nil
}

// pick returns the engine selected by a uniform variate u in [0,1).
func (p *Population) pick(u float64) *PopEngine {
	x := u * p.total
	for i, w := range p.weights {
		if x < w {
			return p.Engines[i]
		}
	}
	return p.Engines[len(p.Engines)-1]
}

// byName returns the materialized engine with the given name.
func (p *Population) byName(name string) *PopEngine {
	for _, e := range p.Engines {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// nextPage advances the engine's virtual time and returns the page it
// serves at that instant (HTML, query, ground truth).
func (e *PopEngine) nextPage() (int, *synth.GenPage) {
	q := e.next
	e.next++
	return q, e.Sched.Page(q)
}

// TrainWrappers builds one wrapper per engine from its base (pre-drift)
// template's leading pages — the offline induction step that precedes
// serving — and returns the wrapper JSON keyed by engine name.
func TrainWrappers(cfg *Config, opts core.Options) (map[string][]byte, error) {
	pop, err := Materialize(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte, len(pop.Engines))
	for _, e := range pop.Engines {
		var samples []*core.SamplePage
		for q := 0; q < cfg.Traffic.TrainPages; q++ {
			gp := e.Base.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		ew, err := core.BuildWrapper(samples, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario: training %q: %w", e.Name, err)
		}
		data, err := json.Marshal(ew)
		if err != nil {
			return nil, fmt.Errorf("scenario: serializing wrapper %q: %w", e.Name, err)
		}
		out[e.Name] = data
	}
	return out, nil
}
