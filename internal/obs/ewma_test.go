package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestEWMAConvergence feeds a seeded Gaussian stream and checks that the
// mean and standard-deviation estimates converge to the source parameters
// within loose tolerances.
func TestEWMAConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const mean, std = 7.5, 1.25
	e := NewEWMA(2.0/(64+1), 32)
	for i := 0; i < 5000; i++ {
		e.Observe(mean + std*rng.NormFloat64())
	}
	if got := e.Mean(); math.Abs(got-mean) > 0.5 {
		t.Fatalf("mean = %.3f, want ~%.3f", got, mean)
	}
	if got := e.Std(); math.Abs(got-std) > 0.5 {
		t.Fatalf("std = %.3f, want ~%.3f", got, std)
	}
	if !e.Warmed() {
		t.Fatalf("estimator not warmed after 5000 observations")
	}
}

// TestEWMATracksShift checks the defining property of the exponential
// estimator: after a level shift the mean moves to the new level at the
// rate implied by alpha, while the warm-up average alone would lag far
// behind.
func TestEWMATracksShift(t *testing.T) {
	e := NewEWMA(2.0/(16+1), 8)
	for i := 0; i < 100; i++ {
		e.Observe(10)
	}
	if got := e.Mean(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("pre-shift mean = %v, want 10", got)
	}
	if got := e.Std(); got > 1e-6 {
		t.Fatalf("pre-shift std = %v, want ~0", got)
	}
	for i := 0; i < 60; i++ {
		e.Observe(20)
	}
	// 60 observations at alpha≈0.118: 1-(1-α)^60 > 0.999 of the way there.
	if got := e.Mean(); math.Abs(got-20) > 0.1 {
		t.Fatalf("post-shift mean = %v, want ~20", got)
	}
}

// TestEWMAWarmupExact pins the warm-up phase to the exact sample mean and
// variance (Welford), so a short-lived baseline is unbiased.
func TestEWMAWarmupExact(t *testing.T) {
	e := NewEWMA(0.5, 100)
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		e.Observe(x)
	}
	if got := e.Mean(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("warm-up mean = %v, want 5", got)
	}
	// Sample variance of xs is 32/7.
	if got, want := e.Var(), 32.0/7.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("warm-up var = %v, want %v", got, want)
	}
	if e.Warmed() {
		t.Fatalf("warmed after %d < 100 observations", len(xs))
	}
}

// TestEWMAConcurrent exercises the estimator from many goroutines; under
// -race this proves the locking, and the final count must be exact.
func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.1, 10)
	var wg sync.WaitGroup
	const goroutines, per = 8, 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				e.Observe(5 + rng.Float64())
			}
		}(int64(g))
	}
	wg.Wait()
	if got := e.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if m := e.Mean(); m < 5 || m > 6 {
		t.Fatalf("mean = %v, want within (5, 6)", m)
	}
}

// TestHistogramQuantileAccuracy compares the bucketed quantile estimate
// against the exact empirical percentile of a seeded log-uniform latency
// stream.  The histogram can only be as precise as its buckets, so the
// check is a containment bound: the estimate must land within one bucket
// of the exact value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram(nil)
	const n = 20000
	exact := make([]time.Duration, n)
	for i := range exact {
		// Log-uniform over 0.5ms .. 4s, the realistic serving range.
		lo, hi := math.Log(0.5), math.Log(4000)
		msf := math.Exp(lo + rng.Float64()*(hi-lo))
		d := time.Duration(msf * float64(time.Millisecond))
		exact[i] = d
		h.Observe(d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.50, 0.90, 0.95, 0.99} {
		want := exact[int(q*float64(n))-1]
		got := h.Quantile(q)
		lo, hi := bucketAround(DefaultLatencyBuckets, want)
		if got < lo || got > hi {
			t.Errorf("q=%.2f: estimate %v outside bucket [%v, %v] around exact %v",
				q, got, lo, hi, want)
		}
	}
}

// bucketAround returns the histogram bucket [lower, upper] that contains d.
func bucketAround(bounds []time.Duration, d time.Duration) (time.Duration, time.Duration) {
	lo := time.Duration(0)
	for _, b := range bounds {
		if d <= b {
			return lo, b
		}
		lo = b
	}
	return lo, 1<<63 - 1
}

// TestHistogramSnapshotP90 checks the snapshot carries all four serving
// percentiles, ordered.
func TestHistogramSnapshotP90(t *testing.T) {
	h := NewHistogram(nil)
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P50Ms <= 0 || s.P90Ms <= 0 || s.P95Ms <= 0 || s.P99Ms <= 0 {
		t.Fatalf("zero percentile in snapshot: %+v", s)
	}
	if !(s.P50Ms <= s.P90Ms && s.P90Ms <= s.P95Ms && s.P95Ms <= s.P99Ms) {
		t.Fatalf("percentiles not monotone: p50=%v p90=%v p95=%v p99=%v",
			s.P50Ms, s.P90Ms, s.P95Ms, s.P99Ms)
	}
}
