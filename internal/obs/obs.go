// Package obs provides the observability primitives for the MSE pipeline
// and the extraction service: a lightweight Tracer/Span API with monotonic
// timings and per-span counters, plus process-wide Counters, Gauges and
// fixed-bucket Histograms backed by sync/atomic and publishable via expvar.
//
// Everything is stdlib-only and designed so that an *absent* hook costs
// nothing: all Tracer and Span methods are nil-safe, so instrumented code
// can call them unconditionally — a nil receiver turns every call into a
// single pointer comparison and no clock read.
//
//	tr := obs.NewTracer()
//	root := tr.Start("build_wrapper")
//	step := root.Child("render")
//	t0 := step.Begin()
//	// ... work ...
//	step.AddSince(t0) // accumulates across loop iterations
//	root.End()
//	fmt.Print(root.Snapshot().Format())
//
// Spans form a tree; a Child span created repeatedly under the same name
// is returned once and accumulates, so a per-page loop still yields exactly
// one span per pipeline step.  Snapshots are plain data and serialize to
// JSON.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Canonical span names for the nine pipeline steps of Section 3 of the
// paper, in execution order.  core.BuildWrapper emits exactly one span per
// step under its "build_wrapper" root.
const (
	StepRender      = "render"        // step 1: layout rendering
	StepMRE         = "mre"           // step 2: multi-record section extraction
	StepDSE         = "dse"           // step 3: dynamic section extraction
	StepRefine      = "refine"        // step 4: MR/DS refinement
	StepMining      = "mining"        // step 5: record mining
	StepGranularity = "granularity"   // step 6: granularity resolution
	StepCluster     = "cluster"       // step 7: cross-page instance grouping
	StepWrapper     = "wrapper_build" // step 8: wrapper construction
	StepFamilies    = "families"      // step 9: section families

	// StepPrune is the candidate-location / DOM-marking pass of the
	// compiled extraction path (internal/prune); extraction-only, not one
	// of the nine pipeline steps.
	StepPrune = "prune"
)

// PipelineSteps lists the nine step span names in pipeline order.
var PipelineSteps = []string{
	StepRender, StepMRE, StepDSE, StepRefine, StepMining,
	StepGranularity, StepCluster, StepWrapper, StepFamilies,
}

// Root span names emitted by core.
const (
	RootBuildWrapper = "build_wrapper"
	RootAnalyzePages = "analyze_pages"
	RootExtract      = "extract"
)

// Tracer collects root spans.  It is safe for concurrent use.  A Tracer
// accumulates every root span started on it, so it is meant for bounded
// runs (a CLI invocation, a test, a profiling window), not for unbounded
// per-request tracing — services should use Registry metrics instead.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start begins a new root span.  A nil tracer returns a nil span, on which
// every Span method is a no-op.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Snapshot returns snapshots of all root spans in start order.
func (t *Tracer) Snapshot() []*SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := make([]*Span, len(t.roots))
	copy(roots, t.roots)
	t.mu.Unlock()
	out := make([]*SpanSnapshot, len(roots))
	for i, s := range roots {
		out[i] = s.Snapshot()
	}
	return out
}

// Reset drops all collected root spans.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.roots = nil
	t.mu.Unlock()
}

// Span is one timed node in a trace tree.  The zero duration of a span
// that was started but never ended is the time accumulated so far via
// AddSince; End adds the time since Start.  All methods are nil-safe.
type Span struct {
	name string
	t0   time.Time // set by newSpan; monotonic

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	counters map[string]int64
	children []*Span
	index    map[string]*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, t0: time.Now()}
}

// NewSpan starts a free-standing root span that is not collected by any
// Tracer.  Services use it for per-request span trees (stage timings for a
// wide-event journal line) where Tracer's accumulate-forever semantics
// would leak.
func NewSpan(name string) *Span { return newSpan(name) }

// Name returns the span name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start creates and starts a new child span.  Unlike Child it always
// appends a fresh span, so repeated Start calls under one name yield
// multiple children.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Child returns the child span with the given name, creating it (with zero
// duration) on first use.  Use together with Begin/AddSince to accumulate
// one span across loop iterations.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		s.index = map[string]*Span{}
	}
	if c, ok := s.index[name]; ok {
		return c
	}
	c := newSpan(name)
	s.index[name] = c
	s.children = append(s.children, c)
	return c
}

// Begin returns the current time for a live span and the zero time for a
// nil span, without reading the clock.  Pair with AddSince.
func (s *Span) Begin() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// AddSince accumulates the time elapsed since t0 into the span's duration.
// A zero t0 (from Begin on a nil span) contributes nothing, but callers
// normally hold a nil span then anyway.
func (s *Span) AddSince(t0 time.Time) {
	if s == nil || t0.IsZero() {
		return
	}
	d := time.Since(t0)
	s.mu.Lock()
	s.dur += d
	s.mu.Unlock()
}

// Add accumulates d into the span's duration directly.
func (s *Span) Add(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur += d
	s.mu.Unlock()
}

// End stops the span, adding the time elapsed since Start.  End is
// idempotent: the second and later calls are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.t0)
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur += d
	}
	s.mu.Unlock()
}

// Count adds n to the named counter on this span.
func (s *Span) Count(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = map[string]int64{}
	}
	s.counters[key] += n
	s.mu.Unlock()
}

// Duration returns the accumulated duration so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Snapshot returns a plain-data copy of the span tree, suitable for JSON
// serialization.  A nil span snapshots to nil.
func (s *Span) Snapshot() *SpanSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	snap := &SpanSnapshot{
		Name:     s.name,
		Duration: s.dur,
	}
	if len(s.counters) > 0 {
		snap.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			snap.Counters[k] = v
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// SpanSnapshot is the serializable form of a span tree.
type SpanSnapshot struct {
	Name     string           `json:"name"`
	Duration time.Duration    `json:"duration_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Children []*SpanSnapshot  `json:"children,omitempty"`
}

// Find returns the direct child with the given name, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	if s == nil {
		return nil
	}
	for _, c := range s.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Format renders the span tree as an indented, human-readable table:
// name, duration, percentage of the root, and counters.
func (s *SpanSnapshot) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	total := s.Duration
	var walk func(sp *SpanSnapshot, depth int)
	walk = func(sp *SpanSnapshot, depth int) {
		pct := ""
		if total > 0 && depth > 0 {
			pct = fmt.Sprintf("%5.1f%%", 100*float64(sp.Duration)/float64(total))
		}
		fmt.Fprintf(&b, "%-*s%-*s %10s %6s%s\n",
			2*depth, "", 24-2*depth, sp.Name,
			sp.Duration.Round(time.Microsecond), pct, formatCounters(sp.Counters))
		for _, c := range sp.Children {
			walk(c, depth+1)
		}
	}
	walk(s, 0)
	return b.String()
}

func formatCounters(c map[string]int64) string {
	if len(c) == 0 {
		return ""
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "  %s=%d", k, c[k])
	}
	return b.String()
}

// Merge sums a set of span snapshots into one: durations and counters add
// up, and children are merged recursively by name (ordered by first
// occurrence).  It is used to aggregate per-engine traces into one
// breakdown.  The merged root takes the name of the first snapshot; nil
// entries are skipped; Merge of an empty set returns nil.
func Merge(snaps []*SpanSnapshot) *SpanSnapshot {
	var out *SpanSnapshot
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if out == nil {
			out = &SpanSnapshot{Name: s.Name}
		}
		mergeInto(out, s)
	}
	return out
}

func mergeInto(dst, src *SpanSnapshot) {
	dst.Duration += src.Duration
	if len(src.Counters) > 0 && dst.Counters == nil {
		dst.Counters = map[string]int64{}
	}
	for k, v := range src.Counters {
		dst.Counters[k] += v
	}
	for _, c := range src.Children {
		d := dst.Find(c.Name)
		if d == nil {
			d = &SpanSnapshot{Name: c.Name}
			dst.Children = append(dst.Children, d)
		}
		mergeInto(d, c)
	}
}
