package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 50000 {
		t.Fatalf("counter = %d, want 50000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Add(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	// A value exactly on a bound lands in that bucket (d <= bound).
	h.Observe(time.Millisecond)
	// Just above a bound lands in the next bucket.
	h.Observe(time.Millisecond + 1)
	// Beyond the last bound lands in the overflow bucket.
	h.Observe(time.Second)

	want := []int64{1, 1, 0, 1}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != time.Second+2*time.Millisecond+1 {
		t.Fatalf("sum = %v", h.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile != 0")
	}
	// 90 observations in (10, 20], 10 in (20, 40].
	for i := 0; i < 90; i++ {
		h.Observe(15 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(30 * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 10*time.Millisecond || p50 > 20*time.Millisecond {
		t.Fatalf("p50 = %v, want in (10ms, 20ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 20*time.Millisecond || p99 > 40*time.Millisecond {
		t.Fatalf("p99 = %v, want in (20ms, 40ms]", p99)
	}
	// Everything in the overflow bucket reports the last bound.
	h2 := NewHistogram([]time.Duration{time.Millisecond})
	h2.Observe(time.Hour)
	if h2.Quantile(0.5) != time.Millisecond {
		t.Fatalf("overflow quantile = %v", h2.Quantile(0.5))
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(3 * time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestRegistryFindOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatalf("Counter not stable across lookups")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatalf("Gauge not stable across lookups")
	}
	if r.Histogram("h", nil) != r.Histogram("h", nil) {
		t.Fatalf("Histogram not stable across lookups")
	}

	r.Counter("requests").Add(2)
	r.Gauge("in_flight").Set(1)
	r.Histogram("latency", nil).Observe(5 * time.Millisecond)

	snap := r.Snapshot()
	if snap.Counters["requests"] != 2 || snap.Gauges["in_flight"] != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Histograms["latency"].Count != 1 {
		t.Fatalf("histogram snapshot = %+v", snap.Histograms["latency"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

func TestRegistryPublishIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Publish("obs_test_registry")
	r.Publish("obs_test_registry") // second publish must not panic
}
