package obs

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.  The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (e.g. in-flight requests).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets are the histogram bounds used for request
// latencies: 1ms..10s, roughly logarithmic.
var DefaultLatencyBuckets = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond, 5 * time.Second, 10 * time.Second,
}

// Histogram is a fixed-bucket duration histogram.  An observation d lands
// in the first bucket whose upper bound satisfies d <= bound; observations
// beyond the last bound land in an overflow bucket.  All operations are
// lock-free.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds
	counts []atomic.Int64  // len(bounds)+1, last is overflow
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// A nil bounds slice uses DefaultLatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// inside the bucket that contains it.  Observations in the overflow bucket
// report the last bound.  A histogram with no observations reports 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / n
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot returns the serializable state of the histogram, with
// millisecond-denominated quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Count: h.Count(),
		SumMs: ms(h.Sum()),
		P50Ms: ms(h.Quantile(0.50)),
		P90Ms: ms(h.Quantile(0.90)),
		P95Ms: ms(h.Quantile(0.95)),
		P99Ms: ms(h.Quantile(0.99)),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		b := BucketCount{Count: n}
		if i < len(h.bounds) {
			b.LEMs = ms(h.bounds[i])
		} else {
			b.LEMs = -1 // overflow
		}
		snap.Buckets = append(snap.Buckets, b)
	}
	return snap
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// HistogramSnapshot is the wire form of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumMs   float64       `json:"sum_ms"`
	P50Ms   float64       `json:"p50_ms"`
	P90Ms   float64       `json:"p90_ms"`
	P95Ms   float64       `json:"p95_ms"`
	P99Ms   float64       `json:"p99_ms"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket; LEMs is the upper bound
// in milliseconds, -1 for the overflow bucket.
type BucketCount struct {
	LEMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// Registry is a named collection of counters, gauges and histograms with a
// JSON-serializable snapshot.  Metric accessors find-or-create, so callers
// can look metrics up by name without wiring.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// (nil for DefaultLatencyBuckets) on first use.  Bounds of an existing
// histogram are not changed.
func (r *Registry) Histogram(name string, bounds []time.Duration) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot returns the current value of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			snap.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			snap.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			snap.Histograms[n] = h.Snapshot()
		}
	}
	return snap
}

// Publish exposes the registry under the given expvar name (and therefore
// on /debug/vars when the expvar handler is mounted).  Publishing the same
// name twice is a no-op rather than the expvar panic, so tests and
// restarts within one process are safe.
func (r *Registry) Publish(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Snapshot is the serializable state of a Registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}
