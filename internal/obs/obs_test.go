package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	a := root.Start("a")
	time.Sleep(2 * time.Millisecond)
	a.End()
	b := root.Start("b")
	time.Sleep(1 * time.Millisecond)
	b.End()
	root.End()

	snaps := tr.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("roots = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.Name != "root" || len(s.Children) != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Children[0].Name != "a" || s.Children[1].Name != "b" {
		t.Fatalf("children out of order: %v, %v", s.Children[0].Name, s.Children[1].Name)
	}
	sum := s.Children[0].Duration + s.Children[1].Duration
	if sum > s.Duration {
		t.Fatalf("children sum %v exceeds root %v", sum, s.Duration)
	}
	if s.Children[0].Duration < time.Millisecond {
		t.Fatalf("child a duration %v, want >= 1ms", s.Children[0].Duration)
	}
}

func TestSpanChildAccumulates(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	for i := 0; i < 3; i++ {
		c := root.Child("step")
		t0 := c.Begin()
		time.Sleep(time.Millisecond)
		c.AddSince(t0)
	}
	root.End()
	s := tr.Snapshot()[0]
	if len(s.Children) != 1 {
		t.Fatalf("children = %d, want 1 accumulated span", len(s.Children))
	}
	if s.Children[0].Duration < 3*time.Millisecond {
		t.Fatalf("accumulated duration = %v, want >= 3ms", s.Children[0].Duration)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Fatalf("second End changed duration: %v -> %v", d, s.Duration())
	}
}

func TestSpanCounters(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	s.Count("pages", 5)
	s.Count("pages", 2)
	s.Count("records", 10)
	s.End()
	snap := s.Snapshot()
	if snap.Counters["pages"] != 7 || snap.Counters["records"] != 10 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.Start("root") // nil tracer -> nil span
	if s != nil {
		t.Fatalf("nil tracer returned non-nil span")
	}
	// Every method must be a no-op, not a panic.
	s.Start("a").End()
	c := s.Child("b")
	t0 := c.Begin()
	if !t0.IsZero() {
		t.Fatalf("nil span Begin read the clock")
	}
	c.AddSince(t0)
	c.Add(time.Second)
	c.Count("k", 1)
	c.End()
	if c.Duration() != 0 || c.Snapshot() != nil || c.Name() != "" {
		t.Fatalf("nil span leaked state")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	tr.Reset()
}

func TestSpanConcurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				root.Child("c").Add(time.Nanosecond)
				root.Count("n", 1)
			}
		}()
	}
	wg.Wait()
	root.End()
	s := root.Snapshot()
	if s.Counters["n"] != 1600 {
		t.Fatalf("counter = %d, want 1600", s.Counters["n"])
	}
	if s.Children[0].Duration != 1600*time.Nanosecond {
		t.Fatalf("accumulated = %v, want 1600ns", s.Children[0].Duration)
	}
}

func TestSnapshotJSONAndFormat(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("build_wrapper")
	root.Child("render").Add(5 * time.Millisecond)
	root.Count("pages", 5)
	root.End()
	snap := root.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "build_wrapper" || back.Children[0].Name != "render" {
		t.Fatalf("round trip = %+v", back)
	}

	txt := snap.Format()
	for _, want := range []string{"build_wrapper", "render", "pages=5"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("Format() missing %q:\n%s", want, txt)
		}
	}
}

func TestMerge(t *testing.T) {
	mk := func(renderD time.Duration, pages int64) *SpanSnapshot {
		return &SpanSnapshot{
			Name:     "build_wrapper",
			Duration: 2 * renderD,
			Counters: map[string]int64{"pages": pages},
			Children: []*SpanSnapshot{{Name: "render", Duration: renderD}},
		}
	}
	m := Merge([]*SpanSnapshot{mk(10*time.Millisecond, 5), nil, mk(20*time.Millisecond, 3)})
	if m.Duration != 60*time.Millisecond {
		t.Fatalf("merged duration = %v", m.Duration)
	}
	if m.Counters["pages"] != 8 {
		t.Fatalf("merged counters = %v", m.Counters)
	}
	r := m.Find("render")
	if r == nil || r.Duration != 30*time.Millisecond {
		t.Fatalf("merged render = %+v", r)
	}
	if Merge(nil) != nil {
		t.Fatalf("Merge(nil) != nil")
	}
}
