package obs

import (
	"math"
	"sync"
)

// EWMA is a streaming exponentially-weighted estimate of the mean and
// variance of a scalar signal.  The first Warmup observations are folded in
// with Welford's exact online algorithm — an exponential estimator seeded
// from a handful of samples is dominated by its initial value, so the
// warm-up phase gives the baseline an unbiased start — after which updates
// switch to the exponential form with smoothing factor Alpha:
//
//	mean ← mean + α·(x − mean)
//	var  ← (1−α)·(var + α·(x − mean)²)
//
// The zero value is not usable; construct with NewEWMA.  All methods are
// safe for concurrent use.
type EWMA struct {
	mu     sync.Mutex
	alpha  float64
	warmup int64
	n      int64
	mean   float64
	// During warm-up, m2 is Welford's sum of squared deviations; after
	// warm-up it is the exponentially weighted variance itself.
	m2 float64
}

// NewEWMA returns an estimator with the given smoothing factor
// (0 < alpha <= 1) and warm-up count.  alpha outside the range is clamped;
// warmup < 1 is treated as 1.  A rough guide: alpha = 2/(N+1) weights the
// last N observations about as much as a length-N sliding window.
func NewEWMA(alpha float64, warmup int) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	if warmup < 1 {
		warmup = 1
	}
	return &EWMA{alpha: alpha, warmup: int64(warmup)}
}

// Observe folds one observation into the estimate.
func (e *EWMA) Observe(x float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	if e.n <= e.warmup {
		// Welford: exact running mean and sum of squared deviations.
		d := x - e.mean
		e.mean += d / float64(e.n)
		e.m2 += d * (x - e.mean)
		if e.n == e.warmup {
			// Seed the exponential variance from the sample variance.
			if e.n > 1 {
				e.m2 /= float64(e.n - 1)
			} else {
				e.m2 = 0
			}
		}
		return
	}
	d := x - e.mean
	e.mean += e.alpha * d
	e.m2 = (1 - e.alpha) * (e.m2 + e.alpha*d*d)
}

// Count returns the number of observations so far.
func (e *EWMA) Count() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Warmed reports whether the warm-up phase is complete, i.e. the estimate
// is an exponential moving baseline rather than a cold cumulative average.
func (e *EWMA) Warmed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n >= e.warmup
}

// Mean returns the current mean estimate (0 before any observation).
func (e *EWMA) Mean() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.mean
}

// Var returns the current variance estimate (0 until two observations).
func (e *EWMA) Var() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.varLocked()
}

func (e *EWMA) varLocked() float64 {
	if e.n < 2 {
		return 0
	}
	if e.n < e.warmup {
		// Still in Welford form: m2 is the sum of squared deviations.
		return e.m2 / float64(e.n-1)
	}
	return e.m2
}

// Std returns the current standard-deviation estimate.
func (e *EWMA) Std() float64 { return math.Sqrt(e.Var()) }

// Snapshot returns the serializable state of the estimator.
func (e *EWMA) Snapshot() EWMASnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return EWMASnapshot{
		Mean:   e.mean,
		Std:    math.Sqrt(e.varLocked()),
		Count:  e.n,
		Warmed: e.n >= e.warmup,
	}
}

// EWMASnapshot is the wire form of an EWMA baseline.
type EWMASnapshot struct {
	Mean   float64 `json:"mean"`
	Std    float64 `json:"std"`
	Count  int64   `json:"count"`
	Warmed bool    `json:"warmed"`
}
