package synth

import "testing"

// TestDriftedChangesMarkupNotContent: the drifted engine serves pages with
// different markup but the same query and a record population drawn from
// the same schema counts.
func TestDriftedChangesMarkupNotContent(t *testing.T) {
	e := NewEngine(55, 3, true)
	d := e.Drifted()

	if d.Schema.Style == e.Schema.Style {
		t.Fatalf("style did not rotate: %v", d.Schema.Style)
	}
	if d.ID != e.ID || d.Name != e.Name {
		t.Fatalf("identity changed: %d/%s vs %d/%s", d.ID, d.Name, e.ID, e.Name)
	}
	for q := 0; q < 5; q++ {
		op, dp := e.Page(q), d.Page(q)
		if op.HTML == dp.HTML {
			t.Fatalf("page %d: drifted HTML identical to original", q)
		}
		if len(op.Query) != len(dp.Query) || op.Query[0] != dp.Query[0] || op.Query[1] != dp.Query[1] {
			t.Fatalf("page %d: query changed: %v vs %v", q, dp.Query, op.Query)
		}
		// Same seed and same per-section record-count draws: the ground
		// truth population keeps its shape.
		if got, want := len(dp.Truth.Sections), len(op.Truth.Sections); got != want {
			t.Fatalf("page %d: section count %d, want %d", q, got, want)
		}
		for i := range op.Truth.Sections {
			if got, want := len(dp.Truth.Sections[i].Records), len(op.Truth.Sections[i].Records); got != want {
				t.Fatalf("page %d section %d: record count %d, want %d", q, i, got, want)
			}
		}
	}
}

// TestDriftedDeterministic: Drifted is a pure function of the engine.
func TestDriftedDeterministic(t *testing.T) {
	e := NewEngine(7, 11, false)
	a, b := e.Drifted(), e.Drifted()
	for q := 0; q < 3; q++ {
		if a.Page(q).HTML != b.Page(q).HTML {
			t.Fatalf("page %d: two Drifted() copies disagree", q)
		}
	}
}

// TestDriftedDoesNotMutateOriginal: building drifted pages must leave the
// original engine's schema and output untouched.
func TestDriftedDoesNotMutateOriginal(t *testing.T) {
	e := NewEngine(9, 2, true)
	before := e.Page(0).HTML
	d := e.Drifted()
	_ = d.Page(0)
	if e.Page(0).HTML != before {
		t.Fatalf("Drifted mutated the original engine")
	}
	if e.Schema.Sections[0].HeadingStyle == d.Schema.Sections[0].HeadingStyle &&
		e.Schema.Sections[0].Format.TitleBold == d.Schema.Sections[0].Format.TitleBold {
		t.Fatalf("section schema did not mutate")
	}
}
