package synth

import "fmt"

// Template drift: the mutation a live search engine performs when its
// result-page template is redesigned.  A wrapper trained on the old
// template keeps "succeeding" against the new one — it just extracts
// fewer sections and records, or nothing — which is exactly the silent
// failure mode drift detection must notice.  Drifted produces the
// post-redesign engine: same record *content* distribution (same seed,
// same section schemas, same query → record-count draws), different
// *markup*.

// Drifted returns a copy of the engine whose template has been redesigned:
// the markup style rotates to the next idiom (table → div → list → dl →
// table), every section's heading switches to a different heading style,
// and the record format changes shape (bold/number-prefix toggles,
// single-row layout).  The engine seed is unchanged, so page i of the
// drifted engine answers the same query as page i of the original and
// draws its records from the same distribution — only the surrounding
// tag structure differs.  The receiver is not modified.  Drifted is a pure
// function: calling it twice yields identical engines.
func (e *Engine) Drifted() *Engine {
	old := e.Schema
	ps := &PageSchema{
		SiteName:       old.SiteName,
		Style:          Style((int(old.Style) + 1) % numStyles),
		NavLinks:       append([]string(nil), old.NavLinks...),
		FooterLines:    append([]string(nil), old.FooterLines...),
		HasResultCount: old.HasResultCount,
		HasSearchBox:   old.HasSearchBox,
		// Flat layouts only exist for TableStyle; the rotated style drops
		// the shared table, which is itself a drastic template change.
		Flat: false,
	}
	for _, oss := range old.Sections {
		ss := *oss // copy; SectionSchema holds only value fields
		ss.HeadingStyle = HeadingStyle((int(oss.HeadingStyle) + 1) % numHeadingStyles)
		// Redesigns habitually restyle the records: toggle the ornamental
		// format bits the old wrapper keyed its tag structures on.
		ss.Format.TitleBold = !oss.Format.TitleBold
		ss.Format.NumberPrefix = !oss.Format.NumberPrefix
		// MultiRow only renders under TableStyle; force the single-row
		// shape so the rotation is meaningful for every style.
		ss.Format.MultiRow = false
		ps.Sections = append(ps.Sections, &ss)
	}
	return &Engine{ID: e.ID, Name: e.Name, Schema: ps, seed: e.seed}
}

// Revealed returns a copy of the engine with every hidden section made
// permanent: sections that appeared only for some queries (Appear < 1) or
// only for one query class (QueryClass >= 0) now appear on every page.
// This is the "hidden section appears mid-run" drift: the engine starts
// serving a section its wrapper never saw during training, so ground-truth
// recall drops even though the old sections still extract — a quieter
// drift signature than a full redesign.  The receiver is not modified and
// Revealed is a pure function.
func (e *Engine) Revealed() *Engine {
	old := e.Schema
	ps := &PageSchema{
		SiteName:       old.SiteName,
		Style:          old.Style,
		NavLinks:       append([]string(nil), old.NavLinks...),
		FooterLines:    append([]string(nil), old.FooterLines...),
		HasResultCount: old.HasResultCount,
		HasSearchBox:   old.HasSearchBox,
		Flat:           old.Flat,
		CJK:            old.CJK,
		DeepNesting:    old.DeepNesting,
	}
	for _, oss := range old.Sections {
		ss := *oss // copy; SectionSchema holds only value fields
		ss.Appear = 1.0
		ss.QueryClass = -1
		ps.Sections = append(ps.Sections, &ss)
	}
	return &Engine{ID: e.ID, Name: e.Name, Schema: ps, seed: e.seed}
}

// DriftingEngine models an engine redesigning its template mid-run: pages
// before DriftAt render with the original template, pages at or past it
// with the drifted one.  It is the drift-then-recover fixture for
// self-healing tests — serve queries 0..DriftAt-1 to warm a baseline, keep
// querying past DriftAt, and the served traffic itself carries everything
// a relearner needs to re-learn the new template.
type DriftingEngine struct {
	Orig *Engine
	New  *Engine
	// DriftAt is the first query index served with the new template.
	DriftAt int
}

// NewDriftingEngine pairs an engine with its Drifted redesign, cutting
// over at query index driftAt.
func NewDriftingEngine(e *Engine, driftAt int) *DriftingEngine {
	return &DriftingEngine{Orig: e, New: e.Drifted(), DriftAt: driftAt}
}

// Page generates result page queryIdx under whichever template is live at
// that index.  Ground truth tracks the live template, so extraction
// correctness stays checkable across the cut-over.
func (d *DriftingEngine) Page(queryIdx int) *GenPage {
	if queryIdx >= d.DriftAt {
		return d.New.Page(queryIdx)
	}
	return d.Orig.Page(queryIdx)
}

// ScheduledEngine generalizes DriftingEngine to an arbitrary sequence of
// template cutovers over virtual time (the engine's own query index): the
// base template serves queries [0, c1), the first cutover's template
// serves [c1, c2), and so on.  Every cutover can be any derived engine —
// Drifted() redesigns, Revealed() hidden-section appearances, or stacked
// combinations — so a scenario can replay a multi-year redesign history
// against one wrapper lifecycle.
type ScheduledEngine struct {
	froms   []int // ascending; froms[0] == 0
	engines []*Engine
}

// NewScheduledEngine starts a schedule with the base template serving from
// query index 0.
func NewScheduledEngine(base *Engine) *ScheduledEngine {
	return &ScheduledEngine{froms: []int{0}, engines: []*Engine{base}}
}

// Cutover appends a template switch: pages at or past fromQuery render
// with e (until a later cutover).  Cutovers must be added in strictly
// increasing virtual-time order.
func (s *ScheduledEngine) Cutover(fromQuery int, e *Engine) error {
	if fromQuery <= s.froms[len(s.froms)-1] {
		return fmt.Errorf("synth: cutover at %d not after previous phase start %d",
			fromQuery, s.froms[len(s.froms)-1])
	}
	s.froms = append(s.froms, fromQuery)
	s.engines = append(s.engines, e)
	return nil
}

// Phases returns the number of template phases (1 + cutovers).
func (s *ScheduledEngine) Phases() int { return len(s.engines) }

// EngineAt returns the engine template live at query index q and its phase
// ordinal (0 = base template).
func (s *ScheduledEngine) EngineAt(q int) (*Engine, int) {
	i := len(s.froms) - 1
	for i > 0 && q < s.froms[i] {
		i--
	}
	return s.engines[i], i
}

// Page generates result page queryIdx under the template live at that
// index; ground truth tracks the live template across every cutover.
func (s *ScheduledEngine) Page(queryIdx int) *GenPage {
	e, _ := s.EngineAt(queryIdx)
	return e.Page(queryIdx)
}
