package synth

// Template drift: the mutation a live search engine performs when its
// result-page template is redesigned.  A wrapper trained on the old
// template keeps "succeeding" against the new one — it just extracts
// fewer sections and records, or nothing — which is exactly the silent
// failure mode drift detection must notice.  Drifted produces the
// post-redesign engine: same record *content* distribution (same seed,
// same section schemas, same query → record-count draws), different
// *markup*.

// Drifted returns a copy of the engine whose template has been redesigned:
// the markup style rotates to the next idiom (table → div → list → dl →
// table), every section's heading switches to a different heading style,
// and the record format changes shape (bold/number-prefix toggles,
// single-row layout).  The engine seed is unchanged, so page i of the
// drifted engine answers the same query as page i of the original and
// draws its records from the same distribution — only the surrounding
// tag structure differs.  The receiver is not modified.  Drifted is a pure
// function: calling it twice yields identical engines.
func (e *Engine) Drifted() *Engine {
	old := e.Schema
	ps := &PageSchema{
		SiteName:       old.SiteName,
		Style:          Style((int(old.Style) + 1) % numStyles),
		NavLinks:       append([]string(nil), old.NavLinks...),
		FooterLines:    append([]string(nil), old.FooterLines...),
		HasResultCount: old.HasResultCount,
		HasSearchBox:   old.HasSearchBox,
		// Flat layouts only exist for TableStyle; the rotated style drops
		// the shared table, which is itself a drastic template change.
		Flat: false,
	}
	for _, oss := range old.Sections {
		ss := *oss // copy; SectionSchema holds only value fields
		ss.HeadingStyle = HeadingStyle((int(oss.HeadingStyle) + 1) % numHeadingStyles)
		// Redesigns habitually restyle the records: toggle the ornamental
		// format bits the old wrapper keyed its tag structures on.
		ss.Format.TitleBold = !oss.Format.TitleBold
		ss.Format.NumberPrefix = !oss.Format.NumberPrefix
		// MultiRow only renders under TableStyle; force the single-row
		// shape so the rotation is meaningful for every style.
		ss.Format.MultiRow = false
		ps.Sections = append(ps.Sections, &ss)
	}
	return &Engine{ID: e.ID, Name: e.Name, Schema: ps, seed: e.seed}
}

// DriftingEngine models an engine redesigning its template mid-run: pages
// before DriftAt render with the original template, pages at or past it
// with the drifted one.  It is the drift-then-recover fixture for
// self-healing tests — serve queries 0..DriftAt-1 to warm a baseline, keep
// querying past DriftAt, and the served traffic itself carries everything
// a relearner needs to re-learn the new template.
type DriftingEngine struct {
	Orig *Engine
	New  *Engine
	// DriftAt is the first query index served with the new template.
	DriftAt int
}

// NewDriftingEngine pairs an engine with its Drifted redesign, cutting
// over at query index driftAt.
func NewDriftingEngine(e *Engine, driftAt int) *DriftingEngine {
	return &DriftingEngine{Orig: e, New: e.Drifted(), DriftAt: driftAt}
}

// Page generates result page queryIdx under whichever template is live at
// that index.  Ground truth tracks the live template, so extraction
// correctness stays checkable across the cut-over.
func (d *DriftingEngine) Page(queryIdx int) *GenPage {
	if queryIdx >= d.DriftAt {
		return d.New.Page(queryIdx)
	}
	return d.Orig.Page(queryIdx)
}
