package synth

import (
	"strings"
	"testing"
)

// TestFeaturedDeterministic: NewEngineFeatured is a pure function of
// (seed, id, multi, features) — the contract scenario replays lean on.
func TestFeaturedDeterministic(t *testing.T) {
	f := Features{NonSiblingRecords: true, CJK: true, DeepNesting: 3, HiddenSections: true}
	a := NewEngineFeatured(42, 5, true, f)
	b := NewEngineFeatured(42, 5, true, f)
	for q := 0; q < 6; q++ {
		if a.Page(q).HTML != b.Page(q).HTML {
			t.Fatalf("page %d: two featured engines from same inputs disagree", q)
		}
	}
}

// TestFeaturedZeroIsNewEngine: a zero Features must not perturb the base
// generator's output.
func TestFeaturedZeroIsNewEngine(t *testing.T) {
	a := NewEngine(42, 5, true)
	b := NewEngineFeatured(42, 5, true, Features{})
	for q := 0; q < 4; q++ {
		if a.Page(q).HTML != b.Page(q).HTML {
			t.Fatalf("page %d: zero-feature engine differs from NewEngine", q)
		}
	}
}

// TestFeatureCJK: with CJK set, record titles and snippets come from the
// CJK pools and no latin title word leaks through.
func TestFeatureCJK(t *testing.T) {
	e := NewEngineFeatured(7, 1, true, Features{CJK: true})
	p := e.Page(0)
	if len(p.Truth.Sections) == 0 {
		t.Fatal("no sections")
	}
	sawCJK := false
	for _, s := range p.Truth.Sections {
		for _, r := range s.Records {
			text := strings.Join(r.Lines, " ")
			for _, w := range cjkTitleWords {
				if strings.Contains(text, w) {
					sawCJK = true
				}
			}
			for _, w := range titleWords {
				if strings.Contains(text, " "+w+" ") {
					t.Fatalf("latin title word %q in CJK record lines %q", w, text)
				}
			}
		}
	}
	if !sawCJK {
		t.Fatal("no CJK title words found in any record")
	}
}

// TestFeatureMissingHeadings: every section loses its LBM, so the rendered
// page carries no section heading text.
func TestFeatureMissingHeadings(t *testing.T) {
	e := NewEngineFeatured(7, 2, true, Features{MissingHeadings: true})
	for _, ss := range e.Schema.Sections {
		if ss.HasLBM || ss.Heading != "" {
			t.Fatalf("section %d still has heading %q (HasLBM=%v)", ss.Index, ss.Heading, ss.HasLBM)
		}
	}
	p := e.Page(0)
	for _, s := range p.Truth.Sections {
		if s.Heading != "" {
			t.Fatalf("ground truth section has heading %q", s.Heading)
		}
	}
}

// TestFeatureDeepNesting: requesting deep nesting inflates the page's div
// depth relative to the unfeatured engine, and the cap holds.
func TestFeatureDeepNesting(t *testing.T) {
	base := NewEngine(7, 3, true)
	deep := NewEngineFeatured(7, 3, true, Features{DeepNesting: 5})
	b, d := base.Page(0).HTML, deep.Page(0).HTML
	if strings.Count(d, "<div") <= strings.Count(b, "<div") {
		t.Fatalf("deep nesting did not add div levels: %d vs %d",
			strings.Count(d, "<div"), strings.Count(b, "<div"))
	}
	capped := NewEngineFeatured(7, 3, true, Features{DeepNesting: 99})
	if capped.Schema.DeepNesting != maxDeepNesting {
		t.Fatalf("DeepNesting not capped: %d", capped.Schema.DeepNesting)
	}
}

// TestFeatureHiddenSections: secondary sections become query-class-gated,
// so some pages omit them while others include them.
func TestFeatureHiddenSections(t *testing.T) {
	e := NewEngineFeatured(7, 4, true, Features{HiddenSections: true})
	if len(e.Schema.Sections) < 2 {
		t.Skip("engine drew a single section")
	}
	counts := map[int]int{}
	const pages = 40
	for q := 0; q < pages; q++ {
		for _, s := range e.Page(q).Truth.Sections {
			counts[s.SchemaIndex]++
		}
	}
	hidden := false
	for _, ss := range e.Schema.Sections[1:] {
		if n := counts[ss.Index]; n > 0 && n < pages {
			hidden = true
		}
	}
	if !hidden {
		t.Fatalf("no secondary section was query-dependent: %v", counts)
	}
}

// TestRevealedShowsHiddenSections: Revealed() makes every hidden section
// permanent — each page past the reveal carries every schema section.
func TestRevealedShowsHiddenSections(t *testing.T) {
	e := NewEngineFeatured(7, 4, true, Features{HiddenSections: true})
	r := e.Revealed()
	for q := 0; q < 10; q++ {
		if got, want := len(r.Page(q).Truth.Sections), len(r.Schema.Sections); got != want {
			t.Fatalf("page %d: %d sections after reveal, want all %d", q, got, want)
		}
	}
	// Pure function, original untouched.
	if e.Schema.Sections[len(e.Schema.Sections)-1].QueryClass < 0 {
		t.Fatal("Revealed mutated the original schema")
	}
	a, b := e.Revealed(), e.Revealed()
	if a.Page(3).HTML != b.Page(3).HTML {
		t.Fatal("Revealed not deterministic")
	}
}

// TestScheduledEngine: cutovers switch templates at exactly the scheduled
// query indices and ground truth follows the live template.
func TestScheduledEngine(t *testing.T) {
	base := NewEngine(9, 1, true)
	red := base.Drifted()
	rev := red.Revealed()
	s := NewScheduledEngine(base)
	if err := s.Cutover(10, red); err != nil {
		t.Fatal(err)
	}
	if err := s.Cutover(20, rev); err != nil {
		t.Fatal(err)
	}
	if s.Phases() != 3 {
		t.Fatalf("Phases() = %d, want 3", s.Phases())
	}
	for _, tc := range []struct{ q, phase int }{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {100, 2},
	} {
		if _, p := s.EngineAt(tc.q); p != tc.phase {
			t.Fatalf("EngineAt(%d) phase %d, want %d", tc.q, p, tc.phase)
		}
	}
	if s.Page(9).HTML != base.Page(9).HTML {
		t.Fatal("page 9 not served by base template")
	}
	if s.Page(10).HTML != red.Page(10).HTML {
		t.Fatal("page 10 not served by first cutover")
	}
	if s.Page(25).HTML != rev.Page(25).HTML {
		t.Fatal("page 25 not served by second cutover")
	}
	// Out-of-order cutovers are rejected.
	if err := s.Cutover(15, base); err == nil {
		t.Fatal("out-of-order cutover accepted")
	}
	if err := s.Cutover(20, base); err == nil {
		t.Fatal("duplicate cutover index accepted")
	}
}
