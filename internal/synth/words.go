package synth

// Word pools used to generate deterministic but varied page content.

var queryWords = []string{
	"knee", "injury", "ultrasound", "pregnancy", "colic", "lymphoma",
	"cholesterol", "aspirin", "diabetes", "allergy", "vitamin", "fibroid",
	"laser", "therapy", "salt", "thirst", "guide", "driver", "baby",
	"pyramid", "camera", "laptop", "battery", "garden", "mortgage",
	"insurance", "travel", "hotel", "flight", "recipe", "novel", "history",
	"physics", "jazz", "guitar", "marathon", "yoga", "coffee", "cheese",
}

var titleWords = []string{
	"Advanced", "Complete", "Essential", "Practical", "Modern", "Classic",
	"Ultimate", "Official", "Expert", "Daily", "Weekly", "Annual",
	"Review", "Report", "Study", "Analysis", "Overview", "Introduction",
	"Handbook", "Manual", "Guide", "Journal", "Digest", "Bulletin",
	"Update", "Summary", "Findings", "Results", "Methods", "Trends",
}

var snippetWords = []string{
	"the", "research", "shows", "that", "patients", "often", "benefit",
	"from", "early", "treatment", "and", "careful", "monitoring", "while",
	"experts", "recommend", "a", "balanced", "approach", "with", "regular",
	"checkups", "new", "findings", "suggest", "improved", "outcomes",
	"for", "most", "cases", "according", "to", "recent", "studies",
	"published", "this", "year", "by", "leading", "researchers",
}

var sectionHeadings = []string{
	"Encyclopedia", "News", "Web Results", "Sponsored Links", "Products",
	"Articles", "Reviews", "Discussions", "Images", "Videos", "Books",
	"Local Results", "Shopping", "Related Searches", "Blogs", "Experts",
	"Dr. Dean Edell", "Peoples Pharmacy", "Health Library", "Directory",
}

var siteWords = []string{
	"Search", "Find", "Seek", "Quest", "Lookup", "Index", "Portal", "Hub",
	"Central", "Depot", "Base", "Net", "Web", "Info", "Data", "Max",
}

var navLabels = []string{
	"Home", "About Us", "Advanced Search", "Help", "Contact", "Sitemap",
	"Preferences", "Sign In", "Register", "Feedback",
}

var footerTexts = []string{
	"Copyright 2006 All rights reserved.",
	"Terms of Use",
	"Privacy Policy",
	"Advertise with us",
	"Jobs",
}

var falseSBMTexts = []string{
	"Buy new:", "In stock.", "Free shipping available.", "Used from:",
	"Add to cart", "Compare prices",
}

// CJK word pools: the i18n difficulty feature.  Record titles, snippets
// and section headings drawn from these pools have no ASCII word breaks,
// so tag-structure mining must work without any latin-text regularities
// (the vision-backend ablation of ROADMAP item 2 needs exactly this bed).
var cjkTitleWords = []string{
	"完全指南", "最新研究", "専門家評論", "実用手冊", "総合報告", "入門講座",
	"健康情報", "技術分析", "市場動向", "臨床試験", "学術論文", "年度総括",
	"深度解説", "快速入門", "権威発表", "精選推薦",
}

var cjkSnippetWords = []string{
	"研究によると", "患者は", "早期治療で", "改善が見られ", "専門家は",
	"バランスの取れた", "アプローチを", "推奨しています", "最新の知見は",
	"多くの症例で", "良好な結果を", "示しました", "定期的な検査と",
	"慎重な経過観察が", "重要です", "今年発表された", "主要な研究者による",
	"調査結果", "臨床データは", "有意な差を",
}

var cjkSectionHeadings = []string{
	"百科事典", "ニュース", "ウェブ検索結果", "スポンサー", "製品情報",
	"記事一覧", "レビュー", "ディスカッション", "画像", "動画", "書籍",
	"地域の結果", "ショッピング", "関連検索", "ブログ", "専門家",
	"健康情報局", "医療相談", "資料室", "ディレクトリ",
}

// markerAlphabet encodes marker identifiers without digits (digits would
// be stripped by DSE's dynamic-component cleaning and could collide across
// records).  Only a..m are used, so 'z' can serve as an unambiguous
// separator between encoded components.
const markerAlphabet = "abcdefghijklm"

// encodeLetters encodes a non-negative integer in base-13 letters a..m.
func encodeLetters(n int) string {
	if n == 0 {
		return "a"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{markerAlphabet[n%13]}, buf...)
		n /= 13
	}
	return string(buf)
}

// Marker builds the unique record marker token embedded in every content
// line of a generated record: "qj<engine>z<query>z<section>z<record>".
func Marker(engine, query, section, record int) string {
	return "qj" + encodeLetters(engine) + "z" + encodeLetters(query) +
		"z" + encodeLetters(section) + "z" + encodeLetters(record)
}
