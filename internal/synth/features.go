package synth

// Features are the config-drivable difficulty knobs of an engine schema.
// The base generator draws difficulty stochastically per engine (matching
// the paper's dataset statistics); a scenario that wants to *guarantee* a
// pathology — every record non-sibling, no headings anywhere, CJK text —
// applies Features on top of the drawn schema.  Application is a pure,
// deterministic transformation: the same (seed, id, multi, Features)
// always yields the same engine, so scenario replays stay reproducible.
//
// The JSON tags are the wire form scenario configs embed directly.
type Features struct {
	// NonSiblingRecords forces the paper's problematic DOM structure on
	// every section: record tag structures are not siblings under one
	// subtree (§6 names this as the main source of missing records).
	NonSiblingRecords bool `json:"non_sibling_records,omitempty"`
	// MissingHeadings strips every section's left boundary marker, so
	// section boundaries must be recovered from structure alone.
	MissingHeadings bool `json:"missing_headings,omitempty"`
	// CJK draws titles, snippets and headings from the CJK pools: no
	// latin word breaks, no casing, multi-byte runes throughout.
	CJK bool `json:"cjk,omitempty"`
	// DeepNesting wraps each section in this many extra <div> levels
	// (capped at 8), deepening every tag tree the miner aligns.
	DeepNesting int `json:"deep_nesting,omitempty"`
	// FalseSBM plants a repeated constant string in every record of every
	// section, faking a boundary marker (§5.2's filter_CSBMs adversary).
	FalseSBM bool `json:"false_sbm,omitempty"`
	// HiddenSections makes every secondary section fully query-dependent:
	// it appears only for queries in its class, producing hidden sections
	// and dangling instances (and the raw material for the "reveal" drift
	// kind, where a hidden section starts appearing mid-run).
	HiddenSections bool `json:"hidden_sections,omitempty"`
}

// Zero reports whether no feature is requested.
func (f Features) Zero() bool { return f == Features{} }

// maxDeepNesting bounds the extra wrapper levels a scenario can request;
// beyond this the pages stop being search result pages and start being
// parser stress tests (which the fuzz corpus already covers).
const maxDeepNesting = 8

// NewEngineFeatured derives an engine exactly like NewEngine and then
// applies the requested difficulty features to its schema.  With a zero
// Features it is NewEngine.
func NewEngineFeatured(masterSeed int64, id int, multi bool, f Features) *Engine {
	e := NewEngine(masterSeed, id, multi)
	ApplyFeatures(e.Schema, f)
	return e
}

// ApplyFeatures transforms a schema in place.  The transformation is
// deterministic (no randomness): scenario materialization depends on it.
func ApplyFeatures(ps *PageSchema, f Features) {
	if f.Zero() {
		return
	}
	if f.NonSiblingRecords || f.MissingHeadings || f.DeepNesting > 0 {
		// Flat layouts force sibling rows, mandatory heading rows and one
		// shared table; each of these features contradicts that.
		ps.Flat = false
	}
	if f.CJK {
		ps.CJK = true
		for i, ss := range ps.Sections {
			if ss.HasLBM {
				ss.Heading = cjkSectionHeadings[(ss.Index+i)%len(cjkSectionHeadings)]
			}
		}
	}
	if f.DeepNesting > 0 {
		ps.DeepNesting = f.DeepNesting
		if ps.DeepNesting > maxDeepNesting {
			ps.DeepNesting = maxDeepNesting
		}
	}
	for i, ss := range ps.Sections {
		if f.NonSiblingRecords {
			ss.NonSiblingRecords = true
		}
		if f.MissingHeadings {
			ss.HasLBM = false
			ss.Heading = ""
		}
		if f.FalseSBM {
			ss.FalseSBM = true
			if ss.FalseSBMText == "" {
				ss.FalseSBMText = falseSBMTexts[i%len(falseSBMTexts)]
			}
		}
		if f.HiddenSections && i > 0 {
			ss.QueryClass = (i * 2) % 7
			ss.Appear = 1.0 // the class alone decides presence
		}
	}
}
