package synth

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
)

func TestTestbedShape(t *testing.T) {
	cfg := DefaultConfig()
	engines := GenerateTestbed(cfg)
	if len(engines) != 119 {
		t.Fatalf("engines = %d, want 119", len(engines))
	}
	multi := 0
	for _, e := range engines {
		if e.MultiSection() {
			multi++
		}
	}
	if multi != 38 {
		t.Fatalf("multi-section engines = %d, want 38", multi)
	}
}

func TestDeterminism(t *testing.T) {
	e1 := NewEngine(42, 7, true)
	e2 := NewEngine(42, 7, true)
	p1 := e1.Page(3)
	p2 := e2.Page(3)
	if p1.HTML != p2.HTML {
		t.Fatalf("page generation is not deterministic")
	}
	if len(p1.Truth.Sections) != len(p2.Truth.Sections) {
		t.Fatalf("ground truth not deterministic")
	}
	// A different seed must give different content.
	e3 := NewEngine(43, 7, true)
	if e3.Page(3).HTML == p1.HTML {
		t.Fatalf("different seeds should differ")
	}
}

func TestMarkerUniqueness(t *testing.T) {
	seen := map[string]bool{}
	for _, eng := range []int{0, 1, 12, 13, 169} {
		for q := 0; q < 3; q++ {
			for s := 0; s < 3; s++ {
				for r := 0; r < 5; r++ {
					m := Marker(eng, q, s, r)
					if seen[m] {
						t.Fatalf("marker collision: %s", m)
					}
					seen[m] = true
					if strings.ContainsAny(m, "0123456789") {
						t.Fatalf("marker %s contains digits", m)
					}
				}
			}
		}
	}
}

// TestGroundTruthMatchesRenderer is the load-bearing self-check of the
// whole test bed: every ground-truth record line must appear in the
// rendered page as exactly one content line, contiguous per record, in
// order, and every marker-bearing rendered line must be accounted for.
func TestGroundTruthMatchesRenderer(t *testing.T) {
	engines := GenerateTestbed(Config{Seed: 2006, Engines: 30, MultiSection: 12, Queries: 4})
	pages := 0
	for _, e := range engines {
		for q := 0; q < 4; q++ {
			gp := e.Page(q)
			pages++
			page := layout.Render(htmlparse.Parse(gp.HTML))
			texts := make([]string, len(page.Lines))
			for i, l := range page.Lines {
				texts[i] = l.Text
			}
			cursor := 0
			for _, sec := range gp.Truth.Sections {
				for _, rec := range sec.Records {
					// Find the record's first line at or after cursor.
					start := -1
					for i := cursor; i < len(texts); i++ {
						if texts[i] == rec.Lines[0] {
							start = i
							break
						}
					}
					if start < 0 {
						t.Fatalf("engine %d page %d: record %s first line %q not found after line %d",
							e.ID, q, rec.Marker, rec.Lines[0], cursor)
					}
					for j, want := range rec.Lines {
						if start+j >= len(texts) || texts[start+j] != want {
							t.Fatalf("engine %d page %d: record %s line %d = %q, want %q",
								e.ID, q, rec.Marker, j,
								texts[min(start+j, len(texts)-1)], want)
						}
					}
					cursor = start + len(rec.Lines)
				}
			}
			// Every marker-bearing rendered line belongs to some GT record.
			markers := map[string]int{}
			for _, sec := range gp.Truth.Sections {
				for _, rec := range sec.Records {
					markers[rec.Marker] = len(rec.Lines)
				}
			}
			for _, l := range page.Lines {
				if idx := strings.Index(l.Text, "qj"); idx >= 0 {
					tok := tokenAt(l.Text, idx)
					if _, ok := markers[tok]; !ok {
						t.Fatalf("engine %d page %d: rendered marker %q missing from ground truth",
							e.ID, q, tok)
					}
				}
			}
		}
	}
	if pages != 120 {
		t.Fatalf("generated %d pages", pages)
	}
}

// tokenAt extracts the whitespace/punctuation-delimited marker token
// starting at idx.
func tokenAt(s string, idx int) string {
	end := idx
	for end < len(s) && (s[end] >= 'a' && s[end] <= 'z') {
		end++
	}
	return s[idx:end]
}

func TestHiddenSectionsOccur(t *testing.T) {
	// Across the test bed, at least one engine must produce pages with
	// differing section sets (hidden sections).
	engines := GenerateTestbed(DefaultConfig())
	found := false
	for _, e := range engines {
		if !e.MultiSection() {
			continue
		}
		counts := map[int]int{}
		for q := 0; q < 10; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				counts[s.SchemaIndex]++
			}
		}
		for _, c := range counts {
			if c > 0 && c < 10 {
				found = true
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Fatalf("no hidden sections in the test bed")
	}
}

func TestSmallSectionsOccur(t *testing.T) {
	engines := GenerateTestbed(DefaultConfig())
	small := 0
	for _, e := range engines[:40] {
		for q := 0; q < 5; q++ {
			for _, s := range e.Page(q).Truth.Sections {
				if len(s.Records) < 3 {
					small++
				}
			}
		}
	}
	if small == 0 {
		t.Fatalf("no sections with fewer than three records; MRE-only path untested")
	}
}

func TestSBMCoverageStatistic(t *testing.T) {
	// The paper reports 96.9% of sections have explicit boundary markers;
	// the generator aims for a similar rate (~97%).
	engines := GenerateTestbed(DefaultConfig())
	total, withLBM := 0, 0
	for _, e := range engines {
		for _, ss := range e.Schema.Sections {
			total++
			if ss.HasLBM {
				withLBM++
			}
		}
	}
	rate := float64(withLBM) / float64(total)
	if rate < 0.90 || rate > 1.0 {
		t.Fatalf("LBM coverage = %.3f, want ≈0.97", rate)
	}
}

func TestQueryTermsAppearInRecords(t *testing.T) {
	e := NewEngine(2006, 3, true)
	gp := e.Page(0)
	joined := ""
	for _, s := range gp.Truth.Sections {
		for _, r := range s.Records {
			joined += strings.Join(r.Lines, " ") + " "
		}
	}
	hasTerm := false
	for _, term := range gp.Query {
		if strings.Contains(joined, term) {
			hasTerm = true
		}
	}
	if len(joined) > 500 && !hasTerm {
		t.Fatalf("query terms never appear in record content")
	}
}

func TestFlatEnginesExist(t *testing.T) {
	engines := GenerateTestbed(DefaultConfig())
	flat := 0
	for _, e := range engines {
		if e.Schema.Flat {
			flat++
		}
	}
	if flat == 0 {
		t.Fatalf("no flat-layout engines; Figure-1 hard case untested")
	}
}

func TestNonSiblingEnginesExist(t *testing.T) {
	engines := GenerateTestbed(DefaultConfig())
	n := 0
	for _, e := range engines {
		for _, ss := range e.Schema.Sections {
			if ss.NonSiblingRecords {
				n++
			}
		}
	}
	if n == 0 {
		t.Fatalf("no non-sibling sections; §6 failure mode untested")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
