// Package synth generates the synthetic search-engine test bed that stands
// in for the paper's 119 live search engines (the ViNTs dataset 2 plus 19
// multi-section engines, evaluated with 10 manually submitted queries
// each).  Each synthetic engine is a seeded generative page schema in the
// sense of Section 2 of the paper: a set of possible dynamic section
// schemas embedded in a static template with semi-dynamic content.  Every
// generated page carries machine-readable ground truth (which lines belong
// to which record of which section), replacing the paper's manual
// judgments.
//
// The generator reproduces the statistical properties the paper reports
// and the failure modes it discusses:
//
//   - a configurable fraction of engines produce multi-section pages
//     (19/100 in the original dataset; 38/119 in the full test bed);
//   - ~97% of sections have explicit boundary markers (96.9% in §2);
//   - some sections are "hidden": absent from some or all sample pages;
//   - some sections have fewer than three records on some pages;
//   - some engines have problematic DOM structures whose records are not
//     siblings under a common subtree (§6 names this as the main source of
//     missing records);
//   - some records repeat a constant string ("Buy new:") that fakes a
//     boundary marker (§5.2's filter_CSBMs motivation);
//   - adjacent sections may share the same record format (the non-uniform
//     section format and granularity problems of §1).
package synth

import (
	"fmt"
	"math/rand"
)

// Style selects the overall markup idiom of an engine's result pages.
type Style int

const (
	// TableStyle lays records out as table rows (the dominant 2006 idiom).
	TableStyle Style = iota
	// DivStyle nests records in <div> containers.
	DivStyle
	// ListStyle renders records as <li> items.
	ListStyle
	// DlStyle renders records as definition-list pairs: the title in a
	// <dt>, the remaining lines in the following <dd>.  Records therefore
	// occupy two sibling subtrees — a start/interior separator structure
	// rather than a single container per record.
	DlStyle

	numStyles = int(DlStyle) + 1
)

// String names the style.
func (s Style) String() string {
	switch s {
	case TableStyle:
		return "table"
	case DivStyle:
		return "div"
	case ListStyle:
		return "list"
	case DlStyle:
		return "dl"
	}
	return "unknown"
}

// RecordFormat describes how a section renders one search result record.
type RecordFormat struct {
	// TitleIsLink renders the title as an anchor.
	TitleIsLink bool
	// SnippetLines is the maximum number of snippet lines per record (the
	// actual number varies per record between SnippetMin and this value).
	SnippetLines int
	// SnippetMin is the minimum number of snippet lines.
	SnippetMin int
	// HasURLLine appends a green URL line, search-engine style.
	HasURLLine bool
	// HasPrice appends a price line (shopping sections).
	HasPrice bool
	// HasDate appends a date like "(4/10/2002)" to the title.
	HasDate bool
	// NumberPrefix renders an ordinal cell/text before the title.
	NumberPrefix bool
	// TitleBold wraps the title in <b>.
	TitleBold bool
	// HasImage prepends a thumbnail image to the title line, making it an
	// image-text content line.
	HasImage bool
	// MultiRow renders each record line as its own table row (table-style
	// engines only); otherwise a record is one row with <br>-separated
	// lines.
	MultiRow bool
}

// HeadingStyle describes how a section's left boundary marker is rendered.
type HeadingStyle int

const (
	// HeadingH3 renders the LBM as an <h3>.
	HeadingH3 HeadingStyle = iota
	// HeadingBoldFont renders the LBM as a bold colored <font> line.
	HeadingBoldFont
	// HeadingDivStyled renders the LBM as a styled <div>.
	HeadingDivStyled
	// HeadingClass renders the LBM as <div class="hd"> styled by a CSS
	// rule in the page's <style> block.
	HeadingClass

	numHeadingStyles = int(HeadingClass) + 1
)

// SectionSchema is one possible dynamic section of an engine's result page
// schema (an S_i of Section 2).
type SectionSchema struct {
	// Index is the position of the section in the result page schema.
	Index int
	// Heading is the LBM text ("Encyclopedia"); empty when HasLBM is
	// false.
	Heading string
	// HasLBM / HasRBM control explicit boundary markers.  ~97% of
	// sections have at least an LBM, matching the paper's statistic.
	HasLBM bool
	// HasRBM adds a "Click Here for More" style right boundary marker
	// when the section is full.
	HasRBM bool
	// HeadingStyle selects the LBM markup.
	HeadingStyle HeadingStyle
	// Appear is the probability that a query retrieves any records for
	// this section; sections with Appear < 1 are sometimes absent, which
	// creates hidden sections.
	Appear float64
	// MinRecords / MaxRecords bound the per-query record count when the
	// section appears.
	MinRecords int
	MaxRecords int
	// Format is the record format.
	Format RecordFormat
	// NonSiblingRecords injects the paper's problematic DOM structure:
	// consecutive records are wrapped pairwise in extra containers so
	// their tag structures are not siblings under one subtree.
	NonSiblingRecords bool
	// FalseSBM repeats a constant string in every record of the section,
	// faking a boundary marker.
	FalseSBM bool
	// FalseSBMText is the repeated string when FalseSBM is set.
	FalseSBMText string
	// QueryClass, when non-negative, makes the section fully query
	// dependent: it appears only for queries whose index is congruent to
	// QueryClass modulo 7.  Classes 5 and 6 never occur among the five
	// sample pages, producing the paper's *hidden sections*; classes 0-4
	// occur on exactly one sample page, producing dangling instances that
	// only section families can recover.
	QueryClass int
	// InlineMore appends a "More results about <word> ..." trailer line
	// inside the section container after the last record.  The random
	// word keeps the line from ever matching across pages, so it can
	// never become a CSBM: extraction inevitably attaches it to the last
	// record, making the section partially correct at best — the paper's
	// dominant error class ("missing some records or falsely extracting
	// some records", §6).
	InlineMore bool
}

// PageSchema is the result page schema (D, S, SD, L) of an engine: all its
// possible dynamic sections plus its static template and semi-dynamic
// content.
type PageSchema struct {
	SiteName string
	Style    Style
	Sections []*SectionSchema
	// NavLinks is the static navigation row.
	NavLinks []string
	// FooterLines are the static footer texts.
	FooterLines []string
	// HasResultCount controls the semi-dynamic "Your search returned N
	// matches" line.
	HasResultCount bool
	// HasSearchBox adds the static search form.
	HasSearchBox bool
	// Flat renders all sections as rows of one shared table, separated
	// only by styled heading rows (the Figure 1 / Figure 10 situation
	// where every section has the same tag structure and only the SBMs
	// distinguish them).  Only used with TableStyle schemas.
	Flat bool
	// CJK draws record titles, snippets and headings from the CJK word
	// pools instead of the latin ones (the i18n difficulty feature).
	CJK bool
	// DeepNesting wraps every dynamic section's markup in this many extra
	// <div> levels, deepening the tag trees the miner must align.
	DeepNesting int
}

// Engine is one synthetic search engine.
type Engine struct {
	ID     int
	Name   string
	Schema *PageSchema
	seed   int64
}

// MultiSection reports whether the engine's schema has more than one
// dynamic section.
func (e *Engine) MultiSection() bool { return len(e.Schema.Sections) > 1 }

// Config controls test-bed generation.
type Config struct {
	// Seed is the master seed; the whole test bed is a pure function of
	// it.
	Seed int64
	// Engines is the total number of engines (the paper uses 119).
	Engines int
	// MultiSection is how many of them have multi-section schemas (38).
	MultiSection int
	// Queries is the number of result pages per engine (10: 5 sample + 5
	// test).
	Queries int
}

// DefaultConfig mirrors the paper's test bed: 119 engines, 38 of them
// multi-section, 10 result pages each.
func DefaultConfig() Config {
	return Config{Seed: 2006, Engines: 119, MultiSection: 38, Queries: 10}
}

// GenerateTestbed builds the full engine set for a configuration.
func GenerateTestbed(cfg Config) []*Engine {
	engines := make([]*Engine, 0, cfg.Engines)
	for i := 0; i < cfg.Engines; i++ {
		multi := i < cfg.MultiSection
		engines = append(engines, NewEngine(cfg.Seed, i, multi))
	}
	return engines
}

// NewEngine deterministically derives engine number id from the master
// seed.  multi selects a multi-section schema.
func NewEngine(masterSeed int64, id int, multi bool) *Engine {
	seed := masterSeed*1000003 + int64(id)*7919
	rng := rand.New(rand.NewSource(seed))
	schema := newPageSchema(rng, id, multi)
	return &Engine{
		ID:     id,
		Name:   schema.SiteName,
		Schema: schema,
		seed:   seed,
	}
}

func newPageSchema(rng *rand.Rand, id int, multi bool) *PageSchema {
	ps := &PageSchema{
		SiteName:       fmt.Sprintf("%s%s.example", pick(rng, siteWords), pick(rng, siteWords)),
		Style:          Style(rng.Intn(numStyles)),
		HasResultCount: rng.Float64() < 0.8,
		HasSearchBox:   rng.Float64() < 0.7,
	}
	// Static template.
	nNav := 2 + rng.Intn(4)
	seenNav := map[string]bool{}
	for len(ps.NavLinks) < nNav {
		l := pick(rng, navLabels)
		if !seenNav[l] {
			seenNav[l] = true
			ps.NavLinks = append(ps.NavLinks, l)
		}
	}
	nFoot := 1 + rng.Intn(3)
	for i := 0; i < nFoot; i++ {
		ps.FooterLines = append(ps.FooterLines, footerTexts[i%len(footerTexts)])
	}

	nSections := 1
	if multi {
		nSections = 2 + rng.Intn(4) // 2..5
	}
	// Engines overwhelmingly use one heading style site-wide; occasional
	// sections deviate.  A shared style is also what makes Type 1 / Type 2
	// section families possible (§5.8 requires members to share the
	// boundary markers' text attributes).
	engineHeadingStyle := HeadingStyle(rng.Intn(numHeadingStyles))
	usedHeadings := map[string]bool{}
	// With some probability all sections of a multi-section engine share
	// one record format (the Figure 1 situation where only the SBMs
	// separate sections); otherwise each section draws its own format.
	sharedFormat := multi && rng.Float64() < 0.4
	var shared RecordFormat
	if sharedFormat {
		shared = newRecordFormat(rng)
	}
	for i := 0; i < nSections; i++ {
		ss := &SectionSchema{
			Index:        i,
			HasLBM:       true,
			HeadingStyle: engineHeadingStyle,
			Appear:       1.0,
			QueryClass:   -1,
			MinRecords:   1,
			MaxRecords:   4 + rng.Intn(7), // 4..10
		}
		if rng.Float64() < 0.1 {
			ss.HeadingStyle = HeadingStyle(rng.Intn(numHeadingStyles))
		}
		// ~3% of sections lack an explicit LBM (96.9% coverage in §2;
		// the flat layout below forces markers back on, so the draw is
		// slightly more aggressive than the target rate).
		if rng.Float64() < 0.05 {
			ss.HasLBM = false
		}
		if ss.HasLBM {
			for {
				h := pick(rng, sectionHeadings)
				if !usedHeadings[h] {
					usedHeadings[h] = true
					ss.Heading = h
					break
				}
			}
		}
		ss.HasRBM = rng.Float64() < 0.5
		if sharedFormat {
			ss.Format = shared
		} else {
			ss.Format = newRecordFormat(rng)
		}
		// Secondary sections sometimes appear only for some queries
		// (hidden sections); the first section is always present.
		if i > 0 && rng.Float64() < 0.3 {
			ss.Appear = 0.55 + 0.35*rng.Float64()
		}
		// Some secondary sections are fully query dependent — the source
		// of hidden sections and dangling instances.
		if i > 0 && rng.Float64() < 0.08 {
			ss.QueryClass = rng.Intn(7)
		}
		// Secondary sections are often short (fewer than three records on
		// many pages), exercising the DSE + record-mining path.
		if i > 0 && rng.Float64() < 0.4 {
			ss.MaxRecords = 1 + rng.Intn(3) // 1..3
		}
		// Difficulty features.
		if rng.Float64() < 0.08 {
			ss.NonSiblingRecords = true
		}
		if rng.Float64() < 0.12 {
			ss.FalseSBM = true
			ss.FalseSBMText = pick(rng, falseSBMTexts)
		}
		if rng.Float64() < 0.16 {
			ss.InlineMore = true
		}
		ps.Sections = append(ps.Sections, ss)
	}
	if multi && ps.Style == TableStyle && rng.Float64() < 0.5 {
		ps.Flat = true
		// Flat layouts force single-row records with a uniform format so
		// that only the heading rows separate the sections.
		flatFormat := ps.Sections[0].Format
		flatFormat.MultiRow = false
		for _, ss := range ps.Sections {
			ss.Format = flatFormat
			ss.HasLBM = true // the heading row is the only separator
			if ss.Heading == "" {
				for {
					h := pick(rng, sectionHeadings)
					if !usedHeadings[h] {
						usedHeadings[h] = true
						ss.Heading = h
						break
					}
				}
			}
			ss.NonSiblingRecords = false
		}
	}
	return ps
}

func newRecordFormat(rng *rand.Rand) RecordFormat {
	f := RecordFormat{
		TitleIsLink:  rng.Float64() < 0.9,
		SnippetLines: rng.Intn(3),          // 0..2
		HasURLLine:   rng.Float64() < 0.35, //
		HasPrice:     rng.Float64() < 0.15, //
		HasDate:      rng.Float64() < 0.4,  //
		NumberPrefix: rng.Float64() < 0.4,  //
		TitleBold:    rng.Float64() < 0.3,  //
		MultiRow:     rng.Float64() < 0.3,  //
	}
	if f.SnippetLines > 0 {
		// Some engines vary snippet length per record, some keep it fixed.
		if rng.Float64() < 0.5 {
			f.SnippetMin = f.SnippetLines
		} else {
			f.SnippetMin = rng.Intn(f.SnippetLines + 1)
		}
	}
	return f
}

func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}
