package synth

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenPage is one generated result page together with its ground truth.
type GenPage struct {
	EngineID   int
	QueryIndex int
	// Query holds the query terms the page "answers".
	Query []string
	// HTML is the page source.
	HTML string
	// Truth is the machine-readable ground truth.
	Truth GroundTruth
}

// GroundTruth lists the dynamic sections actually present on a page, in
// document order, with the exact rendered content lines of every record.
type GroundTruth struct {
	Sections []GTSection
}

// GTSection is the ground truth for one dynamic section instance.
type GTSection struct {
	// SchemaIndex identifies the section schema within the engine's
	// result page schema.
	SchemaIndex int
	// Heading is the LBM text, empty for sections without one.
	Heading string
	// Records are the section's records in order.
	Records []GTRecord
}

// GTRecord is the ground truth for one search result record.
type GTRecord struct {
	// Marker is the unique token embedded in the record's marked lines.
	Marker string
	// Lines are the exact rendered content-line texts of the record, in
	// order.
	Lines []string
}

// TotalRecords counts records across all sections.
func (gt GroundTruth) TotalRecords() int {
	n := 0
	for _, s := range gt.Sections {
		n += len(s.Records)
	}
	return n
}

// Page generates result page queryIdx of the engine.  The output is a pure
// function of the engine seed and the query index.
func (e *Engine) Page(queryIdx int) *GenPage {
	rng := rand.New(rand.NewSource(e.seed*31 + int64(queryIdx)*104729 + 17))
	q1 := pick(rng, queryWords)
	q2 := pick(rng, queryWords)
	for q2 == q1 {
		q2 = pick(rng, queryWords)
	}
	gp := &GenPage{
		EngineID:   e.ID,
		QueryIndex: queryIdx,
		Query:      []string{q1, q2},
	}
	b := &pageBuilder{rng: rng, engine: e, page: gp}
	b.build()
	return gp
}

// Pages generates the engine's full set of result pages.
func (e *Engine) Pages(n int) []*GenPage {
	out := make([]*GenPage, n)
	for i := range out {
		out[i] = e.Page(i)
	}
	return out
}

// pageBuilder accumulates HTML and ground truth for one page.
type pageBuilder struct {
	rng    *rand.Rand
	engine *Engine
	page   *GenPage
	html   strings.Builder
}

func (b *pageBuilder) build() {
	e := b.engine
	ps := e.Schema
	q := b.page.Query
	fmt.Fprintf(&b.html, "<html><head><title>%s search: %s %s</title>", ps.SiteName, q[0], q[1])
	if b.usesClassHeadings() {
		b.html.WriteString(`<style>.hd { font-weight: bold; font-size: 18px; color: #663300 }</style>`)
	}
	b.html.WriteString("</head>\n<body>\n")
	// --- static / semi-dynamic template header ---
	fmt.Fprintf(&b.html, "<h1>%s</h1>\n", ps.SiteName)
	var nav []string
	for i, l := range ps.NavLinks {
		nav = append(nav, fmt.Sprintf(`<a href="/nav%d">%s</a>`, i, l))
	}
	fmt.Fprintf(&b.html, "<div>%s</div>\n", strings.Join(nav, " | "))
	if ps.HasSearchBox {
		fmt.Fprintf(&b.html,
			`<form action="/search"><input type="text" value="%s %s"><input type="submit" value="Search"></form>`+"\n",
			q[0], q[1])
	}
	if ps.HasResultCount {
		fmt.Fprintf(&b.html,
			"<div>Your search returned %d matches for <b>%s %s</b>.</div>\n",
			50+b.rng.Intn(900), q[0], q[1])
	}
	b.html.WriteString("<hr>\n")

	// --- dynamic sections ---
	if ps.Flat {
		b.buildFlatSections()
	} else {
		for _, ss := range ps.Sections {
			b.buildSection(ss)
		}
	}

	// --- semi-dynamic pagination ---
	if len(b.page.Truth.Sections) > 0 {
		fmt.Fprintf(&b.html,
			`<div>Result page: 1 2 3 %d <a href="/page2">Next</a></div>`+"\n",
			4+b.rng.Intn(6))
	}

	// --- static footer ---
	b.html.WriteString("<hr>\n")
	for _, f := range ps.FooterLines {
		fmt.Fprintf(&b.html, "<div>%s</div>\n", f)
	}
	b.html.WriteString("</body></html>\n")
	b.page.HTML = b.html.String()
}

// sectionRecordCount draws how many records a section has on this page
// (0 when the section does not appear).
func (b *pageBuilder) sectionRecordCount(ss *SectionSchema) int {
	if ss.QueryClass >= 0 && b.page.QueryIndex%7 != ss.QueryClass {
		return 0
	}
	if b.rng.Float64() >= ss.Appear {
		return 0
	}
	span := ss.MaxRecords - ss.MinRecords
	n := ss.MinRecords
	if span > 0 {
		n += b.rng.Intn(span + 1)
	}
	return n
}

// buildSection emits one dynamic section (non-flat layouts).
func (b *pageBuilder) buildSection(ss *SectionSchema) {
	count := b.sectionRecordCount(ss)
	if count == 0 {
		return // hidden on this page
	}
	// Deep nesting wraps the whole section (heading included) in extra
	// container levels; the content lines are unchanged, only the tag
	// trees above them deepen.
	for i := 0; i < b.engine.Schema.DeepNesting; i++ {
		fmt.Fprintf(&b.html, `<div class="w%d">`+"\n", i)
	}
	defer func() {
		for i := 0; i < b.engine.Schema.DeepNesting; i++ {
			b.html.WriteString("</div>\n")
		}
	}()
	gts := GTSection{SchemaIndex: ss.Index, Heading: ss.Heading}
	if ss.HasLBM {
		b.html.WriteString(headingHTML(ss.HeadingStyle, ss.Heading))
	}
	recs := b.makeRecords(ss, count)
	var trailer string
	if ss.InlineMore && b.rng.Float64() < 0.75 {
		trailer = fmt.Sprintf(`<a href="/more/%d">More %s results ...</a>`,
			ss.Index, pick(b.rng, snippetWords))
	}
	switch b.engine.Schema.Style {
	case TableStyle:
		b.emitTableSection(ss, recs, trailer)
	case DivStyle:
		b.emitDivSection(ss, recs, trailer)
	case ListStyle:
		b.emitListSection(ss, recs, trailer)
	case DlStyle:
		b.emitDlSection(ss, recs, trailer)
	}
	for _, r := range recs {
		gts.Records = append(gts.Records, GTRecord{Marker: r.marker, Lines: r.lines})
	}
	if ss.HasRBM && count >= ss.MaxRecords {
		fmt.Fprintf(&b.html, `<div><a href="/more?s=%d">Click Here for More ...</a></div>`+"\n", ss.Index)
	}
	b.page.Truth.Sections = append(b.page.Truth.Sections, gts)
}

// buildFlatSections emits all sections as rows of one shared table,
// separated only by styled heading rows.
func (b *pageBuilder) buildFlatSections() {
	type flatSec struct {
		ss   *SectionSchema
		recs []genRecord
	}
	var secs []flatSec
	for _, ss := range b.engine.Schema.Sections {
		count := b.sectionRecordCount(ss)
		if count == 0 {
			continue
		}
		secs = append(secs, flatSec{ss: ss, recs: b.makeRecords(ss, count)})
	}
	if len(secs) == 0 {
		return
	}
	b.html.WriteString("<table>\n")
	for _, fs := range secs {
		fmt.Fprintf(&b.html,
			`<tr><td><b><font color="#003399" size="4">%s</font></b></td></tr>`+"\n",
			fs.ss.Heading)
		for _, r := range fs.recs {
			fmt.Fprintf(&b.html, "<tr><td>%s</td></tr>\n", strings.Join(r.htmlLines, "<br>"))
		}
		gts := GTSection{SchemaIndex: fs.ss.Index, Heading: fs.ss.Heading}
		for _, r := range fs.recs {
			gts.Records = append(gts.Records, GTRecord{Marker: r.marker, Lines: r.lines})
		}
		b.page.Truth.Sections = append(b.page.Truth.Sections, gts)
	}
	b.html.WriteString("</table>\n")
}

func headingHTML(style HeadingStyle, text string) string {
	switch style {
	case HeadingH3:
		return fmt.Sprintf("<h3>%s</h3>\n", text)
	case HeadingBoldFont:
		return fmt.Sprintf(`<div><b><font color="#003399" size="4">%s</font></b></div>`+"\n", text)
	case HeadingClass:
		return fmt.Sprintf(`<div class="hd">%s</div>`+"\n", text)
	default:
		return fmt.Sprintf(`<div style="font-size: 18px; font-weight: bold; color: #663300">%s</div>`+"\n", text)
	}
}

// usesClassHeadings reports whether any section of the engine's schema
// renders its heading through the CSS class rule.
func (b *pageBuilder) usesClassHeadings() bool {
	for _, ss := range b.engine.Schema.Sections {
		if ss.HeadingStyle == HeadingClass {
			return true
		}
	}
	return false
}

// genRecord is a generated record: its marker, the HTML of each line and
// the exact rendered text of each line.
type genRecord struct {
	marker    string
	htmlLines []string
	lines     []string
}

// makeRecords generates the record contents for a section instance.
func (b *pageBuilder) makeRecords(ss *SectionSchema, count int) []genRecord {
	recs := make([]genRecord, count)
	for i := range recs {
		recs[i] = b.makeRecord(ss, i)
	}
	return recs
}

func (b *pageBuilder) makeRecord(ss *SectionSchema, idx int) genRecord {
	f := ss.Format
	marker := Marker(b.engine.ID, b.page.QueryIndex, ss.Index, idx)
	r := genRecord{marker: marker}
	q := b.page.Query

	addLine := func(html, text string) {
		r.htmlLines = append(r.htmlLines, html)
		r.lines = append(r.lines, normalizeText(text))
	}

	// --- title line ---
	titles, snippets := titleWords, snippetWords
	if b.engine.Schema.CJK {
		titles, snippets = cjkTitleWords, cjkSnippetWords
	}
	titleTxt := pick(b.rng, titles) + " " + pick(b.rng, titles)
	if b.rng.Float64() < 0.6 {
		titleTxt += " " + q[b.rng.Intn(2)]
	}
	var sb strings.Builder
	var txt strings.Builder
	if f.HasImage {
		sb.WriteString(`<img src="/thumb.gif" alt=""> `)
	}
	if f.NumberPrefix {
		fmt.Fprintf(&sb, "%d. ", idx+1)
		fmt.Fprintf(&txt, "%d. ", idx+1)
	}
	inner := titleTxt
	if f.TitleBold {
		inner = "<b>" + inner + "</b>"
	}
	if f.TitleIsLink {
		fmt.Fprintf(&sb, `<a href="/doc/%s">%s</a>`, marker, inner)
	} else {
		sb.WriteString("<b>" + inner + "</b>")
	}
	txt.WriteString(titleTxt)
	if f.HasDate {
		date := fmt.Sprintf("(%d/%d/200%d)", 1+b.rng.Intn(12), 1+b.rng.Intn(28), 2+b.rng.Intn(5))
		sb.WriteString(" " + date)
		txt.WriteString(" " + date)
	}
	sb.WriteString(" " + marker)
	txt.WriteString(" " + marker)
	addLine(sb.String(), txt.String())

	// --- false boundary-marker line (no marker token, by design) ---
	if ss.FalseSBM {
		addLine(ss.FalseSBMText, ss.FalseSBMText)
	}

	// --- snippet lines ---
	nSnip := f.SnippetMin
	if f.SnippetLines > f.SnippetMin {
		nSnip += b.rng.Intn(f.SnippetLines - f.SnippetMin + 1)
	}
	for s := 0; s < nSnip; s++ {
		words := make([]string, 0, 10)
		n := 6 + b.rng.Intn(5)
		for w := 0; w < n; w++ {
			words = append(words, pick(b.rng, snippets))
		}
		if b.rng.Float64() < 0.5 {
			words[b.rng.Intn(len(words))] = q[b.rng.Intn(2)]
		}
		line := strings.Join(words, " ") + " " + marker
		addLine(line, line)
	}

	// --- URL line ---
	if f.HasURLLine {
		u := fmt.Sprintf("www.%s/doc/%s.html", b.engine.Schema.SiteName, marker)
		addLine(fmt.Sprintf(`<font color="#008000">%s</font>`, u), u)
	}

	// --- price line ---
	if f.HasPrice {
		p := fmt.Sprintf("Price: $%d.%02d %s", 5+b.rng.Intn(95), b.rng.Intn(100), marker)
		addLine(p, p)
	}
	return r
}

// emitTableSection renders records as table rows.
func (b *pageBuilder) emitTableSection(ss *SectionSchema, recs []genRecord, trailer string) {
	b.html.WriteString("<table>\n")
	if ss.NonSiblingRecords {
		// Pairs of records get their own <tbody>, so record roots are not
		// all siblings directly under one parent.
		for i := 0; i < len(recs); i += 2 {
			b.html.WriteString("<tbody>\n")
			for j := i; j < i+2 && j < len(recs); j++ {
				b.emitTableRecord(ss, recs[j])
			}
			b.html.WriteString("</tbody>\n")
		}
	} else {
		for _, r := range recs {
			b.emitTableRecord(ss, r)
		}
	}
	if trailer != "" {
		fmt.Fprintf(&b.html, "<tr><td>%s</td></tr>\n", trailer)
	}
	b.html.WriteString("</table>\n")
}

func (b *pageBuilder) emitTableRecord(ss *SectionSchema, r genRecord) {
	if ss.Format.MultiRow {
		for _, hl := range r.htmlLines {
			fmt.Fprintf(&b.html, "<tr><td>%s</td></tr>\n", hl)
		}
		return
	}
	fmt.Fprintf(&b.html, "<tr><td>%s</td></tr>\n", strings.Join(r.htmlLines, "<br>"))
}

// emitDivSection renders records as nested <div>s.
func (b *pageBuilder) emitDivSection(ss *SectionSchema, recs []genRecord, trailer string) {
	b.html.WriteString(`<div class="results">` + "\n")
	if ss.NonSiblingRecords {
		// Ladder nesting: each record's container holds the next record,
		// the paper's "records are not siblings" pathology.
		for _, r := range recs {
			fmt.Fprintf(&b.html, `<div class="r">%s`+"\n", strings.Join(r.htmlLines, "<br>"))
		}
		for range recs {
			b.html.WriteString("</div>")
		}
		b.html.WriteString("\n")
	} else {
		for _, r := range recs {
			fmt.Fprintf(&b.html, `<div class="r">%s</div>`+"\n", strings.Join(r.htmlLines, "<br>"))
		}
	}
	if trailer != "" {
		fmt.Fprintf(&b.html, "<div>%s</div>\n", trailer)
	}
	b.html.WriteString("</div>\n")
}

// emitListSection renders records as list items.
func (b *pageBuilder) emitListSection(ss *SectionSchema, recs []genRecord, trailer string) {
	b.html.WriteString("<ul>\n")
	if ss.NonSiblingRecords {
		for i := 0; i < len(recs); i += 2 {
			b.html.WriteString("<li>\n<ul>\n")
			for j := i; j < i+2 && j < len(recs); j++ {
				fmt.Fprintf(&b.html, "<li>%s</li>\n", strings.Join(recs[j].htmlLines, "<br>"))
			}
			b.html.WriteString("</ul>\n</li>\n")
		}
	} else {
		for _, r := range recs {
			fmt.Fprintf(&b.html, "<li>%s</li>\n", strings.Join(r.htmlLines, "<br>"))
		}
	}
	if trailer != "" {
		fmt.Fprintf(&b.html, "<li>%s</li>\n", trailer)
	}
	b.html.WriteString("</ul>\n")
}

// emitDlSection renders records as <dt>/<dd> pairs: the record title in
// the <dt>, its remaining lines in the <dd>.  Records without extra lines
// emit no <dd> at all, so the record grammar varies structurally.
func (b *pageBuilder) emitDlSection(ss *SectionSchema, recs []genRecord, trailer string) {
	b.html.WriteString("<dl>\n")
	emit := func(r genRecord) {
		fmt.Fprintf(&b.html, "<dt>%s</dt>\n", r.htmlLines[0])
		if len(r.htmlLines) > 1 {
			fmt.Fprintf(&b.html, "<dd>%s</dd>\n", strings.Join(r.htmlLines[1:], "<br>"))
		}
	}
	if ss.NonSiblingRecords {
		// Pairs of records wrapped in stray <div>s inside the <dl> (as
		// tag soup in the wild does), so records are not all siblings.
		for i := 0; i < len(recs); i += 2 {
			b.html.WriteString("<div>\n")
			for j := i; j < i+2 && j < len(recs); j++ {
				emit(recs[j])
			}
			b.html.WriteString("</div>\n")
		}
	} else {
		for _, r := range recs {
			emit(r)
		}
	}
	if trailer != "" {
		fmt.Fprintf(&b.html, "<dt>%s</dt>\n", trailer)
	}
	b.html.WriteString("</dl>\n")
}

// normalizeText applies the same whitespace normalization the renderer
// applies to content lines, so that ground-truth line texts match rendered
// line texts exactly.
func normalizeText(s string) string {
	return strings.Join(strings.Fields(s), " ")
}
