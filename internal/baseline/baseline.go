// Package baseline implements the comparison systems discussed in the
// paper's related-work section (§7):
//
//   - an MDR-style extractor [15]: per-page mining of "data regions" —
//     runs of structurally similar sibling subtrees — with no
//     static/dynamic differentiation, no wrapper, and a two-record
//     minimum.  The paper credits MDR as the only prior system that can
//     output multiple sections but notes it cannot tell dynamic sections
//     from static repeating content and does not address the granularity
//     or hidden-section problems;
//
//   - a ViNTs-style single-section extractor [29]: MRE restricted to the
//     single best multi-record section per page, the paper's own prior
//     work, which "simply assume[s] that there exists only one section to
//     be extracted".
//
// Both implement eval.Extractor so the evaluation harness and benches can
// score them against MSE on the same test bed.
package baseline

import (
	"mse/internal/core"
	"mse/internal/editdist"
	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/mre"
	"mse/internal/visual"

	"mse/internal/dom"
)

// MDR is the MDR-style per-page extractor.
type MDR struct {
	// SimilarityThreshold is the maximum normalized tree edit distance
	// between adjacent generalized nodes of one data region.
	SimilarityThreshold float64
	// MinRecords is MDR's structural minimum (two similar nodes).
	MinRecords int
}

// NewMDR returns an MDR baseline with the usual parameters.
func NewMDR() *MDR {
	return &MDR{SimilarityThreshold: 0.3, MinRecords: 2}
}

// Name implements eval.Extractor.
func (m *MDR) Name() string { return "MDR" }

// Train implements eval.Extractor; MDR generates no wrapper.
func (m *MDR) Train([]*core.SamplePage) error { return nil }

// Extract implements eval.Extractor: it mines data regions from the page.
func (m *MDR) Extract(html string, query []string) []*core.Section {
	page := layout.Render(htmlparse.Parse(html))
	var out []*core.Section
	m.mineNode(page, page.Doc, &out)
	return out
}

// mineNode looks for data regions among the children of n, recursing into
// children that are not part of a region.
func (m *MDR) mineNode(page *layout.Page, n *dom.Node, out *[]*core.Section) {
	kids := renderedChildren(page, n)
	used := make([]bool, len(kids))
	i := 0
	for i < len(kids) {
		j := i
		for j+1 < len(kids) &&
			editdist.WithinTreeDist(kids[j], kids[j+1], m.SimilarityThreshold) {
			j++
		}
		if j-i+1 >= m.MinRecords {
			if s := m.regionToSection(page, kids[i:j+1]); s != nil {
				*out = append(*out, s)
				for k := i; k <= j; k++ {
					used[k] = true
				}
			}
		}
		i = j + 1
	}
	for k, c := range kids {
		if !used[k] {
			m.mineNode(page, c, out)
		}
	}
}

func renderedChildren(page *layout.Page, n *dom.Node) []*dom.Node {
	var out []*dom.Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		if _, _, ok := page.Span(c); ok {
			out = append(out, c)
		}
	}
	return out
}

// regionToSection converts a run of similar sibling subtrees into a
// section with one record per subtree.
func (m *MDR) regionToSection(page *layout.Page, nodes []*dom.Node) *core.Section {
	first, _, ok := page.Span(nodes[0])
	if !ok {
		return nil
	}
	_, last, ok := page.Span(nodes[len(nodes)-1])
	if !ok {
		return nil
	}
	sec := &core.Section{Start: first, End: last + 1, Order: -1}
	for _, nd := range nodes {
		s, e, ok := page.Span(nd)
		if !ok {
			continue
		}
		rec := core.Record{Start: s, End: e + 1}
		for i := s; i <= e; i++ {
			rec.Lines = append(rec.Lines, page.Lines[i].Text)
			rec.Links = append(rec.Links, page.Lines[i].Links...)
		}
		sec.Records = append(sec.Records, rec)
	}
	if len(sec.Records) < m.MinRecords {
		return nil
	}
	return sec
}

// SingleSection is the ViNTs-style baseline: MRE, keeping only the single
// best MR per page.
type SingleSection struct {
	Options mre.Options
}

// NewSingleSection returns the baseline with MRE's defaults.
func NewSingleSection() *SingleSection {
	return &SingleSection{Options: mre.DefaultOptions()}
}

// Name implements eval.Extractor.
func (s *SingleSection) Name() string { return "ViNTs-single" }

// Train implements eval.Extractor; the baseline is per-page.
func (s *SingleSection) Train([]*core.SamplePage) error { return nil }

// Extract implements eval.Extractor.
func (s *SingleSection) Extract(html string, query []string) []*core.Section {
	page := layout.Render(htmlparse.Parse(html))
	mrs := mre.Extract(page, s.Options)
	if len(mrs) == 0 {
		return nil
	}
	best := mrs[0]
	bestScore := sectionScore(best.Records, s.Options.RecordWeights)
	for _, mr := range mrs[1:] {
		if sc := sectionScore(mr.Records, s.Options.RecordWeights); sc > bestScore {
			best, bestScore = mr, sc
		}
	}
	sec := &core.Section{Start: best.Start, End: best.End, Order: 0}
	for _, b := range best.Records {
		rec := core.Record{Start: b.Start, End: b.End}
		for _, l := range b.Lines() {
			rec.Lines = append(rec.Lines, l.Text)
			rec.Links = append(rec.Links, l.Links...)
		}
		sec.Records = append(sec.Records, rec)
	}
	return []*core.Section{sec}
}

func sectionScore(records []visual.Block, w visual.RecordWeights) float64 {
	return float64(len(records)) * (1 - visual.InterRecordDistance(records, w))
}
