package baseline

import (
	"strings"
	"testing"

	"mse/internal/core"
	"mse/internal/eval"
	"mse/internal/synth"
)

func TestMDRFindsRepeatingRegions(t *testing.T) {
	html := `<body><h3>Results</h3><table>
	<tr><td><a href="/1">Alpha</a><br>snippet a</td></tr>
	<tr><td><a href="/2">Betaa</a><br>snippet b</td></tr>
	<tr><td><a href="/3">Gamma</a><br>snippet c</td></tr>
	</table></body>`
	m := NewMDR()
	secs := m.Extract(html, nil)
	if len(secs) == 0 {
		t.Fatalf("MDR found nothing")
	}
	found := false
	for _, s := range secs {
		if len(s.Records) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("MDR missed the 3-record region")
	}
}

func TestMDRCannotSkipStaticRepeats(t *testing.T) {
	// MDR has no dynamic/static differentiation: repeating footer links
	// are reported as a data region — the weakness §7 points out.
	html := `<body>
	<div><a href="/f1">Footer One</a></div>
	<div><a href="/f2">Footer Two</a></div>
	<div><a href="/f3">Footer Three</a></div>
	</body>`
	m := NewMDR()
	secs := m.Extract(html, nil)
	if len(secs) == 0 {
		t.Fatalf("MDR should report the static repeat (it cannot know better)")
	}
}

func TestMDRNeedsTwoRecords(t *testing.T) {
	html := `<body><div><a href="/1">Only One</a><br>snippet</div></body>`
	m := NewMDR()
	for _, s := range m.Extract(html, nil) {
		if strings.Contains(s.Records[0].Lines[0], "Only One") && len(s.Records) < 2 {
			t.Fatalf("MDR reported a single-record section")
		}
	}
}

func TestSingleSectionKeepsOnlyOne(t *testing.T) {
	gp := synth.NewEngine(3, 0, true).Page(1)
	s := NewSingleSection()
	secs := s.Extract(gp.HTML, gp.Query)
	if len(secs) > 1 {
		t.Fatalf("single-section baseline returned %d sections", len(secs))
	}
}

func TestBaselinesImplementExtractor(t *testing.T) {
	var _ eval.Extractor = NewMDR()
	var _ eval.Extractor = NewSingleSection()
}

func TestMSEBeatsBaselinesOnMultiSection(t *testing.T) {
	engines := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 12, MultiSection: 12, Queries: 10})
	cfg := func(newEx func() eval.Extractor) eval.RunConfig {
		return eval.RunConfig{SampleCount: 5, PageCount: 10, NewExtractor: newEx}
	}
	mseRes := eval.Run(engines, cfg(func() eval.Extractor { return eval.NewMSE(core.DefaultOptions()) }))
	mdrRes := eval.Run(engines, cfg(func() eval.Extractor { return NewMDR() }))
	vntRes := eval.Run(engines, cfg(func() eval.Extractor { return NewSingleSection() }))

	mse := mseRes.Total()
	mdr := mdrRes.Total()
	vnt := vntRes.Total()
	t.Logf("MSE   recall=%.3f precision=%.3f", mse.RecallTotal(), mse.PrecisionTotal())
	t.Logf("MDR   recall=%.3f precision=%.3f", mdr.RecallTotal(), mdr.PrecisionTotal())
	t.Logf("ViNTs recall=%.3f precision=%.3f", vnt.RecallTotal(), vnt.PrecisionTotal())

	if mse.RecallTotal() <= mdr.RecallTotal() {
		t.Errorf("MSE recall %.3f should beat MDR %.3f", mse.RecallTotal(), mdr.RecallTotal())
	}
	if mse.PrecisionTotal() <= mdr.PrecisionTotal() {
		t.Errorf("MSE precision %.3f should beat MDR %.3f", mse.PrecisionTotal(), mdr.PrecisionTotal())
	}
	if mse.RecallTotal() <= vnt.RecallTotal() {
		t.Errorf("MSE recall %.3f should beat single-section %.3f", mse.RecallTotal(), vnt.RecallTotal())
	}
}
