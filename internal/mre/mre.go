// Package mre implements the MRE algorithm of Section 5.1 of the MSE
// paper: extraction of multi-record sections (MRs) from a rendered result
// page.  MRE is the multi-section revision of the ViNTs record extractor
// [29]:
//
//  1. find consecutive content-line patterns — (type, position)
//     signatures — that occur at least three times;
//  2. partition the page's content lines into candidate record blocks at
//     the pattern occurrences;
//  3. group consecutive, visually similar blocks into candidate sections
//     (tentative MRs);
//  4. verify tentative MRs (enough records, low inter-record distance);
//  5. unlike ViNTs — which keeps only the single best MR — group tentative
//     MRs by the page area they occupy and keep the best MR per area.
//
// MRs produced here may still contain static repeating content, sections
// with wrong boundaries, and section/record granularity mistakes; Steps
// 4-6 of the pipeline (refine, mining, granularity) repair those, exactly
// as the paper prescribes.
package mre

import (
	"sort"

	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

// Options control MRE.
type Options struct {
	// LineWeights and RecordWeights parameterize the visual distances.
	LineWeights   visual.LineWeights
	RecordWeights visual.RecordWeights
	// GroupDistance is the maximum visual record distance between
	// consecutive blocks placed in the same candidate section.
	GroupDistance float64
	// MaxInterRecord is the verification bound on a tentative MR's
	// inter-record distance.
	MaxInterRecord float64
	// MinRecords is the minimum number of records for a tentative MR
	// (the paper notes MRE generally requires three or more).
	MinRecords int
	// MinOverlap is the fractional line overlap above which two tentative
	// MRs are considered to occupy the same page area.
	MinOverlap float64
}

// DefaultOptions returns the tuned defaults (tuned on sample pages only,
// as in §6 of the paper).
func DefaultOptions() Options {
	return Options{
		LineWeights:    visual.DefaultLineWeights(),
		RecordWeights:  visual.DefaultRecordWeights(),
		GroupDistance:  0.32,
		MaxInterRecord: 0.38,
		MinRecords:     3,
		MinOverlap:     0.5,
	}
}

// signature is a content-line pattern: the line's type code plus its
// position code.
type signature struct {
	typ layout.LineType
	x   int
}

// Extract runs MRE on a rendered page and returns the extracted
// multi-record sections in document order.
func Extract(p *layout.Page, opt Options) []*sect.Section {
	if len(p.Lines) == 0 {
		return nil
	}
	tentative := tentativeMRs(p, opt)
	if len(tentative) == 0 {
		return nil
	}
	groups := groupByArea(tentative, opt)
	out := make([]*sect.Section, 0, len(groups))
	for _, g := range groups {
		out = append(out, bestMR(g, opt))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// tentativeMRs builds candidate sections from every repeating line
// signature.
func tentativeMRs(p *layout.Page, opt Options) []*sect.Section {
	occ := map[signature][]int{}
	for i, l := range p.Lines {
		if l.Type == layout.BlankLine || l.Type == layout.RuleLine {
			continue // separators never start records
		}
		s := signature{typ: l.Type, x: l.X}
		occ[s] = append(occ[s], i)
	}
	var sigs []signature
	for s, lines := range occ {
		if len(lines) >= opt.MinRecords {
			sigs = append(sigs, s)
		}
	}
	// Deterministic order.
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].typ != sigs[j].typ {
			return sigs[i].typ < sigs[j].typ
		}
		return sigs[i].x < sigs[j].x
	})

	var tentative []*sect.Section
	for _, s := range sigs {
		tentative = append(tentative, sectionsForSignature(p, occ[s], opt)...)
	}
	return tentative
}

// sectionsForSignature partitions the page at the signature's occurrence
// lines (each occurrence starts a candidate record) and groups
// consecutive, visually similar blocks into candidate sections.
func sectionsForSignature(p *layout.Page, occs []int, opt Options) []*sect.Section {
	blocks := make([]visual.Block, 0, len(occs))
	for i, start := range occs {
		end := len(p.Lines)
		if i+1 < len(occs) {
			end = occs[i+1]
		} else if i > 0 {
			// The extent of the final record is unknown; assume the same
			// length as the previous record (the refinement step fixes
			// boundary mistakes).
			prevLen := occs[i] - occs[i-1]
			if start+prevLen < end {
				end = start + prevLen
			}
		}
		blocks = append(blocks, visual.Block{Page: p, Start: start, End: end})
	}

	var out []*sect.Section
	var group []visual.Block
	flush := func() {
		if len(group) >= opt.MinRecords {
			s := sect.New(p, group[0].Start, group[len(group)-1].End)
			s.Records = append([]visual.Block(nil), group...)
			if verify(s, opt) {
				out = append(out, s)
			}
		}
		group = nil
	}
	for _, b := range blocks {
		// A horizontal rule is a template separator; a candidate record
		// containing one straddles a section boundary and must not join
		// (or bridge) any group.
		if containsRule(b) {
			flush()
			continue
		}
		if len(group) == 0 {
			group = append(group, b)
			continue
		}
		prev := group[len(group)-1]
		adjacent := prev.End == b.Start
		similar := visual.VisualRecordDistance(prev, b, opt.RecordWeights) <= opt.GroupDistance
		if adjacent && similar {
			group = append(group, b)
		} else {
			flush()
			group = append(group, b)
		}
	}
	flush()
	return out
}

func containsRule(b visual.Block) bool {
	for _, l := range b.Lines() {
		if l.Type == layout.RuleLine {
			return true
		}
	}
	return false
}

// verify checks a tentative MR: it must have at least MinRecords records
// whose full record distance (including tag forests) stays low.  (An
// additional ViNTs-style tag-path compatibility check was evaluated and
// rejected: sections with alternating record structure — e.g. records
// grouped pairwise under <tbody> — have legitimately incompatible
// first-line paths, and the inter-record distance already carries the
// structural signal through its tag-forest component.)
func verify(s *sect.Section, opt Options) bool {
	if len(s.Records) < opt.MinRecords {
		return false
	}
	return visual.InterRecordDistance(s.Records, opt.RecordWeights) <= opt.MaxInterRecord
}

// groupByArea clusters tentative MRs that occupy substantially the same
// page area (fractional line overlap above MinOverlap, measured against
// the smaller section).
func groupByArea(tentative []*sect.Section, opt Options) [][]*sect.Section {
	n := len(tentative)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := tentative[i], tentative[j]
			ov := a.Overlap(b)
			minLen := a.Len()
			if b.Len() < minLen {
				minLen = b.Len()
			}
			if minLen > 0 && float64(ov)/float64(minLen) >= opt.MinOverlap {
				union(i, j)
			}
		}
	}
	byRoot := map[int][]*sect.Section{}
	for i, s := range tentative {
		r := find(i)
		byRoot[r] = append(byRoot[r], s)
	}
	var roots []int
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	groups := make([][]*sect.Section, 0, len(byRoot))
	for _, r := range roots {
		groups = append(groups, byRoot[r])
	}
	return groups
}

// bestMR selects the best tentative MR of an area group, mirroring the
// ViNTs wrapper-selection idea: prefer more records and lower inter-record
// distance; phase-shifted partitions (records starting mid-record) are
// penalized because their records straddle DOM subtrees and need several
// tag-forest roots each, where a correctly phased record sits on one.
func bestMR(group []*sect.Section, opt Options) *sect.Section {
	best := group[0]
	bestScore := score(best, opt)
	for _, s := range group[1:] {
		if sc := score(s, opt); sc > bestScore {
			best, bestScore = s, sc
		}
	}
	return best
}

func score(s *sect.Section, opt Options) float64 {
	// Cohesion (Formula 7) is the primary signal: partitions into
	// single-line fragments score zero diversity and partitions that
	// merge records score low diversity per line.  Alignment — every
	// record opening with the page's repeating first-line signature, and
	// that signature appearing once per record — earns a bonus, which is
	// what lets a section of one-line records (zero diversity by
	// definition) still beat a pairwise-merged alternative.
	coh := visual.SectionCohesion(s.Records, opt.LineWeights, opt.RecordWeights)
	bonus := 0.0
	if uniformStarts(s) {
		bonus = 0.2
		switch s.Page.Lines[s.Records[0].Start].Type {
		case layout.LinkLine, layout.LinkTextLine, layout.ImageTextLine:
			bonus = 0.3 // records overwhelmingly open with their title link
		}
	}
	extraRoots := 0
	for _, r := range s.Records {
		if roots := len(r.Forest()); roots > 1 {
			extraRoots += roots - 1
		}
	}
	avgExtra := float64(extraRoots) / float64(len(s.Records))
	return (coh+bonus)/(1+0.4*avgExtra) + 0.001*float64(s.Len())
}

// uniformStarts reports whether every record of the section begins with
// one (type, x) line signature that occurs exactly once per record within
// the section.
func uniformStarts(s *sect.Section) bool {
	if len(s.Records) == 0 {
		return false
	}
	p := s.Page
	first := signature{p.Lines[s.Records[0].Start].Type, p.Lines[s.Records[0].Start].X}
	for _, r := range s.Records[1:] {
		if (signature{p.Lines[r.Start].Type, p.Lines[r.Start].X}) != first {
			return false
		}
	}
	count := 0
	for i := s.Start; i < s.End; i++ {
		if (signature{p.Lines[i].Type, p.Lines[i].X}) == first {
			count++
		}
	}
	return count == len(s.Records)
}
