package mre

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/synth"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

// simpleSectionPage renders one 5-record section with template noise.
func simpleSectionPage() *layout.Page {
	var sb strings.Builder
	sb.WriteString(`<body><h1>TestEngine</h1>
	<div><a href="/h">Home</a> | <a href="/a">About</a></div>
	<div>Your search returned 99 matches.</div><hr>
	<h3>Results</h3><table>`)
	titles := []string{"Alpha One", "Beta Two", "Gamma Three", "Delta Four", "Epsilon Five"}
	for i, t := range titles {
		sb.WriteString(`<tr><td><a href="/r` + string(rune('0'+i)) + `">` + t +
			`</a><br>snippet text for this result</td></tr>`)
	}
	sb.WriteString(`</table><hr><div>Copyright 2006</div></body>`)
	return render(sb.String())
}

func TestExtractFindsMainSection(t *testing.T) {
	p := simpleSectionPage()
	mrs := Extract(p, DefaultOptions())
	if len(mrs) == 0 {
		t.Fatalf("no MRs extracted")
	}
	// Some MR must contain all five records.
	var best *int
	for i, mr := range mrs {
		if len(mr.Records) == 5 {
			best = &i
			break
		}
	}
	if best == nil {
		counts := make([]int, len(mrs))
		for i, mr := range mrs {
			counts[i] = len(mr.Records)
		}
		t.Fatalf("no MR with 5 records; record counts = %v", counts)
	}
	mr := mrs[*best]
	txt := mr.Block().Text()
	for _, want := range []string{"Alpha One", "Epsilon Five"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("MR text missing %q:\n%s", want, txt)
		}
	}
	if strings.Contains(txt, "Copyright") || strings.Contains(txt, "Your search") {
		t.Fatalf("MR leaked template content:\n%s", txt)
	}
}

func TestExtractRecordBoundaries(t *testing.T) {
	p := simpleSectionPage()
	mrs := Extract(p, DefaultOptions())
	for _, mr := range mrs {
		if len(mr.Records) != 5 {
			continue
		}
		for _, r := range mr.Records {
			if r.Len() != 2 {
				t.Fatalf("record should have 2 lines (title+snippet), got %d: %q",
					r.Len(), r.Text())
			}
			lines := r.Lines()
			if lines[0].Type != layout.LinkLine && lines[0].Type != layout.LinkTextLine {
				t.Fatalf("record should start at its title line, got %v %q",
					lines[0].Type, lines[0].Text)
			}
		}
		return
	}
	t.Fatalf("no 5-record MR found")
}

func TestExtractMultipleSections(t *testing.T) {
	src := `<body><h3>News</h3><table>
	<tr><td><a href="/n1">News One</a><br>news snippet a</td></tr>
	<tr><td><a href="/n2">News Two</a><br>news snippet b</td></tr>
	<tr><td><a href="/n3">News Three</a><br>news snippet c</td></tr>
	<tr><td><a href="/n4">News Four</a><br>news snippet d</td></tr>
	</table>
	<h3>Products</h3><ul style="margin-left: 60px">
	<li><a href="/p1">Prod One</a><br>price info<br>more details</li>
	<li><a href="/p2">Prod Two</a><br>price info<br>more details</li>
	<li><a href="/p3">Prod Three</a><br>price info<br>more details</li>
	</ul></body>`
	p := render(src)
	mrs := Extract(p, DefaultOptions())
	// MRE must find at least two distinct areas (ViNTs would keep only
	// one).
	if len(mrs) < 2 {
		for _, mr := range mrs {
			t.Logf("MR: %v\n%s", mr, mr.Block().Text())
		}
		t.Fatalf("MRE found %d MRs, want >= 2", len(mrs))
	}
	foundNews, foundProd := false, false
	for _, mr := range mrs {
		txt := mr.Block().Text()
		if strings.Contains(txt, "News One") && strings.Contains(txt, "News Four") {
			foundNews = true
		}
		if strings.Contains(txt, "Prod One") && strings.Contains(txt, "Prod Three") {
			foundProd = true
		}
	}
	if !foundNews || !foundProd {
		t.Fatalf("missing section: news=%v products=%v", foundNews, foundProd)
	}
}

func TestExtractIgnoresShortRepeats(t *testing.T) {
	// Two records only: below MinRecords, MRE must not report the section
	// (the DSE path handles it instead).
	src := `<body><h3>Tiny</h3><table>
	<tr><td><a href="/a">One</a><br>snip</td></tr>
	<tr><td><a href="/b">Two</a><br>snip</td></tr>
	</table></body>`
	mrs := Extract(render(src), DefaultOptions())
	for _, mr := range mrs {
		if strings.Contains(mr.Block().Text(), "One") && len(mr.Records) >= 3 {
			t.Fatalf("short section wrongly extracted: %v", mr)
		}
	}
}

func TestExtractEmptyPage(t *testing.T) {
	if got := Extract(render(`<body></body>`), DefaultOptions()); len(got) != 0 {
		t.Fatalf("empty page yielded %d MRs", len(got))
	}
}

func TestExtractStaticRepeatsArePossible(t *testing.T) {
	// Static repeating footers can produce MRs; the refinement step (not
	// MRE) is responsible for discarding them.  This documents the
	// contract: MRE may return them, and must return the real section too.
	src := `<body>
	<h3>Results</h3><div>
	<div><a href="/r1">Res One</a><br>text a</div>
	<div><a href="/r2">Res Two</a><br>text b</div>
	<div><a href="/r3">Res Three</a><br>text c</div>
	<div><a href="/r4">Res Four</a><br>text d</div>
	</div>
	<div><a href="/f1">Footer link one</a></div>
	<div><a href="/f2">Footer link two</a></div>
	<div><a href="/f3">Footer link three</a></div>
	</body>`
	mrs := Extract(render(src), DefaultOptions())
	found := false
	for _, mr := range mrs {
		if strings.Contains(mr.Block().Text(), "Res One") && len(mr.Records) >= 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("real section lost among static repeats")
	}
}

func TestExtractOnSyntheticEngines(t *testing.T) {
	// Smoke test over synthetic engines: for every page whose first
	// section has >= 3 records, MRE should produce at least one MR
	// overlapping it.
	engines := synth.GenerateTestbed(synth.Config{Seed: 7, Engines: 12, MultiSection: 5, Queries: 2})
	checked, hit := 0, 0
	for _, e := range engines {
		for q := 0; q < 2; q++ {
			gp := e.Page(q)
			if len(gp.Truth.Sections) == 0 || len(gp.Truth.Sections[0].Records) < 3 {
				continue
			}
			checked++
			p := render(gp.HTML)
			mrs := Extract(p, DefaultOptions())
			marker := gp.Truth.Sections[0].Records[0].Marker
			for _, mr := range mrs {
				if strings.Contains(mr.Block().Text(), marker) {
					hit++
					break
				}
			}
		}
	}
	if checked == 0 {
		t.Fatalf("no checkable pages generated")
	}
	if float64(hit) < 0.9*float64(checked) {
		t.Fatalf("MRE found the main section on only %d/%d pages", hit, checked)
	}
}
