package mre

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

func pageOf(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

func TestUniformStarts(t *testing.T) {
	p := pageOf(`<body><table>
	<tr><td><a href="/1">T1</a></td></tr>
	<tr><td>s1</td></tr>
	<tr><td><a href="/2">T2</a></td></tr>
	<tr><td>s2</td></tr>
	</table></body>`)
	aligned := sect.New(p, 0, 4)
	aligned.Records = []visual.Block{
		{Page: p, Start: 0, End: 2}, {Page: p, Start: 2, End: 4},
	}
	if !uniformStarts(aligned) {
		t.Fatalf("title-aligned records should have uniform starts")
	}
	shifted := sect.New(p, 0, 4)
	shifted.Records = []visual.Block{
		{Page: p, Start: 0, End: 1}, {Page: p, Start: 1, End: 4},
	}
	if uniformStarts(shifted) {
		t.Fatalf("mixed-start partition should not be uniform")
	}
	merged := sect.New(p, 0, 4)
	merged.Records = []visual.Block{{Page: p, Start: 0, End: 4}}
	if uniformStarts(merged) {
		t.Fatalf("single record over repeated signatures is not uniform-aligned")
	}
	empty := sect.New(p, 0, 4)
	if uniformStarts(empty) {
		t.Fatalf("no records cannot be uniform")
	}
}

func TestScorePrefersAlignedPartition(t *testing.T) {
	p := pageOf(`<body><table>
	<tr><td><a href="/1">Title One</a></td></tr>
	<tr><td>snippet one words</td></tr>
	<tr><td><a href="/2">Title Two</a></td></tr>
	<tr><td>snippet two words</td></tr>
	<tr><td><a href="/3">Title Three</a></td></tr>
	<tr><td>snippet three words</td></tr>
	</table></body>`)
	opt := DefaultOptions()
	mk := func(starts ...int) *sect.Section {
		s := sect.New(p, 0, 6)
		for i, st := range starts {
			end := 6
			if i+1 < len(starts) {
				end = starts[i+1]
			}
			s.Records = append(s.Records, visual.Block{Page: p, Start: st, End: end})
		}
		return s
	}
	aligned := mk(0, 2, 4)
	perLine := mk(0, 1, 2, 3, 4, 5)
	shifted := mk(0, 1, 3, 5)
	if score(aligned, opt) <= score(perLine, opt) {
		t.Fatalf("aligned partition should beat per-line split")
	}
	if score(aligned, opt) <= score(shifted, opt) {
		t.Fatalf("aligned partition should beat phase-shifted split")
	}
}

func TestContainsRule(t *testing.T) {
	p := pageOf(`<body><p>a</p><hr><p>b</p></body>`)
	with := visual.Block{Page: p, Start: 0, End: 3}
	without := visual.Block{Page: p, Start: 0, End: 1}
	if !containsRule(with) {
		t.Fatalf("rule not detected")
	}
	if containsRule(without) {
		t.Fatalf("phantom rule")
	}
}

func TestGroupByAreaMergesOverlaps(t *testing.T) {
	p := pageOf(`<body>` + strings.Repeat("<p>x</p>", 20) + `</body>`)
	a := sect.New(p, 0, 10)
	b := sect.New(p, 2, 12) // overlaps a heavily
	c := sect.New(p, 15, 20)
	groups := groupByArea([]*sect.Section{a, b, c}, DefaultOptions())
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	sizes := map[int]bool{len(groups[0]): true, len(groups[1]): true}
	if !sizes[2] || !sizes[1] {
		t.Fatalf("group sizes wrong: %d and %d", len(groups[0]), len(groups[1]))
	}
}
