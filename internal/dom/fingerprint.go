package dom

// Structural fingerprinting of tag trees.
//
// A Fingerprint summarizes the subtree rooted at a node: an order-sensitive
// 64-bit hash of the labeled tree shape plus the subtree size.  Two
// structurally identical ordered labeled trees always produce the same
// fingerprint, so fingerprint pairs can key a tree-edit-distance cache and
// fingerprint equality can short-circuit the distance to zero.  The
// converse direction relies on the hash being collision-free in practice;
// see DESIGN.md ("Tree-distance memoization") for the collision analysis.
//
// Fingerprints are computed bottom-up in one pass and cached on every node
// of the subtree, so repeated distance computations over the same trees —
// the MSE pipeline's dominant cost — never re-walk them.  The cache slot is
// an atomic pointer: concurrent readers may race to compute a fingerprint,
// but both compute identical values, so whichever Store wins is correct.
// AppendChild and RemoveChild invalidate the cached fingerprints of the
// mutated node and its ancestors (a descendant's own subtree is unchanged
// by re-parenting, so its cached value stays valid).

// Fingerprint identifies the structure of a subtree: Hash is an
// order-sensitive hash of the labeled tree shape, Size the number of nodes.
// The zero Fingerprint is never produced for a live node (Size >= 1).
type Fingerprint struct {
	Hash uint64 `json:"hash"`
	Size int    `json:"size"`
}

// fnv64Offset and fnv64Prime are the FNV-1a parameters used for label
// hashing.
const (
	fnv64Offset uint64 = 14695981039346656037
	fnv64Prime  uint64 = 1099511628211
)

// Fingerprint returns the structural fingerprint of the subtree rooted at
// n, computing and caching it (for n and every descendant) on first use.
func (n *Node) Fingerprint() Fingerprint {
	if fp := n.fp.Load(); fp != nil {
		return *fp
	}
	return n.computeFingerprint()
}

func (n *Node) computeFingerprint() Fingerprint {
	h := fnv64Offset
	for i := 0; i < len(n.Tag); i++ {
		h = (h ^ uint64(n.Tag[i])) * fnv64Prime
	}
	// Mixing the node type keeps same-tag elements distinct from text or
	// comment nodes; text content is deliberately excluded, matching the
	// structural label used by the tree edit distance.
	h = (h ^ uint64(n.Type)) * fnv64Prime
	size := 1
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		cf := c.Fingerprint()
		size += cf.Size
		h = mix64(h ^ cf.Hash)
	}
	fp := Fingerprint{Hash: h, Size: size}
	n.fp.Store(&fp)
	return fp
}

// mix64 is the splitmix64 finalizer: a cheap avalanche so that child order
// and nesting depth always perturb the parent hash.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// invalidateFingerprints clears the cached fingerprints of n and its
// ancestors after a structural mutation.  Fingerprints are computed
// top-down-complete (a cached ancestor implies cached descendants), so the
// walk can stop at the first node that never had one.
func (n *Node) invalidateFingerprints() {
	for p := n; p != nil; p = p.Parent {
		if p.fp.Load() == nil {
			return
		}
		p.fp.Store(nil)
	}
}
