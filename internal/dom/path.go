package dom

import (
	"fmt"
	"strings"
)

// Direction is the second component of a path node: whether the next node
// on the path is the first child ("C") or the next sibling ("S") of the
// current node.
type Direction byte

const (
	// Child marks a step that descends to the first child.
	Child Direction = 'C'
	// Sibling marks a step that moves to the next sibling.
	Sibling Direction = 'S'
)

// PathNode is one step of a tag path: a tag name together with the
// direction taken to reach the next node on the path.
type PathNode struct {
	Tag string
	Dir Direction
}

// TagPath locates a node in a DOM tree by following first-child / next-
// sibling links from the root, as defined in Section 4.1 of the paper.
// The located node's own tag is not part of the path; the path's last step
// points at it.
type TagPath []PathNode

// PathOf computes the tag path of n from the root of its tree.  The root
// itself has an empty path.  Text and comment nodes are located the same
// way as elements; their step tags use the node-type label ("#text").
func PathOf(n *Node) TagPath {
	if l := PathLen(n); l > 0 {
		return AppendPath(make(TagPath, 0, l), n)
	}
	return nil
}

// PathLen returns len(PathOf(n)) without allocating: the number of
// first-child / next-sibling steps from the root to n.
func PathLen(n *Node) int {
	l := 0
	for n.Parent != nil {
		if n.PrevSibling != nil {
			n = n.PrevSibling
		} else {
			n = n.Parent
		}
		l++
	}
	return l
}

// AppendPath appends the tag path of n to dst and returns the extended
// slice.  Callers that pre-size dst (e.g. from PathLen, or out of an
// arena) get the path without any allocation.
func AppendPath(dst TagPath, n *Node) TagPath {
	base := len(dst)
	for n.Parent != nil {
		if n.PrevSibling != nil {
			n = n.PrevSibling
			dst = append(dst, PathNode{Tag: n.Label(), Dir: Sibling})
		} else {
			n = n.Parent
			dst = append(dst, PathNode{Tag: n.Label(), Dir: Child})
		}
	}
	// The walk produced the steps leaf-to-root; reverse into document order.
	for i, j := base, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// String renders the path in the paper's notation, e.g.
// "{html}C{head}S{body}C".
func (p TagPath) String() string {
	var sb strings.Builder
	for _, pn := range p {
		fmt.Fprintf(&sb, "{%s}%c", pn.Tag, pn.Dir)
	}
	return sb.String()
}

// ParseTagPath parses the notation produced by TagPath.String.  It is the
// inverse of String and is used when loading stored wrappers.
func ParseTagPath(s string) (TagPath, error) {
	var out TagPath
	for len(s) > 0 {
		if s[0] != '{' {
			return nil, fmt.Errorf("dom: bad tag path %q: expected '{'", s)
		}
		end := strings.IndexByte(s, '}')
		if end < 0 || end+1 >= len(s) {
			return nil, fmt.Errorf("dom: bad tag path %q: unterminated step", s)
		}
		tag := s[1:end]
		dir := Direction(s[end+1])
		if dir != Child && dir != Sibling {
			return nil, fmt.Errorf("dom: bad tag path %q: direction %q", s, dir)
		}
		out = append(out, PathNode{Tag: tag, Dir: dir})
		s = s[end+2:]
	}
	return out, nil
}

// CStep is one entry of a compact tag path: a C node together with the
// number of S steps that preceded it since the previous C node.  Compact
// tag paths remove the "noise" of varying sibling counts so that paths
// from different result pages of the same engine can be matched.
type CStep struct {
	Tag string
	// SBefore is the number of sibling steps between the previous C node
	// and this one.
	SBefore int
}

// CompactPath is a tag path reduced to its C nodes plus S-step counts.
type CompactPath []CStep

// Compact converts a tag path to its compact form.  Trailing S steps after
// the last C node are folded into a synthetic final entry with an empty
// tag, so that the full sibling offset of the target is preserved.
func (p TagPath) Compact() CompactPath {
	if l := p.CompactLen(); l > 0 {
		return p.AppendCompact(make(CompactPath, 0, l))
	}
	return nil
}

// CompactLen returns len(p.Compact()) without allocating.
func (p TagPath) CompactLen() int {
	l, s := 0, 0
	for _, pn := range p {
		switch pn.Dir {
		case Sibling:
			s++
		case Child:
			l++
			s = 0
		}
	}
	if s > 0 {
		l++
	}
	return l
}

// AppendCompact appends the compact form of p to dst and returns the
// extended slice; pre-sizing dst (from CompactLen or an arena) makes the
// conversion allocation-free.
func (p TagPath) AppendCompact(dst CompactPath) CompactPath {
	s := 0
	for _, pn := range p {
		switch pn.Dir {
		case Sibling:
			s++
		case Child:
			dst = append(dst, CStep{Tag: pn.Tag, SBefore: s})
			s = 0
		}
	}
	if s > 0 {
		dst = append(dst, CStep{Tag: "", SBefore: s})
	}
	return dst
}

// CTags returns the sequence of C-node tags of the compact path.
func (c CompactPath) CTags() []string {
	tags := make([]string, len(c))
	for i, st := range c {
		tags[i] = st.Tag
	}
	return tags
}

// Compatible reports whether two compact tag paths contain the same
// sequence of C nodes (Section 4.1).
func (c CompactPath) Compatible(o CompactPath) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i].Tag != o[i].Tag {
			return false
		}
	}
	return true
}

// TotalS returns the total number of sibling steps along the compact path,
// i.e. sn(c_n, c_1) in the notation of Formula 1.
func (c CompactPath) TotalS() int {
	total := 0
	for _, st := range c {
		total += st.SBefore
	}
	return total
}

// String renders the compact path as "{tag}+k" steps, e.g.
// "{html}+0{body}+1{table}+2".
func (c CompactPath) String() string {
	var sb strings.Builder
	for _, st := range c {
		fmt.Fprintf(&sb, "{%s}+%d", st.Tag, st.SBefore)
	}
	return sb.String()
}

// ParseCompactPath parses the notation produced by CompactPath.String,
// e.g. "{html}+0{body}+1{table}+2".  It is used when loading stored
// wrappers.
func ParseCompactPath(s string) (CompactPath, error) {
	var out CompactPath
	for len(s) > 0 {
		if s[0] != '{' {
			return nil, fmt.Errorf("dom: bad compact path %q: expected '{'", s)
		}
		end := strings.IndexByte(s, '}')
		if end < 0 || end+1 >= len(s) || s[end+1] != '+' {
			return nil, fmt.Errorf("dom: bad compact path %q: malformed step", s)
		}
		tag := s[1:end]
		rest := s[end+2:]
		i := 0
		for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
			i++
		}
		if i == 0 {
			return nil, fmt.Errorf("dom: bad compact path %q: missing S count", s)
		}
		n := 0
		for _, c := range rest[:i] {
			n = n*10 + int(c-'0')
		}
		out = append(out, CStep{Tag: tag, SBefore: n})
		s = rest[i:]
	}
	return out, nil
}

// PathDistance implements Formula 1 of the paper: the distance between two
// compatible compact tag paths is the sum of the absolute differences of
// the sibling-step counts between consecutive C nodes, normalized by the
// larger total sibling-step count.  Incompatible paths have distance +Inf
// conceptually; this function returns 1 plus the unnormalized mismatch to
// keep the value finite while still sorting after every compatible pair.
// Two identical paths have distance 0; two compatible paths with no
// sibling steps at all also have distance 0.
func PathDistance(a, b CompactPath) float64 {
	if !a.Compatible(b) {
		return incompatiblePathDistance(a, b)
	}
	sum := 0
	for i := range a {
		d := a[i].SBefore - b[i].SBefore
		if d < 0 {
			d = -d
		}
		sum += d
	}
	maxTotal := a.TotalS()
	if t := b.TotalS(); t > maxTotal {
		maxTotal = t
	}
	if maxTotal == 0 {
		return 0
	}
	return float64(sum) / float64(maxTotal)
}

// incompatiblePathDistance gives a finite but always-worse-than-compatible
// distance for incompatible paths: 1 + normalized tag-sequence edit
// distance, so that "more alike" incompatible paths still sort earlier.
func incompatiblePathDistance(a, b CompactPath) float64 {
	at, bt := a.CTags(), b.CTags()
	n, m := len(at), len(bt)
	if n == 0 && m == 0 {
		return 1
	}
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if at[i-1] == bt[j-1] {
				cost = 0
			}
			c := prev[j-1] + cost
			if v := prev[j] + 1; v < c {
				c = v
			}
			if v := cur[j-1] + 1; v < c {
				c = v
			}
			cur[j] = c
		}
		prev, cur = cur, prev
	}
	maxLen := n
	if m > maxLen {
		maxLen = m
	}
	return 1 + float64(prev[m])/float64(maxLen)
}

// Locate follows a tag path from root and returns the node it reaches, or
// nil if the path cannot be followed (missing child or sibling).
func Locate(root *Node, p TagPath) *Node {
	n := root
	for i, pn := range p {
		if n == nil {
			return nil
		}
		if n.Label() != pn.Tag {
			return nil
		}
		switch pn.Dir {
		case Child:
			n = n.FirstChild
		case Sibling:
			n = n.NextSibling
		default:
			return nil
		}
		_ = i
	}
	return n
}

// LocateCompact finds the descendant of root whose compact tag path is
// compatible with target and has the smallest PathDistance to it.  It
// returns nil when no node with a compatible path exists.  This tolerant
// lookup is what makes stored wrappers robust against result pages whose
// repeated-sibling counts differ from the sample pages.
func LocateCompact(root *Node, target CompactPath) *Node {
	cands := LocateCompactAll(root, target)
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// LocateCompactAll returns every descendant of root whose compact tag path
// is compatible with target, ordered by increasing PathDistance (ties in
// document order).  Callers that can validate candidates by other evidence
// (boundary markers) should walk the list and take the first that
// validates.
//
// The compact path is maintained incrementally during one DFS — pushing a
// C step when descending, counting S steps across siblings — instead of
// recomputing PathOf(n).Compact() per node, which made wrapper application
// quadratic in tree depth and dominated its allocation profile.
func LocateCompactAll(root *Node, target CompactPath) []*Node {
	type cand struct {
		n    *Node
		d    float64
		docN int
	}
	var cands []cand
	// stack holds the C steps of the path to the node being visited;
	// okDepth is the length of the longest stack prefix whose tags match
	// target, so compatibility at any node is an O(1) check.  Paths are
	// absolute (from the tree root), so when root is an interior node the
	// stack starts from root's own path, exactly as PathOf produced.
	stack := make([]CStep, 0, 32)
	rootS := 0
	for _, pn := range PathOf(root) {
		switch pn.Dir {
		case Sibling:
			rootS++
		case Child:
			stack = append(stack, CStep{Tag: pn.Tag, SBefore: rootS})
			rootS = 0
		}
	}
	okDepth := 0
	for okDepth < len(stack) && okDepth < len(target) && target[okDepth].Tag == stack[okDepth].Tag {
		okDepth++
	}
	docN := 0

	// distanceTo computes PathDistance(current path, target) knowing the
	// paths are compatible: stack plus an optional trailing synthetic
	// {"", s} entry against target, with identical integer arithmetic.
	distanceTo := func(s int) float64 {
		sum, ta, tb := 0, 0, 0
		for i, st := range stack {
			d := st.SBefore - target[i].SBefore
			if d < 0 {
				d = -d
			}
			sum += d
			ta += st.SBefore
			tb += target[i].SBefore
		}
		if s > 0 {
			d := s - target[len(stack)].SBefore
			if d < 0 {
				d = -d
			}
			sum += d
			ta += s
			tb += target[len(stack)].SBefore
		}
		maxTotal := ta
		if tb > maxTotal {
			maxTotal = tb
		}
		if maxTotal == 0 {
			return 0
		}
		return float64(sum) / float64(maxTotal)
	}

	var visit func(n *Node, s int)
	visit = func(n *Node, s int) {
		docN++
		// A node's compact path is the stacked C steps plus, when S steps
		// trail the last C step, the synthetic {"", s} entry Compact emits.
		if okDepth == len(stack) {
			if s == 0 {
				if len(target) == len(stack) {
					cands = append(cands, cand{n: n, d: distanceTo(0), docN: docN})
				}
			} else if len(target) == len(stack)+1 && target[len(stack)].Tag == "" {
				cands = append(cands, cand{n: n, d: distanceTo(s), docN: docN})
			}
		}
		if n.FirstChild == nil {
			return
		}
		tag := n.Label()
		stack = append(stack, CStep{Tag: tag, SBefore: s})
		if okDepth == len(stack)-1 && okDepth < len(target) && target[okDepth].Tag == tag {
			okDepth++
		}
		cs := 0
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			visit(c, cs)
			cs++
		}
		stack = stack[:len(stack)-1]
		if okDepth > len(stack) {
			okDepth = len(stack)
		}
	}
	visit(root, 0)

	// Insertion sort by (distance, document order): candidate lists are
	// short (a handful of compatible subtrees per wrapper), and avoiding
	// sort.Slice keeps the comparator closure and reflect-based swapper off
	// the per-request allocation profile.
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && (cands[j].d > c.d || (cands[j].d == c.d && cands[j].docN > c.docN)) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
	out := make([]*Node, len(cands))
	for j, c := range cands {
		out[j] = c.n
	}
	return out
}
