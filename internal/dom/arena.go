package dom

import (
	"sync"
	"sync/atomic"
)

// Arena is a slab allocator for Node and Attr values: nodes of one parsed
// page are bump-allocated out of fixed-size slabs instead of being
// individually heap-allocated, which removes the dominant per-parse
// allocation cost on the serving hot path (one allocation per slab instead
// of one per node).
//
// Soundness rule: an Arena may only be Released once no live *Node (nor any
// slice or structure reaching one, such as a layout.Page or its Lines) can
// still reference memory allocated from it.  Until Release is called an
// arena-backed tree behaves exactly like a heap-backed one — Release is the
// only operation that reuses memory.  Strings are never arena-allocated, so
// extraction results (which contain only strings and ints) remain valid
// after the page they came from is released.
//
// The nil *Arena is valid and falls back to plain heap allocation, which is
// also what every constructor returns while SetArenasEnabled(false) is in
// effect — the escape hatch that restores the old allocator wholesale.
type Arena struct {
	nodes     []Node   // current node slab; fixed capacity, never reallocated
	nodeSlabs [][]Node // full slabs, retained so Release can zero them
	attrs     []Attr
	attrSlabs [][]Attr
}

const (
	nodeSlabSize = 512
	attrSlabSize = 1024
)

// arenasEnabled gates every arena and pool on the extraction fast path.
var arenasEnabled atomic.Bool

func init() { arenasEnabled.Store(true) }

// SetArenasEnabled toggles the arena/pool fast path globally.  With arenas
// disabled, NewArena and AcquireArena return nil and every allocation falls
// back to the garbage-collected heap, restoring the pre-arena allocator.
func SetArenasEnabled(v bool) { arenasEnabled.Store(v) }

// ArenasEnabled reports whether the arena/pool fast path is active.
func ArenasEnabled() bool { return arenasEnabled.Load() }

// ArenaStats are cumulative counters describing arena traffic; exposed on
// /metrics and /statusz by the extraction service.
type ArenaStats struct {
	Acquires uint64 `json:"acquires"` // AcquireArena calls that returned an arena
	Reuses   uint64 `json:"reuses"`   // acquires satisfied from the pool
	Releases uint64 `json:"releases"` // arenas returned to the pool
	Nodes    uint64 `json:"nodes"`    // nodes served from slabs
	Slabs    uint64 `json:"slabs"`    // node slabs allocated
}

var arenaStats struct {
	acquires atomic.Uint64
	reuses   atomic.Uint64
	releases atomic.Uint64
	nodes    atomic.Uint64
	slabs    atomic.Uint64
}

// ArenaStatsSnapshot returns the current arena counters.
func ArenaStatsSnapshot() ArenaStats {
	return ArenaStats{
		Acquires: arenaStats.acquires.Load(),
		Reuses:   arenaStats.reuses.Load(),
		Releases: arenaStats.releases.Load(),
		Nodes:    arenaStats.nodes.Load(),
		Slabs:    arenaStats.slabs.Load(),
	}
}

// arenaPool recycles released arenas, keeping their slabs warm across
// requests.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// poolHit distinguishes a pooled arena from a fresh one for the Reuses
// counter: a pooled arena still owns at least one slab.
func (a *Arena) poolHit() bool { return a.nodes != nil }

// NewArena returns a fresh, unpooled arena (nil when arenas are disabled).
// Use it for trees whose lifetime is unbounded — allocation is still
// batched, but the memory is handed to the garbage collector rather than
// recycled, so no Release discipline is needed.
func NewArena() *Arena {
	if !arenasEnabled.Load() {
		return nil
	}
	return &Arena{}
}

// AcquireArena returns a pooled arena that MUST be Released once the tree
// parsed from it is dead (nil when arenas are disabled, in which case
// Release is a no-op).
func AcquireArena() *Arena {
	if !arenasEnabled.Load() {
		return nil
	}
	a := arenaPool.Get().(*Arena)
	arenaStats.acquires.Add(1)
	if a.poolHit() {
		arenaStats.reuses.Add(1)
	}
	return a
}

// Node returns a zeroed node allocated from the arena, or from the heap
// for a nil arena.
func (a *Arena) Node() *Node {
	if a == nil {
		return &Node{}
	}
	if len(a.nodes) == cap(a.nodes) {
		if a.nodes != nil {
			a.nodeSlabs = append(a.nodeSlabs, a.nodes)
		}
		a.nodes = make([]Node, 0, nodeSlabSize)
		arenaStats.slabs.Add(1)
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	arenaStats.nodes.Add(1)
	return &a.nodes[len(a.nodes)-1]
}

// Attrs returns a zeroed attribute slice of length n allocated from the
// arena, or from the heap for a nil arena.
func (a *Arena) Attrs(n int) []Attr {
	if n == 0 {
		return nil
	}
	if a == nil {
		return make([]Attr, n)
	}
	if cap(a.attrs)-len(a.attrs) < n {
		if a.attrs != nil {
			a.attrSlabs = append(a.attrSlabs, a.attrs)
		}
		size := attrSlabSize
		if n > size {
			size = n
		}
		a.attrs = make([]Attr, 0, size)
	}
	s := a.attrs[len(a.attrs) : len(a.attrs)+n : len(a.attrs)+n]
	a.attrs = a.attrs[:len(a.attrs)+n]
	return s
}

// Release zeroes every allocation handed out since the arena was acquired
// and returns the arena to the pool.  See the soundness rule in the type
// documentation; calling Release while any *Node from this arena is still
// reachable is a use-after-free class bug.
func (a *Arena) Release() {
	if a == nil {
		return
	}
	for _, slab := range a.nodeSlabs {
		resetNodes(slab)
	}
	resetNodes(a.nodes)
	a.nodes = a.nodes[:0]
	a.nodeSlabs = a.nodeSlabs[:0]
	for _, slab := range a.attrSlabs {
		clear(slab)
	}
	clear(a.attrs)
	a.attrs = a.attrs[:0]
	a.attrSlabs = a.attrSlabs[:0]
	arenaStats.releases.Add(1)
	arenaPool.Put(a)
}

// resetNodes zeroes every node in the slab field by field; Node cannot be
// overwritten wholesale because its fingerprint cache is an atomic value.
func resetNodes(slab []Node) {
	for i := range slab {
		n := &slab[i]
		n.Type = DocumentNode
		n.Tag = ""
		n.Data = ""
		n.Attrs = nil
		n.Parent = nil
		n.FirstChild = nil
		n.LastChild = nil
		n.PrevSibling = nil
		n.NextSibling = nil
		n.Mark = 0
		n.SpanStart = 0
		n.SpanEnd = 0
		n.fp.Store(nil)
	}
}
