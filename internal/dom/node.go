// Package dom provides the document object model used throughout the MSE
// system: a rooted, ordered, labeled tree representation of HTML pages,
// together with the tag-path machinery (tag paths, compact tag paths, path
// compatibility and the path distance of Formula 1 in the paper).
//
// The MSE paper (Zhao, Meng, Yu; VLDB 2006) locates every piece of page
// content by a tag path — a sequence of (tag, direction) steps from the
// root, where the direction records whether the walk descends to a first
// child ("C") or moves to a next sibling ("S").  The compact tag path keeps
// only the C steps plus the number of S steps between consecutive C steps,
// which makes paths from different result pages of the same engine
// comparable even when the number of repeated siblings differs.
package dom

import (
	"strings"
	"sync/atomic"
)

// NodeType discriminates the kinds of nodes in a DOM tree.
type NodeType int

const (
	// DocumentNode is the synthetic root of a parsed page.
	DocumentNode NodeType = iota
	// ElementNode is an HTML element such as <table> or <a>.
	ElementNode
	// TextNode is a run of character data.
	TextNode
	// CommentNode is an HTML comment; it never contributes content lines.
	CommentNode
	// DoctypeNode is a <!DOCTYPE ...> declaration.
	DoctypeNode
)

// String returns a short human-readable name for the node type.
func (t NodeType) String() string {
	switch t {
	case DocumentNode:
		return "#document"
	case ElementNode:
		return "element"
	case TextNode:
		return "#text"
	case CommentNode:
		return "#comment"
	case DoctypeNode:
		return "#doctype"
	}
	return "#unknown"
}

// Attr is a single name/value attribute on an element.
type Attr struct {
	Key string
	Val string
}

// Node is a node in the DOM tree of a result page.  The zero value is an
// empty document node with no children.
type Node struct {
	Type NodeType
	// Tag is the lower-cased tag name for element nodes ("table", "a", …).
	Tag string
	// Data holds the text of TextNode and CommentNode nodes.
	Data  string
	Attrs []Attr

	Parent      *Node
	FirstChild  *Node
	LastChild   *Node
	PrevSibling *Node
	NextSibling *Node

	// Mark is scratch space for single-owner tree passes.  The pre-render
	// pruning pass (internal/prune) sets MarkCandidate on every node a
	// compiled wrapper could match so the renderer knows which subtrees
	// need full line content.  Marks are only meaningful within one
	// extraction: arenas clear them on Release, and heap-backed trees are
	// parsed fresh per call.
	Mark uint8

	// SpanStart/SpanEnd are the node-resident line-span index maintained by
	// internal/layout during rendering: the half-open content-line range
	// [SpanStart, SpanEnd) this subtree renders into, with SpanEnd == 0
	// meaning "renders nothing".  Storing the span on the node instead of a
	// map[*Node][2]int keeps Page.Span and the per-leaf span merge on the
	// extraction hot path allocation- and hash-free.  Like Mark, the fields
	// are only meaningful for the tree's most recent render: arenas clear
	// them on Release, and heap-backed trees are parsed fresh per call.
	SpanStart, SpanEnd int32

	// fp caches the structural fingerprint of the subtree rooted here; see
	// fingerprint.go.  Atomic so concurrent lazy computation is race-free.
	fp atomic.Pointer[Fingerprint]
}

// MarkCandidate flags a node located as a wrapper-target candidate by the
// pruning pass; the renderer emits full lines for marked subtrees and
// skeleton lines elsewhere.
const MarkCandidate uint8 = 1

// Label returns the label used when comparing nodes structurally: the tag
// name for elements and the node-type name otherwise.  Text content is
// deliberately excluded so that structural comparison (tree edit distance)
// measures layout similarity, not content similarity.
func (n *Node) Label() string {
	if n.Type == ElementNode {
		return n.Tag
	}
	return n.Type.String()
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// AppendChild adds c as the last child of n.  c must not already have a
// parent or siblings.
func (n *Node) AppendChild(c *Node) {
	if c.Parent != nil || c.PrevSibling != nil || c.NextSibling != nil {
		panic("dom: AppendChild called with attached child")
	}
	c.Parent = n
	n.invalidateFingerprints()
	if n.LastChild == nil {
		n.FirstChild = c
		n.LastChild = c
		return
	}
	c.PrevSibling = n.LastChild
	n.LastChild.NextSibling = c
	n.LastChild = c
}

// RemoveChild detaches c from n.  It panics if c is not a child of n.
func (n *Node) RemoveChild(c *Node) {
	if c.Parent != n {
		panic("dom: RemoveChild called with non-child")
	}
	if c.PrevSibling != nil {
		c.PrevSibling.NextSibling = c.NextSibling
	} else {
		n.FirstChild = c.NextSibling
	}
	if c.NextSibling != nil {
		c.NextSibling.PrevSibling = c.PrevSibling
	} else {
		n.LastChild = c.PrevSibling
	}
	c.Parent = nil
	c.PrevSibling = nil
	c.NextSibling = nil
	n.invalidateFingerprints()
}

// Children returns the direct children of n as a slice, in document order.
func (n *Node) Children() []*Node {
	var out []*Node
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		out = append(out, c)
	}
	return out
}

// ChildCount reports the number of direct children of n.
func (n *Node) ChildCount() int {
	count := 0
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		count++
	}
	return count
}

// Walk visits n and all of its descendants in preorder (document order),
// calling fn for each node.  If fn returns false the subtree below the
// current node is skipped (the walk continues with the next sibling).
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(fn)
	}
}

// Size returns the number of nodes in the subtree rooted at n, including n.
func (n *Node) Size() int {
	count := 0
	n.Walk(func(*Node) bool {
		count++
		return true
	})
	return count
}

// TextContent concatenates the text of all descendant text nodes of n,
// separated by single spaces, with surrounding whitespace trimmed.
func (n *Node) TextContent() string {
	var sb strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == TextNode {
			t := strings.TrimSpace(c.Data)
			if t != "" {
				if sb.Len() > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(t)
			}
		}
		return true
	})
	return sb.String()
}

// Clone returns a deep copy of the subtree rooted at n.  The copy is
// detached: its Parent and sibling pointers are nil.
func (n *Node) Clone() *Node {
	cp := &Node{Type: n.Type, Tag: n.Tag, Data: n.Data}
	if len(n.Attrs) > 0 {
		cp.Attrs = make([]Attr, len(n.Attrs))
		copy(cp.Attrs, n.Attrs)
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		cp.AppendChild(c.Clone())
	}
	return cp
}

// Root returns the topmost ancestor of n (n itself if it has no parent).
func (n *Node) Root() *Node {
	for n.Parent != nil {
		n = n.Parent
	}
	return n
}

// Depth returns the number of ancestors of n (0 for the root).
func (n *Node) Depth() int {
	d := 0
	for p := n.Parent; p != nil; p = p.Parent {
		d++
	}
	return d
}

// IsAncestorOf reports whether n is a proper ancestor of other.
func (n *Node) IsAncestorOf(other *Node) bool {
	for p := other.Parent; p != nil; p = p.Parent {
		if p == n {
			return true
		}
	}
	return false
}

// FindAll returns every descendant element of n (in document order) whose
// tag equals tag.
func (n *Node) FindAll(tag string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && c.Tag == tag {
			out = append(out, c)
		}
		return true
	})
	return out
}

// CommonAncestor returns the deepest node that is an ancestor of (or equal
// to) both a and b.  It returns nil when a and b are in different trees.
func CommonAncestor(a, b *Node) *Node {
	seen := make(map[*Node]bool)
	for n := a; n != nil; n = n.Parent {
		seen[n] = true
	}
	for n := b; n != nil; n = n.Parent {
		if seen[n] {
			return n
		}
	}
	return nil
}

// MinimalSubtree returns the deepest single node whose subtree contains all
// of the given nodes.  It returns nil for an empty input or nodes from
// different trees.  This is the "minimum subtree t" of Section 4.1 of the
// paper: for every section there is a minimal subtree containing all its
// records.
func MinimalSubtree(nodes []*Node) *Node {
	if len(nodes) == 0 {
		return nil
	}
	acc := nodes[0]
	for _, n := range nodes[1:] {
		acc = CommonAncestor(acc, n)
		if acc == nil {
			return nil
		}
	}
	return acc
}
