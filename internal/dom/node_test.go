package dom

import (
	"reflect"
	"testing"
)

// buildTree constructs:
//
//	doc
//	└── html
//	    ├── head
//	    │   └── title ("T")
//	    └── body
//	        ├── table
//	        │   ├── tr ── td ("a")
//	        │   └── tr ── td ("b")
//	        └── p ("x")
func buildTree() (*Node, map[string]*Node) {
	m := make(map[string]*Node)
	el := func(name, tag string) *Node {
		n := &Node{Type: ElementNode, Tag: tag}
		m[name] = n
		return n
	}
	text := func(name, s string) *Node {
		n := &Node{Type: TextNode, Data: s}
		m[name] = n
		return n
	}
	doc := &Node{Type: DocumentNode}
	m["doc"] = doc
	html := el("html", "html")
	head := el("head", "head")
	title := el("title", "title")
	body := el("body", "body")
	table := el("table", "table")
	tr1 := el("tr1", "tr")
	td1 := el("td1", "td")
	tr2 := el("tr2", "tr")
	td2 := el("td2", "td")
	p := el("p", "p")

	doc.AppendChild(html)
	html.AppendChild(head)
	head.AppendChild(title)
	title.AppendChild(text("t", "T"))
	html.AppendChild(body)
	body.AppendChild(table)
	table.AppendChild(tr1)
	tr1.AppendChild(td1)
	td1.AppendChild(text("a", "a"))
	table.AppendChild(tr2)
	tr2.AppendChild(td2)
	td2.AppendChild(text("b", "b"))
	body.AppendChild(p)
	p.AppendChild(text("x", "x"))
	return doc, m
}

func TestAppendChildLinks(t *testing.T) {
	parent := &Node{Type: ElementNode, Tag: "div"}
	a := &Node{Type: ElementNode, Tag: "a"}
	b := &Node{Type: ElementNode, Tag: "b"}
	parent.AppendChild(a)
	parent.AppendChild(b)
	if parent.FirstChild != a || parent.LastChild != b {
		t.Fatalf("first/last child wrong")
	}
	if a.NextSibling != b || b.PrevSibling != a {
		t.Fatalf("sibling links wrong")
	}
	if a.Parent != parent || b.Parent != parent {
		t.Fatalf("parent links wrong")
	}
}

func TestAppendChildPanicsOnAttached(t *testing.T) {
	parent := &Node{Type: ElementNode, Tag: "div"}
	a := &Node{Type: ElementNode, Tag: "a"}
	parent.AppendChild(a)
	other := &Node{Type: ElementNode, Tag: "p"}
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic appending attached node")
		}
	}()
	other.AppendChild(a)
}

func TestRemoveChild(t *testing.T) {
	parent := &Node{Type: ElementNode, Tag: "div"}
	a := &Node{Type: ElementNode, Tag: "a"}
	b := &Node{Type: ElementNode, Tag: "b"}
	c := &Node{Type: ElementNode, Tag: "c"}
	parent.AppendChild(a)
	parent.AppendChild(b)
	parent.AppendChild(c)
	parent.RemoveChild(b)
	if got := len(parent.Children()); got != 2 {
		t.Fatalf("children = %d, want 2", got)
	}
	if a.NextSibling != c || c.PrevSibling != a {
		t.Fatalf("sibling relink wrong after removal")
	}
	if b.Parent != nil || b.PrevSibling != nil || b.NextSibling != nil {
		t.Fatalf("removed node not detached")
	}
	parent.RemoveChild(a)
	parent.RemoveChild(c)
	if parent.FirstChild != nil || parent.LastChild != nil {
		t.Fatalf("parent not empty after removing all children")
	}
}

func TestWalkPreorder(t *testing.T) {
	doc, _ := buildTree()
	var order []string
	doc.Walk(func(n *Node) bool {
		order = append(order, n.Label())
		return true
	})
	want := []string{"#document", "html", "head", "title", "#text", "body",
		"table", "tr", "td", "#text", "tr", "td", "#text", "p", "#text"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("preorder = %v, want %v", order, want)
	}
}

func TestWalkPrune(t *testing.T) {
	doc, m := buildTree()
	var visited []string
	doc.Walk(func(n *Node) bool {
		visited = append(visited, n.Label())
		return n != m["table"] // skip the table's descendants
	})
	for _, lbl := range visited {
		if lbl == "tr" {
			t.Fatalf("pruned subtree was visited")
		}
	}
}

func TestSizeAndTextContent(t *testing.T) {
	doc, m := buildTree()
	if got := doc.Size(); got != 15 {
		t.Fatalf("Size = %d, want 15", got)
	}
	if got := m["table"].TextContent(); got != "a b" {
		t.Fatalf("TextContent = %q, want %q", got, "a b")
	}
	if got := doc.TextContent(); got != "T a b x" {
		t.Fatalf("TextContent = %q, want %q", got, "T a b x")
	}
}

func TestCloneIsDeepAndDetached(t *testing.T) {
	_, m := buildTree()
	cp := m["table"].Clone()
	if cp.Parent != nil || cp.PrevSibling != nil || cp.NextSibling != nil {
		t.Fatalf("clone not detached")
	}
	if cp.Size() != m["table"].Size() {
		t.Fatalf("clone size %d != original %d", cp.Size(), m["table"].Size())
	}
	// Mutating the clone must not affect the original.
	cp.FirstChild.Tag = "mutated"
	if m["table"].FirstChild.Tag != "tr" {
		t.Fatalf("clone shares nodes with original")
	}
}

func TestAttrLookup(t *testing.T) {
	n := &Node{Type: ElementNode, Tag: "a",
		Attrs: []Attr{{Key: "href", Val: "http://x"}, {Key: "class", Val: "r"}}}
	if v, ok := n.Attr("href"); !ok || v != "http://x" {
		t.Fatalf("Attr(href) = %q,%v", v, ok)
	}
	if _, ok := n.Attr("id"); ok {
		t.Fatalf("Attr(id) should be absent")
	}
}

func TestAncestry(t *testing.T) {
	doc, m := buildTree()
	if !m["body"].IsAncestorOf(m["td1"]) {
		t.Fatalf("body should be ancestor of td1")
	}
	if m["td1"].IsAncestorOf(m["body"]) {
		t.Fatalf("td1 should not be ancestor of body")
	}
	if m["td1"].IsAncestorOf(m["td1"]) {
		t.Fatalf("a node is not its own proper ancestor")
	}
	if got := m["td1"].Root(); got != doc {
		t.Fatalf("Root wrong")
	}
	if got := m["td1"].Depth(); got != 5 {
		t.Fatalf("Depth = %d, want 5", got)
	}
}

func TestCommonAncestorAndMinimalSubtree(t *testing.T) {
	_, m := buildTree()
	if got := CommonAncestor(m["td1"], m["td2"]); got != m["table"] {
		t.Fatalf("CommonAncestor(td1,td2) = %v, want table", got)
	}
	if got := CommonAncestor(m["td1"], m["p"]); got != m["body"] {
		t.Fatalf("CommonAncestor(td1,p) = %v, want body", got)
	}
	if got := CommonAncestor(m["td1"], m["td1"]); got != m["td1"] {
		t.Fatalf("CommonAncestor of node with itself should be the node")
	}
	if got := MinimalSubtree([]*Node{m["td1"], m["td2"], m["tr1"]}); got != m["table"] {
		t.Fatalf("MinimalSubtree = %v, want table", got)
	}
	if got := MinimalSubtree(nil); got != nil {
		t.Fatalf("MinimalSubtree(nil) should be nil")
	}
	detached := &Node{Type: ElementNode, Tag: "div"}
	if got := CommonAncestor(m["td1"], detached); got != nil {
		t.Fatalf("CommonAncestor across trees should be nil")
	}
}

func TestFindAll(t *testing.T) {
	doc, _ := buildTree()
	trs := doc.FindAll("tr")
	if len(trs) != 2 {
		t.Fatalf("FindAll(tr) = %d nodes, want 2", len(trs))
	}
	if len(doc.FindAll("li")) != 0 {
		t.Fatalf("FindAll(li) should be empty")
	}
}
