package dom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPathOfMatchesPaperExample(t *testing.T) {
	doc, m := buildTree()
	_ = doc
	// Path of the text "b": doc C html C head S body C table C tr S tr C td C
	p := PathOf(m["b"])
	want := "{#document}C{html}C{head}S{body}C{table}C{tr}S{tr}C{td}C"
	if p.String() != want {
		t.Fatalf("PathOf(b) = %s, want %s", p, want)
	}
}

func TestPathOfRootIsEmpty(t *testing.T) {
	doc, _ := buildTree()
	if p := PathOf(doc); len(p) != 0 {
		t.Fatalf("root path should be empty, got %s", p)
	}
}

func TestParseTagPathRoundTrip(t *testing.T) {
	doc, _ := buildTree()
	var nodes []*Node
	doc.Walk(func(n *Node) bool { nodes = append(nodes, n); return true })
	for _, n := range nodes {
		p := PathOf(n)
		parsed, err := ParseTagPath(p.String())
		if err != nil {
			t.Fatalf("ParseTagPath(%q): %v", p.String(), err)
		}
		if parsed.String() != p.String() {
			t.Fatalf("round trip %q -> %q", p.String(), parsed.String())
		}
	}
}

func TestParseTagPathErrors(t *testing.T) {
	for _, bad := range []string{"html}C", "{html", "{html}X", "{html}"} {
		if _, err := ParseTagPath(bad); err == nil {
			t.Errorf("ParseTagPath(%q) should fail", bad)
		}
	}
}

func TestLocateInverseOfPathOf(t *testing.T) {
	doc, _ := buildTree()
	doc.Walk(func(n *Node) bool {
		p := PathOf(n)
		if got := Locate(doc, p); got != n {
			t.Fatalf("Locate(PathOf(%s)) = %v, want the node itself", n.Label(), got)
		}
		return true
	})
}

func TestLocateMissing(t *testing.T) {
	doc, _ := buildTree()
	p, err := ParseTagPath("{#document}C{html}C{head}S{body}C{div}C")
	if err != nil {
		t.Fatal(err)
	}
	if got := Locate(doc, p); got != nil {
		t.Fatalf("Locate of nonexistent path = %v, want nil", got)
	}
}

func TestCompactPath(t *testing.T) {
	doc, m := buildTree()
	_ = doc
	// Path of text "b" has C tags doc, html, body(after 1 S), table, tr(after 1 S... wait)
	c := PathOf(m["b"]).Compact()
	// {#document}C{html}C{head}S{body}C{table}C{tr}S{tr}C{td}C
	// C steps: #document(+0) html(+0) body(+1) table(+0) tr... the C steps
	// are the ones with Dir=C: #document, html, body, table, tr(second), td.
	wantTags := []string{"#document", "html", "body", "table", "tr", "td"}
	gotTags := c.CTags()
	if len(gotTags) != len(wantTags) {
		t.Fatalf("compact C tags = %v, want %v", gotTags, wantTags)
	}
	for i := range wantTags {
		if gotTags[i] != wantTags[i] {
			t.Fatalf("compact C tags = %v, want %v", gotTags, wantTags)
		}
	}
	if c.TotalS() != 2 {
		t.Fatalf("TotalS = %d, want 2", c.TotalS())
	}
}

func TestCompatibility(t *testing.T) {
	_, m := buildTree()
	ca := PathOf(m["a"]).Compact()
	cb := PathOf(m["b"]).Compact()
	if !ca.Compatible(cb) {
		t.Fatalf("paths of td text in sibling rows should be compatible")
	}
	cx := PathOf(m["x"]).Compact()
	if ca.Compatible(cx) {
		t.Fatalf("td text and p text paths should be incompatible")
	}
}

func TestPathDistanceFormula1(t *testing.T) {
	_, m := buildTree()
	ca := PathOf(m["a"]).Compact()
	cb := PathOf(m["b"]).Compact()
	// a: ...{table}C{tr}C{td}C -> S counts per C step differ only at the tr
	// step (0 vs 1); max total S = max(1, 2) = 2, so distance = 1/2.
	if got := PathDistance(ca, cb); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("PathDistance = %g, want 0.5", got)
	}
	if got := PathDistance(ca, ca); got != 0 {
		t.Fatalf("self distance = %g, want 0", got)
	}
}

func TestPathDistanceIncompatibleWorseThanCompatible(t *testing.T) {
	_, m := buildTree()
	ca := PathOf(m["a"]).Compact()
	cb := PathOf(m["b"]).Compact()
	cx := PathOf(m["x"]).Compact()
	compat := PathDistance(ca, cb)
	incompat := PathDistance(ca, cx)
	if incompat <= compat {
		t.Fatalf("incompatible distance %g should exceed compatible %g", incompat, compat)
	}
	if incompat < 1 {
		t.Fatalf("incompatible distance %g should be >= 1", incompat)
	}
}

func TestPathDistanceSymmetric(t *testing.T) {
	_, m := buildTree()
	nodes := []*Node{m["a"], m["b"], m["x"], m["t"]}
	for _, p := range nodes {
		for _, q := range nodes {
			d1 := PathDistance(PathOf(p).Compact(), PathOf(q).Compact())
			d2 := PathDistance(PathOf(q).Compact(), PathOf(p).Compact())
			if math.Abs(d1-d2) > 1e-12 {
				t.Fatalf("distance not symmetric: %g vs %g", d1, d2)
			}
		}
	}
}

func TestLocateCompactTolerant(t *testing.T) {
	doc, m := buildTree()
	// Add a third row; the compact path of its td text is compatible with
	// the others but with a different sibling count.
	tr3 := &Node{Type: ElementNode, Tag: "tr"}
	td3 := &Node{Type: ElementNode, Tag: "td"}
	txt := &Node{Type: TextNode, Data: "c"}
	td3.AppendChild(txt)
	tr3.AppendChild(td3)
	m["table"].AppendChild(tr3)

	target := PathOf(m["b"]).Compact()
	got := LocateCompact(doc, target)
	if got != m["b"] {
		t.Fatalf("LocateCompact should find the exact node when present")
	}

	// Remove row 2; the best compatible match for b's path is now a or c's
	// text node (nearest sibling count wins: tr index 1 gone, tr index 2's
	// text has |2-1|=1, tr index 0's has |0-1|=1; ties keep the first).
	m["table"].RemoveChild(m["tr2"])
	got = LocateCompact(doc, target)
	if got == nil {
		t.Fatalf("LocateCompact should fall back to a compatible node")
	}
	if got != m["a"] && got != txt {
		t.Fatalf("LocateCompact fallback picked %v", got)
	}
}

// Property: compacting any generated path preserves the total sibling count
// and compatibility is reflexive.
func TestQuickCompactProperties(t *testing.T) {
	f := func(dirs []bool) bool {
		var p TagPath
		s := 0
		for _, isChild := range dirs {
			d := Sibling
			if isChild {
				d = Child
			} else {
				s++
			}
			p = append(p, PathNode{Tag: "t", Dir: d})
		}
		c := p.Compact()
		if c.TotalS() != s {
			return false
		}
		if !c.Compatible(c) {
			return false
		}
		return PathDistance(c, c) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
