package dom

import "testing"

func TestCompactPathStringRoundTrip(t *testing.T) {
	doc, _ := buildTree()
	doc.Walk(func(n *Node) bool {
		cp := PathOf(n).Compact()
		parsed, err := ParseCompactPath(cp.String())
		if err != nil {
			t.Fatalf("ParseCompactPath(%q): %v", cp.String(), err)
		}
		if parsed.String() != cp.String() {
			t.Fatalf("round trip %q -> %q", cp.String(), parsed.String())
		}
		if !parsed.Compatible(cp) {
			t.Fatalf("parsed path incompatible with original")
		}
		if PathDistance(parsed, cp) != 0 {
			t.Fatalf("parsed path at distance from original")
		}
		return true
	})
}

func TestParseCompactPathEmpty(t *testing.T) {
	cp, err := ParseCompactPath("")
	if err != nil || len(cp) != 0 {
		t.Fatalf("empty compact path should parse to nil: %v %v", cp, err)
	}
}

func TestParseCompactPathErrors(t *testing.T) {
	for _, bad := range []string{"html}+0", "{html", "{html}0", "{html}+", "{html}+x"} {
		if _, err := ParseCompactPath(bad); err == nil {
			t.Errorf("ParseCompactPath(%q) should fail", bad)
		}
	}
}

func TestParseCompactPathMultiDigit(t *testing.T) {
	cp, err := ParseCompactPath("{body}+12{table}+345")
	if err != nil {
		t.Fatal(err)
	}
	if cp[0].SBefore != 12 || cp[1].SBefore != 345 {
		t.Fatalf("multi-digit counts wrong: %+v", cp)
	}
}

func TestLocateCompactAllOrdering(t *testing.T) {
	doc, m := buildTree()
	_ = m
	target := PathOf(m["a"]).Compact()
	cands := LocateCompactAll(doc, target)
	if len(cands) < 2 {
		t.Fatalf("expected several compatible candidates, got %d", len(cands))
	}
	// The first candidate is the exact node (distance 0).
	if cands[0] != m["a"] {
		t.Fatalf("best candidate is not the exact node")
	}
	// Distances are non-decreasing.
	prev := -1.0
	for _, c := range cands {
		d := PathDistance(PathOf(c).Compact(), target)
		if d < prev {
			t.Fatalf("candidates not sorted by distance")
		}
		prev = d
	}
}

func TestChildCount(t *testing.T) {
	_, m := buildTree()
	if got := m["table"].ChildCount(); got != 2 {
		t.Fatalf("ChildCount(table) = %d", got)
	}
	if got := m["a"].ChildCount(); got != 0 {
		t.Fatalf("ChildCount(text) = %d", got)
	}
}
