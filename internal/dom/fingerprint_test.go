package dom

import "testing"

// mkTree builds a small element tree from a nested spec: tag plus children.
type spec struct {
	tag  string
	kids []spec
}

func (s spec) build() *Node {
	n := &Node{Type: ElementNode, Tag: s.tag}
	for _, k := range s.kids {
		n.AppendChild(k.build())
	}
	return n
}

func TestFingerprintEqualStructure(t *testing.T) {
	s := spec{"div", []spec{{"a", nil}, {"span", []spec{{"b", nil}}}}}
	t1, t2 := s.build(), s.build()
	if t1.Fingerprint() != t2.Fingerprint() {
		t.Fatalf("identical structures disagree: %+v vs %+v", t1.Fingerprint(), t2.Fingerprint())
	}
	if got, want := t1.Fingerprint().Size, t1.Size(); got != want {
		t.Fatalf("fingerprint size = %d, Size() = %d", got, want)
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	base := spec{"div", []spec{{"a", nil}, {"span", nil}}}
	cases := []spec{
		{"p", []spec{{"a", nil}, {"span", nil}}},                  // different root tag
		{"div", []spec{{"span", nil}, {"a", nil}}},                // different child order
		{"div", []spec{{"a", nil}}},                               // missing child
		{"div", []spec{{"a", nil}, {"span", []spec{{"b", nil}}}}}, // extra depth
	}
	bf := base.build().Fingerprint()
	for i, c := range cases {
		if c.build().Fingerprint() == bf {
			t.Errorf("case %d: fingerprint collides with base", i)
		}
	}
}

func TestFingerprintTextNodesShareLabel(t *testing.T) {
	// Tree distance treats all text nodes as one label, and so must the
	// fingerprint: same structure with different text contents hashes equal.
	mk := func(s string) *Node {
		p := &Node{Type: ElementNode, Tag: "p"}
		p.AppendChild(&Node{Type: TextNode, Data: s})
		return p
	}
	if mk("hello").Fingerprint() != mk("world").Fingerprint() {
		t.Fatal("text content leaked into the structural fingerprint")
	}
}

func TestFingerprintInvalidation(t *testing.T) {
	root := spec{"div", []spec{{"a", nil}}}.build()
	before := root.Fingerprint()

	// AppendChild must invalidate the cached fingerprints up the chain.
	extra := &Node{Type: ElementNode, Tag: "span"}
	root.AppendChild(extra)
	after := root.Fingerprint()
	if after == before {
		t.Fatal("fingerprint unchanged after AppendChild")
	}
	if after.Size != before.Size+1 {
		t.Fatalf("size = %d after append, want %d", after.Size, before.Size+1)
	}

	// RemoveChild must restore the original fingerprint.
	root.RemoveChild(extra)
	if got := root.Fingerprint(); got != before {
		t.Fatalf("fingerprint not restored after RemoveChild: %+v vs %+v", got, before)
	}
}

func TestFingerprintDeepInvalidation(t *testing.T) {
	// Mutating a grandchild must invalidate every ancestor's cache.
	root := spec{"div", []spec{{"ul", []spec{{"li", nil}}}}}.build()
	before := root.Fingerprint()
	li := root.FirstChild.FirstChild
	li.AppendChild(&Node{Type: ElementNode, Tag: "a"})
	if root.Fingerprint() == before {
		t.Fatal("ancestor fingerprint stale after grandchild mutation")
	}
}

func TestFingerprintCloneIndependent(t *testing.T) {
	orig := spec{"div", []spec{{"a", nil}}}.build()
	fp := orig.Fingerprint()
	cl := orig.Clone()
	if cl.Fingerprint() != fp {
		t.Fatal("clone fingerprint differs from original")
	}
	cl.AppendChild(&Node{Type: ElementNode, Tag: "b"})
	if orig.Fingerprint() != fp {
		t.Fatal("mutating the clone changed the original's fingerprint")
	}
}

func TestFingerprintConcurrent(t *testing.T) {
	// Concurrent first computations must agree (exercised under -race).
	root := spec{"table", []spec{
		{"tr", []spec{{"td", nil}, {"td", nil}}},
		{"tr", []spec{{"td", nil}, {"td", nil}}},
	}}.build()
	want := spec{"table", []spec{
		{"tr", []spec{{"td", nil}, {"td", nil}}},
		{"tr", []spec{{"td", nil}, {"td", nil}}},
	}}.build().Fingerprint()
	done := make(chan Fingerprint, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- root.Fingerprint() }()
	}
	for i := 0; i < 8; i++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent fingerprint %+v, want %+v", got, want)
		}
	}
}
