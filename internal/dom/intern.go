package dom

import "sync/atomic"

// SigAtom is an interned identifier for a root-signature string (see
// mining.RootSignature).  Compiled wrappers resolve their separator
// signatures to atoms once at compile time; per-page classification then
// compares small integers instead of strings.  The zero atom means "not
// interned": a signature that no compiled wrapper ever registered.
type SigAtom int32

// sigTable is the copy-on-write interning table.  Lookups are lock-free
// loads of an immutable map; interning (compile time only, bounded by the
// set of distinct separator signatures across all learned wrappers) copies
// the map under a CAS loop.
var sigTable atomic.Pointer[map[string]SigAtom]

func init() {
	m := make(map[string]SigAtom)
	sigTable.Store(&m)
}

// InternSig returns the atom for sig, registering it if needed.  Intended
// for wrapper compilation, not per-page work: every call may copy the
// table.
func InternSig(sig string) SigAtom {
	for {
		old := sigTable.Load()
		if a, ok := (*old)[sig]; ok {
			return a
		}
		next := make(map[string]SigAtom, len(*old)+1)
		for k, v := range *old {
			next[k] = v
		}
		a := SigAtom(len(next) + 1)
		next[sig] = a
		if sigTable.CompareAndSwap(old, &next) {
			return a
		}
	}
}

// LookupSigBytes returns the atom for the signature in buf, or 0 when the
// signature was never interned.  The map index through string(buf) does
// not allocate (the compiler recognizes the map[string]...[string(bytes)]
// pattern), so per-block classification stays allocation-free.
func LookupSigBytes(buf []byte) SigAtom {
	return (*sigTable.Load())[string(buf)]
}
