// Package annotate implements the third task of complete web data
// extraction as framed in the paper's introduction: after section
// extraction and record extraction comes *data annotation* — identifying
// the data units inside each record (the paper cites DeLa [24] for this
// step and leaves it out of MSE's scope; this package supplies a
// practical heuristic annotator so the library covers the full task
// chain).
//
// The annotator classifies each content line of an extracted record and
// carves the title line into its conventional parts:
//
//  1. Official Guide history (10/21/2003) …
//     ^  ^^^^^^^^^^^^^^^^^^^^^^ ^^^^^^^^^^^^
//     rank      title               date
//
// Snippets, display URLs, prices and "more results" trailers are
// recognized by shape.  The heuristics are deliberately conservative: a
// unit is only labeled when its shape is unambiguous, everything else
// stays Snippet.
package annotate

import (
	"regexp"
	"strings"

	"mse/internal/core"
)

// UnitType classifies one data unit of a record.
type UnitType int

// The unit vocabulary of 2006-era search result records.
const (
	// Title is the record's main entry, usually the anchor text.
	Title UnitType = iota
	// Snippet is descriptive body text.
	Snippet
	// DisplayURL is a visible URL line ("www.site.com/doc.html").
	DisplayURL
	// Price is a money amount line.
	Price
	// Date is a date fragment, usually decorating the title.
	Date
	// Rank is the ordinal prefix ("1.") some engines render.
	Rank
	// More is a "more results…" trailer that slipped into the record.
	More
)

// String names the unit type.
func (t UnitType) String() string {
	switch t {
	case Title:
		return "title"
	case Snippet:
		return "snippet"
	case DisplayURL:
		return "url"
	case Price:
		return "price"
	case Date:
		return "date"
	case Rank:
		return "rank"
	case More:
		return "more"
	}
	return "unknown"
}

// Unit is one annotated data unit.
type Unit struct {
	Type UnitType
	// Text is the unit's text content.
	Text string
	// Line is the index of the source line within the record.
	Line int
}

var (
	rankRe  = regexp.MustCompile(`^(\d{1,3})\.\s+`)
	dateRe  = regexp.MustCompile(`\(\d{1,2}/\d{1,2}/\d{4}\)`)
	priceRe = regexp.MustCompile(`(?:USD\s?|\$|€|£)\d[\d,]*(?:\.\d{2})?`)
	urlRe   = regexp.MustCompile(`^(?:https?://)?(?:www\.)?[\w.-]+\.[a-z]{2,}(?:/\S*)?$`)
	moreRe  = regexp.MustCompile(`(?i)^more\b.*\.{3}\s*$|^click here for more`)
)

// The regexes above backtrack, and annotation runs on every record of
// every served response, so each is guarded by a byte-scan prefilter that
// checks a necessary condition of the pattern.  Typical snippet lines fail
// the prefilter in one pass instead of feeding the backtracker.

// maybeMore: moreRe's two alternatives start with "more"/"click" —
// anything not starting with m/M/c/C cannot match.
func maybeMore(text string) bool {
	switch text[0] {
	case 'm', 'M', 'c', 'C':
		return true
	}
	return false
}

// maybeURL: urlRe has no whitespace-capable atom and requires a dot, so a
// line with interior whitespace or no '.' cannot match.
func maybeURL(text string) bool {
	return strings.IndexByte(text, '.') >= 0 &&
		!strings.ContainsAny(text, " \t\r\n\v\f")
}

// maybePrice: every priceRe alternative needs a currency marker.
func maybePrice(text string) bool {
	return strings.ContainsAny(text, "$€£") || strings.Contains(text, "USD")
}

// Record annotates one extracted record.
func Record(rec core.Record) []Unit {
	var units []Unit
	titleSeen := false
	for i, line := range rec.Lines {
		text := strings.TrimSpace(line)
		if text == "" {
			continue
		}
		switch {
		case maybeMore(text) && moreRe.MatchString(text):
			units = append(units, Unit{Type: More, Text: text, Line: i})
		case !titleSeen:
			titleSeen = true
			units = append(units, titleUnits(text, i)...)
		case maybeURL(text) && urlRe.MatchString(text):
			units = append(units, Unit{Type: DisplayURL, Text: text, Line: i})
		case maybePrice(text) && priceRe.MatchString(text):
			units = append(units, Unit{Type: Price, Text: priceRe.FindString(text), Line: i})
		default:
			units = append(units, Unit{Type: Snippet, Text: text, Line: i})
		}
	}
	return units
}

// titleUnits splits a title line into rank, title and date units.
func titleUnits(text string, line int) []Unit {
	var units []Unit
	if text[0] >= '0' && text[0] <= '9' {
		if m := rankRe.FindStringSubmatch(text); m != nil {
			units = append(units, Unit{Type: Rank, Text: m[1], Line: line})
			text = strings.TrimSpace(text[len(m[0]):])
		}
	}
	if strings.IndexByte(text, '(') >= 0 {
		if m := dateRe.FindString(text); m != "" {
			units = append(units, Unit{Type: Date, Text: m, Line: line})
			text = strings.TrimSpace(strings.Replace(text, m, "", 1))
			text = strings.Join(strings.Fields(text), " ")
		}
	}
	if text != "" {
		units = append(units, Unit{Type: Title, Text: text, Line: line})
	}
	return units
}

// Section annotates every record of a section, in order.
func Section(sec *core.Section) [][]Unit {
	out := make([][]Unit, len(sec.Records))
	for i, rec := range sec.Records {
		out[i] = Record(rec)
	}
	return out
}

// TitleOf returns the record's title text ("" when no title was found) —
// the most common single lookup callers need.
func TitleOf(rec core.Record) string {
	for _, u := range Record(rec) {
		if u.Type == Title {
			return u.Text
		}
	}
	return ""
}
