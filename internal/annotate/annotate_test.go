package annotate

import (
	"strings"
	"testing"

	"mse/internal/core"
	"mse/internal/eval"
	"mse/internal/synth"
)

func unitTypes(units []Unit) []UnitType {
	out := make([]UnitType, len(units))
	for i, u := range units {
		out[i] = u.Type
	}
	return out
}

func hasType(units []Unit, t UnitType) bool {
	for _, u := range units {
		if u.Type == t {
			return true
		}
	}
	return false
}

func textOf(units []Unit, t UnitType) string {
	for _, u := range units {
		if u.Type == t {
			return u.Text
		}
	}
	return ""
}

func TestRecordFullShape(t *testing.T) {
	rec := core.Record{Lines: []string{
		"1. Official Guide history (10/21/2003) marker",
		"a descriptive snippet about the result",
		"www.site.example/doc/page.html",
		"Price: $34.99 marker",
	}}
	units := Record(rec)
	if got := textOf(units, Rank); got != "1" {
		t.Fatalf("rank = %q", got)
	}
	if got := textOf(units, Date); got != "(10/21/2003)" {
		t.Fatalf("date = %q", got)
	}
	if got := textOf(units, Title); !strings.HasPrefix(got, "Official Guide history") {
		t.Fatalf("title = %q", got)
	}
	if got := textOf(units, Snippet); !strings.HasPrefix(got, "a descriptive") {
		t.Fatalf("snippet = %q", got)
	}
	if got := textOf(units, DisplayURL); got != "www.site.example/doc/page.html" {
		t.Fatalf("url = %q", got)
	}
	if got := textOf(units, Price); got != "$34.99" {
		t.Fatalf("price = %q", got)
	}
}

func TestRecordMinimal(t *testing.T) {
	rec := core.Record{Lines: []string{"Bare Title Only"}}
	units := Record(rec)
	if len(units) != 1 || units[0].Type != Title || units[0].Text != "Bare Title Only" {
		t.Fatalf("units = %v", unitTypes(units))
	}
}

func TestRecordTrailerDetected(t *testing.T) {
	rec := core.Record{Lines: []string{
		"Some Title here",
		"a snippet line",
		"More pyramid results ...",
	}}
	units := Record(rec)
	if !hasType(units, More) {
		t.Fatalf("trailer not detected: %v", unitTypes(units))
	}
	// The trailer line must not be a snippet too.
	for _, u := range units {
		if u.Line == 2 && u.Type != More {
			t.Fatalf("trailer double-labeled as %v", u.Type)
		}
	}
}

func TestRecordEmptyAndBlankLines(t *testing.T) {
	if got := Record(core.Record{}); len(got) != 0 {
		t.Fatalf("empty record should yield no units")
	}
	units := Record(core.Record{Lines: []string{"", "  ", "Real Title"}})
	if len(units) != 1 || units[0].Type != Title {
		t.Fatalf("blank lines mishandled: %v", unitTypes(units))
	}
	if units[0].Line != 2 {
		t.Fatalf("line index should point at the source line")
	}
}

func TestRankWithoutDate(t *testing.T) {
	units := Record(core.Record{Lines: []string{"12. Plain Ranked Title"}})
	if textOf(units, Rank) != "12" {
		t.Fatalf("rank missed")
	}
	if hasType(units, Date) {
		t.Fatalf("phantom date")
	}
	if textOf(units, Title) != "Plain Ranked Title" {
		t.Fatalf("title = %q", textOf(units, Title))
	}
}

func TestTitleOf(t *testing.T) {
	rec := core.Record{Lines: []string{"3. The Title (1/2/2003) x", "snippet"}}
	if got := TitleOf(rec); got != "The Title x" {
		t.Fatalf("TitleOf = %q", got)
	}
	if got := TitleOf(core.Record{}); got != "" {
		t.Fatalf("TitleOf(empty) = %q", got)
	}
}

func TestSectionAnnotation(t *testing.T) {
	sec := &core.Section{Records: []core.Record{
		{Lines: []string{"1. A"}},
		{Lines: []string{"2. B", "snippet"}},
	}}
	out := Section(sec)
	if len(out) != 2 {
		t.Fatalf("records = %d", len(out))
	}
	if !hasType(out[1], Snippet) {
		t.Fatalf("second record lost its snippet")
	}
}

// TestAnnotateAgainstTestbed annotates real extractions across synthetic
// engines and checks the units agree with the engines' record formats.
func TestAnnotateAgainstTestbed(t *testing.T) {
	engines := synth.GenerateTestbed(synth.Config{Seed: 2006, Engines: 16, MultiSection: 6, Queries: 8})
	checkedURL, okURL := 0, 0
	checkedPrice, okPrice := 0, 0
	checkedRank, okRank := 0, 0
	for _, e := range engines {
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		ex := eval.NewMSE(core.DefaultOptions())
		if err := ex.Train(samples); err != nil {
			continue
		}
		gp := e.Page(6)
		for _, sec := range ex.Extract(gp.HTML, gp.Query) {
			// Which schema does this section belong to?
			var ss *synth.SectionSchema
			for _, cand := range e.Schema.Sections {
				if cand.Heading == sec.Heading {
					ss = cand
				}
			}
			if ss == nil {
				continue
			}
			for _, rec := range sec.Records {
				units := Record(rec)
				if ss.Format.HasURLLine {
					checkedURL++
					if hasType(units, DisplayURL) {
						okURL++
					}
				}
				if ss.Format.HasPrice {
					checkedPrice++
					if hasType(units, Price) {
						okPrice++
					}
				}
				if ss.Format.NumberPrefix {
					checkedRank++
					if hasType(units, Rank) {
						okRank++
					}
				}
			}
		}
	}
	check := func(name string, ok, total int) {
		t.Helper()
		if total == 0 {
			return
		}
		if float64(ok) < 0.9*float64(total) {
			t.Errorf("%s units found on %d/%d records", name, ok, total)
		}
	}
	if checkedURL+checkedPrice+checkedRank == 0 {
		t.Skip("test bed slice exercised no annotatable formats")
	}
	check("url", okURL, checkedURL)
	check("price", okPrice, checkedPrice)
	check("rank", okRank, checkedRank)
}
