// Package quality scores the health of each engine wrapper on the serving
// path and detects template drift.  The paper's wrappers are learned once
// from sample pages, but real SERP templates change; when they do, recall
// collapses silently — the extraction still "succeeds", it just returns
// fewer sections, fewer records, or nothing at all.  Following the
// detect/adapt loop of "Design of Automatically Adaptable Web Wrappers"
// (Ferrara & Baumgartner), this package implements the detect half: a
// streaming per-engine baseline of structural extraction signals, a
// per-page anomaly test against that baseline, and a hysteresis-guarded
// verdict (OK / SUSPECT / DRIFTED) that a relearner can act on.
//
// Signals per extraction: sections per page, records per page, whether the
// extraction came back empty, and apply latency.  Baselines are
// obs.EWMA estimates — exact (Welford) during a warm-up prefix, slowly
// exponential afterwards — so a healthy engine's natural variation is part
// of the baseline, and a page is anomalous only when its z-score against
// the learned mean/std is large, or when it is empty while the engine's
// learned empty rate is low.
//
// A single weird page proves nothing: the verdict is driven by an
// exponentially smoothed anomaly *rate* over roughly Window pages, and the
// OK→SUSPECT→DRIFTED transitions use separate enter/exit thresholds
// (hysteresis bands), so the verdict cannot flap across a boundary on
// sampling noise.  Baselines freeze while an engine is SUSPECT or DRIFTED:
// a drifted template must not be absorbed into the baseline it is being
// judged against.
package quality

import (
	"math"
	"sort"
	"sync"
	"time"

	"mse/internal/obs"
)

// Verdict is the drift state of one engine.
type Verdict int

const (
	// OK: signals track the learned baseline.
	OK Verdict = iota
	// Suspect: anomaly rate above the SUSPECT band — quality degraded or
	// early drift; keep serving, start watching.
	Suspect
	// Drifted: anomaly rate sustained above the DRIFTED band — the
	// template has very likely changed and the wrapper needs relearning.
	Drifted
)

// String names the verdict as it appears on /statusz and /driftz.
func (v Verdict) String() string {
	switch v {
	case OK:
		return "OK"
	case Suspect:
		return "SUSPECT"
	case Drifted:
		return "DRIFTED"
	}
	return "UNKNOWN"
}

// MarshalJSON serializes the verdict as its string form.
func (v Verdict) MarshalJSON() ([]byte, error) {
	return []byte(`"` + v.String() + `"`), nil
}

// Config tunes drift detection.  The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// WarmupPages is the number of pages over which the baseline is
	// learned exactly before anomaly scoring begins; the verdict is
	// pinned to OK during warm-up.
	WarmupPages int `json:"warmup_pages"`
	// Window is the effective page count of the anomaly-rate smoother
	// (alpha = 2/(Window+1)) — how many recent pages a verdict reflects.
	Window int `json:"window"`
	// PageZ is the per-page z-score threshold: a page whose section or
	// record count deviates from the baseline mean by at least PageZ
	// standard deviations is anomalous.
	PageZ float64 `json:"page_z"`
	// EmptyRateCeiling: an empty extraction counts as anomalous only when
	// the engine's learned empty rate is below this ceiling (an engine
	// that is often legitimately empty cannot drift by being empty).
	EmptyRateCeiling float64 `json:"empty_rate_ceiling"`
	// Hysteresis bands over the smoothed anomaly rate.  Enter thresholds
	// escalate, exit thresholds de-escalate; the gaps between them are
	// what prevents flapping.  Required ordering:
	// SuspectExit < DriftExit, SuspectEnter < DriftEnter,
	// SuspectExit < SuspectEnter, DriftExit < DriftEnter.
	SuspectEnter float64 `json:"suspect_enter"`
	SuspectExit  float64 `json:"suspect_exit"`
	DriftEnter   float64 `json:"drift_enter"`
	DriftExit    float64 `json:"drift_exit"`
}

// DefaultConfig returns the serving defaults: baseline learned over 24
// pages, verdicts reflecting roughly the last 16 pages, 3.5-sigma page
// anomalies, and wide hysteresis bands.
func DefaultConfig() Config {
	return Config{
		WarmupPages:      24,
		Window:           16,
		PageZ:            3.5,
		EmptyRateCeiling: 0.2,
		SuspectEnter:     0.35,
		SuspectExit:      0.10,
		DriftEnter:       0.65,
		DriftExit:        0.30,
	}
}

// sanitized fills zero fields with defaults so a partially specified
// config (e.g. only Window from a -drift-window flag) is usable.
func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.WarmupPages <= 0 {
		c.WarmupPages = d.WarmupPages
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.PageZ <= 0 {
		c.PageZ = d.PageZ
	}
	if c.EmptyRateCeiling <= 0 {
		c.EmptyRateCeiling = d.EmptyRateCeiling
	}
	if c.SuspectEnter <= 0 {
		c.SuspectEnter = d.SuspectEnter
	}
	if c.SuspectExit <= 0 {
		c.SuspectExit = d.SuspectExit
	}
	if c.DriftEnter <= 0 {
		c.DriftEnter = d.DriftEnter
	}
	if c.DriftExit <= 0 {
		c.DriftExit = d.DriftExit
	}
	return c
}

// Observation is the outcome of one served extraction.
type Observation struct {
	// Sections and Records are the extracted counts.
	Sections int
	Records  int
	// Latency is the wrapper-apply time.
	Latency time.Duration
	// Err marks a failed extraction (pipeline error, not a client error);
	// always anomalous.
	Err bool
}

// Assessment is the tracker's judgement of one observation, returned from
// Observe so callers can journal it alongside the request.
type Assessment struct {
	// Verdict is the engine verdict after this observation.
	Verdict Verdict
	// Changed reports that this observation moved the verdict.
	Changed bool
	// Anomalous marks the page itself as an outlier against the baseline.
	Anomalous bool
	// Score is the page's max z-score across signals (0 during warm-up).
	Score float64
	// AnomalyRate is the smoothed anomaly rate after this observation.
	AnomalyRate float64
}

// stdFloors prevent a near-constant signal (std ≈ 0) from flagging every
// off-by-one page as an infinite-z anomaly: deviations are measured
// against at least this much spread.
const (
	sectionsStdFloor = 0.5
	recordsStdFloor  = 1.0
)

// Tracker scores extraction quality per engine.  It is safe for concurrent
// use.
type Tracker struct {
	cfg   Config
	alpha float64 // anomaly-rate smoothing factor

	mu      sync.Mutex
	engines map[string]*engineState
	// onChange, when set, is called after every verdict transition —
	// outside t.mu, so it may call back into the tracker (e.g. Report) or
	// do slow work (journaling, scheduling a relearn) without blocking
	// concurrent Observes.
	onChange func(engine string, from, to Verdict)
}

// engineState is the per-engine baseline and verdict machine.
type engineState struct {
	pages      int64
	emptyPages int64
	errors     int64

	sections  *obs.EWMA
	records   *obs.EWMA
	latencyMs *obs.EWMA
	emptyRate *obs.EWMA // observations are 0/1 per page

	anomalyRate float64
	lastScore   float64
	last        Observation
	// cleanStreak counts consecutive non-anomalous post-warm-up pages; a
	// verdict only de-escalates after a full window of clean pages, so a
	// noisy rate estimate dipping under an exit threshold cannot flap the
	// verdict on its own.
	cleanStreak int64

	verdict     Verdict
	verdictPage int64 // pages count when the verdict last changed
	transitions int64
}

// NewTracker returns a tracker with the given configuration (zero fields
// take defaults).
func NewTracker(cfg Config) *Tracker {
	cfg = cfg.sanitized()
	return &Tracker{
		cfg:     cfg,
		alpha:   2.0 / (float64(cfg.Window) + 1),
		engines: map[string]*engineState{},
	}
}

// Config returns the tracker's effective configuration.
func (t *Tracker) Config() Config { return t.cfg }

// SetOnChange installs the verdict-transition hook.  Call it before the
// tracker starts observing traffic (it is not synchronized against
// Observe).  Nil-safe.
func (t *Tracker) SetOnChange(fn func(engine string, from, to Verdict)) {
	if t == nil {
		return
	}
	t.onChange = fn
}

// Reset drops the engine's baselines, anomaly rate and verdict so they
// re-warm from scratch.  The wrapper-swap path calls it: a freshly
// installed wrapper must never be judged against the EWMA normal of the
// template its predecessor was learned on (nor inherit a DRIFTED verdict
// it has not earned).  The next observation re-creates the state and
// begins a new warm-up prefix.  Nil-safe.
func (t *Tracker) Reset(engine string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.engines, engine)
}

func (t *Tracker) state(engine string) *engineState {
	es, ok := t.engines[engine]
	if !ok {
		// Baseline EWMAs: exact over the warm-up prefix, then slow
		// exponential adaptation (an order of magnitude slower than the
		// anomaly smoother) so benign template evolution is absorbed but a
		// drift episode is not.
		baselineAlpha := 2.0 / (8*float64(t.cfg.Window) + 1)
		es = &engineState{
			sections:  obs.NewEWMA(baselineAlpha, t.cfg.WarmupPages),
			records:   obs.NewEWMA(baselineAlpha, t.cfg.WarmupPages),
			latencyMs: obs.NewEWMA(baselineAlpha, t.cfg.WarmupPages),
			emptyRate: obs.NewEWMA(baselineAlpha, t.cfg.WarmupPages),
		}
		t.engines[engine] = es
	}
	return es
}

// Observe folds one extraction outcome into the engine's signals and
// returns the resulting assessment.  A nil tracker ignores the observation
// and reports a zero Assessment, so serving code can call it
// unconditionally.
func (t *Tracker) Observe(engine string, o Observation) Assessment {
	if t == nil {
		return Assessment{}
	}
	t.mu.Lock()
	es := t.state(engine)
	es.pages++
	es.last = o
	if o.Err {
		es.errors++
	}
	empty := !o.Err && o.Sections == 0
	if empty {
		es.emptyPages++
	}

	warmedBefore := es.pages > int64(t.cfg.WarmupPages)
	anomalous, score := false, 0.0
	if warmedBefore {
		anomalous, score = t.assess(es, o, empty)
	}
	es.lastScore = score
	if anomalous {
		es.cleanStreak = 0
	} else if warmedBefore {
		es.cleanStreak++
	}

	// Baselines learn during warm-up unconditionally; afterwards only
	// healthy, in-distribution pages update them.
	if !warmedBefore || (!anomalous && es.verdict == OK) {
		if !o.Err {
			es.sections.Observe(float64(o.Sections))
			es.records.Observe(float64(o.Records))
			es.latencyMs.Observe(float64(o.Latency) / float64(time.Millisecond))
			if empty {
				es.emptyRate.Observe(1)
			} else {
				es.emptyRate.Observe(0)
			}
		}
	}

	if warmedBefore {
		x := 0.0
		if anomalous {
			x = 1
		}
		es.anomalyRate += t.alpha * (x - es.anomalyRate)
	}

	from := es.verdict
	changed := t.updateVerdict(es, warmedBefore)
	a := Assessment{
		Verdict:     es.verdict,
		Changed:     changed,
		Anomalous:   anomalous,
		Score:       score,
		AnomalyRate: es.anomalyRate,
	}
	t.mu.Unlock()
	// The transition hook runs outside t.mu: it may schedule a relearn,
	// journal, or read the tracker back without stalling concurrent
	// Observes.  Transitions on one engine are serialized only as much as
	// its observations are; callers needing strict ordering must not
	// observe one engine concurrently.
	if changed && t.onChange != nil {
		t.onChange(engine, from, a.Verdict)
	}
	return a
}

// assess scores one post-warm-up page against the baseline.
func (t *Tracker) assess(es *engineState, o Observation, empty bool) (bool, float64) {
	if o.Err {
		// A pipeline failure is categorically anomalous.
		return true, t.cfg.PageZ
	}
	if empty {
		if es.emptyRate.Mean() < t.cfg.EmptyRateCeiling {
			return true, t.cfg.PageZ
		}
		// The engine is often legitimately empty; an empty page carries no
		// structural evidence either way.
		return false, 0
	}
	zs := zScore(float64(o.Sections), es.sections, sectionsStdFloor)
	zr := zScore(float64(o.Records), es.records, recordsStdFloor)
	score := math.Max(zs, zr)
	return score >= t.cfg.PageZ, score
}

func zScore(x float64, e *obs.EWMA, floor float64) float64 {
	std := e.Std()
	if std < floor {
		std = floor
	}
	return math.Abs(x-e.Mean()) / std
}

// updateVerdict runs the hysteresis state machine and reports whether the
// verdict changed.
func (t *Tracker) updateVerdict(es *engineState, warmed bool) bool {
	if !warmed {
		return false
	}
	// De-escalation needs both a low rate and a full window of clean
	// pages: the rate estimate alone has enough variance that, with
	// traffic sitting near a threshold, it can graze the exit band.
	calm := es.cleanStreak >= int64(t.cfg.Window)
	next := es.verdict
	switch es.verdict {
	case OK:
		// A step change violent enough to cross both bands between two
		// observations still passes through SUSPECT and reaches DRIFTED
		// one page later: OK never escalates past SUSPECT directly.
		if es.anomalyRate >= t.cfg.SuspectEnter {
			next = Suspect
		}
	case Suspect:
		if es.anomalyRate >= t.cfg.DriftEnter {
			next = Drifted
		} else if calm && es.anomalyRate <= t.cfg.SuspectExit {
			next = OK
		}
	case Drifted:
		if calm && es.anomalyRate <= t.cfg.DriftExit {
			next = Suspect
		}
	}
	if next == es.verdict {
		return false
	}
	es.verdict = next
	es.verdictPage = es.pages
	es.transitions++
	return true
}

// Verdict returns the engine's current verdict (OK for an engine never
// observed).  Nil-safe.
func (t *Tracker) Verdict(engine string) Verdict {
	if t == nil {
		return OK
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if es, ok := t.engines[engine]; ok {
		return es.verdict
	}
	return OK
}

// Stat is a mean/std pair of one baseline signal.
type Stat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

func stat(e *obs.EWMA) Stat {
	s := e.Snapshot()
	return Stat{Mean: s.Mean, Std: s.Std}
}

// EngineReport is the drift report for one engine, the /driftz wire form.
type EngineReport struct {
	Engine      string  `json:"engine"`
	Verdict     Verdict `json:"verdict"`
	Pages       int64   `json:"pages"`
	Warmed      bool    `json:"warmed"`
	AnomalyRate float64 `json:"anomaly_rate"`
	LastScore   float64 `json:"last_score"`
	// PagesSinceChange counts pages observed since the verdict last
	// changed (equals Pages while the verdict has never changed).
	PagesSinceChange int64 `json:"pages_since_change"`
	Transitions      int64 `json:"transitions"`
	EmptyPages       int64 `json:"empty_pages"`
	Errors           int64 `json:"errors"`
	Baseline         struct {
		Sections  Stat    `json:"sections"`
		Records   Stat    `json:"records"`
		LatencyMs Stat    `json:"latency_ms"`
		EmptyRate float64 `json:"empty_rate"`
	} `json:"baseline"`
	Last struct {
		Sections  int     `json:"sections"`
		Records   int     `json:"records"`
		LatencyMs float64 `json:"latency_ms"`
	} `json:"last"`
}

// Report is the full machine-readable drift report.
type Report struct {
	Config  Config         `json:"config"`
	Engines []EngineReport `json:"engines"`
}

// Report snapshots every tracked engine, sorted by name.  Nil-safe: a nil
// tracker reports no engines.
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rep := Report{Config: t.cfg, Engines: make([]EngineReport, 0, len(t.engines))}
	for name, es := range t.engines {
		er := EngineReport{
			Engine:           name,
			Verdict:          es.verdict,
			Pages:            es.pages,
			Warmed:           es.pages > int64(t.cfg.WarmupPages),
			AnomalyRate:      es.anomalyRate,
			LastScore:        es.lastScore,
			PagesSinceChange: es.pages - es.verdictPage,
			Transitions:      es.transitions,
			EmptyPages:       es.emptyPages,
			Errors:           es.errors,
		}
		er.Baseline.Sections = stat(es.sections)
		er.Baseline.Records = stat(es.records)
		er.Baseline.LatencyMs = stat(es.latencyMs)
		er.Baseline.EmptyRate = es.emptyRate.Mean()
		er.Last.Sections = es.last.Sections
		er.Last.Records = es.last.Records
		er.Last.LatencyMs = float64(es.last.Latency) / float64(time.Millisecond)
		rep.Engines = append(rep.Engines, er)
	}
	sort.Slice(rep.Engines, func(i, j int) bool {
		return rep.Engines[i].Engine < rep.Engines[j].Engine
	})
	return rep
}
