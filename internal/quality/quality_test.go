package quality

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// stableObs draws an in-distribution observation: 2-3 sections, records
// varying around 12, latency around 5ms.
func stableObs(rng *rand.Rand) Observation {
	return Observation{
		Sections: 2 + rng.Intn(2),
		Records:  9 + rng.Intn(7),
		Latency:  time.Duration(4+rng.Intn(3)) * time.Millisecond,
	}
}

// testConfig is a small, fast configuration used across the tests.
func testConfig() Config {
	c := DefaultConfig()
	c.WarmupPages = 20
	c.Window = 12
	return c
}

// TestVerdictTransitionsInOrder drives a warm engine through a hard drift
// (all pages empty) and checks the verdict walks OK → SUSPECT → DRIFTED in
// order, within a bounded page count.
func TestVerdictTransitionsInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := NewTracker(testConfig())
	for i := 0; i < 60; i++ {
		a := tr.Observe("e", stableObs(rng))
		if a.Verdict != OK {
			t.Fatalf("page %d: verdict %v on a stable stream", i, a.Verdict)
		}
	}
	var seen []Verdict
	for i := 0; i < 200; i++ {
		a := tr.Observe("e", Observation{Sections: 0, Records: 0, Latency: time.Millisecond})
		if a.Changed {
			seen = append(seen, a.Verdict)
		}
		if a.Verdict == Drifted {
			break
		}
	}
	if len(seen) != 2 || seen[0] != Suspect || seen[1] != Drifted {
		t.Fatalf("transitions = %v, want [SUSPECT DRIFTED]", seen)
	}
	if tr.Verdict("e") != Drifted {
		t.Fatalf("final verdict = %v, want DRIFTED", tr.Verdict("e"))
	}
}

// TestPartialDriftDetected checks a subtler drift — the template change
// drops most records but the extraction is not empty — still escalates.
func TestPartialDriftDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := NewTracker(testConfig())
	for i := 0; i < 60; i++ {
		tr.Observe("e", stableObs(rng))
	}
	for i := 0; i < 200; i++ {
		// One section, one record: far below the ~12-record baseline.
		a := tr.Observe("e", Observation{Sections: 1, Records: 1, Latency: 5 * time.Millisecond})
		if a.Verdict == Drifted {
			return
		}
	}
	t.Fatalf("partial drift not detected within 200 pages")
}

// TestStableEngineStaysOK runs a long stable stream and checks the verdict
// never leaves OK, even with occasional single-page outliers mixed in.
func TestStableEngineStaysOK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := NewTracker(testConfig())
	for i := 0; i < 2000; i++ {
		o := stableObs(rng)
		if i%97 == 0 {
			// A lone weird page: empty extraction.
			o = Observation{}
		}
		a := tr.Observe("e", o)
		if a.Verdict != OK {
			t.Fatalf("page %d: verdict %v (rate %.3f) on stable traffic", i, a.Verdict, a.AnomalyRate)
		}
	}
}

// TestHysteresisNoFlapping drives the smoothed anomaly rate up and down
// *inside* the hysteresis gap — above SuspectExit, below DriftEnter — for
// many cycles and checks the verdict, once SUSPECT, never changes again.
// This is the defining property of the enter/exit bands: a signal
// dithering across the SUSPECT boundary region cannot toggle the verdict.
func TestHysteresisNoFlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := testConfig()
	tr := NewTracker(cfg)
	for i := 0; i < 60; i++ {
		tr.Observe("e", stableObs(rng))
	}
	anomalous := Observation{} // empty page: always anomalous here
	// Escalate into SUSPECT.
	a := tr.Observe("e", anomalous)
	for a.AnomalyRate < cfg.SuspectEnter {
		a = tr.Observe("e", anomalous)
	}
	if a.Verdict != Suspect {
		t.Fatalf("verdict = %v after crossing SuspectEnter, want SUSPECT", a.Verdict)
	}
	// Dither: decay the rate to just above SuspectExit, push it back to
	// just under DriftEnter, 50 times.  The verdict must hold at SUSPECT
	// through every crossing of the (former) OK/SUSPECT boundary.
	for cycle := 0; cycle < 50; cycle++ {
		for a.AnomalyRate > cfg.SuspectExit+0.03 {
			a = tr.Observe("e", stableObs(rng))
			if a.Changed {
				t.Fatalf("cycle %d: verdict flapped to %v at rate %.3f (decay)", cycle, a.Verdict, a.AnomalyRate)
			}
		}
		for a.AnomalyRate < cfg.DriftEnter-0.10 {
			a = tr.Observe("e", anomalous)
			if a.Changed {
				t.Fatalf("cycle %d: verdict flapped to %v at rate %.3f (rise)", cycle, a.Verdict, a.AnomalyRate)
			}
		}
	}
	if tr.Verdict("e") != Suspect {
		t.Fatalf("final verdict = %v, want SUSPECT", tr.Verdict("e"))
	}
}

// TestRecoveryPath checks the de-escalation ladder: a drifted engine whose
// traffic turns healthy again steps DRIFTED → SUSPECT → OK.
func TestRecoveryPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewTracker(testConfig())
	for i := 0; i < 60; i++ {
		tr.Observe("e", stableObs(rng))
	}
	for i := 0; i < 100 && tr.Verdict("e") != Drifted; i++ {
		tr.Observe("e", Observation{})
	}
	if tr.Verdict("e") != Drifted {
		t.Fatalf("setup: engine did not reach DRIFTED")
	}
	var seen []Verdict
	for i := 0; i < 300; i++ {
		a := tr.Observe("e", stableObs(rng))
		if a.Changed {
			seen = append(seen, a.Verdict)
		}
	}
	if len(seen) != 2 || seen[0] != Suspect || seen[1] != OK {
		t.Fatalf("recovery transitions = %v, want [SUSPECT OK]", seen)
	}
}

// TestOftenEmptyEngineTolerated: an engine whose baseline empty rate is
// high (legitimately sparse results) must not drift just for being empty.
func TestOftenEmptyEngineTolerated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tr := NewTracker(testConfig())
	emptyish := func() Observation {
		if rng.Float64() < 0.5 {
			return Observation{}
		}
		return Observation{Sections: 1, Records: 2 + rng.Intn(3), Latency: time.Millisecond}
	}
	for i := 0; i < 1000; i++ {
		if a := tr.Observe("e", emptyish()); a.Verdict != OK {
			t.Fatalf("page %d: verdict %v for a legitimately sparse engine", i, a.Verdict)
		}
	}
}

// TestErrorsAreAnomalous: sustained pipeline errors escalate even though
// they never contribute an empty/record signal.
func TestErrorsAreAnomalous(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := NewTracker(testConfig())
	for i := 0; i < 60; i++ {
		tr.Observe("e", stableObs(rng))
	}
	for i := 0; i < 200; i++ {
		if tr.Observe("e", Observation{Err: true}).Verdict == Drifted {
			return
		}
	}
	t.Fatalf("sustained errors did not reach DRIFTED")
}

// TestReportShape checks the report is sorted, covers every engine, and
// carries warmed baselines.
func TestReportShape(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := NewTracker(testConfig())
	for _, e := range []string{"zeta", "alpha", "mid"} {
		for i := 0; i < 40; i++ {
			tr.Observe(e, stableObs(rng))
		}
	}
	rep := tr.Report()
	if got := len(rep.Engines); got != 3 {
		t.Fatalf("report engines = %d, want 3", got)
	}
	for i, want := range []string{"alpha", "mid", "zeta"} {
		er := rep.Engines[i]
		if er.Engine != want {
			t.Fatalf("engines not sorted: got %q at %d, want %q", er.Engine, i, want)
		}
		if !er.Warmed || er.Pages != 40 {
			t.Fatalf("%s: warmed=%v pages=%d, want warmed after 40 pages", er.Engine, er.Warmed, er.Pages)
		}
		if er.Baseline.Records.Mean <= 0 || er.Baseline.Sections.Mean <= 0 {
			t.Fatalf("%s: zero baseline means: %+v", er.Engine, er.Baseline)
		}
		if er.Verdict != OK {
			t.Fatalf("%s: verdict %v on stable traffic", er.Engine, er.Verdict)
		}
	}
}

// TestNilTracker pins the nil-safety contract used by the serving path.
func TestNilTracker(t *testing.T) {
	var tr *Tracker
	if a := tr.Observe("e", Observation{}); a.Verdict != OK || a.Changed {
		t.Fatalf("nil tracker assessment = %+v", a)
	}
	if tr.Verdict("e") != OK {
		t.Fatalf("nil tracker verdict != OK")
	}
	if rep := tr.Report(); len(rep.Engines) != 0 {
		t.Fatalf("nil tracker report has engines")
	}
}

// TestTrackerConcurrent hammers one tracker from many goroutines over
// several engines; run under -race this proves the locking.
func TestTrackerConcurrent(t *testing.T) {
	tr := NewTracker(testConfig())
	engines := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				tr.Observe(engines[rng.Intn(len(engines))], stableObs(rng))
			}
		}(int64(g))
	}
	wg.Wait()
	rep := tr.Report()
	total := int64(0)
	for _, er := range rep.Engines {
		total += er.Pages
		if er.Verdict != OK {
			t.Fatalf("%s: verdict %v under concurrent stable traffic", er.Engine, er.Verdict)
		}
	}
	if total != 8*500 {
		t.Fatalf("total pages = %d, want %d", total, 8*500)
	}
}

// TestVerdictJSON pins the string wire form.
func TestVerdictJSON(t *testing.T) {
	for v, want := range map[Verdict]string{OK: `"OK"`, Suspect: `"SUSPECT"`, Drifted: `"DRIFTED"`} {
		b, err := v.MarshalJSON()
		if err != nil || string(b) != want {
			t.Fatalf("MarshalJSON(%v) = %s, %v; want %s", v, b, err, want)
		}
	}
}

// driveToDrifted warms an engine on stable pages then feeds empties until
// the verdict reads DRIFTED.
func driveToDrifted(t *testing.T, tr *Tracker, engine string) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		tr.Observe(engine, stableObs(rng))
	}
	for i := 0; i < 200; i++ {
		if a := tr.Observe(engine, Observation{}); a.Verdict == Drifted {
			return
		}
	}
	t.Fatalf("%s never reached DRIFTED", engine)
}

// TestResetRewarmsBaseline: Reset drops the engine's state entirely — the
// verdict reads OK, the report no longer lists it, and the next pages are a
// fresh warm-up prefix (pinned OK, never anomalous), exactly what a wrapper
// swap needs so the new wrapper is not judged against the old template's
// normal.
func TestResetRewarmsBaseline(t *testing.T) {
	tr := NewTracker(testConfig())
	driveToDrifted(t, tr, "e")
	tr.Reset("e")
	if v := tr.Verdict("e"); v != OK {
		t.Fatalf("verdict after Reset = %v, want OK", v)
	}
	if rep := tr.Report(); len(rep.Engines) != 0 {
		t.Fatalf("report after Reset still lists %d engines", len(rep.Engines))
	}
	// Re-warm: pages that would have been screaming anomalies against the
	// old baseline are ordinary warm-up observations for the new one.
	for i := 0; i < tr.Config().WarmupPages; i++ {
		a := tr.Observe("e", Observation{Sections: 0, Records: 0})
		if a.Verdict != OK || a.Anomalous {
			t.Fatalf("re-warm page %d: verdict %v anomalous %v, want a fresh warm-up", i, a.Verdict, a.Anomalous)
		}
	}
	if rep := tr.Report(); len(rep.Engines) != 1 || rep.Engines[0].Pages != int64(tr.Config().WarmupPages) {
		t.Fatalf("report after re-warm = %+v, want 1 engine with a fresh page count", rep.Engines)
	}
	// Resetting an engine never observed (or a nil tracker) is a no-op.
	tr.Reset("ghost")
	var nilTr *Tracker
	nilTr.Reset("e")
	nilTr.SetOnChange(func(string, Verdict, Verdict) {})
}

// TestOnChangeHookTransitions: the hook fires once per verdict transition
// with the right from/to pair, never on a non-transition, and runs outside
// the tracker mutex (calling back into the tracker from the hook must not
// deadlock).
func TestOnChangeHookTransitions(t *testing.T) {
	tr := NewTracker(testConfig())
	type tran struct{ from, to Verdict }
	var mu sync.Mutex
	var trans []tran
	tr.SetOnChange(func(engine string, from, to Verdict) {
		if engine != "e" {
			t.Errorf("hook engine = %q, want e", engine)
		}
		// Re-entrancy: a real hook schedules relearns and reads reports.
		_ = tr.Verdict(engine)
		_ = tr.Report()
		mu.Lock()
		trans = append(trans, tran{from, to})
		mu.Unlock()
	})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		tr.Observe("e", stableObs(rng))
	}
	mu.Lock()
	if len(trans) != 0 {
		t.Fatalf("hook fired %d times on a stable stream", len(trans))
	}
	mu.Unlock()
	for i := 0; i < 200 && tr.Verdict("e") != Drifted; i++ {
		tr.Observe("e", Observation{})
	}
	mu.Lock()
	defer mu.Unlock()
	want := []tran{{OK, Suspect}, {Suspect, Drifted}}
	if len(trans) != len(want) || trans[0] != want[0] || trans[1] != want[1] {
		t.Fatalf("transitions = %v, want %v", trans, want)
	}
}
