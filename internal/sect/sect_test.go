package sect

import (
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/visual"
)

func page(t *testing.T) *layout.Page {
	t.Helper()
	return layout.Render(htmlparse.Parse(`<body>
	<p>zero</p><p>one</p><p>two</p><p>three</p><p>four</p>
	</body>`))
}

func TestNewDefaults(t *testing.T) {
	p := page(t)
	s := New(p, 1, 4)
	if s.LBM != -1 || s.RBM != -1 {
		t.Fatalf("new section should have no boundary markers")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if len(s.Records) != 0 {
		t.Fatalf("new section should have no records")
	}
}

func TestOverlap(t *testing.T) {
	p := page(t)
	cases := []struct {
		a0, a1, b0, b1, want int
	}{
		{0, 3, 2, 5, 1},
		{0, 3, 3, 5, 0},
		{0, 5, 1, 2, 1},
		{1, 2, 1, 2, 1},
		{0, 2, 3, 5, 0},
	}
	for _, c := range cases {
		a, b := New(p, c.a0, c.a1), New(p, c.b0, c.b1)
		if got := a.Overlap(b); got != c.want {
			t.Errorf("Overlap([%d,%d),[%d,%d)) = %d, want %d", c.a0, c.a1, c.b0, c.b1, got, c.want)
		}
		if a.Overlap(b) != b.Overlap(a) {
			t.Errorf("Overlap not symmetric")
		}
	}
}

func TestMatchesAndContains(t *testing.T) {
	p := page(t)
	a := New(p, 1, 4)
	if !a.Matches(New(p, 1, 4)) {
		t.Fatalf("identical ranges should match")
	}
	if a.Matches(New(p, 1, 3)) {
		t.Fatalf("different ranges should not match")
	}
	if !a.Contains(New(p, 2, 3)) {
		t.Fatalf("should contain inner range")
	}
	if a.Contains(New(p, 0, 3)) {
		t.Fatalf("should not contain overlapping-left range")
	}
}

func TestBoundaryTexts(t *testing.T) {
	p := page(t)
	s := New(p, 1, 3)
	if s.LBMText() != "" || s.RBMText() != "" {
		t.Fatalf("unset markers should give empty texts")
	}
	s.LBM = 0
	s.RBM = 3
	if s.LBMText() != "zero" {
		t.Fatalf("LBMText = %q", s.LBMText())
	}
	if s.RBMText() != "three" {
		t.Fatalf("RBMText = %q", s.RBMText())
	}
	s.RBM = 99 // out of range must not panic
	if s.RBMText() != "" {
		t.Fatalf("out-of-range RBM should give empty text")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := page(t)
	s := New(p, 0, 4)
	s.Records = []visual.Block{{Page: p, Start: 0, End: 2}}
	cp := s.Clone()
	cp.Records = append(cp.Records, visual.Block{Page: p, Start: 2, End: 4})
	cp.Start = 1
	if len(s.Records) != 1 || s.Start != 0 {
		t.Fatalf("clone mutation leaked into original")
	}
}

func TestBlockAndString(t *testing.T) {
	p := page(t)
	s := New(p, 1, 3)
	b := s.Block()
	if b.Start != 1 || b.End != 3 {
		t.Fatalf("Block range wrong")
	}
	if s.String() == "" {
		t.Fatalf("String should describe the section")
	}
}
