// Package sect defines the shared in-progress section representation used
// by the MSE pipeline stages (MRE, DSE, refinement, mining, granularity
// resolution and clustering).
package sect

import (
	"fmt"

	"mse/internal/layout"
	"mse/internal/visual"
)

// Section is a contiguous run of content lines on one page, optionally
// partitioned into records and optionally bounded by boundary-marker
// lines.
type Section struct {
	Page *layout.Page
	// Start and End delimit the section's content lines [Start, End).
	Start int
	End   int
	// Records partition (a subset of) the section's lines into records.
	// MRE fills this; DSE leaves it empty until record mining.
	Records []visual.Block
	// LBM and RBM are the line indices of the left/right boundary markers
	// (lines outside the section), or -1 when absent.
	LBM int
	RBM int
}

// New returns a section covering [start, end) with no records and no
// boundary markers.
func New(p *layout.Page, start, end int) *Section {
	return &Section{Page: p, Start: start, End: end, LBM: -1, RBM: -1}
}

// Block returns the section's full line range as a block.
func (s *Section) Block() visual.Block {
	return visual.Block{Page: s.Page, Start: s.Start, End: s.End}
}

// Len returns the number of content lines in the section.
func (s *Section) Len() int { return s.End - s.Start }

// Overlap returns the number of lines shared by s and o.
func (s *Section) Overlap(o *Section) int {
	lo := s.Start
	if o.Start > lo {
		lo = o.Start
	}
	hi := s.End
	if o.End < hi {
		hi = o.End
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// Matches reports whether s and o cover exactly the same line range.
func (s *Section) Matches(o *Section) bool {
	return s.Start == o.Start && s.End == o.End
}

// Contains reports whether s fully contains o.
func (s *Section) Contains(o *Section) bool {
	return s.Start <= o.Start && o.End <= s.End
}

// LBMText returns the text of the left boundary marker line, or "".
func (s *Section) LBMText() string {
	if s.LBM < 0 || s.LBM >= len(s.Page.Lines) {
		return ""
	}
	return s.Page.Lines[s.LBM].Text
}

// RBMText returns the text of the right boundary marker line, or "".
func (s *Section) RBMText() string {
	if s.RBM < 0 || s.RBM >= len(s.Page.Lines) {
		return ""
	}
	return s.Page.Lines[s.RBM].Text
}

// String renders a debug summary.
func (s *Section) String() string {
	return fmt.Sprintf("section[%d,%d) records=%d lbm=%d rbm=%d",
		s.Start, s.End, len(s.Records), s.LBM, s.RBM)
}

// Clone returns a copy of the section with its own records slice.
func (s *Section) Clone() *Section {
	cp := *s
	cp.Records = append([]visual.Block(nil), s.Records...)
	return &cp
}
