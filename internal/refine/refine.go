// Package refine implements Section 5.3 of the MSE paper: cross-checking
// the multi-record sections found by MRE against the dynamic sections
// found by DSE, because the two were obtained independently and their
// agreement pins down correct section boundaries.
//
// The paper's five relationship cases (Figure 6) are handled as follows:
//
//	case 1 (exact match)   — the MR's records become the DS's records;
//	case 2 (MR ⊃ DSs)      — each covered DS claims the MR records that
//	                         fall inside it; boundary negotiation (below)
//	                         fixes the edges;
//	case 3 (DS ⊃ MRs)      — the best-overlapping MR seeds the DS; the
//	                         uncovered remainder is re-processed against
//	                         the other MRs and finally re-mined;
//	case 4 (intersection)  — the Figure 8 algorithm: the overlap part OL
//	                         is trusted; records in the extra-MR part EM
//	                         are kept only while they resemble OL
//	                         (falsifying the LBM and extending the DS),
//	                         and the extra-DS part ED is consumed by
//	                         growing tentative records while they resemble
//	                         OL (threshold W × Dinr(OL), W = 1.8);
//	case 5 (no overlap)    — MRs without DS overlap are static repeating
//	                         content and are discarded; DSs without MR
//	                         overlap are kept for record mining (§5.4).
package refine

import (
	"sort"

	"mse/internal/layout"
	"mse/internal/mining"
	"mse/internal/sect"
	"mse/internal/visual"
)

// Options control refinement.
type Options struct {
	// W is the threshold multiplier of Section 5.3 (1.8 in the paper).
	W float64
	// MinDinr floors the inter-record distance of OL when computing the
	// acceptance threshold W × Dinr(OL); without a floor, sections whose
	// records are pixel-identical would reject every boundary record.
	MinDinr       float64
	LineWeights   visual.LineWeights
	RecordWeights visual.RecordWeights
	// MaxBridgeGap is the widest run of CSBM lines between two DSs that a
	// record-like bridge may falsify (merge across).
	MaxBridgeGap int
	// Mining parameterizes the record mining used when unclaimed DS
	// content is attached to a section.
	Mining mining.Options
}

// DefaultOptions returns the paper's parameters.
func DefaultOptions() Options {
	return Options{
		W:             1.8,
		MinDinr:       0.08,
		LineWeights:   visual.DefaultLineWeights(),
		RecordWeights: visual.DefaultRecordWeights(),
		MaxBridgeGap:  2,
		Mining:        mining.DefaultOptions(),
	}
}

// Refine reconciles the MRs and DSs of one page.  csbm are the page's
// CSBM marks (used to relocate boundary markers when a boundary is
// falsified).  The result is the page's refined section list in document
// order: sections with Records filled in where an MR vouched for them, and
// record-less sections (for Section 5.4 mining) elsewhere.
func Refine(page *layout.Page, mrs, dss []*sect.Section, csbm []bool, opt Options) []*sect.Section {
	dss = mergeFalseBoundaries(page, mrs, dss, csbm, opt)
	var out []*sect.Section
	for _, ds := range dss {
		out = append(out, processDS(page, ds, mrs, csbm, opt, 0)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// mergeFalseBoundaries merges adjacent DSs whose separating CSBM lines are
// bridged by an MR record that resembles the surrounding records — the
// "LBM is false" branch of Figure 8 lifted to whole boundaries.
func mergeFalseBoundaries(page *layout.Page, mrs, dss []*sect.Section, csbm []bool, opt Options) []*sect.Section {
	if len(dss) < 2 {
		return dss
	}
	merged := true
	for merged {
		merged = false
		for i := 0; i+1 < len(dss); i++ {
			d1, d2 := dss[i], dss[i+1]
			gap := d2.Start - d1.End
			if gap < 1 || gap > opt.MaxBridgeGap {
				continue
			}
			if bridgeIsRecordLike(page, d1, d2, mrs, opt) {
				// Merge d2 (and the gap lines) into d1.
				d1.End = d2.End
				d1.RBM = d2.RBM
				dss = append(dss[:i+1], dss[i+2:]...)
				merged = true
				break
			}
		}
	}
	return dss
}

// bridgeIsRecordLike reports whether some MR has a record spanning the gap
// between d1 and d2 that is similar to the MR's records inside d1 and d2.
// A gap whose lines carry text attributes alien to the surrounding record
// lines (a styled heading) is a genuine boundary and never merged: false
// boundary markers are record-internal strings and look like record
// content, while real section headings are visually distinctive.
func bridgeIsRecordLike(page *layout.Page, d1, d2 *sect.Section, mrs []*sect.Section, opt Options) bool {
	if gapLooksLikeHeading(page, d1, d2) {
		return false
	}
	for _, mr := range mrs {
		var bridge *visual.Block
		var ol []visual.Block
		for i := range mr.Records {
			r := mr.Records[i]
			switch {
			case r.Start < d2.Start && r.End > d1.End:
				// The record overlaps the gap of CSBM lines between the
				// two DSs.
				bridge = &mr.Records[i]
			case insideDS(r, d1) || insideDS(r, d2):
				ol = append(ol, r)
			}
		}
		if bridge == nil || len(ol) < 2 {
			continue
		}
		thresh := threshold(ol, opt)
		if visual.AvgRecordDistance(*bridge, ol, opt.RecordWeights) <= thresh {
			return true
		}
	}
	return false
}

func insideDS(r visual.Block, ds *sect.Section) bool {
	return r.Start >= ds.Start && r.End <= ds.End
}

// gapLooksLikeHeading reports whether any CSBM line between d1 and d2 has
// a text-attribute set disjoint from the attributes of the neighbouring
// dynamic lines.
func gapLooksLikeHeading(page *layout.Page, d1, d2 *sect.Section) bool {
	recAttrs := map[layout.TextAttr]bool{}
	collect := func(start, end int) {
		for i := start; i < end && i < len(page.Lines); i++ {
			for _, a := range page.Lines[i].Attrs {
				recAttrs[a] = true
			}
		}
	}
	collect(d1.Start, d1.End)
	collect(d2.Start, d2.End)
	for i := d1.End; i < d2.Start && i < len(page.Lines); i++ {
		attrs := page.Lines[i].Attrs
		if len(attrs) == 0 {
			continue // rules and blanks carry no attrs; not heading evidence
		}
		shared := false
		for _, a := range attrs {
			if recAttrs[a] {
				shared = true
				break
			}
		}
		if !shared {
			return true
		}
	}
	return false
}

func threshold(ol []visual.Block, opt Options) float64 {
	dinr := visual.InterRecordDistance(ol, opt.RecordWeights)
	if dinr < opt.MinDinr {
		dinr = opt.MinDinr
	}
	return opt.W * dinr
}

// maxRefineDepth bounds the recursion on leftover DS pieces.
const maxRefineDepth = 8

// processDS aligns one DS with the best-overlapping MR.  It returns the
// refined sections covering the DS range: possibly a record-less left
// piece, the record-bearing core, and a record-less right piece, with the
// pieces re-processed against the remaining MRs.
func processDS(page *layout.Page, ds *sect.Section, mrs []*sect.Section, csbm []bool, opt Options, depth int) []*sect.Section {
	if ds.Len() <= 0 {
		return nil
	}
	if depth >= maxRefineDepth {
		return []*sect.Section{ds}
	}
	best := bestOverlapMR(ds, mrs)
	if best == nil {
		return processBare(page, ds, mrs, csbm, opt, depth)
	}
	// OL: the MR records fully inside the DS (verified by both MR and DS).
	var ol []visual.Block
	for _, r := range best.Records {
		if insideDS(r, ds) {
			ol = append(ol, r)
		}
	}
	if len(ol) == 0 {
		return processBare(page, ds, mrs, csbm, opt, depth)
	}

	// Hidden boundaries: a section whose heading never matched across
	// sample pages (query-dependent headings, sections missing elsewhere)
	// leaves its heading line *inside* the DS.  Heading lines are exactly
	// the lines whose text attributes are alien to the record lines; they
	// partition the DS before any record-level reasoning (§2: SBMs are a
	// must for correct section extraction in such layouts).
	if cut := findHiddenBoundary(page, ds, ol); cut >= 0 {
		left := sect.New(page, ds.Start, cut)
		left.LBM = ds.LBM
		right := sect.New(page, cut+1, ds.End)
		right.LBM = cut
		right.RBM = ds.RBM
		var out []*sect.Section
		out = append(out, processDS(page, left, mrs, csbm, opt, depth+1)...)
		out = append(out, processDS(page, right, mrs, csbm, opt, depth+1)...)
		return out
	}
	thresh := threshold(ol, opt)

	// --- EM handling: a record straddling the DS start (it contains the
	// DS's LBM).  If it resembles OL, the LBM was false: extend the DS
	// left and adopt the record. ---
	for _, r := range best.Records {
		if r.Start < ds.Start && r.End > ds.Start {
			if visual.AvgRecordDistance(r, ol, opt.RecordWeights) <= thresh {
				ds.Start = r.Start
				ds.LBM = previousCSBM(csbm, r.Start)
				ol = append([]visual.Block{r}, ol...)
			}
			break
		}
	}
	// Symmetric straddler at the DS end (contains the RBM).
	for _, r := range best.Records {
		if r.Start < ds.End && r.End > ds.End {
			if visual.AvgRecordDistance(r, ol, opt.RecordWeights) <= thresh {
				ds.End = r.End
				ds.RBM = nextCSBM(csbm, r.End)
				ol = append(ol, r)
			}
			break
		}
	}
	sort.Slice(ol, func(i, j int) bool { return ol[i].Start < ol[j].Start })

	// --- ED handling: grow tentative records into the uncovered DS parts
	// while they resemble OL (Figure 8, lines 7-12). ---
	coreStart, coreEnd := ol[0].Start, ol[len(ol)-1].End
	left := consumeED(page, ds.Start, coreStart, ol, opt, false)
	if len(left) > 0 {
		coreStart = left[0].Start
		ol = append(left, ol...)
	}
	right := consumeED(page, coreEnd, ds.End, ol, opt, true)
	if len(right) > 0 {
		ol = append(ol, right...)
		coreEnd = ol[len(ol)-1].End
	}

	core := sect.New(page, coreStart, coreEnd)
	core.Records = ol
	core.LBM = ds.LBM
	core.RBM = ds.RBM

	var out []*sect.Section
	// Remaining left piece.  When another MR explains it, it is a
	// different section sharing the DS (its boundary was hidden);
	// otherwise it is unclaimed content of *this* section that the
	// distance test was too strict for — attach it rather than orphan it
	// (there is no boundary marker of any kind between the piece and the
	// core).
	if coreStart > ds.Start {
		leftDS := sect.New(page, ds.Start, coreStart)
		leftDS.LBM = ds.LBM
		leftDS.RBM = -1
		if hasRecordInside(leftDS, otherMRs(mrs, best)) {
			out = append(out, processDS(page, leftDS, otherMRs(mrs, best), csbm, opt, depth+1)...)
			core.LBM = -1
		} else {
			attached := mining.MineRecords(page, leftDS.Start, leftDS.End, opt.Mining)
			core.Records = append(attached, core.Records...)
			core.Start = leftDS.Start
		}
	}
	out = append(out, core)
	if coreEnd < ds.End {
		rightDS := sect.New(page, coreEnd, ds.End)
		rightDS.LBM = -1
		rightDS.RBM = ds.RBM
		if hasRecordInside(rightDS, otherMRs(mrs, best)) {
			out = append(out, processDS(page, rightDS, otherMRs(mrs, best), csbm, opt, depth+1)...)
			core.RBM = -1
		} else {
			attached := mining.MineRecords(page, rightDS.Start, rightDS.End, opt.Mining)
			core.Records = append(core.Records, attached...)
			core.End = rightDS.End
		}
	}
	return out
}

// hasRecordInside reports whether any MR has a record fully inside the
// section range — the evidence required to treat a leftover DS piece as a
// section of its own rather than unclaimed content of its neighbour.
func hasRecordInside(ds *sect.Section, mrs []*sect.Section) bool {
	for _, mr := range mrs {
		for _, r := range mr.Records {
			if insideDS(r, ds) {
				return true
			}
		}
	}
	return false
}

// processBare handles a DS with no MR support: a leading heading-like line
// becomes the section's boundary marker, and interior heading-like lines
// split the DS into separate sections (hidden boundaries).
func processBare(page *layout.Page, ds *sect.Section, mrs []*sect.Section, csbm []bool, opt Options, depth int) []*sect.Section {
	if ds.Len() <= 0 {
		return nil
	}
	contentAttrs := linkLineAttrs(page, ds.Start, ds.End)
	if len(contentAttrs) == 0 || depth >= maxRefineDepth {
		return []*sect.Section{ds}
	}
	for i := ds.Start; i < ds.End; i++ {
		if !headingLike(&page.Lines[i], contentAttrs) {
			continue
		}
		if i == ds.Start {
			// Leading heading: it is the section's LBM, not content.
			trimmed := sect.New(page, ds.Start+1, ds.End)
			trimmed.LBM = ds.Start
			trimmed.RBM = ds.RBM
			return processBare(page, trimmed, mrs, csbm, opt, depth+1)
		}
		left := sect.New(page, ds.Start, i)
		left.LBM = ds.LBM
		right := sect.New(page, i+1, ds.End)
		right.LBM = i
		right.RBM = ds.RBM
		var out []*sect.Section
		out = append(out, processBare(page, left, mrs, csbm, opt, depth+1)...)
		out = append(out, processBare(page, right, mrs, csbm, opt, depth+1)...)
		return out
	}
	return []*sect.Section{ds}
}

// findHiddenBoundary returns the index of the first line of ds that lies
// outside every OL record and whose text attributes are alien to the OL
// record lines, or -1.
func findHiddenBoundary(page *layout.Page, ds *sect.Section, ol []visual.Block) int {
	recAttrs := map[layout.TextAttr]bool{}
	for _, r := range ol {
		for i := r.Start; i < r.End; i++ {
			for _, a := range page.Lines[i].Attrs {
				recAttrs[a] = true
			}
		}
	}
	if len(recAttrs) == 0 {
		return -1
	}
	inOL := func(i int) bool {
		for _, r := range ol {
			if i >= r.Start && i < r.End {
				return true
			}
		}
		return false
	}
	for i := ds.Start; i < ds.End; i++ {
		if inOL(i) {
			continue
		}
		l := &page.Lines[i]
		if l.Type != layout.TextLine || len(l.Attrs) == 0 {
			continue
		}
		alien := true
		for _, a := range l.Attrs {
			if recAttrs[a] || !decorated(a) {
				alien = false
				break
			}
		}
		if alien {
			return i
		}
	}
	return -1
}

// linkLineAttrs collects the attributes of the link-bearing lines in a
// range — the visual signature of record content.
func linkLineAttrs(page *layout.Page, start, end int) map[layout.TextAttr]bool {
	out := map[layout.TextAttr]bool{}
	for i := start; i < end; i++ {
		switch page.Lines[i].Type {
		case layout.LinkLine, layout.LinkTextLine, layout.ImageTextLine:
			for _, a := range page.Lines[i].Attrs {
				out[a] = true
			}
		}
	}
	return out
}

// headingLike reports whether a line looks like a section heading relative
// to the given content attributes: a text line whose attributes are all
// alien to the content AND visually decorated (bold, enlarged or colored —
// plain body text next to link-only titles must not qualify).
func headingLike(l *layout.Line, contentAttrs map[layout.TextAttr]bool) bool {
	if l.Type != layout.TextLine || len(l.Attrs) == 0 {
		return false
	}
	for _, a := range l.Attrs {
		if contentAttrs[a] || !decorated(a) {
			return false
		}
	}
	return true
}

// decorated reports whether a text attribute carries heading-strength
// emphasis: bold or larger than default body text.  Color alone does not
// qualify — colored plain-weight lines (green URLs, red prices) are record
// content, not headings.
func decorated(a layout.TextAttr) bool {
	return a.Style&layout.Bold != 0 || a.Size > 16
}

// consumeED grows tentative records from the boundary of OL into the
// extra-DS range and accepts each best-scoring tentative record while it
// stays within the W × Dinr(OL) threshold.  forward=true grows rightward
// from start..end; forward=false grows leftward (tentative records end at
// `end`).  Accepted records are returned in document order; ol is treated
// as read-only.
func consumeED(page *layout.Page, start, end int, ol []visual.Block, opt Options, forward bool) []visual.Block {
	var accepted []visual.Block
	all := append([]visual.Block(nil), ol...)
	for start < end {
		thresh := threshold(all, opt)
		bestLen, bestDist := 0, 0.0
		for k := 1; k <= end-start; k++ {
			var rt visual.Block
			if forward {
				rt = visual.Block{Page: page, Start: start, End: start + k}
			} else {
				rt = visual.Block{Page: page, Start: end - k, End: end}
			}
			d := visual.AvgRecordDistance(rt, all, opt.RecordWeights)
			if bestLen == 0 || d < bestDist {
				bestLen, bestDist = k, d
			}
		}
		if bestLen == 0 || bestDist > thresh {
			break
		}
		var rt visual.Block
		if forward {
			rt = visual.Block{Page: page, Start: start, End: start + bestLen}
			start += bestLen
			accepted = append(accepted, rt)
		} else {
			rt = visual.Block{Page: page, Start: end - bestLen, End: end}
			end -= bestLen
			accepted = append([]visual.Block{rt}, accepted...)
		}
		all = append(all, rt)
	}
	return accepted
}

// bestOverlapMR returns the MR with the largest line overlap with ds, or
// nil.
func bestOverlapMR(ds *sect.Section, mrs []*sect.Section) *sect.Section {
	var best *sect.Section
	bestOv := 0
	for _, mr := range mrs {
		if ov := ds.Overlap(mr); ov > bestOv {
			best, bestOv = mr, ov
		}
	}
	return best
}

func otherMRs(mrs []*sect.Section, used *sect.Section) []*sect.Section {
	out := make([]*sect.Section, 0, len(mrs))
	for _, mr := range mrs {
		if mr != used {
			out = append(out, mr)
		}
	}
	return out
}

func previousCSBM(csbm []bool, before int) int {
	for i := before - 1; i >= 0; i-- {
		if csbm[i] {
			return i
		}
	}
	return -1
}

func nextCSBM(csbm []bool, from int) int {
	for i := from; i < len(csbm); i++ {
		if csbm[i] {
			return i
		}
	}
	return -1
}
