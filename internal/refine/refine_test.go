package refine

import (
	"fmt"
	"strings"
	"testing"

	"mse/internal/dse"
	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/mre"
	"mse/internal/sect"
	"mse/internal/visual"
)

func render(src string) *layout.Page {
	return layout.Render(htmlparse.Parse(src))
}

// pipelineTo runs MRE + DSE over a pair of pages and refines page 0.
func pipelineTo(t *testing.T, srcs []string, queries [][]string) (*layout.Page, []*sect.Section, []*sect.Section, []bool) {
	t.Helper()
	var ins []*dse.PageInput
	var pages []*layout.Page
	for i, src := range srcs {
		p := render(src)
		pages = append(pages, p)
		ins = append(ins, &dse.PageInput{Page: p, Query: queries[i],
			MRs: mre.Extract(p, mre.DefaultOptions())})
	}
	dss, marks := dse.Run(ins, dse.DefaultOptions())
	refined := Refine(pages[0], ins[0].MRs, dss[0], marks[0], DefaultOptions())
	return pages[0], ins[0].MRs, refined, marks[0]
}

func resultPage(query [2]string, ids []string, extra string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<body><h1>Site</h1>
	<div>Your search returned %d matches for %s %s.</div><hr>
	<h3>Results</h3><table>`, len(ids)*7, query[0], query[1])
	for _, id := range ids {
		fmt.Fprintf(&sb, `<tr><td><a href="/doc/%s">Title %s %s</a><br>snippet %s text</td></tr>`,
			id, id, query[0], id)
	}
	sb.WriteString(`</table>`)
	sb.WriteString(extra)
	sb.WriteString(`<hr><div>Copyright 2006 rights.</div></body>`)
	return sb.String()
}

func TestRefineCase1ExactMatch(t *testing.T) {
	srcs := []string{
		resultPage([2]string{"knee", "pain"}, []string{"aa", "bb", "cc", "dd"}, ""),
		resultPage([2]string{"jazz", "band"}, []string{"ee", "ff", "gg"}, ""),
	}
	page, _, refined, _ := pipelineTo(t, srcs, [][]string{{"knee", "pain"}, {"jazz", "band"}})
	_ = page
	// One refined section must contain the four records with records set.
	var hit *sect.Section
	for _, s := range refined {
		if strings.Contains(s.Block().Text(), "Title aa") {
			hit = s
		}
	}
	if hit == nil {
		t.Fatalf("record section lost in refinement")
	}
	if len(hit.Records) != 4 {
		for _, r := range hit.Records {
			t.Logf("rec: %q", r.Text())
		}
		t.Fatalf("section has %d records, want 4", len(hit.Records))
	}
	if !strings.Contains(hit.LBMText(), "Results") {
		t.Fatalf("LBM = %q, want Results", hit.LBMText())
	}
}

func TestRefineCase5DiscardsStaticMR(t *testing.T) {
	// Static footers repeat on both pages identically -> they are CSBMs,
	// so any MR over them has no DS overlap and must vanish.
	foot := `<div><a href="/f1">Footer One</a></div>
	<div><a href="/f2">Footer Two</a></div>
	<div><a href="/f3">Footer Three</a></div>
	<div><a href="/f4">Footer Four</a></div>`
	srcs := []string{
		resultPage([2]string{"knee", "pain"}, []string{"aa", "bb", "cc", "dd"}, foot),
		resultPage([2]string{"jazz", "band"}, []string{"ee", "ff", "gg"}, foot),
	}
	_, _, refined, _ := pipelineTo(t, srcs, [][]string{{"knee", "pain"}, {"jazz", "band"}})
	for _, s := range refined {
		if strings.Contains(s.Block().Text(), "Footer One") {
			t.Fatalf("static footer survived refinement: %v\n%s", s, s.Block().Text())
		}
	}
}

func TestRefineKeepsSmallDSWithoutMR(t *testing.T) {
	// A one-record section cannot be found by MRE; refinement must keep
	// its DS (record-less) for mining.
	extra := `<h3>Sponsored</h3><div><a href="/sp/PAGEID">Sponsor PAGEID deal</a></div>`
	srcs := []string{
		resultPage([2]string{"knee", "pain"}, []string{"aa", "bb", "cc", "dd"},
			strings.ReplaceAll(extra, "PAGEID", "xx")),
		resultPage([2]string{"jazz", "band"}, []string{"ee", "ff", "gg"},
			strings.ReplaceAll(extra, "PAGEID", "yy")),
	}
	_, _, refined, _ := pipelineTo(t, srcs, [][]string{{"knee", "pain"}, {"jazz", "band"}})
	var hit *sect.Section
	for _, s := range refined {
		if strings.Contains(s.Block().Text(), "Sponsor xx") {
			hit = s
		}
	}
	if hit == nil {
		t.Fatalf("small DS lost")
	}
	if hit.LBMText() != "Sponsored" {
		t.Fatalf("small DS LBM = %q", hit.LBMText())
	}
}

func TestRefineCase4TrimsOverextendedMR(t *testing.T) {
	// Build an MR that overshoots into the RBM zone, plus the true DS.
	p := render(resultPage([2]string{"knee", "pain"}, []string{"aa", "bb", "cc", "dd"}, ""))
	// Find the line range of the records.
	var first, last int = -1, -1
	for i, l := range p.Lines {
		if strings.Contains(l.Text, "Title ") && first < 0 {
			first = i
		}
		if strings.Contains(l.Text, "snippet ") {
			last = i
		}
	}
	if first < 0 || last < 0 {
		t.Fatalf("page layout unexpected")
	}
	// Fabricate an overshooting MR: records of 2 lines each, with a final
	// bogus record swallowing the RBM/footer lines.
	mr := sect.New(p, first, last+3)
	for s := first; s <= last; s += 2 {
		mr.Records = append(mr.Records, visual.Block{Page: p, Start: s, End: s + 2})
	}
	mr.Records = append(mr.Records, visual.Block{Page: p, Start: last + 1, End: last + 3})
	// The true DS (as DSE would find it).
	ds := sect.New(p, first, last+1)
	ds.LBM = first - 1
	ds.RBM = last + 1
	csbm := make([]bool, len(p.Lines))
	for i := range csbm {
		csbm[i] = i < first || i > last
	}
	refined := Refine(p, []*sect.Section{mr}, []*sect.Section{ds}, csbm, DefaultOptions())
	if len(refined) != 1 {
		t.Fatalf("refined = %d sections, want 1", len(refined))
	}
	got := refined[0]
	if got.Start != first || got.End != last+1 {
		t.Fatalf("refined range [%d,%d), want [%d,%d)", got.Start, got.End, first, last+1)
	}
	if len(got.Records) != 4 {
		t.Fatalf("records = %d, want 4", len(got.Records))
	}
}

func TestRefineMergesFalseBoundary(t *testing.T) {
	// A false CSBM line splits one true section into two DSs; an MR
	// bridging the gap must trigger a merge.
	p := render(`<body><h3>Items</h3>
	<div><a href="/1">Item One</a><br>first snippet</div>
	<div><a href="/2">Item Two</a><br>second snippet</div>
	<div><a href="/3">Item Three</a><br>third snippet</div>
	<div><a href="/4">Item Four</a><br>fourth snippet</div>
	</body>`)
	// Lines: 0=Items, 1..8 records (2 lines each).
	mrs := mre.Extract(p, mre.DefaultOptions())
	if len(mrs) == 0 {
		t.Fatalf("MRE found nothing")
	}
	csbm := make([]bool, len(p.Lines))
	csbm[0] = true
	csbm[4] = true // false boundary inside record 2's span
	ds1 := sect.New(p, 1, 4)
	ds1.LBM = 0
	ds1.RBM = 4
	ds2 := sect.New(p, 5, len(p.Lines))
	ds2.LBM = 4
	refined := Refine(p, mrs, []*sect.Section{ds1, ds2}, csbm, DefaultOptions())
	// All four records must end up in one section.
	for _, s := range refined {
		if strings.Contains(s.Block().Text(), "Item One") {
			if !strings.Contains(s.Block().Text(), "Item Four") {
				t.Fatalf("false boundary not merged: %v\n%s", s, s.Block().Text())
			}
			if len(s.Records) != 4 {
				t.Fatalf("merged section has %d records, want 4", len(s.Records))
			}
			return
		}
	}
	t.Fatalf("section lost")
}

func TestRefineEmptyInputs(t *testing.T) {
	p := render(`<body><p>x</p></body>`)
	if got := Refine(p, nil, nil, []bool{false}, DefaultOptions()); got != nil {
		t.Fatalf("no DSs should refine to nil, got %v", got)
	}
	ds := sect.New(p, 0, 1)
	got := Refine(p, nil, []*sect.Section{ds}, []bool{false}, DefaultOptions())
	if len(got) != 1 || got[0] != ds {
		t.Fatalf("bare DS should pass through")
	}
}
