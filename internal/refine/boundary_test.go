package refine

// Unit tests for the boundary-reasoning helpers added on top of the
// Figure-8 core: hidden-boundary splitting, leftover attachment, and
// bare-DS heading handling.

import (
	"testing"

	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

// hiddenBoundaryPage renders two same-format sections whose shared DS has
// the second section's heading *inside* it (the heading never matched
// across pages, so it is not a CSBM).
func hiddenBoundaryPage() *layout.Page {
	return render(`<body>
	<h3>Known</h3>
	<div><a href="/a1">Alpha one</a><br>snippet one</div>
	<div><a href="/a2">Alpha two</a><br>snippet two</div>
	<div><a href="/a3">Alpha three</a><br>snippet three</div>
	<h3>Hidden Heading</h3>
	<div><a href="/b1">Beta one</a><br>snippet four</div>
	<div><a href="/b2">Beta two</a><br>snippet five</div>
	</body>`)
}

func TestHiddenBoundarySplitsDS(t *testing.T) {
	p := hiddenBoundaryPage()
	// Lines: 0 Known | 1-6 alpha records | 7 Hidden Heading | 8-11 beta.
	mr := sect.New(p, 1, 12)
	for s := 1; s < 7; s += 2 {
		mr.Records = append(mr.Records, visual.Block{Page: p, Start: s, End: s + 2})
	}
	for s := 8; s < 12; s += 2 {
		mr.Records = append(mr.Records, visual.Block{Page: p, Start: s, End: s + 2})
	}
	ds := sect.New(p, 1, 12) // DSE missed the hidden heading
	ds.LBM = 0
	csbm := make([]bool, len(p.Lines))
	csbm[0] = true
	out := Refine(p, []*sect.Section{mr}, []*sect.Section{ds}, csbm, DefaultOptions())
	if len(out) != 2 {
		for _, s := range out {
			t.Logf("section %v:\n%s", s, s.Block().Text())
		}
		t.Fatalf("hidden boundary not split: %d sections", len(out))
	}
	if out[1].LBMText() != "Hidden Heading" {
		t.Fatalf("second section LBM = %q", out[1].LBMText())
	}
	if len(out[0].Records) != 3 || len(out[1].Records) != 2 {
		t.Fatalf("record counts = %d / %d", len(out[0].Records), len(out[1].Records))
	}
}

func TestLeftoverAttachedWhenUnexplained(t *testing.T) {
	// A DS whose tail (a trailer line) no MR explains: it must be attached
	// to the core section, not orphaned.
	p := render(`<body><h3>Sec</h3>
	<div><a href="/1">One</a><br>snippet one</div>
	<div><a href="/2">Two</a><br>snippet two</div>
	<div><a href="/3">Three</a><br>snippet three</div>
	<div><a href="/more">More stuff results ...</a></div>
	</body>`)
	// Lines: 0 heading, 1-6 records, 7 trailer.
	mr := sect.New(p, 1, 7)
	for s := 1; s < 7; s += 2 {
		mr.Records = append(mr.Records, visual.Block{Page: p, Start: s, End: s + 2})
	}
	ds := sect.New(p, 1, 8)
	ds.LBM = 0
	csbm := make([]bool, len(p.Lines))
	csbm[0] = true
	out := Refine(p, []*sect.Section{mr}, []*sect.Section{ds}, csbm, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("leftover orphaned: %d sections", len(out))
	}
	if out[0].End != 8 {
		t.Fatalf("trailer not attached: section ends at %d", out[0].End)
	}
}

func TestBareDSLeadingHeadingBecomesLBM(t *testing.T) {
	// A record-less DS starting with a decorated heading line: the heading
	// is the section's boundary marker, not content.
	p := render(`<body>
	<h3>Lonely</h3>
	<div><a href="/x">Only result</a><br>its snippet</div>
	</body>`)
	ds := sect.New(p, 0, 3)
	csbm := make([]bool, len(p.Lines))
	out := Refine(p, nil, []*sect.Section{ds}, csbm, DefaultOptions())
	if len(out) != 1 {
		t.Fatalf("sections = %d", len(out))
	}
	if out[0].Start != 1 {
		t.Fatalf("heading still inside section: start = %d", out[0].Start)
	}
	if out[0].LBMText() != "Lonely" {
		t.Fatalf("LBM = %q", out[0].LBMText())
	}
}

func TestBareDSInteriorHeadingSplits(t *testing.T) {
	p := render(`<body>
	<div><a href="/a">A result</a><br>snip a</div>
	<h3>Second Part</h3>
	<div><a href="/b">B result</a><br>snip b</div>
	</body>`)
	ds := sect.New(p, 0, 5)
	csbm := make([]bool, len(p.Lines))
	out := Refine(p, nil, []*sect.Section{ds}, csbm, DefaultOptions())
	if len(out) != 2 {
		t.Fatalf("interior heading not split: %d sections", len(out))
	}
	if out[1].LBMText() != "Second Part" {
		t.Fatalf("second LBM = %q", out[1].LBMText())
	}
}

func TestDecoratedClassification(t *testing.T) {
	cases := []struct {
		attr layout.TextAttr
		want bool
	}{
		{layout.TextAttr{Font: "times", Size: 16, Color: "#000000"}, false},
		{layout.TextAttr{Font: "times", Size: 16, Style: layout.Bold, Color: "#000000"}, true},
		{layout.TextAttr{Font: "times", Size: 19, Color: "#000000"}, true},
		{layout.TextAttr{Font: "times", Size: 16, Color: "#008000"}, false}, // color alone: URL green
		{layout.TextAttr{Font: "times", Size: 16, Style: layout.Italic, Color: "#000000"}, false},
	}
	for _, c := range cases {
		if got := decorated(c.attr); got != c.want {
			t.Errorf("decorated(%+v) = %v, want %v", c.attr, got, c.want)
		}
	}
}

func TestHeadingLikeRequiresTextLine(t *testing.T) {
	p := render(`<body>
	<div><b>Bold Plain Heading</b></div>
	<div><a href="/x"><b>Bold Link</b></a></div>
	</body>`)
	content := map[layout.TextAttr]bool{}
	for _, a := range p.Lines[1].Attrs {
		content[a] = true
	}
	if !headingLike(&p.Lines[0], content) {
		t.Fatalf("bold text line should be heading-like")
	}
	if headingLike(&p.Lines[1], content) {
		t.Fatalf("link line is never heading-like")
	}
}

func TestCSBMScanHelpers(t *testing.T) {
	csbm := []bool{true, false, false, true, false}
	if got := previousCSBM(csbm, 3); got != 0 {
		t.Fatalf("previousCSBM = %d", got)
	}
	if got := previousCSBM(csbm, 0); got != -1 {
		t.Fatalf("previousCSBM at start = %d", got)
	}
	if got := nextCSBM(csbm, 1); got != 3 {
		t.Fatalf("nextCSBM = %d", got)
	}
	if got := nextCSBM(csbm, 4); got != -1 {
		t.Fatalf("nextCSBM past end = %d", got)
	}
}

func TestHasRecordInside(t *testing.T) {
	p := render(`<body><p>a</p><p>b</p><p>c</p><p>d</p></body>`)
	mr := sect.New(p, 0, 4)
	mr.Records = []visual.Block{{Page: p, Start: 0, End: 2}, {Page: p, Start: 2, End: 4}}
	if !hasRecordInside(sect.New(p, 0, 2), []*sect.Section{mr}) {
		t.Fatalf("record inside range not detected")
	}
	if hasRecordInside(sect.New(p, 1, 3), []*sect.Section{mr}) {
		t.Fatalf("straddling record wrongly counted as inside")
	}
}

func TestRefineOutputOrdering(t *testing.T) {
	p := hiddenBoundaryPage()
	ds1 := sect.New(p, 1, 7)
	ds1.LBM = 0
	ds2 := sect.New(p, 8, 12)
	ds2.LBM = 7
	csbm := make([]bool, len(p.Lines))
	csbm[0], csbm[7] = true, true
	out := Refine(p, nil, []*sect.Section{ds2, ds1}, csbm, DefaultOptions())
	prev := -1
	for _, s := range out {
		if s.Start < prev {
			t.Fatalf("sections out of order")
		}
		prev = s.Start
	}
}
