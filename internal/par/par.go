// Package par provides the minimal worker-pool primitive the pipeline uses
// for its data-parallel loops: per-sample-page analysis in core and the
// pairwise instance score matrix in cluster.  Work is handed out by an
// atomic index counter, so goroutines stay busy regardless of how uneven
// the per-item cost is; callers write results into index-addressed storage,
// which keeps output independent of scheduling order.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option value: n <= 0 selects GOMAXPROCS,
// anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// WorkerPanic is re-raised on the caller's goroutine when fn panics inside
// a worker.  It preserves the original panic value (Unwrap) and the
// worker's stack at the point of the panic, which the recovering boundary
// logs — the re-raise stack alone would only show ForEachIndex.
type WorkerPanic struct {
	Value any
	Stack []byte
}

// Unwrap returns the original panic value.  cancel.IsSignal uses it to
// recognize a cooperative-cancellation unwind crossing the pool boundary.
func (w WorkerPanic) Unwrap() any { return w.Value }

func (w WorkerPanic) String() string {
	return fmt.Sprintf("panic in parallel worker: %v", w.Value)
}

// ForEachIndex invokes fn(i) for every i in [0, n), spreading the indices
// over at most workers goroutines.  With workers <= 1 (or a single item) it
// degenerates to a plain loop on the caller's goroutine, so the serial and
// parallel paths execute the same fn calls in the same per-index order.
// fn must be safe for concurrent invocation on distinct indices.
//
// A panic inside fn does not crash the process: the pool stops handing out
// new indices, waits for the running calls to return, and re-raises the
// first panic on the caller's goroutine wrapped in WorkerPanic.  By the
// time the panic propagates to the caller no worker is running, so the
// caller's deferred cleanup may safely release resources fn was using.
func ForEachIndex(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		panicMu sync.Mutex
		first   *WorkerPanic
		wg      sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					stop.Store(true)
					panicMu.Lock()
					if first == nil {
						first = &WorkerPanic{Value: r, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(*first)
	}
}
