// Package par provides the minimal worker-pool primitive the pipeline uses
// for its data-parallel loops: per-sample-page analysis in core and the
// pairwise instance score matrix in cluster.  Work is handed out by an
// atomic index counter, so goroutines stay busy regardless of how uneven
// the per-item cost is; callers write results into index-addressed storage,
// which keeps output independent of scheduling order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a Parallelism option value: n <= 0 selects GOMAXPROCS,
// anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEachIndex invokes fn(i) for every i in [0, n), spreading the indices
// over at most workers goroutines.  With workers <= 1 (or a single item) it
// degenerates to a plain loop on the caller's goroutine, so the serial and
// parallel paths execute the same fn calls in the same per-index order.
// fn must be safe for concurrent invocation on distinct indices.
func ForEachIndex(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
