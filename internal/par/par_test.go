package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 97} {
			var hits = make([]atomic.Int32, n)
			ForEachIndex(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachIndexPropagatesWorkerPanic(t *testing.T) {
	for _, workers := range []int{2, 8} {
		var calls atomic.Int32
		var recovered any
		func() {
			defer func() { recovered = recover() }()
			ForEachIndex(100, workers, func(i int) {
				calls.Add(1)
				if i == 3 {
					panic("boom")
				}
				// Give the panicking worker time to set the stop flag, so
				// the early-exit below is deterministic rather than a race
				// against trivially fast items.
				time.Sleep(time.Millisecond)
			})
		}()
		wp, ok := recovered.(WorkerPanic)
		if !ok {
			t.Fatalf("workers=%d: recovered %T %v, want WorkerPanic", workers, recovered, recovered)
		}
		if wp.Unwrap() != "boom" {
			t.Fatalf("workers=%d: panic value %v, want boom", workers, wp.Unwrap())
		}
		if len(wp.Stack) == 0 {
			t.Fatalf("workers=%d: worker stack not captured", workers)
		}
		// The pool must stop handing out indices after the panic: with 100
		// items and an early panic, far fewer than 100 calls should run
		// (each live worker can finish at most its current item plus the
		// ones it grabbed before observing stop).
		if got := calls.Load(); got == 100 {
			t.Fatalf("workers=%d: all 100 items ran despite early panic", workers)
		}
	}
}

func TestForEachIndexSerialPanicPassesThrough(t *testing.T) {
	// The serial path (workers=1) runs on the caller's goroutine; the panic
	// value must arrive unwrapped, exactly as a plain loop would deliver it.
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		ForEachIndex(5, 1, func(i int) { panic("serial") })
	}()
	if recovered != "serial" {
		t.Fatalf("recovered %v, want serial", recovered)
	}
}

func TestForEachIndexSerialOrder(t *testing.T) {
	// A single worker must run on the caller's goroutine in index order —
	// the property that makes Parallelism=1 the exact reference path.
	var order []int
	ForEachIndex(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order broken: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("visited %d indices, want 5", len(order))
	}
}
