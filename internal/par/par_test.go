package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		for _, n := range []int{0, 1, 2, 5, 97} {
			var hits = make([]atomic.Int32, n)
			ForEachIndex(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachIndexSerialOrder(t *testing.T) {
	// A single worker must run on the caller's goroutine in index order —
	// the property that makes Parallelism=1 the exact reference path.
	var order []int
	ForEachIndex(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order broken: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("visited %d indices, want 5", len(order))
	}
}
