package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"mse/internal/dom"
)

// outline renders the element structure of a tree for compact assertions,
// e.g. "html(head(title),body(p))".
func outline(n *dom.Node) string {
	var sb strings.Builder
	var rec func(*dom.Node)
	rec = func(n *dom.Node) {
		switch n.Type {
		case dom.TextNode:
			sb.WriteString("'" + strings.TrimSpace(n.Data) + "'")
			return
		case dom.CommentNode, dom.DoctypeNode:
			return
		case dom.ElementNode:
			sb.WriteString(n.Tag)
		}
		kids := n.Children()
		var parts []string
		for _, c := range kids {
			if c.Type == dom.CommentNode || c.Type == dom.DoctypeNode {
				continue
			}
			var inner strings.Builder
			save := sb
			sb = inner
			rec(c)
			parts = append(parts, sb.String())
			sb = save
		}
		// filter empties
		var kept []string
		for _, p := range parts {
			if p != "" {
				kept = append(kept, p)
			}
		}
		if len(kept) > 0 {
			sb.WriteString("(" + strings.Join(kept, ",") + ")")
		}
	}
	if n.Type == dom.DocumentNode {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			if c.Type == dom.ElementNode {
				rec(c)
			}
		}
	} else {
		rec(n)
	}
	return sb.String()
}

func TestParseBasicStructure(t *testing.T) {
	doc := Parse(`<html><head><title>T</title></head><body><p>hi</p></body></html>`)
	want := "html(head(title('T')),body(p('hi')))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseImpliesSkeleton(t *testing.T) {
	doc := Parse(`<p>hi</p>`)
	want := "html(head,body(p('hi')))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseEmptyInput(t *testing.T) {
	doc := Parse("")
	if got := outline(doc); got != "html(head,body)" {
		t.Fatalf("outline = %s", got)
	}
}

func TestParseImpliedTBody(t *testing.T) {
	doc := Parse(`<table><tr><td>a</td><td>b</td></tr></table>`)
	want := "html(head,body(table(tbody(tr(td('a'),td('b'))))))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseAutoCloseRowsAndCells(t *testing.T) {
	// No closing </td> or </tr>: browsers auto-close them.
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	want := "html(head,body(table(tbody(tr(td('a'),td('b')),tr(td('c'))))))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseAutoCloseListItems(t *testing.T) {
	doc := Parse(`<ul><li>one<li>two<li>three</ul>`)
	want := "html(head,body(ul(li('one'),li('two'),li('three'))))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseAutoCloseParagraphs(t *testing.T) {
	doc := Parse(`<p>one<p>two`)
	want := "html(head,body(p('one'),p('two')))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseNestedListNotAutoClosed(t *testing.T) {
	// An <li> inside a nested <ul> must not close the outer <li>.
	doc := Parse(`<ul><li>a<ul><li>a1</li></ul></li><li>b</li></ul>`)
	want := "html(head,body(ul(li('a',ul(li('a1'))),li('b'))))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<p>a<br>b<hr><img src="x.gif"></p>`)
	want := "html(head,body(p('a',br,'b',hr,img)))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseSelfClosingSyntax(t *testing.T) {
	doc := Parse(`<div><span/>x</div>`)
	want := "html(head,body(div(span,'x')))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseAttributes(t *testing.T) {
	doc := Parse(`<a HREF="http://example.com/?q=1&amp;p=2" class=result data-x='y z'>link</a>`)
	as := doc.FindAll("a")
	if len(as) != 1 {
		t.Fatalf("want 1 <a>, got %d", len(as))
	}
	a := as[0]
	if v, _ := a.Attr("href"); v != "http://example.com/?q=1&p=2" {
		t.Fatalf("href = %q", v)
	}
	if v, _ := a.Attr("class"); v != "result" {
		t.Fatalf("class = %q", v)
	}
	if v, _ := a.Attr("data-x"); v != "y z" {
		t.Fatalf("data-x = %q", v)
	}
}

func TestParseBooleanAttribute(t *testing.T) {
	doc := Parse(`<input type=checkbox checked>`)
	in := doc.FindAll("input")[0]
	if _, ok := in.Attr("checked"); !ok {
		t.Fatalf("checked attribute missing")
	}
}

func TestParseComments(t *testing.T) {
	doc := Parse(`<body><!-- hidden --><p>x</p></body>`)
	found := false
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.CommentNode && strings.Contains(n.Data, "hidden") {
			found = true
		}
		return true
	})
	if !found {
		t.Fatalf("comment node missing")
	}
	if got := outline(doc); got != "html(head,body(p('x')))" {
		t.Fatalf("outline = %s", got)
	}
}

func TestParseDoctype(t *testing.T) {
	doc := Parse(`<!DOCTYPE html><html><body>x</body></html>`)
	if doc.FirstChild.Type != dom.DoctypeNode {
		t.Fatalf("first child should be doctype, got %v", doc.FirstChild.Type)
	}
}

func TestParseScriptRawText(t *testing.T) {
	doc := Parse(`<body><script>if (a<b) { x = "<td>"; }</script><p>after</p></body>`)
	scripts := doc.FindAll("script")
	if len(scripts) != 1 {
		t.Fatalf("want 1 script, got %d", len(scripts))
	}
	if !strings.Contains(scripts[0].TextContent(), `x = "<td>"`) {
		t.Fatalf("script content mangled: %q", scripts[0].TextContent())
	}
	if len(doc.FindAll("td")) != 0 {
		t.Fatalf("script content leaked elements into the tree")
	}
	if len(doc.FindAll("p")) != 1 {
		t.Fatalf("content after script lost")
	}
}

func TestParseTitleInHead(t *testing.T) {
	doc := Parse(`<html><head><title>My Title</title></head><body>b</body></html>`)
	want := "html(head(title('My Title')),body('b'))"
	if got := outline(doc); got != want {
		t.Fatalf("outline = %s, want %s", got, want)
	}
}

func TestParseEntities(t *testing.T) {
	doc := Parse(`<p>a &amp; b &lt;c&gt; &#65; &#x42; &nbsp;d &unknown;</p>`)
	txt := doc.FindAll("p")[0].TextContent()
	if !strings.Contains(txt, "a & b <c> A B") {
		t.Fatalf("entities not decoded: %q", txt)
	}
	if !strings.Contains(txt, "&unknown;") {
		t.Fatalf("unknown entity should stay verbatim: %q", txt)
	}
}

func TestParseStrayEndTagsIgnored(t *testing.T) {
	doc := Parse(`<body></div><p>x</p></span></body>`)
	if got := outline(doc); got != "html(head,body(p('x')))" {
		t.Fatalf("outline = %s", got)
	}
}

func TestParseUnclosedFormattingTags(t *testing.T) {
	doc := Parse(`<body><b>bold <i>both</body>`)
	if got := doc.TextContent(); got != "bold both" {
		t.Fatalf("text = %q", got)
	}
	if len(doc.FindAll("b")) != 1 || len(doc.FindAll("i")) != 1 {
		t.Fatalf("formatting elements missing")
	}
}

func TestParseTextDirectlyInTableGetsImpliedCell(t *testing.T) {
	doc := Parse(`<table>loose<tr><td>a</td></tr></table>`)
	// The loose text must not vanish and must stay in document order.
	if got := doc.TextContent(); got != "loose a" {
		t.Fatalf("text = %q, want %q", got, "loose a")
	}
}

func TestParseDeepNesting(t *testing.T) {
	var sb strings.Builder
	const depth = 200
	for i := 0; i < depth; i++ {
		sb.WriteString("<div>")
	}
	sb.WriteString("x")
	for i := 0; i < depth; i++ {
		sb.WriteString("</div>")
	}
	doc := Parse(sb.String())
	if got := len(doc.FindAll("div")); got != depth {
		t.Fatalf("divs = %d, want %d", got, depth)
	}
	if doc.TextContent() != "x" {
		t.Fatalf("text lost in deep nesting")
	}
}

func TestParseCaseInsensitiveTags(t *testing.T) {
	doc := Parse(`<TABLE><TR><TD>x</TD></TR></TABLE>`)
	if len(doc.FindAll("table")) != 1 {
		t.Fatalf("uppercase tags not normalized")
	}
}

func TestParseNeverPanics(t *testing.T) {
	inputs := []string{
		"<", "<>", "< >", "<a", "<a href", "<a href=", `<a href="x`,
		"</", "</>", "<!", "<!-", "<!--", "<!-- x", "<![CDATA[x]]>",
		"<p><table></p></table>", strings.Repeat("<<<>>>", 100),
		"<script>never closed", "<b></b></b></b>",
	}
	for _, in := range inputs {
		doc := Parse(in)
		if doc == nil {
			t.Fatalf("Parse(%q) returned nil", in)
		}
	}
}

func TestQuickParseTotality(t *testing.T) {
	// Property: Parse terminates and yields a tree with the html/head/body
	// skeleton for arbitrary input bytes.
	f := func(b []byte) bool {
		doc := Parse(string(b))
		if doc == nil || doc.Type != dom.DocumentNode {
			return false
		}
		var html *dom.Node
		for c := doc.FirstChild; c != nil; c = c.NextSibling {
			if c.Type == dom.ElementNode && c.Tag == "html" {
				html = c
			}
		}
		if html == nil {
			return false
		}
		hasHead, hasBody := false, false
		for c := html.FirstChild; c != nil; c = c.NextSibling {
			switch c.Tag {
			case "head":
				hasHead = true
			case "body":
				hasBody = true
			}
		}
		return hasHead && hasBody
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseTreeConsistency(t *testing.T) {
	// Property: every child's Parent pointer is correct and sibling links
	// are consistent after parsing arbitrary tag soup built from a small
	// alphabet of fragments.
	frags := []string{"<table>", "</table>", "<tr>", "<td>", "text", "<li>",
		"<ul>", "</ul>", "<p>", "<b>", "</b>", "<br>", "<a href=x>", "</a>"}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(frags[int(p)%len(frags)])
		}
		doc := Parse(sb.String())
		ok := true
		doc.Walk(func(n *dom.Node) bool {
			prev := (*dom.Node)(nil)
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				if c.Parent != n {
					ok = false
				}
				if c.PrevSibling != prev {
					ok = false
				}
				prev = c
			}
			if n.LastChild != prev {
				ok = false
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEntitiesTable(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":    "a & b",
		"&lt;tag&gt;":  "<tag>",
		"&#65;&#x41;":  "AA",
		"&nbsp;":       " ",
		"&bogus;":      "&bogus;",
		"&":            "&",
		"&#;":          "&#;",
		"100% &copy; ": "100% © ",
		"&amp&amp;":    "&&", // missing semicolon tolerated
	}
	for in, want := range cases {
		if got := decodeEntities(in); got != want {
			t.Errorf("decodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}
