package htmlparse

import (
	"strconv"
	"strings"
)

// namedEntities covers the entities that occur in practice on result pages.
// Unknown entities are left verbatim, matching lenient browser behaviour
// closely enough for extraction purposes.
var namedEntities = map[string]rune{
	"amp":    '&',
	"lt":     '<',
	"gt":     '>',
	"quot":   '"',
	"apos":   '\'',
	"nbsp":   '\x20', // mapped to a plain space for line-text processing
	"copy":   '©',
	"reg":    '®',
	"trade":  '™',
	"mdash":  '—',
	"ndash":  '–',
	"hellip": '…',
	"laquo":  '«',
	"raquo":  '»',
	"middot": '·',
	"bull":   '•',
	"lsquo":  '‘',
	"rsquo":  '’',
	"ldquo":  '“',
	"rdquo":  '”',
	"deg":    '°',
	"frac12": '½',
	"pound":  '£',
	"euro":   '€',
	"yen":    '¥',
	"cent":   '¢',
	"sect":   '§',
	"para":   '¶',
	"times":  '×',
	"divide": '÷',
	"plusmn": '±',
}

// decodeEntities replaces character references in s with their characters.
// It handles named references (with or without the trailing semicolon for
// the common ones), decimal references (&#160;) and hex references
// (&#xA0;).
func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); {
		c := s[i]
		if c != '&' {
			sb.WriteByte(c)
			i++
			continue
		}
		r, width := decodeOneEntity(s[i:])
		if width == 0 {
			sb.WriteByte(c)
			i++
			continue
		}
		sb.WriteRune(r)
		i += width
	}
	return sb.String()
}

// decodeOneEntity decodes the entity at the start of s (which begins with
// '&').  It returns the decoded rune and the number of source bytes
// consumed, or width 0 when s does not start a recognizable entity.
func decodeOneEntity(s string) (rune, int) {
	if len(s) < 3 {
		return 0, 0
	}
	if s[1] == '#' {
		j := 2
		base := 10
		if j < len(s) && (s[j] == 'x' || s[j] == 'X') {
			base = 16
			j++
		}
		start := j
		for j < len(s) && isDigitInBase(s[j], base) {
			j++
		}
		if j == start {
			return 0, 0
		}
		n, err := strconv.ParseInt(s[start:j], base, 32)
		if err != nil || n <= 0 {
			return 0, 0
		}
		if j < len(s) && s[j] == ';' {
			j++
		}
		return rune(n), j
	}
	// Named entity: letters up to ';' or a non-name byte.
	j := 1
	for j < len(s) && j < 10 && isAlphaNum(s[j]) {
		j++
	}
	name := s[1:j]
	r, ok := namedEntities[name]
	if !ok {
		return 0, 0
	}
	if j < len(s) && s[j] == ';' {
		j++
	}
	return r, j
}

func isDigitInBase(c byte, base int) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	if base == 16 {
		return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
	}
	return false
}

func isAlphaNum(c byte) bool {
	return isAlpha(c) || (c >= '0' && c <= '9')
}
