package htmlparse

import (
	"strings"
	"testing"
)

// samplePage builds an n-record result page in the table idiom.
func samplePage(n int) string {
	var sb strings.Builder
	sb.WriteString(`<html><head><title>t</title></head><body><h1>Site</h1>
	<div><a href="/a">Home</a> | <a href="/b">Help</a></div><hr><h3>Results</h3><table>`)
	for i := 0; i < n; i++ {
		sb.WriteString(`<tr><td><a href="/doc/x"><b>Result Title Here</b></a> (1/2/2003)<br>
		a snippet line with a number of words in it<br>
		<font color="#008000">www.site.example/doc/x.html</font></td></tr>`)
	}
	sb.WriteString(`</table><hr><div>Copyright 2006.</div></body></html>`)
	return sb.String()
}

func BenchmarkParse10Records(b *testing.B) {
	src := samplePage(10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}

func BenchmarkParse100Records(b *testing.B) {
	src := samplePage(100)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}

func BenchmarkDecodeEntities(b *testing.B) {
	src := strings.Repeat("a &amp; b &lt;c&gt; &#65; plain text without entities here ", 50)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		decodeEntities(src)
	}
}
