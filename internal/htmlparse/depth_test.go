package htmlparse

import (
	"strings"
	"testing"

	"mse/internal/dom"
	"mse/internal/layout"
)

// treeDepth computes the maximum node depth iteratively (the whole point
// is that the tree may be deeper than the test goroutine's stack budget if
// the cap regresses).
func treeDepth(root *dom.Node) int {
	type frame struct {
		n *dom.Node
		d int
	}
	max := 0
	stack := []frame{{root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.d > max {
			max = f.d
		}
		for c := f.n.FirstChild; c != nil; c = c.NextSibling {
			stack = append(stack, frame{c, f.d + 1})
		}
	}
	return max
}

// TestParseDepthCapped: a page of a million nested divs — within the 8 MB
// request budget — must parse into a tree of bounded depth and render
// without exhausting the stack.  Guards the maxOpenDepth cap.
func TestParseDepthCapped(t *testing.T) {
	const nested = 1_000_000
	var b strings.Builder
	b.Grow(nested*5 + 64)
	b.WriteString("<html><body>")
	for i := 0; i < nested; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("deep text")
	// Unclosed on purpose: closing tags change nothing for the cap and a
	// truncated page is the likelier hostile input.
	doc := Parse(b.String())

	if d := treeDepth(doc); d > maxOpenDepth+8 {
		t.Fatalf("tree depth = %d, want <= %d", d, maxOpenDepth+8)
	}
	page := layout.Render(doc)
	found := false
	for i := range page.Lines {
		if strings.Contains(page.Lines[i].Text, "deep text") {
			found = true
		}
	}
	if !found {
		t.Fatal("content inside the capped region was dropped")
	}
}

// TestParseDepthCapKeepsSiblings: elements past the cap still appear in
// the tree (flat), so no content is lost.
func TestParseDepthCapKeepsSiblings(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < maxOpenDepth+40; i++ {
		b.WriteString("<div>")
	}
	b.WriteString("<p>a</p><p>b</p>")
	doc := Parse(b.String())
	text := doc.TextContent()
	if !strings.Contains(text, "a") || !strings.Contains(text, "b") {
		t.Fatalf("content past the depth cap lost: %q", text)
	}
}
