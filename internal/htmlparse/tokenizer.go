// Package htmlparse implements an HTML tokenizer and tree builder that
// turns real-world (tag-soup) HTML into dom.Node trees.  The MSE paper
// operates on DOM trees of search-engine result pages; since the module is
// stdlib-only, the parser is implemented here from scratch.  It follows the
// spirit of the WHATWG algorithm where it matters for result pages:
// case-insensitive tags, quoted/unquoted attributes, void elements,
// raw-text elements (script/style/textarea/title), implied <html>/<head>/
// <body> structure, implied <tbody>, and auto-closing of <p>, <li>, <tr>,
// <td>, <th>, <option>, <dt>/<dd> and table sections.
package htmlparse

import (
	"strings"
)

// tokenType enumerates tokenizer outputs.
type tokenType int

const (
	textToken tokenType = iota
	startTagToken
	endTagToken
	selfClosingTagToken
	commentToken
	doctypeToken
	eofToken
)

// token is a single tokenizer output.
type token struct {
	typ   tokenType
	data  string // tag name (lowercase) or text/comment content
	attrs []attr
}

type attr struct {
	key string
	val string
}

// tokenizer scans HTML source into tokens.  It is byte-oriented: the
// source is indexed byte by byte, tag and attribute names are interned
// through the atom table instead of per-token strings.ToLower copies, and
// the attribute buffer is reused across tokens (token.attrs is only valid
// until the next call to next).
type tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, means the tokenizer is inside a raw-text
	// element and consumes everything up to the matching close tag.
	rawTag string
	// attrBuf backs token.attrs; reused for every start tag.
	attrBuf []attr
	// nameCache is a small direct-mapped cache in front of atomLower: a
	// page repeats the same handful of tag and attribute names thousands
	// of times, and on a hit canonicalization is one short string compare
	// instead of a case scan plus an interning-map probe.  Keys alias
	// z.src, which outlives the tokenizer's use of the cache.
	nameCache [32]struct{ raw, canon string }
}

// lowerName is atomLower behind the tokenizer's name cache.
func (z *tokenizer) lowerName(s string) string {
	if len(s) == 0 || len(s) > 24 {
		return atomLower(s)
	}
	h := (uint(s[0])*2 + uint(len(s))) & uint(len(z.nameCache)-1)
	e := &z.nameCache[h]
	if e.raw == s {
		return e.canon
	}
	c := atomLower(s)
	e.raw, e.canon = s, c
	return c
}

func newTokenizer(src string) *tokenizer {
	return &tokenizer{src: src}
}

// isRawTextElement reports elements that consume their content without
// interpreting markup.
func isRawTextElement(tag string) bool {
	switch tag {
	case "script", "style", "textarea", "title", "xmp":
		return true
	}
	return false
}

// next returns the next token.
func (z *tokenizer) next() token {
	if z.pos >= len(z.src) {
		return token{typ: eofToken}
	}
	if z.rawTag != "" {
		return z.rawText()
	}
	if z.src[z.pos] == '<' {
		return z.tag()
	}
	return z.text()
}

// text scans character data up to the next '<'.
func (z *tokenizer) text() token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return token{typ: textToken, data: decodeEntities(z.src[start:z.pos])}
}

// rawText scans the content of a raw-text element up to its end tag.  The
// "</tag" search is ASCII-case-insensitive in place; lowercasing the whole
// remaining source (as a string-based scan would) allocates a copy of the
// page per raw-text element.
func (z *tokenizer) rawText() token {
	idx := indexCloseTagFold(z.src[z.pos:], z.rawTag)
	if idx < 0 {
		// Unterminated raw text: consume the rest of the input.
		data := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawTag = ""
		return token{typ: textToken, data: data}
	}
	data := z.src[z.pos : z.pos+idx]
	z.pos += idx
	z.rawTag = ""
	if data == "" {
		// Nothing between the open and close tag; emit the close tag.
		return z.tag()
	}
	return token{typ: textToken, data: data}
}

// indexCloseTagFold returns the index of the first "</"+tag occurrence in
// s, matching tag case-insensitively (tag is already lowercase ASCII).
func indexCloseTagFold(s, tag string) int {
	for i := 0; i+2+len(tag) <= len(s); {
		j := strings.IndexByte(s[i:], '<')
		if j < 0 {
			return -1
		}
		i += j
		if i+2+len(tag) > len(s) {
			return -1
		}
		if s[i+1] != '/' {
			i++
			continue
		}
		match := true
		for k := 0; k < len(tag); k++ {
			c := s[i+2+k]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != tag[k] {
				match = false
				break
			}
		}
		if match {
			return i
		}
		i++
	}
	return -1
}

// tag scans a markup construct starting at '<'.
func (z *tokenizer) tag() token {
	// Invariant: z.src[z.pos] == '<'.
	if strings.HasPrefix(z.src[z.pos:], "<!--") {
		return z.comment()
	}
	if len(z.src) > z.pos+1 {
		c := z.src[z.pos+1]
		if c == '!' || c == '?' {
			return z.markupDeclaration()
		}
		if c == '/' {
			return z.endTag()
		}
		if isAlpha(c) {
			return z.startTag()
		}
	}
	// A lone '<' followed by non-tag material is text.
	z.pos++
	return token{typ: textToken, data: "<"}
}

func (z *tokenizer) comment() token {
	z.pos += len("<!--")
	end := strings.Index(z.src[z.pos:], "-->")
	var data string
	if end < 0 {
		data = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		data = z.src[z.pos : z.pos+end]
		z.pos += end + len("-->")
	}
	return token{typ: commentToken, data: data}
}

func (z *tokenizer) markupDeclaration() token {
	// <!DOCTYPE ...> or <!...> or <?...>: consume through '>'.
	start := z.pos
	end := strings.IndexByte(z.src[z.pos:], '>')
	if end < 0 {
		z.pos = len(z.src)
	} else {
		z.pos += end + 1
	}
	body := z.src[start:z.pos]
	if len(body) >= 9 && strings.EqualFold(body[:9], "<!doctype") {
		return token{typ: doctypeToken, data: strings.TrimSpace(strings.Trim(body[9:], "<>"))}
	}
	return token{typ: commentToken, data: body}
}

func (z *tokenizer) endTag() token {
	z.pos += 2 // consume "</"
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	name := z.lowerName(z.src[start:z.pos])
	// Skip to '>' tolerant of stray attributes on end tags.
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++
	}
	return token{typ: endTagToken, data: name}
}

func (z *tokenizer) startTag() token {
	z.pos++ // consume '<'
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	name := z.lowerName(z.src[start:z.pos])
	attrs, selfClosing := z.attributes()
	typ := startTagToken
	if selfClosing {
		typ = selfClosingTagToken
	}
	if typ == startTagToken && isRawTextElement(name) {
		z.rawTag = name
	}
	return token{typ: typ, data: name, attrs: attrs}
}

// attributes scans attributes up to (and including) the closing '>'.  The
// returned slice aliases the tokenizer's reusable buffer and is only valid
// until the next token is scanned.
func (z *tokenizer) attributes() (attrs []attr, selfClosing bool) {
	attrs = z.attrBuf[:0]
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			z.attrBuf = attrs
			return attrs, false
		}
		switch z.src[z.pos] {
		case '>':
			z.pos++
			z.attrBuf = attrs
			return attrs, false
		case '/':
			z.pos++
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				z.attrBuf = attrs
				return attrs, true
			}
			continue
		}
		// Attribute name.
		start := z.pos
		for z.pos < len(z.src) {
			c := z.src[z.pos]
			if c == '=' || c == '>' || c == '/' || isSpace(c) {
				break
			}
			z.pos++
		}
		key := z.lowerName(z.src[start:z.pos])
		if key == "" {
			z.pos++ // skip stray byte
			continue
		}
		z.skipSpace()
		val := ""
		if z.pos < len(z.src) && z.src[z.pos] == '=' {
			z.pos++
			z.skipSpace()
			val = z.attrValue()
		}
		attrs = append(attrs, attr{key: key, val: val})
	}
}

func (z *tokenizer) attrValue() string {
	if z.pos >= len(z.src) {
		return ""
	}
	c := z.src[z.pos]
	if c == '"' || c == '\'' {
		z.pos++
		start := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != c {
			z.pos++
		}
		val := z.src[start:z.pos]
		if z.pos < len(z.src) {
			z.pos++
		}
		return decodeEntities(val)
	}
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == '>' || isSpace(c) {
			break
		}
		z.pos++
	}
	return decodeEntities(z.src[start:z.pos])
}

func (z *tokenizer) skipSpace() {
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isAlpha(c) || (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':'
}
