package htmlparse

import "strings"

// The atom table interns the tag and attribute names that occur on result
// pages, so tokenizing "<TD Align=LEFT>" yields the same canonical "td" /
// "align" string values every time without allocating, and without pinning
// the page source through tiny name substrings.  Lookup is allocation-free
// for both already-lowercase input (direct map hit on the source slice) and
// mixed-case input (lowered into a stack buffer; the compiler elides the
// string conversion in map index expressions).
var atomTable = make(map[string]string, 160)

func init() {
	for _, s := range []string{
		// Element names.
		"a", "abbr", "address", "area", "article", "aside", "b", "base",
		"big", "blockquote", "body", "br", "button", "caption", "center",
		"cite", "code", "col", "colgroup", "dd", "div", "dl", "dt", "em",
		"embed", "fieldset", "font", "footer", "form", "h1", "h2", "h3",
		"h4", "h5", "h6", "head", "header", "hr", "html", "i", "iframe",
		"img", "input", "ins", "kbd", "label", "legend", "li", "link",
		"main", "map", "meta", "nav", "nobr", "noscript", "ol", "optgroup",
		"option", "p", "param", "pre", "s", "samp", "script", "section",
		"select", "small", "source", "span", "strike", "strong", "style",
		"sub", "sup", "table", "tbody", "td", "template", "textarea",
		"tfoot", "th", "thead", "title", "tr", "track", "tt", "u", "ul",
		"var", "wbr", "xmp",
		// Attribute names.
		"align", "alt", "bgcolor", "border", "cellpadding", "cellspacing",
		"checked", "class", "color", "cols", "colspan", "content", "dir",
		"disabled", "face", "height", "href", "http-equiv", "id", "lang",
		"maxlength", "media", "method", "name", "nowrap", "onclick",
		"placeholder", "rel", "rows", "rowspan", "selected", "size", "src",
		"target", "title", "type", "valign", "value", "width",
	} {
		atomTable[s] = s
	}
}

// atomLower returns the canonical lowercase form of a tag or attribute
// name.  Interned names come back as the shared atom string; unknown names
// fall back to strings.ToLower, matching the previous tokenizer exactly.
func atomLower(s string) string {
	ascii, lower := true, true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 {
			ascii = false
			break
		}
		if c >= 'A' && c <= 'Z' {
			lower = false
		}
	}
	if !ascii {
		return strings.ToLower(s) // non-ASCII names need Unicode lowering
	}
	if lower {
		if a, ok := atomTable[s]; ok {
			return a
		}
		return s
	}
	var buf [24]byte
	if len(s) <= len(buf) {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		if a, ok := atomTable[string(buf[:len(s)])]; ok {
			return a
		}
		return string(buf[:len(s)])
	}
	return strings.ToLower(s)
}
