package htmlparse

import (
	"strings"

	"mse/internal/dom"
)

// The tag-classification predicates below are string switches rather than
// map[string]bool sets: the compiler lowers a string switch to a
// length-bucketed compare tree, so the per-tag classification on the parse
// hot path costs a couple of comparisons instead of a map hash + probe.
// The sets are identical to the former map literals.

// isVoidElement reports tags that never have children; a start tag is a
// complete element.
func isVoidElement(tag string) bool {
	switch tag {
	case "area", "base", "br", "col", "embed", "hr", "img", "input", "link",
		"meta", "param", "source", "track", "wbr":
		return true
	}
	return false
}

// hasAutoClose reports whether a start tag implicitly closes some set of
// open tags (see autoCloses).  This captures the tag-soup recovery
// browsers apply to the table/list/paragraph structures that dominate
// 2006-era result pages.
func hasAutoClose(tag string) bool {
	switch tag {
	case "p", "li", "dt", "dd", "option", "optgroup", "tr", "td", "th",
		"thead", "tbody", "tfoot", "colgroup":
		return true
	}
	return false
}

// autoCloses reports whether a starting tag implicitly closes an open one.
func autoCloses(tag, open string) bool {
	switch tag {
	case "p":
		return open == "p"
	case "li":
		return open == "li"
	case "dt", "dd":
		return open == "dt" || open == "dd"
	case "option":
		return open == "option"
	case "optgroup":
		return open == "option" || open == "optgroup"
	case "tr":
		return open == "tr" || open == "td" || open == "th"
	case "td", "th":
		return open == "td" || open == "th"
	case "thead", "tbody", "tfoot":
		switch open {
		case "thead", "tbody", "tfoot", "tr", "td", "th":
			return true
		}
	case "colgroup":
		return open == "colgroup"
	}
	return false
}

// isBarrier reports whether an open tag stops tag's implicit-close scan:
// an implicit close never crosses one of these container tags.  The
// per-tag boundary sets exist because a <td> must be able to close a
// previous <td> but its scan must not escape the enclosing <tr>;
// similarly <li> must not escape <ul>.
func isBarrier(tag, open string) bool {
	switch tag {
	case "td", "th":
		switch open {
		case "tr", "table", "body", "html", "#document":
			return true
		}
	case "tr":
		switch open {
		case "thead", "tbody", "tfoot", "table", "body", "html", "#document":
			return true
		}
	case "li":
		switch open {
		case "ul", "ol", "body", "html", "#document":
			return true
		}
	case "dt", "dd":
		switch open {
		case "dl", "body", "html", "#document":
			return true
		}
	default:
		switch open {
		case "table", "td", "th", "body", "html", "#document", "div", "ul",
			"ol", "dl", "select":
			return true
		}
	}
	return false
}

// parser builds a dom tree from tokens.
type parser struct {
	doc   *dom.Node
	stack []*dom.Node // open elements; stack[0] is the document
	arena *dom.Arena  // node/attr allocator; nil falls back to the heap
}

// Parse parses HTML source into a DOM tree rooted at a DocumentNode.  The
// result always contains an <html> element with <head> and <body>
// children; body-level content in the source is placed under <body>.
// Parse never fails: like a browser, it recovers from malformed markup.
//
// Nodes are batch-allocated from a throwaway arena (the garbage collector
// reclaims them with the tree); use ParsePooled on the per-request serving
// path where the tree's death is an explicit event.
func Parse(src string) *dom.Node {
	doc, _ := parseWith(src, dom.NewArena())
	return doc
}

// ParsePooled parses like Parse but allocates the tree from a pooled
// arena, which the caller must Release once nothing can reference the
// returned tree anymore (dom.Arena documents the soundness rule).  The
// arena is nil — and Release a no-op — when arenas are disabled.
func ParsePooled(src string) (*dom.Node, *dom.Arena) {
	return parseWith(src, dom.AcquireArena())
}

func parseWith(src string, arena *dom.Arena) (*dom.Node, *dom.Arena) {
	// A panic mid-parse must not leak the pooled arena: nothing can
	// reference the half-built tree after unwinding, so recycle it before
	// re-panicking.
	defer func() {
		if r := recover(); r != nil {
			arena.Release()
			panic(r)
		}
	}()
	p := &parser{arena: arena}
	p.doc = p.newNode(dom.DocumentNode)
	p.stack = []*dom.Node{p.doc}
	z := newTokenizer(src)
	for {
		tok := z.next()
		if tok.typ == eofToken {
			break
		}
		p.consume(tok)
	}
	p.ensureStructure()
	return p.doc, arena
}

// newNode allocates a node of the given type from the parse arena.
func (p *parser) newNode(t dom.NodeType) *dom.Node {
	n := p.arena.Node()
	n.Type = t
	return n
}

// top returns the innermost open element.
func (p *parser) top() *dom.Node {
	return p.stack[len(p.stack)-1]
}

func (p *parser) consume(tok token) {
	switch tok.typ {
	case doctypeToken:
		d := p.newNode(dom.DoctypeNode)
		d.Data = tok.data
		p.doc.AppendChild(d)
	case commentToken:
		c := p.newNode(dom.CommentNode)
		c.Data = tok.data
		p.top().AppendChild(c)
	case textToken:
		p.addText(tok.data)
	case startTagToken, selfClosingTagToken:
		p.startTag(tok)
	case endTagToken:
		p.endTag(tok.data)
	}
}

func (p *parser) addText(s string) {
	if strings.TrimSpace(s) == "" {
		// Whitespace-only runs are dropped; they carry no content and would
		// otherwise pollute the content-line model.
		return
	}
	switch p.top().Tag {
	case "title", "style", "script", "textarea", "xmp":
		// Raw-text content stays with its element even inside <head>.
	default:
		p.ensureBody()
	}
	parent := p.top()
	// Text directly inside <table>, <tbody>, or <tr> is foster-parented
	// into a cell-free container per browser behaviour; for extraction
	// purposes placing it in an implied row/cell keeps document order.
	switch parent.Tag {
	case "table", "thead", "tbody", "tfoot", "tr":
		p.impliedCell()
		parent = p.top()
	}
	if parent.LastChild != nil && parent.LastChild.Type == dom.TextNode {
		parent.LastChild.Data += s
		return
	}
	t := p.newNode(dom.TextNode)
	t.Data = s
	parent.AppendChild(t)
}

// impliedCell opens the implied tr/td needed to place phrasing content that
// appears directly inside table structure.
func (p *parser) impliedCell() {
	switch p.top().Tag {
	case "table":
		p.push("tbody", nil)
		p.push("tr", nil)
		p.push("td", nil)
	case "thead", "tbody", "tfoot":
		p.push("tr", nil)
		p.push("td", nil)
	case "tr":
		p.push("td", nil)
	}
}

func (p *parser) startTag(tok token) {
	name := tok.data
	switch name {
	case "html":
		// Adopt attributes onto the (single) html element.
		h := p.htmlElement()
		for _, a := range tok.attrs {
			if _, ok := h.Attr(a.key); !ok {
				h.Attrs = append(h.Attrs, dom.Attr{Key: a.key, Val: a.val})
			}
		}
		return
	case "head":
		p.ensureHead()
		return
	case "body":
		p.ensureBody()
		b := p.bodyElement()
		for _, a := range tok.attrs {
			if _, ok := b.Attr(a.key); !ok {
				b.Attrs = append(b.Attrs, dom.Attr{Key: a.key, Val: a.val})
			}
		}
		return
	}
	if isHeadOnly(name) {
		p.ensureHead()
	} else {
		p.ensureBody()
	}
	// Implicit closes (e.g. <li> closes an open <li>).
	if hasAutoClose(name) {
		p.implicitClose(name)
	}
	// Structural implications for table parts.
	switch name {
	case "tr":
		if p.top().Tag == "table" {
			p.push("tbody", nil)
		}
	case "td", "th":
		switch p.top().Tag {
		case "table":
			p.push("tbody", nil)
			p.push("tr", nil)
		case "thead", "tbody", "tfoot":
			p.push("tr", nil)
		}
	}
	attrs := p.convertAttrs(tok.attrs)
	if isVoidElement(name) || tok.typ == selfClosingTagToken {
		n := p.newNode(dom.ElementNode)
		n.Tag = name
		n.Attrs = attrs
		p.top().AppendChild(n)
		return
	}
	p.push(name, attrs)
}

// implicitClose pops open elements that the starting tag name implicitly
// closes, stopping at any barrier tag.  Formatting elements and open <p>
// elements in the way are popped as well (they have implied end tags in
// this position).
func (p *parser) implicitClose(name string) {
	for len(p.stack) > 1 {
		label := p.top().Label()
		if isBarrier(name, label) {
			return
		}
		if autoCloses(name, label) || isFormatting(label) || label == "p" {
			p.stack = p.stack[:len(p.stack)-1]
			continue
		}
		// A structural element that is neither closed nor a barrier stops
		// the scan.
		return
	}
}

// isFormatting reports whether an open tag may be implicitly popped while
// searching for an auto-close target (inline formatting elements).
func isFormatting(tag string) bool {
	switch tag {
	case "a", "b", "i", "u", "em", "strong", "font", "span", "small", "big",
		"s", "strike", "tt", "code", "sub", "sup", "abbr", "cite", "label", "nobr":
		return true
	}
	return false
}

// maxOpenDepth caps the open-element stack, as browsers do.  Beyond the
// cap a new element is appended flat at the cap level instead of deepening
// the tree: the 8 MB request-body budget admits ~1.6 million nested divs,
// and an unbounded tree forces the downstream recursive consumers (the
// render walk, dom.Walk, path extraction) to grow hundreds of megabytes of
// goroutine stack per request.  Real result pages nest a few dozen levels.
const maxOpenDepth = 512

func (p *parser) push(tag string, attrs []dom.Attr) {
	n := p.newNode(dom.ElementNode)
	n.Tag = tag
	n.Attrs = attrs
	p.top().AppendChild(n)
	if len(p.stack) >= maxOpenDepth {
		// At the cap the element still exists (flat), but children that
		// follow attach to the capped ancestor, bounding tree depth.
		return
	}
	p.stack = append(p.stack, n)
}

func (p *parser) endTag(name string) {
	if isVoidElement(name) {
		return // </br> and friends are ignored
	}
	// Find the matching open element.
	for i := len(p.stack) - 1; i >= 1; i-- {
		if p.stack[i].Tag == name {
			p.stack = p.stack[:i]
			return
		}
		// Do not let a stray end tag close structural containers.
		if p.stack[i].Tag == "body" || p.stack[i].Tag == "html" {
			return
		}
	}
	// No matching open tag: ignore, as browsers do.
}

// convertAttrs copies the tokenizer's transient attribute buffer into an
// arena-backed dom.Attr slice owned by the node.
func (p *parser) convertAttrs(in []attr) []dom.Attr {
	if len(in) == 0 {
		return nil
	}
	out := p.arena.Attrs(len(in))
	for i, a := range in {
		out[i] = dom.Attr{Key: a.key, Val: a.val}
	}
	return out
}

func isHeadOnly(tag string) bool {
	switch tag {
	case "title", "meta", "link", "base", "style":
		return true
	}
	return false
}

// htmlElement returns the page's <html> element, creating it if needed.
func (p *parser) htmlElement() *dom.Node {
	for c := p.doc.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.ElementNode && c.Tag == "html" {
			return c
		}
	}
	h := p.newNode(dom.ElementNode)
	h.Tag = "html"
	p.doc.AppendChild(h)
	if len(p.stack) == 1 {
		p.stack = append(p.stack, h)
	}
	return h
}

func (p *parser) headElement() *dom.Node {
	h := p.htmlElement()
	for c := h.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.ElementNode && c.Tag == "head" {
			return c
		}
	}
	head := p.newNode(dom.ElementNode)
	head.Tag = "head"
	h.AppendChild(head)
	return head
}

func (p *parser) bodyElement() *dom.Node {
	h := p.htmlElement()
	for c := h.FirstChild; c != nil; c = c.NextSibling {
		if c.Type == dom.ElementNode && c.Tag == "body" {
			return c
		}
	}
	body := p.newNode(dom.ElementNode)
	body.Tag = "body"
	h.AppendChild(body)
	return body
}

// ensureHead makes the head element current when only document/html are
// open.
func (p *parser) ensureHead() {
	if len(p.stack) > 2 {
		return // already inside some container
	}
	head := p.headElement()
	h := p.htmlElement()
	p.stack = []*dom.Node{p.doc, h, head}
}

// ensureBody makes sure body exists and is the innermost scope when the
// parser is still at document/html/head level.
func (p *parser) ensureBody() {
	// If we are inside head (or nothing), switch to body.
	cur := p.top()
	switch cur.Label() {
	case "#document", "html", "head", "title", "style", "script", "meta", "link", "base":
		body := p.bodyElement()
		h := p.htmlElement()
		p.stack = []*dom.Node{p.doc, h, body}
	}
}

// ensureStructure guarantees the html/head/body skeleton exists even for
// empty input.
func (p *parser) ensureStructure() {
	p.headElement()
	p.bodyElement()
	// head must precede body; reorder if the source created body first.
	h := p.htmlElement()
	var head, body *dom.Node
	for c := h.FirstChild; c != nil; c = c.NextSibling {
		switch c.Tag {
		case "head":
			head = c
		case "body":
			body = c
		}
	}
	if head != nil && body != nil && body.NextSibling != nil {
		// body not last among head/body: only fix the head-after-body case.
		if head.PrevSibling == body {
			h.RemoveChild(head)
			// Re-insert head before body.
			reinsertBefore(h, head, body)
		}
	}
}

// reinsertBefore inserts n as a child of parent immediately before ref.
func reinsertBefore(parent, n, ref *dom.Node) {
	n.Parent = parent
	n.NextSibling = ref
	n.PrevSibling = ref.PrevSibling
	if ref.PrevSibling != nil {
		ref.PrevSibling.NextSibling = n
	} else {
		parent.FirstChild = n
	}
	ref.PrevSibling = n
}
