package htmlparse

import (
	"testing"

	"mse/internal/dom"
	"mse/internal/layout"
)

// FuzzParse exercises the tokenizer + tree builder + renderer on arbitrary
// byte strings.  Run with `go test -fuzz=FuzzParse ./internal/htmlparse`;
// the seed corpus below always runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"<html><body><p>hello</p></body></html>",
		"<table><tr><td>a<td>b<tr><td>c</table>",
		"<ul><li>x<li>y</ul>",
		"<b><i>nested <p> wrong",
		"<!-- comment --><!DOCTYPE html><p>x",
		"<script>var a = '<td>';</script><p>after</p>",
		`<a href="u" class='c' checked>t</a>`,
		"&amp;&#65;&#x41;&bogus;&",
		"<style>.x{color:red}</style><div class=x>styled</div>",
		"\x00\xff<p>\x80</p>",
		"<p>" + string(rune(0x10FFFF)) + "</p>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil || doc.Type != dom.DocumentNode {
			t.Fatalf("Parse returned invalid document")
		}
		// The tree must be structurally consistent.
		doc.Walk(func(n *dom.Node) bool {
			prev := (*dom.Node)(nil)
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				if c.Parent != n || c.PrevSibling != prev {
					t.Fatalf("inconsistent links")
				}
				prev = c
			}
			if n.LastChild != prev {
				t.Fatalf("LastChild wrong")
			}
			return true
		})
		// Rendering the parse result must never panic and must produce
		// sequential line numbers.
		page := layout.Render(doc)
		for i, l := range page.Lines {
			if l.Num != i {
				t.Fatalf("line numbering broken")
			}
		}
	})
}
