// Package cancel provides the cooperative-cancellation primitive the MSE
// pipeline threads through its long-running loops.  A Token is derived
// from a context.Context at an API boundary (core.BuildWrapperCtx,
// core.ExtractCtx) and handed down to the hot loops — the Zhang-Shasha
// dynamic program, the cluster score-matrix fill, the layout render walk,
// wrapper application — which poll it at coarse checkpoints.
//
// Cancellation unwinds by panicking with Signal rather than by threading
// an error return through every pipeline stage: the deep call chains
// (visual distances inside stable marriage inside clustering) would
// otherwise need an error path through a dozen signatures that can never
// fail for any other reason.  The panic is recovered exclusively at the
// boundary that created the token, which converts it to the typed
// core.ErrCanceled; it never escapes a public API.  encoding/json and
// text/template unwind their recursive internals the same way.
//
// All methods are nil-receiver safe: a nil *Token means "not cancellable"
// and reduces every checkpoint to one pointer comparison, so code paths
// without a context pay nothing.
package cancel

import (
	"context"
	"sync/atomic"
)

// Token is a poll-style view of a context's cancellation state.  The
// fast-path check is one atomic load once cancellation has been observed;
// before that it is a non-blocking channel receive.
type Token struct {
	done  <-chan struct{}
	fired atomic.Bool
}

// FromContext returns a token polling ctx, or nil when ctx can never be
// canceled (nil ctx, context.Background, ...), so the no-context case
// stays on the checkpoint-free path.
func FromContext(ctx context.Context) *Token {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return &Token{done: done}
}

// Canceled reports whether the token's context has been canceled.  It is
// safe to call concurrently and on a nil token (which is never canceled).
func (t *Token) Canceled() bool {
	if t == nil {
		return false
	}
	if t.fired.Load() {
		return true
	}
	select {
	case <-t.done:
		t.fired.Store(true)
		return true
	default:
		return false
	}
}

// Check is the checkpoint the pipeline loops call: it panics with Signal
// when the token has been canceled and is a no-op otherwise (and on a nil
// token).  The panic must be recovered by the boundary that created the
// token; IsSignal recognizes it.
func (t *Token) Check() {
	if t.Canceled() {
		panic(Signal{})
	}
}

// Signal is the panic value Check unwinds with.  It deliberately carries
// no state: the boundary that recovers it already holds the context and
// reports the context's error.
type Signal struct{}

// IsSignal reports whether a recovered panic value is a cancellation
// Signal, looking through one level of wrapping by types that implement
// Unwrap() any (such as par.WorkerPanic, which re-raises worker panics on
// the caller's goroutine).
func IsSignal(r any) bool {
	if _, ok := r.(Signal); ok {
		return true
	}
	if u, ok := r.(interface{ Unwrap() any }); ok {
		_, ok2 := u.Unwrap().(Signal)
		return ok2
	}
	return false
}
