package cancel

import (
	"context"
	"testing"
)

func TestNilTokenIsInert(t *testing.T) {
	var tok *Token
	if tok.Canceled() {
		t.Fatal("nil token reports canceled")
	}
	tok.Check() // must not panic
}

func TestFromContext(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil ctx should yield nil token")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("Background has no done channel; token should be nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	tok := FromContext(ctx)
	if tok == nil {
		t.Fatal("cancellable ctx yielded nil token")
	}
	if tok.Canceled() {
		t.Fatal("canceled before cancel()")
	}
	cancel()
	if !tok.Canceled() {
		t.Fatal("not canceled after cancel()")
	}
	// Fast path after first observation.
	if !tok.Canceled() {
		t.Fatal("fired flag lost")
	}
}

func TestCheckPanicsWithSignal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := FromContext(ctx)
	cancel()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Check did not panic on canceled token")
		}
		if !IsSignal(r) {
			t.Fatalf("panic value %v is not a Signal", r)
		}
	}()
	tok.Check()
}

type wrapped struct{ v any }

func (w wrapped) Unwrap() any { return w.v }

func TestIsSignalUnwraps(t *testing.T) {
	if !IsSignal(Signal{}) {
		t.Fatal("bare Signal not recognized")
	}
	if !IsSignal(wrapped{Signal{}}) {
		t.Fatal("wrapped Signal not recognized")
	}
	if IsSignal("boom") || IsSignal(wrapped{"boom"}) {
		t.Fatal("non-signal recognized as Signal")
	}
}
