package match

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestStableMarriageBasic(t *testing.T) {
	// 2x2 with clear preferences: 0<->0, 1<->1.
	scores := [][]float64{
		{0.9, 0.2},
		{0.1, 0.8},
	}
	got := StableMarriage(2, 2, func(i, j int) float64 { return scores[i][j] }, 0.0)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("matching = %v", got)
	}
}

func TestStableMarriageCompetition(t *testing.T) {
	// Both proposers prefer acceptor 0; acceptor 0 prefers proposer 1.
	scores := [][]float64{
		{0.8, 0.5},
		{0.9, 0.4},
	}
	got := StableMarriage(2, 2, func(i, j int) float64 { return scores[i][j] }, 0.0)
	if got[1] != 0 {
		t.Fatalf("acceptor 0 should go to proposer 1: %v", got)
	}
	if got[0] != 1 {
		t.Fatalf("proposer 0 should fall back to acceptor 1: %v", got)
	}
}

func TestStableMarriageThreshold(t *testing.T) {
	scores := [][]float64{
		{0.9, 0.1},
		{0.1, 0.2},
	}
	got := StableMarriage(2, 2, func(i, j int) float64 { return scores[i][j] }, 0.5)
	if got[0] != 0 {
		t.Fatalf("above-threshold pair unmatched: %v", got)
	}
	if got[1] != -1 {
		t.Fatalf("below-threshold pair matched: %v", got)
	}
}

func TestStableMarriageUnevenSizes(t *testing.T) {
	// 3 proposers, 1 acceptor: only the best gets it.
	scores := []float64{0.3, 0.9, 0.6}
	got := StableMarriage(3, 1, func(i, j int) float64 { return scores[i] }, 0.0)
	want := []int{-1, 0, -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("matching = %v, want %v", got, want)
	}
}

func TestStableMarriageEmpty(t *testing.T) {
	got := StableMarriage(0, 0, func(i, j int) float64 { return 0 }, 0.0)
	if len(got) != 0 {
		t.Fatalf("empty matching = %v", got)
	}
}

func TestQuickStableMarriageIsStable(t *testing.T) {
	// Property: no blocking pair — an unmatched-together (i, j) above
	// threshold where both strictly prefer each other over their current
	// partners.
	f := func(seedRows []uint8) bool {
		n := 4
		m := 4
		if len(seedRows) < n*m {
			return true
		}
		score := func(i, j int) float64 {
			return float64(seedRows[i*m+j]%100) / 100
		}
		const threshold = 0.2
		res := StableMarriage(n, m, score, threshold)
		partnerOf := make([]int, m)
		for j := range partnerOf {
			partnerOf[j] = -1
		}
		for i, j := range res {
			if j >= 0 {
				partnerOf[j] = i
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < m; j++ {
				if score(i, j) < threshold || res[i] == j {
					continue
				}
				iPrefers := res[i] == -1 || score(i, j) > score(i, res[i])
				jPrefers := partnerOf[j] == -1 || score(i, j) > score(partnerOf[j], j)
				if iPrefers && jPrefers {
					return false // blocking pair
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaximalCliquesTriangle(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	cliques := g.MaximalCliques(2)
	want := [][]int{{0, 1, 2}, {2, 3}}
	if !reflect.DeepEqual(cliques, want) {
		t.Fatalf("cliques = %v, want %v", cliques, want)
	}
}

func TestMaximalCliquesMinSizeFilter(t *testing.T) {
	g := NewGraph(5)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	// vertex 4 isolated
	cliques := g.MaximalCliques(2)
	if len(cliques) != 2 {
		t.Fatalf("cliques = %v", cliques)
	}
	cliques3 := g.MaximalCliques(3)
	if len(cliques3) != 0 {
		t.Fatalf("no clique of size 3 expected, got %v", cliques3)
	}
}

func TestMaximalCliquesComplete(t *testing.T) {
	g := NewGraph(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j)
		}
	}
	cliques := g.MaximalCliques(2)
	if len(cliques) != 1 || len(cliques[0]) != 5 {
		t.Fatalf("K5 should have one maximal clique: %v", cliques)
	}
}

func TestMaximalCliquesEmptyGraph(t *testing.T) {
	g := NewGraph(3)
	if cliques := g.MaximalCliques(2); len(cliques) != 0 {
		t.Fatalf("edgeless graph has no size-2 cliques: %v", cliques)
	}
}

func TestQuickCliquesAreCliquesAndMaximal(t *testing.T) {
	f := func(edges []uint8) bool {
		const n = 7
		g := NewGraph(n)
		for i := 0; i+1 < len(edges); i += 2 {
			g.AddEdge(int(edges[i])%n, int(edges[i+1])%n)
		}
		cliques := g.MaximalCliques(2)
		for _, c := range cliques {
			// Every pair adjacent.
			for a := 0; a < len(c); a++ {
				for b := a + 1; b < len(c); b++ {
					if !g.HasEdge(c[a], c[b]) {
						return false
					}
				}
			}
			// Maximality: no vertex outside c adjacent to all of c.
			inC := map[int]bool{}
			for _, v := range c {
				inC[v] = true
			}
			for v := 0; v < n; v++ {
				if inC[v] {
					continue
				}
				all := true
				for _, u := range c {
					if !g.HasEdge(v, u) {
						all = false
						break
					}
				}
				if all {
					return false
				}
			}
		}
		// No duplicate cliques.
		seen := map[string]bool{}
		for _, c := range cliques {
			k := ""
			for _, v := range c {
				k += string(rune('a' + v))
			}
			if seen[k] {
				return false
			}
			seen[k] = true
		}
		// Completeness spot check: every edge is inside some clique.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) {
					continue
				}
				covered := false
				for _, c := range cliques {
					has := func(x int) bool {
						i := sort.SearchInts(c, x)
						return i < len(c) && c[i] == x
					}
					if has(u) && has(v) {
						covered = true
						break
					}
				}
				if !covered {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
