// Package match provides the combinatorial substrates of Section 5.6 of
// the MSE paper: the stable marriage algorithm [McVitie-Wilson, 17] —
// modified to allow "no match" below a score threshold — used to pair
// section instances between two sample pages, and the Bron-Kerbosch
// algorithm [4] for enumerating the maximal cliques of the section
// instance graph.
package match

import "sort"

// StableMarriage computes a stable matching between n "proposers" and m
// "acceptors" given a score function (higher is better).  Pairs with score
// below threshold are never matched, which is the paper's modification for
// allowing section instances to stay unmatched.  The result maps proposer
// index to acceptor index (-1 for unmatched).
func StableMarriage(n, m int, score func(i, j int) float64, threshold float64) []int {
	// Preference lists restricted to above-threshold pairs.
	prefs := make([][]int, n)
	for i := 0; i < n; i++ {
		var list []int
		for j := 0; j < m; j++ {
			if score(i, j) >= threshold {
				list = append(list, j)
			}
		}
		sort.SliceStable(list, func(a, b int) bool {
			return score(i, list[a]) > score(i, list[b])
		})
		prefs[i] = list
	}
	next := make([]int, n)      // next proposal index per proposer
	engagedTo := make([]int, m) // acceptor -> proposer (-1 free)
	for j := range engagedTo {
		engagedTo[j] = -1
	}
	result := make([]int, n)
	for i := range result {
		result[i] = -1
	}
	free := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		free = append(free, i)
	}
	for len(free) > 0 {
		i := free[len(free)-1]
		free = free[:len(free)-1]
		for next[i] < len(prefs[i]) {
			j := prefs[i][next[i]]
			next[i]++
			cur := engagedTo[j]
			if cur == -1 {
				engagedTo[j] = i
				result[i] = j
				break
			}
			if score(i, j) > score(cur, j) {
				// j prefers i; cur becomes free again.
				engagedTo[j] = i
				result[i] = j
				result[cur] = -1
				free = append(free, cur)
				break
			}
		}
	}
	return result
}

// Graph is a simple undirected graph over vertices 0..N-1.
type Graph struct {
	N   int
	adj []map[int]bool
}

// NewGraph creates an empty graph with n vertices.
func NewGraph(n int) *Graph {
	g := &Graph{N: n, adj: make([]map[int]bool, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]bool)
	}
	return g
}

// AddEdge adds an undirected edge between u and v (self-loops ignored).
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		return
	}
	g.adj[u][v] = true
	g.adj[v][u] = true
}

// HasEdge reports whether u and v are adjacent.
func (g *Graph) HasEdge(u, v int) bool { return g.adj[u][v] }

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaximalCliques enumerates all maximal cliques of size >= minSize using
// Bron-Kerbosch with pivoting.  Cliques are returned with sorted vertices,
// in deterministic order.
func (g *Graph) MaximalCliques(minSize int) [][]int {
	var out [][]int
	var r []int
	p := make([]int, 0, g.N)
	for v := 0; v < g.N; v++ {
		p = append(p, v)
	}
	var x []int
	g.bronKerbosch(r, p, x, &out, minSize)
	for _, c := range out {
		sort.Ints(c)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

func (g *Graph) bronKerbosch(r, p, x []int, out *[][]int, minSize int) {
	if len(p) == 0 && len(x) == 0 {
		if len(r) >= minSize {
			*out = append(*out, append([]int(nil), r...))
		}
		return
	}
	// Pivot: vertex in P ∪ X with the most neighbours in P.
	pivot, best := -1, -1
	for _, v := range p {
		if d := g.countIn(v, p); d > best {
			pivot, best = v, d
		}
	}
	for _, v := range x {
		if d := g.countIn(v, p); d > best {
			pivot, best = v, d
		}
	}
	var candidates []int
	for _, v := range p {
		if pivot == -1 || !g.adj[pivot][v] {
			candidates = append(candidates, v)
		}
	}
	pSet := toSet(p)
	xSet := toSet(x)
	for _, v := range candidates {
		var np, nx []int
		for u := range g.adj[v] {
			if pSet[u] {
				np = append(np, u)
			}
			if xSet[u] {
				nx = append(nx, u)
			}
		}
		sort.Ints(np)
		sort.Ints(nx)
		g.bronKerbosch(append(r, v), np, nx, out, minSize)
		delete(pSet, v)
		xSet[v] = true
		p = removeOne(p, v)
		x = append(x, v)
	}
}

func (g *Graph) countIn(v int, set []int) int {
	n := 0
	for _, u := range set {
		if g.adj[v][u] {
			n++
		}
	}
	return n
}

func toSet(s []int) map[int]bool {
	m := make(map[int]bool, len(s))
	for _, v := range s {
		m[v] = true
	}
	return m
}

func removeOne(s []int, v int) []int {
	out := make([]int, 0, len(s))
	for _, u := range s {
		if u != v {
			out = append(out, u)
		}
	}
	return out
}
