package cluster

import (
	"fmt"
	"strings"
	"testing"

	"mse/internal/htmlparse"
	"mse/internal/layout"
	"mse/internal/sect"
	"mse/internal/visual"
)

// twoSectionPage builds a page with a News table section and a Products
// list section whose record counts vary.
func twoSectionPage(nNews, nProd int, tag string) (*layout.Page, []*sect.Section) {
	var sb strings.Builder
	sb.WriteString(`<body><h3>News</h3><table>`)
	for i := 0; i < nNews; i++ {
		fmt.Fprintf(&sb, `<tr><td><a href="/n%s%d">News item %s %d</a><br>news snippet %d</td></tr>`,
			tag, i, tag, i, i)
	}
	sb.WriteString(`</table><h3>Products</h3><ul>`)
	for i := 0; i < nProd; i++ {
		fmt.Fprintf(&sb, `<li><a href="/p%s%d">Product %s %d</a><br>price %d dollars</li>`,
			tag, i, tag, i, i)
	}
	sb.WriteString(`</ul></body>`)
	p := layout.Render(htmlparse.Parse(sb.String()))

	// Hand-build the refined sections (clustering is under test, not the
	// earlier pipeline).
	var sections []*sect.Section
	newsStart := 1
	news := sect.New(p, newsStart, newsStart+2*nNews)
	news.LBM = 0
	news.RBM = newsStart + 2*nNews
	for i := 0; i < nNews; i++ {
		news.Records = append(news.Records,
			visual.Block{Page: p, Start: newsStart + 2*i, End: newsStart + 2*i + 2})
	}
	sections = append(sections, news)
	prodStart := newsStart + 2*nNews + 1
	prod := sect.New(p, prodStart, prodStart+2*nProd)
	prod.LBM = prodStart - 1
	for i := 0; i < nProd; i++ {
		prod.Records = append(prod.Records,
			visual.Block{Page: p, Start: prodStart + 2*i, End: prodStart + 2*i + 2})
	}
	sections = append(sections, prod)
	return p, sections
}

func TestGroupInstancesByScheme(t *testing.T) {
	var pages []*PageSections
	for i, tag := range []string{"aa", "bb", "cc"} {
		n := 3 + i // varying record counts
		p, secs := twoSectionPage(n, 2+i, tag)
		pages = append(pages, &PageSections{Page: p, Query: []string{"q"}, Sections: secs})
	}
	groups := GroupInstances(pages, DefaultOptions())
	if len(groups) != 2 {
		for gi, g := range groups {
			for _, inst := range g.Instances {
				t.Logf("group %d: page %d %v lbm=%q", gi, inst.PageIndex,
					inst.Section, inst.Section.LBMText())
			}
		}
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	for _, g := range groups {
		if len(g.Instances) != 3 {
			t.Fatalf("group should span all 3 pages, got %d", len(g.Instances))
		}
		// All members of a group share the LBM text.
		lbm := g.Instances[0].Section.LBMText()
		for _, inst := range g.Instances[1:] {
			if inst.Section.LBMText() != lbm {
				t.Fatalf("mixed group: %q vs %q", lbm, inst.Section.LBMText())
			}
		}
	}
}

func TestGroupDanglingInstanceDropped(t *testing.T) {
	// Page 0 has News+Products; page 1 has News only.  Products on page 0
	// is dangling and must not form a group.
	p0, secs0 := twoSectionPage(3, 3, "aa")
	p1, secs1 := twoSectionPage(4, 0, "bb")
	pages := []*PageSections{
		{Page: p0, Query: []string{"q"}, Sections: secs0},
		{Page: p1, Query: []string{"q"}, Sections: secs1[:1]},
	}
	groups := GroupInstances(pages, DefaultOptions())
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1 (News only)", len(groups))
	}
	if got := groups[0].Instances[0].Section.LBMText(); got != "News" {
		t.Fatalf("surviving group LBM = %q", got)
	}
}

func TestGroupInstancesEmpty(t *testing.T) {
	if got := GroupInstances(nil, DefaultOptions()); len(got) != 0 {
		t.Fatalf("no pages should give no groups")
	}
}

func TestScoreDiscriminates(t *testing.T) {
	p0, secs0 := twoSectionPage(3, 3, "aa")
	p1, secs1 := twoSectionPage(4, 2, "bb")
	ps0 := &PageSections{Page: p0, Query: []string{"q"}, Sections: secs0}
	ps1 := &PageSections{Page: p1, Query: []string{"q"}, Sections: secs1}
	newsA := NewInstance(0, ps0, secs0[0])
	prodA := NewInstance(0, ps0, secs0[1])
	newsB := NewInstance(1, ps1, secs1[0])
	prodB := NewInstance(1, ps1, secs1[1])
	opt := DefaultOptions()
	if Score(newsA, newsB, opt) <= Score(newsA, prodB, opt) {
		t.Fatalf("same-schema score should beat cross-schema score")
	}
	if Score(prodA, prodB, opt) <= Score(prodA, newsB, opt) {
		t.Fatalf("same-schema score should beat cross-schema score")
	}
	if s := Score(newsA, newsB, opt); s < opt.MatchThreshold {
		t.Fatalf("same-schema score %g below threshold", s)
	}
}
