// Package cluster implements Section 5.6 of the MSE paper: grouping the
// refined section instances from all sample pages into clusters, one per
// section schema of the engine's result page schema.
//
// A matching score between two instances from different pages combines
// their tag-path similarity (the compact paths to the minimal subtrees
// containing their records), their boundary-marker similarity (cleaned LBM
// and RBM texts) and their tag-forest similarity (record structure).  The
// stable marriage algorithm — with a threshold allowing "no match" — pairs
// instances page by page; the resulting section instance graph is mined
// for maximal cliques of size two or more with Bron-Kerbosch, and each
// clique is one section instance group.  Dangling instances that match on
// no other page are dropped, exactly as the paper prescribes.
package cluster

import (
	"sort"

	"mse/internal/cancel"
	"mse/internal/dom"
	"mse/internal/dse"
	"mse/internal/editdist"
	"mse/internal/layout"
	"mse/internal/match"
	"mse/internal/par"
	"mse/internal/sect"
)

// Options control instance grouping.
type Options struct {
	// MatchThreshold is the minimum matching score for the modified
	// stable marriage (pairs below it stay unmatched).
	MatchThreshold float64
	// Weights of the three score components; they should sum to 1.
	PathWeight   float64
	SBMWeight    float64
	ForestWeight float64
	// Parallelism is the number of workers computing the pairwise score
	// matrix; 0 means GOMAXPROCS.  Scores land in an index-addressed
	// matrix, so the grouping result is identical at any setting.
	Parallelism int
	// Cancel, when non-nil, is polled by the score-matrix fill — the
	// quadratic heart of clustering — so a canceled context aborts the
	// grouping between instance pairs.  core.BuildWrapperCtx installs it;
	// it never needs to be set by hand.
	Cancel *cancel.Token
}

// DefaultOptions returns the tuned defaults.
func DefaultOptions() Options {
	return Options{
		MatchThreshold: 0.55,
		PathWeight:     0.35,
		SBMWeight:      0.35,
		ForestWeight:   0.30,
	}
}

// Instance is one refined section on one sample page.
type Instance struct {
	PageIndex int
	Section   *sect.Section

	// Cached match features.
	pref      dom.CompactPath
	lbmClean  string
	rbmClean  string
	recForest []*dom.Node
}

// Group is a cluster of instances belonging to one section schema.
type Group struct {
	Instances []*Instance
}

// PageSections is the refined section list of one sample page together
// with its rendering and query.
type PageSections struct {
	Page     *layout.Page
	Query    []string
	Sections []*sect.Section
}

// GroupInstances builds the section instance groups across sample pages.
func GroupInstances(pages []*PageSections, opt Options) []*Group {
	var instances []*Instance
	for pi, ps := range pages {
		for _, s := range ps.Sections {
			instances = append(instances, NewInstance(pi, ps, s))
		}
	}
	// Build the instance graph: stable-marriage matches per page pair.
	g := match.NewGraph(len(instances))
	byPage := map[int][]int{}
	for idx, inst := range instances {
		byPage[inst.PageIndex] = append(byPage[inst.PageIndex], idx)
	}
	var pageIDs []int
	for pi := range byPage {
		pageIDs = append(pageIDs, pi)
	}
	sort.Ints(pageIDs)
	// Precompute the cross-page score matrix: each symmetric instance pair
	// is scored exactly once (stable marriage re-reads scores many times
	// while building preference lists and running proposals), fanned out
	// over a worker pool.  Entries are written by pair index, so the matrix
	// — and everything downstream — is identical at any parallelism.
	n := len(instances)
	type pairIdx struct{ a, b int }
	var pairs []pairIdx
	for a := 0; a < len(pageIDs); a++ {
		for b := a + 1; b < len(pageIDs); b++ {
			for _, i := range byPage[pageIDs[a]] {
				for _, j := range byPage[pageIDs[b]] {
					pairs = append(pairs, pairIdx{i, j})
				}
			}
		}
	}
	scores := make([]float64, n*n)
	par.ForEachIndex(len(pairs), par.Workers(opt.Parallelism), func(k int) {
		opt.Cancel.Check()
		p := pairs[k]
		s := Score(instances[p.a], instances[p.b], opt)
		scores[p.a*n+p.b] = s
		scores[p.b*n+p.a] = s
	})
	for a := 0; a < len(pageIDs); a++ {
		for b := a + 1; b < len(pageIDs); b++ {
			opt.Cancel.Check()
			ia, ib := byPage[pageIDs[a]], byPage[pageIDs[b]]
			res := match.StableMarriage(len(ia), len(ib), func(i, j int) float64 {
				return scores[ia[i]*n+ib[j]]
			}, opt.MatchThreshold)
			for i, j := range res {
				if j >= 0 {
					g.AddEdge(ia[i], ib[j])
				}
			}
		}
	}
	cliques := g.MaximalCliques(2)
	// Larger cliques claim their instances first; an instance belongs to
	// exactly one group.
	sort.SliceStable(cliques, func(i, j int) bool { return len(cliques[i]) > len(cliques[j]) })
	used := make([]bool, len(instances))
	var groups []*Group
	for _, c := range cliques {
		var members []int
		for _, v := range c {
			if !used[v] {
				members = append(members, v)
			}
		}
		if len(members) >= 2 {
			grp := &Group{}
			for _, v := range members {
				used[v] = true
				grp.Instances = append(grp.Instances, instances[v])
			}
			groups = append(groups, grp)
		}
	}
	// Deterministic order: by first instance's page then line.
	sort.SliceStable(groups, func(i, j int) bool {
		a, b := groups[i].Instances[0], groups[j].Instances[0]
		if a.PageIndex != b.PageIndex {
			return a.PageIndex < b.PageIndex
		}
		return a.Section.Start < b.Section.Start
	})
	return groups
}

// NewInstance builds the match-feature cache for one section instance.
// Exported for wrapper construction and tests; GroupInstances calls it for
// every refined section.
func NewInstance(pi int, ps *PageSections, s *sect.Section) *Instance {
	inst := &Instance{PageIndex: pi, Section: s}
	if sub := ps.Page.SectionRoot(s.Start, s.End); sub != nil {
		inst.pref = dom.PathOf(sub).Compact()
	}
	if s.LBM >= 0 {
		inst.lbmClean = dse.CleanLine(&ps.Page.Lines[s.LBM], ps.Query)
	}
	if s.RBM >= 0 {
		inst.rbmClean = dse.CleanLine(&ps.Page.Lines[s.RBM], ps.Query)
	}
	if len(s.Records) > 0 {
		inst.recForest = s.Records[0].Forest()
	} else {
		inst.recForest = ps.Page.Forest(s.Start, s.End)
	}
	// Warm the structural fingerprints of the record forest so every later
	// comparison — including ones racing on a worker pool — finds them
	// cached on the nodes.
	if editdist.CacheEnabled() {
		for _, t := range inst.recForest {
			if t != nil {
				t.Fingerprint()
			}
		}
	}
	return inst
}

// Score computes the matching score between two instances (higher is more
// alike, in [0, 1]).
func Score(a, b *Instance, opt Options) float64 {
	pathSim := 0.0
	if len(a.pref) > 0 && len(b.pref) > 0 {
		d := dom.PathDistance(a.pref, b.pref)
		if d > 1 {
			d = 1
		}
		pathSim = 1 - d
	}
	sbmSim := sbmSimilarity(a, b)
	forestSim := 1 - editdist.ForestDistCancel(a.recForest, b.recForest, opt.Cancel)
	return opt.PathWeight*pathSim + opt.SBMWeight*sbmSim + opt.ForestWeight*forestSim
}

func sbmSimilarity(a, b *Instance) float64 {
	part := func(x, y string) float64 {
		switch {
		case x == "" && y == "":
			return 0.5 // both missing: weak evidence
		case x == "" || y == "":
			return 0
		case x == y:
			return 1
		default:
			return 1 - editdist.NormalizedStringDistance(x, y)
		}
	}
	return (part(a.lbmClean, b.lbmClean) + part(a.rbmClean, b.rbmClean)) / 2
}
