package layout

import (
	"bytes"
	"strconv"
	"strings"

	"mse/internal/dom"
)

// isBlockElement reports elements that open a new content line before and
// after their content.
func isBlockElement(tag string) bool {
	// A string switch, not a map set: the compiler lowers it to a
	// length-bucketed compare tree, keeping the per-element render walk
	// free of map hashing.
	switch tag {
	case "address", "article", "aside", "blockquote", "body", "center",
		"dd", "div", "dl", "dt", "fieldset", "footer", "form",
		"h1", "h2", "h3", "h4", "h5", "h6", "header", "li", "main", "nav",
		"ol", "p", "pre", "section", "table", "tbody", "td", "tfoot", "th",
		"thead", "tr", "ul", "caption":
		return true
	}
	return false
}

// isSkippedElement reports elements that render nothing at all.
func isSkippedElement(tag string) bool {
	switch tag {
	case "head", "script", "style", "title", "meta", "link", "base",
		"noscript", "template", "map":
		return true
	}
	return false
}

// fontSizeTable maps <font size=1..7> to pixel sizes.
var fontSizeTable = [8]int{0, 10, 13, 16, 18, 24, 32, 48}

// headingSizes maps h1..h6 to pixel sizes.
var headingSizes = map[string]int{
	"h1": 32, "h2": 24, "h3": 19, "h4": 16, "h5": 13, "h6": 11,
}

// walk traverses the DOM emitting content lines.  In a pruned render it
// additionally tracks marked candidate subtrees (content under them makes
// lines full, see RenderPooledPruned) and stops once the last outermost
// marked region has closed.
func (r *renderer) walk(n *dom.Node, ctx context) {
	if r.pruning {
		if r.halted() {
			return
		}
		if !ctx.full && n.Mark != 0 {
			ctx.full = true
			r.walkInner(n, ctx)
			r.closeOuter()
			return
		}
	}
	r.walkInner(n, ctx)
}

func (r *renderer) walkInner(n *dom.Node, ctx context) {
	r.checkpoint()
	switch n.Type {
	case dom.TextNode:
		t := appendCollapsed(r.sc.collapse[:0], n.Data)
		r.sc.collapse = t[:0]
		if len(bytes.TrimSpace(t)) == 0 {
			return
		}
		r.addBytes(t, n, ctx, kindText)
		return
	case dom.CommentNode, dom.DoctypeNode:
		return
	case dom.DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, ctx)
		}
		return
	}

	tag := n.Tag
	if isSkippedElement(tag) {
		return
	}

	switch tag {
	case "br":
		r.flush(true)
		return
	case "hr":
		r.flush(false)
		r.addBytes(nil, n, ctx, kindRule)
		r.flush(false)
		return
	case "img":
		alt, _ := n.Attr("alt")
		t := appendCollapsed(r.sc.collapse[:0], alt)
		r.sc.collapse = t[:0]
		r.addBytes(t, n, ctx, kindImage)
		return
	case "input", "select", "textarea", "button":
		if typ, _ := n.Attr("type"); typ == "hidden" {
			return
		}
		val, _ := n.Attr("value")
		t := appendCollapsed(r.sc.collapse[:0], val)
		r.sc.collapse = t[:0]
		r.addBytes(t, n, ctx, kindForm)
		// select/button may contain text children which also belong to the
		// form line.
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, ctx)
		}
		return
	}

	// Inherited state updates: presentational tag defaults, then matching
	// stylesheet rules, then the inline style attribute (highest
	// precedence).
	ctx.attr = applyTagAttr(tag, ctx.attr)
	ctx = r.sheet.applyText(n, ctx)
	if style, ok := n.Attr("style"); ok {
		ctx = applyInlineStyle(style, ctx)
	}
	switch tag {
	case "a":
		if href, ok := n.Attr("href"); ok {
			ctx.inLink = true
			ctx.href = href
			ctx.attr.Style |= Underline
			if ctx.attr.Color == defaultAttr().Color {
				ctx.attr.Color = "#0000ee"
			}
		}
	case "font":
		ctx.attr = applyFontTag(n, ctx.attr)
	}

	isBlock := isBlockElement(tag)
	if isBlock {
		r.flush(false)
		if ml := r.sheet.marginLeft(n); ml > 0 {
			ctx.x += ml
			ctx.width -= ml
		}
		ctx = adjustBlockContext(n, ctx)
	}

	if tag == "table" {
		r.walkTable(n, ctx)
	} else {
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, ctx)
		}
	}

	if isBlock {
		r.flush(false)
	}
}

// adjustBlockContext applies indentation effects of block containers.
func adjustBlockContext(n *dom.Node, ctx context) context {
	switch n.Tag {
	case "ul", "ol", "blockquote", "dd":
		ctx.x += indentStep
		ctx.width -= indentStep
	}
	if v, ok := n.Attr("style"); ok {
		if ml, ok := styleValue(v, "margin-left"); ok {
			if px, err := parsePx(ml); err == nil {
				ctx.x += px
				ctx.width -= px
			}
		}
	}
	if ctx.width < 40 {
		ctx.width = 40
	}
	return ctx
}

// walkTable lays out a table: each row's cells receive x offsets computed
// by dividing the available width across the row's cells (colspan counts
// as extra columns).
func (r *renderer) walkTable(table *dom.Node, ctx context) {
	for section := table.FirstChild; section != nil; section = section.NextSibling {
		// Table sections bypass walk(), so the pruned-render mark and halt
		// handling is replicated here.
		sctx := ctx
		closeSection := false
		if r.pruning {
			if r.halted() {
				return
			}
			if !sctx.full && section.Mark != 0 {
				sctx.full = true
				closeSection = true
			}
		}
		switch section.Tag {
		case "thead", "tbody", "tfoot":
			for row := section.FirstChild; row != nil; row = row.NextSibling {
				if row.Tag == "tr" {
					r.walkRow(row, sctx)
				} else {
					r.walk(row, sctx)
				}
			}
		case "tr":
			r.walkRow(section, sctx)
		case "caption", "colgroup", "col":
			if section.Tag == "caption" {
				r.walk(section, sctx)
			}
		default:
			r.walk(section, sctx)
		}
		if closeSection {
			r.closeOuter()
		}
	}
}

func (r *renderer) walkRow(row *dom.Node, ctx context) {
	// Rows bypass walk(): replicate its pruned-render mark handling.
	if r.pruning {
		if r.halted() {
			return
		}
		if !ctx.full && row.Mark != 0 {
			ctx.full = true
			r.walkRowInner(row, ctx)
			r.closeOuter()
			return
		}
	}
	r.walkRowInner(row, ctx)
}

func (r *renderer) walkRowInner(row *dom.Node, ctx context) {
	// Cells accumulate in the shared scratch buffers.  Nested tables re-enter
	// walkRow, so this frame only owns sc.cellBuf[base:] and indexes into it
	// (a nested row may grow — and reallocate — the buffer underneath us).
	sc := r.sc
	base := len(sc.cellBuf)
	total := 0
	for c := row.FirstChild; c != nil; c = c.NextSibling {
		if c.Tag == "td" || c.Tag == "th" {
			span := 1
			if v, ok := c.Attr("colspan"); ok {
				if s, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && s > 1 {
					span = s
				}
			}
			sc.cellBuf = append(sc.cellBuf, c)
			sc.spanBuf = append(sc.spanBuf, span)
			total += span
		}
	}
	if total == 0 {
		// A row without cells may still carry stray content.
		for c := row.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, ctx)
		}
		return
	}
	colWidth := ctx.width / total
	if colWidth < 20 {
		colWidth = 20
	}
	offset := 0
	for i := base; i < len(sc.cellBuf) && i < len(sc.spanBuf); i++ {
		cell, span := sc.cellBuf[i], sc.spanBuf[i]
		cctx := ctx
		cctx.x = ctx.x + offset*colWidth
		cctx.width = span * colWidth
		if cell.Tag == "th" {
			cctx.attr.Style |= Bold
		}
		// Cells bypass walk() too: handle marked cells here.
		closeCell := false
		if r.pruning {
			if r.halted() {
				break
			}
			if !cctx.full && cell.Mark != 0 {
				cctx.full = true
				closeCell = true
			}
		}
		r.flush(false)
		for c := cell.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, cctx)
		}
		r.flush(false)
		if closeCell {
			r.closeOuter()
		}
		offset += span
	}
	sc.cellBuf = sc.cellBuf[:base]
	sc.spanBuf = sc.spanBuf[:base]
}

// applyTagAttr updates text attributes for presentational tags.
func applyTagAttr(tag string, a TextAttr) TextAttr {
	switch tag {
	case "b", "strong":
		a.Style |= Bold
	case "i", "em", "cite", "var":
		a.Style |= Italic
	case "u", "ins":
		a.Style |= Underline
	case "small":
		a.Size -= 3
	case "big":
		a.Size += 3
	case "code", "tt", "pre", "kbd", "samp":
		a.Font = "monospace"
	case "h1", "h2", "h3", "h4", "h5", "h6":
		a.Size = headingSizes[tag]
		a.Style |= Bold
	}
	if a.Size < 6 {
		a.Size = 6
	}
	return a
}

// applyFontTag handles <font face= size= color=>.
func applyFontTag(n *dom.Node, a TextAttr) TextAttr {
	if face, ok := n.Attr("face"); ok && face != "" {
		a.Font = strings.ToLower(strings.TrimSpace(strings.Split(face, ",")[0]))
	}
	if col, ok := n.Attr("color"); ok && col != "" {
		a.Color = normalizeColor(col)
	}
	if sz, ok := n.Attr("size"); ok && sz != "" {
		sz = strings.TrimSpace(sz)
		rel := 0
		switch {
		case strings.HasPrefix(sz, "+"):
			rel = 1
			sz = sz[1:]
		case strings.HasPrefix(sz, "-"):
			rel = -1
			sz = sz[1:]
		}
		if v, err := strconv.Atoi(sz); err == nil {
			idx := v
			if rel != 0 {
				idx = 3 + rel*v // default font size index is 3
			}
			if idx < 1 {
				idx = 1
			}
			if idx > 7 {
				idx = 7
			}
			a.Size = fontSizeTable[idx]
		}
	}
	return a
}

// applyInlineStyle parses the CSS properties that affect text attributes
// and indentation out of a style="" attribute.
func applyInlineStyle(style string, ctx context) context {
	if v, ok := styleValue(style, "color"); ok {
		ctx.attr.Color = normalizeColor(v)
	}
	if v, ok := styleValue(style, "font-family"); ok {
		ctx.attr.Font = strings.ToLower(strings.TrimSpace(strings.Split(v, ",")[0]))
	}
	if v, ok := styleValue(style, "font-size"); ok {
		if px, err := parsePx(v); err == nil && px > 0 {
			ctx.attr.Size = px
		}
	}
	if v, ok := styleValue(style, "font-weight"); ok {
		switch strings.TrimSpace(v) {
		case "bold", "bolder", "600", "700", "800", "900":
			ctx.attr.Style |= Bold
		case "normal", "400":
			ctx.attr.Style &^= Bold
		}
	}
	if v, ok := styleValue(style, "font-style"); ok {
		switch strings.TrimSpace(v) {
		case "italic", "oblique":
			ctx.attr.Style |= Italic
		case "normal":
			ctx.attr.Style &^= Italic
		}
	}
	if v, ok := styleValue(style, "text-decoration"); ok {
		if strings.Contains(v, "underline") {
			ctx.attr.Style |= Underline
		} else if strings.Contains(v, "none") {
			ctx.attr.Style &^= Underline
		}
	}
	return ctx
}

// styleValue extracts the value of property prop from a CSS declaration
// list.
func styleValue(style, prop string) (string, bool) {
	for _, decl := range strings.Split(style, ";") {
		k, v, ok := strings.Cut(decl, ":")
		if !ok {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(k), prop) {
			return strings.TrimSpace(v), true
		}
	}
	return "", false
}

func parsePx(v string) (int, error) {
	v = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(v), "px"))
	return strconv.Atoi(v)
}

// normalizeColor lower-cases color names and expands #abc to #aabbcc.
func normalizeColor(c string) string {
	c = strings.ToLower(strings.TrimSpace(c))
	if len(c) == 4 && c[0] == '#' {
		return "#" + strings.Repeat(string(c[1]), 2) +
			strings.Repeat(string(c[2]), 2) + strings.Repeat(string(c[3]), 2)
	}
	if named, ok := cssNamedColors[c]; ok {
		return named
	}
	return c
}

var cssNamedColors = map[string]string{
	"black": "#000000", "white": "#ffffff", "red": "#ff0000",
	"green": "#008000", "blue": "#0000ff", "gray": "#808080",
	"grey": "#808080", "silver": "#c0c0c0", "maroon": "#800000",
	"navy": "#000080", "olive": "#808000", "purple": "#800080",
	"teal": "#008080", "yellow": "#ffff00", "orange": "#ffa500",
	"fuchsia": "#ff00ff", "aqua": "#00ffff", "lime": "#00ff00",
	"darkred": "#8b0000", "darkblue": "#00008b", "darkgreen": "#006400",
	"brown": "#a52a2a", "crimson": "#dc143c",
}
