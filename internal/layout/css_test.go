package layout

import (
	"testing"

	"mse/internal/htmlparse"
)

func TestCSSClassRule(t *testing.T) {
	p := render(`<html><head><style>
	.hd { font-weight: bold; color: #663300; font-size: 18px; }
	</style></head><body>
	<div class="hd">Section Heading</div>
	<div>plain line</div>
	</body></html>`)
	h := p.Lines[0].Attrs[0]
	if h.Style&Bold == 0 || h.Color != "#663300" || h.Size != 18 {
		t.Fatalf("class rule not applied: %+v", h)
	}
	b := p.Lines[1].Attrs[0]
	if b.Style&Bold != 0 || b.Color != "#000000" {
		t.Fatalf("rule leaked onto plain line: %+v", b)
	}
}

func TestCSSTagRule(t *testing.T) {
	p := render(`<html><head><style>p { color: red }</style></head>
	<body><p>styled</p><div>not styled</div></body></html>`)
	if p.Lines[0].Attrs[0].Color != "#ff0000" {
		t.Fatalf("tag rule not applied: %+v", p.Lines[0].Attrs[0])
	}
	if p.Lines[1].Attrs[0].Color == "#ff0000" {
		t.Fatalf("tag rule over-applied")
	}
}

func TestCSSTagClassAndIDRules(t *testing.T) {
	p := render(`<html><head><style>
	div.note { font-style: italic }
	#main { font-weight: bold }
	</style></head><body>
	<div class="note">a</div>
	<span class="note">b</span>
	<div id="main">c</div>
	</body></html>`)
	if p.Lines[0].Attrs[0].Style&Italic == 0 {
		t.Fatalf("div.note rule missed the div")
	}
	// span.note is inline: joins the div's line or its own? spans are
	// inline so "b" lands on its own line only because of block divs
	// around it; the rule div.note must NOT match a span.
	if p.Lines[1].Attrs[0].Style&Italic != 0 {
		t.Fatalf("div.note rule matched a span")
	}
	if p.Lines[2].Attrs[0].Style&Bold == 0 {
		t.Fatalf("#main rule missed")
	}
}

func TestCSSCommaListAndLastRuleWins(t *testing.T) {
	p := render(`<html><head><style>
	.a, .b { color: blue }
	.b { color: green }
	</style></head><body>
	<div class="a">first</div>
	<div class="b">second</div>
	</body></html>`)
	if p.Lines[0].Attrs[0].Color != "#0000ff" {
		t.Fatalf("comma selector missed: %+v", p.Lines[0].Attrs[0])
	}
	if p.Lines[1].Attrs[0].Color != "#008000" {
		t.Fatalf("later rule should win: %+v", p.Lines[1].Attrs[0])
	}
}

func TestCSSInlineStyleBeatsSheet(t *testing.T) {
	p := render(`<html><head><style>.x { color: red }</style></head>
	<body><div class="x" style="color: blue">both</div></body></html>`)
	if p.Lines[0].Attrs[0].Color != "#0000ff" {
		t.Fatalf("inline style should win over sheet: %+v", p.Lines[0].Attrs[0])
	}
}

func TestCSSMarginLeft(t *testing.T) {
	p := render(`<html><head><style>.ind { margin-left: 30px }</style></head>
	<body><div>base</div><div class="ind">indented</div></body></html>`)
	if p.Lines[1].X != p.Lines[0].X+30 {
		t.Fatalf("sheet margin-left not applied: %d vs %d", p.Lines[1].X, p.Lines[0].X)
	}
}

func TestCSSCommentsAndJunkIgnored(t *testing.T) {
	p := render(`<html><head><style>
	/* a comment { with braces } */
	.x { color: red } /* trailing */
	div > p { color: blue }   /* combinator: skipped */
	a:hover { color: green }  /* pseudo: skipped */
	</style></head><body>
	<div class="x">x</div><p>child</p></body></html>`)
	if p.Lines[0].Attrs[0].Color != "#ff0000" {
		t.Fatalf("rule after comment lost")
	}
	if p.Lines[1].Attrs[0].Color == "#0000ff" {
		t.Fatalf("combinator selector should be skipped")
	}
}

func TestCSSMalformedNeverPanics(t *testing.T) {
	for _, css := range []string{
		"{", "}", "{}", "a {", ".x color: red }", "/* unterminated",
		"....", "@media screen { .x { color: red } }",
	} {
		p := render(`<html><head><style>` + css + `</style></head><body><p>x</p></body></html>`)
		if len(p.Lines) == 0 {
			t.Fatalf("content lost with css %q", css)
		}
	}
}

func TestParseSimpleSelector(t *testing.T) {
	cases := []struct {
		sel      string
		ok       bool
		tag, cls string
		idWant   string
	}{
		{"p", true, "p", "", ""},
		{".hd", true, "", "hd", ""},
		{"div.hd", true, "div", "hd", ""},
		{"#main", true, "", "", "main"},
		{"DIV", true, "div", "", ""},
		{"*", false, "", "", ""},
		{"", false, "", "", ""},
		{"div p", false, "", "", ""},
		{"a:visited", false, "", "", ""},
	}
	for _, c := range cases {
		r, ok := parseSimpleSelector(c.sel)
		if ok != c.ok {
			t.Errorf("parseSimpleSelector(%q) ok=%v want %v", c.sel, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if r.tag != c.tag || r.class != c.cls || r.id != c.idWant {
			t.Errorf("parseSimpleSelector(%q) = %+v", c.sel, r)
		}
	}
}

func TestStylesheetNilSafe(t *testing.T) {
	var s *stylesheet
	n := htmlparse.Parse(`<p>x</p>`).FindAll("p")[0]
	ctx := context{attr: defaultAttr()}
	if got := s.applyText(n, ctx); got.attr != ctx.attr {
		t.Fatalf("nil sheet changed context")
	}
	if s.marginLeft(n) != 0 {
		t.Fatalf("nil sheet margin nonzero")
	}
}
