package layout

import (
	"strings"
	"testing"
	"testing/quick"

	"mse/internal/dom"
	"mse/internal/htmlparse"
)

// TestQuickRenderInvariants renders arbitrary tag soup assembled from a
// realistic fragment alphabet and checks the structural invariants every
// downstream stage relies on.
func TestQuickRenderInvariants(t *testing.T) {
	frags := []string{
		"<table>", "</table>", "<tr>", "<td>", "text content", "<li>",
		"<ul>", "</ul>", "<p>", "<b>", "</b>", "<br>", "<hr>",
		`<a href="/x">link</a>`, `<img src=i alt=pic>`, "<div>", "</div>",
		`<font color=red size=4>`, "</font>", "<h3>head</h3>",
		`<div style="margin-left: 20px">`, "123", "&amp;",
		`<style>.x{color:blue}</style>`, `<span class="x">styled</span>`,
	}
	f := func(picks []uint16) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(frags[int(p)%len(frags)])
		}
		page := Render(htmlparse.Parse(sb.String()))

		// Invariant 1: line numbers are sequential from zero.
		for i, l := range page.Lines {
			if l.Num != i {
				return false
			}
		}
		// Invariant 2: every non-blank line has leaves; leaves appear in
		// document order across lines.
		lastLeafOrder := -1
		order := map[*dom.Node]int{}
		idx := 0
		page.Doc.Walk(func(n *dom.Node) bool {
			order[n] = idx
			idx++
			return true
		})
		for _, l := range page.Lines {
			if l.Type != BlankLine && len(l.Leaves) == 0 {
				return false
			}
			for _, leaf := range l.Leaves {
				if order[leaf] < lastLeafOrder {
					return false
				}
				lastLeafOrder = order[leaf]
			}
		}
		// Invariant 3: spans are consistent — a node's span contains the
		// spans of all its children that have one.
		ok := true
		page.Doc.Walk(func(n *dom.Node) bool {
			ps, pe, pok := page.Span(n)
			if !pok {
				return true
			}
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				cs, ce, cok := page.Span(c)
				if cok && (cs < ps || ce > pe) {
					ok = false
				}
			}
			return ok
		})
		if !ok {
			return false
		}
		// Invariant 4: Forest of the full range tiles without overlap.
		roots := page.Forest(0, len(page.Lines))
		seen := map[*dom.Node]bool{}
		for _, r := range roots {
			if seen[r] {
				return false
			}
			seen[r] = true
			for _, o := range roots {
				if o != r && (r.IsAncestorOf(o) || o.IsAncestorOf(r)) {
					return false
				}
			}
		}
		// Invariant 5: X coordinates are non-negative and within a sane
		// multiple of the viewport.
		for _, l := range page.Lines {
			if l.X < 0 || l.X > 10*pageWidth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// TestRenderIdempotentOnSamePage checks that rendering the same document
// twice yields identical lines (no hidden state).
func TestRenderIdempotentOnSamePage(t *testing.T) {
	doc := htmlparse.Parse(`<body><h3>S</h3><table>
	<tr><td><a href=1>A</a><br>s1</td></tr>
	<tr><td><a href=2>B</a><br>s2</td></tr></table></body>`)
	a := Render(doc)
	b := Render(doc)
	if len(a.Lines) != len(b.Lines) {
		t.Fatalf("line counts differ across renders")
	}
	for i := range a.Lines {
		la, lb := a.Lines[i], b.Lines[i]
		if la.Text != lb.Text || la.X != lb.X || la.Type != lb.Type {
			t.Fatalf("line %d differs across renders", i)
		}
	}
}
