package layout

import (
	"strings"

	"mse/internal/dom"
)

// The layout simulator honours a small but practically sufficient subset
// of CSS: rules from <style> blocks with simple selectors (tag, .class,
// tag.class, #id, and comma lists thereof), cascading in document order,
// with inline style="" attributes applied last.  Descendant/child
// combinators and pseudo-classes are ignored, as are properties other
// than the text attributes (font-family, font-size, font-weight,
// font-style, color, text-decoration) and margin-left.

// cssRule is one parsed rule: a simple selector plus its declarations.
type cssRule struct {
	tag   string // required element tag, or ""
	class string // required class, or ""
	id    string // required id, or ""
	decls string // raw declaration list, applied via applyInlineStyle
}

// stylesheet is the ordered list of rules on a page.
type stylesheet struct {
	rules []cssRule
}

// collectStylesheet parses every <style> element of the document.
func collectStylesheet(doc *dom.Node) *stylesheet {
	sheet := &stylesheet{}
	doc.Walk(func(n *dom.Node) bool {
		if n.Type == dom.ElementNode && n.Tag == "style" {
			sheet.parse(n.TextContent())
			return false
		}
		return true
	})
	return sheet
}

// parse adds the rules of one CSS source block.
func (s *stylesheet) parse(src string) {
	src = stripCSSComments(src)
	for len(src) > 0 {
		open := strings.IndexByte(src, '{')
		if open < 0 {
			return
		}
		closeIdx := strings.IndexByte(src[open:], '}')
		if closeIdx < 0 {
			return
		}
		selectors := src[:open]
		decls := src[open+1 : open+closeIdx]
		src = src[open+closeIdx+1:]
		for _, sel := range strings.Split(selectors, ",") {
			if r, ok := parseSimpleSelector(strings.TrimSpace(sel)); ok {
				r.decls = decls
				s.rules = append(s.rules, r)
			}
		}
	}
}

// parseSimpleSelector handles tag, .class, #id, and tag.class forms.
// Selectors with combinators (spaces, >, +) or pseudo-classes are skipped.
func parseSimpleSelector(sel string) (cssRule, bool) {
	if sel == "" || strings.ContainsAny(sel, " >+~:[") {
		return cssRule{}, false
	}
	var r cssRule
	rest := sel
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		r.id = rest[i+1:]
		rest = rest[:i]
		if j := strings.IndexByte(r.id, '.'); j >= 0 {
			r.class = r.id[j+1:]
			r.id = r.id[:j]
		}
	}
	if i := strings.IndexByte(rest, '.'); i >= 0 {
		r.class = rest[i+1:]
		rest = rest[:i]
	}
	r.tag = strings.ToLower(rest)
	if r.tag == "*" {
		r.tag = ""
	}
	if r.tag == "" && r.class == "" && r.id == "" {
		return cssRule{}, false
	}
	return r, true
}

// matches reports whether the rule applies to element n.
func (r cssRule) matches(n *dom.Node) bool {
	if r.tag != "" && n.Tag != r.tag {
		return false
	}
	if r.id != "" {
		id, _ := n.Attr("id")
		if id != r.id {
			return false
		}
	}
	if r.class != "" {
		cls, _ := n.Attr("class")
		if !hasClass(cls, r.class) {
			return false
		}
	}
	return true
}

func hasClass(attr, want string) bool {
	for _, c := range strings.Fields(attr) {
		if c == want {
			return true
		}
	}
	return false
}

// applyText cascades the text-attribute declarations of the sheet's
// matching rules onto the context (in rule order; later rules win).
func (s *stylesheet) applyText(n *dom.Node, ctx context) context {
	if s == nil || len(s.rules) == 0 || n.Type != dom.ElementNode {
		return ctx
	}
	for _, r := range s.rules {
		if r.matches(n) {
			ctx = applyInlineStyle(r.decls, ctx)
		}
	}
	return ctx
}

// marginLeft returns the margin-left (px) the sheet assigns to a block
// element, 0 when none.
func (s *stylesheet) marginLeft(n *dom.Node) int {
	if s == nil {
		return 0
	}
	margin := 0
	for _, r := range s.rules {
		if !r.matches(n) {
			continue
		}
		if ml, ok := styleValue(r.decls, "margin-left"); ok {
			if px, err := parsePx(ml); err == nil && px > 0 {
				margin = px
			}
		}
	}
	return margin
}

func stripCSSComments(s string) string {
	for {
		i := strings.Index(s, "/*")
		if i < 0 {
			return s
		}
		j := strings.Index(s[i+2:], "*/")
		if j < 0 {
			return s[:i]
		}
		s = s[:i] + " " + s[i+2+j+2:]
	}
}
