package layout

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
)

func render(src string) *Page {
	return Render(htmlparse.Parse(src))
}

func lineTexts(p *Page) []string {
	out := make([]string, len(p.Lines))
	for i, l := range p.Lines {
		out[i] = l.Text
	}
	return out
}

func TestRenderBlocksBecomeLines(t *testing.T) {
	p := render(`<body><p>one</p><p>two</p><div>three</div></body>`)
	got := lineTexts(p)
	want := []string{"one", "two", "three"}
	if len(got) != len(want) {
		t.Fatalf("lines = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lines = %v, want %v", got, want)
		}
	}
}

func TestRenderInlineStaysOnOneLine(t *testing.T) {
	p := render(`<body><p>a <b>bold</b> and <a href="x">link</a> end</p></body>`)
	if len(p.Lines) != 1 {
		t.Fatalf("want 1 line, got %d: %v", len(p.Lines), lineTexts(p))
	}
	l := p.Lines[0]
	if l.Text != "a bold and link end" {
		t.Fatalf("text = %q", l.Text)
	}
	if l.Type != LinkTextLine {
		t.Fatalf("type = %v, want link-text", l.Type)
	}
	if len(l.Links) != 1 || l.Links[0] != "x" {
		t.Fatalf("links = %v", l.Links)
	}
}

func TestRenderLineTypes(t *testing.T) {
	cases := []struct {
		src  string
		want LineType
	}{
		{`<p>plain</p>`, TextLine},
		{`<p><a href=u>only link</a></p>`, LinkLine},
		{`<p>text <a href=u>link</a></p>`, LinkTextLine},
		{`<p><img src=i></p>`, ImageLine},
		{`<p><img src=i> caption</p>`, ImageTextLine},
		{`<p><input type=text value=q></p>`, FormLine},
		{`<hr>`, RuleLine},
	}
	for _, c := range cases {
		p := render("<body>" + c.src + "</body>")
		if len(p.Lines) != 1 {
			t.Errorf("%s: got %d lines", c.src, len(p.Lines))
			continue
		}
		if p.Lines[0].Type != c.want {
			t.Errorf("%s: type = %v, want %v", c.src, p.Lines[0].Type, c.want)
		}
	}
}

func TestRenderBrSplitsLines(t *testing.T) {
	p := render(`<body><p>first<br>second</p></body>`)
	got := lineTexts(p)
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("lines = %v", got)
	}
}

func TestRenderDoubleBrMakesBlankLine(t *testing.T) {
	p := render(`<body><p>first<br><br>second</p></body>`)
	if len(p.Lines) != 3 {
		t.Fatalf("lines = %v", lineTexts(p))
	}
	if p.Lines[1].Type != BlankLine {
		t.Fatalf("middle line type = %v, want blank", p.Lines[1].Type)
	}
}

func TestRenderListIndentation(t *testing.T) {
	p := render(`<body><p>top</p><ul><li>item1</li><li>item2</li></ul></body>`)
	if len(p.Lines) != 3 {
		t.Fatalf("lines = %v", lineTexts(p))
	}
	top, i1, i2 := p.Lines[0], p.Lines[1], p.Lines[2]
	if i1.X != top.X+indentStep {
		t.Fatalf("item x = %d, want %d", i1.X, top.X+indentStep)
	}
	if i1.X != i2.X {
		t.Fatalf("list items should align: %d vs %d", i1.X, i2.X)
	}
}

func TestRenderNestedListIndentsFurther(t *testing.T) {
	p := render(`<body><ul><li>a</li><ul><li>b</li></ul></ul></body>`)
	if p.Lines[1].X != p.Lines[0].X+indentStep {
		t.Fatalf("nested item not indented further: %d vs %d", p.Lines[1].X, p.Lines[0].X)
	}
}

func TestRenderTableColumns(t *testing.T) {
	p := render(`<body><table><tr><td>left</td><td>right</td></tr><tr><td>l2</td><td>r2</td></tr></table></body>`)
	if len(p.Lines) != 4 {
		t.Fatalf("lines = %v", lineTexts(p))
	}
	// Cells in the same column must share x; second column is to the right.
	if p.Lines[0].X != p.Lines[2].X {
		t.Fatalf("column 0 misaligned: %d vs %d", p.Lines[0].X, p.Lines[2].X)
	}
	if p.Lines[1].X != p.Lines[3].X {
		t.Fatalf("column 1 misaligned")
	}
	if p.Lines[1].X <= p.Lines[0].X {
		t.Fatalf("column 1 should be right of column 0")
	}
}

func TestRenderColspan(t *testing.T) {
	p := render(`<body><table>
		<tr><td colspan=2>wide</td></tr>
		<tr><td>a</td><td>b</td></tr>
	</table></body>`)
	if len(p.Lines) != 3 {
		t.Fatalf("lines = %v", lineTexts(p))
	}
	if p.Lines[0].X != p.Lines[1].X {
		t.Fatalf("colspan cell should start at column 0")
	}
}

func TestRenderTextAttributes(t *testing.T) {
	p := render(`<body><p><b>Header</b></p><p><font color="red" size="2">note</font></p></body>`)
	h := p.Lines[0]
	if len(h.Attrs) != 1 || h.Attrs[0].Style&Bold == 0 {
		t.Fatalf("bold attr missing: %+v", h.Attrs)
	}
	n := p.Lines[1]
	if n.Attrs[0].Color != "#ff0000" {
		t.Fatalf("color = %q, want #ff0000", n.Attrs[0].Color)
	}
	if n.Attrs[0].Size != fontSizeTable[2] {
		t.Fatalf("size = %d, want %d", n.Attrs[0].Size, fontSizeTable[2])
	}
}

func TestRenderHeadingAttr(t *testing.T) {
	p := render(`<body><h2>Section Title</h2><p>body text</p></body>`)
	h, b := p.Lines[0], p.Lines[1]
	if h.Attrs[0].Size != headingSizes["h2"] || h.Attrs[0].Style&Bold == 0 {
		t.Fatalf("heading attrs = %+v", h.Attrs)
	}
	if b.Attrs[0] == h.Attrs[0] {
		t.Fatalf("heading and body should have distinct attrs")
	}
}

func TestRenderInlineStyle(t *testing.T) {
	p := render(`<body><p style="color: #ABC; font-weight: bold; font-size: 20px">styled</p></body>`)
	a := p.Lines[0].Attrs[0]
	if a.Color != "#aabbcc" {
		t.Fatalf("color = %q", a.Color)
	}
	if a.Style&Bold == 0 {
		t.Fatalf("bold missing")
	}
	if a.Size != 20 {
		t.Fatalf("size = %d", a.Size)
	}
}

func TestRenderMarginLeftIndents(t *testing.T) {
	p := render(`<body><div>a</div><div style="margin-left: 25px">b</div></body>`)
	if p.Lines[1].X != p.Lines[0].X+25 {
		t.Fatalf("margin-left not applied: %d vs %d", p.Lines[1].X, p.Lines[0].X)
	}
}

func TestRenderLinkAttr(t *testing.T) {
	p := render(`<body><p><a href="u">go</a></p></body>`)
	a := p.Lines[0].Attrs[0]
	if a.Style&Underline == 0 || a.Color != "#0000ee" {
		t.Fatalf("link attr = %+v", a)
	}
}

func TestRenderMixedAttrsInOneLine(t *testing.T) {
	p := render(`<body><p>plain <b>bold</b> <i>italic</i></p></body>`)
	if len(p.Lines[0].Attrs) != 3 {
		t.Fatalf("want 3 distinct attrs, got %+v", p.Lines[0].Attrs)
	}
}

func TestRenderSkipsHeadAndScript(t *testing.T) {
	p := render(`<html><head><title>T</title><style>.x{}</style></head>
		<body><script>var x=1;</script><p>visible</p></body></html>`)
	if len(p.Lines) != 1 || p.Lines[0].Text != "visible" {
		t.Fatalf("lines = %v", lineTexts(p))
	}
}

func TestRenderPathsPointIntoTree(t *testing.T) {
	p := render(`<body><table><tr><td>a</td></tr><tr><td>b</td></tr></table></body>`)
	for _, l := range p.Lines {
		if len(l.Leaves) == 0 {
			t.Fatalf("line %q has no leaves", l.Text)
		}
		if len(l.CPath) == 0 {
			t.Fatalf("line %q has no compact path", l.Text)
		}
	}
	// The two td text paths must be compatible (same C-node sequence).
	if !p.Lines[0].CPath.Compatible(p.Lines[1].CPath) {
		t.Fatalf("sibling-row cells should have compatible paths")
	}
}

func TestSpanAndForest(t *testing.T) {
	p := render(`<body>
		<div id=s1><p>r1 line1</p><p>r1 line2</p></div>
		<div id=s2><p>r2 line1</p></div>
	</body>`)
	if len(p.Lines) != 3 {
		t.Fatalf("lines = %v", lineTexts(p))
	}
	divs := p.Doc.FindAll("div")
	first, last, ok := p.Span(divs[0])
	if !ok || first != 0 || last != 1 {
		t.Fatalf("span(div1) = %d,%d,%v", first, last, ok)
	}
	forest := p.Forest(0, 2)
	if len(forest) != 1 || forest[0] != divs[0] {
		t.Fatalf("Forest(0,2) = %v, want [div1]", forest)
	}
	// A range covering only the first line should return the <p>, not the
	// whole div.
	forest = p.Forest(0, 1)
	if len(forest) != 1 || forest[0].Tag != "p" {
		t.Fatalf("Forest(0,1) = %v, want [p]", forest)
	}
	// The whole page range returns the single highest covering node, which
	// is the document itself.
	forest = p.Forest(0, 3)
	if len(forest) != 1 || forest[0] != p.Doc {
		t.Fatalf("Forest(0,3) = %v, want [#document]", forest)
	}
}

func TestMinimalSubtree(t *testing.T) {
	p := render(`<body><div><p>a</p><p>b</p></div><p>c</p></body>`)
	st := p.MinimalSubtree(0, 2)
	if st == nil || st.Tag != "div" {
		t.Fatalf("MinimalSubtree(0,2) = %v", st)
	}
	st = p.MinimalSubtree(0, 3)
	if st == nil || st.Tag != "body" {
		t.Fatalf("MinimalSubtree(0,3) = %v", st)
	}
	if got := p.MinimalSubtree(1, 1); got != nil {
		t.Fatalf("empty range should yield nil")
	}
}

func TestRenderImageAltText(t *testing.T) {
	p := render(`<body><p><img src=x alt="logo"> Store</p></body>`)
	if p.Lines[0].Text != "logo Store" {
		t.Fatalf("text = %q", p.Lines[0].Text)
	}
	if p.Lines[0].Type != ImageTextLine {
		t.Fatalf("type = %v", p.Lines[0].Type)
	}
}

func TestRenderHiddenInputInvisible(t *testing.T) {
	p := render(`<body><p>q<input type=hidden value=v></p></body>`)
	if p.Lines[0].Type != TextLine {
		t.Fatalf("hidden input should not make a form line")
	}
}

func TestRenderWhitespaceCollapsing(t *testing.T) {
	p := render("<body><p>a \n\t  b&nbsp;&nbsp;c</p></body>")
	if p.Lines[0].Text != "a b c" {
		t.Fatalf("text = %q", p.Lines[0].Text)
	}
}

func TestRenderRealisticResultPage(t *testing.T) {
	// A miniature multi-section result page in the style of Figure 1.
	src := `<html><body>
	<div>Your search returned 578 matches.</div>
	<h3>Encyclopedia</h3>
	<table>
	  <tr><td>1.</td><td><a href="/e1">Knee Injury</a><br>Knee Injury</td></tr>
	  <tr><td>2.</td><td><a href="/e2">Ultrasound</a><br>Ultrasound</td></tr>
	  <tr><td>3.</td><td><a href="/e3">Colic</a><br>Colic</td></tr>
	</table>
	<a href="/more1">Click Here for More</a>
	<h3>News</h3>
	<table>
	  <tr><td>1.</td><td><a href="/n1">AMA Guides</a><br>Snippet one</td></tr>
	  <tr><td>2.</td><td><a href="/n2">Mental Illness</a><br>Snippet two</td></tr>
	</table>
	</body></html>`
	p := render(src)
	txt := strings.Join(lineTexts(p), "|")
	for _, want := range []string{"Encyclopedia", "Knee Injury", "News", "AMA Guides"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("missing %q in %s", want, txt)
		}
	}
	// Record first lines ("1.", "2.", …) must share a position code, and
	// their link lines must share another.
	var numX, linkX []int
	for _, l := range p.Lines {
		if l.Text == "1." || l.Text == "2." || l.Text == "3." {
			numX = append(numX, l.X)
		}
		if l.Type == LinkLine && strings.HasPrefix(l.Links[0], "/e") {
			linkX = append(linkX, l.X)
		}
	}
	for _, x := range numX[1:] {
		if x != numX[0] {
			t.Fatalf("record-number cells misaligned: %v", numX)
		}
	}
	for _, x := range linkX[1:] {
		if x != linkX[0] {
			t.Fatalf("record links misaligned: %v", linkX)
		}
	}
}
