// Package layout is the rendering substrate of the MSE reproduction.  The
// paper (following ViNTs [29]) renders result pages in a browser and reads
// visual features off the rendered page: content lines, their left x
// coordinates (position codes), their appearance types (type codes) and
// their text attributes (font, size, style, color).  This package replaces
// the browser with a deterministic box-model layout simulator:
//
//   - block-level elements (div, p, tr, td, li, headings, …) open new
//     content lines; inline elements (a, b, font, span, img, …) append to
//     the current line;
//   - tables divide the available width across columns, lists and
//     blockquotes indent by fixed amounts, so aligned records receive equal
//     position codes;
//   - presentational tags (<b>, <i>, <font>, <h1>…) and inline style=""
//     attributes cascade into text attributes.
//
// The MSE algorithms consume only the *relative* visual regularity of a
// page (records aligned at the same x, headers in a distinct font), which
// this simulator reproduces; absolute pixel fidelity is irrelevant.
package layout

import (
	"sync"

	"mse/internal/cancel"
	"mse/internal/dom"
)

// LineType is the type code of a content line.  ViNTs defines eight basic
// content-line appearance classes; these are the ones used here.
type LineType int

const (
	// TextLine contains plain text only.
	TextLine LineType = iota
	// LinkLine contains anchor text only.
	LinkLine
	// LinkTextLine mixes anchor text and plain text.
	LinkTextLine
	// ImageLine contains images only.
	ImageLine
	// ImageTextLine mixes images with text or links.
	ImageTextLine
	// FormLine contains form controls.
	FormLine
	// RuleLine is a horizontal rule (<hr>).
	RuleLine
	// BlankLine is an empty line produced by consecutive explicit breaks.
	BlankLine

	numLineTypes = int(BlankLine) + 1
)

// String returns the conventional name of the line type.
func (t LineType) String() string {
	switch t {
	case TextLine:
		return "text"
	case LinkLine:
		return "link"
	case LinkTextLine:
		return "link-text"
	case ImageLine:
		return "image"
	case ImageTextLine:
		return "image-text"
	case FormLine:
		return "form"
	case RuleLine:
		return "rule"
	case BlankLine:
		return "blank"
	}
	return "unknown"
}

// NumLineTypes is the number of distinct content-line types.
func NumLineTypes() int { return numLineTypes }

// StyleFlags is a bit set of font styles.
type StyleFlags uint8

// Font style bits.
const (
	Bold StyleFlags = 1 << iota
	Italic
	Underline
)

// TextAttr is the quaternion ⟨f, w, s, c⟩ of Section 4.2: font family,
// size, style and color of a piece of text.
type TextAttr struct {
	Font  string
	Size  int
	Style StyleFlags
	Color string
}

// Line is a content line of a rendered page: a group of characters that
// form one horizontal line, with its visual features and the DOM leaves
// that produced it.
type Line struct {
	// Num is the index of the line within Page.Lines (the paper's line
	// number, 0-based here).
	Num int
	// Text is the visible text of the line (link texts included, image alt
	// texts included).
	Text string
	// X is the position code: the left-most x coordinate on the rendered
	// page.
	X int
	// Type is the type code.
	Type LineType
	// Attrs is the line text attribute la: the set of distinct text
	// attributes appearing in the line, in order of first appearance.
	Attrs []TextAttr
	// Leaves are the DOM leaf nodes (text, img, input, hr, …) that
	// contribute to the line, in document order.
	Leaves []*dom.Node
	// Path is the tag path of the first contributing leaf; CPath is its
	// compact form.  They locate the line within the page's DOM tree.
	Path  dom.TagPath
	CPath dom.CompactPath
	// Links holds the href values of anchors contributing to the line.
	Links []string
}

// HasAttr reports whether the line contains text with attribute a.
func (l *Line) HasAttr(a TextAttr) bool {
	for _, x := range l.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// Page is a rendered result page: its DOM plus the ordered content lines,
// with an index from DOM nodes to the line ranges they cover.
type Page struct {
	Doc   *dom.Node
	Lines []Line

	// The node→line-span index lives on the DOM nodes themselves
	// (dom.Node.SpanStart/SpanEnd), written by mergeSpan during the render
	// walk; Span and computeForest read it back.  Node-resident spans keep
	// the hot path free of map hashing and of a per-render map allocation.

	// forests memoizes Forest results by line range: record and section
	// comparisons query the same ranges over and over (every pairwise
	// record distance re-derives both forests), and the DOM is immutable
	// once rendered, so the walk only ever needs to happen once per range.
	// Guarded by fmu; callers treat the returned slice as read-only.
	fmu     sync.Mutex
	forests map[[2]int][]*dom.Node

	// scratch backs Lines, span, forests and the per-line slices; pooled
	// marks pages whose scratch returns to the render pool on Release.
	scratch *renderScratch
	pooled  bool
}

// Span returns the inclusive [first, last] line range covered by n and
// whether n renders any content at all.
func (p *Page) Span(n *dom.Node) (first, last int, ok bool) {
	if n.SpanEnd == 0 {
		return 0, 0, false
	}
	return int(n.SpanStart), int(n.SpanEnd) - 1, true
}

// Forest returns the minimal tag forest covering content lines
// [start, end): the list of highest DOM nodes whose rendered content lies
// entirely within the range, in document order.  This is the "tag forest
// underneath" a record or section from Section 4.1.
func (p *Page) Forest(start, end int) []*dom.Node {
	if start >= end {
		return nil
	}
	key := [2]int{start, end}
	p.fmu.Lock()
	out, ok := p.forests[key]
	p.fmu.Unlock()
	if ok {
		return out
	}
	out = p.computeForest(start, end)
	p.fmu.Lock()
	if p.forests == nil {
		p.forests = make(map[[2]int][]*dom.Node)
	}
	p.forests[key] = out
	p.fmu.Unlock()
	return out
}

func (p *Page) computeForest(start, end int) []*dom.Node {
	var out []*dom.Node
	p.Doc.Walk(func(n *dom.Node) bool {
		if n.SpanEnd == 0 {
			return true // no rendered content below; keep descending
		}
		s := [2]int{int(n.SpanStart), int(n.SpanEnd) - 1}
		if s[0] >= start && s[1] < end {
			out = append(out, n)
			return false // whole subtree inside: this is a forest root
		}
		if s[1] < start || s[0] >= end {
			return false // disjoint: skip subtree
		}
		return true // partial overlap: descend
	})
	return out
}

// MinimalSubtree returns the deepest single DOM node covering all the
// lines in [start, end), or nil when the range is empty.
func (p *Page) MinimalSubtree(start, end int) *dom.Node {
	var nodes []*dom.Node
	for i := start; i < end && i < len(p.Lines); i++ {
		nodes = append(nodes, p.Lines[i].Leaves...)
	}
	return dom.MinimalSubtree(nodes)
}

// SectionRoot returns the subtree node that stands for a section covering
// [start, end): the single highest node whose rendered content is exactly
// the range when one exists, and the deepest common ancestor otherwise.
// Unlike MinimalSubtree, the result does not sink into the record when a
// section happens to hold a single record — the wrapper pref must sit at
// the same tree level regardless of how many records a query returned.
func (p *Page) SectionRoot(start, end int) *dom.Node {
	f := p.Forest(start, end)
	if len(f) == 1 {
		return f[0]
	}
	return p.MinimalSubtree(start, end)
}

// Render lays out a parsed page and extracts its content lines in preorder
// (document) order, implementing Step 1 of the MSE algorithm.  The page's
// allocations are batched through a fresh scratch that is reclaimed by the
// garbage collector along with the page.
func Render(doc *dom.Node) *Page {
	p, _ := renderWith(doc, new(renderScratch), false, nil, renderModeFull, 0)
	return p
}

// RenderCancel is Render polling a cancellation token every checkpointStride
// nodes of the DOM walk, so rendering a pathological page aborts promptly
// when the caller's context is canceled (the walk panics with
// cancel.Signal; the boundary that created the token recovers it).
func RenderCancel(doc *dom.Node, tok *cancel.Token) *Page {
	p, _ := renderWith(doc, new(renderScratch), false, tok, renderModeFull, 0)
	return p
}

// RenderPooled is Render with the scratch drawn from a process-wide pool;
// the caller must call Page.Release once it no longer references the page
// or anything reachable from it.  When arenas are disabled (see
// dom.SetArenasEnabled) it degrades to Render.
func RenderPooled(doc *dom.Node) *Page {
	return RenderPooledCancel(doc, nil)
}

// RenderPooledCancel is RenderPooled with the cancellation behaviour of
// RenderCancel.  When the walk unwinds — through cancellation or any other
// panic — the pooled scratch is recycled before the panic continues, so an
// aborted render can never leak a scratch out of the pool.
func RenderPooledCancel(doc *dom.Node, tok *cancel.Token) *Page {
	if !dom.ArenasEnabled() {
		p, _ := renderWith(doc, new(renderScratch), false, tok, renderModeFull, 0)
		return p
	}
	p, _ := renderWith(doc, acquireScratch(), true, tok, renderModeFull, 0)
	return p
}

// PruneInfo reports what a pruned render did: how many content lines were
// materialized in full (inside or directly above marked candidate
// regions) and how many were emitted as skeletons (exact index, x and
// type, empty content).
type PruneInfo struct {
	FullLines     int
	SkeletonLines int
}

// RenderPooledPruned renders a page whose DOM has been marked by a
// prune.Run pass: content lines overlapping a marked candidate subtree
// (plus the line directly above each region, which wrapper application
// reads as the section heading) carry their full text, attributes and
// links, all other lines are skeletons with exact index, x coordinate and
// type code, and the walk stops once the given number of outermost marked
// regions has closed — lines past the last candidate region are never
// read by extraction.  outer <= 0 with no marks yields an empty line
// list.  Cancellation and pooling behave exactly as RenderPooledCancel.
func RenderPooledPruned(doc *dom.Node, tok *cancel.Token, outer int) (*Page, PruneInfo) {
	if !dom.ArenasEnabled() {
		return renderWith(doc, new(renderScratch), false, tok, renderModePruned, outer)
	}
	return renderWith(doc, acquireScratch(), true, tok, renderModePruned, outer)
}

type renderMode int

const (
	renderModeFull renderMode = iota
	renderModePruned
)

func renderWith(doc *dom.Node, sc *renderScratch, pooled bool, tok *cancel.Token, mode renderMode, outer int) (*Page, PruneInfo) {
	sc.ensure(doc.Size())
	page := &Page{
		Doc:     doc,
		Lines:   sc.lines[:0],
		forests: sc.forests,
		scratch: sc,
		pooled:  pooled,
	}
	if pooled {
		// A panic mid-walk (a cancellation checkpoint firing, or a renderer
		// bug) unwinds before the page can be returned, so nothing can ever
		// reference the scratch again: recycle it on the way out instead of
		// leaking it to the garbage collector.
		defer func() {
			if r := recover(); r != nil {
				page.Release()
				panic(r)
			}
		}()
	}
	// An already-fired token aborts before any work: the walk's stride-256
	// checkpoints may never trigger on a small page, but a dead context
	// must abort the render regardless of page size.  Checked only after
	// the recovery defer above is armed, so the pooled scratch cannot leak.
	tok.Check()
	r := &renderer{
		page:    page,
		sheet:   collectStylesheet(doc),
		sc:      sc,
		tok:     tok,
		pruning: mode == renderModePruned,
		prevIdx: -1,
	}
	if r.pruning {
		r.outerLeft = outer
		r.stopping = outer <= 0
	}
	ctx := context{
		x:     bodyMarginX,
		width: pageWidth - 2*bodyMarginX,
		attr:  defaultAttr(),
	}
	r.walk(doc, ctx)
	r.flush(false)
	// Node spans are built incrementally in addBytes — see mergeSpan.
	return page, PruneInfo{FullLines: r.fullLines, SkeletonLines: r.skelLines}
}

// Layout constants of the simulated viewport.
const (
	pageWidth   = 800
	bodyMarginX = 8
	indentStep  = 40 // ul/ol/blockquote/dd indentation

	// checkpointStride is how many DOM nodes the render walk visits between
	// cancellation polls: coarse enough that the poll cost vanishes, fine
	// enough that even a million-node page notices cancellation within a
	// few microseconds of work.
	checkpointStride = 256
)

// checkpoint polls the cancellation token every checkpointStride visited
// nodes; without a token it is two compares.
func (r *renderer) checkpoint() {
	if r.tok == nil {
		return
	}
	if r.steps++; r.steps >= checkpointStride {
		r.steps = 0
		r.tok.Check()
	}
}

func defaultAttr() TextAttr {
	return TextAttr{Font: "times", Size: 16, Color: "#000000"}
}

// context carries the inherited layout state during the DOM walk.
type context struct {
	x      int
	width  int
	attr   TextAttr
	inLink bool
	href   string
	// full is set while the walk is inside a marked candidate subtree of a
	// pruned render: content added under it makes the current line a full
	// line.  Always false outside pruned renders.
	full bool
}

// renderer accumulates content lines.  The per-line accumulation buffers
// live in the render scratch and are reused line after line; flush copies
// their contents into exact-size chunks cut from the scratch arenas.
type renderer struct {
	page  *Page
	sheet *stylesheet
	sc    *renderScratch

	// tok, when non-nil, is polled every checkpointStride visited nodes;
	// steps is the visit counter backing that stride.
	tok   *cancel.Token
	steps int

	lineX   int
	started bool
	hasText bool // plain (non-link) text present
	hasLink bool
	hasImg  bool
	hasForm bool
	isRule  bool

	lastFlushWasBreak bool

	// Pruned-render state (see RenderPooledPruned).  lineFull marks the
	// current line as containing content from a marked subtree; prevIdx is
	// the index of the last emitted skeleton line, retroactively upgraded
	// to full content when the following line opens a marked region (-1
	// when the previous line is full, blank, or absent).  outerLeft counts
	// outermost marked regions still ahead; when it reaches zero the walk
	// stops at the next line boundary (stopping -> stopped).
	pruning   bool
	lineFull  bool
	prevIdx   int
	outerLeft int
	stopping  bool
	stopped   bool
	fullLines int
	skelLines int
}

// halted reports whether a pruned walk should stop visiting nodes.  The
// stop is deferred until the current line has flushed (started is false):
// inline content following the last marked region may legally share — and
// extend — the final full line, so truncating mid-line would change it.
func (r *renderer) halted() bool {
	if r.stopped {
		return true
	}
	if r.stopping && !r.started {
		r.stopped = true
		return true
	}
	return false
}

// closeOuter records that an outermost marked region has been fully
// walked; after the last one the renderer stops at the next line boundary
// (no extraction read can reach lines past the final candidate region).
func (r *renderer) closeOuter() {
	r.outerLeft--
	if r.outerLeft <= 0 {
		r.stopping = true
	}
}

// upgradePrev retroactively materializes the previously emitted skeleton
// line from the preserved accumulation buffers, exactly as a full flush
// would have: wrapper application reads the line directly above a marked
// region's span as the section heading.
func (r *renderer) upgradePrev() {
	if r.prevIdx < 0 {
		return
	}
	sc := r.sc
	l := &r.page.Lines[r.prevIdx]
	sc.norm = appendNormalized(sc.norm[:0], sc.prevText)
	l.Text = string(sc.norm)
	l.Attrs = sc.attrs.allocCopy(sc.prevAttrBuf)
	l.Links = sc.links.allocCopy(sc.prevLinkBuf)
	r.prevIdx = -1
	r.fullLines++
	r.skelLines--
}

// flush emits the accumulated line, if any.  explicitBreak marks flushes
// caused by <br>, so that a second consecutive <br> yields a BlankLine.
func (r *renderer) flush(explicitBreak bool) {
	if !r.started {
		if explicitBreak {
			if r.lastFlushWasBreak {
				// Two explicit breaks in a row: a visible blank line.
				// Blank lines carry no content in either render mode, so
				// the previous-line upgrade machinery resets here.
				r.emit(Line{Text: "", X: r.lineX, Type: BlankLine})
				r.prevIdx = -1
			}
			r.lastFlushWasBreak = true
		}
		return
	}
	sc := r.sc
	typ := r.lineType()
	if r.pruning && !r.lineFull {
		// Skeleton line: no content from any marked subtree.  Index, x and
		// type codes are exact (record mining reads them), and the leaves
		// are recorded so the node-span index matches the full render
		// everywhere; text, attributes and links stay empty unless the
		// next line opens a marked region (see upgradePrev).  The
		// accumulation buffers are preserved by swapping, not reset.
		line := r.emitEmpty()
		line.X = r.lineX
		line.Type = typ
		line.Leaves = sc.leaves.allocCopy(sc.leafBuf)
		r.prevIdx = len(r.page.Lines) - 1
		r.skelLines++
		sc.text, sc.prevText = sc.prevText[:0], sc.text
		sc.attrBuf, sc.prevAttrBuf = sc.prevAttrBuf[:0], sc.attrBuf
		sc.linkBuf, sc.prevLinkBuf = sc.prevLinkBuf[:0], sc.linkBuf
		sc.leafBuf = sc.leafBuf[:0]
	} else {
		sc.norm = appendNormalized(sc.norm[:0], sc.text)
		line := r.emitEmpty()
		line.Text = string(sc.norm)
		line.X = r.lineX
		line.Type = typ
		line.Attrs = sc.attrs.allocCopy(sc.attrBuf)
		line.Leaves = sc.leaves.allocCopy(sc.leafBuf)
		line.Links = sc.links.allocCopy(sc.linkBuf)
		if !r.pruning && len(line.Leaves) > 0 {
			// Extraction never reads Path/CPath (they feed the training
			// pipeline), so pruned renders skip building them even for
			// full lines.
			leaf := line.Leaves[0]
			line.Path = dom.AppendPath(dom.TagPath(sc.paths.alloc(dom.PathLen(leaf)))[:0], leaf)
			line.CPath = line.Path.AppendCompact(dom.CompactPath(sc.cpaths.alloc(line.Path.CompactLen()))[:0])
		}
		r.prevIdx = -1
		r.fullLines++
		sc.text = sc.text[:0]
		sc.leafBuf = sc.leafBuf[:0]
		sc.attrBuf = sc.attrBuf[:0]
		sc.linkBuf = sc.linkBuf[:0]
	}
	r.started = false
	r.lineFull = false
	r.hasText, r.hasLink, r.hasImg, r.hasForm, r.isRule = false, false, false, false, false
	r.lastFlushWasBreak = explicitBreak
}

func (r *renderer) emit(l Line) {
	l.Num = len(r.page.Lines)
	r.page.Lines = append(r.page.Lines, l)
}

// emitEmpty appends a zero line with its Num set and returns a pointer for
// the caller to fill in place, sparing flush a full Line struct copy per
// content line.  The pointer is only valid until the next append.
func (r *renderer) emitEmpty() *Line {
	r.page.Lines = append(r.page.Lines, Line{Num: len(r.page.Lines)})
	return &r.page.Lines[len(r.page.Lines)-1]
}

func (r *renderer) lineType() LineType {
	switch {
	case r.isRule:
		return RuleLine
	case r.hasForm:
		return FormLine
	case r.hasImg && (r.hasText || r.hasLink):
		return ImageTextLine
	case r.hasImg:
		return ImageLine
	case r.hasLink && r.hasText:
		return LinkTextLine
	case r.hasLink:
		return LinkLine
	default:
		return TextLine
	}
}

// addBytes appends inline content to the current line.  text points into
// the scratch collapse buffer (or is nil) and is copied, not retained.
func (r *renderer) addBytes(text []byte, leaf *dom.Node, ctx context, kind contentKind) {
	sc := r.sc
	if !r.started {
		r.started = true
		r.lineX = ctx.x
	}
	if len(text) > 0 {
		if len(sc.text) > 0 && !endsWithSpace(sc.text) && !startsWithSpace(text) {
			sc.text = append(sc.text, ' ')
		}
		sc.text = append(sc.text, text...)
	}
	if leaf != nil {
		sc.leafBuf = append(sc.leafBuf, leaf)
		r.mergeSpan(leaf)
	}
	if ctx.full && !r.lineFull {
		r.lineFull = true
		r.upgradePrev()
	}
	switch kind {
	case kindText:
		if ctx.inLink {
			r.hasLink = true
			if ctx.href != "" {
				r.addLink(ctx.href)
			}
		} else {
			r.hasText = true
		}
		if !containsAttr(sc.attrBuf, ctx.attr) {
			sc.attrBuf = append(sc.attrBuf, ctx.attr)
		}
	case kindImage:
		r.hasImg = true
	case kindForm:
		r.hasForm = true
	case kindRule:
		r.isRule = true
	}
}

// mergeSpan extends the node-span index to cover leaf on the line being
// accumulated.  That line's final index is exactly len(page.Lines): blank
// lines are only emitted between flushed lines, never under one that has
// started.  Lines arrive in increasing order, so extending is setting
// SpanEnd; the walk stops at the first ancestor already extended to this
// line, whose own ancestors were extended by the same earlier walk —
// amortized O(1) per leaf instead of O(depth).  (Re-rendering the same
// tree in full mode converges to the identical state: a stale SpanEnd
// equals the final value, so an early break just leaves it correct.)
func (r *renderer) mergeSpan(leaf *dom.Node) {
	end := int32(len(r.page.Lines)) + 1
	for n := leaf; n != nil; n = n.Parent {
		if n.SpanEnd == 0 {
			n.SpanStart, n.SpanEnd = end-1, end
			continue
		}
		if n.SpanEnd == end {
			break
		}
		n.SpanEnd = end
	}
}

func (r *renderer) addLink(href string) {
	for _, l := range r.sc.linkBuf {
		if l == href {
			return
		}
	}
	r.sc.linkBuf = append(r.sc.linkBuf, href)
}

type contentKind int

const (
	kindText contentKind = iota
	kindImage
	kindForm
	kindRule
)

func containsAttr(list []TextAttr, a TextAttr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}

func startsWithSpace(s []byte) bool {
	return len(s) > 0 && (s[0] == ' ' || s[0] == '\t' || s[0] == '\n')
}

func endsWithSpace(s []byte) bool {
	return len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t' || s[len(s)-1] == '\n')
}
