package layout

import (
	"sync"
	"sync/atomic"
	"unicode"
	"unicode/utf8"

	"mse/internal/dom"
)

// This file holds the allocation machinery of the renderer.  A rendered
// Page owns thousands of tiny slices — per-line leaves, text attributes,
// links, tag paths — which used to be individually heap-allocated.  They
// are now cut out of chunk arenas owned by a renderScratch, so a render
// performs O(lines) work with O(chunks) allocations, and a scratch can be
// recycled through a sync.Pool once its page is dead (see Page.Release and
// the soundness rule on dom.Arena).

const chunkSize = 1024

// chunk is a bump allocator handing out exact-capacity sub-slices of
// fixed-size slabs.  Chunks are full slices (cap == len), so appending to
// one can never scribble over a neighbour.
type chunk[T any] struct {
	cur  []T
	used int
}

func (c *chunk[T]) alloc(n int) []T {
	if n == 0 {
		return nil
	}
	if cap(c.cur)-c.used < n {
		size := chunkSize
		if n > size {
			size = n
		}
		// The previous slab stays alive through the page's lines and is
		// collected with them; only the current slab is retained for reuse.
		c.cur = make([]T, size)
		c.used = 0
	}
	s := c.cur[c.used : c.used+n : c.used+n]
	c.used += n
	return s
}

// allocCopy returns an arena-backed copy of src (nil for an empty src,
// matching the legacy per-line nil slices).
func (c *chunk[T]) allocCopy(src []T) []T {
	if len(src) == 0 {
		return nil
	}
	dst := c.alloc(len(src))
	copy(dst, src)
	return dst
}

// reset zeroes the retained slab's used prefix (so pooled memory does not
// pin dead pages — entries past the high-water mark were zeroed by the
// previous reset and never rewritten) and rewinds the allocator.
func (c *chunk[T]) reset() {
	clear(c.cur[:c.used])
	c.used = 0
}

// renderScratch is the reusable allocation state behind one rendered Page:
// the Lines backing array, the span/forest maps, the chunk arenas the
// per-line slices are cut from, and the transient per-line accumulation
// buffers.
type renderScratch struct {
	lines   []Line
	forests map[[2]int][]*dom.Node

	leaves chunk[*dom.Node]
	attrs  chunk[TextAttr]
	links  chunk[string]
	paths  chunk[dom.PathNode]
	cpaths chunk[dom.CStep]

	// Per-line accumulation buffers, reused line after line.
	text     []byte
	norm     []byte
	collapse []byte
	leafBuf  []*dom.Node
	attrBuf  []TextAttr
	linkBuf  []string
	cellBuf  []*dom.Node
	spanBuf  []int

	// Previous-line buffers of the pruned render mode: when a skeleton
	// line is flushed its accumulation buffers are swapped in here instead
	// of being reset, so the line can be retroactively upgraded to full
	// content if the next line turns out to start a marked region (wrapper
	// application reads the line directly above a section's span).
	prevText    []byte
	prevAttrBuf []TextAttr
	prevLinkBuf []string
}

// ensure pre-sizes the scratch for a document of the given node count, so
// Render does O(lines) appends instead of O(allocs-per-line) growth.
func (sc *renderScratch) ensure(nodeCount int) {
	if est := nodeCount/4 + 8; cap(sc.lines) < est {
		sc.lines = make([]Line, 0, est)
	}
	if sc.forests == nil {
		sc.forests = make(map[[2]int][]*dom.Node, 16)
	}
}

// ScratchStats are cumulative render-scratch pool counters; exposed on
// /metrics and /statusz by the extraction service.
type ScratchStats struct {
	Acquires uint64 `json:"acquires"` // RenderPooled calls using the pool
	Reuses   uint64 `json:"reuses"`   // acquires satisfied from the pool
	Releases uint64 `json:"releases"` // pages returned to the pool
}

var scratchStats struct {
	acquires atomic.Uint64
	reuses   atomic.Uint64
	releases atomic.Uint64
}

// ScratchStatsSnapshot returns the current render-scratch counters.
func ScratchStatsSnapshot() ScratchStats {
	return ScratchStats{
		Acquires: scratchStats.acquires.Load(),
		Reuses:   scratchStats.reuses.Load(),
		Releases: scratchStats.releases.Load(),
	}
}

var scratchPool = sync.Pool{New: func() any { return new(renderScratch) }}

func acquireScratch() *renderScratch {
	sc := scratchPool.Get().(*renderScratch)
	scratchStats.acquires.Add(1)
	if sc.forests != nil {
		scratchStats.reuses.Add(1)
	}
	return sc
}

// Release recycles the page's scratch (lines backing, maps and chunk
// arenas) into the render pool.  It must only be called once no Line,
// span or forest obtained from the page is referenced anymore; pages not
// created by RenderPooled ignore the call.  The page is unusable
// afterwards.
func (p *Page) Release() {
	sc := p.scratch
	if sc == nil || !p.pooled {
		return
	}
	p.scratch = nil
	clear(p.Lines)
	sc.lines = p.Lines[:0]
	clear(sc.forests)
	sc.leaves.reset()
	sc.attrs.reset()
	sc.links.reset()
	sc.paths.reset()
	sc.cpaths.reset()
	sc.text = sc.text[:0]
	sc.norm = sc.norm[:0]
	sc.collapse = sc.collapse[:0]
	clear(sc.leafBuf)
	sc.leafBuf = sc.leafBuf[:0]
	clear(sc.attrBuf)
	sc.attrBuf = sc.attrBuf[:0]
	clear(sc.linkBuf)
	sc.linkBuf = sc.linkBuf[:0]
	clear(sc.cellBuf)
	sc.cellBuf = sc.cellBuf[:0]
	sc.spanBuf = sc.spanBuf[:0]
	sc.prevText = sc.prevText[:0]
	clear(sc.prevAttrBuf)
	sc.prevAttrBuf = sc.prevAttrBuf[:0]
	clear(sc.prevLinkBuf)
	sc.prevLinkBuf = sc.prevLinkBuf[:0]
	p.Lines = nil
	p.forests = nil
	scratchStats.releases.Add(1)
	scratchPool.Put(sc)
}

// appendCollapsed appends s to dst with runs of whitespace (including
// non-breaking spaces) folded into single spaces, reproducing the legacy
// collapseSpace string byte for byte (invalid UTF-8 becomes U+FFFD, as
// WriteRune did).
func appendCollapsed(dst []byte, s string) []byte {
	base := len(dst)
	space := false
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			// ASCII fast path: no rune decode, no AppendRune call.
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
				space = true
				i++
				continue
			}
			if space && len(dst) > base {
				dst = append(dst, ' ')
			}
			space = false
			dst = append(dst, c)
			i++
			continue
		}
		r, w := utf8.DecodeRuneInString(s[i:])
		i += w
		if r == 0xA0 {
			space = true
			continue
		}
		if space && len(dst) > base {
			dst = append(dst, ' ')
		}
		space = false
		dst = utf8.AppendRune(dst, r)
	}
	return dst
}

// asciiSpace marks the ASCII bytes unicode.IsSpace reports as whitespace.
var asciiSpace = [utf8.RuneSelf]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// appendNormalized appends src to dst with leading/trailing whitespace
// dropped and inner runs collapsed to single spaces — byte-identical to
// strings.Join(strings.Fields(string(src)), " ") without the two
// intermediate allocations per line.
func appendNormalized(dst, src []byte) []byte {
	i := 0
	for i < len(src) {
		// Skip whitespace; ASCII bytes take the table, multi-byte runes
		// the full unicode.IsSpace check (identical for ASCII input).
		if c := src[i]; c < utf8.RuneSelf {
			if asciiSpace[c] {
				i++
				continue
			}
		} else {
			r, w := utf8.DecodeRune(src[i:])
			if unicode.IsSpace(r) {
				i += w
				continue
			}
		}
		start := i
		for i < len(src) {
			if c := src[i]; c < utf8.RuneSelf {
				if asciiSpace[c] {
					break
				}
				i++
				continue
			}
			r, w := utf8.DecodeRune(src[i:])
			if unicode.IsSpace(r) {
				break
			}
			i += w
		}
		if len(dst) > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, src[start:i]...)
	}
	return dst
}
