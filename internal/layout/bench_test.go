package layout

import (
	"strings"
	"testing"

	"mse/internal/htmlparse"
)

func benchPage(n int) string {
	var sb strings.Builder
	sb.WriteString(`<html><body><h1>Site</h1><h3>Results</h3><table>`)
	for i := 0; i < n; i++ {
		sb.WriteString(`<tr><td><a href="/doc"><b>Result Title</b></a><br>
		snippet line with some words<br>
		<font color="#008000">www.site.example/doc.html</font></td></tr>`)
	}
	sb.WriteString(`</table></body></html>`)
	return sb.String()
}

func BenchmarkRender10Records(b *testing.B) {
	doc := htmlparse.Parse(benchPage(10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Render(doc)
	}
}

func BenchmarkRender100Records(b *testing.B) {
	doc := htmlparse.Parse(benchPage(100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Render(doc)
	}
}

func BenchmarkForestLookup(b *testing.B) {
	p := Render(htmlparse.Parse(benchPage(100)))
	n := len(p.Lines)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Forest(n/4, 3*n/4)
	}
}
