package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Journal is the wide-event request journal: one structured JSON line per
// sampled /extract request, carrying everything needed to reconstruct the
// request after the fact — engine, page hash and size, section/record
// counts, per-stage span timings, the drift verdict at that moment, and
// the request ID that correlates the line with the access log and the
// client's own records.  Metrics answer "how much, how fast"; the journal
// answers "what exactly happened on the request that tripped the drift
// detector".
//
// Sampling is deterministic 1-in-N by arrival order (N = 1 journals every
// request).  Lines are complete JSON documents separated by newlines
// (JSONL); writes are serialized, so lines never interleave.  A nil
// Journal samples nothing, so serving code calls it unconditionally.
type Journal struct {
	every uint64
	n     atomic.Uint64

	mu      sync.Mutex
	w       io.Writer
	written atomic.Int64
	failed  atomic.Int64
}

// NewJournal returns a journal writing to w, sampling one request in
// every.  every <= 1 journals all requests.  The caller owns w (and
// closes it, if it is a file, after the server drains).
func NewJournal(w io.Writer, every int) *Journal {
	if every < 1 {
		every = 1
	}
	return &Journal{w: w, every: uint64(every)}
}

// Sample reports whether the caller should journal this request, counting
// it either way.  Nil-safe: a nil journal never samples.
func (j *Journal) Sample() bool {
	if j == nil {
		return false
	}
	return (j.n.Add(1)-1)%j.every == 0
}

// Written returns the number of journal lines successfully written.
func (j *Journal) Written() int64 {
	if j == nil {
		return 0
	}
	return j.written.Load()
}

// Failed returns the number of journal lines dropped by write errors.
func (j *Journal) Failed() int64 {
	if j == nil {
		return 0
	}
	return j.failed.Load()
}

// Write emits one event as a JSON line.  Errors are counted, not
// propagated: a full disk must not fail the request being journaled.
func (j *Journal) Write(ev JournalEvent) {
	if j == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		j.failed.Add(1)
		return
	}
	b = append(b, '\n')
	j.mu.Lock()
	_, err = j.w.Write(b)
	j.mu.Unlock()
	if err != nil {
		j.failed.Add(1)
		return
	}
	j.written.Add(1)
}

// JournalEvent is the wire form of one journal line.
type JournalEvent struct {
	// Time is the request completion time, RFC3339 with nanoseconds, UTC.
	Time      string `json:"time"`
	RequestID string `json:"request_id"`
	// Kind distinguishes lifecycle events (relearn_job, relearn_swap, ...)
	// from per-request extraction lines (empty Kind, the default).
	Kind   string `json:"kind,omitempty"`
	Engine string `json:"engine"`
	Status int    `json:"status"`
	// PageBytes and PageHash identify the exact input page: the hash is
	// FNV-1a/64 of the body, enough to spot byte-identical resubmissions
	// and to match a page against a captured corpus.
	PageBytes int      `json:"page_bytes"`
	PageHash  string   `json:"page_hash,omitempty"`
	Query     []string `json:"query,omitempty"`
	Sections  int      `json:"sections"`
	Records   int      `json:"records"`
	// Cached reports that the response was served from the content-
	// addressed extraction cache (hit or collapsed miss).  Batch marks
	// sub-item events of a /extract/batch request, BatchIndex the item's
	// position in it (meaningful only when Batch is set).
	Cached     bool `json:"cached"`
	Batch      bool `json:"batch,omitempty"`
	BatchIndex int  `json:"batch_index,omitempty"`
	// Quality fields: the engine's drift verdict after this page, whether
	// this page itself was anomalous, its z-score and the smoothed rate.
	Verdict     string  `json:"verdict,omitempty"`
	Anomalous   bool    `json:"anomalous,omitempty"`
	Score       float64 `json:"score,omitempty"`
	AnomalyRate float64 `json:"anomaly_rate,omitempty"`
	// Timings: admission queue wait, end-to-end handler time, and the
	// per-stage breakdown (render, wrapper_build, families) from the
	// request's span tree.
	QueueWaitMs float64            `json:"queue_wait_ms"`
	TotalMs     float64            `json:"total_ms"`
	StagesMs    map[string]float64 `json:"stages_ms,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// requestIDHeader is the correlation-ID header: accepted from the client
// when present, generated otherwise, echoed on every response either way.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds an accepted client-supplied correlation ID, so a
// hostile header cannot bloat logs and journal lines.
const maxRequestIDLen = 128

// newRequestID returns a fresh 16-hex-char correlation ID.  Entropy
// failure (no /dev/urandom) falls back to a process-unique counter rather
// than failing the request.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", ridFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

var ridFallback atomic.Int64

// ridKey is the context key carrying the request's correlation ID.
type ridKey struct{}

// pageHash returns the FNV-1a/64 hex digest journal lines carry.
func pageHash(s string) string {
	h := fnv.New64a()
	io.WriteString(h, s)
	return hex.EncodeToString(h.Sum(nil))
}

// nowRFC3339 stamps journal events; a variable so tests can pin it.
var nowRFC3339 = func() string { return time.Now().UTC().Format(time.RFC3339Nano) }
