package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestLimiterSheds is the acceptance scenario for admission control: with
// -max-inflight=1 and a short queue timeout, a second concurrent request
// is shed with 429 and a Retry-After header once its queue wait expires,
// and the first request completes normally.
func TestLimiterSheds(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetLimits(1, 50*time.Millisecond)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	entered := make(chan struct{})
	block := make(chan struct{})
	extractTestHook = func(string) {
		close(entered)
		<-block
	}
	defer func() { extractTestHook = nil }()

	html := eng.Page(21).HTML
	firstDone := make(chan error, 1)
	var firstStatus int
	go func() {
		resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(html))
		if err == nil {
			firstStatus = resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		firstDone <- err
	}()

	// Wait until the first request holds the extraction slot.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the extraction hook")
	}

	// The second request queues for ~50ms, then is shed.
	start := time.Now()
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(html))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	if wait := time.Since(start); wait < 40*time.Millisecond {
		t.Fatalf("shed after %v, want at least the ~50ms queue timeout", wait)
	}
	if got := reg.metrics.shed.Value(); got != 1 {
		t.Fatalf("shed_total = %d, want 1", got)
	}
	// Shedding is the server's condition, not the engine's.
	if got := reg.metrics.engine("demo").errors.Value(); got != 0 {
		t.Fatalf("engine errors = %d, want 0", got)
	}

	// Release the first request; it must complete successfully.
	close(block)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if firstStatus != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", firstStatus)
	}
}

// TestLimiterAdmitsAfterRelease: once the slot frees within the queue
// budget, a queued request is admitted rather than shed.
func TestLimiterAdmitsAfterRelease(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetLimits(1, 2*time.Second)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	entered := make(chan struct{})
	block := make(chan struct{})
	hooked := false
	extractTestHook = func(string) {
		if !hooked {
			hooked = true
			close(entered)
			<-block
		}
	}
	defer func() { extractTestHook = nil }()

	html := eng.Page(22).HTML
	go func() {
		resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(html))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	// Free the slot shortly after the second request starts queueing.
	time.AfterFunc(30*time.Millisecond, func() { close(block) })
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(html))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("queued request status = %d, want 200", resp.StatusCode)
	}
	if got := reg.metrics.shed.Value(); got != 0 {
		t.Fatalf("shed_total = %d, want 0", got)
	}
}

// TestLimiterClientGoneWhileQueued: a request whose context dies while it
// waits for a slot is counted canceled, not shed and not an engine error.
func TestLimiterClientGoneWhileQueued(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetLimits(1, 5*time.Second)

	// Occupy the only slot directly.
	if _, err := reg.limiter.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer reg.limiter.release()

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(20*time.Millisecond, cancel)
	req := httptest.NewRequest(http.MethodPost, "/extract?engine=demo",
		strings.NewReader(eng.Page(23).HTML)).WithContext(ctx)
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, req)

	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d; body %s", rr.Code, statusClientClosedRequest, rr.Body.String())
	}
	if got := reg.metrics.canceled.Value(); got != 1 {
		t.Fatalf("canceled_total = %d, want 1", got)
	}
	if got := reg.metrics.shed.Value(); got != 0 {
		t.Fatalf("shed_total = %d, want 0", got)
	}
}
