package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mse/internal/dom"
	"mse/internal/layout"
)

// TestStressExtract storms a limited server with concurrent /extract
// requests under aggressive client deadlines.  Whatever mix of successes,
// sheds and cancellations results, the server must answer every request
// with one of 200/429/499/503, survive the storm, and return every pooled
// arena and scratch.  `make stress` runs it under -race with
// MSE_STRESS_N=300; the in-tree default keeps tier-1 fast.
func TestStressExtract(t *testing.T) {
	n := 48
	if s := os.Getenv("MSE_STRESS_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("MSE_STRESS_N=%q: %v", s, err)
		}
		n = v
	}
	reg, eng := testRegistry(t)
	// Two slots and a queue budget shorter than one extraction: a healthy
	// run sees all of 200 (admitted), 429 (shed) and client-side deadline
	// failures; the exact mix is machine-dependent and not asserted.
	reg.SetLimits(2, 5*time.Millisecond)
	srv := httptest.NewServer(reg.Handler())

	arenaBefore := dom.ArenaStatsSnapshot()
	scratchBefore := layout.ScratchStatsSnapshot()

	// A storm of the demo engine's schema but with an order of magnitude
	// more records per section, so each admitted extraction holds its slot
	// long enough for the queue to back up.  The shared engine's schema is
	// restored afterwards — other tests generate pages from it.
	type bounds struct{ min, max int }
	saved := make([]bounds, len(eng.Schema.Sections))
	for i, ss := range eng.Schema.Sections {
		saved[i] = bounds{ss.MinRecords, ss.MaxRecords}
		ss.MinRecords, ss.MaxRecords = 300, 300
	}
	html := eng.Page(31).HTML
	for i, ss := range eng.Schema.Sections {
		ss.MinRecords, ss.MaxRecords = saved[i].min, saved[i].max
	}
	var ok200, shed, canceled, clientErr, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deadlines from 3ms (dies mid-flight) to 2s (comfortably
			// completes), cycling so every run exercises every outcome.
			deadline := time.Duration(3+97*(i%20)) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				srv.URL+"/extract?engine=demo", strings.NewReader(html))
			if err != nil {
				other.Add(1)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				// The client gave up first; the server side must still
				// clean up, which the pool balance below proves.
				clientErr.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			case statusClientClosedRequest, http.StatusServiceUnavailable:
				canceled.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected status codes on %d request(s); 200=%d 429=%d 499/503=%d client-err=%d",
			other.Load(), ok200.Load(), shed.Load(), canceled.Load(), clientErr.Load())
	}
	t.Logf("storm of %d: 200=%d 429=%d 499/503=%d client-err=%d",
		n, ok200.Load(), shed.Load(), canceled.Load(), clientErr.Load())

	// The server must still be fully functional after the storm.
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(html))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm request status = %d, want 200", resp.StatusCode)
	}

	// Close waits for the handlers abandoned by their clients to finish,
	// after which every pooled acquisition must have been released.
	srv.Close()
	if dom.ArenasEnabled() {
		arenaAfter := dom.ArenaStatsSnapshot()
		if acq, rel := arenaAfter.Acquires-arenaBefore.Acquires, arenaAfter.Releases-arenaBefore.Releases; acq != rel {
			t.Fatalf("arena leak across storm: %d acquired, %d released", acq, rel)
		}
		scratchAfter := layout.ScratchStatsSnapshot()
		if acq, rel := scratchAfter.Acquires-scratchBefore.Acquires, scratchAfter.Releases-scratchBefore.Releases; acq != rel {
			t.Fatalf("render scratch leak across storm: %d acquired, %d released", acq, rel)
		}
	}

	if fails := reg.metrics.panics.Value(); fails != 0 {
		t.Fatalf("panics_total = %d during storm, want 0", fails)
	}
}

// TestStressExtractMixedCache storms a cache-enabled server with a mix of
// single and batch requests over a small page set, under tight admission
// limits, and checks the cache-era invariants on top of the originals:
// the resident byte total never exceeds the bound (sampled live by a
// watcher goroutine, and enforced by a deliberately tiny budget that
// forces evictions), concurrent identical misses collapse (singleflight
// counter > 0), every pooled arena and scratch comes back, and the only
// statuses seen are 200/429/499/503.  `make stress` runs it under -race
// via the shared TestStressExtract prefix.
func TestStressExtractMixedCache(t *testing.T) {
	n := 48
	if s := os.Getenv("MSE_STRESS_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("MSE_STRESS_N=%q: %v", s, err)
		}
		n = v
	}
	reg, eng := testRegistry(t)
	reg.SetLimits(4, 50*time.Millisecond)
	// Big enough per shard (bound/64) that normal result bodies are
	// admitted — the bound check must be exercised by resident entries,
	// not trivially satisfied by an always-empty cache.
	const cacheBound = 2 << 20
	reg.SetCache(cacheBound)
	srv := httptest.NewServer(reg.Handler())

	arenaBefore := dom.ArenaStatsSnapshot()
	scratchBefore := layout.ScratchStatsSnapshot()

	// Normal-size pages: these cache, so the storm mixes misses, hits and
	// within-batch duplicates.
	pages := make([]string, 6)
	queries := make([]string, 6)
	for i := range pages {
		gp := eng.Page(40 + i)
		pages[i] = gp.HTML
		queries[i] = strings.Join(gp.Query, "+")
	}
	// Live byte-bound watcher: samples the resident total while the storm
	// runs; insertion-before-bound bugs show up here, not just at the end.
	stopWatch := make(chan struct{})
	var boundViolations atomic.Int64
	go func() {
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			if b := reg.Cache().Bytes(); b > cacheBound {
				boundViolations.Add(1)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var ok200, shed, canceled, clientErr, other atomic.Int64
	classify := func(status int) {
		switch status {
		case http.StatusOK:
			ok200.Add(1)
		case http.StatusTooManyRequests:
			shed.Add(1)
		case statusClientClosedRequest, http.StatusServiceUnavailable:
			canceled.Add(1)
		default:
			other.Add(1)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deadline := time.Duration(5+95*(i%15)) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			p := i % len(pages)
			if i%3 == 0 {
				// Batch request: one fresh page plus a duplicate of it and a
				// neighbour — within-batch dedupe and cross-batch collapse.
				items := []map[string]any{
					{"q": queries[p], "html": pages[p]},
					{"q": queries[p], "html": pages[p]},
					{"q": queries[(p+1)%len(pages)], "html": pages[(p+1)%len(pages)]},
				}
				body, _ := json.Marshal(map[string]any{"items": items})
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					srv.URL+"/extract/batch?engine=demo", strings.NewReader(string(body)))
				if err != nil {
					other.Add(1)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					clientErr.Add(1)
					return
				}
				var br batchResponse
				derr := json.NewDecoder(resp.Body).Decode(&br)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					classify(resp.StatusCode)
					return
				}
				if derr != nil {
					other.Add(1)
					return
				}
				for _, r := range br.Results {
					classify(r.Status)
				}
				return
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				srv.URL+"/extract?engine=demo&q="+queries[p], strings.NewReader(pages[p]))
			if err != nil {
				other.Add(1)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				clientErr.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			classify(resp.StatusCode)
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected status codes on %d item(s); 200=%d 429=%d 499/503=%d client-err=%d",
			other.Load(), ok200.Load(), shed.Load(), canceled.Load(), clientErr.Load())
	}

	// Collapse is probabilistic under client deadlines, so force it
	// deterministically if the storm alone did not: the test hook blocks
	// the first leader inside its fill, the rest of the burst piles onto
	// the same key as singleflight waiters (visible in the in-flight
	// gauge), and releasing the leader completes them all from one
	// extraction.
	if reg.Cache().Stats().Collapsed == 0 {
		const burstN = 4 // == maxInflight above: every request holds a slot
		release := make(chan struct{})
		var once sync.Once
		extractTestHook = func(string) {
			once.Do(func() { <-release })
		}
		defer func() { extractTestHook = nil }()
		gp := eng.Page(60)
		var burst sync.WaitGroup
		for j := 0; j < burstN; j++ {
			burst.Add(1)
			go func() {
				defer burst.Done()
				resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html",
					strings.NewReader(gp.HTML))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		for reg.metrics.extractInFlight.Value() < burstN {
			time.Sleep(100 * time.Microsecond)
		}
		close(release)
		burst.Wait()
	}
	close(stopWatch)

	srv.Close()
	if v := boundViolations.Load(); v != 0 {
		t.Fatalf("cache byte bound exceeded %d time(s) during the storm (bound %d)", v, cacheBound)
	}
	if b := reg.Cache().Bytes(); b > cacheBound {
		t.Fatalf("cache holds %d bytes after the storm, bound %d", b, cacheBound)
	}
	s := reg.Cache().Stats()
	if s.Collapsed == 0 {
		t.Fatalf("no concurrent misses collapsed during the storm: %+v", s)
	}
	// The byte-bound check above is only meaningful if entries were actually
	// resident: an always-empty cache (bodies larger than the per-shard
	// budget) satisfies any bound trivially.
	if s.Hits == 0 || s.Entries == 0 {
		t.Fatalf("storm never populated the cache (bound check was vacuous): %+v", s)
	}
	t.Logf("mixed storm of %d: 200=%d 429=%d 499/503=%d client-err=%d cache=%+v",
		n, ok200.Load(), shed.Load(), canceled.Load(), clientErr.Load(), s)

	if dom.ArenasEnabled() {
		arenaAfter := dom.ArenaStatsSnapshot()
		if acq, rel := arenaAfter.Acquires-arenaBefore.Acquires, arenaAfter.Releases-arenaBefore.Releases; acq != rel {
			t.Fatalf("arena leak across mixed storm: %d acquired, %d released", acq, rel)
		}
		scratchAfter := layout.ScratchStatsSnapshot()
		if acq, rel := scratchAfter.Acquires-scratchBefore.Acquires, scratchAfter.Releases-scratchBefore.Releases; acq != rel {
			t.Fatalf("render scratch leak across mixed storm: %d acquired, %d released", acq, rel)
		}
	}
	if fails := reg.metrics.panics.Value(); fails != 0 {
		t.Fatalf("panics_total = %d during mixed storm, want 0", fails)
	}
}
