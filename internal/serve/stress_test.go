package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mse/internal/dom"
	"mse/internal/layout"
)

// TestStressExtract storms a limited server with concurrent /extract
// requests under aggressive client deadlines.  Whatever mix of successes,
// sheds and cancellations results, the server must answer every request
// with one of 200/429/499/503, survive the storm, and return every pooled
// arena and scratch.  `make stress` runs it under -race with
// MSE_STRESS_N=300; the in-tree default keeps tier-1 fast.
func TestStressExtract(t *testing.T) {
	n := 48
	if s := os.Getenv("MSE_STRESS_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("MSE_STRESS_N=%q: %v", s, err)
		}
		n = v
	}
	reg, eng := testRegistry(t)
	// Two slots and a queue budget shorter than one extraction: a healthy
	// run sees all of 200 (admitted), 429 (shed) and client-side deadline
	// failures; the exact mix is machine-dependent and not asserted.
	reg.SetLimits(2, 5*time.Millisecond)
	srv := httptest.NewServer(reg.Handler())

	arenaBefore := dom.ArenaStatsSnapshot()
	scratchBefore := layout.ScratchStatsSnapshot()

	// A storm of the demo engine's schema but with an order of magnitude
	// more records per section, so each admitted extraction holds its slot
	// long enough for the queue to back up.  The shared engine's schema is
	// restored afterwards — other tests generate pages from it.
	type bounds struct{ min, max int }
	saved := make([]bounds, len(eng.Schema.Sections))
	for i, ss := range eng.Schema.Sections {
		saved[i] = bounds{ss.MinRecords, ss.MaxRecords}
		ss.MinRecords, ss.MaxRecords = 300, 300
	}
	html := eng.Page(31).HTML
	for i, ss := range eng.Schema.Sections {
		ss.MinRecords, ss.MaxRecords = saved[i].min, saved[i].max
	}
	var ok200, shed, canceled, clientErr, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Deadlines from 3ms (dies mid-flight) to 2s (comfortably
			// completes), cycling so every run exercises every outcome.
			deadline := time.Duration(3+97*(i%20)) * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				srv.URL+"/extract?engine=demo", strings.NewReader(html))
			if err != nil {
				other.Add(1)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				// The client gave up first; the server side must still
				// clean up, which the pool balance below proves.
				clientErr.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusTooManyRequests:
				shed.Add(1)
			case statusClientClosedRequest, http.StatusServiceUnavailable:
				canceled.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if other.Load() != 0 {
		t.Fatalf("unexpected status codes on %d request(s); 200=%d 429=%d 499/503=%d client-err=%d",
			other.Load(), ok200.Load(), shed.Load(), canceled.Load(), clientErr.Load())
	}
	t.Logf("storm of %d: 200=%d 429=%d 499/503=%d client-err=%d",
		n, ok200.Load(), shed.Load(), canceled.Load(), clientErr.Load())

	// The server must still be fully functional after the storm.
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(html))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-storm request status = %d, want 200", resp.StatusCode)
	}

	// Close waits for the handlers abandoned by their clients to finish,
	// after which every pooled acquisition must have been released.
	srv.Close()
	if dom.ArenasEnabled() {
		arenaAfter := dom.ArenaStatsSnapshot()
		if acq, rel := arenaAfter.Acquires-arenaBefore.Acquires, arenaAfter.Releases-arenaBefore.Releases; acq != rel {
			t.Fatalf("arena leak across storm: %d acquired, %d released", acq, rel)
		}
		scratchAfter := layout.ScratchStatsSnapshot()
		if acq, rel := scratchAfter.Acquires-scratchBefore.Acquires, scratchAfter.Releases-scratchBefore.Releases; acq != rel {
			t.Fatalf("render scratch leak across storm: %d acquired, %d released", acq, rel)
		}
	}

	if fails := reg.metrics.panics.Value(); fails != 0 {
		t.Fatalf("panics_total = %d during storm, want 0", fails)
	}
}
