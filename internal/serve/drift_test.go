package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mse/internal/core"
	"mse/internal/quality"
	"mse/internal/synth"
)

// trainWrapper builds and JSON-encodes a wrapper for the engine from its
// first five sample pages.
func trainWrapper(t *testing.T, e *synth.Engine) []byte {
	t.Helper()
	var samples []*core.SamplePage
	for q := 0; q < 5; q++ {
		gp := e.Page(q)
		samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
	}
	ew, err := core.BuildWrapper(samples, core.DefaultOptions())
	if err != nil {
		t.Fatalf("train %s: %v", e.Name, err)
	}
	data, err := json.Marshal(ew)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// postPage serves one page through /extract and returns the HTTP status.
func postPage(t *testing.T, client *http.Client, base, engine string, gp *synth.GenPage) int {
	t.Helper()
	q := strings.Join(gp.Query, "+")
	resp, err := client.Post(
		fmt.Sprintf("%s/extract?engine=%s&q=%s", base, engine, q),
		"text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestDriftScheduleEndToEnd is the acceptance run for the drift detector:
// three engines served through the full HTTP stack, one of which silently
// switches to a redesigned template after its baseline is learned.  The
// drifted engine must escalate OK → SUSPECT → DRIFTED within 200 served
// pages; the two stable engines must stay OK for the whole run; /driftz,
// /metrics, /statusz and the wide-event journal must all reflect it.
func TestDriftScheduleEndToEnd(t *testing.T) {
	engines := map[string]*synth.Engine{
		"alpha": synth.NewEngine(55, 3, true),
		"beta":  synth.NewEngine(21, 2, true),
		"gamma": synth.NewEngine(33, 3, true),
	}
	reg := NewRegistry(core.DefaultOptions())
	for name, e := range engines {
		if err := reg.Add(name, trainWrapper(t, e)); err != nil {
			t.Fatal(err)
		}
	}
	cfg := quality.Config{WarmupPages: 16, Window: 10}
	reg.SetQualityConfig(cfg)
	var journalBuf bytes.Buffer
	reg.SetJournal(&journalBuf, 1)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()

	// Phase 1: every engine serves its own pages long enough to warm the
	// baselines.  All verdicts must be OK at the end.
	warm := cfg.WarmupPages + 6
	for q := 0; q < warm; q++ {
		for name, e := range engines {
			if st := postPage(t, client, srv.URL, name, e.Page(q)); st != http.StatusOK {
				t.Fatalf("warmup %s page %d: status %d", name, q, st)
			}
		}
	}
	for name := range engines {
		if v := reg.Quality().Verdict(name); v != quality.OK {
			t.Fatalf("after warmup, %s verdict = %v, want OK", name, v)
		}
	}

	// Phase 2: gamma's template is redesigned; alpha and beta keep serving
	// stable pages alongside it.  The old gamma wrapper now sees markup it
	// was never trained on.
	drifted := engines["gamma"].Drifted()
	const maxDriftPages = 200
	sawSuspect := false
	reached := -1
	for i := 0; i < maxDriftPages; i++ {
		q := warm + i
		postPage(t, client, srv.URL, "gamma", drifted.Page(q)) // any status: errors are signal too
		for _, name := range []string{"alpha", "beta"} {
			if st := postPage(t, client, srv.URL, name, engines[name].Page(q)); st != http.StatusOK {
				t.Fatalf("stable %s page %d: status %d", name, q, st)
			}
			if v := reg.Quality().Verdict(name); v != quality.OK {
				t.Fatalf("stable %s verdict = %v after %d drifted pages, want OK", name, v, i+1)
			}
		}
		switch reg.Quality().Verdict("gamma") {
		case quality.Suspect:
			sawSuspect = true
		case quality.Drifted:
			if !sawSuspect {
				t.Fatalf("gamma reached DRIFTED without passing through SUSPECT")
			}
			reached = i + 1
		}
		if reached > 0 {
			break
		}
	}
	if reached < 0 {
		t.Fatalf("gamma did not reach DRIFTED within %d drifted pages (verdict %v)",
			maxDriftPages, reg.Quality().Verdict("gamma"))
	}
	t.Logf("gamma DRIFTED after %d drifted pages", reached)

	// /driftz: machine-readable report, engines sorted, verdicts as strings.
	resp, err := client.Get(srv.URL + "/driftz")
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Engines []struct {
			Engine      string  `json:"engine"`
			Verdict     string  `json:"verdict"`
			Pages       int64   `json:"pages"`
			AnomalyRate float64 `json:"anomaly_rate"`
			Transitions int64   `json:"transitions"`
		} `json:"engines"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatalf("/driftz: %v", err)
	}
	resp.Body.Close()
	if len(report.Engines) != 3 {
		t.Fatalf("/driftz engines = %d, want 3", len(report.Engines))
	}
	wantVerdicts := map[string]string{"alpha": "OK", "beta": "OK", "gamma": "DRIFTED"}
	for i, er := range report.Engines {
		if i > 0 && report.Engines[i-1].Engine >= er.Engine {
			t.Fatalf("/driftz engines not sorted: %s before %s", report.Engines[i-1].Engine, er.Engine)
		}
		if er.Verdict != wantVerdicts[er.Engine] {
			t.Fatalf("/driftz %s verdict = %q, want %q", er.Engine, er.Verdict, wantVerdicts[er.Engine])
		}
		if er.Pages == 0 {
			t.Fatalf("/driftz %s pages = 0", er.Engine)
		}
	}

	// /metrics: per-engine quality gauges and latency percentiles.
	resp, err = client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Metrics struct {
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Count int64   `json:"count"`
				P50Ms float64 `json:"p50_ms"`
				P90Ms float64 `json:"p90_ms"`
				P99Ms float64 `json:"p99_ms"`
			} `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	resp.Body.Close()
	if got := metrics.Metrics.Gauges["engine.gamma.quality.verdict"]; got != int64(quality.Drifted) {
		t.Fatalf("gamma verdict gauge = %d, want %d", got, int64(quality.Drifted))
	}
	for _, name := range []string{"alpha", "beta"} {
		if got := metrics.Metrics.Gauges["engine."+name+".quality.verdict"]; got != int64(quality.OK) {
			t.Fatalf("%s verdict gauge = %d, want %d", name, got, int64(quality.OK))
		}
	}
	if metrics.Metrics.Gauges["engine.gamma.quality.anomaly_rate_bp"] <= 0 {
		t.Fatalf("gamma anomaly_rate_bp gauge not positive")
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		h, ok := metrics.Metrics.Histograms["engine."+name+".latency"]
		if !ok || h.Count == 0 {
			t.Fatalf("%s latency histogram missing or empty", name)
		}
		if h.P50Ms < 0 || h.P90Ms < h.P50Ms || h.P99Ms < h.P90Ms {
			t.Fatalf("%s latency percentiles not monotone: p50=%v p90=%v p99=%v",
				name, h.P50Ms, h.P90Ms, h.P99Ms)
		}
	}

	// /statusz: the human-readable table carries the verdicts.
	resp, err = client.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	statusz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"verdict", "DRIFTED", "req/s", "alpha", "beta", "gamma"} {
		if !strings.Contains(string(statusz), want) {
			t.Fatalf("/statusz missing %q:\n%s", want, statusz)
		}
	}

	// Journal: every line is complete JSON with a request ID; successful
	// extractions carry span timings and the quality fields.
	lines := strings.Split(strings.TrimRight(journalBuf.String(), "\n"), "\n")
	if len(lines) < warm*3 {
		t.Fatalf("journal lines = %d, want >= %d", len(lines), warm*3)
	}
	withStages := 0
	for i, line := range lines {
		var ev JournalEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line %d not JSON: %v\n%s", i, err, line)
		}
		if ev.RequestID == "" {
			t.Fatalf("journal line %d missing request_id", i)
		}
		if ev.Engine == "" || ev.Time == "" || ev.Status == 0 {
			t.Fatalf("journal line %d incomplete: %s", i, line)
		}
		if len(ev.StagesMs) > 0 {
			withStages++
		}
	}
	if withStages == 0 {
		t.Fatalf("no journal line carried span stage timings")
	}
	if reg.Journal().Written() != int64(len(lines)) || reg.Journal().Failed() != 0 {
		t.Fatalf("journal counters written=%d failed=%d, want written=%d failed=0",
			reg.Journal().Written(), reg.Journal().Failed(), len(lines))
	}
}
