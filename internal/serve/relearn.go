package serve

// Self-healing wrapper lifecycle: the serve-side wiring of
// internal/relearn.  The registry feeds served pages into the controller's
// per-engine reservoirs (after the response is written — never on the
// request's critical path), the drift tracker's verdict hook schedules
// relearn jobs, and a canary-validated candidate swaps in through the same
// Registry.Add path an operator would use — generation bump, cache
// invalidation, quality-baseline reset and snapshot persistence included.
//
//	GET  /relearnz            machine-readable relearn report (config,
//	                          per-engine state/attempts/canary scores)
//	POST /relearn/{engine}    manually trigger a relearn episode (also
//	                          resets a DEGRADED engine's circuit breaker)

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"

	"mse/internal/core"
	"mse/internal/quality"
	"mse/internal/relearn"
)

// relearnBuildHook, when non-nil, replaces the wrapper-induction call of
// relearn jobs.  Tests inject failures (or canned wrappers) through the
// full HTTP stack without touching the pipeline.
var relearnBuildHook func(ctx context.Context, samples []*core.SamplePage) (*core.EngineWrapper, error)

// EnableRelearn turns on the self-healing lifecycle: a DRIFTED verdict
// from the drift tracker schedules a background relearn over the engine's
// sampled pages, and a canary-validated candidate is hot-swapped into the
// registry.  Call before Handler (it installs the tracker's verdict hook).
// The returned controller is owned by the caller, who must Close it on
// shutdown to stop job goroutines.
func (r *Registry) EnableRelearn(cfg relearn.Config) *relearn.Controller {
	ctrl := relearn.NewController(cfg, relearn.Hooks{
		Build: func(ctx context.Context, samples []*core.SamplePage) (*core.EngineWrapper, error) {
			if relearnBuildHook != nil {
				return relearnBuildHook(ctx, samples)
			}
			// Serving options, but with the background-friendly worker count:
			// a relearn must not saturate the CPUs the serving path needs.
			opt := r.opts
			opt.Parallelism = cfg.BuildParallelism
			return core.BuildWrapperCtx(ctx, samples, opt)
		},
		Incumbent: func(engine string) (*core.EngineWrapper, bool) {
			ent, ok := r.get(engine)
			if !ok {
				return nil, false
			}
			return ent.ew, true
		},
		// The swap is the ordinary Add path: unmarshal + compile, generation
		// bump, cache invalidation, quality-baseline reset, snapshot persist.
		Swap: r.Add,
		Event: func(ev relearn.Event) {
			r.relearnEvent(ev)
		},
	})
	r.relearn = ctrl
	r.wireQualityHook()
	return ctrl
}

// Relearn returns the installed relearn controller (nil when disabled).
func (r *Registry) Relearn() *relearn.Controller { return r.relearn }

// wireQualityHook points the drift tracker's verdict-transition hook at
// the relearn controller.  Called from EnableRelearn and again from
// SetQualityConfig (which replaces the tracker, hook and all).
func (r *Registry) wireQualityHook() {
	if r.relearn == nil {
		return
	}
	ctrl := r.relearn
	r.quality.SetOnChange(func(engine string, from, to quality.Verdict) {
		if to == quality.Drifted {
			ctrl.NotifyDrift(engine)
		}
	})
}

// feedRelearn samples one successfully served page into the engine's
// relearn reservoir.  Callers invoke it after the response bytes are out:
// the html string is the request's own body copy, handed over rather than
// re-copied, and a slow reservoir (there isn't one — it is a hash and an
// append) could still never stretch a client-visible latency.  Nil-safe
// when relearn is disabled.
func (r *Registry) feedRelearn(engine, html string, query []string) {
	r.relearn.ObservePage(engine, html, query)
}

// relearnEvent fans one lifecycle event out to metrics, the wide-event
// journal and the operator log.  Lifecycle events are rare (per-episode,
// not per-request), so they bypass the journal's 1-in-N request sampling.
func (r *Registry) relearnEvent(ev relearn.Event) {
	logger := r.log
	if logger == nil {
		logger = slog.Default()
	}
	switch ev.Kind {
	case relearn.EventJob:
		r.metrics.relearnJobs.Inc()
		logger.Info("relearn job started", "engine", ev.Engine, "attempt", ev.Attempt)
	case relearn.EventFailure:
		r.metrics.relearnFailures.Inc()
		logger.Warn("relearn attempt failed", "engine", ev.Engine, "attempt", ev.Attempt, "error", ev.Err)
	case relearn.EventCanaryReject:
		r.metrics.relearnCanaryRejects.Inc()
	case relearn.EventSwap:
		r.metrics.relearnSwaps.Inc()
		args := []any{"engine", ev.Engine, "attempt", ev.Attempt}
		if ev.Canary != nil {
			args = append(args,
				"canary_pages", ev.Canary.Pages,
				"candidate_records", ev.Canary.Candidate.Records,
				"incumbent_records", ev.Canary.Incumbent.Records,
			)
		}
		logger.Info("relearn swapped wrapper", args...)
	case relearn.EventCircuitOpen:
		r.metrics.relearnCircuitOpen.Inc()
		logger.Warn("relearn circuit open, engine pinned DEGRADED",
			"engine", ev.Engine, "failures", ev.Attempt, "error", ev.Err)
	}
	if r.journal != nil {
		jev := JournalEvent{
			Time:      nowRFC3339(),
			RequestID: newRequestID(),
			Engine:    ev.Engine,
			Kind:      ev.Kind,
			Error:     ev.Err,
		}
		if ev.Canary != nil {
			jev.Sections = ev.Canary.Candidate.Sections
			jev.Records = ev.Canary.Candidate.Records
		}
		r.journal.Write(jev)
	}
}

// relearnzResponse is the wire form of GET /relearnz.
type relearnzResponse struct {
	Enabled bool `json:"enabled"`
	relearn.Report
}

func (r *Registry) handleRelearnz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, relearnzResponse{
		Enabled: r.relearn != nil,
		Report:  r.relearn.Report(), // nil-safe: empty report when disabled
	})
}

// relearnTriggerResponse is the wire form of POST /relearn/{engine}.
type relearnTriggerResponse struct {
	Engine string `json:"engine"`
	State  string `json:"state"`
}

// handleRelearnTrigger serves POST /relearn/{engine}: the operator's
// manual relearn, which also resets a DEGRADED engine's circuit breaker.
// 202 is deliberate — the job runs in the background; poll /relearnz (or
// watch the journal) for the outcome.
func (r *Registry) handleRelearnTrigger(w http.ResponseWriter, req *http.Request) {
	name := strings.TrimPrefix(req.URL.Path, "/relearn/")
	if req.Method != http.MethodPost {
		r.metrics.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, name, "POST required")
		return
	}
	if name == "" || strings.Contains(name, "/") {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, "", "usage: POST /relearn/{engine}")
		return
	}
	if r.relearn == nil {
		r.metrics.errors.Inc()
		writeError(w, http.StatusConflict, name, "relearn is disabled (start with -relearn)")
		return
	}
	if !r.Owns(name) {
		r.writeMisrouted(w, name)
		return
	}
	if _, ok := r.get(name); !ok {
		r.metrics.errors.Inc()
		writeError(w, http.StatusNotFound, name, fmt.Sprintf("unknown engine %q", name))
		return
	}
	st, err := r.relearn.Trigger(name)
	if err != nil {
		r.metrics.errors.Inc()
		writeError(w, http.StatusServiceUnavailable, name, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, relearnTriggerResponse{Engine: name, State: st.String()})
}
