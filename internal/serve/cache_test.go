package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mse/internal/core"
	"mse/internal/shard"
	"mse/internal/synth"
)

// TestDifferentialCachedExtraction is the soundness check for the
// content-addressed result cache: across the full paper-scale synthetic
// testbed (119 engines plus a drifted variant of each), every response
// served from the cache must be byte-identical to the same page extracted
// through a cache-less registry.  A subset of engines additionally swaps
// wrappers mid-test (retrained on the drifted pages) and re-extracts: the
// post-swap responses must match a fresh uncached extraction under the new
// wrapper, proving generation tagging lets no stale entry survive a swap.
func TestDifferentialCachedExtraction(t *testing.T) {
	bed := synth.GenerateTestbed(synth.DefaultConfig())
	if testing.Short() {
		bed = bed[:12]
	}
	opts := core.DefaultOptions()
	ref := NewRegistry(opts) // cache-less reference registry
	hot := NewRegistry(opts)
	hot.SetCache(64 << 20)
	ctx := context.Background()

	build := func(e *synth.Engine, ei int, drifted bool) []byte {
		src := e
		if drifted {
			src = e.Drifted()
		}
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := src.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		ew, err := core.BuildWrapper(samples, opts)
		if err != nil {
			t.Fatalf("engine %d (drifted=%v): %v", ei, drifted, err)
		}
		data, err := json.Marshal(ew)
		if err != nil {
			t.Fatalf("engine %d: marshal wrapper: %v", ei, err)
		}
		return data
	}
	compare := func(name string, ei, q int, what, html string, query []string) {
		t.Helper()
		want, cached, err := ref.ExtractCached(ctx, name, html, query)
		if err != nil {
			t.Fatalf("engine %d %s page %d: reference: %v", ei, what, q, err)
		}
		if cached {
			t.Fatalf("engine %d: cache-less registry reported a cache hit", ei)
		}
		first, _, err := hot.ExtractCached(ctx, name, html, query)
		if err != nil {
			t.Fatalf("engine %d %s page %d: cached registry: %v", ei, what, q, err)
		}
		if !bytes.Equal(first, want) {
			t.Errorf("engine %d %s page %d: first (filling) response differs\nref: %.200s\ngot: %.200s",
				ei, what, q, want, first)
		}
		again, hit, err := hot.ExtractCached(ctx, name, html, query)
		if err != nil {
			t.Fatalf("engine %d %s page %d: repeat: %v", ei, what, q, err)
		}
		if !hit {
			t.Errorf("engine %d %s page %d: repeat of an identical page missed the cache", ei, what, q)
		}
		if !bytes.Equal(again, want) {
			t.Errorf("engine %d %s page %d: cached response differs from uncached\nref: %.200s\ngot: %.200s",
				ei, what, q, want, again)
		}
	}

	for ei, e := range bed {
		name := fmt.Sprintf("e%03d", ei)
		data := build(e, ei, false)
		for _, r := range []*Registry{ref, hot} {
			if err := r.Add(name, data); err != nil {
				t.Fatalf("engine %d: %v", ei, err)
			}
		}
		drifted := e.Drifted()
		for q := 5; q < 10; q++ {
			gp := e.Page(q)
			compare(name, ei, q, "fresh", gp.HTML, gp.Query)
			dp := drifted.Page(q)
			compare(name, ei, q, "drifted", dp.HTML, dp.Query)
		}
		// Mid-test wrapper swap for a subset: the retrained wrapper bumps
		// the generation, so the pages just cached above must be re-
		// extracted, not replayed.
		if ei%6 == 0 {
			data2 := build(e, ei, true)
			for _, r := range []*Registry{ref, hot} {
				if err := r.Add(name, data2); err != nil {
					t.Fatalf("engine %d: swap: %v", ei, err)
				}
			}
			for q := 5; q < 8; q++ {
				dp := drifted.Page(q)
				want, _, err := ref.ExtractCached(ctx, name, dp.HTML, dp.Query)
				if err != nil {
					t.Fatalf("engine %d post-swap page %d: reference: %v", ei, q, err)
				}
				got, hit, err := hot.ExtractCached(ctx, name, dp.HTML, dp.Query)
				if err != nil {
					t.Fatalf("engine %d post-swap page %d: %v", ei, q, err)
				}
				if hit {
					t.Errorf("engine %d post-swap page %d: stale cache hit across a wrapper swap", ei, q)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("engine %d post-swap page %d: response differs from fresh wrapper\nref: %.200s\ngot: %.200s",
						ei, q, want, got)
				}
			}
		}
	}

	s := hot.Cache().Stats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("cache saw no traffic: %+v", s)
	}
	if s.Invalidated == 0 {
		t.Fatalf("wrapper swaps invalidated nothing: %+v", s)
	}
	t.Logf("cache after differential sweep: %+v (hit rate %.1f%%)", s, 100*s.HitRate())
}

// TestCachedHTTPPathByteIdentical drives the real /extract handler twice
// with the same page: the second (cached) response must be byte-for-byte
// the first, and /metrics must report the hit.
func TestCachedHTTPPathByteIdentical(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetCache(16 << 20)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := eng.Page(9)
	post := func() []byte {
		t.Helper()
		resp, err := http.Post(srv.URL+"/extract?engine=demo&q="+strings.Join(gp.Query, "+"),
			"text/html", strings.NewReader(gp.HTML))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}
	first := post()
	second := post()
	if !bytes.Equal(first, second) {
		t.Fatalf("cached response differs from uncached\nfirst:  %.300s\nsecond: %.300s", first, second)
	}
	if s := reg.Cache().Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

// TestBatchMatchesSingle: every 200 item of a batch must carry the exact
// body /extract would have served, duplicates within the batch must be
// marked cached, and per-item errors must not fail their neighbours.
func TestBatchMatchesSingle(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetCache(16 << 20)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	pa, pb := eng.Page(11), eng.Page(12)
	single := func(gp *synth.GenPage) []byte {
		t.Helper()
		resp, err := http.Post(srv.URL+"/extract?engine=demo&q="+strings.Join(gp.Query, "+"),
			"text/html", strings.NewReader(gp.HTML))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single status = %d: %s", resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}
	wantA, wantB := single(pa), single(pb)

	batch := map[string]any{"items": []map[string]any{
		{"engine": "demo", "q": strings.Join(pa.Query, "+"), "html": pa.HTML},
		{"engine": "demo", "q": strings.Join(pa.Query, "+"), "html": pa.HTML}, // duplicate
		{"engine": "demo", "q": strings.Join(pb.Query, "+"), "html": pb.HTML},
		{"engine": "nosuch", "html": "<html></html>"},
	}}
	body, _ := json.Marshal(batch)
	resp, err := http.Post(srv.URL+"/extract/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(br.Results))
	}
	compact := func(b []byte) string {
		var out bytes.Buffer
		if err := json.Compact(&out, b); err != nil {
			t.Fatalf("compacting %.120s: %v", b, err)
		}
		return out.String()
	}
	for i, want := range map[int][]byte{0: wantA, 1: wantA, 2: wantB} {
		r := br.Results[i]
		if r.Status != http.StatusOK {
			t.Fatalf("item %d status = %d (%s)", i, r.Status, r.Error)
		}
		if compact(r.Result) != compact(want) {
			t.Errorf("item %d: batch result differs from single path\nsingle: %.200s\nbatch:  %.200s",
				i, want, r.Result)
		}
	}
	// The pages were cached by the single requests above; and item 1 is a
	// within-batch duplicate of item 0.
	for i := 0; i < 3; i++ {
		if !br.Results[i].Cached {
			t.Errorf("item %d not marked cached", i)
		}
	}
	if got := br.Results[3]; got.Status != http.StatusNotFound || got.Error == "" {
		t.Errorf("unknown-engine item = %+v, want 404 with error", got)
	}
}

// TestBatchBareArrayAndLimits covers the alternate wire form and the
// request-level guards.
func TestBatchBareArrayAndLimits(t *testing.T) {
	reg, eng := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := eng.Page(13)
	arr, _ := json.Marshal([]map[string]any{{"q": strings.Join(gp.Query, "+"), "html": gp.HTML}})
	resp, err := http.Post(srv.URL+"/extract/batch?engine=demo", "application/json", bytes.NewReader(arr))
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Results) != 1 || br.Results[0].Status != http.StatusOK {
		t.Fatalf("bare array: status=%d results=%+v", resp.StatusCode, br.Results)
	}
	if br.Results[0].Engine != "demo" {
		t.Fatalf("default engine not applied: %+v", br.Results[0])
	}

	for _, tc := range []struct {
		name   string
		method string
		body   string
		want   int
	}{
		{"get", http.MethodGet, "", http.StatusMethodNotAllowed},
		{"malformed", http.MethodPost, "{", http.StatusBadRequest},
		{"empty", http.MethodPost, `{"items":[]}`, http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+"/extract/batch", strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	// Oversized item: fails that item with 413, not the batch.
	big, _ := json.Marshal(map[string]any{"items": []map[string]any{
		{"engine": "demo", "html": strings.Repeat("x", MaxPageBytes+1)},
		{"engine": "demo", "q": strings.Join(gp.Query, "+"), "html": gp.HTML},
	}})
	resp, err = http.Post(srv.URL+"/extract/batch", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	br = batchResponse{}
	json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(br.Results) != 2 {
		t.Fatalf("oversized-item batch: status=%d results=%d", resp.StatusCode, len(br.Results))
	}
	if br.Results[0].Status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized item status = %d, want 413", br.Results[0].Status)
	}
	if br.Results[1].Status != http.StatusOK {
		t.Errorf("valid neighbour status = %d, want 200", br.Results[1].Status)
	}
}

// TestBatchJournalEchoesRequestID: sampled batch sub-item events must all
// carry the batch request's correlation ID and their item index.
func TestBatchJournalEchoesRequestID(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetCache(16 << 20)
	var journal bytes.Buffer
	reg.SetJournal(&journal, 1)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := eng.Page(14)
	body, _ := json.Marshal(map[string]any{"items": []map[string]any{
		{"engine": "demo", "q": strings.Join(gp.Query, "+"), "html": gp.HTML},
		{"engine": "demo", "q": strings.Join(gp.Query, "+"), "html": gp.HTML},
	}})
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/extract/batch", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "batch-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(journal.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("journal lines = %d, want 2:\n%s", len(lines), journal.String())
	}
	for i, line := range lines {
		var ev JournalEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.RequestID != "batch-rid-1" {
			t.Errorf("line %d request_id = %q, want batch-rid-1", i, ev.RequestID)
		}
		if !ev.Batch || ev.BatchIndex != i {
			t.Errorf("line %d batch=%v index=%d, want true/%d", i, ev.Batch, ev.BatchIndex, i)
		}
		if ev.Status != http.StatusOK {
			t.Errorf("line %d status = %d", i, ev.Status)
		}
	}
	// The second item duplicates the first within the batch: cached.
	var ev1 JournalEvent
	json.Unmarshal([]byte(lines[1]), &ev1)
	if !ev1.Cached {
		t.Errorf("duplicate item's journal event not marked cached: %s", lines[1])
	}
}

// TestShardRouting: a sharded registry answers requests for engines it
// does not own with 421 naming the owner, on both serving surfaces.
func TestShardRouting(t *testing.T) {
	reg, eng := testRegistry(t)
	const shards = 3
	owner := shard.NewRing(shards).Owner("demo")
	notOwner := (owner + 1) % shards
	if err := reg.SetShard(notOwner, shards); err != nil {
		t.Fatal(err)
	}
	if reg.Owns("demo") {
		t.Fatalf("shard %d claims demo, owned by %d", notOwner, owner)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := eng.Page(15)
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	var mr misrouteJSON
	json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status = %d, want 421", resp.StatusCode)
	}
	if mr.OwnerShard != owner || mr.Shards != shards {
		t.Fatalf("misroute = %+v, want owner %d of %d", mr, owner, shards)
	}

	body, _ := json.Marshal(map[string]any{"items": []map[string]any{
		{"engine": "demo", "html": gp.HTML},
	}})
	resp, err = http.Post(srv.URL+"/extract/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var br batchResponse
	json.NewDecoder(resp.Body).Decode(&br)
	resp.Body.Close()
	if len(br.Results) != 1 || br.Results[0].Status != http.StatusMisdirectedRequest {
		t.Fatalf("batch misroute results = %+v", br.Results)
	}
	if br.Results[0].OwnerShard == nil || *br.Results[0].OwnerShard != owner {
		t.Fatalf("batch misroute owner = %v, want %d", br.Results[0].OwnerShard, owner)
	}

	// The owning shard serves it.
	if err := reg.SetShard(owner, shards); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owner shard status = %d, want 200", resp.StatusCode)
	}
}

// TestSnapshotRoundTrip: SaveSnapshot → LoadSnapshot must restore the
// wrapper fleet with its generations, and the restored registry must serve
// byte-identical responses.
func TestSnapshotRoundTrip(t *testing.T) {
	reg, eng := testRegistry(t)
	// Bump demo to generation 2 so the round trip proves generations are
	// preserved, not recomputed.
	if err := reg.Add("demo", testWrapper.data); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := reg.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	restored := NewRegistry(core.DefaultOptions())
	restored.SetCache(16 << 20)
	n, err := restored.LoadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("loaded %d engines, want 1", n)
	}
	st := restored.Status()["demo"]
	if st.Generation != 2 {
		t.Fatalf("restored generation = %d, want 2", st.Generation)
	}

	gp := eng.Page(16)
	ctx := context.Background()
	want, _, err := reg.ExtractCached(ctx, "demo", gp.HTML, gp.Query)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := restored.ExtractCached(ctx, "demo", gp.HTML, gp.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restored registry serves different bytes\nwant: %.200s\ngot:  %.200s", want, got)
	}

	// A sharded registry loads only its own slice of a fleet snapshot.
	other := NewRegistry(core.DefaultOptions())
	const shards = 3
	owner := shard.NewRing(shards).Owner("demo")
	if err := other.SetShard((owner+1)%shards, shards); err != nil {
		t.Fatal(err)
	}
	n, err = other.LoadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("non-owning shard loaded %d engines, want 0", n)
	}
}

// TestStatuszShowsGenerationsAndCache: the satellite surface — per-engine
// generation and last-swap time plus the cache line.
func TestStatuszShowsGenerationsAndCache(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetCache(16 << 20)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := eng.Page(17)
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(gp.HTML))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	page := buf.String()
	for _, want := range []string{"excache: enabled=true", "gen", "last-swap", "ago", "batch: requests="} {
		if !strings.Contains(page, want) {
			t.Errorf("statusz missing %q:\n%s", want, page)
		}
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Excache *excacheJSON `json:"excache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Excache == nil || !m.Excache.Enabled {
		t.Fatalf("metrics excache section = %+v", m.Excache)
	}
	if m.Excache.Hits != 1 || m.Excache.Misses != 1 {
		t.Fatalf("excache metrics = %+v, want 1 hit / 1 miss", m.Excache)
	}
}
