package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mse/internal/core"
	"mse/internal/synth"
)

// testWrapper trains the demo wrapper once per test binary; every test
// gets its own Registry loaded from the cached JSON.
var testWrapper = struct {
	once   sync.Once
	engine *synth.Engine
	data   []byte
	err    error
}{}

func testRegistry(t *testing.T) (*Registry, *synth.Engine) {
	t.Helper()
	testWrapper.once.Do(func() {
		e := synth.NewEngine(55, 3, true)
		testWrapper.engine = e
		var samples []*core.SamplePage
		for q := 0; q < 5; q++ {
			gp := e.Page(q)
			samples = append(samples, &core.SamplePage{HTML: gp.HTML, Query: gp.Query})
		}
		ew, err := core.BuildWrapper(samples, core.DefaultOptions())
		if err != nil {
			testWrapper.err = err
			return
		}
		testWrapper.data, testWrapper.err = json.Marshal(ew)
	})
	if testWrapper.err != nil {
		t.Fatal(testWrapper.err)
	}
	reg := NewRegistry(core.DefaultOptions())
	if err := reg.Add("demo", testWrapper.data); err != nil {
		t.Fatal(err)
	}
	return reg, testWrapper.engine
}

func TestHealthz(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestEnginesList(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/engines")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "demo" {
		t.Fatalf("names = %v", names)
	}
}

func TestExtractEndpoint(t *testing.T) {
	reg, e := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := e.Page(7)
	q := strings.Join(gp.Query, "+")
	resp, err := http.Post(srv.URL+"/extract?engine=demo&q="+q, "text/html",
		strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Engine   string `json:"engine"`
		Sections []struct {
			Heading string `json:"heading"`
			Records []struct {
				Lines []string `json:"lines"`
				Units []struct {
					Type string `json:"type"`
					Text string `json:"text"`
				} `json:"units"`
			} `json:"records"`
		} `json:"sections"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Engine != "demo" {
		t.Fatalf("engine = %q", out.Engine)
	}
	if len(out.Sections) == 0 {
		t.Fatalf("no sections extracted over HTTP")
	}
	// Records come back annotated.
	foundTitle := false
	for _, s := range out.Sections {
		for _, r := range s.Records {
			for _, u := range r.Units {
				if u.Type == "title" && u.Text != "" {
					foundTitle = true
				}
			}
		}
	}
	if !foundTitle {
		t.Fatalf("no annotated titles in response")
	}
}

func TestExtractErrors(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// GET not allowed.
	resp, _ := http.Get(srv.URL + "/extract?engine=demo")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Missing engine.
	resp, _ = http.Post(srv.URL+"/extract", "text/html", strings.NewReader("<p>x</p>"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing engine status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown engine.
	resp, _ = http.Post(srv.URL+"/extract?engine=nope", "text/html", strings.NewReader("<p>x</p>"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown engine status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Oversized body.
	big := strings.Repeat("x", MaxPageBytes+10)
	resp, _ = http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestRegistryAddRejectsGarbage(t *testing.T) {
	reg := NewRegistry(core.DefaultOptions())
	if err := reg.Add("bad", []byte("{")); err == nil {
		t.Fatalf("garbage wrapper accepted")
	}
	if len(reg.Names()) != 0 {
		t.Fatalf("garbage wrapper registered")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg, e := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	gp := e.Page(6)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html",
				strings.NewReader(gp.HTML))
			if err == nil {
				resp.Body.Close()
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestExtractMalformedHTML pins the contract that broken markup is not an
// error: the parser is total, so the service answers 200 with whatever
// sections (usually none) the wrapper finds, and the sections array is a
// JSON array, never null.
func TestExtractMalformedHTML(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	for _, body := range []string{
		"",
		"<<<>><table><tr><td<td></tr>",
		"<html><body><p>unterminated",
		"\x00\xff\xfe<div>\x80</div>",
	} {
		resp, err := http.Post(srv.URL+"/extract?engine=demo&q=x", "text/html",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Engine   string            `json:"engine"`
			Sections []json.RawMessage `json:"sections"`
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("body %q: status = %d (%s)", body, resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("body %q: bad JSON: %v", body, err)
		}
		if out.Sections == nil {
			t.Fatalf("body %q: sections is null, want []", body)
		}
	}
}

// TestConcurrentAddDuringExtraction hammers /extract while another
// goroutine keeps replacing the wrapper under the same engine name.  Under
// -race this proves a hot wrapper swap cannot tear an in-flight
// extraction or corrupt the pooled parse/render/apply state.
func TestConcurrentAddDuringExtraction(t *testing.T) {
	reg, e := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := reg.Add("demo", testWrapper.data); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	gp := e.Page(8)
	q := strings.Join(gp.Query, "+")
	var clients sync.WaitGroup
	for i := 0; i < 4; i++ {
		clients.Add(1)
		go func() {
			defer clients.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Post(srv.URL+"/extract?engine=demo&q="+q,
					"text/html", strings.NewReader(gp.HTML))
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	clients.Wait()
	close(stop)
	swapper.Wait()
}

// TestMetricsReportPools checks that the /metrics snapshot carries the
// arena/scratch pool counters after traffic has flowed through the pooled
// fast path.
func TestMetricsReportPools(t *testing.T) {
	reg, e := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := e.Page(9)
	resp, err := http.Post(srv.URL+"/extract?engine=demo&q="+strings.Join(gp.Query, "+"),
		"text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Pools *struct {
			ArenasEnabled bool `json:"arenas_enabled"`
			ParseArena    struct {
				Acquires int64 `json:"acquires"`
			} `json:"parse_arena"`
		} `json:"pools"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Pools == nil {
		t.Fatalf("metrics snapshot has no pools section")
	}
	if out.Pools.ArenasEnabled && out.Pools.ParseArena.Acquires == 0 {
		t.Fatalf("arenas enabled but no arena acquires recorded")
	}
}
