package serve

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mse/internal/dom"
)

// TestPanicRecovery exercises the acceptance scenario end to end: a
// handler that panics mid-extraction must produce a JSON 500, increment
// panics_total, leak no pooled arena, and leave the server serving.
func TestPanicRecovery(t *testing.T) {
	reg, eng := testRegistry(t)
	reg.SetAccessLog(slog.New(slog.NewTextHandler(io.Discard, nil)))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	extractTestHook = func(string) { panic("injected test panic") }
	defer func() { extractTestHook = nil }()

	before := dom.ArenaStatsSnapshot()
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html",
		strings.NewReader(eng.Page(11).HTML))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500; body %s", resp.StatusCode, body)
	}
	var ej errorJSON
	if err := json.Unmarshal(body, &ej); err != nil {
		t.Fatalf("500 body is not JSON: %v: %s", err, body)
	}
	if ej.Error == "" || ej.Engine != "demo" {
		t.Fatalf("unexpected error payload: %+v", ej)
	}
	if got := reg.metrics.panics.Value(); got != 1 {
		t.Fatalf("panics_total = %d, want 1", got)
	}
	// The deferred ReleasePage must have run during the unwind: every
	// arena acquired since the baseline has been released again.
	if dom.ArenasEnabled() {
		after := dom.ArenaStatsSnapshot()
		acq := after.Acquires - before.Acquires
		rel := after.Releases - before.Releases
		if acq != rel {
			t.Fatalf("arena leak across panic: %d acquired, %d released", acq, rel)
		}
	}

	// The server must keep serving: the same request without the panic
	// hook succeeds.
	extractTestHook = nil
	resp2, err := http.Post(srv.URL+"/extract?engine=demo", "text/html",
		strings.NewReader(eng.Page(11).HTML))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-panic request status = %d, want 200", resp2.StatusCode)
	}
}

// TestExtractDeadlineMaps503 feeds the handler a request whose deadline
// has already expired: the pipeline must abort with ErrCanceled and the
// handler must map it to 503, counted as canceled — not as an engine
// error.
func TestExtractDeadlineMaps503(t *testing.T) {
	reg, eng := testRegistry(t)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/extract?engine=demo",
		strings.NewReader(eng.Page(12).HTML)).WithContext(ctx)
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, req)

	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rr.Code, rr.Body.String())
	}
	if got := reg.metrics.canceled.Value(); got != 1 {
		t.Fatalf("canceled_total = %d, want 1", got)
	}
	if got := reg.metrics.engine("demo").errors.Value(); got != 0 {
		t.Fatalf("engine errors = %d, want 0 (client deadline is not an engine fault)", got)
	}
}

// TestExtractClientCancelMaps499: a canceled (not deadline-expired)
// context maps to the 499 client-closed-request status.
func TestExtractClientCancelMaps499(t *testing.T) {
	reg, eng := testRegistry(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/extract?engine=demo",
		strings.NewReader(eng.Page(13).HTML)).WithContext(ctx)
	rr := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rr, req)

	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d; body %s", rr.Code, statusClientClosedRequest, rr.Body.String())
	}
	if got := reg.metrics.canceled.Value(); got != 1 {
		t.Fatalf("canceled_total = %d, want 1", got)
	}
}
