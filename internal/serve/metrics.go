package serve

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"mse/internal/dom"
	"mse/internal/editdist"
	"mse/internal/excache"
	"mse/internal/layout"
	"mse/internal/obs"
	"mse/internal/prune"
	"mse/internal/quality"
	"mse/internal/relearn"
	"mse/internal/shard"
	"mse/internal/wrapper"
)

// Metrics aggregates service-level observability: an in-flight gauge, a
// total request counter and, per engine, request/error/section/record
// counters plus a latency histogram.  All metrics also live in an
// obs.Registry under dotted names ("engine.<name>.requests", ...), which
// is what /metrics serializes and what Publish exposes via expvar.
type Metrics struct {
	start    time.Time
	reg      *obs.Registry
	inFlight *obs.Gauge
	requests *obs.Counter
	errors   *obs.Counter
	// Fault-tolerance counters (§10 of DESIGN.md): recovered handler
	// panics, requests shed by admission control, and requests abandoned
	// because the client vanished or the deadline expired.
	panics   *obs.Counter
	shed     *obs.Counter
	canceled *obs.Counter
	// Sharded serving: requests answered 421 because another shard owns
	// the engine.
	misrouted *obs.Counter
	// Batch serving: batch requests and the pages they carried.
	batches    *obs.Counter
	batchPages *obs.Counter
	// Self-healing lifecycle counters (§14 of DESIGN.md): relearn jobs
	// started, failed attempts, candidates rejected by the canary,
	// completed hot swaps, and circuit-breaker openings.
	relearnJobs          *obs.Counter
	relearnFailures      *obs.Counter
	relearnCanaryRejects *obs.Counter
	relearnSwaps         *obs.Counter
	relearnCircuitOpen   *obs.Counter
	// Reservoir occupancy, refreshed from the controller on every /metrics
	// scrape (gauges, not counters: the reservoir drains and refills).
	relearnReservoirPages *obs.Gauge
	relearnReservoirBytes *obs.Gauge
	// extractInFlight counts requests holding an extraction slot (distinct
	// from inFlight, which counts every HTTP request including /metrics
	// scrapes); queueWait is how long admitted /extract requests waited
	// for their slot.
	extractInFlight *obs.Gauge
	queueWait       *obs.Histogram

	mu      sync.Mutex
	engines map[string]*engineMetrics
}

type engineMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	sections *obs.Counter
	records  *obs.Counter
	latency  *obs.Histogram
	// Quality metrics mirrored from the drift tracker after every
	// extraction: the verdict as an enum gauge (0 OK, 1 SUSPECT,
	// 2 DRIFTED), the smoothed anomaly rate in basis points (1/100 of a
	// percent — gauges are integers), and the count of empty extractions.
	verdict   *obs.Gauge
	anomalyBP *obs.Gauge
	empty     *obs.Counter
}

// applyQuality mirrors a drift assessment onto the engine's gauges.
func (em *engineMetrics) applyQuality(a quality.Assessment) {
	em.verdict.Set(int64(a.Verdict))
	em.anomalyBP.Set(int64(a.AnomalyRate * 10000))
}

// NewMetrics returns an empty metrics set with its uptime clock started.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		start:                 time.Now(),
		reg:                   reg,
		inFlight:              reg.Gauge("http.in_flight"),
		requests:              reg.Counter("http.requests_total"),
		errors:                reg.Counter("http.errors_total"),
		panics:                reg.Counter("http.panics_total"),
		shed:                  reg.Counter("http.shed_total"),
		canceled:              reg.Counter("http.canceled_total"),
		misrouted:             reg.Counter("http.misrouted_total"),
		batches:               reg.Counter("batch.requests_total"),
		batchPages:            reg.Counter("batch.pages_total"),
		relearnJobs:           reg.Counter("relearn.jobs_total"),
		relearnFailures:       reg.Counter("relearn.failures_total"),
		relearnCanaryRejects:  reg.Counter("relearn.canary_rejects_total"),
		relearnSwaps:          reg.Counter("relearn.swaps_total"),
		relearnCircuitOpen:    reg.Counter("relearn.circuit_open_total"),
		relearnReservoirPages: reg.Gauge("relearn.reservoir_pages"),
		relearnReservoirBytes: reg.Gauge("relearn.reservoir_bytes"),
		extractInFlight:       reg.Gauge("extract.in_flight"),
		queueWait:             reg.Histogram("extract.queue_wait", nil),
		engines:               map[string]*engineMetrics{},
	}
}

// Registry returns the underlying obs.Registry (e.g. to Publish it on
// expvar).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// InFlight returns the number of requests currently being served.
func (m *Metrics) InFlight() int64 { return m.inFlight.Value() }

// Uptime returns the time since the metrics (and in practice the service)
// started.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// engine returns the per-engine metric set, creating it on first use.
func (m *Metrics) engine(name string) *engineMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.engines[name]
	if !ok {
		prefix := "engine." + name + "."
		em = &engineMetrics{
			requests:  m.reg.Counter(prefix + "requests"),
			errors:    m.reg.Counter(prefix + "errors"),
			sections:  m.reg.Counter(prefix + "sections"),
			records:   m.reg.Counter(prefix + "records"),
			latency:   m.reg.Histogram(prefix+"latency", nil),
			verdict:   m.reg.Gauge(prefix + "quality.verdict"),
			anomalyBP: m.reg.Gauge(prefix + "quality.anomaly_rate_bp"),
			empty:     m.reg.Counter(prefix + "quality.empty_total"),
		}
		m.engines[name] = em
	}
	return em
}

// metricsResponse is the wire form of GET /metrics.
type metricsResponse struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Metrics       obs.Snapshot   `json:"metrics"`
	TreeCache     *treeCacheJSON `json:"tree_cache,omitempty"`
	Pools         *poolsJSON     `json:"pools,omitempty"`
	Excache       *excacheJSON   `json:"excache,omitempty"`
	Relearn       *relearnJSON   `json:"relearn,omitempty"`
}

// relearnJSON reports the self-healing lifecycle.
type relearnJSON struct {
	Enabled bool `json:"enabled"`
	relearn.Stats
}

// excacheJSON reports the content-addressed extraction result cache.
type excacheJSON struct {
	Enabled bool    `json:"enabled"`
	HitRate float64 `json:"hit_rate"`
	excache.Stats
}

func excacheSnapshot(c *excache.Cache) *excacheJSON {
	s := c.Stats()
	return &excacheJSON{Enabled: c != nil, HitRate: s.HitRate(), Stats: s}
}

// poolsJSON reports the process-wide per-request memory pools of the
// extraction fast path: parse arenas, render scratches and apply
// scratches (see dom.Arena and the DESIGN notes on arena soundness).
type poolsJSON struct {
	ArenasEnabled bool                      `json:"arenas_enabled"`
	ParseArena    dom.ArenaStats            `json:"parse_arena"`
	RenderScratch layout.ScratchStats       `json:"render_scratch"`
	ApplyScratch  wrapper.ApplyScratchStats `json:"apply_scratch"`

	// Compiled-extraction fast path: wrapper lowering hits and the
	// DOM-pruning pass (candidate location, skipped subtrees, full vs
	// skeleton line counts).
	CompiledEnabled bool                  `json:"compiled_enabled"`
	Compiled        wrapper.CompiledStats `json:"compiled"`
	Prune           prune.Stats           `json:"prune"`
}

func poolsSnapshot() *poolsJSON {
	return &poolsJSON{
		ArenasEnabled:   dom.ArenasEnabled(),
		ParseArena:      dom.ArenaStatsSnapshot(),
		RenderScratch:   layout.ScratchStatsSnapshot(),
		ApplyScratch:    wrapper.ApplyScratchStatsSnapshot(),
		CompiledEnabled: wrapper.CompiledEnabled(),
		Compiled:        wrapper.CompiledStatsSnapshot(),
		Prune:           prune.StatsSnapshot(),
	}
}

// treeCacheJSON reports the process-wide tree-distance memoization cache.
type treeCacheJSON struct {
	Enabled bool    `json:"enabled"`
	HitRate float64 `json:"hit_rate"`
	editdist.CacheStats
}

func treeCacheSnapshot() *treeCacheJSON {
	s := editdist.Stats()
	return &treeCacheJSON{
		Enabled:    editdist.CacheEnabled(),
		HitRate:    s.HitRate(),
		CacheStats: s,
	}
}

// snapshot returns the /metrics payload.  c is the registry's extraction
// cache, rc the relearn controller (each nil when disabled).
func (m *Metrics) snapshot(c *excache.Cache, rc *relearn.Controller) metricsResponse {
	rs := rc.Stats() // nil-safe: zero stats when disabled
	m.relearnReservoirPages.Set(rs.ReservoirPages)
	m.relearnReservoirBytes.Set(rs.ReservoirBytes)
	return metricsResponse{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Metrics:       m.reg.Snapshot(),
		TreeCache:     treeCacheSnapshot(),
		Pools:         poolsSnapshot(),
		Excache:       excacheSnapshot(c),
		Relearn:       &relearnJSON{Enabled: rc != nil, Stats: rs},
	}
}

// ratio returns num/den as a percentage, 0 when the denominator is zero —
// the guard every hit_rate-style computation on this page goes through.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// perSecond returns n per uptime second, 0 while the uptime is still too
// short to divide by meaningfully.
func perSecond(n int64, uptime time.Duration) float64 {
	secs := uptime.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(n) / secs
}

// StatusInfo is the registry-side input to /statusz: the loaded engines
// with their generations, the drift tracker, the extraction cache counters
// and the shard assignment.
type StatusInfo struct {
	Engines     []string
	Status      map[string]EngineStatus
	Parallelism int
	Quality     *quality.Tracker
	Cache       excache.Stats
	CacheOn     bool
	ShardIndex  int
	ShardCount  int
	Sharded     bool
	Relearn     relearn.Stats
	RelearnOn   bool
}

// writeStatusz renders the human-readable status page: uptime, in-flight
// count, pipeline parallelism, shard assignment, the extraction and
// tree-distance cache counters, pool reuse rates, and a deterministically
// sorted per-engine table of request counts, uptime-relative request
// rates, latency quantiles, wrapper generations with last-swap ages and
// drift verdicts.
func (m *Metrics) writeStatusz(w io.Writer, info StatusInfo) {
	uptime := m.Uptime()
	fmt.Fprintf(w, "mse-serve status\n")
	fmt.Fprintf(w, "uptime:    %s\n", uptime.Round(time.Second))
	fmt.Fprintf(w, "in-flight: %d\n", m.InFlight())
	fmt.Fprintf(w, "requests:  %d (%.2f/s)\n",
		m.requests.Value(), perSecond(m.requests.Value(), uptime))
	fmt.Fprintf(w, "faults: panics=%d shed=%d canceled=%d misrouted=%d extract-in-flight=%d\n",
		m.panics.Value(), m.shed.Value(), m.canceled.Value(), m.misrouted.Value(),
		m.extractInFlight.Value())
	if info.Sharded {
		fmt.Fprintf(w, "shard: %d/%d (consistent hashing, %d vnodes/shard)\n",
			info.ShardIndex, info.ShardCount, shard.VirtualNodes)
	}
	if info.Parallelism <= 0 {
		fmt.Fprintf(w, "parallelism: GOMAXPROCS (%d)\n", runtime.GOMAXPROCS(0))
	} else {
		fmt.Fprintf(w, "parallelism: %d\n", info.Parallelism)
	}
	cs := info.Cache
	fmt.Fprintf(w, "excache: enabled=%v entries=%d bytes=%d/%d hits=%d misses=%d collapsed=%d evictions=%d invalidated=%d hit-rate=%.1f%%\n",
		info.CacheOn, cs.Entries, cs.Bytes, cs.MaxBytes, cs.Hits, cs.Misses,
		cs.Collapsed, cs.Evictions, cs.Invalidated, 100*cs.HitRate())
	fmt.Fprintf(w, "batch: requests=%d pages=%d\n", m.batches.Value(), m.batchPages.Value())
	rs := info.Relearn
	fmt.Fprintf(w, "relearn: enabled=%v jobs=%d failures=%d canary-rejects=%d swaps=%d degraded=%d active=%d reservoir=%dp/%dB\n",
		info.RelearnOn, rs.Jobs, rs.Failures, rs.CanaryRejects, rs.Swaps,
		rs.Degraded, rs.Active, rs.ReservoirPages, rs.ReservoirBytes)
	tc := treeCacheSnapshot()
	fmt.Fprintf(w, "tree-cache: enabled=%v entries=%d lookups=%d identical=%d hits=%d misses=%d early-exits=%d evictions=%d hit-rate=%.1f%%\n",
		tc.Enabled, tc.Entries, tc.Lookups, tc.Identical, tc.Hits, tc.Misses,
		tc.EarlyExits, tc.Evictions, 100*tc.HitRate)
	ps := poolsSnapshot()
	fmt.Fprintf(w, "pools: arenas=%v parse(acquires=%d reuses=%d releases=%d reuse-rate=%.1f%%) render(acquires=%d reuses=%d releases=%d reuse-rate=%.1f%%) apply(acquires=%d reuses=%d reuse-rate=%.1f%%)\n",
		ps.ArenasEnabled,
		ps.ParseArena.Acquires, ps.ParseArena.Reuses, ps.ParseArena.Releases,
		ratio(ps.ParseArena.Reuses, ps.ParseArena.Acquires),
		ps.RenderScratch.Acquires, ps.RenderScratch.Reuses, ps.RenderScratch.Releases,
		ratio(ps.RenderScratch.Reuses, ps.RenderScratch.Acquires),
		ps.ApplyScratch.Acquires, ps.ApplyScratch.Reuses,
		ratio(ps.ApplyScratch.Reuses, ps.ApplyScratch.Acquires))
	fmt.Fprintf(w, "engines:   %d\n\n", len(info.Engines))

	// Show every loaded engine, including ones never hit, plus any
	// engine that collected metrics before being removed; the merged set
	// is sorted so consecutive scrapes are diffable.
	m.mu.Lock()
	names := map[string]bool{}
	for _, n := range info.Engines {
		names[n] = true
	}
	for n := range m.engines {
		names[n] = true
	}
	m.mu.Unlock()
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "%-20s %9s %7s %7s %9s %9s %9s %9s %9s %4s %10s %9s\n",
		"engine", "requests", "req/s", "errors", "sections", "records", "p50", "p90", "p99", "gen", "last-swap", "verdict")
	for _, n := range sorted {
		em := m.engine(n)
		gen, swap := "-", "-"
		if st, ok := info.Status[n]; ok {
			gen = fmt.Sprintf("%d", st.Generation)
			swap = time.Since(st.SwappedAt).Round(time.Second).String() + " ago"
		}
		fmt.Fprintf(w, "%-20s %9d %7.2f %7d %9d %9d %9s %9s %9s %4s %10s %9s\n",
			n, em.requests.Value(), perSecond(em.requests.Value(), uptime),
			em.errors.Value(),
			em.sections.Value(), em.records.Value(),
			fmtQuantile(em.latency, 0.50),
			fmtQuantile(em.latency, 0.90),
			fmtQuantile(em.latency, 0.99),
			gen, swap,
			info.Quality.Verdict(n))
	}
}

func fmtQuantile(h *obs.Histogram, q float64) string {
	if h.Count() == 0 {
		return "-"
	}
	return h.Quantile(q).Round(100 * time.Microsecond).String()
}
