package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDEcho(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// A plausible client ID is honored and echoed verbatim.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set(requestIDHeader, "client-id-42")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "client-id-42" {
		t.Fatalf("echoed id = %q, want client-id-42", got)
	}

	// No client ID: the server generates one and echoes it.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); !hexID.MatchString(got) {
		t.Fatalf("generated id = %q, want 16 hex chars", got)
	}

	// An oversized client ID is replaced, not echoed.
	huge := strings.Repeat("x", maxRequestIDLen+1)
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
	req.Header.Set(requestIDHeader, huge)
	resp, err = srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got == huge || !hexID.MatchString(got) {
		t.Fatalf("oversized id echoed back or not regenerated: %q", got)
	}
}

func TestJournalSampling(t *testing.T) {
	reg, e := testRegistry(t)
	var buf bytes.Buffer
	reg.SetJournal(&buf, 3)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	const n = 9
	for i := 0; i < n; i++ {
		if st := postPage(t, srv.Client(), srv.URL, "demo", e.Page(i)); st != http.StatusOK {
			t.Fatalf("page %d: status %d", i, st)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n/3 {
		t.Fatalf("journal lines = %d, want %d (1-in-3 of %d)", len(lines), n/3, n)
	}
	for i, line := range lines {
		var ev JournalEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Engine != "demo" || ev.Status != http.StatusOK || ev.Sections == 0 {
			t.Fatalf("line %d incomplete: %s", i, line)
		}
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestJournalWriteFailure: a failing journal sink must not fail the
// requests being journaled — errors are counted and extraction proceeds.
func TestJournalWriteFailure(t *testing.T) {
	reg, e := testRegistry(t)
	reg.SetJournal(failWriter{}, 1)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	for i := 0; i < 3; i++ {
		if st := postPage(t, srv.Client(), srv.URL, "demo", e.Page(i)); st != http.StatusOK {
			t.Fatalf("page %d: status %d", i, st)
		}
	}
	if w, f := reg.Journal().Written(), reg.Journal().Failed(); w != 0 || f != 3 {
		t.Fatalf("written=%d failed=%d, want 0/3", w, f)
	}
}

// TestAccessLogJSONRequestID: the structured access log carries the same
// correlation ID the response header echoed.
func TestAccessLogJSONRequestID(t *testing.T) {
	reg, _ := testRegistry(t)
	var logBuf bytes.Buffer
	reg.SetAccessLog(slog.New(slog.NewJSONHandler(&logBuf, nil)))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/engines", nil)
	req.Header.Set(requestIDHeader, "corr-7")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log not JSON: %v\n%s", err, logBuf.String())
	}
	if entry["request_id"] != "corr-7" {
		t.Fatalf("access log request_id = %v, want corr-7", entry["request_id"])
	}
	if entry["path"] != "/engines" || entry["status"] != float64(http.StatusOK) {
		t.Fatalf("access log entry incomplete: %s", logBuf.String())
	}
}
