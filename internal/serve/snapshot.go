package serve

// Registry snapshots: one JSON document holding every loaded wrapper blob
// together with its generation, so a restarted shard resumes exactly where
// it left off — same wrappers, same generations, and therefore the same
// cache-key space (a warm peer cache or a persisted result store stays
// valid across the restart instead of being orphaned by a generation
// reset).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// snapshotVersion is the format version SaveSnapshot writes and
// LoadSnapshot accepts.
const snapshotVersion = 1

// snapshotFile is the wire form of a registry snapshot.
type snapshotFile struct {
	Version int              `json:"version"`
	SavedAt string           `json:"saved_at"`
	Engines []snapshotEngine `json:"engines"`
}

// snapshotEngine is one engine in a snapshot: the raw wrapper JSON exactly
// as it was Added, plus the generation it was serving under.
type snapshotEngine struct {
	Name       string          `json:"name"`
	Generation uint64          `json:"generation"`
	Wrapper    json.RawMessage `json:"wrapper"`
}

// SaveSnapshot writes the registry's current wrapper fleet — blobs and
// generations — as one JSON document, sorted by engine name so consecutive
// snapshots are diffable.
func (r *Registry) SaveSnapshot(w io.Writer) error {
	r.mu.RLock()
	snap := snapshotFile{Version: snapshotVersion, SavedAt: nowRFC3339()}
	for name, e := range r.wrappers {
		snap.Engines = append(snap.Engines, snapshotEngine{
			Name:       name,
			Generation: e.gen,
			Wrapper:    json.RawMessage(e.raw),
		})
	}
	r.mu.RUnlock()
	sort.Slice(snap.Engines, func(i, j int) bool { return snap.Engines[i].Name < snap.Engines[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	return nil
}

// SetSnapshotPath arms automatic snapshot persistence: after every wrapper
// swap (relearn-driven or operator-driven) the full fleet is rewritten to
// path, so a restart resumes with the wrappers actually serving, not the
// ones loaded at startup.  Empty path disables persistence (the default).
// Call before Handler.
func (r *Registry) SetSnapshotPath(path string) { r.snapPath = path }

// persistSnapshot writes the fleet to the armed snapshot path atomically:
// a temp file in the same directory, fsynced, then renamed over the
// target, so a crash mid-write can never leave a torn snapshot for the
// next start to choke on.  Concurrent swaps serialize on snapMu — last
// writer wins with a complete document either way.  A no-op without an
// armed path.
func (r *Registry) persistSnapshot() error {
	if r.snapPath == "" {
		return nil
	}
	var buf bytes.Buffer
	if err := r.SaveSnapshot(&buf); err != nil {
		return err
	}
	r.snapMu.Lock()
	defer r.snapMu.Unlock()
	tmp, err := os.CreateTemp(filepath.Dir(r.snapPath), ".snapshot-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: snapshot temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.snapPath); err != nil {
		return fmt.Errorf("serve: installing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot restores engines from a snapshot written by SaveSnapshot,
// preserving each engine's generation.  When the registry is sharded,
// engines owned by other shards are skipped — one fleet-wide snapshot can
// feed every shard.  Returns the number of engines loaded.
func (r *Registry) LoadSnapshot(rd io.Reader) (int, error) {
	var snap snapshotFile
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&snap); err != nil {
		return 0, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("serve: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	loaded := 0
	for _, e := range snap.Engines {
		if e.Name == "" {
			return loaded, fmt.Errorf("serve: snapshot engine %d has no name", loaded)
		}
		if !r.Owns(e.Name) {
			continue
		}
		gen := e.Generation
		if gen == 0 {
			gen = 1
		}
		if err := r.addGen(e.Name, e.Wrapper, gen); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}
