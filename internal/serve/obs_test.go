package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsEndpoint(t *testing.T) {
	reg, e := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// One successful extraction and one unknown-engine error.
	gp := e.Page(6)
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, _ = http.Post(srv.URL+"/extract?engine=nope", "text/html", strings.NewReader("<p>x</p>"))
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		UptimeSeconds float64 `json:"uptime_seconds"`
		Metrics       struct {
			Counters   map[string]int64 `json:"counters"`
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Count int64   `json:"count"`
				P50Ms float64 `json:"p50_ms"`
				P95Ms float64 `json:"p95_ms"`
				P99Ms float64 `json:"p99_ms"`
			} `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", out.UptimeSeconds)
	}
	c := out.Metrics.Counters
	if c["engine.demo.requests"] != 1 {
		t.Errorf("demo requests = %d, want 1", c["engine.demo.requests"])
	}
	if c["engine.demo.sections"] <= 0 || c["engine.demo.records"] <= 0 {
		t.Errorf("demo sections/records = %d/%d, want > 0",
			c["engine.demo.sections"], c["engine.demo.records"])
	}
	if c["http.errors_total"] != 1 {
		t.Errorf("errors_total = %d, want 1", c["http.errors_total"])
	}
	// The unknown engine must not have created per-engine metrics.
	if _, ok := c["engine.nope.requests"]; ok {
		t.Errorf("unknown engine grew the metrics map")
	}
	// requests_total covers /extract calls and this /metrics call.
	if c["http.requests_total"] < 3 {
		t.Errorf("requests_total = %d, want >= 3", c["http.requests_total"])
	}
	h := out.Metrics.Histograms["engine.demo.latency"]
	if h.Count != 1 {
		t.Errorf("latency count = %d, want 1", h.Count)
	}
	if h.P50Ms < 0 || h.P95Ms < h.P50Ms || h.P99Ms < h.P95Ms {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v", h.P50Ms, h.P95Ms, h.P99Ms)
	}
}

func TestStatusz(t *testing.T) {
	reg, e := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := e.Page(6)
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"uptime:", "in-flight:", "engine", "demo", "p50"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("statusz missing %q:\n%s", want, body)
		}
	}
}

// Test413JSON asserts the oversized-body path returns 413 with a JSON
// body naming the engine.
func Test413JSON(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	big := strings.Repeat("x", MaxPageBytes+10)
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e struct {
		Error  string `json:"error"`
		Engine string `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if e.Engine != "demo" || e.Error == "" {
		t.Fatalf("413 body = %+v", e)
	}
}

// TestErrorResponsesIncludeEngine asserts the other error paths name the
// engine too.
func TestErrorResponsesIncludeEngine(t *testing.T) {
	reg, _ := testRegistry(t)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/extract?engine=ghost", "text/html", strings.NewReader("<p>x</p>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e struct {
		Error  string `json:"error"`
		Engine string `json:"engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Engine != "ghost" || !strings.Contains(e.Error, "ghost") {
		t.Fatalf("404 body = %+v", e)
	}
}

func TestAccessLog(t *testing.T) {
	reg, e := testRegistry(t)
	var buf bytes.Buffer
	reg.SetAccessLog(slog.New(slog.NewTextHandler(&buf, nil)))
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	gp := e.Page(6)
	resp, err := http.Post(srv.URL+"/extract?engine=demo", "text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := buf.String()
	for _, want := range []string{"method=POST", "path=/extract", "engine=demo", "status=200", "bytes=", "duration="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}
}

// TestGracefulShutdown starts the real server loop, parks a request in a
// slow handler, cancels the run context and asserts the in-flight request
// still completes before Run returns.
func TestGracefulShutdown(t *testing.T) {
	reg, _ := testRegistry(t)
	mux := http.NewServeMux()
	release := make(chan struct{})
	entered := make(chan struct{})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, req *http.Request) {
		close(entered)
		<-release
		fmt.Fprintln(w, "slow done")
	})
	mux.Handle("/", reg.Handler())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ln.Addr().String(), mux)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() {
		runDone <- Run(ctx, srv, RunConfig{
			DrainTimeout: 5 * time.Second,
			InFlight:     reg.Metrics().InFlight,
			Listener:     ln,
		})
	}()

	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqDone <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		reqDone <- string(body)
	}()

	select {
	case <-entered: // the request is in flight
	case err := <-runDone:
		t.Fatalf("Run returned early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the handler")
	}
	cancel() // trigger shutdown while the request is in flight

	select {
	case err := <-runDone:
		t.Fatalf("Run returned %v before draining the in-flight request", err)
	case <-time.After(100 * time.Millisecond):
		// Good: Run is waiting on the drain.
	}

	close(release)
	select {
	case body := <-reqDone:
		if !strings.Contains(body, "slow done") {
			t.Fatalf("in-flight request body = %q", body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after drain")
	}

	// The listener is closed: new connections must fail.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
