package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mse/internal/core"
	"mse/internal/quality"
	"mse/internal/relearn"
	"mse/internal/synth"
)

// postPageBody is postPage returning the response body too, for tests that
// check what was extracted, not just that something was.
func postPageBody(t *testing.T, client *http.Client, base, engine string, gp *synth.GenPage) (int, string) {
	t.Helper()
	q := strings.Join(gp.Query, "+")
	resp, err := client.Post(
		fmt.Sprintf("%s/extract?engine=%s&q=%s", base, engine, q),
		"text/html", strings.NewReader(gp.HTML))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// relearnzWire is the decoded form of GET /relearnz (State serializes as a
// string, so the report cannot round-trip through relearn.Report).
type relearnzWire struct {
	Enabled bool           `json:"enabled"`
	Config  relearn.Config `json:"config"`
	Engines []struct {
		Engine              string                `json:"engine"`
		State               string                `json:"state"`
		ConsecutiveFailures int                   `json:"consecutive_failures"`
		Attempts            int64                 `json:"attempts"`
		Swaps               int64                 `json:"swaps"`
		CanaryRejects       int64                 `json:"canary_rejects"`
		ReservoirPages      int                   `json:"reservoir_pages"`
		LastError           string                `json:"last_error"`
		LastCanary          *relearn.CanaryResult `json:"last_canary"`
	} `json:"engines"`
}

func getRelearnz(t *testing.T, client *http.Client, base string) relearnzWire {
	t.Helper()
	resp, err := client.Get(base + "/relearnz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/relearnz status %d", resp.StatusCode)
	}
	var out relearnzWire
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("/relearnz: %v", err)
	}
	return out
}

// TestRelearnHealLoopEndToEnd is the acceptance run for the self-healing
// lifecycle: an engine redesigns its template mid-run, the drift detector
// escalates to DRIFTED, the relearn controller re-learns a wrapper from the
// sampled drifted traffic, canary-validates it against the incumbent and
// hot-swaps it — all while every served request keeps returning 200.  After
// the swap the engine extracts the new template correctly and its verdict
// re-warms to OK on a fresh baseline.
func TestRelearnHealLoopEndToEnd(t *testing.T) {
	// Engine (21, 2, multi): its Drifted() redesign fully breaks the old
	// wrapper (zero sections extracted), which makes the canary comparison
	// unambiguous.
	eng := synth.NewEngine(21, 2, true)
	reg := NewRegistry(core.DefaultOptions())
	if err := reg.Add("beta", trainWrapper(t, eng)); err != nil {
		t.Fatal(err)
	}
	qcfg := quality.Config{WarmupPages: 12, Window: 8}
	reg.SetQualityConfig(qcfg)
	var journalBuf bytes.Buffer
	reg.SetJournal(&journalBuf, 1)
	snapPath := filepath.Join(t.TempDir(), "fleet.snap")
	reg.SetSnapshotPath(snapPath)

	rcfg := relearn.Config{
		SampleBytes:  4 << 20,
		MaxPages:     24,
		MinPages:     4,
		TrainPages:   5,
		HoldoutPages: 2,
		Backoff:      20 * time.Millisecond,
		MaxBackoff:   50 * time.Millisecond,
		MaxFailures:  10,
	}
	ctrl := reg.EnableRelearn(rcfg)
	defer ctrl.Close()

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()

	// The drifting engine: original template up to query index warm,
	// redesigned template from there on.
	warm := qcfg.WarmupPages + 4
	de := synth.NewDriftingEngine(eng, warm)

	// Phase 1: warm the drift baseline on the original template.
	for q := 0; q < warm; q++ {
		if st := postPage(t, client, srv.URL, "beta", de.Page(q)); st != http.StatusOK {
			t.Fatalf("warmup page %d: status %d", q, st)
		}
	}
	if v := reg.Quality().Verdict("beta"); v != quality.OK {
		t.Fatalf("after warmup, verdict = %v, want OK", v)
	}

	// Phase 2: the template flips.  Keep serving; the detect/adapt loop
	// must notice, relearn and swap without a single failed request.
	const maxDriftPages = 400
	healedAfter := -1
	q := warm
	for ; q < warm+maxDriftPages; q++ {
		st := postPage(t, client, srv.URL, "beta", de.Page(q))
		if st != http.StatusOK {
			t.Fatalf("drifted page %d: status %d (serving must never fail while healing)", q, st)
		}
		if reg.Quality().Verdict("beta") != quality.OK {
			// Yield to the background job between pages once healing can
			// be in flight.  (The swap itself resets the verdict to OK, so
			// DRIFTED is asserted from the journal below, not polled here —
			// a fast heal can outrun the poll.)
			time.Sleep(2 * time.Millisecond)
		}
		if reg.Relearn().Stats().Swaps >= 1 {
			healedAfter = q - warm + 1
			q++
			break
		}
	}
	if healedAfter < 0 {
		rep, _ := json.Marshal(reg.Relearn().Report())
		t.Fatalf("no swap within %d drifted pages\nrelearn: %s", maxDriftPages, rep)
	}
	t.Logf("healed after %d drifted pages", healedAfter)

	// The swap went through the ordinary Add path: generation bumped,
	// drift baseline reset so the new wrapper re-warms against its own
	// normal.
	if g := reg.Status()["beta"].Generation; g != 2 {
		t.Fatalf("generation = %d after heal, want 2", g)
	}
	if v := reg.Quality().Verdict("beta"); v != quality.OK {
		t.Fatalf("verdict = %v after swap, want OK (baseline reset)", v)
	}

	// Phase 3: the healed wrapper serves the new template.  Every ground
	// truth record must be recovered, and the verdict must stay OK across
	// a full re-warm plus a verdict window.
	post := qcfg.WarmupPages + qcfg.Window + 4
	for i := 0; i < post; i++ {
		gp := de.Page(q)
		q++
		st, body := postPageBody(t, client, srv.URL, "beta", gp)
		if st != http.StatusOK {
			t.Fatalf("post-heal page %d: status %d", gp.QueryIndex, st)
		}
		for _, gts := range gp.Truth.Sections {
			for _, gtr := range gts.Records {
				if !strings.Contains(body, gtr.Marker) {
					t.Fatalf("post-heal page %d: record %s not extracted", gp.QueryIndex, gtr.Marker)
				}
			}
		}
		if v := reg.Quality().Verdict("beta"); v != quality.OK {
			t.Fatalf("post-heal page %d: verdict %v, want OK", gp.QueryIndex, v)
		}
	}

	// /relearnz reflects the healed lifecycle.
	rz := getRelearnz(t, client, srv.URL)
	if !rz.Enabled || len(rz.Engines) != 1 {
		t.Fatalf("/relearnz enabled=%v engines=%d, want enabled with 1 engine", rz.Enabled, len(rz.Engines))
	}
	er := rz.Engines[0]
	if er.Engine != "beta" || er.State != "IDLE" || er.Swaps != 1 || er.ConsecutiveFailures != 0 {
		t.Fatalf("/relearnz engine = %+v, want beta IDLE with 1 swap and no failures", er)
	}
	if er.LastCanary == nil || !er.LastCanary.Passed {
		t.Fatalf("/relearnz last_canary = %+v, want a passing canary", er.LastCanary)
	}
	if er.LastCanary.Candidate.Records <= er.LastCanary.Incumbent.Records {
		t.Fatalf("canary candidate records %d not above incumbent %d",
			er.LastCanary.Candidate.Records, er.LastCanary.Incumbent.Records)
	}

	// /metrics carries the lifecycle counters and the reservoir gauges.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		} `json:"metrics"`
		Relearn *struct {
			Enabled bool  `json:"enabled"`
			Jobs    int64 `json:"jobs"`
			Swaps   int64 `json:"swaps"`
		} `json:"relearn"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	resp.Body.Close()
	if got := metrics.Metrics.Counters["relearn.swaps_total"]; got != 1 {
		t.Fatalf("relearn.swaps_total = %d, want 1", got)
	}
	if got := metrics.Metrics.Counters["relearn.jobs_total"]; got < 1 {
		t.Fatalf("relearn.jobs_total = %d, want >= 1", got)
	}
	if metrics.Metrics.Gauges["relearn.reservoir_pages"] <= 0 {
		t.Fatalf("relearn.reservoir_pages gauge not positive")
	}
	if metrics.Relearn == nil || !metrics.Relearn.Enabled || metrics.Relearn.Swaps != 1 {
		t.Fatalf("/metrics relearn block = %+v, want enabled with 1 swap", metrics.Relearn)
	}

	// /statusz names the lifecycle.
	resp, err = client.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	statusz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"relearn: enabled=true", "swaps=1"} {
		if !strings.Contains(string(statusz), want) {
			t.Fatalf("/statusz missing %q:\n%s", want, statusz)
		}
	}

	// The swap was persisted: a fresh registry restored from the snapshot
	// resumes at generation 2 with the healed wrapper.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatalf("snapshot not persisted after swap: %v", err)
	}
	reg2 := NewRegistry(core.DefaultOptions())
	n, err := reg2.LoadSnapshot(f)
	f.Close()
	if err != nil || n != 1 {
		t.Fatalf("restoring persisted snapshot: n=%d err=%v", n, err)
	}
	if g := reg2.Status()["beta"].Generation; g != 2 {
		t.Fatalf("restored generation = %d, want 2", g)
	}

	// Journal: lifecycle events are full journal lines with their own
	// correlation IDs.  Close everything first so no writer is in flight.
	srv.Close()
	ctrl.Close()
	kinds := map[string]int{}
	sawDrifted := false
	for _, line := range strings.Split(strings.TrimRight(journalBuf.String(), "\n"), "\n") {
		var ev JournalEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("journal line not JSON: %v\n%s", err, line)
		}
		if ev.Kind == "" {
			// Per-request extraction line; the detector must have read the
			// engine as DRIFTED at some point before the heal.
			if ev.Verdict == quality.Drifted.String() {
				sawDrifted = true
			}
			continue
		}
		kinds[ev.Kind]++
		if ev.RequestID == "" || ev.Engine != "beta" {
			t.Fatalf("lifecycle journal line incomplete: %s", line)
		}
		if ev.Kind == relearn.EventSwap && (ev.Sections == 0 || ev.Records == 0) {
			t.Fatalf("swap journal line missing canary counts: %s", line)
		}
	}
	if kinds[relearn.EventJob] < 1 || kinds[relearn.EventSwap] != 1 {
		t.Fatalf("journal lifecycle kinds = %v, want >=1 job and exactly 1 swap", kinds)
	}
	if !sawDrifted {
		t.Fatalf("no journaled request ever carried a DRIFTED verdict before the heal")
	}
}

// TestRelearnFailureBackoffCircuitAndManualRecovery drives the failure path
// through the HTTP stack: a broken wrapper induction fails every relearn
// attempt, retries back off, the circuit opens and pins the engine
// DEGRADED — all without disturbing serving — and an operator's manual
// POST /relearn/{engine} resets the breaker and heals the engine once
// induction works again.
func TestRelearnFailureBackoffCircuitAndManualRecovery(t *testing.T) {
	eng := synth.NewEngine(21, 2, true)
	reg := NewRegistry(core.DefaultOptions())
	if err := reg.Add("beta", trainWrapper(t, eng)); err != nil {
		t.Fatal(err)
	}

	var hookMu sync.Mutex
	failing := true
	relearnBuildHook = func(ctx context.Context, samples []*core.SamplePage) (*core.EngineWrapper, error) {
		hookMu.Lock()
		f := failing
		hookMu.Unlock()
		if f {
			return nil, errors.New("induction exploded")
		}
		return core.BuildWrapperCtx(ctx, samples, core.DefaultOptions())
	}
	defer func() { relearnBuildHook = nil }()

	rcfg := relearn.Config{
		MinPages:     3,
		TrainPages:   4,
		HoldoutPages: 2,
		Backoff:      5 * time.Millisecond,
		MaxBackoff:   10 * time.Millisecond,
		MaxFailures:  2,
	}
	ctrl := reg.EnableRelearn(rcfg)
	defer ctrl.Close()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()

	// Fill the reservoir with redesigned-template pages (they serve fine —
	// zero sections is a 200 — and the default drift warmup means no
	// automatic DRIFTED interferes with the manual triggers below).
	drifted := eng.Drifted()
	for q := 0; q < 6; q++ {
		if st := postPage(t, client, srv.URL, "beta", drifted.Page(q)); st != http.StatusOK {
			t.Fatalf("feed page %d: status %d", q, st)
		}
	}

	trigger := func() (int, relearnTriggerResponse) {
		t.Helper()
		resp, err := client.Post(srv.URL+"/relearn/beta", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var tr relearnTriggerResponse
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				t.Fatalf("trigger response: %v", err)
			}
		}
		return resp.StatusCode, tr
	}

	st, tr := trigger()
	if st != http.StatusAccepted || tr.State != "RUNNING" {
		t.Fatalf("trigger: status %d state %q, want 202 RUNNING", st, tr.State)
	}

	// The job fails, backs off, fails again: MaxFailures=2 opens the
	// circuit and pins the engine DEGRADED.
	deadline := time.Now().Add(10 * time.Second)
	var rz relearnzWire
	for {
		rz = getRelearnz(t, client, srv.URL)
		if len(rz.Engines) == 1 && rz.Engines[0].State == "DEGRADED" {
			break
		}
		if time.Now().After(deadline) {
			rep, _ := json.Marshal(rz)
			t.Fatalf("engine never reached DEGRADED: %s", rep)
		}
		time.Sleep(2 * time.Millisecond)
	}
	er := rz.Engines[0]
	if er.ConsecutiveFailures != 2 || er.Attempts != 2 || er.Swaps != 0 {
		t.Fatalf("degraded engine = %+v, want 2 failed attempts and no swaps", er)
	}
	if !strings.Contains(er.LastError, "induction exploded") {
		t.Fatalf("last_error = %q, want the injected build error", er.LastError)
	}

	// A degraded relearner must never block serving.
	if st := postPage(t, client, srv.URL, "beta", drifted.Page(6)); st != http.StatusOK {
		t.Fatalf("serving while DEGRADED: status %d", st)
	}
	if g := reg.Status()["beta"].Generation; g != 1 {
		t.Fatalf("generation = %d while degraded, want 1 (no swap)", g)
	}

	// Fix induction; the manual trigger resets the breaker and this time
	// the candidate (trained on the sampled redesigned pages) beats the
	// incumbent (trained on the original template) and swaps in.
	hookMu.Lock()
	failing = false
	hookMu.Unlock()
	st, tr = trigger()
	if st != http.StatusAccepted || tr.State != "RUNNING" {
		t.Fatalf("recovery trigger: status %d state %q, want 202 RUNNING", st, tr.State)
	}
	for {
		rz = getRelearnz(t, client, srv.URL)
		if len(rz.Engines) == 1 && rz.Engines[0].Swaps == 1 && rz.Engines[0].State == "IDLE" {
			break
		}
		if time.Now().After(deadline) {
			rep, _ := json.Marshal(rz)
			t.Fatalf("manual recovery never swapped: %s", rep)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if g := reg.Status()["beta"].Generation; g != 2 {
		t.Fatalf("generation = %d after recovery, want 2", g)
	}

	// The circuit-open episode is on the counters.
	resp, err := client.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	resp.Body.Close()
	c := metrics.Metrics.Counters
	if c["relearn.circuit_open_total"] != 1 || c["relearn.failures_total"] < 2 || c["relearn.swaps_total"] != 1 {
		t.Fatalf("relearn counters = %v, want 1 circuit open, >=2 failures, 1 swap", c)
	}
}

// TestRelearnTriggerEndpointErrors covers the manual-trigger edge cases.
func TestRelearnTriggerEndpointErrors(t *testing.T) {
	eng := synth.NewEngine(55, 3, true)
	data := trainWrapper(t, eng)

	// Relearn disabled: the trigger is a conflict, the report says so.
	plain := NewRegistry(core.DefaultOptions())
	if err := plain.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	srvPlain := httptest.NewServer(plain.Handler())
	defer srvPlain.Close()
	resp, err := srvPlain.Client().Post(srvPlain.URL+"/relearn/alpha", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trigger with relearn disabled: status %d, want 409", resp.StatusCode)
	}
	rz := getRelearnz(t, srvPlain.Client(), srvPlain.URL)
	if rz.Enabled {
		t.Fatalf("/relearnz enabled=true on a registry without relearn")
	}

	// Relearn enabled: method, name and existence checks.
	reg := NewRegistry(core.DefaultOptions())
	if err := reg.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	ctrl := reg.EnableRelearn(relearn.DefaultConfig())
	defer ctrl.Close()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	client := srv.Client()

	cases := []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/relearn/alpha", http.StatusMethodNotAllowed},
		{http.MethodPost, "/relearn/", http.StatusBadRequest},
		{http.MethodPost, "/relearn/a/b", http.StatusBadRequest},
		{http.MethodPost, "/relearn/ghost", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestRegistryAddResetsQualityBaselines checks the satellite invariant
// directly: EVERY generation bump — a manual operator Add as much as a
// relearn swap — drops the engine's drift baseline so the new wrapper is
// never judged against the old template's normal.
func TestRegistryAddResetsQualityBaselines(t *testing.T) {
	eng := synth.NewEngine(55, 3, true)
	data := trainWrapper(t, eng)
	reg := NewRegistry(core.DefaultOptions())
	reg.SetQualityConfig(quality.Config{WarmupPages: 4, Window: 4})
	if err := reg.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		reg.Quality().Observe("alpha", quality.Observation{Sections: 2, Records: 10})
	}
	rep := reg.Quality().Report()
	if len(rep.Engines) != 1 || rep.Engines[0].Pages != 10 {
		t.Fatalf("before swap: report = %+v, want alpha with 10 pages", rep.Engines)
	}

	// Operator re-adds the wrapper: generation 2, baseline gone.
	if err := reg.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	if g := reg.Status()["alpha"].Generation; g != 2 {
		t.Fatalf("generation = %d after re-add, want 2", g)
	}
	if rep := reg.Quality().Report(); len(rep.Engines) != 0 {
		t.Fatalf("after swap: report still tracks %+v, want a fresh (empty) tracker state", rep.Engines)
	}
	if v := reg.Quality().Verdict("alpha"); v != quality.OK {
		t.Fatalf("after swap: verdict = %v, want OK", v)
	}
}

// TestSwapPersistsSnapshot checks the satellite invariant: with an armed
// snapshot path, every wrapper swap rewrites the snapshot atomically (no
// temp litter), a restart restored from it resumes the bumped generation,
// and a persist failure degrades to a warning — it never undoes the swap.
func TestSwapPersistsSnapshot(t *testing.T) {
	eng := synth.NewEngine(55, 3, true)
	data := trainWrapper(t, eng)
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.snap")

	reg := NewRegistry(core.DefaultOptions())
	reg.SetSnapshotPath(path)
	if err := reg.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("initial load persisted a snapshot (err=%v); only swaps should", err)
	}
	if err := reg.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("swap did not persist the snapshot: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot (temp file leaked?)", len(entries))
	}
	reg2 := NewRegistry(core.DefaultOptions())
	n, err := reg2.LoadSnapshot(bytes.NewReader(b))
	if err != nil || n != 1 {
		t.Fatalf("restoring persisted snapshot: n=%d err=%v", n, err)
	}
	if g := reg2.Status()["alpha"].Generation; g != 2 {
		t.Fatalf("restored generation = %d, want 2", g)
	}

	// Unwritable snapshot path: the swap must still succeed.
	reg3 := NewRegistry(core.DefaultOptions())
	reg3.SetSnapshotPath(filepath.Join(dir, "missing", "fleet.snap"))
	if err := reg3.Add("alpha", data); err != nil {
		t.Fatal(err)
	}
	if err := reg3.Add("alpha", data); err != nil {
		t.Fatalf("swap failed because persistence failed: %v", err)
	}
	if g := reg3.Status()["alpha"].Generation; g != 2 {
		t.Fatalf("generation = %d after best-effort persist, want 2", g)
	}
}
