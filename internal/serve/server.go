package serve

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"time"
)

// NewServer wraps the handler in an http.Server with production limits:
// header/read/write/idle timeouts and a bounded header size, so one slow
// or malicious client cannot pin a connection forever.
func NewServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// RunConfig tunes Run.
type RunConfig struct {
	// Logger receives shutdown progress lines; nil silences them.
	Logger *slog.Logger
	// DrainTimeout bounds the graceful drain of in-flight requests
	// (default 30s); after it expires remaining connections are closed.
	DrainTimeout time.Duration
	// InFlight, when set, reports the number of requests still being
	// served; it is logged when the drain starts.
	InFlight func() int64
	// Listener, when set, is served instead of listening on srv.Addr
	// (used by tests to grab an ephemeral port).
	Listener net.Listener
}

// Run serves srv until ctx is cancelled, then shuts it down gracefully,
// draining in-flight requests.  It returns nil after a clean shutdown and
// the serve or shutdown error otherwise.
func Run(ctx context.Context, srv *http.Server, cfg RunConfig) error {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	errc := make(chan error, 1)
	go func() {
		if cfg.Listener != nil {
			errc <- srv.Serve(cfg.Listener)
		} else {
			errc <- srv.ListenAndServe()
		}
	}()

	select {
	case err := <-errc:
		// Listen failed (or the server was stopped out-of-band) before
		// ctx was cancelled.
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
	}

	if cfg.Logger != nil {
		attrs := []any{"drain_timeout", cfg.DrainTimeout}
		if cfg.InFlight != nil {
			attrs = append(attrs, "in_flight", cfg.InFlight())
		}
		cfg.Logger.Info("shutdown: draining in-flight requests", attrs...)
	}
	sctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	err := srv.Shutdown(sctx)
	<-errc // ListenAndServe has returned ErrServerClosed by now
	if cfg.Logger != nil {
		if err != nil {
			cfg.Logger.Error("shutdown: drain incomplete", "err", err)
		} else {
			cfg.Logger.Info("shutdown: complete")
		}
	}
	return err
}
