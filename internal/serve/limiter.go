package serve

import (
	"context"
	"errors"
	"strconv"
	"time"
)

// errShed is returned by limiter.acquire when the queue-wait budget
// expires before a slot frees: the request is shed with 429.
var errShed = errors.New("serve: at capacity")

// limiter is the admission controller for /extract: a counting semaphore
// with a bounded queue wait.  A request either gets an extraction slot
// within the timeout or is shed, so a burst can never pile up unbounded
// goroutines all parsing 8 MB pages at once.  The nil limiter admits
// everything (admission control disabled).
type limiter struct {
	slots   chan struct{}
	timeout time.Duration
}

// newLimiter returns a limiter with max concurrent slots and the given
// queue-wait budget; nil when max <= 0.
func newLimiter(max int, timeout time.Duration) *limiter {
	if max <= 0 {
		return nil
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &limiter{slots: make(chan struct{}, max), timeout: timeout}
}

// acquire obtains a slot, waiting up to the queue timeout.  It reports how
// long the caller queued and, on failure, errShed (budget expired) or the
// context's error (client gone while queued).  Every successful acquire
// must be paired with exactly one release.
func (l *limiter) acquire(ctx context.Context) (time.Duration, error) {
	if l == nil {
		return 0, nil
	}
	// Fast path: free slot, no timer allocation.
	select {
	case l.slots <- struct{}{}:
		return 0, nil
	default:
	}
	start := time.Now()
	t := time.NewTimer(l.timeout)
	defer t.Stop()
	select {
	case l.slots <- struct{}{}:
		return time.Since(start), nil
	case <-t.C:
		return time.Since(start), errShed
	case <-ctx.Done():
		return time.Since(start), ctx.Err()
	}
}

// release frees a slot obtained by a successful acquire.
func (l *limiter) release() {
	if l != nil {
		<-l.slots
	}
}

// retryAfter is the Retry-After header value sent with 429 responses: the
// queue timeout rounded up to whole seconds (minimum 1), i.e. roughly when
// the currently queued work will have drained or been shed.
func (l *limiter) retryAfter() string {
	if l == nil {
		return "1"
	}
	secs := int((l.timeout + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
