// Package serve exposes trained MSE wrappers over HTTP — the deployment
// shape of the paper's metasearch application: component-engine wrappers
// are built offline, stored as JSON, and a long-running service extracts
// sections and records from result pages on demand.
//
//	GET  /engines                 list the loaded engine wrappers
//	GET  /healthz                 liveness
//	POST /extract?engine=NAME&q=term+term
//	                              body: the result page HTML;
//	                              response: sections with annotated records
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"

	"mse/internal/annotate"
	"mse/internal/core"
)

// MaxPageBytes bounds the request body size (result pages beyond a few MB
// are not search result pages).
const MaxPageBytes = 8 << 20

// Registry holds the loaded wrappers by engine name.  It is safe for
// concurrent use; wrappers can be added or replaced while serving.
type Registry struct {
	mu       sync.RWMutex
	wrappers map[string]*core.EngineWrapper
	opts     core.Options
}

// NewRegistry returns an empty registry using the given pipeline options
// for wrapper application.
func NewRegistry(opts core.Options) *Registry {
	return &Registry{wrappers: map[string]*core.EngineWrapper{}, opts: opts}
}

// Add registers (or replaces) a wrapper under the given engine name.
func (r *Registry) Add(name string, data []byte) error {
	var ew core.EngineWrapper
	if err := json.Unmarshal(data, &ew); err != nil {
		return fmt.Errorf("serve: wrapper %q: %w", name, err)
	}
	ew.SetOptions(r.opts)
	r.mu.Lock()
	r.wrappers[name] = &ew
	r.mu.Unlock()
	return nil
}

// Names lists the registered engines, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.wrappers))
	for n := range r.wrappers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// get returns the wrapper for an engine.
func (r *Registry) get(name string) (*core.EngineWrapper, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ew, ok := r.wrappers[name]
	return ew, ok
}

// unitJSON is the wire form of one annotated data unit.
type unitJSON struct {
	Type string `json:"type"`
	Text string `json:"text"`
}

// recordJSON is the wire form of one record.
type recordJSON struct {
	Lines []string   `json:"lines"`
	Links []string   `json:"links,omitempty"`
	Units []unitJSON `json:"units,omitempty"`
}

// sectionJSON is the wire form of one section.
type sectionJSON struct {
	Heading string       `json:"heading,omitempty"`
	Records []recordJSON `json:"records"`
}

// extractResponse is the wire form of an /extract result.
type extractResponse struct {
	Engine   string        `json:"engine"`
	Sections []sectionJSON `json:"sections"`
}

// Handler returns the HTTP handler serving the registry.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/engines", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Names())
	})
	mux.HandleFunc("/extract", r.handleExtract)
	return mux
}

func (r *Registry) handleExtract(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := req.URL.Query().Get("engine")
	if name == "" {
		http.Error(w, "missing ?engine=", http.StatusBadRequest)
		return
	}
	ew, ok := r.get(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown engine %q", name), http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, MaxPageBytes+1))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > MaxPageBytes {
		http.Error(w, "page too large", http.StatusRequestEntityTooLarge)
		return
	}
	var query []string
	if q := req.URL.Query().Get("q"); q != "" {
		query = strings.FieldsFunc(q, func(r rune) bool { return r == '+' || r == ' ' })
	}

	resp := extractResponse{Engine: name, Sections: []sectionJSON{}}
	for _, s := range ew.Extract(string(body), query) {
		sj := sectionJSON{Heading: s.Heading, Records: []recordJSON{}}
		for _, rec := range s.Records {
			rj := recordJSON{Lines: rec.Lines, Links: rec.Links}
			for _, u := range annotate.Record(rec) {
				rj.Units = append(rj.Units, unitJSON{Type: u.Type.String(), Text: u.Text})
			}
			sj.Records = append(sj.Records, rj)
		}
		resp.Sections = append(resp.Sections, sj)
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
