// Package serve exposes trained MSE wrappers over HTTP — the deployment
// shape of the paper's metasearch application: component-engine wrappers
// are built offline, stored as JSON, and a long-running service extracts
// sections and records from result pages on demand.
//
//	GET  /engines                 list the loaded engine wrappers
//	GET  /healthz                 liveness
//	GET  /metrics                 JSON metrics snapshot (counters, gauges,
//	                              latency histograms with p50/p95/p99)
//	GET  /statusz                 human-readable uptime / per-engine table
//	POST /extract?engine=NAME&q=term+term
//	                              body: the result page HTML;
//	                              response: sections with annotated records
//
// Error responses are JSON objects {"error": ..., "engine": ...}.  With
// SetAccessLog the registry emits one structured log line per request
// (method, path, engine, status, bytes, duration).
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mse/internal/annotate"
	"mse/internal/core"
)

// MaxPageBytes bounds the request body size (result pages beyond a few MB
// are not search result pages).
const MaxPageBytes = 8 << 20

// Registry holds the loaded wrappers by engine name.  It is safe for
// concurrent use; wrappers can be added or replaced while serving.
type Registry struct {
	mu       sync.RWMutex
	wrappers map[string]*core.EngineWrapper
	opts     core.Options
	metrics  *Metrics
	log      *slog.Logger
}

// NewRegistry returns an empty registry using the given pipeline options
// for wrapper application.
func NewRegistry(opts core.Options) *Registry {
	return &Registry{
		wrappers: map[string]*core.EngineWrapper{},
		opts:     opts,
		metrics:  NewMetrics(),
	}
}

// Metrics returns the registry's metrics set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// SetAccessLog installs a structured access logger; nil disables logging
// (the default).
func (r *Registry) SetAccessLog(l *slog.Logger) { r.log = l }

// Add registers (or replaces) a wrapper under the given engine name.
func (r *Registry) Add(name string, data []byte) error {
	var ew core.EngineWrapper
	if err := json.Unmarshal(data, &ew); err != nil {
		return fmt.Errorf("serve: wrapper %q: %w", name, err)
	}
	ew.SetOptions(r.opts)
	r.mu.Lock()
	r.wrappers[name] = &ew
	r.mu.Unlock()
	return nil
}

// Names lists the registered engines, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.wrappers))
	for n := range r.wrappers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// get returns the wrapper for an engine.
func (r *Registry) get(name string) (*core.EngineWrapper, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ew, ok := r.wrappers[name]
	return ew, ok
}

// unitJSON is the wire form of one annotated data unit.
type unitJSON struct {
	Type string `json:"type"`
	Text string `json:"text"`
}

// recordJSON is the wire form of one record.
type recordJSON struct {
	Lines []string   `json:"lines"`
	Links []string   `json:"links,omitempty"`
	Units []unitJSON `json:"units,omitempty"`
}

// sectionJSON is the wire form of one section.
type sectionJSON struct {
	Heading string       `json:"heading,omitempty"`
	Records []recordJSON `json:"records"`
}

// extractResponse is the wire form of an /extract result.
type extractResponse struct {
	Engine   string        `json:"engine"`
	Sections []sectionJSON `json:"sections"`
}

// Handler returns the HTTP handler serving the registry.  Every request
// passes through the metrics/access-log middleware.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/engines", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Names())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.metrics.snapshot())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.metrics.writeStatusz(w, r.Names(), r.opts.Parallelism)
	})
	mux.HandleFunc("/extract", r.handleExtract)
	return r.instrument(mux)
}

// statusWriter captures the response status and byte count for metrics
// and the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps h with the in-flight gauge, the total request counter
// and the structured access log.
func (r *Registry) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m := r.metrics
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		m.requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, req)
		if r.log != nil {
			r.log.Info("request",
				"method", req.Method,
				"path", req.URL.Path,
				"engine", req.URL.Query().Get("engine"),
				"status", sw.status,
				"bytes", sw.bytes,
				"duration", time.Since(start).Round(time.Microsecond),
			)
		}
	})
}

// errorJSON is the wire form of an error response.
type errorJSON struct {
	Error  string `json:"error"`
	Engine string `json:"engine,omitempty"`
}

func writeError(w http.ResponseWriter, status int, engine, msg string) {
	writeJSON(w, status, errorJSON{Error: msg, Engine: engine})
}

func (r *Registry) handleExtract(w http.ResponseWriter, req *http.Request) {
	name := req.URL.Query().Get("engine")
	if req.Method != http.MethodPost {
		r.metrics.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, name, "POST required")
		return
	}
	if name == "" {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, "", "missing ?engine=")
		return
	}
	ew, ok := r.get(name)
	if !ok {
		// Deliberately not tracked per engine: arbitrary names in the
		// query string must not grow the metrics map without bound.
		r.metrics.errors.Inc()
		writeError(w, http.StatusNotFound, name, fmt.Sprintf("unknown engine %q", name))
		return
	}
	em := r.metrics.engine(name)
	em.requests.Inc()
	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	if _, err := buf.ReadFrom(io.LimitReader(req.Body, MaxPageBytes+1)); err != nil {
		em.errors.Inc()
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, name, "reading body: "+err.Error())
		return
	}
	if buf.Len() > MaxPageBytes {
		em.errors.Inc()
		r.metrics.errors.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, name,
			fmt.Sprintf("page exceeds %d bytes", MaxPageBytes))
		return
	}
	var query []string
	if q := req.URL.Query().Get("q"); q != "" {
		query = strings.FieldsFunc(q, func(r rune) bool { return r == '+' || r == ' ' })
	}

	// The one body copy per request: extracted text and link strings slice
	// into this string, so it cannot alias the pooled read buffer.
	html := buf.String()

	start := time.Now()
	sections, lease := ew.ExtractLeased(html, query)
	em.latency.Observe(time.Since(start))

	resp := extractResponse{Engine: name, Sections: make([]sectionJSON, 0, len(sections))}
	records := int64(0)
	for _, s := range sections {
		sj := sectionJSON{Heading: s.Heading, Records: make([]recordJSON, 0, len(s.Records))}
		for _, rec := range s.Records {
			rj := recordJSON{Lines: rec.Lines, Links: rec.Links}
			for _, u := range annotate.Record(rec) {
				rj.Units = append(rj.Units, unitJSON{Type: u.Type.String(), Text: u.Text})
			}
			sj.Records = append(sj.Records, rj)
		}
		records += int64(len(s.Records))
		resp.Sections = append(resp.Sections, sj)
	}
	em.sections.Add(int64(len(sections)))
	em.records.Add(records)
	writeJSON(w, http.StatusOK, resp)
	// The response is written and the sections hold only plain strings and
	// ints; the page and its parse arena can go back to the pools.
	r.ReleasePage(lease)
}

// bodyPool recycles the request-body read buffers of /extract.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ReleasePage returns the pooled parse/render memory behind a completed
// extraction.  It must be called after the response derived from the
// leased page has been fully written; it is safe on a nil lease.
func (r *Registry) ReleasePage(lease *core.PageLease) { lease.Release() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
