// Package serve exposes trained MSE wrappers over HTTP — the deployment
// shape of the paper's metasearch application: component-engine wrappers
// are built offline, stored as JSON, and a long-running service extracts
// sections and records from result pages on demand.
//
//	GET  /engines                 list the loaded engine wrappers
//	GET  /healthz                 liveness
//	GET  /metrics                 JSON metrics snapshot (counters, gauges,
//	                              latency histograms with p50/p90/p95/p99,
//	                              per-engine quality gauges)
//	GET  /statusz                 human-readable uptime / per-engine table
//	                              with drift verdicts
//	GET  /driftz                  machine-readable per-engine drift report
//	GET  /relearnz                machine-readable self-healing report
//	POST /relearn/{engine}        manually trigger a relearn episode
//	POST /extract?engine=NAME&q=term+term
//	                              body: the result page HTML;
//	                              response: sections with annotated records
//	POST /extract/batch?engine=NAME
//	                              body: {"items":[{"engine","q","html"},...]}
//	                              (or a bare JSON array of items); response:
//	                              per-item results and per-item errors
//
// With SetCache the registry serves byte-identical repeat pages from a
// content-addressed result cache (see internal/excache): extraction is
// deterministic per (wrapper generation, page bytes, query), so a hit
// skips parse, prune, render and wrapper application entirely.  With
// SetShard the registry owns only its consistent-hash slice of the engine
// fleet and answers requests for other engines with 421 naming the owner.
//
// Error responses are JSON objects {"error": ..., "engine": ...}.  With
// SetAccessLog the registry emits one structured log line per request
// (method, path, engine, status, bytes, duration, request_id).
//
// Every response carries an X-Request-ID header — the client's own, when
// it sent one, or a generated ID otherwise — correlating the access log,
// the wide-event journal (SetJournal) and the client's records.  Every
// extraction also feeds the per-engine drift detector (internal/quality),
// whose verdicts surface on /statusz, /driftz and the quality gauges.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"mse/internal/annotate"
	"mse/internal/core"
	"mse/internal/excache"
	"mse/internal/obs"
	"mse/internal/quality"
	"mse/internal/relearn"
	"mse/internal/shard"
)

// MaxPageBytes bounds the request body size (result pages beyond a few MB
// are not search result pages).
const MaxPageBytes = 8 << 20

// engineEntry is one registered wrapper plus its serving metadata: the raw
// wrapper JSON (for snapshots), the monotonically increasing generation
// that tags cache keys, and the time of the last swap.
type engineEntry struct {
	ew      *core.EngineWrapper
	raw     []byte
	gen     uint64
	swapped time.Time
}

// Registry holds the loaded wrappers by engine name.  It is safe for
// concurrent use; wrappers can be added or replaced while serving.
type Registry struct {
	mu       sync.RWMutex
	wrappers map[string]*engineEntry
	opts     core.Options
	metrics  *Metrics
	log      *slog.Logger
	limiter  *limiter
	quality  *quality.Tracker
	journal  *Journal
	// cache is the content-addressed extraction result cache; nil (the
	// default) serves every request through the full pipeline.
	cache *excache.Cache
	// ring is the consistent-hash ring when the registry serves one shard
	// of a larger fleet; nil means the registry owns every engine.
	ring       *shard.Ring
	shardIndex int
	// relearn is the self-healing lifecycle controller; nil (the default)
	// means drift verdicts are reported but not acted on.
	relearn *relearn.Controller
	// snapPath, when set, is where every wrapper swap persists the fleet
	// (atomic write-then-rename, serialized by snapMu) so a restart cannot
	// resurrect a wrapper a relearn or an operator already replaced.
	snapPath string
	snapMu   sync.Mutex
}

// NewRegistry returns an empty registry using the given pipeline options
// for wrapper application.  Drift detection runs with quality defaults;
// override with SetQualityConfig before serving.
func NewRegistry(opts core.Options) *Registry {
	return &Registry{
		wrappers: map[string]*engineEntry{},
		opts:     opts,
		metrics:  NewMetrics(),
		quality:  quality.NewTracker(quality.DefaultConfig()),
	}
}

// Metrics returns the registry's metrics set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Quality returns the drift tracker feeding /driftz.
func (r *Registry) Quality() *quality.Tracker { return r.quality }

// SetQualityConfig replaces the drift-detection configuration (zero
// fields take defaults), resetting any learned baselines.  Call before
// Handler.
func (r *Registry) SetQualityConfig(cfg quality.Config) {
	r.quality = quality.NewTracker(cfg)
	// The fresh tracker must keep driving the relearn controller (the hook
	// lives on the tracker, which was just replaced).
	r.wireQualityHook()
}

// SetJournal installs the wide-event request journal: one JSON line per
// sampled /extract request written to w (1-in-every sampling; every <= 1
// journals everything).  nil w disables journaling (the default).  Call
// before Handler.
func (r *Registry) SetJournal(w io.Writer, every int) {
	if w == nil {
		r.journal = nil
		return
	}
	r.journal = NewJournal(w, every)
}

// Journal returns the installed journal (nil when disabled).
func (r *Registry) Journal() *Journal { return r.journal }

// SetAccessLog installs a structured access logger; nil disables logging
// (the default).
func (r *Registry) SetAccessLog(l *slog.Logger) { r.log = l }

// SetLimits configures admission control for /extract: at most maxInflight
// extractions run concurrently, and a request waits at most queueTimeout
// for a slot before being shed with 429 and a Retry-After header.
// maxInflight <= 0 disables admission control.  Call before Handler.
func (r *Registry) SetLimits(maxInflight int, queueTimeout time.Duration) {
	r.limiter = newLimiter(maxInflight, queueTimeout)
}

// SetCache installs the content-addressed extraction result cache, bounded
// to maxBytes across all entries.  maxBytes <= 0 disables caching (the
// default).  Call before Handler.
func (r *Registry) SetCache(maxBytes int64) {
	r.cache = excache.New(maxBytes)
}

// Cache returns the installed extraction cache (nil when disabled).
func (r *Registry) Cache() *excache.Cache { return r.cache }

// SetShard declares this registry to be shard index of total in a fleet
// split by consistent hashing over engine names.  Requests for engines the
// shard does not own are answered with 421 naming the owner.  total <= 1
// restores unsharded serving.
func (r *Registry) SetShard(index, total int) error {
	if total <= 1 {
		r.ring, r.shardIndex = nil, 0
		return nil
	}
	if index < 0 || index >= total {
		return fmt.Errorf("serve: shard index %d out of range [0,%d)", index, total)
	}
	r.ring = shard.NewRing(total)
	r.shardIndex = index
	return nil
}

// Owns reports whether this registry's shard owns the engine (always true
// when unsharded).
func (r *Registry) Owns(engine string) bool {
	return r.ring == nil || r.ring.Owner(engine) == r.shardIndex
}

// ShardInfo returns (index, total, sharded).
func (r *Registry) ShardInfo() (int, int, bool) {
	if r.ring == nil {
		return 0, 1, false
	}
	return r.shardIndex, r.ring.Shards(), true
}

// Add registers (or replaces) a wrapper under the given engine name.  A
// replacement bumps the engine's generation, which orphans every cache
// entry extracted under the old wrapper — no stale hit can survive a swap.
func (r *Registry) Add(name string, data []byte) error {
	return r.addGen(name, data, 0)
}

// addGen is Add with an explicit generation (0 auto-increments); snapshot
// restore uses it to resume the generation sequence it saved.
func (r *Registry) addGen(name string, data []byte, gen uint64) error {
	var ew core.EngineWrapper
	if err := json.Unmarshal(data, &ew); err != nil {
		return fmt.Errorf("serve: wrapper %q: %w", name, err)
	}
	ew.SetOptions(r.opts)
	// Compile eagerly so the first request after a wrapper swap pays no
	// lowering cost (and signature interning happens off the hot path).
	ew.Compile()
	raw := make([]byte, len(data))
	copy(raw, data)
	r.mu.Lock()
	prev := r.wrappers[name]
	if gen == 0 {
		gen = 1
		if prev != nil {
			gen = prev.gen + 1
		}
	}
	r.wrappers[name] = &engineEntry{ew: &ew, raw: raw, gen: gen, swapped: time.Now()}
	r.mu.Unlock()
	if prev != nil {
		// Generation bumped: the engine is serving a different wrapper than
		// the one its drift baseline was learned against.  Reset the
		// baseline so the new wrapper re-warms against its own normal —
		// judging it by the old template's EWMA would flag a healthy swap
		// as drift (or hide real drift behind a stale DRIFTED verdict).
		// One in-flight old-wrapper extraction may still Observe after this
		// reset; warm-up absorbs the stray page.
		r.quality.Reset(name)
		// Reclaim the orphaned generation's bytes eagerly; correctness does
		// not depend on this (the generation is part of the cache key).
		r.cache.Invalidate(name, gen)
		// Persist the swap so a restart resumes with the new wrapper, not
		// the one it replaced.  Best-effort: the swap itself has already
		// happened, a full disk must not undo it.
		if err := r.persistSnapshot(); err != nil && r.log != nil {
			r.log.Warn("snapshot persist after swap failed", "engine", name, "error", err)
		}
	}
	return nil
}

// Names lists the registered engines, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.wrappers))
	for n := range r.wrappers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// EngineStatus describes one registered engine's serving metadata.
type EngineStatus struct {
	Generation uint64    `json:"generation"`
	SwappedAt  time.Time `json:"swapped_at"`
}

// Status returns per-engine generation and last-swap time.
func (r *Registry) Status() map[string]EngineStatus {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]EngineStatus, len(r.wrappers))
	for n, e := range r.wrappers {
		out[n] = EngineStatus{Generation: e.gen, SwappedAt: e.swapped}
	}
	return out
}

// get returns the entry for an engine.
func (r *Registry) get(name string) (*engineEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.wrappers[name]
	return e, ok
}

// unitJSON is the wire form of one annotated data unit.
type unitJSON struct {
	Type string `json:"type"`
	Text string `json:"text"`
}

// recordJSON is the wire form of one record.
type recordJSON struct {
	Lines []string   `json:"lines"`
	Links []string   `json:"links,omitempty"`
	Units []unitJSON `json:"units,omitempty"`
}

// sectionJSON is the wire form of one section.
type sectionJSON struct {
	Heading string       `json:"heading,omitempty"`
	Records []recordJSON `json:"records"`
}

// extractResponse is the wire form of an /extract result.
type extractResponse struct {
	Engine   string        `json:"engine"`
	Sections []sectionJSON `json:"sections"`
}

// Handler returns the HTTP handler serving the registry.  Every request
// passes through the metrics/access-log middleware.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/engines", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Names())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.metrics.snapshot(r.cache, r.relearn))
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.metrics.writeStatusz(w, r.statusInfo())
	})
	mux.HandleFunc("/driftz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.quality.Report())
	})
	mux.HandleFunc("/relearnz", r.handleRelearnz)
	mux.HandleFunc("/relearn/", r.handleRelearnTrigger)
	mux.HandleFunc("/extract", r.handleExtract)
	mux.HandleFunc("/extract/batch", r.handleExtractBatch)
	return r.instrument(r.recoverer(mux))
}

// statusInfo assembles the registry-side half of the /statusz page.
func (r *Registry) statusInfo() StatusInfo {
	idx, total, sharded := r.ShardInfo()
	return StatusInfo{
		Engines:     r.Names(),
		Status:      r.Status(),
		Parallelism: r.opts.Parallelism,
		Quality:     r.quality,
		Cache:       r.cache.Stats(),
		CacheOn:     r.cache != nil,
		ShardIndex:  idx,
		ShardCount:  total,
		Sharded:     sharded,
		Relearn:     r.relearn.Stats(),
		RelearnOn:   r.relearn != nil,
	}
}

// RequestID returns the correlation ID assigned to the request by the
// instrument middleware ("" outside a served request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// statusWriter captures the response status and byte count for metrics
// and the access log, and whether the header went out — which decides
// whether the panic recoverer can still send a JSON 500.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// recoverer wraps h so a panicking handler takes down one request, not the
// process: the panic is logged with its stack, panics_total increments,
// and — when the response header has not gone out yet — the client gets a
// JSON 500.  http.ErrAbortHandler passes through untouched (it is the
// sanctioned way to abort a response and is suppressed by net/http).
// Layered inside instrument, so the recoverer sees instrument's
// statusWriter and the aborted request still produces an access-log line
// and metrics.
func (r *Registry) recoverer(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			r.metrics.panics.Inc()
			logger := r.log
			if logger == nil {
				logger = slog.Default()
			}
			logger.Error("handler panic",
				"method", req.Method,
				"path", req.URL.Path,
				"engine", req.URL.Query().Get("engine"),
				"panic", fmt.Sprint(rec),
				"stack", string(debug.Stack()),
			)
			if sw, ok := w.(*statusWriter); !ok || !sw.wroteHeader {
				writeError(w, http.StatusInternalServerError,
					req.URL.Query().Get("engine"), "internal error")
			}
		}()
		h.ServeHTTP(w, req)
	})
}

// instrument wraps h with the in-flight gauge, the total request counter,
// the correlation ID and the structured access log.  The request ID is the
// client's X-Request-ID when it sent a plausible one, a generated ID
// otherwise; either way it is echoed on the response and reachable from
// handlers via RequestID(ctx).
func (r *Registry) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m := r.metrics
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		m.requests.Inc()
		rid := req.Header.Get(requestIDHeader)
		if rid == "" || len(rid) > maxRequestIDLen {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		req = req.WithContext(context.WithValue(req.Context(), ridKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, req)
		if r.log != nil {
			r.log.Info("request",
				"method", req.Method,
				"path", req.URL.Path,
				"engine", req.URL.Query().Get("engine"),
				"status", sw.status,
				"bytes", sw.bytes,
				"duration", time.Since(start).Round(time.Microsecond),
				"request_id", rid,
			)
		}
	})
}

// errorJSON is the wire form of an error response.
type errorJSON struct {
	Error  string `json:"error"`
	Engine string `json:"engine,omitempty"`
}

func writeError(w http.ResponseWriter, status int, engine, msg string) {
	writeJSON(w, status, errorJSON{Error: msg, Engine: engine})
}

// statusClientClosedRequest is nginx's 499 "client closed request": the
// client vanished (canceled, disconnected) before the response; nobody
// will read the body, but the status keeps access logs and metrics honest.
const statusClientClosedRequest = 499

// extractTestHook, when non-nil, runs after the extraction lease is
// acquired and before the response is built.  Tests install a panicking
// hook to prove the recovery middleware turns a mid-request panic into a
// JSON 500 without leaking the lease, or a blocking hook to hold an
// admission slot open.
var extractTestHook func(engine string)

func (r *Registry) handleExtract(w http.ResponseWriter, req *http.Request) {
	name := req.URL.Query().Get("engine")
	if req.Method != http.MethodPost {
		r.metrics.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, name, "POST required")
		return
	}
	if name == "" {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, "", "missing ?engine=")
		return
	}
	if !r.Owns(name) {
		r.writeMisrouted(w, name)
		return
	}
	ent, ok := r.get(name)
	if !ok {
		// Deliberately not tracked per engine: arbitrary names in the
		// query string must not grow the metrics map without bound.
		r.metrics.errors.Inc()
		writeError(w, http.StatusNotFound, name, fmt.Sprintf("unknown engine %q", name))
		return
	}
	em := r.metrics.engine(name)
	em.requests.Inc()

	// Wide-event journal: the sampling decision is made up front so the
	// extraction below can carry a per-request span tree (stage timings)
	// only when someone will read it.  The deferred emit sees the final
	// response status via instrument's statusWriter.
	var jev *JournalEvent
	if r.journal.Sample() {
		jev = &JournalEvent{
			RequestID: RequestID(req.Context()),
			Engine:    name,
		}
		start := time.Now()
		defer func() {
			jev.Time = nowRFC3339()
			jev.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
			if sw, ok := w.(*statusWriter); ok {
				jev.Status = sw.status
			}
			r.journal.Write(*jev)
		}()
	}

	// Admission control: get an extraction slot before touching the body,
	// so a shed request costs neither an 8 MB read nor pooled memory.
	wait, err := r.limiter.acquire(req.Context())
	r.metrics.queueWait.Observe(wait)
	if jev != nil {
		jev.QueueWaitMs = float64(wait) / float64(time.Millisecond)
	}
	if err != nil {
		if errors.Is(err, errShed) {
			r.metrics.shed.Inc()
			w.Header().Set("Retry-After", r.limiter.retryAfter())
			writeError(w, http.StatusTooManyRequests, name, "server at capacity, retry later")
		} else {
			// Client gone (or deadline up) while queued: its problem, not
			// the engine's — per-engine error counters stay clean.
			r.metrics.canceled.Inc()
			writeError(w, statusClientClosedRequest, name, "request canceled while queued")
		}
		return
	}
	defer r.limiter.release()
	r.metrics.extractInFlight.Add(1)
	defer r.metrics.extractInFlight.Add(-1)

	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	if _, err := buf.ReadFrom(io.LimitReader(req.Body, MaxPageBytes+1)); err != nil {
		// Distinguish a vanished client from a malformed request: only the
		// latter is an engine-attributed error.  A dead request context (or
		// a body cut off mid-chunk) means the client hung up on us.
		if req.Context().Err() != nil || errors.Is(err, io.ErrUnexpectedEOF) {
			r.metrics.canceled.Inc()
			writeError(w, statusClientClosedRequest, name, "client disconnected during body read")
			return
		}
		em.errors.Inc()
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, name, "reading body: "+err.Error())
		return
	}
	if buf.Len() > MaxPageBytes {
		em.errors.Inc()
		r.metrics.errors.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, name,
			fmt.Sprintf("page exceeds %d bytes", MaxPageBytes))
		return
	}
	var query []string
	if q := req.URL.Query().Get("q"); q != "" {
		query = strings.FieldsFunc(q, func(r rune) bool { return r == '+' || r == ' ' })
	}

	// The one body copy per request: extracted text and link strings slice
	// into this string, so it cannot alias the pooled read buffer.
	html := buf.String()

	// Journaled requests get a per-request span tree for stage timings; a
	// nil root costs nothing (obs spans are nil-safe).
	var root *obs.Span
	if jev != nil {
		jev.PageBytes = len(html)
		jev.PageHash = pageHash(html)
		jev.Query = query
		root = obs.NewSpan(obs.RootExtract)
	}

	out, err := r.extractEntry(req.Context(), name, ent, em, html, query, root)
	if err != nil {
		if jev != nil {
			jev.Error = err.Error()
			if out.assessed {
				journalQuality(jev, out.assessment)
			}
		}
		r.writeExtractError(w, req.Context(), name, err)
		return
	}
	if out.cached {
		// A cache hit serves the same sections the miss already counted
		// once; keep the served-totals counters honest either way.
		em.sections.Add(int64(out.entry.Sections))
		em.records.Add(int64(out.entry.Records))
	}
	if jev != nil {
		jev.Sections = out.entry.Sections
		jev.Records = out.entry.Records
		jev.Cached = out.cached
		if out.assessed {
			journalQuality(jev, out.assessment)
		}
		jev.StagesMs = stageTimings(root)
	}
	writeBody(w, http.StatusOK, out.entry.Body)
	// Reservoir sampling happens strictly after the response bytes are out:
	// the relearner inherits this request's one body copy (html slices into
	// nothing pooled) at zero additional latency to the client.
	r.feedRelearn(name, html, query)
}

// extractErrorStatus maps an extraction error to a status and message:
// cooperative cancellation (the pipeline's ErrCanceled or a singleflight
// waiter's own context) becomes 499/503 without touching per-engine error
// counters — a vanished client says nothing about the engine — and
// anything else is a 500 whose counters the fill path already fed.
func (r *Registry) extractErrorStatus(ctx context.Context, err error) (int, string) {
	if errors.Is(err, core.ErrCanceled) || errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		r.metrics.canceled.Inc()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return http.StatusServiceUnavailable, "deadline exceeded during extraction"
		}
		return statusClientClosedRequest, "client canceled during extraction"
	}
	return http.StatusInternalServerError, "extraction failed: " + err.Error()
}

func (r *Registry) writeExtractError(w http.ResponseWriter, ctx context.Context, name string, err error) {
	status, msg := r.extractErrorStatus(ctx, err)
	writeError(w, status, name, msg)
}

// writeMisrouted answers a request for an engine this shard does not own:
// 421 plus the owner's index, so a thin front tier (or the client itself)
// can re-aim the request without any server-side proxying.
func (r *Registry) writeMisrouted(w http.ResponseWriter, name string) {
	r.metrics.misrouted.Inc()
	idx, total, _ := r.ShardInfo()
	owner := r.ring.Owner(name)
	writeJSON(w, http.StatusMisdirectedRequest, misrouteJSON{
		Error:      fmt.Sprintf("engine %q is owned by shard %d/%d (this is shard %d)", name, owner, total, idx),
		Engine:     name,
		OwnerShard: owner,
		Shards:     total,
	})
}

// misrouteJSON is the wire form of a 421 shard-misroute response.
type misrouteJSON struct {
	Error      string `json:"error"`
	Engine     string `json:"engine"`
	OwnerShard int    `json:"owner_shard"`
	Shards     int    `json:"shards"`
}

// extractOutcome is what the shared extraction core hands back to the
// single, batch and API callers.
type extractOutcome struct {
	entry  *excache.Entry
	cached bool // served from the cache (resident hit or collapsed miss)
	// assessment is the drift verdict fed on the fill path; hits carry
	// none (assessed=false) — a replayed result says nothing new about
	// the engine.
	assessment quality.Assessment
	assessed   bool
}

// extractEntry is the one extraction path every serving surface shares:
// it consults the content-addressed cache (when installed) and, on a miss,
// runs the full pipeline, serializes the response once, feeds the
// per-engine metrics and the drift detector, and caches the entry.
// Concurrent identical misses collapse to one pipeline run.
func (r *Registry) extractEntry(ctx context.Context, name string, ent *engineEntry, em *engineMetrics, html string, query []string, root *obs.Span) (extractOutcome, error) {
	var out extractOutcome
	fill := func() (*excache.Entry, error) {
		start := time.Now()
		sections, lease, err := ent.ew.ExtractLeasedObs(ctx, html, query, root)
		elapsed := time.Since(start)
		em.latency.Observe(elapsed)
		if err != nil {
			if errors.Is(err, core.ErrCanceled) {
				// The pipeline aborted cooperatively; every pooled resource
				// is already back (ExtractLeasedObs releases on the way
				// out).  The drift detector does not see this page: a
				// vanished client or an expired deadline says nothing about
				// the engine.
				return nil, err
			}
			em.errors.Inc()
			r.metrics.errors.Inc()
			out.assessment = r.quality.Observe(name, quality.Observation{Latency: elapsed, Err: true})
			out.assessed = true
			em.applyQuality(out.assessment)
			return nil, err
		}
		// Deferred — not called right after serialization — so a panic while
		// building the entry still returns the page and its parse arena to
		// the pools.  The entry holds only plain bytes, so it outlives the
		// lease (and any number of future cache hits) regardless.
		defer r.ReleasePage(lease)
		if extractTestHook != nil {
			extractTestHook(name)
		}
		e, err := buildEntry(name, sections)
		if err != nil {
			em.errors.Inc()
			r.metrics.errors.Inc()
			return nil, err
		}
		em.sections.Add(int64(e.Sections))
		em.records.Add(int64(e.Records))
		if e.Sections == 0 {
			em.empty.Inc()
		}
		// Feed the drift detector and mirror its state onto the quality
		// gauges; a verdict change is worth an operator-visible log line.
		out.assessment = r.quality.Observe(name, quality.Observation{
			Sections: e.Sections,
			Records:  e.Records,
			Latency:  elapsed,
		})
		out.assessed = true
		em.applyQuality(out.assessment)
		if out.assessment.Changed && r.log != nil {
			r.log.Warn("drift verdict changed",
				"engine", name,
				"verdict", out.assessment.Verdict.String(),
				"anomaly_rate", out.assessment.AnomalyRate,
			)
		}
		return e, nil
	}
	if r.cache == nil {
		e, err := fill()
		out.entry = e
		return out, err
	}
	key := excache.Key{Engine: name, Gen: ent.gen, Hash: excache.HashPage(html, query)}
	e, hit, _, err := r.cache.Do(ctx, key, fill)
	out.entry, out.cached = e, hit
	return out, err
}

// buildEntry serializes sections into the exact bytes /extract writes
// (indented JSON plus trailing newline), so cached and uncached responses
// are byte-identical by construction.
func buildEntry(name string, sections []*core.Section) (*excache.Entry, error) {
	resp := extractResponse{Engine: name, Sections: make([]sectionJSON, 0, len(sections))}
	records := 0
	for _, s := range sections {
		sj := sectionJSON{Heading: s.Heading, Records: make([]recordJSON, 0, len(s.Records))}
		for _, rec := range s.Records {
			rj := recordJSON{Lines: rec.Lines, Links: rec.Links}
			for _, u := range annotate.Record(rec) {
				rj.Units = append(rj.Units, unitJSON{Type: u.Type.String(), Text: u.Text})
			}
			sj.Records = append(sj.Records, rj)
		}
		records += len(s.Records)
		resp.Sections = append(resp.Sections, sj)
	}
	body, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serializing response: %w", err)
	}
	body = append(body, '\n')
	return &excache.Entry{Body: body, Sections: len(sections), Records: records}, nil
}

// ExtractCached runs one extraction for engine through the same cached
// path /extract serves, bypassing HTTP, admission control and journaling.
// It returns the serialized response body and whether it came from the
// cache.  This is the programmatic surface benchmarks and differential
// tests drive.
func (r *Registry) ExtractCached(ctx context.Context, engine, html string, query []string) ([]byte, bool, error) {
	if !r.Owns(engine) {
		owner := r.ring.Owner(engine)
		return nil, false, fmt.Errorf("serve: engine %q owned by shard %d, not this shard", engine, owner)
	}
	ent, ok := r.get(engine)
	if !ok {
		return nil, false, fmt.Errorf("serve: unknown engine %q", engine)
	}
	em := r.metrics.engine(engine)
	em.requests.Inc()
	out, err := r.extractEntry(ctx, engine, ent, em, html, query, nil)
	if err != nil {
		return nil, false, err
	}
	if out.cached {
		em.sections.Add(int64(out.entry.Sections))
		em.records.Add(int64(out.entry.Records))
	}
	return out.entry.Body, out.cached, nil
}

// journalQuality copies an assessment onto a journal event.
func journalQuality(jev *JournalEvent, a quality.Assessment) {
	jev.Verdict = a.Verdict.String()
	jev.Anomalous = a.Anomalous
	jev.Score = a.Score
	jev.AnomalyRate = a.AnomalyRate
}

// stageTimings flattens a per-request span tree into a stage → ms map for
// the journal (nil span, nil map).
func stageTimings(root *obs.Span) map[string]float64 {
	snap := root.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap.Children))
	for _, c := range snap.Children {
		out[c.Name] = float64(c.Duration) / float64(time.Millisecond)
	}
	return out
}

// bodyPool recycles the request-body read buffers of /extract.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ReleasePage returns the pooled parse/render memory behind a completed
// extraction.  It must be called after the response derived from the
// leased page has been fully written; it is safe on a nil lease.
func (r *Registry) ReleasePage(lease *core.PageLease) { lease.Release() }

// writeBody writes a pre-serialized JSON response body (a cache entry).
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
