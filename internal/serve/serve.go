// Package serve exposes trained MSE wrappers over HTTP — the deployment
// shape of the paper's metasearch application: component-engine wrappers
// are built offline, stored as JSON, and a long-running service extracts
// sections and records from result pages on demand.
//
//	GET  /engines                 list the loaded engine wrappers
//	GET  /healthz                 liveness
//	GET  /metrics                 JSON metrics snapshot (counters, gauges,
//	                              latency histograms with p50/p90/p95/p99,
//	                              per-engine quality gauges)
//	GET  /statusz                 human-readable uptime / per-engine table
//	                              with drift verdicts
//	GET  /driftz                  machine-readable per-engine drift report
//	POST /extract?engine=NAME&q=term+term
//	                              body: the result page HTML;
//	                              response: sections with annotated records
//
// Error responses are JSON objects {"error": ..., "engine": ...}.  With
// SetAccessLog the registry emits one structured log line per request
// (method, path, engine, status, bytes, duration, request_id).
//
// Every response carries an X-Request-ID header — the client's own, when
// it sent one, or a generated ID otherwise — correlating the access log,
// the wide-event journal (SetJournal) and the client's records.  Every
// extraction also feeds the per-engine drift detector (internal/quality),
// whose verdicts surface on /statusz, /driftz and the quality gauges.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"mse/internal/annotate"
	"mse/internal/core"
	"mse/internal/obs"
	"mse/internal/quality"
)

// MaxPageBytes bounds the request body size (result pages beyond a few MB
// are not search result pages).
const MaxPageBytes = 8 << 20

// Registry holds the loaded wrappers by engine name.  It is safe for
// concurrent use; wrappers can be added or replaced while serving.
type Registry struct {
	mu       sync.RWMutex
	wrappers map[string]*core.EngineWrapper
	opts     core.Options
	metrics  *Metrics
	log      *slog.Logger
	limiter  *limiter
	quality  *quality.Tracker
	journal  *Journal
}

// NewRegistry returns an empty registry using the given pipeline options
// for wrapper application.  Drift detection runs with quality defaults;
// override with SetQualityConfig before serving.
func NewRegistry(opts core.Options) *Registry {
	return &Registry{
		wrappers: map[string]*core.EngineWrapper{},
		opts:     opts,
		metrics:  NewMetrics(),
		quality:  quality.NewTracker(quality.DefaultConfig()),
	}
}

// Metrics returns the registry's metrics set.
func (r *Registry) Metrics() *Metrics { return r.metrics }

// Quality returns the drift tracker feeding /driftz.
func (r *Registry) Quality() *quality.Tracker { return r.quality }

// SetQualityConfig replaces the drift-detection configuration (zero
// fields take defaults), resetting any learned baselines.  Call before
// Handler.
func (r *Registry) SetQualityConfig(cfg quality.Config) {
	r.quality = quality.NewTracker(cfg)
}

// SetJournal installs the wide-event request journal: one JSON line per
// sampled /extract request written to w (1-in-every sampling; every <= 1
// journals everything).  nil w disables journaling (the default).  Call
// before Handler.
func (r *Registry) SetJournal(w io.Writer, every int) {
	if w == nil {
		r.journal = nil
		return
	}
	r.journal = NewJournal(w, every)
}

// Journal returns the installed journal (nil when disabled).
func (r *Registry) Journal() *Journal { return r.journal }

// SetAccessLog installs a structured access logger; nil disables logging
// (the default).
func (r *Registry) SetAccessLog(l *slog.Logger) { r.log = l }

// SetLimits configures admission control for /extract: at most maxInflight
// extractions run concurrently, and a request waits at most queueTimeout
// for a slot before being shed with 429 and a Retry-After header.
// maxInflight <= 0 disables admission control.  Call before Handler.
func (r *Registry) SetLimits(maxInflight int, queueTimeout time.Duration) {
	r.limiter = newLimiter(maxInflight, queueTimeout)
}

// Add registers (or replaces) a wrapper under the given engine name.
func (r *Registry) Add(name string, data []byte) error {
	var ew core.EngineWrapper
	if err := json.Unmarshal(data, &ew); err != nil {
		return fmt.Errorf("serve: wrapper %q: %w", name, err)
	}
	ew.SetOptions(r.opts)
	// Compile eagerly so the first request after a wrapper swap pays no
	// lowering cost (and signature interning happens off the hot path).
	ew.Compile()
	r.mu.Lock()
	r.wrappers[name] = &ew
	r.mu.Unlock()
	return nil
}

// Names lists the registered engines, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.wrappers))
	for n := range r.wrappers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// get returns the wrapper for an engine.
func (r *Registry) get(name string) (*core.EngineWrapper, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ew, ok := r.wrappers[name]
	return ew, ok
}

// unitJSON is the wire form of one annotated data unit.
type unitJSON struct {
	Type string `json:"type"`
	Text string `json:"text"`
}

// recordJSON is the wire form of one record.
type recordJSON struct {
	Lines []string   `json:"lines"`
	Links []string   `json:"links,omitempty"`
	Units []unitJSON `json:"units,omitempty"`
}

// sectionJSON is the wire form of one section.
type sectionJSON struct {
	Heading string       `json:"heading,omitempty"`
	Records []recordJSON `json:"records"`
}

// extractResponse is the wire form of an /extract result.
type extractResponse struct {
	Engine   string        `json:"engine"`
	Sections []sectionJSON `json:"sections"`
}

// Handler returns the HTTP handler serving the registry.  Every request
// passes through the metrics/access-log middleware.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/engines", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Names())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.metrics.snapshot())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.metrics.writeStatusz(w, r.Names(), r.opts.Parallelism, r.quality)
	})
	mux.HandleFunc("/driftz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.quality.Report())
	})
	mux.HandleFunc("/extract", r.handleExtract)
	return r.instrument(r.recoverer(mux))
}

// RequestID returns the correlation ID assigned to the request by the
// instrument middleware ("" outside a served request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ridKey{}).(string)
	return id
}

// statusWriter captures the response status and byte count for metrics
// and the access log, and whether the header went out — which decides
// whether the panic recoverer can still send a JSON 500.
type statusWriter struct {
	http.ResponseWriter
	status      int
	bytes       int64
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.wroteHeader = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// recoverer wraps h so a panicking handler takes down one request, not the
// process: the panic is logged with its stack, panics_total increments,
// and — when the response header has not gone out yet — the client gets a
// JSON 500.  http.ErrAbortHandler passes through untouched (it is the
// sanctioned way to abort a response and is suppressed by net/http).
// Layered inside instrument, so the recoverer sees instrument's
// statusWriter and the aborted request still produces an access-log line
// and metrics.
func (r *Registry) recoverer(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			r.metrics.panics.Inc()
			logger := r.log
			if logger == nil {
				logger = slog.Default()
			}
			logger.Error("handler panic",
				"method", req.Method,
				"path", req.URL.Path,
				"engine", req.URL.Query().Get("engine"),
				"panic", fmt.Sprint(rec),
				"stack", string(debug.Stack()),
			)
			if sw, ok := w.(*statusWriter); !ok || !sw.wroteHeader {
				writeError(w, http.StatusInternalServerError,
					req.URL.Query().Get("engine"), "internal error")
			}
		}()
		h.ServeHTTP(w, req)
	})
}

// instrument wraps h with the in-flight gauge, the total request counter,
// the correlation ID and the structured access log.  The request ID is the
// client's X-Request-ID when it sent a plausible one, a generated ID
// otherwise; either way it is echoed on the response and reachable from
// handlers via RequestID(ctx).
func (r *Registry) instrument(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		m := r.metrics
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)
		m.requests.Inc()
		rid := req.Header.Get(requestIDHeader)
		if rid == "" || len(rid) > maxRequestIDLen {
			rid = newRequestID()
		}
		w.Header().Set(requestIDHeader, rid)
		req = req.WithContext(context.WithValue(req.Context(), ridKey{}, rid))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(sw, req)
		if r.log != nil {
			r.log.Info("request",
				"method", req.Method,
				"path", req.URL.Path,
				"engine", req.URL.Query().Get("engine"),
				"status", sw.status,
				"bytes", sw.bytes,
				"duration", time.Since(start).Round(time.Microsecond),
				"request_id", rid,
			)
		}
	})
}

// errorJSON is the wire form of an error response.
type errorJSON struct {
	Error  string `json:"error"`
	Engine string `json:"engine,omitempty"`
}

func writeError(w http.ResponseWriter, status int, engine, msg string) {
	writeJSON(w, status, errorJSON{Error: msg, Engine: engine})
}

// statusClientClosedRequest is nginx's 499 "client closed request": the
// client vanished (canceled, disconnected) before the response; nobody
// will read the body, but the status keeps access logs and metrics honest.
const statusClientClosedRequest = 499

// extractTestHook, when non-nil, runs after the extraction lease is
// acquired and before the response is built.  Tests install a panicking
// hook to prove the recovery middleware turns a mid-request panic into a
// JSON 500 without leaking the lease, or a blocking hook to hold an
// admission slot open.
var extractTestHook func(engine string)

func (r *Registry) handleExtract(w http.ResponseWriter, req *http.Request) {
	name := req.URL.Query().Get("engine")
	if req.Method != http.MethodPost {
		r.metrics.errors.Inc()
		writeError(w, http.StatusMethodNotAllowed, name, "POST required")
		return
	}
	if name == "" {
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, "", "missing ?engine=")
		return
	}
	ew, ok := r.get(name)
	if !ok {
		// Deliberately not tracked per engine: arbitrary names in the
		// query string must not grow the metrics map without bound.
		r.metrics.errors.Inc()
		writeError(w, http.StatusNotFound, name, fmt.Sprintf("unknown engine %q", name))
		return
	}
	em := r.metrics.engine(name)
	em.requests.Inc()

	// Wide-event journal: the sampling decision is made up front so the
	// extraction below can carry a per-request span tree (stage timings)
	// only when someone will read it.  The deferred emit sees the final
	// response status via instrument's statusWriter.
	var jev *JournalEvent
	if r.journal.Sample() {
		jev = &JournalEvent{
			RequestID: RequestID(req.Context()),
			Engine:    name,
		}
		start := time.Now()
		defer func() {
			jev.Time = nowRFC3339()
			jev.TotalMs = float64(time.Since(start)) / float64(time.Millisecond)
			if sw, ok := w.(*statusWriter); ok {
				jev.Status = sw.status
			}
			r.journal.Write(*jev)
		}()
	}

	// Admission control: get an extraction slot before touching the body,
	// so a shed request costs neither an 8 MB read nor pooled memory.
	wait, err := r.limiter.acquire(req.Context())
	r.metrics.queueWait.Observe(wait)
	if jev != nil {
		jev.QueueWaitMs = float64(wait) / float64(time.Millisecond)
	}
	if err != nil {
		if errors.Is(err, errShed) {
			r.metrics.shed.Inc()
			w.Header().Set("Retry-After", r.limiter.retryAfter())
			writeError(w, http.StatusTooManyRequests, name, "server at capacity, retry later")
		} else {
			// Client gone (or deadline up) while queued: its problem, not
			// the engine's — per-engine error counters stay clean.
			r.metrics.canceled.Inc()
			writeError(w, statusClientClosedRequest, name, "request canceled while queued")
		}
		return
	}
	defer r.limiter.release()
	r.metrics.extractInFlight.Add(1)
	defer r.metrics.extractInFlight.Add(-1)

	buf := bodyPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyPool.Put(buf)
	if _, err := buf.ReadFrom(io.LimitReader(req.Body, MaxPageBytes+1)); err != nil {
		// Distinguish a vanished client from a malformed request: only the
		// latter is an engine-attributed error.  A dead request context (or
		// a body cut off mid-chunk) means the client hung up on us.
		if req.Context().Err() != nil || errors.Is(err, io.ErrUnexpectedEOF) {
			r.metrics.canceled.Inc()
			writeError(w, statusClientClosedRequest, name, "client disconnected during body read")
			return
		}
		em.errors.Inc()
		r.metrics.errors.Inc()
		writeError(w, http.StatusBadRequest, name, "reading body: "+err.Error())
		return
	}
	if buf.Len() > MaxPageBytes {
		em.errors.Inc()
		r.metrics.errors.Inc()
		writeError(w, http.StatusRequestEntityTooLarge, name,
			fmt.Sprintf("page exceeds %d bytes", MaxPageBytes))
		return
	}
	var query []string
	if q := req.URL.Query().Get("q"); q != "" {
		query = strings.FieldsFunc(q, func(r rune) bool { return r == '+' || r == ' ' })
	}

	// The one body copy per request: extracted text and link strings slice
	// into this string, so it cannot alias the pooled read buffer.
	html := buf.String()

	// Journaled requests get a per-request span tree for stage timings; a
	// nil root costs nothing (obs spans are nil-safe).
	var root *obs.Span
	if jev != nil {
		jev.PageBytes = len(html)
		jev.PageHash = pageHash(html)
		jev.Query = query
		root = obs.NewSpan(obs.RootExtract)
	}

	start := time.Now()
	sections, lease, err := ew.ExtractLeasedObs(req.Context(), html, query, root)
	elapsed := time.Since(start)
	em.latency.Observe(elapsed)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			// The pipeline aborted cooperatively; every pooled resource is
			// already back (ExtractLeasedObs releases on the way out).
			// The drift detector does not see this page: a vanished client
			// or an expired deadline says nothing about the engine.
			r.metrics.canceled.Inc()
			if errors.Is(req.Context().Err(), context.DeadlineExceeded) {
				writeError(w, http.StatusServiceUnavailable, name, "deadline exceeded during extraction")
			} else {
				writeError(w, statusClientClosedRequest, name, "client canceled during extraction")
			}
			return
		}
		em.errors.Inc()
		r.metrics.errors.Inc()
		a := r.quality.Observe(name, quality.Observation{Latency: elapsed, Err: true})
		em.applyQuality(a)
		if jev != nil {
			jev.Error = err.Error()
			journalQuality(jev, a)
		}
		writeError(w, http.StatusInternalServerError, name, "extraction failed: "+err.Error())
		return
	}
	// Deferred — not called after the response — so a panic while building
	// or writing the response still returns the page and its parse arena
	// to the pools.  The sections hold only plain strings and ints, so the
	// response outlives the lease regardless.
	defer r.ReleasePage(lease)
	if extractTestHook != nil {
		extractTestHook(name)
	}

	resp := extractResponse{Engine: name, Sections: make([]sectionJSON, 0, len(sections))}
	records := int64(0)
	for _, s := range sections {
		sj := sectionJSON{Heading: s.Heading, Records: make([]recordJSON, 0, len(s.Records))}
		for _, rec := range s.Records {
			rj := recordJSON{Lines: rec.Lines, Links: rec.Links}
			for _, u := range annotate.Record(rec) {
				rj.Units = append(rj.Units, unitJSON{Type: u.Type.String(), Text: u.Text})
			}
			sj.Records = append(sj.Records, rj)
		}
		records += int64(len(s.Records))
		resp.Sections = append(resp.Sections, sj)
	}
	em.sections.Add(int64(len(sections)))
	em.records.Add(records)
	if len(sections) == 0 {
		em.empty.Inc()
	}

	// Feed the drift detector and mirror its state onto the quality
	// gauges; a verdict change is worth an operator-visible log line.
	a := r.quality.Observe(name, quality.Observation{
		Sections: len(sections),
		Records:  int(records),
		Latency:  elapsed,
	})
	em.applyQuality(a)
	if a.Changed && r.log != nil {
		r.log.Warn("drift verdict changed",
			"engine", name,
			"verdict", a.Verdict.String(),
			"anomaly_rate", a.AnomalyRate,
			"request_id", RequestID(req.Context()),
		)
	}
	if jev != nil {
		jev.Sections = len(sections)
		jev.Records = int(records)
		journalQuality(jev, a)
		jev.StagesMs = stageTimings(root)
	}
	writeJSON(w, http.StatusOK, resp)
}

// journalQuality copies an assessment onto a journal event.
func journalQuality(jev *JournalEvent, a quality.Assessment) {
	jev.Verdict = a.Verdict.String()
	jev.Anomalous = a.Anomalous
	jev.Score = a.Score
	jev.AnomalyRate = a.AnomalyRate
}

// stageTimings flattens a per-request span tree into a stage → ms map for
// the journal (nil span, nil map).
func stageTimings(root *obs.Span) map[string]float64 {
	snap := root.Snapshot()
	if snap == nil {
		return nil
	}
	out := make(map[string]float64, len(snap.Children))
	for _, c := range snap.Children {
		out[c.Name] = float64(c.Duration) / float64(time.Millisecond)
	}
	return out
}

// bodyPool recycles the request-body read buffers of /extract.
var bodyPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// ReleasePage returns the pooled parse/render memory behind a completed
// extraction.  It must be called after the response derived from the
// leased page has been fully written; it is safe on a nil lease.
func (r *Registry) ReleasePage(lease *core.PageLease) { lease.Release() }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing more to do than drop the
		// connection, which the server does for us.
		return
	}
}
